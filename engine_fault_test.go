package mnn_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mnn"
	"mnn/internal/fault"
	"mnn/internal/leakcheck"
	"mnn/internal/tensor"
)

func faultPlan(t *testing.T, seed uint64, spec string) *mnn.FaultPlan {
	t.Helper()
	p, err := mnn.ParseFaultPlan(seed, spec)
	if err != nil {
		t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
	}
	return p
}

func tinyInput(t *testing.T) map[string]*mnn.Tensor {
	t.Helper()
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 7, 1)
	return map[string]*mnn.Tensor{"data": in}
}

func TestEngineInjectedError(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(2),
		mnn.WithFaultPlan(faultPlan(t, 1, "engine.infer=error,count=1")))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tinyInput(t)
	if _, err := eng.Infer(context.Background(), in); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first Infer = %v, want injected error", err)
	}
	// count=1: the budget is spent, later inferences are clean.
	if _, err := eng.Infer(context.Background(), in); err != nil {
		t.Fatalf("second Infer = %v, want success", err)
	}
	if n := eng.KernelPanics(); n != 0 {
		t.Fatalf("injected error counted as panic: %d", n)
	}
}

// TestEngineKernelPanicContained drives a panic out of a kernel dispatch and
// asserts the full containment chain: typed error with op identity and
// stack, the poisoned session rebuilt, and the engine healthy afterwards.
func TestEngineKernelPanicContained(t *testing.T) {
	leakcheck.Check(t)
	for _, threads := range []int{1, 4} {
		eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(threads),
			mnn.WithFaultPlan(faultPlan(t, 1, "session.kernel=panic,count=1,match=conv1")))
		if err != nil {
			t.Fatal(err)
		}
		in := tinyInput(t)
		_, err = eng.Infer(context.Background(), in)
		if !errors.Is(err, mnn.ErrKernelPanic) {
			t.Fatalf("threads=%d: Infer = %v, want ErrKernelPanic", threads, err)
		}
		var kp *mnn.KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("threads=%d: error %v is not a *KernelPanicError", threads, err)
		}
		if kp.Op != "conv1" {
			t.Fatalf("threads=%d: panic attributed to op %q, want conv1", threads, kp.Op)
		}
		if len(kp.Stack) == 0 || !strings.Contains(string(kp.Stack), "goroutine") {
			t.Fatalf("threads=%d: KernelPanicError has no usable stack", threads)
		}
		if n := eng.KernelPanics(); n != 1 {
			t.Fatalf("threads=%d: KernelPanics = %d, want 1", threads, n)
		}
		if n := eng.SessionRebuilds(); n != 1 {
			t.Fatalf("threads=%d: SessionRebuilds = %d, want 1", threads, n)
		}
		// The rebuilt session must produce correct results.
		out, err := eng.Infer(context.Background(), in)
		if err != nil {
			t.Fatalf("threads=%d: post-panic Infer = %v", threads, err)
		}
		ref, err := mnn.RunReference(tinyModel(t), in)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(ref["prob"], out["prob"]); d > 1e-4 {
			t.Fatalf("threads=%d: rebuilt session differs from reference by %g", threads, d)
		}
		eng.Close()
	}
}

// TestEngineSitePanicContained panics at the engine.infer site — above the
// session barrier — and asserts the engine-level recover still yields the
// typed error instead of crashing the caller.
func TestEngineSitePanicContained(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(1),
		mnn.WithFaultPlan(faultPlan(t, 1, "engine.infer=panic,count=1")))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tinyInput(t)
	_, err = eng.Infer(context.Background(), in)
	if !errors.Is(err, mnn.ErrKernelPanic) {
		t.Fatalf("Infer = %v, want ErrKernelPanic", err)
	}
	var kp *mnn.KernelPanicError
	if !errors.As(err, &kp) || kp.Op != "tiny" {
		t.Fatalf("panic not attributed to the graph: %v", err)
	}
	if _, err := eng.Infer(context.Background(), in); err != nil {
		t.Fatalf("post-panic Infer = %v", err)
	}
}

// TestEngineInferIntoPanicContained covers the zero-alloc path's barrier.
func TestEngineInferIntoPanicContained(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(2),
		mnn.WithFaultPlan(faultPlan(t, 1, "session.kernel=panic,count=1,match=pw")))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tinyInput(t)
	out := map[string]*mnn.Tensor{"prob": tensor.New(1, 16)}
	if err := eng.InferInto(context.Background(), in, out); !errors.Is(err, mnn.ErrKernelPanic) {
		t.Fatalf("InferInto = %v, want ErrKernelPanic", err)
	}
	if err := eng.InferInto(context.Background(), in, out); err != nil {
		t.Fatalf("post-panic InferInto = %v", err)
	}
}

// TestEngineFaultDeterminism replays one plan twice and asserts the fault
// schedule lands on the same inferences both times.
func TestEngineFaultDeterminism(t *testing.T) {
	leakcheck.Check(t)
	run := func() []int {
		eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(1),
			mnn.WithFaultPlan(faultPlan(t, 42, "engine.infer=error,p=0.3")))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		in := tinyInput(t)
		var failed []int
		for i := 0; i < 40; i++ {
			if _, err := eng.Infer(context.Background(), in); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("p=0.3 failed %d/40; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

// TestEngineCloseReleasesWorkersAfterPanic pins the leak contract: panic →
// rebuild → Close still tears every worker goroutine down.
func TestEngineCloseReleasesWorkersAfterPanic(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mnn.Open(tinyModel(t), mnn.WithThreads(4), mnn.WithPoolSize(2),
		mnn.WithFaultPlan(faultPlan(t, 3, "session.kernel=panic,count=3,match=dw")))
	if err != nil {
		t.Fatal(err)
	}
	in := tinyInput(t)
	for i := 0; i < 8; i++ {
		eng.Infer(context.Background(), in)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(context.Background(), in); !errors.Is(err, mnn.ErrEngineClosed) {
		t.Fatalf("Infer after Close = %v, want ErrEngineClosed", err)
	}
}
