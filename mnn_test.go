package mnn_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

const tinyModelJSON = `{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 16, 16]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"], "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "pad": [1], "outputs": 8, "relu": true}},
    {"name": "dw", "op": "Conv2D", "inputs": ["conv1"], "weights": ["w2", "b2"],
     "attrs": {"kernel": [3], "pad": [1], "group": 8, "outputs": 8, "relu": true}},
    {"name": "pw", "op": "Conv2D", "inputs": ["dw"], "weights": ["w3", "b3"],
     "attrs": {"kernel": [1], "outputs": 16}},
    {"name": "gap", "op": "Pool", "inputs": ["pw"], "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["gap"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [8, 3, 3, 3], "init": "random", "seed": 1, "scale": 0.3},
    {"name": "b1", "shape": [8], "init": "random", "seed": 2, "scale": 0.1},
    {"name": "w2", "shape": [8, 1, 3, 3], "init": "random", "seed": 3, "scale": 0.3},
    {"name": "b2", "shape": [8], "init": "random", "seed": 4, "scale": 0.1},
    {"name": "w3", "shape": [16, 8, 1, 1], "init": "random", "seed": 5, "scale": 0.3},
    {"name": "b3", "shape": [16], "init": "random", "seed": 6, "scale": 0.1}
  ]
}`

func tinyModel(t *testing.T) *mnn.Graph {
	t.Helper()
	g, err := mnn.ParseJSONModel(strings.NewReader(tinyModelJSON))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstartWorkflow(t *testing.T) {
	g := tinyModel(t)
	if err := mnn.Optimize(g); err != nil {
		t.Fatal(err)
	}
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := sess.Input("data")
	tmp := tensor.New(in.Shape()...)
	tensor.FillRandom(tmp, 42, 1)
	in.CopyFrom(tmp)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	out := sess.Output("prob")
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("softmax sum %v", sum)
	}
	// Must agree with the reference oracle.
	ref, err := mnn.RunReference(tinyModel(t), map[string]*mnn.Tensor{"data": tmp})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], out); d > 1e-4 {
		t.Fatalf("engine differs from reference by %g", d)
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	g := tinyModel(t)
	path := filepath.Join(t.TempDir(), "tiny.mnng")
	if err := mnn.SaveModelFile(g, path); err != nil {
		t.Fatal(err)
	}
	ip, err := mnn.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ip.Graph().Nodes) != len(g.Nodes) {
		t.Fatal("node count changed through file round trip")
	}
	if _, err := mnn.LoadModelFile(filepath.Join(t.TempDir(), "missing.mnng")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if !os.IsNotExist(func() error {
		_, err := mnn.LoadModelFile(filepath.Join(t.TempDir(), "missing.mnng"))
		return unwrapPathError(err)
	}()) {
		t.Log("note: missing-file error is wrapped; acceptable")
	}
}

func unwrapPathError(err error) error {
	if pe, ok := err.(*os.PathError); ok {
		return pe
	}
	return err
}

func TestQuantizedSessionStillWorks(t *testing.T) {
	g := tinyModel(t)
	count, saved := mnn.QuantizeWeights(g)
	if count == 0 || saved <= 0 {
		t.Fatalf("quantize: %d, %d", count, saved)
	}
	var buf bytes.Buffer
	if err := mnn.SaveModel(g, &buf); err != nil {
		t.Fatal(err)
	}
	ip, err := mnn.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ip.CreateSession(mnn.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	tmp := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(tmp, 7, 1)
	sess.Input("data").CopyFrom(tmp)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	// int8 quantization error on this tiny model should stay small.
	ref, err := mnn.RunReference(tinyModel(t), map[string]*mnn.Tensor{"data": tmp})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], sess.Output("prob")); d > 0.05 {
		t.Fatalf("quantized output error %g", d)
	}
}

func TestSimulatedDeviceSession(t *testing.T) {
	g := tinyModel(t)
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{
		Type: mnn.ForwardVulkan, Threads: 2, DeviceName: "MI6", Simulate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tmp := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(tmp, 9, 1)
	sess.Input("data").CopyFrom(tmp)
	sess.ResetSimulatedClock()
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if sess.SimulatedMs() <= 0 {
		t.Fatal("simulated clock must advance")
	}
}

func TestConfigErrors(t *testing.T) {
	g := tinyModel(t)
	ip := mnn.NewInterpreter(g)
	if _, err := ip.CreateSession(mnn.Config{DeviceName: "NokiaBrick"}); err == nil {
		t.Error("unknown device must fail")
	}
	// Metal on an Android profile must fail.
	if _, err := ip.CreateSession(mnn.Config{Type: mnn.ForwardMetal, DeviceName: "MI6"}); err == nil {
		t.Error("Metal on MI6 must fail")
	}
	// GPU forward type without a device (host has no GPU sim) must fail.
	if _, err := ip.CreateSession(mnn.Config{Type: mnn.ForwardVulkan}); err == nil {
		t.Error("Vulkan on host must fail")
	}
}

func TestNetworksAndDevicesLists(t *testing.T) {
	if len(mnn.Networks()) != 9 {
		t.Fatalf("networks: %v", mnn.Networks())
	}
	found := false
	for _, d := range mnn.Devices() {
		if d == "Mate20" {
			found = true
		}
	}
	if !found {
		t.Fatalf("devices: %v", mnn.Devices())
	}
	if _, err := mnn.BuildNetwork("mobilenet-v1"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionResizePublicAPI(t *testing.T) {
	g := tinyModel(t)
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Resize(map[string][]int{"data": {1, 3, 32, 32}}); err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(sess.Input("data").Shape(), []int{1, 3, 32, 32}) {
		t.Fatal("resize not applied")
	}
	tmp := tensor.New(1, 3, 32, 32)
	tensor.FillRandom(tmp, 11, 1)
	sess.Input("data").CopyFrom(tmp)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
}
