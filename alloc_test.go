package mnn_test

// Regression tests for the zero-allocation steady state: after pre-inference
// has planned every activation AND every kernel workspace into the arena and
// the persistent worker pool is up, an Engine.InferInto call must not touch
// the allocator at all, and neither must any prepared conv kernel's Run.
// A regression here silently reintroduces GC pressure under serving load.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

// inferAllocs measures allocations per steady-state InferInto on a built-in
// network.
func inferAllocs(t *testing.T, network string, threads int, opts ...mnn.Option) float64 {
	t.Helper()
	eng, err := mnn.Open(network, append([]mnn.Option{mnn.WithThreads(threads)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	inputs := map[string]*mnn.Tensor{}
	for _, name := range eng.InputNames() {
		in := mnn.NewTensor(eng.InputShape(name)...)
		tensor.FillRandom(in, 1, 1)
		inputs[name] = in
	}
	out, err := eng.Infer(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Reuse the first Infer's outputs as the destination buffers.
	if err := eng.InferInto(ctx, inputs, out); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(3, func() {
		if err := eng.InferInto(ctx, inputs, out); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInferIntoZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network inference in -short mode")
	}
	for _, network := range []string{"mobilenet-v1", "squeezenet-v1.1"} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/t%d", network, threads), func(t *testing.T) {
				if allocs := inferAllocs(t, network, threads); allocs != 0 {
					t.Errorf("steady-state InferInto allocated %.1f objects/op, want 0", allocs)
				}
			})
		}
	}
}

// TestInferIntoZeroAllocSteadyStateTuned: tuning changes which kernels are
// prepared, not how they run — a measured-mode engine (opened warm from the
// tuning cache) must hold the same zero-allocation steady state, with the
// tuner's decisions resolved entirely at prepare time.
func TestInferIntoZeroAllocSteadyStateTuned(t *testing.T) {
	if testing.Short() {
		t.Skip("measured tuning pass in -short mode")
	}
	cache := filepath.Join(t.TempDir(), "tuned.json")
	opts := []mnn.Option{
		mnn.WithInputShapes(map[string][]int{"data": {1, 3, 64, 64}}),
		mnn.WithTuning(mnn.TuningMeasured),
		mnn.WithTuningCache(cache),
	}
	// First opens measure and fill the cache; cache entries are keyed per
	// lane count, so each tested thread width needs its own warm pass. The
	// measured engines below then open warm, the steady deployment state.
	for _, threads := range []int{1, 4} {
		warmup, err := mnn.Open("mobilenet-v1", append([]mnn.Option{mnn.WithThreads(threads)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		warmup.Close()
	}
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("mobilenet-v1/t%d", threads), func(t *testing.T) {
			if allocs := inferAllocs(t, "mobilenet-v1", threads, opts...); allocs != 0 {
				t.Errorf("steady-state tuned InferInto allocated %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestInferIntoZeroAllocFaultHooks: the fault-injection hooks on the hot
// path (engine.infer, session.kernel) must cost nothing when disabled —
// the existing tests above cover that, since no plan is armed there — and
// equally nothing when a plan IS armed but none of its rules reach the
// hot sites: rules for other sites miss on the per-site map lookup, and
// rules whose match filter excludes this graph evaluate without
// allocating. That is the production chaos configuration (faults aimed at
// one model must not tax the others).
func TestInferIntoZeroAllocFaultHooks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network inference in -short mode")
	}
	plan, err := mnn.ParseFaultPlan(1,
		"mesh.transport=connreset,p=0.5;"+
			"engine.infer=error,match=not-this-model;"+
			"session.kernel=error,match=no-such-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("armed-unmatched/t%d", threads), func(t *testing.T) {
			if allocs := inferAllocs(t, "squeezenet-v1.1", threads, mnn.WithFaultPlan(plan)); allocs != 0 {
				t.Errorf("armed-but-unmatched fault hooks allocated %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestInferIntoZeroAllocSteadyStateInt8: the quantized path plans its int8
// panels and int32 accumulators into the same arena, so an int8 engine's
// steady state must be equally allocation-free — with dynamic per-sample
// scales here (no calibration), the strictly harder case.
func TestInferIntoZeroAllocSteadyStateInt8(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network inference in -short mode")
	}
	for _, network := range []string{"mobilenet-v1", "squeezenet-v1.1"} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/t%d", network, threads), func(t *testing.T) {
				if allocs := inferAllocs(t, network, threads, mnn.WithPrecision(mnn.PrecisionInt8)); allocs != 0 {
					t.Errorf("steady-state int8 InferInto allocated %.1f objects/op, want 0", allocs)
				}
			})
		}
	}
}
