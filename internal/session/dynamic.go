// Dynamic shapes: a session prepared at a *maximum* input shape can serve
// any smaller shape without re-preparation. The Figure-3 arena, every
// workspace, and every prepared kernel are planned once at the max; per run
// the only thing that changes is the shape metadata on the arena-wrapped
// activation tensors, which ApplyInputShapes overwrites in place (the
// logical content of each tensor becomes the flat row-major prefix of its
// planned buffer). Kernels in the dynamic-capable op set re-derive their
// geometry from those shapes at every Run, so the steady state stays
// pure-compute and allocation-free: repeat shapes hit a cached shape plan
// and only loop over SetBoundedShape calls.
package session

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// dynamicCapable is the op set whose prepared CPU kernels re-derive geometry
// from tensor shapes at Run time. Everything here is rank-agnostic and flat
// (NCHW) on the CPU backend; convolution-family ops bake NC4HW4 geometry
// into their prepared state and would need re-preparation.
var dynamicCapable = map[graph.OpType]bool{
	graph.OpInput:     true,
	graph.OpMatMul:    true,
	graph.OpLayerNorm: true,
	graph.OpGELU:      true,
	graph.OpTranspose: true,
	graph.OpSoftmax:   true,
	graph.OpEltwise:   true,
}

// dynPlan is one cached shape derivation: the input dims it was derived
// from (collision check) and the per-tensor shapes to apply.
type dynPlan struct {
	inputs  [][]int // one per g.InputNames entry, in order
	applied []appliedShape
}

type appliedShape struct {
	t     *tensor.Tensor
	shape []int
}

// dynState is the retained dynamic-shape machinery.
type dynState struct {
	tensors map[string]*tensor.Tensor // activation name → arena-wrapped tensor
	plans   map[uint64][]*dynPlan     // input-dims hash → candidate plans
	current *dynPlan                  // plan applied by the last ApplyInputShapes
}

// EnableDynamic validates that the prepared session can serve smaller-than-
// planned input shapes without re-preparation and retains the machinery to
// do it. Requirements: the session is prepared (not NoPreparation), every
// node runs on the CPU backend (no cross-backend mirrors, whose staging
// schedule is shape-dependent), every op is in the dynamic-capable set, and
// every activation is flat (no NC4HW4 packing geometry).
func (s *Session) EnableDynamic() error {
	if s.cfg.NoPreparation {
		return fmt.Errorf("session: dynamic shapes require preparation")
	}
	if s.bound == nil {
		return fmt.Errorf("session: dynamic shapes: session not prepared")
	}
	cpuName := s.backends[0].Name()
	for _, n := range s.g.Nodes {
		if !dynamicCapable[n.Op] {
			return fmt.Errorf("session: op %v (node %q) does not support dynamic shapes", n.Op, n.Name)
		}
		if s.assign[n.Name] != cpuName {
			return fmt.Errorf("session: dynamic shapes are CPU-only; node %q assigned to %q", n.Name, s.assign[n.Name])
		}
	}
	tensors := make(map[string]*tensor.Tensor, len(s.shapes))
	for name := range s.shapes {
		t := s.bound[name+"#"+cpuName]
		if t == nil {
			return fmt.Errorf("session: dynamic shapes: activation %q has no CPU binding", name)
		}
		if t.Layout() != tensor.NCHW {
			return fmt.Errorf("session: dynamic shapes: activation %q is %v, need flat NCHW", name, t.Layout())
		}
		tensors[name] = t
	}
	s.dyn = &dynState{tensors: tensors, plans: map[uint64][]*dynPlan{}}
	return nil
}

// Dynamic reports whether EnableDynamic succeeded on this session.
func (s *Session) Dynamic() bool { return s.dyn != nil }

// hashDims folds input dims into an FNV-1a hash. Inputs are visited in
// g.InputNames order so the hash is stable across calls.
func (s *Session) hashDims(inputs map[string]*tensor.Tensor) (uint64, error) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, name := range s.g.InputNames {
		t, ok := inputs[name]
		if !ok {
			return 0, fmt.Errorf("session: missing input %q", name)
		}
		for _, d := range t.Shape() {
			h ^= uint64(d)
			h *= prime64
		}
		h ^= 0xff // rank separator
		h *= prime64
	}
	return h, nil
}

// ApplyInputShapes re-derives every activation shape from the given run
// inputs and applies them in place. Repeat shapes hit the plan cache and
// perform zero allocations; a novel shape runs graph.InferShapes once and
// caches the result. Shapes that do not fit the planned (max-shape) buffers
// return an error without modifying any tensor.
func (s *Session) ApplyInputShapes(inputs map[string]*tensor.Tensor) error {
	if s.dyn == nil {
		return fmt.Errorf("session: dynamic shapes not enabled")
	}
	h, err := s.hashDims(inputs)
	if err != nil {
		return err
	}
	for _, p := range s.dyn.plans[h] {
		if s.planMatches(p, inputs) {
			return s.applyPlan(p)
		}
	}
	p, err := s.derivePlan(inputs)
	if err != nil {
		return err
	}
	s.dyn.plans[h] = append(s.dyn.plans[h], p)
	return s.applyPlan(p)
}

func (s *Session) planMatches(p *dynPlan, inputs map[string]*tensor.Tensor) bool {
	for i, name := range s.g.InputNames {
		if !tensor.EqualShape(p.inputs[i], inputs[name].Shape()) {
			return false
		}
	}
	return true
}

func (s *Session) applyPlan(p *dynPlan) error {
	if s.dyn.current == p {
		return nil
	}
	for _, a := range p.applied {
		if err := a.t.SetBoundedShape(a.shape); err != nil {
			// Unreachable after derivePlan validated the fit, but a failure
			// mid-loop must not go unnoticed.
			return err
		}
	}
	s.dyn.current = p
	return nil
}

// derivePlan runs shape inference at the requested input shapes and checks
// every derived shape against its planned buffer capacity.
func (s *Session) derivePlan(inputs map[string]*tensor.Tensor) (*dynPlan, error) {
	overrides := make(map[string][]int, len(s.g.InputNames))
	dims := make([][]int, len(s.g.InputNames))
	for i, name := range s.g.InputNames {
		t := inputs[name]
		planned := s.dyn.tensors[name]
		if t.Rank() != planned.Rank() {
			return nil, fmt.Errorf("session: input %q rank %d, planned rank %d", name, t.Rank(), planned.Rank())
		}
		shape := append([]int(nil), t.Shape()...)
		overrides[name] = shape
		dims[i] = shape
	}
	shapes, err := graph.InferShapes(s.g, overrides)
	if err != nil {
		return nil, err
	}
	p := &dynPlan{inputs: dims, applied: make([]appliedShape, 0, len(shapes))}
	for name, shape := range shapes {
		t := s.dyn.tensors[name]
		if t == nil {
			return nil, fmt.Errorf("session: activation %q appeared during dynamic inference", name)
		}
		if need := tensor.PhysicalLen(t.Layout(), shape); need > len(t.Data()) {
			return nil, fmt.Errorf("session: activation %q shape %v needs %d floats, planned %d",
				name, shape, need, len(t.Data()))
		}
		if len(shape) != t.Rank() {
			return nil, fmt.Errorf("session: activation %q rank changed %d -> %d", name, t.Rank(), len(shape))
		}
		p.applied = append(p.applied, appliedShape{t: t, shape: append([]int(nil), shape...)})
	}
	return p, nil
}
