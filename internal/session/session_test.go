package session

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"mnn/internal/backend"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// smallCNN: conv-bn-relu → dwconv → 1x1 conv → add(residual) → pool → fc →
// softmax. Touches every major kernel family and the residual pattern.
func smallCNN() *graph.Graph {
	g := graph.New("smallcnn")
	g.InputNames = []string{"data"}
	g.OutputNames = []string{"prob"}
	g.AddNode(&graph.Node{Name: "data", Op: graph.OpInput, Outputs: []string{"data"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 3, 16, 16}}})

	add := func(n *graph.Node) { g.AddNode(n) }
	w := func(name string, scale float32, shape ...int) string {
		t := tensor.New(shape...)
		tensor.FillRandom(t, uint64(len(g.Weights))+77, scale)
		g.AddWeight(name, t)
		return name
	}

	add(&graph.Node{Name: "conv1", Op: graph.OpConv2D, Inputs: []string{"data"}, Outputs: []string{"conv1"},
		WeightNames: []string{w("c1w", 0.3, 8, 3, 3, 3), w("c1b", 0.1, 8)},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 1, InputCount: 3, OutputCount: 8}})
	// BN with positive variance.
	gamma := w("bng", 0.1, 8)
	for i, v := range g.Weights[gamma].Data() {
		g.Weights[gamma].Data()[i] = v + 1
	}
	vr := w("bnv", 0.05, 8)
	for i, v := range g.Weights[vr].Data() {
		g.Weights[vr].Data()[i] = v + 1
	}
	add(&graph.Node{Name: "bn1", Op: graph.OpBatchNorm, Inputs: []string{"conv1"}, Outputs: []string{"bn1"},
		WeightNames: []string{gamma, w("bnb", 0.1, 8), w("bnm", 0.1, 8), vr},
		Attrs:       &graph.BatchNormAttrs{Eps: 1e-5}})
	add(&graph.Node{Name: "relu1", Op: graph.OpReLU, Inputs: []string{"bn1"}, Outputs: []string{"relu1"}})
	add(&graph.Node{Name: "dw", Op: graph.OpConv2D, Inputs: []string{"relu1"}, Outputs: []string{"dw"},
		WeightNames: []string{w("dww", 0.3, 8, 1, 3, 3), w("dwb", 0.1, 8)},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 8, InputCount: 8, OutputCount: 8, ReLU: true}})
	add(&graph.Node{Name: "pw", Op: graph.OpConv2D, Inputs: []string{"dw"}, Outputs: []string{"pw"},
		WeightNames: []string{w("pww", 0.3, 8, 8, 1, 1), w("pwb", 0.1, 8)},
		Attrs: &graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
			Group: 1, InputCount: 8, OutputCount: 8}})
	add(&graph.Node{Name: "res", Op: graph.OpEltwise, Inputs: []string{"relu1", "pw"}, Outputs: []string{"res"},
		Attrs: &graph.EltwiseAttrs{Type: graph.EltSum}})
	add(&graph.Node{Name: "pool", Op: graph.OpPool, Inputs: []string{"res"}, Outputs: []string{"pool"},
		Attrs: &graph.PoolAttrs{Type: graph.AvgPool, Global: true}})
	add(&graph.Node{Name: "fc", Op: graph.OpInnerProduct, Inputs: []string{"pool"}, Outputs: []string{"fc"},
		WeightNames: []string{w("fcw", 0.3, 10, 8), w("fcb", 0.1, 10)},
		Attrs:       &graph.InnerProductAttrs{OutputCount: 10}})
	add(&graph.Node{Name: "prob", Op: graph.OpSoftmax, Inputs: []string{"fc"}, Outputs: []string{"prob"},
		Attrs: &graph.SoftmaxAttrs{Axis: 1}})
	return g
}

func fillInput(s *Session, name string, seed uint64) {
	in := s.Input(name)
	tmp := tensor.New(in.Shape()...)
	tensor.FillRandom(tmp, seed, 1)
	in.CopyFrom(tmp)
}

func refOutput(t *testing.T, g *graph.Graph, seed uint64) *tensor.Tensor {
	t.Helper()
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(shapes[g.InputNames[0]]...)
	tensor.FillRandom(in, seed, 1)
	outs, err := RunReference(g, map[string]*tensor.Tensor{g.InputNames[0]: in})
	if err != nil {
		t.Fatal(err)
	}
	return outs[g.OutputNames[0]]
}

func TestSessionMatchesReferenceCPU(t *testing.T) {
	g := smallCNN()
	want := refOutput(t, g, 5)
	for _, threads := range []int{1, 4} {
		s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: threads})}})
		if err != nil {
			t.Fatal(err)
		}
		fillInput(s, "data", 5)
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		got := s.Output("prob")
		if d := tensor.MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("threads=%d: max diff vs reference %g", threads, d)
		}
	}
}

func TestSessionMatchesReferenceGPUSim(t *testing.T) {
	g := smallCNN()
	want := refOutput(t, g, 6)
	clock := simclock.New()
	cpuB := cpu.New(cpu.Config{Threads: 2, Device: device.MI6, Clock: clock})
	gpuB, err := gpusim.New(gpusim.Config{Kind: backend.KindVulkan, Device: device.MI6,
		Clock: clock, DecoupledEncode: true, ComputeThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Config{Backends: []backend.Backend{cpuB, gpuB}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 6)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, s.Output("prob")); d > 1e-3 {
		t.Fatalf("max diff vs reference %g", d)
	}
	if clock.TotalMs() <= 0 {
		t.Fatal("simulated clock must have advanced")
	}
}

// heavyCNN is large enough that a GPU wins the Equation 4 comparison on an
// MI6-class device: two 64-channel 3×3 convolutions at 56×56 plus a small
// FC head.
func heavyCNN() *graph.Graph {
	g := graph.New("heavycnn")
	g.InputNames = []string{"data"}
	g.OutputNames = []string{"prob"}
	g.AddNode(&graph.Node{Name: "data", Op: graph.OpInput, Outputs: []string{"data"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 16, 56, 56}}})
	w := func(name string, scale float32, shape ...int) string {
		t := tensor.New(shape...)
		tensor.FillRandom(t, uint64(len(g.Weights))+31, scale)
		g.AddWeight(name, t)
		return name
	}
	g.AddNode(&graph.Node{Name: "conv1", Op: graph.OpConv2D, Inputs: []string{"data"}, Outputs: []string{"conv1"},
		WeightNames: []string{w("c1w", 0.1, 64, 16, 3, 3), w("c1b", 0.1, 64)},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 1, InputCount: 16, OutputCount: 64, ReLU: true}})
	g.AddNode(&graph.Node{Name: "conv2", Op: graph.OpConv2D, Inputs: []string{"conv1"}, Outputs: []string{"conv2"},
		WeightNames: []string{w("c2w", 0.05, 64, 64, 3, 3), w("c2b", 0.1, 64)},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 1, InputCount: 64, OutputCount: 64, ReLU: true}})
	g.AddNode(&graph.Node{Name: "gap", Op: graph.OpPool, Inputs: []string{"conv2"}, Outputs: []string{"gap"},
		Attrs: &graph.PoolAttrs{Type: graph.AvgPool, Global: true}})
	g.AddNode(&graph.Node{Name: "fc", Op: graph.OpInnerProduct, Inputs: []string{"gap"}, Outputs: []string{"fc"},
		WeightNames: []string{w("fcw", 0.2, 10, 64), w("fcb", 0.1, 10)},
		Attrs:       &graph.InnerProductAttrs{OutputCount: 10}})
	g.AddNode(&graph.Node{Name: "prob", Op: graph.OpSoftmax, Inputs: []string{"fc"}, Outputs: []string{"prob"},
		Attrs: &graph.SoftmaxAttrs{Axis: 1}})
	return g
}

func TestSessionHybridScheduling(t *testing.T) {
	// Vulkan does not support InnerProduct: fc must land on CPU even when
	// the GPU wins overall, and staging copies must appear.
	g := heavyCNN()
	cpuB := cpu.New(cpu.Config{Threads: 2, Device: device.MI6})
	gpuB, err := gpusim.New(gpusim.Config{Kind: backend.KindVulkan, Device: device.MI6,
		DecoupledEncode: true, ComputeThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Config{Backends: []backend.Backend{cpuB, gpuB}})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Assignment["fc"] != "CPU" {
		t.Errorf("fc assigned to %s, want CPU", st.Assignment["fc"])
	}
	// The convolution-heavy body should beat the CPU on this device.
	if st.Assignment["conv1"] != "Vulkan" {
		t.Errorf("conv1 assigned to %s, want Vulkan", st.Assignment["conv1"])
	}
	if st.CrossBackendCopies == 0 {
		t.Error("hybrid schedule must stage tensors across backends")
	}
	fillInput(s, "data", 7)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := refOutput(t, g, 7)
	if d := tensor.MaxAbsDiff(want, s.Output("prob")); d > 1e-3 {
		t.Fatalf("hybrid output differs from reference by %g", d)
	}
}

func TestSessionPinnedAssignment(t *testing.T) {
	g := smallCNN()
	cpuB := cpu.New(cpu.Config{Threads: 1})
	assign := core0Assignment(g, "CPU")
	s, err := New(g, Config{Backends: []backend.Backend{cpuB}, Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 8)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func core0Assignment(g *graph.Graph, name string) map[string]string {
	m := map[string]string{}
	for _, n := range g.Nodes {
		m[n.Name] = name
	}
	return m
}

func TestSessionNoPreparationMatches(t *testing.T) {
	g := smallCNN()
	want := refOutput(t, g, 9)
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 2})},
		NoPreparation: true})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 9)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, s.Output("prob")); d > 1e-3 {
		t.Fatalf("NoPreparation output differs by %g", d)
	}
}

func TestSessionRepeatedRunsStable(t *testing.T) {
	g := smallCNN()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 2})}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 10)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := s.Output("prob").Clone()
	for i := 0; i < 3; i++ {
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if d := tensor.MaxAbsDiff(first, s.Output("prob")); d != 0 {
		t.Fatalf("outputs drifted across runs by %g", d)
	}
}

func TestSessionResize(t *testing.T) {
	g := smallCNN()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 1})}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resize(map[string][]int{"data": {1, 3, 32, 32}}); err != nil {
		t.Fatal(err)
	}
	in := s.Input("data")
	if !tensor.EqualShape(in.Shape(), []int{1, 3, 32, 32}) {
		t.Fatalf("input shape after resize: %v", in.Shape())
	}
	fillInput(s, "data", 11)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Check against reference at the new size.
	tmp := tensor.New(1, 3, 32, 32)
	tensor.FillRandom(tmp, 11, 1)
	outs, err := RunReference(g, map[string]*tensor.Tensor{"data": tmp})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(outs["prob"], s.Output("prob")); d > 1e-3 {
		t.Fatalf("resized output differs by %g", d)
	}
}

func TestSessionStats(t *testing.T) {
	g := smallCNN()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 1})}})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ArenaFloats["CPU"] <= 0 {
		t.Error("arena must be planned")
	}
	if len(st.SchemeCounts) == 0 {
		t.Error("scheme counts must be recorded")
	}
	if st.Assignment["conv1"] != "CPU" {
		t.Errorf("assignment: %v", st.Assignment)
	}
}

func TestSessionRejectsBadConfig(t *testing.T) {
	g := smallCNN()
	if _, err := New(g, Config{}); err == nil {
		t.Fatal("no backends must fail")
	}
	gpuB, _ := gpusim.New(gpusim.Config{Kind: backend.KindVulkan, Device: device.MI6})
	if _, err := New(g, Config{Backends: []backend.Backend{gpuB}}); err == nil {
		t.Fatal("non-CPU first backend must fail")
	}
}

func TestSessionMobileNetV1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full network in -short mode")
	}
	g := models.MobileNetV1()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 4})}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 12)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := s.Output("prob")
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("softmax output sums to %v", sum)
	}
	// Scheme mix: MobileNet has 13 depthwise + 14 pointwise(1x1) + 1 stem.
	st := s.Stats()
	if st.SchemeCounts["depthwise"] != 13 {
		t.Errorf("depthwise count: %v", st.SchemeCounts)
	}
	if st.SchemeCounts["strassen-1x1"] < 13 {
		t.Errorf("1x1 count: %v", st.SchemeCounts)
	}
}

func TestSessionInceptionV3Correctness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs inception-v3 against the reference interpreter (~58s)")
	}
	// Inception-v3 exercises asymmetric Winograd and concat-heavy graphs;
	// compare CPU session against the reference on a reduced input.
	g := models.InceptionV3()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 4})}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 13)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := refOutput(t, g, 13)
	if d := tensor.MaxAbsDiff(want, s.Output("prob")); d > 5e-3 {
		t.Fatalf("inception output differs from reference by %g", d)
	}
}

func TestRunProfiled(t *testing.T) {
	g := smallCNN()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 2})}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 14)
	p, err := s.RunProfiled(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != len(g.Nodes) {
		t.Fatalf("entries %d, nodes %d", len(p.Entries), len(g.Nodes))
	}
	var sum time.Duration
	for _, e := range p.Entries {
		if e.Backend != "CPU" {
			t.Fatalf("entry backend %q", e.Backend)
		}
		sum += e.Wall
	}
	if sum > p.Total || p.Total == 0 {
		t.Fatalf("per-op sum %v vs total %v", sum, p.Total)
	}
	// Hottest/ByOp orderings are descending.
	hot := p.Hottest(3)
	for i := 1; i < len(hot); i++ {
		if hot[i].Wall > hot[i-1].Wall {
			t.Fatal("Hottest not sorted")
		}
	}
	by := p.ByOp()
	for i := 1; i < len(by); i++ {
		if by[i].Wall > by[i-1].Wall {
			t.Fatal("ByOp not sorted")
		}
	}
	var buf bytes.Buffer
	p.Dump(&buf, 5)
	if !bytes.Contains(buf.Bytes(), []byte("hottest")) {
		t.Fatal("Dump output malformed")
	}
	// Profiled output must equal the regular run's output.
	regular := s.Output("prob").Clone()
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(regular, s.Output("prob")); d != 0 {
		t.Fatalf("profiled run changed results by %g", d)
	}
}

func TestRunHonoursContext(t *testing.T) {
	g := smallCNN()
	s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 1})}})
	if err != nil {
		t.Fatal(err)
	}
	fillInput(s, "data", 5)
	// nil context behaves like Background.
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	// An already-cancelled context aborts before the first node.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Run(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := s.RunProfiled(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunProfiled(cancelled) = %v, want context.Canceled", err)
	}
	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := s.Run(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run(expired) = %v, want DeadlineExceeded", err)
	}
	// The session stays usable after a cancelled run.
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}
