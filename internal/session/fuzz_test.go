package session

import (
	"context"
	"fmt"
	"testing"

	"mnn/internal/backend"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// randomGraph builds a random but valid CNN: a chain of convolutions,
// pools and activations with occasional residual adds and channel concats,
// ending in global pooling + FC + softmax. Every op kind the engine's fast
// paths specialize on can appear.
func randomGraph(seed uint64) *graph.Graph {
	r := tensor.NewRNG(seed)
	g := graph.New(fmt.Sprintf("fuzz-%d", seed))
	g.InputNames = []string{"data"}
	c := r.Intn(6)*2 + 3 // 3..13 channels
	h := r.Intn(12) + 12 // 12..23
	g.AddNode(&graph.Node{Name: "data", Op: graph.OpInput, Outputs: []string{"data"},
		Attrs: &graph.InputAttrs{Shape: []int{1, c, h, h}}})

	widx := 0
	weight := func(scale float32, shape ...int) string {
		widx++
		name := fmt.Sprintf("w%d", widx)
		t := tensor.New(shape...)
		tensor.FillRandom(t, seed+uint64(widx)*13, scale)
		g.AddWeight(name, t)
		return name
	}

	cur := "data"
	curC, curH := c, h
	// Remember one earlier tensor per (C,H) signature for residual adds.
	bySig := map[[2]int]string{}

	steps := r.Intn(8) + 4
	for i := 0; i < steps; i++ {
		name := fmt.Sprintf("op%d", i)
		switch r.Intn(8) {
		case 0, 1: // square conv
			k := []int{1, 2, 3, 5}[r.Intn(4)]
			if k > curH {
				k = 1
			}
			oc := r.Intn(12)*2 + 2
			stride := 1
			if r.Intn(3) == 0 && curH >= 8 {
				stride = 2
			}
			a := &graph.Conv2DAttrs{KernelH: k, KernelW: k, StrideH: stride, StrideW: stride,
				PadH: k / 2, PadW: k / 2, Group: 1, InputCount: curC, OutputCount: oc,
				ReLU: r.Intn(2) == 0}
			g.AddNode(&graph.Node{Name: name, Op: graph.OpConv2D, Inputs: []string{cur}, Outputs: []string{name},
				WeightNames: []string{weight(0.4, oc, curC, k, k), weight(0.1, oc)}, Attrs: a})
			oh, _, err := graph.ConvOutputSize(curH, curH, a)
			if err != nil {
				continue
			}
			cur, curC, curH = name, oc, oh
		case 2: // asymmetric conv (the Figure 8 shapes)
			kw := []int{3, 5, 7}[r.Intn(3)]
			if kw > curH {
				kw = 3
			}
			if kw > curH {
				continue
			}
			a := &graph.Conv2DAttrs{KernelH: 1, KernelW: kw, StrideH: 1, StrideW: 1,
				PadH: 0, PadW: kw / 2, Group: 1, InputCount: curC, OutputCount: curC}
			g.AddNode(&graph.Node{Name: name, Op: graph.OpConv2D, Inputs: []string{cur}, Outputs: []string{name},
				WeightNames: []string{weight(0.4, curC, curC, 1, kw), weight(0.1, curC)}, Attrs: a})
			cur = name
		case 3: // depthwise
			if curH < 3 {
				continue
			}
			a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
				PadH: 1, PadW: 1, Group: curC, InputCount: curC, OutputCount: curC, ReLU6: r.Intn(2) == 0}
			g.AddNode(&graph.Node{Name: name, Op: graph.OpConv2D, Inputs: []string{cur}, Outputs: []string{name},
				WeightNames: []string{weight(0.4, curC, 1, 3, 3), weight(0.1, curC)}, Attrs: a})
			cur = name
		case 4: // pool
			if curH < 4 {
				continue
			}
			pt := graph.MaxPool
			if r.Intn(2) == 0 {
				pt = graph.AvgPool
			}
			a := &graph.PoolAttrs{Type: pt, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
			g.AddNode(&graph.Node{Name: name, Op: graph.OpPool, Inputs: []string{cur}, Outputs: []string{name},
				Attrs: a})
			oh, _, err := graph.PoolOutputSize(curH, curH, a)
			if err != nil {
				continue
			}
			cur, curH = name, oh
		case 5: // activation
			ops := []graph.OpType{graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh}
			g.AddNode(&graph.Node{Name: name, Op: ops[r.Intn(len(ops))], Inputs: []string{cur}, Outputs: []string{name}})
			cur = name
		case 6: // residual add if a matching earlier tensor exists
			if prev, ok := bySig[[2]int{curC, curH}]; ok && prev != cur {
				g.AddNode(&graph.Node{Name: name, Op: graph.OpEltwise,
					Inputs: []string{prev, cur}, Outputs: []string{name},
					Attrs: &graph.EltwiseAttrs{Type: graph.EltSum}})
				cur = name
			}
		case 7: // self-concat doubles channels
			if curC <= 24 {
				g.AddNode(&graph.Node{Name: name, Op: graph.OpConcat,
					Inputs: []string{cur, cur}, Outputs: []string{name},
					Attrs: &graph.ConcatAttrs{Axis: 1}})
				cur, curC = name, curC*2
			}
		}
		bySig[[2]int{curC, curH}] = cur
	}
	g.AddNode(&graph.Node{Name: "gap", Op: graph.OpPool, Inputs: []string{cur}, Outputs: []string{"gap"},
		Attrs: &graph.PoolAttrs{Type: graph.AvgPool, Global: true}})
	out := r.Intn(10) + 2
	g.AddNode(&graph.Node{Name: "fc", Op: graph.OpInnerProduct, Inputs: []string{"gap"}, Outputs: []string{"fc"},
		WeightNames: []string{weight(0.4, out, curC), weight(0.1, out)},
		Attrs:       &graph.InnerProductAttrs{OutputCount: out}})
	g.AddNode(&graph.Node{Name: "prob", Op: graph.OpSoftmax, Inputs: []string{"fc"}, Outputs: []string{"prob"},
		Attrs: &graph.SoftmaxAttrs{Axis: 1}})
	g.OutputNames = []string{"prob"}
	return g
}

func TestSessionFuzzRandomGraphs(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := randomGraph(seed)
			if err := g.Validate(); err != nil {
				t.Fatalf("generator produced invalid graph: %v", err)
			}
			shapes, err := graph.InferShapes(g, nil)
			if err != nil {
				t.Fatalf("shape inference: %v", err)
			}
			in := tensor.New(shapes["data"]...)
			tensor.FillRandom(in, seed*31, 1)
			want, err := RunReference(g, map[string]*tensor.Tensor{"data": in})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			threads := int(seed%4) + 1
			s, err := New(g, Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: threads})}})
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			s.Input("data").CopyFrom(in)
			if err := s.Run(context.Background()); err != nil {
				t.Fatalf("run: %v", err)
			}
			if d := tensor.MaxAbsDiff(want["prob"], s.Output("prob")); d > 5e-3 {
				t.Fatalf("engine vs reference diff %g", d)
			}
			// Second run must be identical (buffer-reuse correctness).
			first := s.Output("prob").Clone()
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(first, s.Output("prob")); d != 0 {
				t.Fatalf("outputs drifted across runs by %g", d)
			}
		})
	}
}

func TestSessionFuzzHybridGPU(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	for seed := uint64(100); seed < uint64(100+n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := randomGraph(seed)
			shapes, err := graph.InferShapes(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			in := tensor.New(shapes["data"]...)
			tensor.FillRandom(in, seed*37, 1)
			want, err := RunReference(g, map[string]*tensor.Tensor{"data": in})
			if err != nil {
				t.Fatal(err)
			}
			clock := simclock.New()
			cpuB := cpu.New(cpu.Config{Threads: 2, Device: device.Mate20, Clock: clock})
			gpuB, err := gpusim.New(gpusim.Config{Kind: backend.KindOpenCL, Device: device.Mate20,
				Clock: clock, DecoupledEncode: true, ComputeThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(g, Config{Backends: []backend.Backend{cpuB, gpuB}})
			if err != nil {
				t.Fatal(err)
			}
			s.Input("data").CopyFrom(in)
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(want["prob"], s.Output("prob")); d > 5e-3 {
				t.Fatalf("hybrid engine vs reference diff %g", d)
			}
		})
	}
}
