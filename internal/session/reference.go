package session

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/tensor"
)

// RunReference executes the graph with the naive NCHW reference kernels,
// with no scheme selection, no memory planning and no backends. It is the
// correctness oracle: every optimized session must agree with it.
func RunReference(g *graph.Graph, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	shapes, err := graph.InferShapes(g, shapesOf(inputs))
	if err != nil {
		return nil, err
	}
	vals := map[string]*tensor.Tensor{}
	for name, t := range inputs {
		vals[name] = t.ToLayout(tensor.NCHW)
	}
	w := func(i int, n *graph.Node) *tensor.Tensor {
		if i < len(n.WeightNames) {
			return g.Weights[n.WeightNames[i]]
		}
		return nil
	}
	for _, n := range order {
		switch n.Op {
		case graph.OpInput:
			if _, ok := vals[n.Outputs[0]]; !ok {
				return nil, fmt.Errorf("reference: input %q not provided", n.Outputs[0])
			}
		case graph.OpConv2D:
			a := n.Attrs.(*graph.Conv2DAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.ConvRef(out, vals[n.Inputs[0]], w(0, n), w(1, n), a)
			vals[n.Outputs[0]] = out
		case graph.OpDeconv2D:
			a := n.Attrs.(*graph.Conv2DAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.DeconvRef(out, vals[n.Inputs[0]], w(0, n), w(1, n), a)
			vals[n.Outputs[0]] = out
		case graph.OpPool:
			a := n.Attrs.(*graph.PoolAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.PoolRef(out, vals[n.Inputs[0]], a)
			vals[n.Outputs[0]] = out
		case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh:
			kind := map[graph.OpType]kernels.ActivationKind{
				graph.OpReLU:    kernels.ActReLU,
				graph.OpReLU6:   kernels.ActReLU6,
				graph.OpSigmoid: kernels.ActSigmoid,
				graph.OpTanh:    kernels.ActTanh,
			}[n.Op]
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.Activation(out, vals[n.Inputs[0]], kind, nil)
			vals[n.Outputs[0]] = out
		case graph.OpBatchNorm:
			a := n.Attrs.(*graph.BatchNormAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.BatchNormRef(out, vals[n.Inputs[0]], w(0, n), w(1, n), w(2, n), w(3, n), a.Eps)
			vals[n.Outputs[0]] = out
		case graph.OpScale:
			a := n.Attrs.(*graph.ScaleAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			var bias *tensor.Tensor
			if a.HasBias {
				bias = w(1, n)
			}
			kernels.ScaleRef(out, vals[n.Inputs[0]], w(0, n), bias)
			vals[n.Outputs[0]] = out
		case graph.OpEltwise:
			a := n.Attrs.(*graph.EltwiseAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, name := range n.Inputs {
				ins[i] = vals[name]
			}
			kernels.Eltwise(out, ins, a, nil)
			vals[n.Outputs[0]] = out
		case graph.OpConcat:
			a := n.Attrs.(*graph.ConcatAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, name := range n.Inputs {
				ins[i] = vals[name]
			}
			kernels.ConcatAxis(out, ins, a.Axis)
			vals[n.Outputs[0]] = out
		case graph.OpInnerProduct:
			a := n.Attrs.(*graph.InnerProductAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			in := vals[n.Inputs[0]]
			weight := w(0, n)
			if weight.Rank() != 2 {
				features := in.NumElements() / in.Dim(0)
				weight = weight.Reshape(a.OutputCount, features)
			}
			kernels.InnerProductRef(out, in, weight, w(1, n), a)
			vals[n.Outputs[0]] = out
		case graph.OpSoftmax:
			a := n.Attrs.(*graph.SoftmaxAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.SoftmaxRef(out, vals[n.Inputs[0]], a.Axis)
			vals[n.Outputs[0]] = out
		case graph.OpLayerNorm:
			a := n.Attrs.(*graph.LayerNormAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.LayerNormRef(out, vals[n.Inputs[0]], w(0, n), w(1, n), a.Eps)
			vals[n.Outputs[0]] = out
		case graph.OpGELU:
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.GELURef(out, vals[n.Inputs[0]])
			vals[n.Outputs[0]] = out
		case graph.OpMatMul:
			a := n.Attrs.(*graph.MatMulAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			if a.Heads > 0 {
				kernels.MatMulRef(out, vals[n.Inputs[0]], vals[n.Inputs[1]], nil, nil, a)
			} else {
				kernels.MatMulRef(out, vals[n.Inputs[0]], nil, w(0, n), w(1, n), a)
			}
			vals[n.Outputs[0]] = out
		case graph.OpTranspose:
			a := n.Attrs.(*graph.TransposeAttrs)
			out := tensor.New(shapes[n.Outputs[0]]...)
			kernels.TransposeRef(out, vals[n.Inputs[0]], a.Perm)
			vals[n.Outputs[0]] = out
		case graph.OpFlatten, graph.OpReshape:
			vals[n.Outputs[0]] = vals[n.Inputs[0]].Reshape(shapes[n.Outputs[0]]...)
		case graph.OpDropout:
			vals[n.Outputs[0]] = vals[n.Inputs[0]]
		case graph.OpPadding:
			a := n.Attrs.(*graph.PaddingAttrs)
			in := vals[n.Inputs[0]]
			out := tensor.New(shapes[n.Outputs[0]]...)
			for nn := 0; nn < in.Batch(); nn++ {
				for c := 0; c < in.Channels(); c++ {
					for y := 0; y < in.Height(); y++ {
						for x := 0; x < in.Width(); x++ {
							out.Set(nn, c, y+a.Top, x+a.Left, in.At(nn, c, y, x))
						}
					}
				}
			}
			vals[n.Outputs[0]] = out
		default:
			return nil, fmt.Errorf("reference: unhandled op %v", n.Op)
		}
	}
	out := map[string]*tensor.Tensor{}
	for _, name := range g.OutputNames {
		t, ok := vals[name]
		if !ok {
			return nil, fmt.Errorf("reference: output %q not produced", name)
		}
		out[name] = t
	}
	return out, nil
}

func shapesOf(inputs map[string]*tensor.Tensor) map[string][]int {
	if inputs == nil {
		return nil
	}
	m := map[string][]int{}
	for name, t := range inputs {
		m[name] = t.Shape()
	}
	return m
}
