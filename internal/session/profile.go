package session

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"mnn/internal/graph"
)

// ProfileEntry is one operator's measured cost in a profiled run.
type ProfileEntry struct {
	Node    string
	Op      graph.OpType
	Backend string
	// Wall is the host wall-clock time of the execution (staging copies
	// for the node are included).
	Wall time.Duration
}

// Profile is a per-operator breakdown of one inference.
type Profile struct {
	Entries []ProfileEntry
	Total   time.Duration
}

// RunProfiled executes one inference measuring every operator, the
// equivalent of the original engine's per-op profiler tooling. Like Run it
// checks ctx between operators; a nil ctx behaves like context.Background().
func (s *Session) RunProfiled(ctx context.Context) (*Profile, error) {
	if s.cfg.NoPreparation {
		if err := s.prepareFresh(); err != nil {
			return nil, err
		}
	}
	done, err := ctxDone(ctx)
	if err != nil {
		return nil, err
	}
	p := &Profile{Entries: make([]ProfileEntry, 0, len(s.steps))}
	start := time.Now()
	for _, b := range s.backends {
		b.OnExecuteBegin()
	}
	defer func() {
		for _, b := range s.backends {
			b.OnExecuteEnd()
		}
	}()
	for i := range s.steps {
		st := &s.steps[i]
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("session: cancelled at node %q: %w", st.node.Name, ctx.Err())
			default:
			}
		}
		t0 := time.Now()
		for _, c := range st.copies {
			if err := c.via.OnCopyBuffer(c.from, c.to); err != nil {
				return nil, fmt.Errorf("session: staging for %q: %w", st.node.Name, err)
			}
		}
		if err := st.exec.Run(); err != nil {
			return nil, fmt.Errorf("session: node %q: %w", st.node.Name, err)
		}
		p.Entries = append(p.Entries, ProfileEntry{
			Node:    st.node.Name,
			Op:      st.node.Op,
			Backend: s.assign[st.node.Name],
			Wall:    time.Since(t0),
		})
	}
	p.Total = time.Since(start)
	return p, nil
}

// ByOp aggregates total time per operator type, descending.
func (p *Profile) ByOp() []ProfileEntry {
	agg := map[graph.OpType]time.Duration{}
	for _, e := range p.Entries {
		agg[e.Op] += e.Wall
	}
	out := make([]ProfileEntry, 0, len(agg))
	for op, d := range agg {
		out = append(out, ProfileEntry{Op: op, Wall: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// Hottest returns the n slowest operators, descending.
func (p *Profile) Hottest(n int) []ProfileEntry {
	out := append([]ProfileEntry(nil), p.Entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// Dump writes a human-readable report.
func (p *Profile) Dump(w io.Writer, topN int) {
	fmt.Fprintf(w, "total: %.2f ms over %d ops\n", msOf(p.Total), len(p.Entries))
	fmt.Fprintf(w, "\nby op type:\n")
	for _, e := range p.ByOp() {
		pct := 0.0
		if p.Total > 0 {
			pct = float64(e.Wall) / float64(p.Total) * 100
		}
		fmt.Fprintf(w, "  %-14s %9.2f ms %5.1f%%\n", e.Op, msOf(e.Wall), pct)
	}
	fmt.Fprintf(w, "\nhottest %d operators:\n", topN)
	for _, e := range p.Hottest(topN) {
		fmt.Fprintf(w, "  %-28s %-12s %-8s %9.2f ms\n", e.Node, e.Op, e.Backend, msOf(e.Wall))
	}
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
