// Package session implements the inference session of Figure 2: it runs the
// complete pre-inference pipeline (shape inference → backend selection →
// computation-scheme selection → memory planning → constant pre-computation)
// once, and then serves arbitrarily many pure-compute inferences.
package session

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/fault"
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Config parameterizes session creation.
type Config struct {
	// Backends lists candidate backends; index 0 must be the CPU fallback.
	Backends []backend.Backend
	// Assignment optionally pins nodes to backends (by backend Name). Nil
	// runs the Equation 4–5 selection.
	Assignment core.Assignment
	// BackendCosts optionally supplies the cost totals behind a pinned
	// Assignment (e.g. the tuner's per-node scoring) for Stats reporting;
	// meaningful only with Assignment set.
	BackendCosts core.BackendCosts
	// InputShapes optionally overrides declared input shapes (resize).
	InputShapes map[string][]int
	// NoPreparation disables the preparation–execution decoupling: every
	// Run re-plans memory and re-creates executions, interleaving
	// management with compute the way Figure 3's left column shows. Used
	// by the Table 2 ablation.
	NoPreparation bool
	// Fault is the optional fault injector for the session.kernel site
	// (nil disables injection at zero cost).
	Fault *fault.Injector
}

// copyOp mirrors a produced tensor onto a consuming backend.
type copyOp struct {
	from, to *tensor.Tensor
	via      backend.Backend
}

// runStep is one node's execution with its staging copies.
type runStep struct {
	copies []copyOp
	exec   backend.Execution
	node   *graph.Node
	outs   []*tensor.Tensor // bound output tensors, for RunObserved
}

// Stats summarizes what pre-inference decided.
type Stats struct {
	// BackendCosts is the Equation 4 total per candidate backend.
	BackendCosts core.BackendCosts
	// Assignment maps node → backend name.
	Assignment core.Assignment
	// SchemeCounts counts convolutions per selected scheme.
	SchemeCounts map[string]int
	// ArenaFloats is the planned arena size (float32 elements) per backend.
	ArenaFloats map[string]int
	// NoReuseFloats is what the arenas would cost without lifetime reuse.
	NoReuseFloats map[string]int
	// PrepareTime is how long pre-inference took.
	PrepareTime time.Duration
	// CrossBackendCopies counts staging copies in the schedule.
	CrossBackendCopies int
}

// Session is a prepared inference pipeline.
type Session struct {
	g        *graph.Graph
	cfg      Config
	shapes   graph.ShapeMap
	assign   core.Assignment
	steps    []runStep
	inputs   map[string]*tensor.Tensor
	outputs  map[string]*tensor.Tensor
	backends []backend.Backend
	stats    Stats

	// Dynamic-shape state (see dynamic.go). bound retains the arena-wrapped
	// activation tensors from the last prepare so EnableDynamic can build
	// its name → tensor map; dyn is nil until EnableDynamic succeeds.
	bound map[string]*tensor.Tensor
	dyn   *dynState
}

// New builds a session, running the full pre-inference unless
// cfg.NoPreparation is set (in which case preparation happens inside every
// Run, for the Table 2 ablation).
func New(g *graph.Graph, cfg Config) (*Session, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("session: at least one backend (CPU fallback) required")
	}
	if cfg.Backends[0].Kind() != backend.KindCPU {
		return nil, fmt.Errorf("session: backend 0 must be the CPU fallback, got %v", cfg.Backends[0].Kind())
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	gg := g.Clone()
	gg.Nodes = nil
	for _, n := range order {
		gg.Nodes = append(gg.Nodes, n)
	}
	// Re-clone so node pointers are owned by the session copy.
	gg = gg.Clone()

	s := &Session{g: gg, cfg: cfg, backends: cfg.Backends}
	if !cfg.NoPreparation {
		start := time.Now()
		if err := s.prepare(); err != nil {
			return nil, err
		}
		s.stats.PrepareTime = time.Since(start)
	}
	return s, nil
}

// prepare runs the pre-inference pipeline.
func (s *Session) prepare() error {
	g := s.g
	shapes, err := graph.InferShapes(g, s.cfg.InputShapes)
	if err != nil {
		return err
	}
	s.shapes = shapes

	// ---- Backend selection (Equations 4–5). A pinned assignment skips the
	// whole-graph argmin and reports the costs its scorer supplied, so the
	// stats can never describe a schedule the session is not running.
	assign := s.cfg.Assignment
	costs := s.cfg.BackendCosts
	if assign == nil {
		providers := make([]core.CostProvider, len(s.backends))
		for i, b := range s.backends {
			providers[i] = b
		}
		assign, costs = core.SelectBackend(g, shapes, providers)
	}
	// Graph inputs always materialize on the CPU so callers can fill them.
	for _, n := range g.Nodes {
		if n.Op == graph.OpInput {
			assign[n.Name] = s.backends[0].Name()
		}
	}
	s.assign = assign
	s.stats.Assignment = assign
	s.stats.BackendCosts = costs

	byName := map[string]backend.Backend{}
	for _, b := range s.backends {
		byName[b.Name()] = b
	}
	nodeBackend := func(n *graph.Node) backend.Backend {
		if b, ok := byName[assign[n.Name]]; ok {
			return b
		}
		return s.backends[0]
	}

	// ---- Lifetime analysis for the memory planner (Figure 3).
	producerStep := map[string]int{}
	producerBk := map[string]backend.Backend{}
	type use struct {
		step int
		bk   backend.Backend
	}
	usesOf := map[string][]use{}
	for i, n := range g.Nodes {
		bk := nodeBackend(n)
		for _, o := range n.Outputs {
			producerStep[o] = i
			producerBk[o] = bk
		}
		for _, in := range n.Inputs {
			usesOf[in] = append(usesOf[in], use{step: i, bk: bk})
		}
	}
	lastStep := len(g.Nodes) - 1
	// Graph outputs must survive until the caller reads them; graph inputs
	// must survive across runs (the caller fills them once and re-runs), so
	// neither may be recycled by the arena.
	persistent := map[string]bool{}
	for _, o := range g.OutputNames {
		persistent[o] = true
	}
	for _, n := range g.Nodes {
		if n.Op == graph.OpInput {
			for _, o := range n.Outputs {
				persistent[o] = true
			}
		}
	}

	// mirror key for a tensor staged onto another backend.
	mirrorKey := func(name string, bk backend.Backend) string { return name + "@" + bk.Name() }

	// Acquire home buffers and mirrors; remember what to wrap afterwards.
	type pending struct {
		key   string
		bk    backend.Backend
		shape []int
	}
	var wraps []pending
	// mirrors[name] lists backends needing a staged copy, with def step.
	type mirrorInfo struct {
		bk       backend.Backend
		defStep  int
		lastStep int
	}
	mirrorsOf := map[string][]mirrorInfo{}

	for name, pStep := range producerStep {
		home := producerBk[name]
		shape := shapes[name]
		size := tensor.PhysicalLen(home.PreferredLayout(len(shape)), shape)
		last := pStep
		perBk := map[string]*mirrorInfo{}
		for _, u := range usesOf[name] {
			if u.bk == home {
				if u.step > last {
					last = u.step
				}
				continue
			}
			mi, ok := perBk[u.bk.Name()]
			if !ok {
				mi = &mirrorInfo{bk: u.bk, defStep: u.step, lastStep: u.step}
				perBk[u.bk.Name()] = mi
			}
			if u.step < mi.defStep {
				mi.defStep = u.step
			}
			if u.step > mi.lastStep {
				mi.lastStep = u.step
			}
		}
		for _, mi := range perBk {
			mirrorsOf[name] = append(mirrorsOf[name], *mi)
			// The home tensor must survive until the staging copy happens.
			if mi.defStep > last {
				last = mi.defStep
			}
		}
		if persistent[name] {
			last = lastStep
		}
		home.OnAcquireBuffer(name, size, pStep, backend.StorageDynamic)
		home.OnReleaseBuffer(name, last)
		wraps = append(wraps, pending{key: name, bk: home, shape: shape})
		for _, mi := range mirrorsOf[name] {
			msize := tensor.PhysicalLen(mi.bk.PreferredLayout(len(shape)), shape)
			mkey := mirrorKey(name, mi.bk)
			mi.bk.OnAcquireBuffer(mkey, msize, mi.defStep, backend.StorageDynamic)
			mi.bk.OnReleaseBuffer(mkey, mi.lastStep)
			wraps = append(wraps, pending{key: mkey, bk: mi.bk, shape: shape})
		}
	}

	// ---- Workspace planning: every kernel declares its transient needs
	// (GEMM panels, Strassen temporaries, Winograd tile buffers, staging
	// copies) up front, and the Figure 3 planner lays them into the same
	// reuse arena as the activations — a workspace lives only during its
	// node's step, so it shares bytes with dead activations and other
	// steps' workspaces. Steady-state Run then never touches the allocator.
	for i, n := range g.Nodes {
		bk := nodeBackend(n)
		sizer, ok := bk.(backend.WorkspaceSizer)
		if !ok {
			continue
		}
		ins := make([][]int, len(n.Inputs))
		for j, name := range n.Inputs {
			ins[j] = shapes[name]
		}
		outs := make([][]int, len(n.Outputs))
		for j, name := range n.Outputs {
			outs[j] = shapes[name]
		}
		if size := sizer.NodeWorkspaceFloats(n, ins, outs); size > 0 {
			key := backend.WorkspaceKey(n.Name)
			bk.OnAcquireBuffer(key, size, i, backend.StorageDynamic)
			bk.OnReleaseBuffer(key, i)
		}
	}

	// ---- Materialize arenas and wrap tensors.
	s.stats.ArenaFloats = map[string]int{}
	s.stats.NoReuseFloats = map[string]int{}
	for _, b := range s.backends {
		if err := b.OnAllocate(); err != nil {
			return err
		}
		s.stats.ArenaFloats[b.Name()] = b.ArenaSize()
		s.stats.NoReuseFloats[b.Name()] = b.NoReuseSize()
	}
	bound := map[string]*tensor.Tensor{}
	for _, w := range wraps {
		layout := w.bk.PreferredLayout(len(w.shape))
		bound[w.key+"#"+w.bk.Name()] = tensor.WrapBuffer(w.bk.Buffer(w.key), layout, w.shape...)
	}
	s.bound = bound
	lookup := func(key string, bk backend.Backend) *tensor.Tensor {
		return bound[key+"#"+bk.Name()]
	}

	// ---- Create executions with staging copies (pre-computed constants,
	// Figure 2's "match" step). Quantized (int8) weights from the model
	// compressor are dequantized once here, during pre-inference.
	dequantized := map[string]*tensor.Tensor{}
	weights := func(name string) *tensor.Tensor {
		t := s.g.Weights[name]
		if t == nil || t.DType() != tensor.Int8 {
			return t
		}
		if d, ok := dequantized[name]; ok {
			return d
		}
		d, err := t.Dequantize()
		if err != nil {
			// Unreachable: guarded by the dtype check above.
			return t
		}
		dequantized[name] = d
		return d
	}
	s.steps = nil
	s.stats.SchemeCounts = map[string]int{}
	copiedAt := map[string]bool{} // mirrorkey → staged already
	for i, n := range g.Nodes {
		bk := nodeBackend(n)
		var copies []copyOp
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for j, inName := range n.Inputs {
			home := producerBk[inName]
			if home == bk {
				ins[j] = lookup(inName, bk)
				continue
			}
			mkey := mirrorKey(inName, bk)
			mt := lookup(mkey, bk)
			ins[j] = mt
			// Stage only at the mirror's first consuming step.
			for _, mi := range mirrorsOf[inName] {
				if mi.bk == bk && mi.defStep == i && !copiedAt[mkey] {
					copies = append(copies, copyOp{from: lookup(inName, home), to: mt, via: bk})
					copiedAt[mkey] = true
				}
			}
			s.stats.CrossBackendCopies = len(copiedAt)
		}
		outs := make([]*tensor.Tensor, len(n.Outputs))
		for j, oName := range n.Outputs {
			outs[j] = lookup(oName, bk)
		}
		if n.Op == graph.OpConv2D {
			// Ask the owning backend which algorithm it will actually prepare
			// (a tuner override may differ from the bare heuristic).
			var dec core.ConvDecision
			if cs, ok := bk.(core.ConvSchemer); ok {
				dec = cs.ConvSchemeFor(n, shapes[n.Inputs[0]])
			} else {
				dec = core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), shapes[n.Inputs[0]])
			}
			s.stats.SchemeCounts[dec.Scheme.String()]++
		}
		exec, err := bk.OnCreate(n, ins, outs, weights)
		if err != nil {
			return fmt.Errorf("session: node %q on %s: %w", n.Name, bk.Name(), err)
		}
		s.steps = append(s.steps, runStep{copies: copies, exec: exec, node: n, outs: outs})
	}

	// ---- Bind graph inputs and outputs.
	s.inputs = map[string]*tensor.Tensor{}
	s.outputs = map[string]*tensor.Tensor{}
	for _, n := range g.Nodes {
		if n.Op == graph.OpInput {
			t := lookup(n.Outputs[0], nodeBackend(n))
			s.inputs[n.Outputs[0]] = t
		}
	}
	for _, o := range g.OutputNames {
		s.outputs[o] = lookup(o, producerBk[o])
	}
	return nil
}

// Input returns the writable input tensor (CPU-resident).
func (s *Session) Input(name string) *tensor.Tensor {
	if s.cfg.NoPreparation && s.inputs == nil {
		// Lazily prepare so the caller can fill inputs; Run will re-prepare.
		if err := s.prepareFresh(); err != nil {
			panic(err)
		}
	}
	return s.inputs[name]
}

// Output returns the tensor holding a declared graph output after Run.
func (s *Session) Output(name string) *tensor.Tensor { return s.outputs[name] }

// OutputNames lists the declared outputs.
func (s *Session) OutputNames() []string { return s.g.OutputNames }

// Stats returns pre-inference statistics.
func (s *Session) Stats() Stats { return s.stats }

// Shapes exposes the inferred shape map.
func (s *Session) Shapes() graph.ShapeMap { return s.shapes }

// prepareFresh clears backend state and re-runs preparation (the
// NoPreparation path, and Resize).
func (s *Session) prepareFresh() error {
	saved := map[string]*tensor.Tensor{}
	for name, t := range s.inputs {
		saved[name] = t.Clone()
	}
	for _, b := range s.backends {
		b.OnClearBuffer()
	}
	if err := s.prepare(); err != nil {
		return err
	}
	for name, t := range saved {
		if dst, ok := s.inputs[name]; ok && tensor.EqualShape(dst.Shape(), t.Shape()) {
			dst.CopyFrom(t)
		}
	}
	return nil
}

// ctxDone validates a (possibly nil) context before a run and returns its
// done channel; nil ctx behaves like context.Background().
func ctxDone(ctx context.Context) (<-chan struct{}, error) {
	if ctx == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("session: cancelled before run: %w", err)
	}
	return ctx.Done(), nil
}

// Run executes one inference. With preparation decoupled (the default) this
// is pure compute plus staging copies; with NoPreparation it interleaves
// planning, allocation and weight packing, reproducing the "w/o" rows of
// Table 2.
//
// Cancellation is checked between pipeline operators: a cancelled or expired
// ctx aborts the run before the next node and returns an error wrapping
// ctx.Err(). A nil ctx behaves like context.Background().
func (s *Session) Run(ctx context.Context) error {
	return s.RunObserved(ctx, nil)
}

// RunObserved is Run with a per-node observation hook: after each node
// executes, observe is called with the node and its bound output tensors
// (still backend-resident, in the backend's preferred layout — read, don't
// retain: the arena recycles them as the run proceeds). The calibration pass
// uses this to record activation ranges without disabling memory reuse.
func (s *Session) RunObserved(ctx context.Context, observe func(n *graph.Node, outputs []*tensor.Tensor)) error {
	if s.cfg.NoPreparation {
		if err := s.prepareFresh(); err != nil {
			return err
		}
	}
	done, err := ctxDone(ctx)
	if err != nil {
		return err
	}
	for _, b := range s.backends {
		b.OnExecuteBegin()
	}
	defer func() {
		for _, b := range s.backends {
			b.OnExecuteEnd()
		}
	}()
	for i := range s.steps {
		st := &s.steps[i]
		if done != nil {
			select {
			case <-done:
				return fmt.Errorf("session: cancelled at node %q: %w", st.node.Name, ctx.Err())
			default:
			}
		}
		if err := s.execStep(st); err != nil {
			return err
		}
		if observe != nil {
			observe(st.node, st.outs)
		}
	}
	return nil
}

// execStep runs one node — staging copies, optional injected fault, kernel
// execution — behind the session's containment barrier: a panic anywhere
// inside (the pool re-raises worker-lane panics on this goroutine) is
// recovered into an error carrying the op identity and the panicking stack,
// so a crashing kernel fails the inference instead of the process.
func (s *Session) execStep(st *runStep) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*sched.PanicError)
			if !ok {
				pe = &sched.PanicError{Value: r, Stack: debug.Stack()}
			}
			if pe.Op == "" {
				pe.Op = st.node.Name
			}
			err = fmt.Errorf("session: node %q: %w", st.node.Name, pe)
		}
	}()
	for _, c := range st.copies {
		if err := c.via.OnCopyBuffer(c.from, c.to); err != nil {
			return fmt.Errorf("session: staging for %q: %w", st.node.Name, err)
		}
	}
	if s.cfg.Fault != nil {
		if o := s.cfg.Fault.Hit(fault.SiteSessionKernel, st.node.Name); o != nil {
			if ferr := o.Apply(); ferr != nil {
				return fmt.Errorf("session: node %q: %w", st.node.Name, ferr)
			}
		}
	}
	if err := st.exec.Run(); err != nil {
		return fmt.Errorf("session: node %q: %w", st.node.Name, err)
	}
	return nil
}

// Close releases backend-owned resources (persistent worker pools). The
// session remains usable afterwards with inline execution; Close is
// idempotent and safe on a nil session.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	for _, b := range s.backends {
		if c, ok := b.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Resize re-runs pre-inference with new input shapes.
func (s *Session) Resize(inputShapes map[string][]int) error {
	s.cfg.InputShapes = inputShapes
	s.inputs = nil
	s.outputs = nil
	for _, b := range s.backends {
		b.OnClearBuffer()
	}
	start := time.Now()
	if err := s.prepare(); err != nil {
		return err
	}
	s.stats.PrepareTime = time.Since(start)
	return nil
}
