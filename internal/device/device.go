// Package device defines the hardware profiles the engine's cost model and
// the benchmark simulator run against. The constants come straight from
// Appendix C of the paper: CPU capability is the sum of the k largest core
// frequencies, GPU capability is the measured per-GPU FLOPS list, and
// t_schedule is the per-dispatch driver overhead of each graphics API.
//
// Physical phones are unavailable in this reproduction (DESIGN.md,
// substitution #2), so these profiles drive a simulated clock instead of a
// real SoC; every number that the paper specifies is used verbatim.
package device

import "fmt"

// GPUAPI enumerates the graphics compute standards of Section 3.4.
type GPUAPI uint8

const (
	APINone GPUAPI = iota
	APIMetal
	APIOpenCL
	APIOpenGL
	APIVulkan
)

func (a GPUAPI) String() string {
	switch a {
	case APIMetal:
		return "Metal"
	case APIOpenCL:
		return "OpenCL"
	case APIOpenGL:
		return "OpenGL"
	case APIVulkan:
		return "Vulkan"
	default:
		return "None"
	}
}

// ScheduleOverheadMs returns t_schedule from Appendix C: 0.05 ms for
// OpenCL/OpenGL (clEnqueueNDRKernel-class calls), 0.01 ms for Vulkan
// (command-buffer submission only). Metal behaves like Vulkan's
// command-buffer model. CPU dispatch has no such term.
func (a GPUAPI) ScheduleOverheadMs() float64 {
	switch a {
	case APIOpenCL, APIOpenGL:
		return 0.05
	case APIVulkan, APIMetal:
		return 0.01
	default:
		return 0
	}
}

// gpuFLOPS is the Appendix C list (units: FLOPS, i.e. entries ×10⁹).
var gpuFLOPS = map[string]float64{
	"Mali-T860":       6.83e9,
	"Mali-T880":       6.83e9,
	"Mali-G51":        6.83e9,
	"Mali-G52":        6.83e9,
	"Mali-G71":        31.61e9,
	"Mali-G72":        31.61e9,
	"Mali-G76":        31.61e9,
	"Adreno (TM) 505": 3.19e9,
	"Adreno (TM) 506": 4.74e9,
	"Adreno (TM) 512": 14.23e9,
	"Adreno (TM) 530": 25.40e9,
	"Adreno (TM) 540": 42.74e9,
	"Adreno (TM) 615": 16.77e9,
	"Adreno (TM) 616": 18.77e9,
	"Adreno (TM) 618": 18.77e9,
	"Adreno (TM) 630": 42.74e9,
	"Adreno (TM) 640": 42.74e9,
	// Apple GPUs are not in the published list (the paper only measures
	// them through Metal); the A11's GPU is comparable to the Adreno 540
	// class in the paper's Figure 7, so it gets the same bucket.
	"Apple A11 GPU": 42.74e9,
}

// DefaultGPUFLOPS is the Appendix C fallback for GPUs not in the list:
// 4×10⁹, "faster than CPU, as is the normal case".
const DefaultGPUFLOPS = 4e9

// DefaultCPUFLOPS is the Appendix C fallback when core frequencies cannot
// be read: 2×10⁹.
const DefaultCPUFLOPS = 2e9

// GPUFLOPSFor looks up the Appendix C table, falling back per the paper.
func GPUFLOPSFor(gpu string) float64 {
	if f, ok := gpuFLOPS[gpu]; ok {
		return f
	}
	return DefaultGPUFLOPS
}

// Profile describes one device.
type Profile struct {
	Name string // marketing name, e.g. "MI6"
	SoC  string
	OS   string // "iOS" or "Android"

	// CPUFreqsGHz lists per-core maximum frequencies, sorted descending.
	CPUFreqsGHz []float64

	GPU     string
	GPUAPIs []GPUAPI
}

// CPUFLOPS implements Appendix C: the sum of the k largest core frequencies
// (k = thread count), in Hz. Falls back to DefaultCPUFLOPS when no
// frequency data is available.
func (p *Profile) CPUFLOPS(threads int) float64 {
	if len(p.CPUFreqsGHz) == 0 {
		return DefaultCPUFLOPS
	}
	if threads < 1 {
		threads = 1
	}
	if threads > len(p.CPUFreqsGHz) {
		threads = len(p.CPUFreqsGHz)
	}
	var sum float64
	for _, f := range p.CPUFreqsGHz[:threads] {
		sum += f * 1e9
	}
	return sum
}

// GPUFLOPS resolves the profile's GPU against the Appendix C table.
func (p *Profile) GPUFLOPS() float64 {
	if p.GPU == "" {
		return 0
	}
	return GPUFLOPSFor(p.GPU)
}

// HasAPI reports whether the device exposes the given graphics API.
func (p *Profile) HasAPI(api GPUAPI) bool {
	for _, a := range p.GPUAPIs {
		if a == api {
			return true
		}
	}
	return false
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s (%s, GPU %s)", p.Name, p.SoC, p.GPU)
}

var androidAPIs = []GPUAPI{APIOpenCL, APIOpenGL, APIVulkan}

// The benchmark devices of Section 4 and the appendix tables.
var (
	// MI6: Snapdragon 835, Kryo 280 (4×2.45 + 4×1.90 GHz), Adreno 540.
	MI6 = &Profile{
		Name: "MI6", SoC: "Snapdragon 835", OS: "Android",
		CPUFreqsGHz: []float64{2.45, 2.45, 2.45, 2.45, 1.90, 1.90, 1.90, 1.90},
		GPU:         "Adreno (TM) 540", GPUAPIs: androidAPIs,
	}
	// Mate20: Kirin 980 (2×2.60 + 2×1.92 + 4×1.80 GHz), Mali-G76.
	Mate20 = &Profile{
		Name: "Mate20", SoC: "Kirin 980", OS: "Android",
		CPUFreqsGHz: []float64{2.60, 2.60, 1.92, 1.92, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Mali-G76", GPUAPIs: androidAPIs,
	}
	// P10: Kirin 960, Cortex-A73 (4×2.36 + 4×1.84 GHz), Mali-G71.
	P10 = &Profile{
		Name: "P10", SoC: "Kirin 960", OS: "Android",
		CPUFreqsGHz: []float64{2.36, 2.36, 2.36, 2.36, 1.84, 1.84, 1.84, 1.84},
		GPU:         "Mali-G71", GPUAPIs: androidAPIs,
	}
	// P20 / P20 Pro: Kirin 970 (4×2.36 + 4×1.80 GHz), Mali-G72.
	P20 = &Profile{
		Name: "P20", SoC: "Kirin 970", OS: "Android",
		CPUFreqsGHz: []float64{2.36, 2.36, 2.36, 2.36, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Mali-G72", GPUAPIs: androidAPIs,
	}
	P20Pro = &Profile{
		Name: "P20 Pro", SoC: "Kirin 970", OS: "Android",
		CPUFreqsGHz: []float64{2.36, 2.36, 2.36, 2.36, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Mali-G72", GPUAPIs: androidAPIs,
	}
	// iPhone8 / iPhoneX: Apple A11 Bionic (2×2.39 + 4×1.70 GHz), Metal only.
	IPhone8 = &Profile{
		Name: "iPhone8", SoC: "Apple A11 Bionic", OS: "iOS",
		CPUFreqsGHz: []float64{2.39, 2.39, 1.70, 1.70, 1.70, 1.70},
		GPU:         "Apple A11 GPU", GPUAPIs: []GPUAPI{APIMetal},
	}
	IPhoneX = &Profile{
		Name: "iPhoneX", SoC: "Apple A11 Bionic", OS: "iOS",
		CPUFreqsGHz: []float64{2.39, 2.39, 1.70, 1.70, 1.70, 1.70},
		GPU:         "Apple A11 GPU", GPUAPIs: []GPUAPI{APIMetal},
	}
	// Pixel 2: Snapdragon 835. Pixel 3: Snapdragon 845 (Adreno 630).
	Pixel2 = &Profile{
		Name: "Pixel 2", SoC: "Snapdragon 835", OS: "Android",
		CPUFreqsGHz: []float64{2.35, 2.35, 2.35, 2.35, 1.90, 1.90, 1.90, 1.90},
		GPU:         "Adreno (TM) 540", GPUAPIs: androidAPIs,
	}
	Pixel3 = &Profile{
		Name: "Pixel 3", SoC: "Snapdragon 845", OS: "Android",
		CPUFreqsGHz: []float64{2.50, 2.50, 2.50, 2.50, 1.77, 1.77, 1.77, 1.77},
		GPU:         "Adreno (TM) 630", GPUAPIs: androidAPIs,
	}
	// Galaxy S8 (Table 5's TVM host): Snapdragon 835 variant.
	GalaxyS8 = &Profile{
		Name: "Galaxy S8", SoC: "Snapdragon 835", OS: "Android",
		CPUFreqsGHz: []float64{2.35, 2.35, 2.35, 2.35, 1.90, 1.90, 1.90, 1.90},
		GPU:         "Adreno (TM) 540", GPUAPIs: androidAPIs,
	}

	// Table 6's top-5 production devices.
	EMLAL00 = &Profile{ // Huawei P20, Kirin 970
		Name: "EML-AL00", SoC: "Kirin 970", OS: "Android",
		CPUFreqsGHz: []float64{2.36, 2.36, 2.36, 2.36, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Mali-G72", GPUAPIs: androidAPIs,
	}
	PBEM00 = &Profile{ // OPPO, SDM670
		Name: "PBEM00", SoC: "SDM670", OS: "Android",
		CPUFreqsGHz: []float64{2.00, 2.00, 1.70, 1.70, 1.70, 1.70, 1.70, 1.70},
		GPU:         "Adreno (TM) 615", GPUAPIs: androidAPIs,
	}
	PACM00 = &Profile{ // OPPO R15, Cortex-A73
		Name: "PACM00", SoC: "Helio P60", OS: "Android",
		CPUFreqsGHz: []float64{2.00, 2.00, 2.00, 2.00, 2.00, 2.00, 2.00, 2.00},
		GPU:         "Mali-G72", GPUAPIs: androidAPIs,
	}
	COLAL10 = &Profile{ // Honor 10, Kirin 970
		Name: "COL-AL10", SoC: "Kirin 970", OS: "Android",
		CPUFreqsGHz: []float64{2.36, 2.36, 2.36, 2.36, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Mali-G72", GPUAPIs: androidAPIs,
	}
	OPPOR11 = &Profile{ // Snapdragon 660, Kryo 260
		Name: "OPPO R11", SoC: "Snapdragon 660", OS: "Android",
		CPUFreqsGHz: []float64{2.20, 2.20, 2.20, 2.20, 1.80, 1.80, 1.80, 1.80},
		GPU:         "Adreno (TM) 512", GPUAPIs: androidAPIs,
	}

	// Host is a profile for the machine the test suite runs on: no
	// simulated GPU, generic CPU. Used when real wall-clock is measured.
	Host = &Profile{
		Name: "Host", SoC: "host", OS: "linux",
		CPUFreqsGHz: []float64{2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0},
	}
)

// All enumerates every built-in profile.
func All() []*Profile {
	return []*Profile{MI6, Mate20, P10, P20, P20Pro, IPhone8, IPhoneX, Pixel2, Pixel3,
		GalaxyS8, EMLAL00, PBEM00, PACM00, COLAL10, OPPOR11, Host}
}

// ByName finds a profile (case-sensitive); nil if absent.
func ByName(name string) *Profile {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
