package device

import "testing"

func TestCPUFLOPSSumsTopFrequencies(t *testing.T) {
	// MI6 (Kryo 280): 4×2.45 + 4×1.90 GHz.
	if got := MI6.CPUFLOPS(1); got != 2.45e9 {
		t.Errorf("1 thread: %g", got)
	}
	if got := MI6.CPUFLOPS(4); got != 4*2.45e9 {
		t.Errorf("4 threads: %g", got)
	}
	// More threads than cores clamps.
	if got := MI6.CPUFLOPS(100); got != (4*2.45+4*1.90)*1e9 {
		t.Errorf("overcommit: %g", got)
	}
	if got := MI6.CPUFLOPS(0); got != 2.45e9 {
		t.Errorf("zero threads: %g", got)
	}
}

func TestCPUFLOPSFallback(t *testing.T) {
	p := &Profile{Name: "bare"}
	if got := p.CPUFLOPS(4); got != DefaultCPUFLOPS {
		t.Errorf("fallback: %g", got)
	}
}

func TestGPUFLOPSAppendixValues(t *testing.T) {
	cases := map[string]float64{
		"Adreno (TM) 540": 42.74e9,
		"Mali-G72":        31.61e9,
		"Mali-T860":       6.83e9,
		"Adreno (TM) 615": 16.77e9,
	}
	for gpu, want := range cases {
		if got := GPUFLOPSFor(gpu); got != want {
			t.Errorf("%s: got %g want %g", gpu, got, want)
		}
	}
	if got := GPUFLOPSFor("UnknownGPU 9000"); got != DefaultGPUFLOPS {
		t.Errorf("unknown GPU fallback: %g", got)
	}
}

func TestScheduleOverheads(t *testing.T) {
	if APIOpenCL.ScheduleOverheadMs() != 0.05 || APIOpenGL.ScheduleOverheadMs() != 0.05 {
		t.Error("OpenCL/OpenGL t_schedule must be 0.05 ms (Appendix C)")
	}
	if APIVulkan.ScheduleOverheadMs() != 0.01 {
		t.Error("Vulkan t_schedule must be 0.01 ms (Appendix C)")
	}
	if APINone.ScheduleOverheadMs() != 0 {
		t.Error("CPU has no t_schedule")
	}
}

func TestDeviceProfiles(t *testing.T) {
	for _, p := range All() {
		if p.Name == "" {
			t.Error("unnamed profile")
		}
		if p.OS == "iOS" && !p.HasAPI(APIMetal) {
			t.Errorf("%s: iOS device must expose Metal", p.Name)
		}
		if p.OS == "Android" && p.HasAPI(APIMetal) {
			t.Errorf("%s: Android device must not expose Metal", p.Name)
		}
	}
	if ByName("MI6") != MI6 {
		t.Error("ByName lookup failed")
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName must return nil for unknown device")
	}
}

func TestTable6DevicesPresent(t *testing.T) {
	for _, name := range []string{"EML-AL00", "PBEM00", "PACM00", "COL-AL10", "OPPO R11"} {
		if ByName(name) == nil {
			t.Errorf("Table 6 device %q missing", name)
		}
	}
}
