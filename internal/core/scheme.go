// Package core implements the paper's primary contribution: the
// pre-inference mechanism of Section 3.2. Given a graph whose input sizes
// are fixed, it selects
//
//   - the computation scheme of every convolution (sliding window vs.
//     Winograd with cost-optimal tile size vs. Strassen matmul for 1×1) via
//     the cost model of Equations 2–3, and
//   - the backend of every operator via the cost model of Equations 4–5,
//
// all before the first real inference runs, so that execution is pure
// compute (Figure 3).
package core

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/matmul"
)

// ConvScheme identifies the algorithm chosen for a convolution.
type ConvScheme uint8

const (
	// SchemeSliding is the direct sliding-window kernel.
	SchemeSliding ConvScheme = iota
	// SchemeWinograd is F(n̂×n̂, k×k) Winograd (per-axis for asymmetric k).
	SchemeWinograd
	// SchemeStrassen1x1 lowers a 1×1 convolution to a Strassen matmul.
	SchemeStrassen1x1
	// SchemeDepthwise is the dedicated depthwise kernel.
	SchemeDepthwise
	// SchemeIm2col is the generic im2col+GEMM fallback (grouped convs etc.).
	SchemeIm2col
)

func (s ConvScheme) String() string {
	switch s {
	case SchemeSliding:
		return "sliding"
	case SchemeWinograd:
		return "winograd"
	case SchemeStrassen1x1:
		return "strassen-1x1"
	case SchemeDepthwise:
		return "depthwise"
	case SchemeIm2col:
		return "im2col"
	default:
		return fmt.Sprintf("ConvScheme(%d)", uint8(s))
	}
}

// ConvDecision is the outcome of scheme selection for one convolution.
type ConvDecision struct {
	Scheme ConvScheme
	// TileH/TileW are the Winograd output tile sizes n̂ per axis (Eq. 2);
	// meaningful only when Scheme == SchemeWinograd.
	TileH, TileW int
	// EffMULs is the effective multiplication count of the chosen scheme
	// (the MUL term of Eq. 5 after algorithmic savings), used by the
	// simulated clock.
	EffMULs int64
	// DirectMULs is the naive multiplication count, kept for reporting.
	DirectMULs int64
	// CostPerPixel is the model's predicted per-output-pixel cost in
	// multiply-equivalents, for diagnostics.
	CostPerPixel float64
}

// Int8ConvSupported reports whether the prepared int8 kernel set covers a
// convolution decision: depthwise convolutions, and group-1 convolutions
// whose scheme lowers to a GEMM (1×1 Strassen, im2col). Winograd- and
// sliding-scheme convolutions stay fp32 — Winograd's algorithmic savings
// (2–4× fewer multiplies) dwarf what the int8 GEMM wins per multiply, and
// sliding shapes are too small to amortize quantization. Both the offline
// int8 planner (optimizer.PlanInt8) and the CPU backend's dispatch consult
// this single predicate so the partition can never drift between them.
func Int8ConvSupported(a *graph.Conv2DAttrs, dec ConvDecision) bool {
	if a.IsDepthwise() {
		return true
	}
	if a.Group > 1 {
		return false
	}
	return dec.Scheme == SchemeStrassen1x1 || dec.Scheme == SchemeIm2col
}

// winoTileCandidates are the output tile sizes considered for n̂ (Eq. 2).
// MNN's implementation bounds the transform size; beyond n=6 the float32
// transforms lose too much precision to be useful.
var winoTileCandidates = []int{2, 4, 6}

// TrafficCostFactor converts one float of kernel memory traffic into
// multiply-equivalents for the scheme cost model. Equation 2 counts
// arithmetic only; on real kernels the Winograd gather/scatter traffic is
// what makes small-channel convolutions favor sliding window (the paper's
// Table 1, first column). Calibrated once against this repo's kernels.
var TrafficCostFactor = 2.0

// SelectConvScheme implements Equations 2–3 extended with a traffic term:
// it evaluates the per-output-pixel cost of the sliding-window kernel and of
// every Winograd tile candidate, and returns the argmin. 1×1 convolutions
// lower to Strassen matmul, depthwise convolutions to the dedicated kernel,
// and configurations outside the fast paths (groups, stride/dilation with
// k > 1 restrictions) fall back to im2col.
func SelectConvScheme(a *graph.Conv2DAttrs, inShape []int) ConvDecision {
	ic := a.InputCount
	if ic == 0 && len(inShape) == 4 {
		ic = inShape[1]
	}
	oc := a.OutputCount
	ih, iw := inShape[2], inShape[3]
	oh, ow, err := graph.ConvOutputSize(ih, iw, a)
	if err != nil {
		oh, ow = 1, 1
	}
	n := inShape[0]
	outPixels := int64(n) * int64(oh) * int64(ow)
	group := a.Group
	if group <= 0 {
		group = 1
	}
	direct := outPixels * int64(oc) * int64(ic/group) * int64(a.KernelH) * int64(a.KernelW)

	dec := ConvDecision{DirectMULs: direct}

	switch {
	case a.IsDepthwise():
		dec.Scheme = SchemeDepthwise
		dec.EffMULs = direct
		dec.CostPerPixel = float64(a.KernelH * a.KernelW)
		return dec
	case group > 1:
		dec.Scheme = SchemeIm2col
		dec.EffMULs = direct
		dec.CostPerPixel = float64(ic/group*a.KernelH*a.KernelW) * float64(oc)
		return dec
	case a.KernelH == 1 && a.KernelW == 1:
		// Rule 1 of Section 3.2: k = 1 is a matrix multiplication;
		// Strassen applies.
		dec.Scheme = SchemeStrassen1x1
		dec.EffMULs = matmul.StrassenMULs(int(outPixels), ic, oc)
		dec.CostPerPixel = float64(ic) * float64(oc)
		return dec
	}

	// Sliding-window cost per output pixel (all output channels).
	slidingCost := float64(ic) * float64(a.KernelH) * float64(a.KernelW) * float64(oc)

	// Winograd applies only to stride-1, dilation-1 convolutions.
	winoOK := strideOr1(a.StrideH) == 1 && strideOr1(a.StrideW) == 1 &&
		dilOr1(a.DilationH) == 1 && dilOr1(a.DilationW) == 1 &&
		a.KernelH+minTile-1 <= maxTransform && a.KernelW+minTile-1 <= maxTransform &&
		a.KernelH <= ih && a.KernelW <= iw

	bestCost := slidingCost
	bestTile := 0
	if winoOK {
		for _, t := range winoTileCandidates {
			nh, nw := t, t
			if a.KernelH == 1 {
				nh = 1
			}
			if a.KernelW == 1 {
				nw = 1
			}
			mh := nh + a.KernelH - 1
			mw := nw + a.KernelW - 1
			if mh > maxTransform || mw > maxTransform {
				continue
			}
			c := winoCostPerPixel(nh, nw, a.KernelH, a.KernelW, ic, oc, oh, ow)
			if c < bestCost {
				bestCost = c
				bestTile = t
			}
		}
	}

	if bestTile == 0 {
		// Equation 3's first branch: n̂ = 1 ⇒ sliding window.
		dec.Scheme = SchemeSliding
		dec.EffMULs = direct
		dec.CostPerPixel = slidingCost
		return dec
	}

	nh, nw := bestTile, bestTile
	if a.KernelH == 1 {
		nh = 1
	}
	if a.KernelW == 1 {
		nw = 1
	}
	dec.Scheme = SchemeWinograd
	dec.TileH, dec.TileW = nh, nw
	dec.CostPerPixel = bestCost
	tiles := int64(n) * int64(upDiv(oh, nh)) * int64(upDiv(ow, nw))
	arith, traffic := winoPerTileCost(nh, nw, a.KernelH, a.KernelW, ic, oc)
	dec.EffMULs = tiles * int64(arith+TrafficCostFactor*traffic)
	return dec
}

const (
	minTile      = 2
	maxTransform = 10 // n+k-1 bound for usable float32 transforms
)

// winoCostPerPixel evaluates Equation 2 per tile, multiplies by the number
// of tiles actually launched for an oh×ow output (edge tiles compute wasted
// lanes — this is what makes large tiles lose on small feature maps, the
// paper's Table 1 second column), adds the memory-traffic term that
// Equation 2 omits, and normalizes per useful output pixel.
func winoCostPerPixel(nh, nw, kh, kw, ic, oc, oh, ow int) float64 {
	arith, traffic := winoPerTileCost(nh, nw, kh, kw, ic, oc)
	perTile := arith + TrafficCostFactor*traffic
	tiles := float64(upDiv(oh, nh)) * float64(upDiv(ow, nw))
	return perTile * tiles / float64(oh*ow)
}

// winoPerTileCost returns the Equation 2 arithmetic count and the memory
// traffic of one Winograd tile, generalized to rectangular transforms (an
// axis with kernel size 1 has mh or mw = nh or nw): input transform
// ic·(mh+mw)·mh·mw, Hadamard ic·oc·mh·mw, output transform per channel, and
// the Figure 4 data flow's reads/writes.
func winoPerTileCost(nh, nw, kh, kw, ic, oc int) (arith, traffic float64) {
	mh := nh + kh - 1
	mw := nw + kw - 1
	arith = float64(ic)*float64(mh+mw)*float64(mh*mw) +
		float64(ic*oc)*float64(mh*mw) +
		float64(nh*mw)*float64(nh+mh)
	traffic = float64(mh*mw*(2*ic)) + float64(nh*nw*oc) + float64(mh*mw*oc)
	return arith, traffic
}

func upDiv(a, b int) int { return (a + b - 1) / b }

func strideOr1(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

func dilOr1(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}
