// Package core implements the paper's primary contribution: the
// pre-inference mechanism of Section 3.2. Given a graph whose input sizes
// are fixed, it selects
//
//   - the computation scheme of every convolution (sliding window vs.
//     Winograd with cost-optimal tile size vs. Strassen matmul for 1×1) via
//     the cost model of Equations 2–3, and
//   - the backend of every operator via the cost model of Equations 4–5,
//
// all before the first real inference runs, so that execution is pure
// compute (Figure 3).
package core

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/matmul"
)

// ConvScheme identifies the algorithm chosen for a convolution.
type ConvScheme uint8

const (
	// SchemeSliding is the direct sliding-window kernel.
	SchemeSliding ConvScheme = iota
	// SchemeWinograd is F(n̂×n̂, k×k) Winograd (per-axis for asymmetric k).
	SchemeWinograd
	// SchemeStrassen1x1 lowers a 1×1 convolution to a Strassen matmul.
	SchemeStrassen1x1
	// SchemeDepthwise is the dedicated depthwise kernel.
	SchemeDepthwise
	// SchemeIm2col is the generic im2col+GEMM fallback (grouped convs etc.).
	SchemeIm2col
)

func (s ConvScheme) String() string {
	switch s {
	case SchemeSliding:
		return "sliding"
	case SchemeWinograd:
		return "winograd"
	case SchemeStrassen1x1:
		return "strassen-1x1"
	case SchemeDepthwise:
		return "depthwise"
	case SchemeIm2col:
		return "im2col"
	default:
		return fmt.Sprintf("ConvScheme(%d)", uint8(s))
	}
}

// ConvDecision is the outcome of scheme selection for one convolution.
type ConvDecision struct {
	Scheme ConvScheme
	// TileH/TileW are the Winograd output tile sizes n̂ per axis (Eq. 2);
	// meaningful only when Scheme == SchemeWinograd.
	TileH, TileW int
	// EffMULs is the effective multiplication count of the chosen scheme
	// (the MUL term of Eq. 5 after algorithmic savings), used by the
	// simulated clock.
	EffMULs int64
	// DirectMULs is the naive multiplication count, kept for reporting.
	DirectMULs int64
	// CostPerPixel is the model's predicted per-output-pixel cost in
	// multiply-equivalents, for diagnostics.
	CostPerPixel float64
}

// Int8ConvSupported reports whether the prepared int8 kernel set covers a
// convolution decision: depthwise convolutions, and group-1 convolutions
// whose scheme lowers to a GEMM (1×1 Strassen, im2col). Winograd- and
// sliding-scheme convolutions stay fp32 — Winograd's algorithmic savings
// (2–4× fewer multiplies) dwarf what the int8 GEMM wins per multiply, and
// sliding shapes are too small to amortize quantization. Both the offline
// int8 planner (optimizer.PlanInt8) and the CPU backend's dispatch consult
// this single predicate so the partition can never drift between them.
func Int8ConvSupported(a *graph.Conv2DAttrs, dec ConvDecision) bool {
	if a.IsDepthwise() {
		return true
	}
	if a.Group > 1 {
		return false
	}
	return dec.Scheme == SchemeStrassen1x1 || dec.Scheme == SchemeIm2col
}

// winoTileCandidates are the output tile sizes considered for n̂ (Eq. 2).
// MNN's implementation bounds the transform size; beyond n=6 the float32
// transforms lose too much precision to be useful.
var winoTileCandidates = []int{2, 4, 6}

// WinogradTileCandidates exposes the n̂ candidates (the tuner enumerates one
// candidate per tile so measurement can disagree with Equation 2).
func WinogradTileCandidates() []int { return append([]int(nil), winoTileCandidates...) }

// ---- Legality predicates.
//
// These are the single source of truth for which algorithm may run a given
// convolution. SelectConvScheme (the heuristic), the tuner's candidate
// enumeration and the conformance suite all consult the same predicates, so
// a candidate the tuner proposes is always one the prepared kernels accept.

// DepthwiseLegal reports whether the dedicated depthwise kernel applies.
func DepthwiseLegal(a *graph.Conv2DAttrs) bool { return a.IsDepthwise() }

// SlidingLegal reports whether the sliding-window kernel applies: it packs
// the full [oc, ic] filter block, so grouped convolutions are out.
func SlidingLegal(a *graph.Conv2DAttrs) bool { return a.Group <= 1 }

// Im2colLegal reports whether the im2col+GEMM path applies. It is the
// universal fallback: any group count whose channels divide evenly.
func Im2colLegal(a *graph.Conv2DAttrs, ic int) bool {
	g := a.Group
	if g <= 0 {
		g = 1
	}
	return a.OutputCount%g == 0 && (ic == 0 || ic%g == 0)
}

// Strassen1x1Legal reports whether the Strassen-matmul lowering applies:
// 1×1 kernel, group 1, and zero effective padding (the kernel's pixel
// gather assumes the output grid maps straight onto strided input pixels).
func Strassen1x1Legal(a *graph.Conv2DAttrs, inShape []int) bool {
	if a.KernelH != 1 || a.KernelW != 1 || a.Group > 1 {
		return false
	}
	if len(inShape) != 4 {
		return false
	}
	ph, pw := graph.ConvPadding(inShape[2], inShape[3], a)
	return ph == 0 && pw == 0
}

// WinogradLegal reports whether F(n̂×n̂, k×k) Winograd applies at the given
// tile size: stride 1, dilation 1, group 1, a kernel that actually covers
// more than one tap, transforms within the usable float32 bound, and a
// kernel no larger than the input.
func WinogradLegal(a *graph.Conv2DAttrs, inShape []int, tile int) bool {
	if strideOr1(a.StrideH) != 1 || strideOr1(a.StrideW) != 1 ||
		dilOr1(a.DilationH) != 1 || dilOr1(a.DilationW) != 1 || a.Group > 1 {
		return false
	}
	if a.KernelH <= 1 && a.KernelW <= 1 {
		return false
	}
	if len(inShape) != 4 || a.KernelH > inShape[2] || a.KernelW > inShape[3] {
		return false
	}
	nh, nw := tile, tile
	if a.KernelH == 1 {
		nh = 1
	}
	if a.KernelW == 1 {
		nw = 1
	}
	return nh+a.KernelH-1 <= maxTransform && nw+a.KernelW-1 <= maxTransform
}

// TrafficCostFactor converts one float of kernel memory traffic into
// multiply-equivalents for the scheme cost model. Equation 2 counts
// arithmetic only; on real kernels the Winograd gather/scatter traffic is
// what makes small-channel convolutions favor sliding window (the paper's
// Table 1, first column). Calibrated once against this repo's kernels.
var TrafficCostFactor = 2.0

// SelectConvScheme implements Equations 2–3 extended with a traffic term:
// it evaluates the per-output-pixel cost of the sliding-window kernel and of
// every Winograd tile candidate, and returns the argmin. 1×1 convolutions
// lower to Strassen matmul, depthwise convolutions to the dedicated kernel,
// and configurations outside the fast paths (groups, stride/dilation with
// k > 1 restrictions) fall back to im2col.
func SelectConvScheme(a *graph.Conv2DAttrs, inShape []int) ConvDecision {
	ic := a.InputCount
	if ic == 0 && len(inShape) == 4 {
		ic = inShape[1]
	}
	oc := a.OutputCount
	ih, iw := inShape[2], inShape[3]
	oh, ow, err := graph.ConvOutputSize(ih, iw, a)
	if err != nil {
		oh, ow = 1, 1
	}
	n := inShape[0]
	outPixels := int64(n) * int64(oh) * int64(ow)
	group := a.Group
	if group <= 0 {
		group = 1
	}
	direct := outPixels * int64(oc) * int64(ic/group) * int64(a.KernelH) * int64(a.KernelW)

	dec := ConvDecision{DirectMULs: direct}

	switch {
	case DepthwiseLegal(a):
		dec.Scheme = SchemeDepthwise
		dec.EffMULs = direct
		dec.CostPerPixel = float64(a.KernelH * a.KernelW)
		return dec
	case group > 1:
		dec.Scheme = SchemeIm2col
		dec.EffMULs = direct
		dec.CostPerPixel = float64(ic/group*a.KernelH*a.KernelW) * float64(oc)
		return dec
	case Strassen1x1Legal(a, inShape):
		// Rule 1 of Section 3.2: k = 1 is a matrix multiplication;
		// Strassen applies.
		dec.Scheme = SchemeStrassen1x1
		dec.EffMULs = matmul.StrassenMULs(int(outPixels), ic, oc)
		dec.CostPerPixel = float64(ic) * float64(oc)
		return dec
	}

	// Sliding-window cost per output pixel (all output channels).
	slidingCost := float64(ic) * float64(a.KernelH) * float64(a.KernelW) * float64(oc)

	bestCost := slidingCost
	bestTile := 0
	for _, t := range winoTileCandidates {
		// Winograd applies only to stride-1, dilation-1 convolutions with
		// transforms inside the usable float32 bound.
		if !WinogradLegal(a, inShape, t) {
			continue
		}
		nh, nw := t, t
		if a.KernelH == 1 {
			nh = 1
		}
		if a.KernelW == 1 {
			nw = 1
		}
		c := winoCostPerPixel(nh, nw, a.KernelH, a.KernelW, ic, oc, oh, ow)
		if c < bestCost {
			bestCost = c
			bestTile = t
		}
	}

	if bestTile == 0 {
		// Equation 3's first branch: n̂ = 1 ⇒ sliding window.
		dec.Scheme = SchemeSliding
		dec.EffMULs = direct
		dec.CostPerPixel = slidingCost
		return dec
	}

	nh, nw := bestTile, bestTile
	if a.KernelH == 1 {
		nh = 1
	}
	if a.KernelW == 1 {
		nw = 1
	}
	dec.Scheme = SchemeWinograd
	dec.TileH, dec.TileW = nh, nw
	dec.CostPerPixel = bestCost
	tiles := int64(n) * int64(upDiv(oh, nh)) * int64(upDiv(ow, nw))
	arith, traffic := winoPerTileCost(nh, nw, a.KernelH, a.KernelW, ic, oc)
	dec.EffMULs = tiles * int64(arith+TrafficCostFactor*traffic)
	return dec
}

// maxTransform is the n+k-1 bound for usable float32 Winograd transforms.
const maxTransform = 10

// winoCostPerPixel evaluates Equation 2 per tile, multiplies by the number
// of tiles actually launched for an oh×ow output (edge tiles compute wasted
// lanes — this is what makes large tiles lose on small feature maps, the
// paper's Table 1 second column), adds the memory-traffic term that
// Equation 2 omits, and normalizes per useful output pixel.
func winoCostPerPixel(nh, nw, kh, kw, ic, oc, oh, ow int) float64 {
	arith, traffic := winoPerTileCost(nh, nw, kh, kw, ic, oc)
	perTile := arith + TrafficCostFactor*traffic
	tiles := float64(upDiv(oh, nh)) * float64(upDiv(ow, nw))
	return perTile * tiles / float64(oh*ow)
}

// winoPerTileCost returns the Equation 2 arithmetic count and the memory
// traffic of one Winograd tile, generalized to rectangular transforms (an
// axis with kernel size 1 has mh or mw = nh or nw): input transform
// ic·(mh+mw)·mh·mw, Hadamard ic·oc·mh·mw, output transform per channel, and
// the Figure 4 data flow's reads/writes.
func winoPerTileCost(nh, nw, kh, kw, ic, oc int) (arith, traffic float64) {
	mh := nh + kh - 1
	mw := nw + kw - 1
	arith = float64(ic)*float64(mh+mw)*float64(mh*mw) +
		float64(ic*oc)*float64(mh*mw) +
		float64(nh*mw)*float64(nh+mh)
	traffic = float64(mh*mw*(2*ic)) + float64(nh*nw*oc) + float64(mh*mw*oc)
	return arith, traffic
}

// ParseConvScheme maps a scheme name (the String() form) back to its
// ConvScheme, for the tuning-cache decoder and CLI tooling.
func ParseConvScheme(s string) (ConvScheme, error) {
	switch s {
	case "sliding":
		return SchemeSliding, nil
	case "winograd":
		return SchemeWinograd, nil
	case "strassen-1x1":
		return SchemeStrassen1x1, nil
	case "depthwise":
		return SchemeDepthwise, nil
	case "im2col":
		return SchemeIm2col, nil
	default:
		return SchemeSliding, fmt.Errorf("core: unknown conv scheme %q", s)
	}
}

// ConvSchemer is the slice of a backend that reports which algorithm it will
// actually prepare for a convolution — the heuristic decision possibly
// overridden by a tuner. Sessions consult it for their scheme statistics so
// reporting can never drift from execution.
type ConvSchemer interface {
	ConvSchemeFor(n *graph.Node, inShape []int) ConvDecision
}

// ConvCandidate is one legal algorithm for a convolution together with the
// analytic cost terms of the first-principles model: Arith counts
// multiply-equivalents per inference (after algorithmic savings), Traffic
// counts float32 reads+writes of the kernel's data movement. The tuner
// scores candidates from these; measurement can then overrule the model.
type ConvCandidate struct {
	Decision ConvDecision
	Arith    float64
	Traffic  float64
	// GemmK is the reduction depth of the lowered GEMM for matmul-backed
	// schemes (im2col: ic/g·kh·kw, 1×1: ic), 0 for direct kernels. Achieved
	// GEMM throughput ramps with K (panel reuse amortizes over the
	// reduction), which the tuner's scoring models.
	GemmK int
}

// ConvCandidates enumerates every algorithm whose legality predicate admits
// the convolution, each with a fully-populated decision (tile sizes,
// EffMULs for the simulated clock) and its analytic cost terms. The list is
// never empty for a valid convolution: im2col is the universal fallback.
func ConvCandidates(a *graph.Conv2DAttrs, inShape []int) []ConvCandidate {
	ic := a.InputCount
	if ic == 0 && len(inShape) == 4 {
		ic = inShape[1]
	}
	oc := a.OutputCount
	var ih, iw int
	if len(inShape) == 4 {
		ih, iw = inShape[2], inShape[3]
	}
	oh, ow, err := graph.ConvOutputSize(ih, iw, a)
	if err != nil {
		oh, ow = 1, 1
	}
	n := 1
	if len(inShape) > 0 {
		n = inShape[0]
	}
	group := a.Group
	if group <= 0 {
		group = 1
	}
	outPixels := int64(n) * int64(oh) * int64(ow)
	direct := outPixels * int64(oc) * int64(ic/group) * int64(a.KernelH) * int64(a.KernelW)
	inElems := float64(n * ic * ih * iw)
	outElems := float64(outPixels) * float64(oc)
	weightElems := float64(oc * (ic / group) * a.KernelH * a.KernelW)

	var cands []ConvCandidate

	if DepthwiseLegal(a) {
		cands = append(cands, ConvCandidate{
			Decision: ConvDecision{Scheme: SchemeDepthwise, EffMULs: direct, DirectMULs: direct,
				CostPerPixel: float64(a.KernelH * a.KernelW)},
			Arith:   float64(direct),
			Traffic: inElems + outElems + weightElems,
		})
	}

	if !DepthwiseLegal(a) && SlidingLegal(a) {
		// The sliding kernel re-reads the input window for every block of 4
		// output channels.
		cands = append(cands, ConvCandidate{
			Decision: ConvDecision{Scheme: SchemeSliding, EffMULs: direct, DirectMULs: direct,
				CostPerPixel: float64(ic) * float64(a.KernelH) * float64(a.KernelW) * float64(oc)},
			Arith:   float64(direct),
			Traffic: inElems*float64(upDiv(oc, 4)) + outElems + weightElems,
		})
	}

	if Strassen1x1Legal(a, inShape) {
		eff := matmul.StrassenMULs(int(outPixels), ic, oc)
		// Unpack [px, ic], GEMM, repack [px, oc].
		cands = append(cands, ConvCandidate{
			Decision: ConvDecision{Scheme: SchemeStrassen1x1, EffMULs: eff, DirectMULs: direct,
				CostPerPixel: float64(ic) * float64(oc)},
			Arith:   float64(eff),
			Traffic: inElems + 2*float64(outPixels)*float64(ic+oc) + outElems + weightElems,
			GemmK:   ic,
		})
	}

	if Im2colLegal(a, ic) && !DepthwiseLegal(a) {
		// Build + read the patch matrix, write + scatter the product, and
		// stage the NC4HW4 activations through NCHW temporaries.
		k := float64(ic/group) * float64(a.KernelH) * float64(a.KernelW)
		cols := 2 * k * float64(outPixels)
		cands = append(cands, ConvCandidate{
			Decision: ConvDecision{Scheme: SchemeIm2col, EffMULs: direct, DirectMULs: direct,
				CostPerPixel: k * float64(oc)},
			Arith:   float64(direct),
			Traffic: cols + 2*outElems + 2*(inElems+outElems) + weightElems,
			GemmK:   int(k),
		})
	}

	for _, t := range winoTileCandidates {
		if !WinogradLegal(a, inShape, t) {
			continue
		}
		nh, nw := t, t
		if a.KernelH == 1 {
			nh = 1
		}
		if a.KernelW == 1 {
			nw = 1
		}
		arith, traffic := winoPerTileCost(nh, nw, a.KernelH, a.KernelW, ic, oc)
		tiles := int64(n) * int64(upDiv(oh, nh)) * int64(upDiv(ow, nw))
		cands = append(cands, ConvCandidate{
			Decision: ConvDecision{Scheme: SchemeWinograd, TileH: nh, TileW: nw,
				EffMULs:      tiles * int64(arith+TrafficCostFactor*traffic),
				DirectMULs:   direct,
				CostPerPixel: winoCostPerPixel(nh, nw, a.KernelH, a.KernelW, ic, oc, oh, ow)},
			Arith:   float64(tiles) * arith,
			Traffic: float64(tiles) * traffic,
		})
	}
	return cands
}

func upDiv(a, b int) int { return (a + b - 1) / b }

func strideOr1(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

func dilOr1(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}
