package core

import (
	"mnn/internal/graph"
	"mnn/internal/simclock"
)

// CostProvider is the slice of a backend that the cost model needs. The
// backend package's Backend interface satisfies it structurally, keeping
// this package free of runtime dependencies.
type CostProvider interface {
	Name() string
	// FLOPS is the capability term of Equation 5 (Appendix C).
	FLOPS() float64
	// ScheduleOverheadMs is t_schedule; zero for CPU.
	ScheduleOverheadMs() float64
	// Supports reports whether the backend implements the operator. Ops an
	// accelerator cannot run are scheduled to the CPU (Section 3.2).
	Supports(n *graph.Node) bool
}

// Assignment maps node names to the chosen backend's Name().
type Assignment map[string]string

// BackendCosts is the per-backend total of Equation 4, for reporting.
type BackendCosts map[string]float64

// SelectBackend implements Equations 4–5: it sums the per-operator cost
// Cop = MUL/FLOPS·1000 (+ t_schedule) over the whole graph for each
// candidate backend — operators a backend does not support are priced at
// (and executed by) the fallback CPU backend — and returns the assignment
// induced by the cheapest backend. The first provider must be the CPU
// fallback.
//
// The returned Assignment is per-node, so a winning GPU backend still yields
// a hybrid schedule when some operators only run on CPU — this is the
// "hybrid scheduling" property of Section 3.4.
func SelectBackend(g *graph.Graph, shapes graph.ShapeMap, providers []CostProvider) (Assignment, BackendCosts) {
	if len(providers) == 0 {
		return Assignment{}, BackendCosts{}
	}
	cpu := providers[0]
	costs := BackendCosts{}
	type choice struct {
		total  float64
		assign Assignment
	}
	best := choice{total: -1}
	for _, p := range providers {
		assign := Assignment{}
		var total float64
		for _, n := range g.Nodes {
			muls := graph.MULCount(n, shapes)
			var c float64
			if p.Supports(n) {
				if p.ScheduleOverheadMs() > 0 {
					c = simclock.GPUCostMs(muls, p.FLOPS(), p.ScheduleOverheadMs(), 1)
				} else {
					c = simclock.CPUCostMs(muls, p.FLOPS(), 1)
				}
				assign[n.Name] = p.Name()
			} else {
				// Unsupported: runs on the CPU fallback, and pays a
				// transfer's worth of scheduling overhead both ways.
				c = simclock.CPUCostMs(muls, cpu.FLOPS(), 1) + 2*p.ScheduleOverheadMs()
				assign[n.Name] = cpu.Name()
			}
			total += c
		}
		costs[p.Name()] = total
		if best.total < 0 || total < best.total {
			best = choice{total: total, assign: assign}
		}
	}
	return best.assign, costs
}
