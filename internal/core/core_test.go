package core

import (
	"testing"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

func convAttrs(k, ic, oc int) *graph.Conv2DAttrs {
	return &graph.Conv2DAttrs{
		KernelH: k, KernelW: k, StrideH: 1, StrideW: 1,
		PadH: k / 2, PadW: k / 2, Group: 1,
		InputCount: ic, OutputCount: oc,
	}
}

// convAttrsNoPad mirrors the paper's Table 1 microbenchmark convolutions,
// which run unpadded.
func convAttrsNoPad(k, ic, oc int) *graph.Conv2DAttrs {
	a := convAttrs(k, ic, oc)
	a.PadH, a.PadW = 0, 0
	return a
}

// Table 1 of the paper: the cost model must pick sliding window for the
// small-channel stem conv, and Winograd for the two channel-heavy cases —
// with a larger tile when the feature map is large.
func TestSchemeSelectionTable1Shapes(t *testing.T) {
	// (k, ic, oc, spatial) = (2, 3, 16, 224): sliding must win.
	d1 := SelectConvScheme(convAttrsNoPad(2, 3, 16), []int{1, 3, 224, 224})
	if d1.Scheme != SchemeSliding {
		t.Errorf("case (2,3,16,224): got %v, want sliding", d1.Scheme)
	}

	// (2, 512, 512, 16): Winograd with a small-to-mid tile must win
	// (large tiles waste edge lanes on a 15×15 output).
	d2 := SelectConvScheme(convAttrsNoPad(2, 512, 512), []int{1, 512, 16, 16})
	if d2.Scheme != SchemeWinograd {
		t.Fatalf("case (2,512,512,16): got %v, want winograd", d2.Scheme)
	}
	if d2.TileH > 4 {
		t.Errorf("case (2,512,512,16): tile %d too large for a 16×16 map", d2.TileH)
	}

	// (3, 64, 64, 112): Winograd with the max tile must win.
	d3 := SelectConvScheme(convAttrsNoPad(3, 64, 64), []int{1, 64, 112, 112})
	if d3.Scheme != SchemeWinograd {
		t.Fatalf("case (3,64,64,112): got %v, want winograd", d3.Scheme)
	}
	if d3.TileH != 6 {
		t.Errorf("case (3,64,64,112): tile %d, want 6", d3.TileH)
	}
}

func TestSchemeSelection1x1IsStrassen(t *testing.T) {
	// Channels must exceed the calibrated Strassen recursion floor for the
	// fast path to claim savings.
	d := SelectConvScheme(convAttrs(1, 256, 256), []int{1, 256, 56, 56})
	if d.Scheme != SchemeStrassen1x1 {
		t.Fatalf("1x1: got %v", d.Scheme)
	}
	if d.EffMULs >= d.DirectMULs {
		t.Errorf("strassen eff MULs %d not below direct %d", d.EffMULs, d.DirectMULs)
	}
}

func TestSchemeSelection1x1SmallNoSavings(t *testing.T) {
	// Tiny 1×1 below the Strassen recursion bound: EffMULs == DirectMULs.
	d := SelectConvScheme(convAttrs(1, 8, 8), []int{1, 8, 4, 4})
	if d.Scheme != SchemeStrassen1x1 {
		t.Fatalf("got %v", d.Scheme)
	}
	if d.EffMULs != d.DirectMULs {
		t.Errorf("tiny 1x1 should not claim savings: eff %d direct %d", d.EffMULs, d.DirectMULs)
	}
}

func TestSchemeSelectionDepthwise(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 32, InputCount: 32, OutputCount: 32}
	d := SelectConvScheme(a, []int{1, 32, 56, 56})
	if d.Scheme != SchemeDepthwise {
		t.Fatalf("depthwise: got %v", d.Scheme)
	}
}

func TestSchemeSelectionGroupedFallsBack(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 4, InputCount: 32, OutputCount: 32}
	d := SelectConvScheme(a, []int{1, 32, 28, 28})
	if d.Scheme != SchemeIm2col {
		t.Fatalf("grouped: got %v", d.Scheme)
	}
}

func TestSchemeSelectionStride2UsesSliding(t *testing.T) {
	a := convAttrs(3, 64, 128)
	a.StrideH, a.StrideW = 2, 2
	d := SelectConvScheme(a, []int{1, 64, 56, 56})
	if d.Scheme != SchemeSliding {
		t.Fatalf("stride-2: got %v (winograd must be excluded)", d.Scheme)
	}
}

func TestSchemeSelectionAsymmetricKernelWino(t *testing.T) {
	// 1×7 convolution with many channels: per-axis Winograd should win and
	// tile only the W axis.
	a := &graph.Conv2DAttrs{KernelH: 1, KernelW: 7, StrideH: 1, StrideW: 1,
		PadH: 0, PadW: 3, Group: 1, InputCount: 128, OutputCount: 128}
	d := SelectConvScheme(a, []int{1, 128, 17, 17})
	if d.Scheme != SchemeWinograd {
		t.Fatalf("1x7: got %v, want winograd", d.Scheme)
	}
	if d.TileH != 1 || d.TileW < 2 {
		t.Errorf("1x7 tiles = %dx%d, want 1xN", d.TileH, d.TileW)
	}
}

func TestSchemeWinogradEffMULsBelowDirect(t *testing.T) {
	d := SelectConvScheme(convAttrs(3, 64, 64), []int{1, 64, 112, 112})
	if d.EffMULs >= d.DirectMULs {
		t.Fatalf("winograd eff %d >= direct %d", d.EffMULs, d.DirectMULs)
	}
}

// --- backend selection (Eq. 4–5) ---

type fakeBackend struct {
	name     string
	flops    float64
	tSched   float64
	supports func(*graph.Node) bool
}

func (f *fakeBackend) Name() string                  { return f.name }
func (f *fakeBackend) FLOPS() float64                { return f.flops }
func (f *fakeBackend) ScheduleOverheadMs() float64   { return f.tSched }
func (f *fakeBackend) Supports(n *graph.Node) bool {
	if f.supports == nil {
		return true
	}
	return f.supports(n)
}

func bigConvGraph(t *testing.T) (*graph.Graph, graph.ShapeMap) {
	t.Helper()
	g := graph.New("sel")
	g.InputNames = []string{"in"}
	g.OutputNames = []string{"conv2"}
	g.AddNode(&graph.Node{Name: "in", Op: graph.OpInput, Outputs: []string{"in"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 64, 56, 56}}})
	g.AddWeight("w1", tensor.New(64, 64, 3, 3))
	g.AddNode(&graph.Node{Name: "conv1", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"conv1"},
		WeightNames: []string{"w1"}, Attrs: convAttrs(3, 64, 64)})
	g.AddWeight("w2", tensor.New(64, 64, 3, 3))
	g.AddNode(&graph.Node{Name: "conv2", Op: graph.OpConv2D, Inputs: []string{"conv1"}, Outputs: []string{"conv2"},
		WeightNames: []string{"w2"}, Attrs: convAttrs(3, 64, 64)})
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, shapes
}

func TestSelectBackendPrefersFasterGPU(t *testing.T) {
	g, shapes := bigConvGraph(t)
	cpu := &fakeBackend{name: "CPU", flops: 8e9}
	gpu := &fakeBackend{name: "Vulkan", flops: 40e9, tSched: 0.01}
	assign, costs := SelectBackend(g, shapes, []CostProvider{cpu, gpu})
	if costs["Vulkan"] >= costs["CPU"] {
		t.Fatalf("GPU should be cheaper: %v", costs)
	}
	if assign["conv1"] != "Vulkan" || assign["conv2"] != "Vulkan" {
		t.Fatalf("assignment: %v", assign)
	}
}

func TestSelectBackendHighOverheadGPULosesOnTinyGraph(t *testing.T) {
	// A graph of many negligible ops: per-op t_schedule dominates, CPU wins.
	g := graph.New("tiny")
	g.InputNames = []string{"in"}
	g.AddNode(&graph.Node{Name: "in", Op: graph.OpInput, Outputs: []string{"in"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 4, 4, 4}}})
	prev := "in"
	for i := 0; i < 20; i++ {
		name := "relu" + string(rune('a'+i))
		g.AddNode(&graph.Node{Name: name, Op: graph.OpReLU, Inputs: []string{prev}, Outputs: []string{name}})
		prev = name
	}
	g.OutputNames = []string{prev}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeBackend{name: "CPU", flops: 8e9}
	gpu := &fakeBackend{name: "OpenCL", flops: 40e9, tSched: 0.05}
	assign, costs := SelectBackend(g, shapes, []CostProvider{cpu, gpu})
	if costs["CPU"] >= costs["OpenCL"] {
		t.Fatalf("CPU should win on overhead-dominated graph: %v", costs)
	}
	if assign["relua"] != "CPU" {
		t.Fatalf("assignment: %v", assign)
	}
}

func TestSelectBackendHybridFallback(t *testing.T) {
	// GPU that does not support Pool: the pool node must be assigned to CPU
	// even when the GPU wins overall.
	g := graph.New("hybrid")
	g.InputNames = []string{"in"}
	g.AddNode(&graph.Node{Name: "in", Op: graph.OpInput, Outputs: []string{"in"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 64, 56, 56}}})
	g.AddWeight("w1", tensor.New(64, 64, 3, 3))
	g.AddNode(&graph.Node{Name: "conv1", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"conv1"},
		WeightNames: []string{"w1"}, Attrs: convAttrs(3, 64, 64)})
	g.AddNode(&graph.Node{Name: "pool1", Op: graph.OpPool, Inputs: []string{"conv1"}, Outputs: []string{"pool1"},
		Attrs: &graph.PoolAttrs{Type: graph.MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}})
	g.OutputNames = []string{"pool1"}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &fakeBackend{name: "CPU", flops: 8e9}
	gpu := &fakeBackend{name: "Vulkan", flops: 80e9, tSched: 0.01,
		supports: func(n *graph.Node) bool { return n.Op != graph.OpPool }}
	assign, _ := SelectBackend(g, shapes, []CostProvider{cpu, gpu})
	if assign["conv1"] != "Vulkan" {
		t.Fatalf("conv should go to GPU: %v", assign)
	}
	if assign["pool1"] != "CPU" {
		t.Fatalf("pool must fall back to CPU: %v", assign)
	}
}

func TestSelectBackendEmptyProviders(t *testing.T) {
	g, shapes := bigConvGraph(t)
	assign, costs := SelectBackend(g, shapes, nil)
	if len(assign) != 0 || len(costs) != 0 {
		t.Fatal("empty providers should yield empty results")
	}
}

func TestMeasureHostFLOPS(t *testing.T) {
	r := MeasureHostFLOPS(64, 2)
	if r.FLOPS <= 0 || r.Elapsed <= 0 || r.Size != 64 {
		t.Fatalf("bad calibration: %+v", r)
	}
	// Any machine running this test does better than 10 MMAC/s and worse
	// than 10 TMAC/s single-threaded.
	if r.FLOPS < 1e7 || r.FLOPS > 1e13 {
		t.Fatalf("implausible FLOPS %g", r.FLOPS)
	}
	// Defaults kick in for degenerate arguments.
	d := MeasureHostFLOPS(0, 0)
	if d.Size != 256 {
		t.Fatalf("default size: %d", d.Size)
	}
}
