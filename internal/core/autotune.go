package core

import (
	"time"

	"mnn/internal/matmul"
	"mnn/internal/tensor"
)

// The paper's future work item (1): "applying auto-tuning during backend
// evaluation". Appendix C estimates CPU capability from core frequencies and
// GPU capability from a static table; this file replaces the static numbers
// with a measured one, by running the engine's own compute-intensive unit
// (the basic matrix multiplication of Section 3.5) and timing it.

// CalibrationResult is a measured capability estimate.
type CalibrationResult struct {
	// FLOPS is the measured multiply-accumulate throughput (2 flops per
	// MAC are NOT double-counted: this is MACs/second, matching how the
	// Equation 5 MUL term is counted).
	FLOPS float64
	// Size is the GEMM dimension used.
	Size int
	// Elapsed is the wall time of the best repetition.
	Elapsed time.Duration
}

// MeasureHostFLOPS benchmarks the base GEMM at the given size and returns
// the achieved MAC throughput. Sessions can feed this into the cost model
// instead of the Appendix C frequency heuristic, which is what the paper's
// planned auto-tuned backend evaluation does.
func MeasureHostFLOPS(size, reps int) CalibrationResult {
	if size <= 0 {
		size = 256
	}
	if reps <= 0 {
		reps = 3
	}
	a := tensor.NewRandom(1, 1, size, size).Data()
	b := tensor.NewRandom(2, 1, size, size).Data()
	dst := make([]float32, size*size)
	matmul.Mul(dst, a, b, size, size, size) // warm up
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		matmul.Mul(dst, a, b, size, size, size)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	macs := float64(size) * float64(size) * float64(size)
	return CalibrationResult{
		FLOPS:   macs / best.Seconds(),
		Size:    size,
		Elapsed: best,
	}
}
