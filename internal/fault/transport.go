package fault

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// truncateAfter is how many body bytes a ModeTruncate fault lets through
// before cutting the stream — enough to start a JSON document, never enough
// to finish one.
const truncateAfter = 32

// Transport wraps an http.RoundTripper with the mesh.transport injection
// site. Keys are "host/path" so match= can pin faults to one replica or one
// endpoint. With a nil Injector it forwards straight through.
type Transport struct {
	Base http.RoundTripper
	Inj  *Injector
}

// NewTransport wraps base (nil means http.DefaultTransport) with inj.
func NewTransport(base http.RoundTripper, inj *Injector) *Transport {
	return &Transport{Base: base, Inj: inj}
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	o := t.Inj.Hit(SiteMeshTransport, req.URL.Host+req.URL.Path)
	if o == nil {
		return base.RoundTrip(req)
	}
	if o.Latency > 0 {
		select {
		case <-time.After(o.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch o.Mode {
	case ModeConnReset:
		return nil, fmt.Errorf("%w: connection reset by peer (%s)", ErrInjected, req.URL.Host)
	case ModeError:
		return nil, o.Err
	case ModeTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: truncateAfter}
		return resp, nil
	}
	return base.RoundTrip(req)
}

// CloseIdleConnections forwards to the base transport so http.Client
// cleanup (and goroutine-leak checks) keep working through the wrapper.
func (t *Transport) CloseIdleConnections() {
	type closeIdler interface{ CloseIdleConnections() }
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if ci, ok := base.(closeIdler); ok {
		ci.CloseIdleConnections()
	}
}

// truncatedBody yields at most `remaining` bytes of the wrapped body and
// then fails with io.ErrUnexpectedEOF, as a mid-stream connection drop
// would.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The wrapped response was shorter than the truncation point; the
		// fault still forces an abnormal end so callers see a torn stream.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
