// Package fault is a deterministic, seedable fault-injection subsystem.
//
// Production code declares named injection sites (Site constants below) and
// consults an *Injector at each one. An Injector is built from a Plan — a
// seed plus a list of Rules — and decides per hit whether a fault fires.
// All randomness derives from the plan seed via per-rule PCG streams, so a
// given plan replays the same fault schedule on every run regardless of
// which other sites are being evaluated.
//
// A nil *Injector is the disabled state: Hit on a nil receiver returns nil
// without touching memory, so the hooks cost one pointer test and nothing
// else on hot paths (pinned by alloc_test.go at the repo root).
//
// Plans are written as compact specs, accepted by ParsePlan and the
// -chaos flags of mnnserve/mnnrouter:
//
//	site=mode[:latency][,p=0.3][,every=N][,after=N][,count=N][,match=substr][;...]
//
// Examples:
//
//	engine.infer=panic,after=10,count=3,match=mobilenet
//	mesh.transport=connreset,p=0.05
//	mesh.transport=latency:50ms,p=0.2
//	tuner.cache.write=torn,count=1
//	registry.load=error,match=resnet
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point in the stack. The set of valid sites is
// fixed at compile time; ParsePlan rejects unknown names.
type Site string

const (
	// SiteEngineInfer fires at the top of Engine inference, keyed by the
	// graph name. Modes: error, latency, panic.
	SiteEngineInfer Site = "engine.infer"
	// SiteSessionKernel fires before each kernel dispatch inside a session
	// run, keyed by the node name. Modes: error, latency, panic.
	SiteSessionKernel Site = "session.kernel"
	// SiteRegistryLoad fires during serve.Registry model loads. Keys are
	// "pre:<ref>" before the engine is opened and "mid:<ref>" after, so
	// match=pre:/match=mid: pins the failure to either side of the
	// partially-constructed window. Modes: error, latency.
	SiteRegistryLoad Site = "registry.load"
	// SiteCacheRead fires when the tuner reads its persistent cache, keyed
	// by the cache path. Mode error behaves like a corrupt file: the open
	// proceeds cold and re-tunes. Modes: error.
	SiteCacheRead Site = "tuner.cache.read"
	// SiteCacheWrite fires when the tuner persists its cache, keyed by the
	// cache path. Mode torn simulates a crash mid-write: a truncated
	// destination plus a stale temp file left behind. Modes: torn, error.
	SiteCacheWrite Site = "tuner.cache.write"
	// SiteMeshTransport fires inside the router's HTTP transport, keyed by
	// "host/path". Modes: connreset, latency, truncate, error.
	SiteMeshTransport Site = "mesh.transport"
)

// Mode is what happens when a rule fires.
type Mode int

const (
	// ModeError makes the call site return Outcome.Err (wraps ErrInjected).
	ModeError Mode = iota
	// ModeLatency sleeps for Rule.Latency and then proceeds normally.
	ModeLatency
	// ModePanic panics at the call site (exercises containment barriers).
	ModePanic
	// ModeConnReset fails the HTTP round trip as a connection-level error.
	ModeConnReset
	// ModeTruncate cuts the HTTP response body off mid-stream.
	ModeTruncate
	// ModeTorn tears a cache write: truncated destination + stale temp.
	ModeTorn
)

var modeNames = map[Mode]string{
	ModeError:     "error",
	ModeLatency:   "latency",
	ModePanic:     "panic",
	ModeConnReset: "connreset",
	ModeTruncate:  "truncate",
	ModeTorn:      "torn",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// siteModes lists the modes each site knows how to enact. ModeLatency is a
// legal add-on everywhere a duration makes sense.
var siteModes = map[Site][]Mode{
	SiteEngineInfer:   {ModeError, ModeLatency, ModePanic},
	SiteSessionKernel: {ModeError, ModeLatency, ModePanic},
	SiteRegistryLoad:  {ModeError, ModeLatency},
	SiteCacheRead:     {ModeError},
	SiteCacheWrite:    {ModeTorn, ModeError},
	SiteMeshTransport: {ModeConnReset, ModeLatency, ModeTruncate, ModeError},
}

// Sites returns the valid injection sites in a stable order.
func Sites() []Site {
	return []Site{
		SiteEngineInfer, SiteSessionKernel, SiteRegistryLoad,
		SiteCacheRead, SiteCacheWrite, SiteMeshTransport,
	}
}

// ErrInjected is the sentinel wrapped by every injected error, so tests and
// the chaos harness can tell deliberate faults from organic failures with
// errors.Is.
var ErrInjected = errors.New("fault: injected")

// Rule arms one site with one failure behavior. Gates compose: a hit must
// pass Match, After, Every and Prob, in that order, and the rule stops
// firing once Count firings have been spent.
type Rule struct {
	Site Site
	Mode Mode
	// Prob fires the rule on each eligible hit with this probability
	// (from the rule's seeded stream). 0 means always.
	Prob float64
	// Every fires on every Nth eligible hit (1 or 0 means every hit).
	Every int
	// After skips the first N hits entirely.
	After int
	// Count caps total firings (0 means unlimited).
	Count int
	// Latency is the injected delay (required for ModeLatency; an optional
	// add-on for the other modes).
	Latency time.Duration
	// Match restricts the rule to keys containing this substring.
	Match string
}

// String renders the rule in spec syntax.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s", r.Site, r.Mode)
	if r.Latency > 0 {
		fmt.Fprintf(&b, ":%s", r.Latency)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, ",p=%g", r.Prob)
	}
	if r.Every > 1 {
		fmt.Fprintf(&b, ",every=%d", r.Every)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ",after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ",count=%d", r.Count)
	}
	if r.Match != "" {
		fmt.Fprintf(&b, ",match=%s", r.Match)
	}
	return b.String()
}

// Plan is a seed plus the rules it arms. The zero Plan injects nothing.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// String renders the plan in spec syntax (without the seed).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses a -chaos spec string into a Plan with the given seed.
// Rules are separated by ';'; see the package doc for the rule syntax.
func ParsePlan(seed uint64, spec string) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty chaos spec %q", spec)
	}
	return p, nil
}

func parseRule(raw string) (Rule, error) {
	var r Rule
	fields := strings.Split(raw, ",")
	site, modeSpec, ok := strings.Cut(fields[0], "=")
	if !ok {
		return r, fmt.Errorf("fault: rule %q: want site=mode", raw)
	}
	r.Site = Site(strings.TrimSpace(site))
	allowed, known := siteModes[r.Site]
	if !known {
		return r, fmt.Errorf("fault: unknown site %q (have %v)", site, Sites())
	}
	modeName, lat, hasLat := strings.Cut(strings.TrimSpace(modeSpec), ":")
	mode, err := parseMode(modeName)
	if err != nil {
		return r, fmt.Errorf("fault: rule %q: %w", raw, err)
	}
	r.Mode = mode
	legal := false
	for _, m := range allowed {
		if m == mode {
			legal = true
			break
		}
	}
	if !legal {
		return r, fmt.Errorf("fault: site %s does not support mode %s (allowed: %v)", r.Site, mode, allowed)
	}
	if hasLat {
		d, err := time.ParseDuration(lat)
		if err != nil {
			return r, fmt.Errorf("fault: rule %q: bad latency %q: %w", raw, lat, err)
		}
		r.Latency = d
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return r, fmt.Errorf("fault: rule %q: bad param %q", raw, f)
		}
		switch k {
		case "p":
			r.Prob, err = strconv.ParseFloat(v, 64)
			if err != nil || r.Prob < 0 || r.Prob > 1 {
				return r, fmt.Errorf("fault: rule %q: p must be in [0,1], got %q", raw, v)
			}
		case "every":
			r.Every, err = strconv.Atoi(v)
		case "after":
			r.After, err = strconv.Atoi(v)
		case "count":
			r.Count, err = strconv.Atoi(v)
		case "latency":
			r.Latency, err = time.ParseDuration(v)
		case "match":
			r.Match = v
		default:
			return r, fmt.Errorf("fault: rule %q: unknown param %q", raw, k)
		}
		if err != nil {
			return r, fmt.Errorf("fault: rule %q: bad %s=%q: %w", raw, k, v, err)
		}
	}
	if r.Mode == ModeLatency && r.Latency <= 0 {
		return r, fmt.Errorf("fault: rule %q: latency mode needs a duration (mode:50ms)", raw)
	}
	return r, nil
}

func parseMode(name string) (Mode, error) {
	for m, s := range modeNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

// Outcome is what a fired rule tells the call site to do. Outcomes are
// pre-built per rule and shared, so firing allocates nothing.
type Outcome struct {
	Site    Site
	Mode    Mode
	Latency time.Duration
	// Err is the pre-wrapped injected error returned for ModeError.
	Err error
}

// Apply enacts the outcome at a plain call site: sleeps the configured
// latency, panics for ModePanic, and returns the injected error for
// ModeError. Transport- and cache-specific modes (connreset, truncate,
// torn) are enacted by their specialized call sites; Apply returns nil
// for those.
func (o *Outcome) Apply() error {
	if o == nil {
		return nil
	}
	if o.Latency > 0 {
		time.Sleep(o.Latency)
	}
	switch o.Mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", o.Site))
	case ModeError:
		return o.Err
	}
	return nil
}

// ruleState is a Rule armed inside an Injector: shared counters, a seeded
// random stream, and the pre-built outcome it hands out.
type ruleState struct {
	rule    Rule
	outcome Outcome
	hits    atomic.Int64
	fired   atomic.Int64
	mu      sync.Mutex
	rng     *rand.Rand
}

// Injector evaluates an armed Plan. One Injector is typically shared by a
// whole process (engine, sessions, registry, tuner) so rule budgets like
// count=3 are global. A nil *Injector is the disabled subsystem.
type Injector struct {
	bySite map[Site][]*ruleState
}

// NewInjector arms a plan. A nil or empty plan yields a nil Injector.
func NewInjector(p *Plan) *Injector {
	if p == nil || len(p.Rules) == 0 {
		return nil
	}
	in := &Injector{bySite: make(map[Site][]*ruleState)}
	for i, r := range p.Rules {
		// Each rule gets its own PCG stream derived from the plan seed and
		// the rule index, so evaluation order across sites can't perturb a
		// rule's own schedule.
		rs := &ruleState{
			rule: r,
			rng:  rand.New(rand.NewPCG(p.Seed, p.Seed^(0x9e3779b97f4a7c15*uint64(i+1)))),
		}
		rs.outcome = Outcome{
			Site:    r.Site,
			Mode:    r.Mode,
			Latency: r.Latency,
			Err:     fmt.Errorf("%w: %s at %s", ErrInjected, r.Mode, r.Site),
		}
		in.bySite[r.Site] = append(in.bySite[r.Site], rs)
	}
	return in
}

// Hit evaluates one injection site. key identifies the specific operation
// (graph name, node name, model ref, URL) for Match filtering. It returns
// nil when no rule fires — including on a nil receiver, which is the
// zero-cost disabled path.
func (in *Injector) Hit(site Site, key string) *Outcome {
	if in == nil {
		return nil
	}
	rules := in.bySite[site]
	if len(rules) == 0 {
		return nil
	}
	for _, rs := range rules {
		if o := rs.eval(key); o != nil {
			return o
		}
	}
	return nil
}

func (rs *ruleState) eval(key string) *Outcome {
	r := &rs.rule
	if r.Match != "" && !strings.Contains(key, r.Match) {
		return nil
	}
	if r.Count > 0 && rs.fired.Load() >= int64(r.Count) {
		return nil
	}
	n := rs.hits.Add(1)
	if n <= int64(r.After) {
		return nil
	}
	if r.Every > 1 && (n-int64(r.After))%int64(r.Every) != 0 {
		return nil
	}
	if r.Prob > 0 && r.Prob < 1 {
		rs.mu.Lock()
		v := rs.rng.Float64()
		rs.mu.Unlock()
		if v >= r.Prob {
			return nil
		}
	}
	if r.Count > 0 && rs.fired.Add(1) > int64(r.Count) {
		return nil
	}
	return &rs.outcome
}

// Fired reports how many times any rule at the given site has fired —
// the chaos harness uses it to assert a schedule actually engaged.
func (in *Injector) Fired(site Site) int64 {
	if in == nil {
		return 0
	}
	var total int64
	for _, rs := range in.bySite[site] {
		n := rs.fired.Load()
		if rs.rule.Count > 0 && n > int64(rs.rule.Count) {
			n = int64(rs.rule.Count)
		}
		total += n
	}
	return total
}
