package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "engine.infer=panic,after=10,count=3,match=mobilenet;" +
		"mesh.transport=latency:50ms,p=0.2;" +
		"tuner.cache.write=torn,count=1"
	p, err := ParsePlan(42, spec)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 42 || len(p.Rules) != 3 {
		t.Fatalf("got seed=%d rules=%d", p.Seed, len(p.Rules))
	}
	r := p.Rules[0]
	if r.Site != SiteEngineInfer || r.Mode != ModePanic || r.After != 10 || r.Count != 3 || r.Match != "mobilenet" {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	if p.Rules[1].Latency != 50*time.Millisecond || p.Rules[1].Prob != 0.2 {
		t.Fatalf("rule 1 parsed wrong: %+v", p.Rules[1])
	}
	// String() must re-parse to the same plan.
	p2, err := ParsePlan(42, p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q != %q", p2.String(), p.String())
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"",
		"nonsense",
		"bogus.site=error",
		"engine.infer=connreset",      // mode not legal at site
		"engine.infer=latency",        // latency mode without duration
		"engine.infer=error,p=1.5",    // probability out of range
		"engine.infer=error,every=x",  // non-integer
		"engine.infer=error,zzz=1",    // unknown param
		"tuner.cache.read=torn",       // torn only on write
	}
	for _, spec := range bad {
		if _, err := ParsePlan(1, spec); err == nil {
			t.Errorf("ParsePlan(%q) unexpectedly succeeded", spec)
		}
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if o := in.Hit(SiteEngineInfer, "anything"); o != nil {
		t.Fatalf("nil injector fired: %+v", o)
	}
	if in.Fired(SiteEngineInfer) != 0 {
		t.Fatal("nil injector reported firings")
	}
	if NewInjector(nil) != nil {
		t.Fatal("NewInjector(nil) should be nil")
	}
	if NewInjector(&Plan{Seed: 1}) != nil {
		t.Fatal("NewInjector(empty plan) should be nil")
	}
}

func TestAfterEveryCountSemantics(t *testing.T) {
	p, err := ParsePlan(7, "engine.infer=error,after=2,every=3,count=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	var fired []int
	for i := 1; i <= 20; i++ {
		if o := in.Hit(SiteEngineInfer, "m"); o != nil {
			fired = append(fired, i)
			if !errors.Is(o.Err, ErrInjected) {
				t.Fatalf("outcome error %v does not wrap ErrInjected", o.Err)
			}
		}
	}
	// Hits 1-2 skipped (after=2); then every 3rd eligible hit fires: 5, 8;
	// count=2 stops it there.
	want := []int{5, 8}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	if got := in.Fired(SiteEngineInfer); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestMatchFilter(t *testing.T) {
	p, _ := ParsePlan(1, "session.kernel=error,match=conv")
	in := NewInjector(p)
	if o := in.Hit(SiteSessionKernel, "pool1"); o != nil {
		t.Fatal("fired on non-matching key")
	}
	if o := in.Hit(SiteSessionKernel, "conv2d_3"); o == nil {
		t.Fatal("did not fire on matching key")
	}
}

func TestProbDeterminism(t *testing.T) {
	run := func() []int {
		p, _ := ParsePlan(99, "mesh.transport=connreset,p=0.3")
		in := NewInjector(p)
		var fired []int
		for i := 0; i < 200; i++ {
			if in.Hit(SiteMeshTransport, "replica-a/v2/infer") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed should (overwhelmingly) produce a different schedule.
	p2, _ := ParsePlan(100, "mesh.transport=connreset,p=0.3")
	in2 := NewInjector(p2)
	var c []int
	for i := 0; i < 200; i++ {
		if in2.Hit(SiteMeshTransport, "replica-a/v2/infer") != nil {
			c = append(c, i)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical schedules")
	}
}

func TestRuleIndependenceAcrossSites(t *testing.T) {
	// Interleaving hits on another site must not perturb a rule's schedule.
	solo := func() []int {
		p, _ := ParsePlan(5, "engine.infer=error,p=0.5")
		in := NewInjector(p)
		var fired []int
		for i := 0; i < 50; i++ {
			if in.Hit(SiteEngineInfer, "m") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}()
	mixed := func() []int {
		p, _ := ParsePlan(5, "engine.infer=error,p=0.5;mesh.transport=connreset,p=0.5")
		in := NewInjector(p)
		var fired []int
		for i := 0; i < 50; i++ {
			in.Hit(SiteMeshTransport, "x") // interleaved traffic on another rule
			if in.Hit(SiteEngineInfer, "m") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}()
	if len(solo) != len(mixed) {
		t.Fatalf("cross-site interference: %d vs %d firings", len(solo), len(mixed))
	}
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("cross-site interference at firing %d", i)
		}
	}
}

func TestApplyError(t *testing.T) {
	p, _ := ParsePlan(1, "registry.load=error")
	in := NewInjector(p)
	o := in.Hit(SiteRegistryLoad, "pre:m:1")
	if o == nil {
		t.Fatal("rule did not fire")
	}
	if err := o.Apply(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Apply = %v, want ErrInjected", err)
	}
	var nilOutcome *Outcome
	if err := nilOutcome.Apply(); err != nil {
		t.Fatalf("nil outcome Apply = %v", err)
	}
}

func TestApplyPanics(t *testing.T) {
	p, _ := ParsePlan(1, "engine.infer=panic")
	in := NewInjector(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Apply did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "engine.infer") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	in.Hit(SiteEngineInfer, "m").Apply()
}

func TestTransportConnReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	p, _ := ParsePlan(3, "mesh.transport=connreset,every=2")
	tr := NewTransport(nil, NewInjector(p))
	client := &http.Client{Transport: tr}
	defer client.CloseIdleConnections()

	// every=2: hit 1 passes, hit 2 resets.
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("second request: got %v, want injected conn reset", err)
	}
}

func TestTransportTruncate(t *testing.T) {
	body := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()

	p, _ := ParsePlan(3, "mesh.transport=truncate")
	client := &http.Client{Transport: NewTransport(nil, NewInjector(p))}
	defer client.CloseIdleConnections()

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAll err = %v, want unexpected EOF", err)
	}
	if len(got) > truncateAfter {
		t.Fatalf("read %d bytes through a truncated body (cap %d)", len(got), truncateAfter)
	}
}

func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	p, _ := ParsePlan(3, "mesh.transport=latency:30ms")
	client := &http.Client{Transport: NewTransport(nil, NewInjector(p))}
	defer client.CloseIdleConnections()

	t0 := time.Now()
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("latency fault not applied: round trip took %v", d)
	}
}
