package simclock

import (
	"math"
	"sync"
	"testing"
)

func TestCPUCostEquation5(t *testing.T) {
	// 569M MULs at 9.8 GFLOPS ⇒ 58.06 ms.
	got := CPUCostMs(569e6, 9.8e9, 1)
	if math.Abs(got-58.06) > 0.1 {
		t.Fatalf("CPU cost = %v, want ≈58.06", got)
	}
	// Efficiency halves throughput ⇒ doubles cost.
	if half := CPUCostMs(569e6, 9.8e9, 0.5); math.Abs(half-2*got) > 1e-9 {
		t.Fatalf("efficiency scaling wrong: %v vs %v", half, got)
	}
	if CPUCostMs(0, 9.8e9, 1) != 0 || CPUCostMs(100, 0, 1) != 0 {
		t.Fatal("degenerate inputs must cost zero")
	}
	// Zero/negative efficiency falls back to 1.
	if CPUCostMs(100, 1e9, 0) != CPUCostMs(100, 1e9, 1) {
		t.Fatal("zero efficiency must normalize to 1")
	}
}

func TestGPUCostEquation5(t *testing.T) {
	// MUL/FLOPS·1000 + t_schedule.
	got := GPUCostMs(42.74e6, 42.74e9, 0.05, 1)
	if math.Abs(got-1.05) > 1e-9 {
		t.Fatalf("GPU cost = %v, want 1.05", got)
	}
	// Zero-MUL op still pays the schedule overhead.
	if got := GPUCostMs(0, 42.74e9, 0.01, 1); got != 0.01 {
		t.Fatalf("zero-MUL GPU op = %v, want 0.01", got)
	}
}

func TestClockAccumulation(t *testing.T) {
	c := New()
	c.Charge("conv", 1.5)
	c.Charge("conv", 2.5)
	c.Charge("pool", 1)
	if got := c.TotalMs(); got != 5 {
		t.Fatalf("total = %v", got)
	}
	by := c.ByLabel()
	if by["conv"] != 4 || by["pool"] != 1 {
		t.Fatalf("breakdown: %v", by)
	}
	c.Reset()
	if c.TotalMs() != 0 || len(c.ByLabel()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockNilSafe(t *testing.T) {
	var c *Clock
	c.Charge("x", 1) // must not panic
	if c.TotalMs() != 0 {
		t.Fatal("nil clock total")
	}
	c.Reset()
}

// Regression: every Clock method must be nil-receiver safe, because sessions
// created without simulation hold a nil clock and still forward calls like
// ResetSimulatedClock/SimulatedByLabel to it.
func TestClockNilSafeAllMethods(t *testing.T) {
	var c *Clock
	c.Charge("x", 1)
	c.Reset()
	if got := c.TotalMs(); got != 0 {
		t.Fatalf("nil TotalMs = %v", got)
	}
	if by := c.ByLabel(); by != nil {
		t.Fatalf("nil ByLabel = %v, want nil map", by)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge("op", 0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.TotalMs(); math.Abs(got-8) > 1e-6 {
		t.Fatalf("concurrent total = %v, want 8", got)
	}
}
