// Package simclock accumulates simulated execution time. It is the paper's
// backend cost model (Equation 5) promoted from a scheduling heuristic to a
// measurement substitute: every executed operator charges
//
//	Cop = MUL/FLOPS × 1000            (CPU)
//	Cop = MUL/FLOPS × 1000 + t_sched  (GPU)
//
// milliseconds, optionally scaled by a per-engine/per-scheme efficiency
// factor. This is how phone-grade latency numbers are produced without
// phones (DESIGN.md, substitution #2); host wall-clock time is measured
// separately and reported alongside.
package simclock

import (
	"sync"
)

// Clock is a concurrency-safe accumulator of simulated milliseconds.
type Clock struct {
	mu sync.Mutex
	ms float64
	// breakdown per label (op type or phase), for diagnosis output.
	byLabel map[string]float64
}

// New returns a zeroed clock.
func New() *Clock {
	return &Clock{byLabel: map[string]float64{}}
}

// Charge adds ms of simulated time under a label.
func (c *Clock) Charge(label string, ms float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ms += ms
	c.byLabel[label] += ms
	c.mu.Unlock()
}

// TotalMs returns the accumulated simulated time.
func (c *Clock) TotalMs() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ms
}

// ByLabel returns a copy of the per-label breakdown.
func (c *Clock) ByLabel() map[string]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.byLabel))
	for k, v := range c.byLabel {
		out[k] = v
	}
	return out
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ms = 0
	c.byLabel = map[string]float64{}
	c.mu.Unlock()
}

// CPUCostMs is Equation 5's CPU branch: MUL/FLOPS × 1000, divided by an
// efficiency factor in (0, 1] that models how far a given implementation is
// from the device's peak (1.0 ≙ the paper's fully optimized kernels).
func CPUCostMs(muls int64, flops, efficiency float64) float64 {
	if flops <= 0 || muls <= 0 {
		return 0
	}
	if efficiency <= 0 {
		efficiency = 1
	}
	return float64(muls) / flops * 1000 / efficiency
}

// GPUCostMs is Equation 5's GPU branch: MUL/FLOPS × 1000 + t_schedule.
func GPUCostMs(muls int64, flops, tScheduleMs, efficiency float64) float64 {
	if flops <= 0 {
		return tScheduleMs
	}
	if efficiency <= 0 {
		efficiency = 1
	}
	var compute float64
	if muls > 0 {
		compute = float64(muls) / flops * 1000 / efficiency
	}
	return compute + tScheduleMs
}
