package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

// Tuning compares the three kernel-search depths end to end: the built-in
// Equation 2–3 heuristic, the analytic cost model over every legal
// candidate, and on-device measured picks (micro-benchmarks at Open time,
// persisted in a tuning cache). Per network it reports steady-state
// InferInto latency, the prepare cost of each mode (cold and warm-cache for
// measured), and the scheme mix each mode committed.
func Tuning(opt Options) error {
	reps := 7
	networks := []string{"mobilenet-v1", "squeezenet-v1.1", "resnet-18"}
	threads := 4
	if opt.Quick {
		reps = 3
		threads = 2
	}
	cacheDir, err := os.MkdirTemp("", "mnn-tuning-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	opt.printf("Tuning — kernel search: heuristic vs cost model vs measured (host, steady-state InferInto, t%d)\n", threads)
	opt.printf("%-32s %12s %12s %10s   %s\n", "case", "ms/op", "open ms", "vs heur", "schemes")

	ctx := context.Background()
	for _, network := range networks {
		cache := filepath.Join(cacheDir, network+".tuning.json")
		var heuristic time.Duration
		for _, mode := range []mnn.TuningMode{mnn.TuningHeuristic, mnn.TuningCost, mnn.TuningMeasured} {
			if mode == mnn.TuningMeasured {
				// Cold open measures and fills the cache; the timed engine
				// below opens warm, which is the steady deployment state.
				eng, err := mnn.Open(network, mnn.WithThreads(threads),
					mnn.WithTuning(mode), mnn.WithTuningCache(cache))
				if err != nil {
					return err
				}
				eng.Close()
			}
			t0 := time.Now()
			eng, err := mnn.Open(network, mnn.WithThreads(threads),
				mnn.WithTuning(mode), mnn.WithTuningCache(cache))
			if err != nil {
				return err
			}
			openMs := ms(time.Since(t0))
			inputs := map[string]*mnn.Tensor{}
			for _, name := range eng.InputNames() {
				in := mnn.NewTensor(eng.InputShape(name)...)
				tensor.FillRandom(in, 42, 1)
				inputs[name] = in
			}
			out, err := eng.Infer(ctx, inputs)
			if err != nil {
				eng.Close()
				return err
			}
			latency := medianOf(reps, func() {
				if err := eng.InferInto(ctx, inputs, out); err != nil {
					panic(err)
				}
			})
			if mode == mnn.TuningHeuristic {
				heuristic = latency
			}
			ratio := float64(latency) / float64(heuristic)
			kase := fmt.Sprintf("%s/%s", network, mode)
			opt.printf("%-32s %12.2f %12.1f %9.3fx   %v\n",
				kase, ms(latency), openMs, ratio, eng.Stats().SchemeCounts)
			opt.record("tuning", kase, float64(latency.Nanoseconds()), 0)
			if mode == mnn.TuningMeasured {
				ts := eng.TuningStats()
				opt.printf("%-32s warm cache: %d/%d signatures hit, %d measured\n",
					"", ts.CacheHits, ts.Unique, ts.Measured)
			}
			eng.Close()
		}
	}
	opt.printf("\n")
	return nil
}
