package bench

import (
	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/matmul"
	"mnn/internal/memory"
	"mnn/internal/models"
	"mnn/internal/tensor"
)

// AblationStrassen sweeps the Strassen recursion floor (the calibrated
// extension of Equation 9) to justify the default in matmul.MinSplitDim.
func AblationStrassen(opt Options) error {
	size := 512
	reps := 3
	if opt.Quick {
		size = 256
		reps = 1
	}
	a := tensor.NewRandom(1, 1, size, size).Data()
	b := tensor.NewRandom(2, 1, size, size).Data()
	dst := make([]float32, size*size)
	matmul.Mul(dst, a, b, size, size, size)
	direct := medianOf(reps, func() { matmul.Mul(dst, a, b, size, size, size) })
	opt.printf("Ablation — Strassen recursion floor at %d³ (host; direct = %.1f ms)\n", size, ms(direct))
	opt.printf("%-10s %10s %8s\n", "floor", "ms", "vs direct")
	saved := matmul.MinSplitDim
	defer func() { matmul.MinSplitDim = saved }()
	for _, floor := range []int{32, 64, 128, 256, 1 << 20} {
		matmul.MinSplitDim = floor
		matmul.MulStrassen(dst, a, b, size, size, size)
		d := medianOf(reps, func() { matmul.MulStrassen(dst, a, b, size, size, size) })
		label := "off"
		if floor < 1<<20 {
			label = itoa(floor)
		}
		opt.printf("%-10s %10.1f %7.2fx\n", label, ms(d), float64(d)/float64(direct))
	}
	opt.printf("expected: the default floor (128) is at or near the minimum.\n\n")
	return nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// AblationLayout compares the NC4HW4 packed sliding-window kernel against
// the same convolution through NCHW im2col — the data-layout choice of
// Section 3.3.1.
func AblationLayout(opt Options) error {
	reps := 3
	size := 56
	if opt.Quick {
		reps = 1
		size = 28
	}
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 1, InputCount: 64, OutputCount: 64}
	src := tensor.NewRandom(3, 1, 1, 64, size, size)
	weight := tensor.NewRandom(4, 0.2, 64, 64, 3, 3)
	bias := tensor.NewRandom(5, 0.1, 64)

	src4 := src.ToLayout(tensor.NC4HW4)
	dst4 := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, size, size)
	sc := kernels.PrepareSliding(weight, bias, a)
	sc.Run(dst4, src4, nil)
	packed := medianOf(reps, func() { sc.Run(dst4, src4, nil) })

	im := kernels.PrepareIm2col(weight, bias, a)
	dst := tensor.New(1, 64, size, size)
	ws := make([]float32, im.WorkspaceSize(size, size))
	im.Run(dst, src, nil, ws)
	unpacked := medianOf(reps, func() { im.Run(dst, src, nil, ws) })

	opt.printf("Ablation — NC4HW4 packed sliding vs NCHW im2col (64ch 3×3 @ %d×%d, host)\n", size, size)
	opt.printf("NC4HW4 sliding: %8.2f ms\n", ms(packed))
	opt.printf("NCHW im2col:    %8.2f ms\n", ms(unpacked))
	if d := tensor.MaxAbsDiff(dst4, dst); d > 1e-2 {
		opt.printf("WARNING: results differ by %g\n", d)
	}
	opt.printf("\n")
	return nil
}

// AblationMemory quantifies the Figure 3 memory-reuse plan against naive
// per-tensor allocation across the network zoo.
func AblationMemory(opt Options) error {
	opt.printf("Ablation — pre-inference memory plan vs naive allocation (activation arenas)\n")
	opt.printf("%-18s %14s %14s %8s\n", "network", "planned (MB)", "naive (MB)", "saving")
	nets := models.Names()
	if opt.Quick {
		nets = nets[:2]
	}
	for _, name := range nets {
		g, err := models.ByName(name)
		if err != nil {
			return err
		}
		shapes, err := graph.InferShapes(g, nil)
		if err != nil {
			return err
		}
		var items []memory.Item
		// Lifetime analysis identical to the session's single-backend path.
		producerStep := map[string]int{}
		lastUse := map[string]int{}
		for i, n := range g.Nodes {
			for _, o := range n.Outputs {
				producerStep[o] = i
				lastUse[o] = i
			}
			for _, in := range n.Inputs {
				lastUse[in] = i
			}
		}
		for _, o := range g.OutputNames {
			lastUse[o] = len(g.Nodes) - 1
		}
		for name, def := range producerStep {
			size := tensor.PhysicalLen(tensor.NC4HW4, pad4(shapes[name]))
			items = append(items, memory.Item{Name: name, Size: size, DefStep: def, LastStep: lastUse[name]})
		}
		plan, err := memory.PlanItems(items)
		if err != nil {
			return err
		}
		mb := func(floats int) float64 { return float64(floats) * 4 / (1 << 20) }
		saving := (1 - float64(plan.ArenaSize)/float64(plan.NoReuseSize)) * 100
		opt.printf("%-18s %14.1f %14.1f %7.1f%%\n", name, mb(plan.ArenaSize), mb(plan.NoReuseSize), saving)
	}
	opt.printf("expected: reuse cuts activation memory by well over half on deep nets.\n\n")
	return nil
}

// pad4 maps non-rank-4 shapes to a rank-4 form for sizing.
func pad4(s []int) []int {
	if len(s) == 4 {
		return s
	}
	out := []int{1, 1, 1, 1}
	copy(out[4-len(s):], s)
	return out
}

// AblationTile measures real host latency of every Winograd tile size on
// the Table 1 cases, validating that the Equation 2 argmin picks a
// near-optimal tile.
func AblationTile(opt Options) error {
	reps := 3
	if opt.Quick {
		reps = 1
	}
	opt.printf("Ablation — Winograd tile size vs Equation 2's choice (host ms)\n")
	opt.printf("%-22s %8s %8s %8s %10s\n", "conv", "n=2", "n=4", "n=6", "Eq.2 pick")
	for _, c := range Table1Cases[1:] { // winograd-eligible cases
		a := &graph.Conv2DAttrs{KernelH: c.K, KernelW: c.K, StrideH: 1, StrideW: 1,
			Group: 1, InputCount: c.IC, OutputCount: c.OC}
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, c.IC, c.Size, c.Size)
		tensor.FillRandom(src, 7, 1)
		weight := tensor.NewRandom(8, 0.2, c.OC, c.IC, c.K, c.K)
		oh, ow, err := graph.ConvOutputSize(c.Size, c.Size, a)
		if err != nil {
			return err
		}
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, c.OC, oh, ow)
		opt.printf("(%d,%d,%d,%d)%*s", c.K, c.IC, c.OC, c.Size,
			22-len(itoa(c.K))-len(itoa(c.IC))-len(itoa(c.OC))-len(itoa(c.Size))-5, "")
		for _, tile := range []int{2, 4, 6} {
			wc, err := kernels.PrepareWinograd(weight, nil, a, tile, tile)
			if err != nil {
				return err
			}
			ws := make([]float32, wc.WorkspaceSize())
			wc.Run(dst, src, nil, ws)
			d := medianOf(reps, func() { wc.Run(dst, src, nil, ws) })
			opt.printf(" %8.1f", ms(d))
		}
		dec := core.SelectConvScheme(a, src.Shape())
		opt.printf(" %9dx\n", dec.TileH)
	}
	opt.printf("\n")
	return nil
}
