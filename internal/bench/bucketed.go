package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
)

// Bucketed measures what shape-bucketed continuous batching buys on a
// mixed-shape workload: mobilenet-v1 behind the batcher, driven open-loop
// with three input resolutions interleaved round-robin at the same offered
// rate against two server configs. With buckets=1 (the pre-bucketing
// behaviour) only the declared shape batches and every other resolution is
// rejected by the unbatched engine's shape validation, so goodput is
// roughly a third of offered. With buckets=3 each resolution gets its own
// bucket engine and the whole stream is served.
func Bucketed(opt Options) error {
	shapes := [][]int{{1, 3, 128, 128}, {1, 3, 96, 96}, {1, 3, 64, 64}}
	window := 6 * time.Second
	if opt.Quick {
		shapes = [][]int{{1, 3, 64, 64}, {1, 3, 48, 48}, {1, 3, 32, 32}}
		window = 2 * time.Second
	}
	opt.printf("Bucketed — mixed-shape open loop vs shape buckets, mobilenet-v1 at %v/%v/%v, batch 4 within 2ms, pool 2, GOMAXPROCS=%d\n",
		shapes[0], shapes[1], shapes[2], runtime.GOMAXPROCS(0))
	opt.printf("%-12s %12s %12s %12s %12s %10s\n",
		"config", "issued", "goodput", "p99 (ms)", "served", "failed")

	var offered float64
	for _, row := range []struct {
		name    string
		buckets int
	}{
		{"fallthrough", 1},
		{"bucketed", len(shapes)},
	} {
		st, err := runBucketedRow(opt, row.buckets, shapes, window, &offered)
		if err != nil {
			return fmt.Errorf("bench: bucketed %s: %w", row.name, err)
		}
		served := 0.0
		if st.Issued > 0 {
			served = float64(st.Completed) / float64(st.Issued)
		}
		opt.printf("%-12s %12d %12.1f %12.2f %11.1f%% %10d\n",
			row.name, st.Issued, st.GoodputQPS, ms(st.P99Latency), 100*served, st.Failed)
		if row.name == "fallthrough" {
			if st.FirstError != nil {
				opt.printf("  (fall-through rejections as expected: %v)\n", st.FirstError)
			}
		} else if st.FirstError != nil {
			// The bucketed config claims to serve every shape; any failure
			// there is a real bug, not an expected rejection.
			return fmt.Errorf("bench: bucketed row failed: %w", st.FirstError)
		}
		if opt.Recorder != nil {
			opt.Recorder.RecordOverload("bucketed",
				fmt.Sprintf("mobilenet-v1/mixed-shapes/%s", row.name),
				st.GoodputQPS, float64(st.P99Latency.Nanoseconds()), st.ShedRate)
		}
	}
	opt.printf("shape check: at equal offered load the bucketed config's goodput is ~3x the\n")
	opt.printf("fall-through config's, because the two non-declared resolutions batch in their\n")
	opt.printf("own buckets instead of bouncing off the declared-shape engine.\n\n")
	return nil
}

// runBucketedRow boots one server with the given bucket bound, offers the
// round-robin mixed-shape stream, and returns the open-loop stats. The
// offered rate is probed once (closed-loop, declared shape only, on the
// first row's server) and then shared so both rows see equal offered load.
func runBucketedRow(opt Options, buckets int, shapes [][]int, window time.Duration, offered *float64) (loadgen.OpenLoopStats, error) {
	reg := serve.NewRegistry()
	err := reg.Load("mobilenet-v1", serve.ModelConfig{
		Model: "mobilenet-v1",
		Options: []mnn.Option{
			mnn.WithPoolSize(2),
			mnn.WithInputShapes(map[string][]int{"data": shapes[0]}),
		},
		Batch: serve.BatchConfig{MaxBatch: 4, MaxLatency: 2 * time.Millisecond, Buckets: buckets},
	})
	if err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		return loadgen.OpenLoopStats{}, err
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())

	queries := make([]func() error, len(shapes))
	for i, shape := range shapes {
		in := tensor.New(shape...)
		tensor.FillRandom(in, uint64(29+i), 1)
		queries[i], err = loadgen.NewHTTPQuery(loadgen.HTTPConfig{
			BaseURL: "http://" + l.Addr().String(),
			Model:   "mobilenet-v1",
		}, map[string]*tensor.Tensor{"data": in})
		if err != nil {
			return loadgen.OpenLoopStats{}, err
		}
	}
	// Warm up on the declared shape only: with buckets=1 the other shapes
	// are rejected by design, and with buckets=3 their engines open lazily
	// on first flush — which is part of what the row measures.
	if err := queries[0](); err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	if *offered == 0 {
		probe, err := loadgen.RunConcurrent(queries[0], loadgen.ConcurrentConfig{
			InFlight: 4, MinQueryCount: 24,
		})
		if err != nil {
			return loadgen.OpenLoopStats{}, err
		}
		// 0.8x the declared-shape capacity: inside what the bucketed config
		// can serve (the two extra resolutions are smaller, hence cheaper),
		// so the goodput gap isolates shape coverage, not saturation.
		*offered = 0.8 * probe.QPSWithLoadgen
		opt.printf("closed-loop capacity probe (declared shape): %.1f qps; offering %.1f qps to both rows\n",
			probe.QPSWithLoadgen, *offered)
	}
	mixed, err := loadgen.RoundRobin(queries...)
	if err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	return loadgen.RunOpenLoop(mixed, loadgen.OpenLoopConfig{Rate: *offered, Duration: window})
}
