package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
)

// Serving measures the HTTP serving tier end-to-end: an in-process
// serve.Server with mobilenet-v1 behind the KServe-style protocol, driven by
// the concurrent load generator over real loopback connections. Rows compare
// the plain per-request path against the dynamic micro-batcher, which
// coalesces concurrent requests into stacked batch-4 runs — the serving-side
// amortization the paper's prepare-once design enables.
func Serving(opt Options) error {
	queries := 16
	shape := []int{1, 3, 128, 128}
	if opt.Quick {
		queries = 4
		shape = []int{1, 3, 64, 64}
	}
	opt.printf("Serving — HTTP /v2 infer, mobilenet-v1 at %v, pool 2, %d queries/row, GOMAXPROCS=%d\n",
		shape, queries, runtime.GOMAXPROCS(0))
	opt.printf("%-12s %-10s %12s %12s %12s\n", "batching", "in-flight", "qps", "p50 (ms)", "p99 (ms)")

	for _, batched := range []bool{false, true} {
		cfg := serve.ModelConfig{
			Model: "mobilenet-v1",
			Options: []mnn.Option{
				mnn.WithPoolSize(2),
				mnn.WithInputShapes(map[string][]int{"data": shape}),
			},
		}
		mode := "off"
		if batched {
			cfg.Batch = serve.BatchConfig{MaxBatch: 4, MaxLatency: 2 * time.Millisecond}
			mode = "batch-4"
		}
		reg := serve.NewRegistry()
		if err := reg.Load("mobilenet-v1", cfg); err != nil {
			return err
		}
		srv := serve.NewServer(reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			reg.Close()
			return err
		}
		go srv.Serve(l)

		in := tensor.New(shape...)
		tensor.FillRandom(in, 11, 1)
		query, err := loadgen.NewHTTPQuery(loadgen.HTTPConfig{
			BaseURL: "http://" + l.Addr().String(),
			Model:   "mobilenet-v1",
		}, map[string]*tensor.Tensor{"data": in})
		if err == nil {
			err = query() // warm up: connection + any lazy paths
		}
		if err != nil {
			srv.Shutdown(context.Background())
			return err
		}
		for _, inFlight := range []int{1, 4, 8} {
			st, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
				InFlight: inFlight, MinQueryCount: queries,
			})
			if err != nil {
				srv.Shutdown(context.Background())
				return err
			}
			opt.printf("%-12s %-10d %12.2f %12.2f %12.2f\n",
				mode, inFlight, st.QPSWithLoadgen, ms(st.P50Latency), ms(st.P99Latency))
			opt.record("serving", fmt.Sprintf("mobilenet-v1/batch=%s/inflight=%d", mode, inFlight),
				float64(st.MeanLatency.Nanoseconds()), st.QPSWithLoadgen)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			return err
		}
	}
	opt.printf("shape check: batching helps at in-flight ≥4 (stacked runs amortize per-request\n")
	opt.printf("overhead); at in-flight 1 it only adds the maxLatency wait.\n\n")
	return nil
}
