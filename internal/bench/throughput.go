package bench

import (
	"context"
	"fmt"
	"runtime"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
)

// Throughput measures aggregate Engine.Infer throughput for mobilenet-v1
// across session-pool sizes and in-flight request counts — the serving-side
// experiment the paper's single-stream Appendix A protocol stops short of.
// Pool 1 serializes compute behind a single prepared session; pool 4 lets up
// to four requests run truly concurrently (given the cores for it).
func Throughput(opt Options) error {
	queries := 16
	if opt.Quick {
		queries = 4
	}
	opt.printf("Throughput — Engine.Infer, mobilenet-v1, 1 CPU thread/session, %d queries, GOMAXPROCS=%d\n",
		queries, runtime.GOMAXPROCS(0))
	opt.printf("%-10s %-10s %12s %12s %12s\n", "pool", "in-flight", "qps", "p50 (ms)", "p99 (ms)")
	for _, poolSize := range []int{1, 4} {
		eng, err := mnn.Open("mobilenet-v1",
			mnn.WithThreads(1), mnn.WithPoolSize(poolSize))
		if err != nil {
			return err
		}
		in := tensor.New(1, 3, 224, 224)
		tensor.FillRandom(in, 1, 1)
		query := func() error {
			_, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
			return err
		}
		if err := query(); err != nil { // warm up
			eng.Close()
			return err
		}
		for _, inFlight := range []int{1, 4, 16} {
			st, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
				InFlight: inFlight, MinQueryCount: queries,
			})
			if err != nil {
				eng.Close()
				return err
			}
			opt.printf("%-10d %-10d %12.2f %12.2f %12.2f\n",
				poolSize, inFlight, st.QPSWithLoadgen, ms(st.P50Latency), ms(st.P99Latency))
			opt.record("throughput", fmt.Sprintf("mobilenet-v1/pool=%d/inflight=%d", poolSize, inFlight),
				float64(st.MeanLatency.Nanoseconds()), st.QPSWithLoadgen)
		}
		eng.Close()
	}
	opt.printf("shape check: with ≥4 cores, pool 4 at in-flight ≥4 beats every pool-1 row;\n")
	opt.printf("in-flight beyond the pool size only adds queueing latency, not throughput.\n\n")
	return nil
}
