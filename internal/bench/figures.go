package bench

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/device"
	"mnn/internal/engines"
	"mnn/internal/models"
)

// figure7Nets are the three networks of Figure 7.
var figure7Nets = []string{"mobilenet-v1", "squeezenet-v1.1", "resnet-18"}

// figure7Devices are the four phones of Figure 7.
var figure7Devices = []*device.Profile{device.IPhoneX, device.IPhone8, device.Mate20, device.MI6}

// Figure7Cell is one simulated bar of Figure 7.
type Figure7Cell struct {
	Net, Device string
	Engine      engines.Engine
	Mode        string
	SimMs       float64
}

// Figure7Grid simulates the full engine-comparison grid: three networks ×
// four devices × {CPU 2 threads, CPU 4 threads, GPU} × five engines.
func Figure7Grid() ([]Figure7Cell, error) {
	var cells []Figure7Cell
	for _, netName := range figure7Nets {
		g, err := models.ByName(netName)
		if err != nil {
			return nil, err
		}
		for _, dev := range figure7Devices {
			for _, e := range engines.All() {
				if !engines.SupportsDevice(e, dev) {
					continue
				}
				for _, threads := range []int{2, 4} {
					r, err := engines.Simulate(e, g, dev, engines.Mode{Threads: threads})
					if err != nil {
						return nil, err
					}
					cells = append(cells, Figure7Cell{Net: netName, Device: dev.Name,
						Engine: e, Mode: fmt.Sprintf("CPU%d", threads), SimMs: r.SimMs})
				}
				for _, api := range engines.GPUAPIs(e, dev.OS) {
					r, err := engines.Simulate(e, g, dev, engines.Mode{GPU: true, API: api, Threads: 2})
					if err != nil {
						return nil, err
					}
					label := "GPU-" + api.String()
					cells = append(cells, Figure7Cell{Net: netName, Device: dev.Name,
						Engine: e, Mode: label, SimMs: r.SimMs})
				}
			}
		}
	}
	return cells, nil
}

// Figure7 prints the grid in the paper's row layout (CPU2 / CPU4 / GPU).
func Figure7(opt Options) error {
	cells, err := Figure7Grid()
	if err != nil {
		return err
	}
	index := map[string]float64{}
	for _, c := range cells {
		index[c.Net+"|"+c.Device+"|"+string(c.Engine)+"|"+c.Mode] = c.SimMs
	}
	opt.printf("Figure 7 — engine comparison (sim ms per image; '-' = engine/backend unavailable)\n")
	for _, net := range figure7Nets {
		opt.printf("\n## %s\n", net)
		for _, mode := range []string{"CPU2", "CPU4", "GPU"} {
			opt.printf("%-6s", mode)
			for _, e := range engines.All() {
				opt.printf(" %18s", string(e))
			}
			opt.printf("\n")
			for _, dev := range figure7Devices {
				opt.printf("%-6s", dev.Name)
				for _, e := range engines.All() {
					var val float64
					var found bool
					if mode == "GPU" {
						// Best GPU API per engine, as the paper plots one
						// bar per engine's primary backend.
						for _, api := range engines.GPUAPIs(e, deviceOS(dev)) {
							if v, ok := index[net+"|"+dev.Name+"|"+string(e)+"|GPU-"+api.String()]; ok {
								if !found || v < val {
									val, found = v, true
								}
							}
						}
					} else {
						val, found = index[net+"|"+dev.Name+"|"+string(e)+"|"+mode]
					}
					if found {
						opt.printf(" %18.1f", val)
					} else {
						opt.printf(" %18s", "-")
					}
				}
				opt.printf("\n")
			}
		}
	}
	opt.printf("\nshape check: MNN leads ~20–40%% on CPU rows; CoreML edges MNN-Metal on iOS GPU;\n")
	opt.printf("NCNN-Vulkan weak on MI6; iPhone CPU4 competitive with GPU.\n\n")
	return nil
}

func deviceOS(d *device.Profile) string { return d.OS }

// Figure8Bars is the fixed engine/backend list of Figure 8.
var Figure8Bars = []struct {
	Label   string
	Engine  engines.Engine
	Mode    engines.Mode
	PaperMs float64
}{
	{"MNN-CPU", engines.MNN, engines.Mode{Threads: 4}, 297.1},
	{"MNN-Vul", engines.MNN, engines.Mode{GPU: true, API: backend.KindVulkan, Threads: 4}, 160.9},
	{"MACE-CPU", engines.MACE, engines.Mode{Threads: 4}, 749.1},
	{"MACE-CL", engines.MACE, engines.Mode{GPU: true, API: backend.KindOpenCL, Threads: 4}, 606.2},
	{"TF-Lite-CPU", engines.TFLite, engines.Mode{Threads: 4}, 1039.1},
	{"NCNN-CPU", engines.NCNN, engines.Mode{Threads: 4}, 4501.1},
}

// Figure8 reproduces the case-by-case bottleneck experiment: Inception-v3
// on the Kirin 970 (Huawei P20).
func Figure8(opt Options) error {
	g := models.InceptionV3()
	opt.printf("Figure 8 — Inception-v3 on P20/Kirin 970 (sim ms; paper ms in parens)\n")
	var mnnCPU, ncnnCPU float64
	for _, bar := range Figure8Bars {
		r, err := engines.Simulate(bar.Engine, g, device.P20, bar.Mode)
		if err != nil {
			return err
		}
		opt.printf("%-12s %10.0f (%7.1f)\n", bar.Label, r.SimMs, bar.PaperMs)
		switch bar.Label {
		case "MNN-CPU":
			mnnCPU = r.SimMs
		case "NCNN-CPU":
			ncnnCPU = r.SimMs
		}
	}
	opt.printf("shape check: NCNN-CPU is %.1fx MNN-CPU (paper: %.1fx) — the 1×7/7×1 bottleneck.\n\n",
		ncnnCPU/mnnCPU, 4501.1/297.1)
	return nil
}

// Figure9Nets pairs the networks of Figure 9 with the paper's numbers.
var Figure9Nets = []struct {
	Name               string
	PaperMNN, PaperTVM float64
}{
	{"mobilenet-v1", 22.9, 33.4},
	{"mobilenet-v2", 33.6, 41.3},
	{"squeezenet-v1.1", 21.9, 26.0},
	{"squeezenet-v1.0", 47.7, 51.4},
	{"resnet-50", 184.6, 232.5},
	{"inception-v3", 297.1, 444.7},
}

// Figure9 reproduces the MNN vs TVM CPU comparison on the P20 Pro.
func Figure9(opt Options) error {
	opt.printf("Figure 9 — MNN vs TVM CPU on P20 Pro (sim ms; paper ms in parens)\n")
	opt.printf("%-18s %18s %18s %8s\n", "network", "MNN", "TVM", "ratio")
	for _, row := range Figure9Nets {
		g, err := models.ByName(row.Name)
		if err != nil {
			return err
		}
		mnn, err := engines.Simulate(engines.MNN, g, device.P20Pro, engines.Mode{Threads: 4})
		if err != nil {
			return err
		}
		tvm, err := engines.Simulate(engines.TVM, g, device.P20Pro, engines.Mode{Threads: 4})
		if err != nil {
			return err
		}
		opt.printf("%-18s %9.1f(%6.1f) %9.1f(%6.1f) %7.2fx\n",
			row.Name, mnn.SimMs, row.PaperMNN, tvm.SimMs, row.PaperTVM, tvm.SimMs/mnn.SimMs)
	}
	opt.printf("shape check: MNN ≤ TVM on every network without per-model compilation.\n\n")
	return nil
}
