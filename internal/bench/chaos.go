package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mnn"
	"mnn/internal/fault"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
	"mnn/serve/mesh"
)

// chaosSeed fixes the entire soak's fault schedule: replica-side kernel
// panics, the failed lazy load, the torn cache write, router transport
// resets and retry jitter all derive from it, so a run replays bit-for-bit.
const chaosSeed = 42

// replicaChaosSpec is the fault schedule armed on every replica's registry:
// the victim model's first inference on each replica panics inside the
// engine (count=1 bounds it to one per process), and the lazy aux model's
// first load fails before any engine opens (atomic-load path).
const replicaChaosSpec = "engine.infer=panic,count=1,match=squeezenet;" +
	"registry.load=error,count=1,match=pre:aux"

// routerChaosSpec tears the router's own transport: a few percent of
// proxied round trips are reset at the connection level (retried with
// backoff on another replica) or delayed.
const routerChaosSpec = "mesh.transport=connreset,p=0.04;" +
	"mesh.transport=latency:5ms,p=0.05"

// Chaos is the chaos soak: open-loop load through a router fronting two
// replicas while a seeded fault schedule injects kernel panics, connection
// resets, a failed model load and a torn tuning-cache write. The run
// asserts the containment story end to end — the process never dies, every
// client-visible error is a typed HTTP status, the panicking model is
// quarantined and visibly recovers, and goodput on the healthy model stays
// within 1% of a fault-free baseline run at the same offered rate.
func Chaos(opt Options) error {
	shape := []int{1, 3, 128, 128}
	window := 5 * time.Second
	// The cooldown must outlast a panic's poison-and-rebuild on the OTHER
	// replica too: the second replica's 500 only returns once its
	// replacement session is prepared (seconds under -race), and by then
	// the first replica's quarantine must still be up for a client request
	// to land on the gate. Not scaled down in quick mode for that reason.
	cooldown := 3 * time.Second
	victimEvery := 120 * time.Millisecond
	if opt.Quick {
		shape = []int{1, 3, 64, 64}
		window = 2 * time.Second
		victimEvery = 80 * time.Millisecond
	}
	opt.printf("Chaos soak — router + 2 replicas under seed-%d fault schedule, window %v\n", chaosSeed, window)
	opt.printf("replica faults: %s\n", replicaChaosSpec)
	opt.printf("router faults:  %s\n", routerChaosSpec)

	if err := tornCacheRecovery(opt, shape); err != nil {
		return err
	}

	base, rate, err := runChaosSoak(opt, shape, window, cooldown, victimEvery, false, 0)
	if err != nil {
		return fmt.Errorf("bench: chaos baseline: %w", err)
	}
	chaos, _, err := runChaosSoak(opt, shape, window, cooldown, victimEvery, true, rate)
	if err != nil {
		return fmt.Errorf("bench: chaos soak: %w", err)
	}

	baseAvail := availability(base.main)
	chaosAvail := availability(chaos.main)
	opt.printf("%-22s %10s %12s %12s %10s %10s\n",
		"run", "issued", "availability", "goodput", "p99 (ms)", "failed")
	opt.printf("%-22s %10d %11.2f%% %12.1f %10.2f %10d\n",
		"fault-free baseline", base.main.Issued, 100*baseAvail, base.main.GoodputQPS,
		ms(base.main.P99Latency), base.main.Failed)
	opt.printf("%-22s %10d %11.2f%% %12.1f %10.2f %10d\n",
		"under chaos", chaos.main.Issued, 100*chaosAvail, chaos.main.GoodputQPS,
		ms(chaos.main.P99Latency), chaos.main.Failed)
	opt.printf("victim model: %d contained panics (HTTP 500), %d quarantined 503s, recovered=%v\n",
		chaos.victim.panics, chaos.victim.quarantined, chaos.victim.recovered)
	opt.printf("aux model: first lazy load failed typed (%d attempts shed), then served\n",
		chaos.auxFailures)

	// The soak's contract, enforced rather than eyeballed.
	if chaos.victim.panics < 1 {
		return fmt.Errorf("bench: chaos: no kernel panic was contained (victim statuses: %v)", chaos.victim.statuses)
	}
	if chaos.victim.quarantined < 1 {
		return fmt.Errorf("bench: chaos: victim model never quarantined (victim statuses: %v)", chaos.victim.statuses)
	}
	if !chaos.victim.recovered {
		return fmt.Errorf("bench: chaos: victim model did not recover after the cooldown (victim statuses: %v)", chaos.victim.statuses)
	}
	if chaos.victim.other > 0 {
		return fmt.Errorf("bench: chaos: victim saw an untyped/unexpected response: %s", chaos.victim.firstOther)
	}
	if chaos.quarantines < 1 {
		return fmt.Errorf("bench: chaos: registries report no quarantines")
	}
	if chaos.quarantinedAtEnd {
		return fmt.Errorf("bench: chaos: a model is still quarantined after the soak")
	}
	if !chaos.auxOK || chaos.auxFailures < 1 {
		return fmt.Errorf("bench: chaos: aux lazy-load fault path: failures=%d served=%v",
			chaos.auxFailures, chaos.auxOK)
	}
	if chaos.main.FirstError != nil && !strings.Contains(chaos.main.FirstError.Error(), "HTTP ") {
		return fmt.Errorf("bench: chaos: main stream saw an untyped (non-HTTP) failure: %w", chaos.main.FirstError)
	}
	if chaosAvail < 0.99 || chaosAvail < 0.99*baseAvail {
		return fmt.Errorf("bench: chaos: availability %.4f (baseline %.4f) below the 99%% goodput budget",
			chaosAvail, baseAvail)
	}

	if opt.Recorder != nil {
		opt.Recorder.RecordChaos("chaos", "mobilenet-v1/baseline",
			baseAvail, base.main.GoodputQPS, float64(base.main.P99Latency.Nanoseconds()))
		opt.Recorder.RecordChaos("chaos", "mobilenet-v1/faulted",
			chaosAvail, chaos.main.GoodputQPS, float64(chaos.main.P99Latency.Nanoseconds()))
	}
	opt.printf("shape check: the process survived the whole schedule, panics became typed 500s,\n")
	opt.printf("the quarantine lifted on its own, and the healthy model's goodput held ≥99%%.\n\n")
	return nil
}

// tornCacheRecovery tears the tuning-cache write of a measured open
// mid-rename, then shows the next open treating the wreckage as a cold
// cache: it re-tunes and atomically repairs the file.
func tornCacheRecovery(opt Options, shape []int) error {
	dir, err := os.MkdirTemp("", "mnn-chaos-tuning")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cache := filepath.Join(dir, "tuned.json")
	plan, err := mnn.ParseFaultPlan(chaosSeed, "tuner.cache.write=torn,count=1")
	if err != nil {
		return err
	}
	open := func(opts ...mnn.Option) (mnn.TuningStats, error) {
		eng, err := mnn.Open("squeezenet-v1.1", append([]mnn.Option{
			mnn.WithThreads(1),
			mnn.WithInputShapes(map[string][]int{"data": shape}),
			mnn.WithTuning(mnn.TuningMeasured),
			mnn.WithTuningCache(cache),
		}, opts...)...)
		if err != nil {
			return mnn.TuningStats{}, err
		}
		defer eng.Close()
		return eng.TuningStats(), nil
	}
	torn, err := open(mnn.WithFaultPlan(plan))
	if err != nil {
		return fmt.Errorf("bench: chaos: torn-write open: %w", err)
	}
	if torn.CacheSaved {
		return fmt.Errorf("bench: chaos: torn write still reported CacheSaved")
	}
	repaired, err := open()
	if err != nil {
		return fmt.Errorf("bench: chaos: open over torn cache: %w", err)
	}
	if repaired.CacheLoaded || repaired.Measured == 0 || !repaired.CacheSaved {
		return fmt.Errorf("bench: chaos: torn cache not recovered: %+v", repaired)
	}
	opt.printf("tuning cache: torn write detected, cold re-tune ran (%d measured), file repaired\n",
		repaired.Measured)
	return nil
}

// soakOutcome is everything one soak run observed.
type soakOutcome struct {
	main             loadgen.OpenLoopStats
	victim           victimLog
	auxFailures      int
	auxOK            bool
	quarantines      int64
	quarantinedAtEnd bool
}

// victimLog classifies the victim trickle's responses.
type victimLog struct {
	statuses    []int
	ok          int
	panics      int // HTTP 500 naming a kernel panic
	quarantined int // HTTP 503 + X-Model-Quarantined
	other       int
	firstOther  string
	recovered   bool // a 200 arrived after at least one quarantined 503
}

// availability is completed/issued — the goodput budget's unit.
func availability(st loadgen.OpenLoopStats) float64 {
	if st.Issued == 0 {
		return 0
	}
	return float64(st.Completed) / float64(st.Issued)
}

// runChaosSoak boots the mesh (armed or fault-free), drives the healthy
// model open-loop at the given rate (0 = probe capacity and run at half),
// trickles the victim and aux models alongside, and tears everything down.
// Returns the outcome and the rate used, so the chaos run can replay the
// baseline's offered load.
func runChaosSoak(opt Options, shape []int, window, cooldown, victimEvery time.Duration, arm bool, rate float64) (soakOutcome, float64, error) {
	var out soakOutcome
	routerBase, regs, cleanup, err := bootChaosMesh(shape, cooldown, arm)
	if err != nil {
		return out, 0, err
	}
	defer cleanup()

	in := tensor.New(shape...)
	tensor.FillRandom(in, 23, 1)
	query, err := loadgen.NewHTTPQuery(loadgen.HTTPConfig{
		BaseURL: routerBase,
		Model:   "mobilenet-v1",
	}, map[string]*tensor.Tensor{"data": in})
	if err == nil {
		err = query() // warm connections and batch shapes
	}
	if err != nil {
		return out, 0, err
	}
	if rate <= 0 {
		probe, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
			InFlight: 2, MinQueryCount: 16,
		})
		if err != nil {
			return out, 0, err
		}
		// Half of capacity: the budget under test is fault tolerance, not
		// overload shedding, so the healthy model must have headroom.
		rate = probe.QPSWithLoadgen * 0.5
		opt.printf("capacity probe via router: %.1f qps → soaking at %.1f qps\n",
			probe.QPSWithLoadgen, rate)
	}

	body, err := inferBody("data", shape, 31)
	if err != nil {
		return out, 0, err
	}
	soft := time.Now().Add(window)
	// The trickle may outlive the main window: on slow hosts (-race) the
	// quarantine lifts after the offered load stops, and the recovery must
	// still be observed. The hard deadline bounds that grace.
	hard := soft.Add(3*cooldown + 2*time.Second)
	victimDone := make(chan victimLog, 1)
	go func() { victimDone <- trickleVictim(routerBase, body, victimEvery, soft, hard) }()
	auxDone := make(chan [2]int, 1)
	go func() {
		// Start a beat into the window so the lazy-load fault lands while
		// the soak is hot.
		time.Sleep(window / 8)
		failures, okAt := probeAux(routerBase, body)
		auxDone <- [2]int{failures, okAt}
	}()

	st, err := loadgen.RunOpenLoop(query, loadgen.OpenLoopConfig{
		Rate:     rate,
		Duration: window,
	})
	if err != nil {
		return out, 0, err
	}
	out.main = st
	out.victim = <-victimDone
	aux := <-auxDone
	out.auxFailures, out.auxOK = aux[0], aux[1] > 0

	// Quarantine windows are pure clock state; wait out any stragglers (a
	// replica whose cooldown started late) before judging the end state.
	settle := time.Now().Add(2*cooldown + time.Second)
	for {
		out.quarantines, out.quarantinedAtEnd = 0, false
		for _, reg := range regs {
			for _, ref := range reg.Names() {
				m, err := reg.Get(ref)
				if err != nil {
					continue
				}
				out.quarantines += m.Quarantines()
				if m.Quarantined() {
					out.quarantinedAtEnd = true
				}
			}
		}
		if !out.quarantinedAtEnd || time.Now().After(settle) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return out, rate, nil
}

// bootChaosMesh is bootMesh plus a victim model, a lazy aux model, and —
// when arm is set — the seeded fault schedule on every replica registry and
// on the router transport, with the quarantine cooldown under test.
func bootChaosMesh(shape []int, cooldown time.Duration, arm bool) (string, []*serve.Registry, func(), error) {
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	var bases []string
	var regs []*serve.Registry
	for i := 0; i < 2; i++ {
		reg := serve.NewRegistry()
		if arm {
			plan, err := fault.ParsePlan(chaosSeed, replicaChaosSpec)
			if err != nil {
				cleanup()
				return "", nil, nil, err
			}
			reg.SetFaultInjector(fault.NewInjector(plan))
			reg.SetQuarantinePolicy(1, cooldown)
		}
		shapes := map[string][]int{"data": shape}
		load := func(name string, cfg serve.ModelConfig) error {
			if err := reg.Load(name, cfg); err != nil {
				reg.Close()
				cleanup()
				return err
			}
			return nil
		}
		if err := load("mobilenet-v1", serve.ModelConfig{
			Model: "mobilenet-v1",
			Options: []mnn.Option{
				mnn.WithPoolSize(2), mnn.WithInputShapes(shapes),
			},
			Admission: serve.AdmissionConfig{Queue: 8},
		}); err != nil {
			return "", nil, nil, err
		}
		if err := load("victim", serve.ModelConfig{
			Model: "squeezenet-v1.1",
			Options: []mnn.Option{
				mnn.WithPoolSize(1), mnn.WithInputShapes(shapes),
			},
		}); err != nil {
			return "", nil, nil, err
		}
		if err := load("aux", serve.ModelConfig{
			Model: "squeezenet-v1.1",
			Options: []mnn.Option{
				mnn.WithPoolSize(1), mnn.WithInputShapes(shapes),
			},
			Lazy: true,
		}); err != nil {
			return "", nil, nil, err
		}
		srv := serve.NewServer(reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			reg.Close()
			cleanup()
			return "", nil, nil, err
		}
		go srv.Serve(l)
		cleanups = append(cleanups, func() { srv.Shutdown(context.Background()) })
		bases = append(bases, "http://"+l.Addr().String())
		regs = append(regs, reg)
	}

	cfg := mesh.Config{Replicas: bases, RetrySeed: chaosSeed}
	if arm {
		plan, err := fault.ParsePlan(chaosSeed, routerChaosSpec)
		if err != nil {
			cleanup()
			return "", nil, nil, err
		}
		cfg.Transport = fault.NewTransport(&http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}, fault.NewInjector(plan))
	}
	rt, err := mesh.New(cfg)
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: rt.Handler()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		cleanup()
		return "", nil, nil, err
	}
	go hs.Serve(l)
	cleanups = append(cleanups, func() { hs.Close(); rt.Close() })
	return "http://" + l.Addr().String(), regs, cleanup, nil
}

// inferBody marshals one inference request for a "data" input of the given
// shape, reusable across posts.
func inferBody(input string, shape []int, seed uint64) ([]byte, error) {
	in := tensor.New(shape...)
	tensor.FillRandom(in, seed, 1)
	req := serve.InferRequest{Inputs: []serve.InferTensor{serve.EncodeTensor(input, in)}}
	return json.Marshal(&req)
}

// postInfer sends one inference and reports status, the quarantine header,
// and a body prefix for classification.
func postInfer(base, model string, body []byte) (int, bool, string, error) {
	resp, err := http.Post(base+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, "", err
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return resp.StatusCode, resp.Header.Get("X-Model-Quarantined") == "true", string(blob), nil
}

// trickleVictim sends the victim model one request per tick and classifies
// every response: contained panics are typed 500s, quarantine shows as 503
// + X-Model-Quarantined, and a 200 after any 503 is the visible recovery.
// It runs until the soft deadline, then keeps going only while a recovery
// is still owed (any contained panic triggers a quarantine under the
// after=1 policy, so the 503s and the post-cooldown 200 must eventually be
// observed), up to the hard deadline.
func trickleVictim(base string, body []byte, every time.Duration, soft, hard time.Time) victimLog {
	var vl victimLog
	for {
		now := time.Now()
		if now.After(soft) && (vl.panics == 0 || vl.recovered) {
			break
		}
		if now.After(hard) {
			break
		}
		status, quarantined, blob, err := postInfer(base, "victim", body)
		if err != nil {
			vl.other++
			if vl.firstOther == "" {
				vl.firstOther = err.Error()
			}
		} else {
			vl.statuses = append(vl.statuses, status)
			switch {
			case status == http.StatusOK:
				vl.ok++
				if vl.quarantined > 0 {
					vl.recovered = true
				}
			case status == http.StatusInternalServerError && strings.Contains(blob, "panic"):
				vl.panics++
			case status == http.StatusServiceUnavailable && quarantined:
				vl.quarantined++
			default:
				vl.other++
				if vl.firstOther == "" {
					vl.firstOther = fmt.Sprintf("HTTP %d: %s", status, blob)
				}
			}
		}
		time.Sleep(every)
	}
	return vl
}

// probeAux drives the lazy aux model until it serves: the armed schedule
// fails its first load with a typed error, and the registry's atomic-load
// contract means the very next request loads and serves cleanly.
func probeAux(base string, body []byte) (failures, okAt int) {
	for attempt := 1; attempt <= 6; attempt++ {
		status, _, _, err := postInfer(base, "aux", body)
		if err == nil && status == http.StatusOK {
			return failures, attempt
		}
		failures++
		time.Sleep(50 * time.Millisecond)
	}
	return failures, 0
}
