// Package bench implements the full benchmark harness: one experiment per
// table and figure of the paper's evaluation, each printing the paper's
// published value next to this reproduction's measured/simulated value.
//
// Two kinds of numbers appear (see DESIGN.md):
//   - "host" rows are real wall-clock measurements of this repository's
//     kernels on the machine running the benchmark;
//   - "sim" rows come from the Equation 5 device simulator (phone-grade
//     hardware being unavailable), which preserves the paper's relative
//     orderings by construction of the cost model.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Options controls experiment effort.
type Options struct {
	// Quick reduces repetitions/problem sizes for use inside `go test`.
	Quick bool
	// Out receives the formatted report (default os.Stdout at callers).
	Out io.Writer
	// Recorder, when non-nil, additionally collects machine-readable
	// results (mnnbench -json). Table output is unaffected.
	Recorder *Recorder
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// record emits one measurement into the recorder, if any.
func (o Options) record(experiment, kase string, nsPerOp, throughputQPS float64) {
	if o.Recorder != nil {
		o.Recorder.Record(experiment, kase, nsPerOp, throughputQPS)
	}
}

// Result is one machine-readable measurement row. Latency-style experiments
// fill NsPerOp; throughput-style experiments fill ThroughputQPS; the allocs
// experiment fills AllocsPerOp (where 0 is meaningful, AllocsMeasured is
// set). Zero means not applicable.
type Result struct {
	Experiment     string  `json:"experiment"`
	Case           string  `json:"case"`
	NsPerOp        float64 `json:"ns_per_op,omitempty"`
	ThroughputQPS  float64 `json:"throughput_qps,omitempty"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
	AllocsMeasured bool    `json:"allocs_measured,omitempty"`
	// MaxAbsErr is the accuracy cost of a lossy path (the quant experiment's
	// int8-vs-fp32 output deviation).
	MaxAbsErr float64 `json:"max_abs_err,omitempty"`
	// Speedup is the ratio of a baseline latency to this case's latency
	// (the quant experiment's fp32/int8 ratio; > 1 means faster).
	Speedup float64 `json:"speedup,omitempty"`
	// P99Ns is the 99th-percentile latency of admitted requests (the
	// overload experiment; NsPerOp holds the mean elsewhere).
	P99Ns float64 `json:"p99_ns,omitempty"`
	// ShedRate is the fraction of issued requests rejected by admission
	// control (the overload experiment).
	ShedRate float64 `json:"shed_rate,omitempty"`
	// Availability is completed / issued over a soak window (the chaos
	// experiment: how much goodput survived the fault schedule).
	Availability float64 `json:"availability,omitempty"`
}

// Recorder accumulates Results across experiments. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	results []Result
}

// Record appends one result row.
func (r *Recorder) Record(experiment, kase string, nsPerOp, throughputQPS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, Result{
		Experiment: experiment, Case: kase,
		NsPerOp: nsPerOp, ThroughputQPS: throughputQPS,
	})
}

// RecordAllocs appends one allocation-measurement row (with optional
// latency), marking zero allocations as a real measurement.
func (r *Recorder) RecordAllocs(experiment, kase string, allocsPerOp, nsPerOp float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, Result{
		Experiment: experiment, Case: kase,
		NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp, AllocsMeasured: true,
	})
}

// RecordQuant appends one quant-experiment row: latency plus the speed-up
// over the fp32 baseline and the max-abs output deviation from it.
func (r *Recorder) RecordQuant(experiment, kase string, nsPerOp, speedup, maxAbsErr float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, Result{
		Experiment: experiment, Case: kase,
		NsPerOp: nsPerOp, Speedup: speedup, MaxAbsErr: maxAbsErr,
	})
}

// RecordOverload appends one overload-experiment row: goodput of admitted
// requests, their p99 latency, and the shed rate.
func (r *Recorder) RecordOverload(experiment, kase string, goodputQPS, p99Ns, shedRate float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, Result{
		Experiment: experiment, Case: kase,
		ThroughputQPS: goodputQPS, P99Ns: p99Ns, ShedRate: shedRate,
	})
}

// RecordChaos appends one chaos-soak row: availability (completed/issued),
// goodput of completed requests, and their p99 latency.
func (r *Recorder) RecordChaos(experiment, kase string, availability, goodputQPS, p99Ns float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, Result{
		Experiment: experiment, Case: kase,
		Availability: availability, ThroughputQPS: goodputQPS, P99Ns: p99Ns,
	})
}

// Results returns a snapshot of everything recorded so far.
func (r *Recorder) Results() []Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Result(nil), r.results...)
}

// WriteJSON writes the recorded results as an indented JSON array — the
// BENCH_*.json format of the perf trajectory.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Results())
}

// medianOf runs fn reps times and returns the median duration.
func medianOf(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		t0 := time.Now()
		fn()
		times[i] = time.Since(t0)
	}
	// insertion sort; reps is tiny
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Experiment names accepted by Run.
var Experiments = []string{
	"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
	"figure7", "figure8", "figure9",
	"ablation-strassen", "ablation-layout", "ablation-memory", "ablation-tile",
	"throughput", "serving", "overload", "bucketed", "transformer", "mesh", "allocs",
	"quant", "tuning", "chaos",
}

// Run dispatches one experiment by name.
func Run(name string, opt Options) error {
	switch name {
	case "table1":
		return Table1(opt)
	case "table2":
		return Table2(opt)
	case "table3":
		return Table3(opt)
	case "table4":
		return Table4(opt)
	case "table5":
		return Table5(opt)
	case "table6":
		return Table6(opt)
	case "table7":
		return Table7(opt)
	case "table8":
		return Table8(opt)
	case "figure7":
		return Figure7(opt)
	case "figure8":
		return Figure8(opt)
	case "figure9":
		return Figure9(opt)
	case "ablation-strassen":
		return AblationStrassen(opt)
	case "ablation-layout":
		return AblationLayout(opt)
	case "ablation-memory":
		return AblationMemory(opt)
	case "ablation-tile":
		return AblationTile(opt)
	case "throughput":
		return Throughput(opt)
	case "serving":
		return Serving(opt)
	case "overload":
		return Overload(opt)
	case "bucketed":
		return Bucketed(opt)
	case "transformer":
		return Transformer(opt)
	case "mesh":
		return Mesh(opt)
	case "allocs":
		return Allocs(opt)
	case "quant":
		return Quant(opt)
	case "tuning":
		return Tuning(opt)
	case "chaos":
		return Chaos(opt)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
}
