package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
)

// Overload measures the serving tier under open-loop overload: mobilenet-v1
// behind an admission queue, driven at a fixed arrival rate that exceeds
// capacity. The interesting numbers are goodput (does it hold near capacity
// instead of collapsing?), p99 of admitted requests (does the bounded queue
// keep it bounded?), and the shed rate (is the excess rejected fast with
// 429s rather than timing out slowly?).
func Overload(opt Options) error {
	shape := []int{1, 3, 128, 128}
	window := 6 * time.Second
	if opt.Quick {
		shape = []int{1, 3, 64, 64}
		window = 2 * time.Second
	}
	opt.printf("Overload — open-loop arrivals vs admission control, mobilenet-v1 at %v, pool 2, queue 8, GOMAXPROCS=%d\n",
		shape, runtime.GOMAXPROCS(0))

	reg := serve.NewRegistry()
	err := reg.Load("mobilenet-v1", serve.ModelConfig{
		Model: "mobilenet-v1",
		Options: []mnn.Option{
			mnn.WithPoolSize(2),
			mnn.WithInputShapes(map[string][]int{"data": shape}),
		},
		Admission: serve.AdmissionConfig{Queue: 8},
	})
	if err != nil {
		return err
	}
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		return err
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())

	in := tensor.New(shape...)
	tensor.FillRandom(in, 23, 1)
	query, err := loadgen.NewHTTPQuery(loadgen.HTTPConfig{
		BaseURL: "http://" + l.Addr().String(),
		Model:   "mobilenet-v1",
	}, map[string]*tensor.Tensor{"data": in})
	if err == nil {
		err = query() // warm up: connection + any lazy paths
	}
	if err != nil {
		return err
	}

	// Capacity probe: closed-loop at the engine's concurrency so the arrival
	// rates below are meaningful multiples of what the system can do.
	probe, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
		InFlight: 2, MinQueryCount: 16,
	})
	if err != nil {
		return err
	}
	capacity := probe.QPSWithLoadgen
	opt.printf("closed-loop capacity probe: %.1f qps\n", capacity)
	opt.printf("%-12s %12s %12s %12s %12s %10s\n",
		"offered", "issued", "goodput", "p99 (ms)", "shed rate", "failed")

	for _, load := range []struct {
		name string
		mult float64
	}{
		{"0.7x", 0.7},
		{"2.0x", 2.0},
	} {
		st, err := loadgen.RunOpenLoop(query, loadgen.OpenLoopConfig{
			Rate:     capacity * load.mult,
			Duration: window,
		})
		if err != nil {
			return err
		}
		if st.FirstError != nil {
			return fmt.Errorf("bench: overload %s: %w", load.name, st.FirstError)
		}
		opt.printf("%-12s %12d %12.1f %12.2f %10.1f%% %10d\n",
			load.name, st.Issued, st.GoodputQPS, ms(st.P99Latency), 100*st.ShedRate, st.Failed)
		if opt.Recorder != nil {
			opt.Recorder.RecordOverload("overload",
				fmt.Sprintf("mobilenet-v1/queue=8/offered=%s", load.name),
				st.GoodputQPS, float64(st.P99Latency.Nanoseconds()), st.ShedRate)
		}
	}
	opt.printf("shape check: at 0.7x the shed rate is ~0 and goodput tracks the offered rate;\n")
	opt.printf("at 2.0x goodput holds near capacity while the excess is shed as fast 429s\n")
	opt.printf("instead of every request timing out.\n\n")
	return nil
}
