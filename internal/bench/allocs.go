package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mnn"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Allocs measures steady-state heap allocations per operation — the
// observable half of the preparation–execution decoupling: after
// pre-inference has planned activations AND kernel workspaces into the
// arena and the persistent worker pool is up, Engine.InferInto and every
// prepared conv kernel must report 0 allocs/op. The experiment also records
// the InferInto latency so the perf trajectory carries the throughput
// headline alongside the allocation counts.
func Allocs(opt Options) error {
	reps := 5
	if opt.Quick {
		reps = 2
	}
	opt.printf("Allocs — steady-state heap allocations per operation (want 0 everywhere)\n")
	opt.printf("%-36s %12s %14s\n", "case", "allocs/op", "ms/op")

	row := func(kase string, allocs float64, d time.Duration) {
		opt.printf("%-36s %12.1f %14.3f\n", kase, allocs, ms(d))
		if opt.Recorder != nil {
			opt.Recorder.RecordAllocs("allocs", kase, allocs, float64(d.Nanoseconds()))
		}
	}

	// --- Engine.InferInto on mobilenet-v1, the throughput headline — at
	// both precisions: the int8 path plans its panels and accumulators into
	// the same arena, so its steady state must be equally allocation-free.
	for _, threads := range []int{1, 4} {
		for _, precision := range []mnn.Precision{mnn.PrecisionFP32, mnn.PrecisionInt8} {
			eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(threads), mnn.WithPrecision(precision))
			if err != nil {
				return err
			}
			in := tensor.New(1, 3, 224, 224)
			tensor.FillRandom(in, 1, 1)
			inputs := map[string]*mnn.Tensor{"data": in}
			ctx := context.Background()
			outputs, err := eng.Infer(ctx, inputs)
			if err != nil {
				eng.Close()
				return err
			}
			if err := eng.InferInto(ctx, inputs, outputs); err != nil { // warm
				eng.Close()
				return err
			}
			allocs := testing.AllocsPerRun(reps, func() {
				if err := eng.InferInto(ctx, inputs, outputs); err != nil {
					panic(err)
				}
			})
			d := medianOf(reps, func() {
				if err := eng.InferInto(ctx, inputs, outputs); err != nil {
					panic(err)
				}
			})
			// The fp32 case keeps its PR-3 name so the perf trajectory stays
			// comparable across BENCH_pr*.json files.
			kase := fmt.Sprintf("mobilenet-v1/InferInto/t%d", threads)
			if precision == mnn.PrecisionInt8 {
				kase = fmt.Sprintf("mobilenet-v1/InferInto-int8/t%d", threads)
			}
			row(kase, allocs, d)
			eng.Close()
		}
	}

	// --- Prepared conv kernels with planner-style workspaces.
	pool := sched.New(4)
	defer pool.Close()
	lanes := pool.Lanes()

	kernelCase := func(kase string, warm func(), run func()) {
		warm()
		allocs := testing.AllocsPerRun(reps, run)
		row(kase, allocs, medianOf(reps, run))
	}

	{
		a := &graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
			Group: 1, InputCount: 128, OutputCount: 128}
		w := tensor.NewRandom(2, 0.2, 128, 128, 1, 1)
		c := kernels.PrepareConv1x1(w, nil, a)
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 28, 28)
		tensor.FillRandom(src, 3, 1)
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 28, 28)
		ws := make([]float32, c.WorkspaceSize(1, 28, 28, lanes))
		kernelCase("conv1x1-strassen/Run", func() { c.Run(dst, src, pool, ws) },
			func() { c.Run(dst, src, pool, ws) })
	}
	{
		a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 1, InputCount: 32, OutputCount: 32}
		w := tensor.NewRandom(4, 0.2, 32, 32, 3, 3)
		wc, err := kernels.PrepareWinograd(w, nil, a, 4, 4)
		if err != nil {
			return err
		}
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, 32, 56, 56)
		tensor.FillRandom(src, 5, 1)
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 32, 56, 56)
		ws := make([]float32, wc.WorkspaceSize()*lanes)
		kernelCase("conv-winograd-F4/Run", func() { wc.Run(dst, src, pool, ws) },
			func() { wc.Run(dst, src, pool, ws) })
	}
	{
		a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 64, InputCount: 64, OutputCount: 64}
		w := tensor.NewRandom(6, 0.2, 64, 1, 3, 3)
		dc := kernels.PrepareDepthwise(w, nil, a)
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 56, 56)
		tensor.FillRandom(src, 7, 1)
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 56, 56)
		kernelCase("conv-depthwise/Run", func() { dc.Run(dst, src, pool) },
			func() { dc.Run(dst, src, pool) })
	}
	{
		a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 1, InputCount: 32, OutputCount: 32}
		w := tensor.NewRandom(8, 0.2, 32, 32, 3, 3)
		sc := kernels.PrepareSliding(w, nil, a)
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, 32, 28, 28)
		tensor.FillRandom(src, 9, 1)
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 32, 28, 28)
		kernelCase("conv-sliding/Run", func() { sc.Run(dst, src, pool) },
			func() { sc.Run(dst, src, pool) })
	}
	{
		a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 2, InputCount: 16, OutputCount: 16}
		w := tensor.NewRandom(10, 0.2, 16, 8, 3, 3)
		c := kernels.PrepareIm2col(w, nil, a)
		src := tensor.NewRandom(11, 1, 1, 16, 28, 28)
		dst := tensor.New(1, 16, 28, 28)
		ws := make([]float32, c.WorkspaceSize(28, 28))
		kernelCase("conv-im2col/Run", func() { c.Run(dst, src, pool, ws) },
			func() { c.Run(dst, src, pool, ws) })
	}

	opt.printf("\n")
	return nil
}
