package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
)

// Transformer measures what the plan-once/run-any-shape engine buys on
// variable-length traffic: the transformer built-in driven open-loop with
// three sequence lengths interleaved round-robin at the same offered rate
// against three server configs.
//
//   - static: the engine is prepared at the declared (max) length only —
//     the pre-dynamic behaviour. Every other length is rejected by shape
//     validation, so goodput is roughly a third of offered.
//   - dynamic: WithMaxInputShapes plans once at the max length and serves
//     every length, but with buckets=1 only the max length batches; the
//     other two run unbatched on the fallback engine.
//   - dynamic+buckets: each length gets its own exact-shape queue and all
//     of them stack (exact-n, no padding) through the one shared dynamic
//     batch engine.
func Transformer(opt Options) error {
	maxShape := []int{1, 16, 32}
	shapes := [][]int{{1, 16, 32}, {1, 8, 32}, {1, 4, 32}}
	window := 6 * time.Second
	if opt.Quick {
		window = 2 * time.Second
	}
	opt.printf("Transformer — mixed sequence lengths (%d/%d/%d tokens) open loop, batch 4 within 2ms, pool 2, GOMAXPROCS=%d\n",
		shapes[0][1], shapes[1][1], shapes[2][1], runtime.GOMAXPROCS(0))
	opt.printf("%-16s %12s %12s %12s %12s %10s\n",
		"config", "issued", "goodput", "p99 (ms)", "served", "failed")

	var offered float64
	for _, row := range []struct {
		name    string
		dynamic bool
		buckets int
	}{
		{"static", false, 1},
		{"dynamic", true, 1},
		{"dynamic+buckets", true, len(shapes)},
	} {
		st, err := runTransformerRow(opt, row.dynamic, row.buckets, maxShape, shapes, window, &offered)
		if err != nil {
			return fmt.Errorf("bench: transformer %s: %w", row.name, err)
		}
		served := 0.0
		if st.Issued > 0 {
			served = float64(st.Completed) / float64(st.Issued)
		}
		opt.printf("%-16s %12d %12.1f %12.2f %11.1f%% %10d\n",
			row.name, st.Issued, st.GoodputQPS, ms(st.P99Latency), 100*served, st.Failed)
		if row.name == "static" {
			if st.FirstError != nil {
				opt.printf("  (static-shape rejections as expected: %v)\n", st.FirstError)
			}
		} else if st.FirstError != nil {
			// The dynamic configs claim to serve every in-plan length; any
			// failure there is a real bug, not an expected rejection.
			return fmt.Errorf("bench: transformer %s row failed: %w", row.name, st.FirstError)
		}
		if opt.Recorder != nil {
			opt.Recorder.RecordOverload("transformer",
				fmt.Sprintf("transformer/mixed-lengths/%s", row.name),
				st.GoodputQPS, float64(st.P99Latency.Nanoseconds()), st.ShedRate)
		}
	}
	opt.printf("shape check: at equal offered load the dynamic configs' goodput is ~3x the\n")
	opt.printf("static config's — the plan-once engine serves every sequence length from one\n")
	opt.printf("preparation — and dynamic+buckets holds the lowest p99 of the two by stacking\n")
	opt.printf("each length's requests through the shared batch engine.\n\n")
	return nil
}

// runTransformerRow boots one server in the given config, offers the
// round-robin mixed-length stream, and returns the open-loop stats. The
// offered rate is probed once (closed-loop, declared length only, on the
// static server) and then shared so every row sees equal offered load.
func runTransformerRow(opt Options, dynamic bool, buckets int, maxShape []int, shapes [][]int, window time.Duration, offered *float64) (loadgen.OpenLoopStats, error) {
	opts := []mnn.Option{mnn.WithPoolSize(2)}
	if dynamic {
		opts = append(opts, mnn.WithMaxInputShapes(map[string][]int{"tokens": maxShape}))
	} else {
		opts = append(opts, mnn.WithInputShapes(map[string][]int{"tokens": maxShape}))
	}
	reg := serve.NewRegistry()
	err := reg.Load("transformer", serve.ModelConfig{
		Model:   "transformer",
		Options: opts,
		Batch:   serve.BatchConfig{MaxBatch: 4, MaxLatency: 2 * time.Millisecond, Buckets: buckets},
	})
	if err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		return loadgen.OpenLoopStats{}, err
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())

	queries := make([]func() error, len(shapes))
	for i, shape := range shapes {
		in := tensor.New(shape...)
		tensor.FillRandom(in, uint64(41+i), 1)
		queries[i], err = loadgen.NewHTTPQuery(loadgen.HTTPConfig{
			BaseURL: "http://" + l.Addr().String(),
			Model:   "transformer",
		}, map[string]*tensor.Tensor{"tokens": in})
		if err != nil {
			return loadgen.OpenLoopStats{}, err
		}
	}
	// Warm up on the declared length only: the static config rejects the
	// others by design, and the dynamic configs' shape-plan caches and
	// bucket probes warm lazily — which is part of what the rows measure.
	if err := queries[0](); err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	if *offered == 0 {
		probe, err := loadgen.RunConcurrent(queries[0], loadgen.ConcurrentConfig{
			InFlight: 4, MinQueryCount: 24,
		})
		if err != nil {
			return loadgen.OpenLoopStats{}, err
		}
		// 0.8x the declared-length capacity: inside what the dynamic configs
		// can serve (the shorter sequences are cheaper), so the goodput gap
		// isolates shape coverage, not saturation.
		*offered = 0.8 * probe.QPSWithLoadgen
		opt.printf("closed-loop capacity probe (declared length): %.1f qps; offering %.1f qps to all rows\n",
			probe.QPSWithLoadgen, *offered)
	}
	mixed, err := loadgen.RoundRobin(queries...)
	if err != nil {
		return loadgen.OpenLoopStats{}, err
	}
	return loadgen.RunOpenLoop(mixed, loadgen.OpenLoopConfig{Rate: *offered, Duration: window})
}
