package bench

import (
	"context"
	"fmt"
	"time"

	"mnn"
	"mnn/internal/optimizer"
	"mnn/internal/tensor"
)

// Quant measures the end-to-end int8 execution path (Section 3.1 made a
// runtime precision): per network and thread count it calibrates the graph
// with synthetic samples, opens an fp32 and an int8 engine, and reports the
// steady-state InferInto latency of both, the int8 speed-up, and the
// max-abs deviation of the int8 outputs from fp32.
func Quant(opt Options) error {
	reps := 7
	networks := []string{"mobilenet-v1", "squeezenet-v1.1"}
	threadCounts := []int{1, 4}
	if opt.Quick {
		reps = 3
		networks = networks[:1]
		threadCounts = []int{4}
	}
	opt.printf("Quant — int8 execution path vs fp32 (host, steady-state InferInto)\n")
	opt.printf("%-28s %12s %12s %9s %12s\n", "case", "fp32 ms/op", "int8 ms/op", "speedup", "max-abs err")

	ctx := context.Background()
	for _, network := range networks {
		g, err := mnn.BuildNetwork(network)
		if err != nil {
			return err
		}
		if _, err := mnn.CalibrateSynthetic(g, 2, 1); err != nil {
			return err
		}
		plan, err := optimizer.PlanInt8(g, nil)
		if err != nil {
			return err
		}
		opt.printf("%s plan: %d int8 nodes, %d fp32, %d quant / %d dequant boundaries, %d calibrated\n",
			network, plan.Int8Nodes, plan.FP32Nodes, plan.QuantBoundaries, plan.DequantBoundaries, plan.Calibrated)

		for _, threads := range threadCounts {
			var latency [2]time.Duration
			var outputs [2]map[string]*mnn.Tensor
			for i, precision := range []mnn.Precision{mnn.PrecisionFP32, mnn.PrecisionInt8} {
				eng, err := mnn.Open(g, mnn.WithThreads(threads), mnn.WithPrecision(precision))
				if err != nil {
					return err
				}
				inputs := map[string]*mnn.Tensor{}
				for _, name := range eng.InputNames() {
					in := mnn.NewTensor(eng.InputShape(name)...)
					tensor.FillRandom(in, 42, 1)
					inputs[name] = in
				}
				out, err := eng.Infer(ctx, inputs)
				if err != nil {
					eng.Close()
					return err
				}
				outputs[i] = out
				latency[i] = medianOf(reps, func() {
					if err := eng.InferInto(ctx, inputs, out); err != nil {
						panic(err)
					}
				})
				eng.Close()
			}
			var maxErr float64
			for name, ref := range outputs[0] {
				if d := tensor.MaxAbsDiff(ref, outputs[1][name]); d > maxErr {
					maxErr = d
				}
			}
			speedup := float64(latency[0]) / float64(latency[1])
			kase := fmt.Sprintf("%s/t%d", network, threads)
			opt.printf("%-28s %12.2f %12.2f %8.2fx %12.2e\n",
				kase, ms(latency[0]), ms(latency[1]), speedup, maxErr)
			if opt.Recorder != nil {
				opt.Recorder.Record("quant", kase+"/fp32", float64(latency[0].Nanoseconds()), 0)
				opt.Recorder.RecordQuant("quant", kase+"/int8", float64(latency[1].Nanoseconds()), speedup, maxErr)
			}
		}
	}
	opt.printf("\n")
	return nil
}
