package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run clean in quick mode and emit its table header —
// this is the regression net for the harness behind cmd/mnnbench.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment end to end (~20s even in quick mode)")
	}
	headers := map[string]string{
		"table1":            "Table 1",
		"table2":            "Table 2",
		"table3":            "Table 3",
		"table4":            "Table 4",
		"table5":            "Table 5",
		"table6":            "Table 6",
		"table7":            "Table 7",
		"table8":            "Table 8",
		"figure7":           "Figure 7",
		"figure8":           "Figure 8",
		"figure9":           "Figure 9",
		"ablation-strassen": "Strassen",
		"ablation-layout":   "NC4HW4",
		"ablation-memory":   "memory",
		"ablation-tile":     "tile",
		"throughput":        "Throughput",
		"serving":           "Serving",
	}
	rec := &Recorder{}
	for _, exp := range Experiments {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(exp, Options{Quick: true, Out: &buf, Recorder: rec}); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), headers[exp]) {
				t.Errorf("output missing header %q:\n%s", headers[exp], buf.String())
			}
		})
	}
	// The instrumented experiments must have fed the -json recorder, and
	// the rows must serialize.
	if len(rec.Results()) == 0 {
		t.Error("no experiment recorded machine-readable results")
	}
	var out bytes.Buffer
	if err := rec.WriteJSON(&out); err != nil {
		t.Errorf("WriteJSON: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("table99", Options{Quick: true, Out: &bytes.Buffer{}}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestTable2ShapePreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sessions")
	}
	rows, err := Table2Rows(Options{Quick: true, Out: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The CPU row's effect is only a few percent (the paper's 6.5–7.6%) and
	// host wall-clock noise under `go test` can exceed it, so allow slack.
	if cpuRow := rows[0]; cpuRow.With > cpuRow.WithoutMs*1.15 {
		t.Errorf("%s: decoupled run (%.1f) should not be clearly slower than interleaved (%.1f)",
			cpuRow.Label, cpuRow.With, cpuRow.WithoutMs)
	}
	for _, r := range rows[1:] {
		if r.With >= r.WithoutMs {
			t.Errorf("%s: decoupling must help (w/ %.1f vs w/o %.1f)", r.Label, r.With, r.WithoutMs)
		}
	}
	// GPU rows must show the paper's dramatic (≥40%) improvement.
	for _, r := range rows[1:] {
		drop := (r.WithoutMs - r.With) / r.WithoutMs
		if drop < 0.40 {
			t.Errorf("%s: GPU drop %.0f%%, want ≥40%%", r.Label, drop*100)
		}
	}
}

func TestTable1OursTracksBest(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real conv kernels repeatedly (~5s)")
	}
	// For each Table 1 case, "ours" must be within 40% of the best fixed
	// scheme (the paper's claim: best or comparable-to-best).
	for _, c := range Table1Cases {
		best := 1e18
		for _, scheme := range []string{"sliding", "wino2", "wino6"} {
			d, err := Table1Measure(c, scheme, 1, 3)
			if err != nil {
				t.Fatal(err)
			}
			if m := ms(d); m < best {
				best = m
			}
		}
		d, err := Table1Measure(c, "ours", 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		ours := ms(d)
		if ours > best*1.4 {
			t.Errorf("case (%d,%d,%d,%d): ours %.1f ms vs best fixed %.1f ms",
				c.K, c.IC, c.OC, c.Size, ours, best)
		}
	}
}
