package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
	"mnn/serve"
	"mnn/serve/mesh"
)

// Mesh measures what replication buys under open-loop overload: the same
// model behind an mnnrouter fronting 1 replica vs 3 replicas, driven past
// single-replica capacity. With one replica the excess is shed as 429s;
// with three, bounded-load consistent hashing spills the hot model across
// the mesh, so goodput should scale while p99 of admitted requests stays
// bounded. Routing overhead shows up as the gap between the router capacity
// probe here and the direct-to-server probe in the overload experiment.
func Mesh(opt Options) error {
	shape := []int{1, 3, 128, 128}
	window := 6 * time.Second
	if opt.Quick {
		shape = []int{1, 3, 64, 64}
		window = 2 * time.Second
	}
	opt.printf("Mesh — 1 vs 3 replicas behind mnnrouter, mobilenet-v1 at %v, pool 2, queue 8 per replica, GOMAXPROCS=%d\n",
		shape, runtime.GOMAXPROCS(0))

	var capacity float64
	for _, replicas := range []int{1, 3} {
		routerBase, cleanup, err := bootMesh(replicas, shape)
		if err != nil {
			return err
		}
		in := tensor.New(shape...)
		tensor.FillRandom(in, 23, 1)
		query, err := loadgen.NewHTTPQuery(loadgen.HTTPConfig{
			BaseURL: routerBase,
			Model:   "mobilenet-v1",
		}, map[string]*tensor.Tensor{"data": in})
		if err == nil {
			err = query() // warm up: connections, lazy paths, batch shapes
		}
		if err != nil {
			cleanup()
			return err
		}

		if replicas == 1 {
			// Capacity probe through the router so the offered rates below are
			// multiples of what ONE replica can serve via this path.
			probe, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
				InFlight: 2, MinQueryCount: 16,
			})
			if err != nil {
				cleanup()
				return err
			}
			capacity = probe.QPSWithLoadgen
			opt.printf("single-replica capacity probe (via router): %.1f qps\n", capacity)
			opt.printf("%-12s %12s %12s %12s %12s %10s\n",
				"replicas", "issued", "goodput", "p99 (ms)", "shed rate", "failed")
		}

		st, err := loadgen.RunOpenLoop(query, loadgen.OpenLoopConfig{
			Rate:     capacity * 1.8,
			Duration: window,
		})
		cleanup()
		if err != nil {
			return err
		}
		if st.FirstError != nil {
			return fmt.Errorf("bench: mesh %d replicas: %w", replicas, st.FirstError)
		}
		opt.printf("%-12d %12d %12.1f %12.2f %10.1f%% %10d\n",
			replicas, st.Issued, st.GoodputQPS, ms(st.P99Latency), 100*st.ShedRate, st.Failed)
		if opt.Recorder != nil {
			opt.Recorder.RecordOverload("mesh",
				fmt.Sprintf("mobilenet-v1/replicas=%d/offered=1.8x", replicas),
				st.GoodputQPS, float64(st.P99Latency.Nanoseconds()), st.ShedRate)
		}
	}
	opt.printf("shape check: at 1.8x a single replica sheds heavily; three replicas absorb the\n")
	opt.printf("same offered rate with higher goodput and a lower shed rate — bounded-load\n")
	opt.printf("hashing spills the hot model instead of melting its home replica.\n\n")
	return nil
}

// bootMesh starts n in-process replicas each serving mobilenet-v1 behind an
// admission queue, plus one router fronting them, and returns the router's
// base URL with a teardown func.
func bootMesh(n int, shape []int) (string, func(), error) {
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	var bases []string
	for i := 0; i < n; i++ {
		reg := serve.NewRegistry()
		err := reg.Load("mobilenet-v1", serve.ModelConfig{
			Model: "mobilenet-v1",
			Options: []mnn.Option{
				mnn.WithPoolSize(2),
				mnn.WithInputShapes(map[string][]int{"data": shape}),
			},
			Admission: serve.AdmissionConfig{Queue: 8},
		})
		if err != nil {
			cleanup()
			return "", nil, err
		}
		srv := serve.NewServer(reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			reg.Close()
			cleanup()
			return "", nil, err
		}
		go srv.Serve(l)
		cleanups = append(cleanups, func() { srv.Shutdown(context.Background()) })
		bases = append(bases, "http://"+l.Addr().String())
	}

	rt, err := mesh.New(mesh.Config{Replicas: bases})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	hs := &http.Server{Handler: rt.Handler()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		cleanup()
		return "", nil, err
	}
	go hs.Serve(l)
	cleanups = append(cleanups, func() { hs.Close(); rt.Close() })
	return "http://" + l.Addr().String(), cleanup, nil
}
