package bench

import (
	"context"
	"fmt"
	"time"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/engines"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/loadgen"
	"mnn/internal/matmul"
	"mnn/internal/models"
	"mnn/internal/sched"
	"mnn/internal/session"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// ---------------------------------------------------------------- Table 1

// Table1Case is one convolution configuration of the paper's Table 1:
// (kernel, input channels, output channels, spatial size).
type Table1Case struct {
	K, IC, OC, Size int
	// Paper's milliseconds for sliding / WinoMin / WinoMax / ours.
	Paper [4]float64
}

// Table1Cases are the paper's three configurations.
var Table1Cases = []Table1Case{
	{2, 3, 16, 224, [4]float64{32.1, 42.2, 57.3, 32.7}},
	{2, 512, 512, 16, [4]float64{895.1, 287.7, 539.3, 286.0}},
	{3, 64, 64, 112, [4]float64{895.1, 389.8, 237.4, 236.4}},
}

// Table1Measure runs one scheme ("sliding", "wino2", "wino6", "ours") for a
// case on the host and returns the median latency.
func Table1Measure(c Table1Case, scheme string, threads, reps int) (time.Duration, error) {
	a := &graph.Conv2DAttrs{
		KernelH: c.K, KernelW: c.K, StrideH: 1, StrideW: 1,
		Group: 1, InputCount: c.IC, OutputCount: c.OC,
	}
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, c.IC, c.Size, c.Size)
	tensor.FillRandom(src, 7, 1)
	weight := tensor.NewRandom(8, 0.2, c.OC, c.IC, c.K, c.K)
	bias := tensor.NewRandom(9, 0.1, c.OC)
	oh, ow, err := graph.ConvOutputSize(c.Size, c.Size, a)
	if err != nil {
		return 0, err
	}
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, c.OC, oh, ow)

	pool := sched.New(threads)
	defer pool.Close()
	var run func()
	switch scheme {
	case "sliding":
		sc := kernels.PrepareSliding(weight, bias, a)
		run = func() { sc.Run(dst, src, pool) }
	case "wino2", "wino6":
		tile := 2
		if scheme == "wino6" {
			tile = 6
		}
		wc, err := kernels.PrepareWinograd(weight, bias, a, tile, tile)
		if err != nil {
			return 0, err
		}
		ws := make([]float32, wc.WorkspaceSize()*threads)
		run = func() { wc.Run(dst, src, pool, ws) }
	case "ours":
		dec := core.SelectConvScheme(a, src.Shape())
		switch dec.Scheme {
		case core.SchemeWinograd:
			wc, err := kernels.PrepareWinograd(weight, bias, a, dec.TileH, dec.TileW)
			if err != nil {
				return 0, err
			}
			ws := make([]float32, wc.WorkspaceSize()*threads)
			run = func() { wc.Run(dst, src, pool, ws) }
		default:
			sc := kernels.PrepareSliding(weight, bias, a)
			run = func() { sc.Run(dst, src, pool) }
		}
	default:
		return 0, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	run() // warm up
	return medianOf(reps, run), nil
}

// Table1 reproduces the computation-scheme comparison (host-measured).
func Table1(opt Options) error {
	reps := 5
	if opt.Quick {
		reps = 1
	}
	opt.printf("Table 1 — computation scheme selection (host ms; paper ms in parens)\n")
	opt.printf("%-22s %12s %12s %12s %12s\n", "conv (k,ic,oc,size)", "Sliding", "WinoMin", "WinoMax", "Ours")
	for _, c := range Table1Cases {
		opt.printf("(%d,%d,%d,%d)", c.K, c.IC, c.OC, c.Size)
		vals := make([]float64, 4)
		for i, scheme := range []string{"sliding", "wino2", "wino6", "ours"} {
			d, err := Table1Measure(c, scheme, 1, reps)
			if err != nil {
				return err
			}
			vals[i] = ms(d)
			opt.record("table1", fmt.Sprintf("conv(%d,%d,%d,%d)/%s", c.K, c.IC, c.OC, c.Size, scheme),
				float64(d.Nanoseconds()), 0)
		}
		pad := 22 - len(fmt.Sprintf("(%d,%d,%d,%d)", c.K, c.IC, c.OC, c.Size))
		opt.printf("%*s", pad, "")
		for i, v := range vals {
			opt.printf(" %6.1f(%5.1f)", v, c.Paper[i])
		}
		opt.printf("\n")
	}
	opt.printf("shape check: 'Ours' should track the best fixed scheme per column.\n\n")
	return nil
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one measurement of the preparation–execution decoupling.
type Table2Row struct {
	Label           string
	WithoutMs, With float64
	PaperWithout    float64
	PaperWith       float64
}

// Table2Rows measures the decoupling effect. CPU rows are host wall-clock
// (real allocation/packing interleaved vs decoupled); GPU rows are
// simulated Vulkan sessions on the paper's devices, where command-buffer
// encoding either happens per run or at pre-inference.
func Table2Rows(opt Options) ([]Table2Row, error) {
	g := models.MobileNetV1()
	reps := 3
	if opt.Quick {
		reps = 1
	}

	// --- CPU rows: host measured.
	mk := func(noPrep bool) (*session.Session, error) {
		return session.New(g, session.Config{
			Backends:      []backend.Backend{cpu.New(cpu.Config{Threads: 4})},
			NoPreparation: noPrep,
		})
	}
	prepared, err := mk(false)
	if err != nil {
		return nil, err
	}
	fillSessionInput(prepared, g.InputNames[0], 3)
	if err := prepared.Run(context.Background()); err != nil {
		return nil, err
	}
	withMs := ms(medianOf(reps, func() { _ = prepared.Run(context.Background()) }))

	unprepared, err := mk(true)
	if err != nil {
		return nil, err
	}
	if err := unprepared.Run(context.Background()); err != nil {
		return nil, err
	}
	withoutMs := ms(medianOf(reps, func() { _ = unprepared.Run(context.Background()) }))

	rows := []Table2Row{{Label: "CPU 4-thread (host)", WithoutMs: withoutMs, With: withMs,
		PaperWithout: 30.9, PaperWith: 28.9}}

	// --- GPU rows: simulated Vulkan on MI6 and P10.
	for _, tc := range []struct {
		dev          *device.Profile
		paperWithout float64
		paperWith    float64
	}{
		{device.MI6, 63.6, 15.8},
		{device.P10, 41.0, 20.7},
	} {
		gpuMs := func(decoupled bool) (float64, error) {
			clock := simclock.New()
			cpuB := cpu.New(cpu.Config{Threads: 4, Device: tc.dev, Clock: clock})
			gpuB, err := gpusim.New(gpusim.Config{Kind: backend.KindVulkan, Device: tc.dev,
				Clock: clock, DecoupledEncode: decoupled, ComputeThreads: 2})
			if err != nil {
				return 0, err
			}
			s, err := session.New(g, session.Config{Backends: []backend.Backend{cpuB, gpuB}})
			if err != nil {
				return 0, err
			}
			fillSessionInput(s, g.InputNames[0], 3)
			clock.Reset() // exclude pre-inference charges
			if err := s.Run(context.Background()); err != nil {
				return 0, err
			}
			return clock.TotalMs(), nil
		}
		w, err := gpuMs(true)
		if err != nil {
			return nil, err
		}
		wo, err := gpuMs(false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Label: tc.dev.Name + " GPU Vulkan (sim)",
			WithoutMs: wo, With: w, PaperWithout: tc.paperWithout, PaperWith: tc.paperWith})
	}
	return rows, nil
}

// Table2 reproduces the preparation–execution decoupling experiment.
func Table2(opt Options) error {
	rows, err := Table2Rows(opt)
	if err != nil {
		return err
	}
	opt.printf("Table 2 — preparation–execution decoupling (MobileNet-v1)\n")
	opt.printf("%-26s %14s %14s %9s %22s\n", "setting", "w/o (ms)", "w/ (ms)", "drop", "paper w/o→w/ (ms)")
	for _, r := range rows {
		drop := 0.0
		if r.WithoutMs > 0 {
			drop = (r.WithoutMs - r.With) / r.WithoutMs * 100
		}
		opt.printf("%-26s %14.1f %14.1f %8.1f%% %12.1f → %6.1f\n",
			r.Label, r.WithoutMs, r.With, drop, r.PaperWithout, r.PaperWith)
	}
	opt.printf("shape check: CPU drops a few percent, GPU drops 50–75%%.\n\n")
	return nil
}

func fillSessionInput(s *session.Session, name string, seed uint64) {
	in := s.Input(name)
	tmp := tensor.New(in.Shape()...)
	tensor.FillRandom(tmp, seed, 1)
	in.CopyFrom(tmp)
}

// ---------------------------------------------------------------- Table 3

// Table3Case is one matmul size of the paper's Table 3.
type Table3Case struct {
	M, K, N                    int
	PaperDirect, PaperStrassen float64
}

// Table3Cases are the published sizes ((a,b,c) = [a,b]×[b,c]).
var Table3Cases = []Table3Case{
	{256, 256, 256, 23, 23},
	{512, 512, 512, 191, 176},
	{512, 512, 1024, 388, 359},
	{1024, 1024, 1024, 1501, 1299},
}

// Table3Measure times direct vs Strassen on the host.
func Table3Measure(c Table3Case, reps int) (direct, strassen time.Duration) {
	a := tensor.NewRandom(1, 1, c.M, c.K).Data()
	b := tensor.NewRandom(2, 1, c.K, c.N).Data()
	dst := make([]float32, c.M*c.N)
	matmul.Mul(dst, a, b, c.M, c.K, c.N) // warm
	direct = medianOf(reps, func() { matmul.Mul(dst, a, b, c.M, c.K, c.N) })
	matmul.MulStrassen(dst, a, b, c.M, c.K, c.N)
	strassen = medianOf(reps, func() { matmul.MulStrassen(dst, a, b, c.M, c.K, c.N) })
	return direct, strassen
}

// Table3 reproduces the Strassen matrix-multiplication comparison.
func Table3(opt Options) error {
	reps := 3
	cases := Table3Cases
	if opt.Quick {
		reps = 1
		cases = cases[:2]
	}
	opt.printf("Table 3 — Strassen vs direct matmul (host ms; paper ms in parens)\n")
	opt.printf("%-18s %16s %18s %8s\n", "size (m,k,n)", "w/o Strassen", "w/ Strassen", "gain")
	for _, c := range cases {
		d, s := Table3Measure(c, reps)
		opt.record("table3", fmt.Sprintf("matmul(%d,%d,%d)/direct", c.M, c.K, c.N), float64(d.Nanoseconds()), 0)
		opt.record("table3", fmt.Sprintf("matmul(%d,%d,%d)/strassen", c.M, c.K, c.N), float64(s.Nanoseconds()), 0)
		gain := (1 - float64(s)/float64(d)) * 100
		opt.printf("(%d,%d,%d)%*s %8.1f(%6.1f) %8.1f(%6.1f) %7.1f%%\n",
			c.M, c.K, c.N, 18-len(fmt.Sprintf("(%d,%d,%d)", c.M, c.K, c.N)), "",
			ms(d), c.PaperDirect, ms(s), c.PaperStrassen, gain)
	}
	opt.printf("shape check: ≈parity at 256, growing gains at 512–1024.\n\n")
	return nil
}

// ---------------------------------------------------------------- Table 4

// Table4 prints the operator coverage census per backend next to the
// paper's counts (MNN row of the paper's Table 4).
func Table4(opt Options) error {
	total := graph.NumOpTypes()
	count := func(kind backend.Kind) int {
		c := 0
		for op, ok := range gpusim.DefaultSupported(kind) {
			_ = op
			if ok {
				c++
			}
		}
		return c
	}
	opt.printf("Table 4 — backend operator coverage (this repo's op set has %d kinds; paper counts its 94-op set)\n", total)
	opt.printf("%-8s %10s %12s\n", "backend", "supported", "paper(MNN)")
	opt.printf("%-8s %10d %12d\n", "CPU", total, 94)
	opt.printf("%-8s %10d %12d\n", "Metal", count(backend.KindMetal), 55)
	opt.printf("%-8s %10d %12d\n", "Vulkan", count(backend.KindVulkan), 35)
	opt.printf("%-8s %10d %12d\n", "OpenCL", count(backend.KindOpenCL), 33)
	opt.printf("%-8s %10d %12d\n", "OpenGL", count(backend.KindOpenGL), 15)
	opt.printf("shape check: CPU > Metal > Vulkan ≥ OpenCL > OpenGL.\n\n")
	return nil
}

// ---------------------------------------------------------------- Table 5

// Table5 reproduces the TVM auto-tuning/compiling cost model next to MNN's
// on-device pre-inference cost (host measured).
func Table5(opt Options) error {
	opt.printf("Table 5 — TVM deployment cost for ResNet-18 (model; paper s in parens)\n")
	opt.printf("%-8s %18s %16s\n", "#Trial", "auto-tune (s)", "compile (s)")
	for _, row := range []struct {
		trials               int
		paperTune, paperComp float64
	}{
		{1, 355, 40}, {10, 1477, 41}, {30, 4583, 41},
	} {
		c := engines.TVMTuningModel(row.trials)
		opt.printf("%-8d %10.0f(%5.0f) %9.0f(%4.0f)\n",
			row.trials, c.AutoTuneSeconds, row.paperTune, c.CompileSeconds, row.paperComp)
	}
	// MNN's counterpart: pre-inference time, measured for real.
	g := models.ResNet18()
	t0 := time.Now()
	s, err := session.New(g, session.Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 4})}})
	if err != nil {
		return err
	}
	prep := time.Since(t0)
	_ = s
	opt.printf("MNN pre-inference (runtime search, host): %.1f ms — vs minutes per device for TVM.\n", ms(prep))
	opt.printf("fleet cost at 10 trials × 500 device types: %.0f hours of tuning.\n\n",
		engines.TVMFleetCost(10, 500)/3600)
	return nil
}

// ---------------------------------------------------------------- Table 6

// Table6Devices pairs the production devices with the paper's average
// inference times.
var Table6Devices = []struct {
	Dev     *device.Profile
	PaperMs float64
}{
	{device.EMLAL00, 87.9},
	{device.PBEM00, 84.5},
	{device.PACM00, 92.0},
	{device.COLAL10, 95.1},
	{device.OPPOR11, 91.4},
}

// Table6 reproduces the online-case-study device table with the simulated
// detector workload.
func Table6(opt Options) error {
	g := models.CommoditySearchDetector()
	opt.printf("Table 6 — production case study: main-object detector AIT (sim ms; paper ms in parens)\n")
	opt.printf("%-10s %-16s %-16s %12s\n", "device", "CPU", "GPU", "AIT")
	var minMs, maxMs float64
	for i, row := range Table6Devices {
		r, err := engines.Simulate(engines.MNN, g, row.Dev, engines.Mode{Threads: 4})
		if err != nil {
			return err
		}
		opt.printf("%-10s %-16s %-16s %6.1f(%5.1f)\n", row.Dev.Name, row.Dev.SoC, row.Dev.GPU, r.SimMs, row.PaperMs)
		if i == 0 || r.SimMs < minMs {
			minMs = r.SimMs
		}
		if r.SimMs > maxMs {
			maxMs = r.SimMs
		}
	}
	opt.printf("shape check: stable across the fleet — spread %.2fx (paper %.2fx).\n\n",
		maxMs/minMs, 95.1/84.5)
	return nil
}

// ---------------------------------------------------------------- Table 7

// Table7 runs the MLPerf-style single-stream benchmark on the host
// (MobileNet-v2, 4 threads), the Appendix A experiment.
func Table7(opt Options) error {
	g := models.MobileNetV2()
	s, err := session.New(g, session.Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 4})}})
	if err != nil {
		return err
	}
	fillSessionInput(s, "data", 5)
	if err := s.Run(context.Background()); err != nil {
		return err
	}
	minQ := 64
	if opt.Quick {
		minQ = 8
	}
	st, err := loadgen.RunSingleStream(func() error { return s.Run(context.Background()) },
		loadgen.Config{MinQueryCount: minQ})
	if err != nil {
		return err
	}
	opt.record("table7", "mobilenet-v2/single-stream", float64(st.MeanLatency.Nanoseconds()), st.QPSWithLoadgen)
	opt.printf("Table 7 — MLPerf single-stream, MobileNet-v2, 4 CPU threads (host; paper on Pixel 3)\n")
	opt.printf("%-34s %14s %14s\n", "item", "this repo", "paper")
	opt.printf("%-34s %14d %14s\n", "query count", st.QueryCount, "1024–5000")
	opt.printf("%-34s %14.2f %14.2f\n", "QPS w/ loadgen overhead", st.QPSWithLoadgen, 64.22)
	opt.printf("%-34s %14.2f %14.2f\n", "QPS w/o loadgen overhead", st.QPSWithoutLoadgen, 64.27)
	opt.printf("%-34s %14.2f %14.2f\n", "min latency (ms)", ms(st.MinLatency), 13.21)
	opt.printf("%-34s %14.2f %14.2f\n", "max latency (ms)", ms(st.MaxLatency), 36.02)
	opt.printf("%-34s %14.2f %14.2f\n", "mean latency (ms)", ms(st.MeanLatency), 15.56)
	opt.printf("%-34s %14.2f %14.2f\n", "p50 latency (ms)", ms(st.P50Latency), 15.60)
	opt.printf("%-34s %14.2f %14.2f\n", "p90 latency (ms)", ms(st.P90Latency), 16.41)
	opt.printf("shape check: QPS w/ ≈ QPS w/o (loadgen overhead negligible); p90/p50 close.\n\n")
	return nil
}

// ---------------------------------------------------------------- Table 8

// Table8 reproduces the Pixel-phone CPU comparison (Inception-v3 float,
// TF-Lite vs MNN, simulated).
func Table8(opt Options) error {
	g := models.InceptionV3()
	paper := map[string][2]float64{ // device/threads → tflite, mnn
		"Pixel 2/1": {974, 664}, "Pixel 2/4": {310, 214},
		"Pixel 3/1": {873, 593}, "Pixel 3/4": {239, 160},
	}
	opt.printf("Table 8 — Inception-v3 on Pixel CPUs (sim ms; paper ms in parens)\n")
	opt.printf("%-10s %9s %18s %18s\n", "phone", "#threads", "TF-Lite", "MNN")
	for _, dev := range []*device.Profile{device.Pixel2, device.Pixel3} {
		for _, threads := range []int{1, 4} {
			tfl, err := engines.Simulate(engines.TFLite, g, dev, engines.Mode{Threads: threads})
			if err != nil {
				return err
			}
			mnn, err := engines.Simulate(engines.MNN, g, dev, engines.Mode{Threads: threads})
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s/%d", dev.Name, threads)
			p := paper[key]
			opt.printf("%-10s %9d %10.0f(%5.0f) %10.0f(%5.0f)\n",
				dev.Name, threads, tfl.SimMs, p[0], mnn.SimMs, p[1])
		}
	}
	opt.printf("shape check: MNN < TF-Lite at every thread count, both scale with threads.\n\n")
	return nil
}
