// Package gpusim implements software GPU backends behind the Figure 5
// interface: Metal, OpenCL, OpenGL and Vulkan variants that execute real
// arithmetic (via the CPU kernels, so results stay bit-checkable) while a
// simulated clock charges GPU-side costs per Equation 5 and Appendix C —
// compute at the device's GPU FLOPS, t_schedule per dispatch, and a
// command-encoding cost that the preparation–execution decoupling of
// Section 3.2 moves out of the inference loop (Table 2's experiment).
//
// Mobile GPUs and their drivers are unavailable in this reproduction; see
// DESIGN.md substitutions #2 and #3 for why this preserves the paper's
// measured behaviour.
package gpusim

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// EncodeCostMs is the simulated cost of building one operator's command
// buffer / pipeline descriptor. Calibrated so that a ~95-operator MobileNet
// loses ≈45 ms when encoding happens inside the inference loop — the
// magnitude Table 2 reports on the MI6's Vulkan backend.
var EncodeCostMs = map[backend.Kind]float64{
	backend.KindVulkan: 0.50,
	backend.KindOpenCL: 0.45,
	backend.KindOpenGL: 0.45,
	backend.KindMetal:  0.30,
}

// TransferBytesPerMs is the simulated host↔device copy bandwidth
// (10 GB/s ⇒ 1e7 bytes per ms).
const TransferBytesPerMs = 1e7

// Config parameterizes one simulated GPU backend.
type Config struct {
	// Kind selects the API personality (Metal/OpenCL/OpenGL/Vulkan).
	Kind backend.Kind
	// Device supplies GPU FLOPS (Appendix C). Required.
	Device *device.Profile
	// Clock accumulates simulated time; nil disables simulation.
	Clock *simclock.Clock
	// Efficiency adjusts simulated compute cost per op; nil means 1.0.
	Efficiency cpu.EfficiencyModel
	// ForceScheme overrides pre-inference conv scheme selection in the
	// internal compute backend (tuner decisions apply to GPU-assigned
	// convolutions too); nil keeps the cost-model choice.
	ForceScheme func(n *graph.Node, dec core.ConvDecision) core.ConvDecision
	// Supported restricts the op set (Table 4: GPU backends cover fewer
	// operators than CPU). Nil uses the default set for Kind.
	Supported map[graph.OpType]bool
	// DecoupledEncode moves command encoding into OnCreate (pre-inference),
	// the MNN behaviour. When false, every Run re-encodes — the "w/o"
	// row of Table 2.
	DecoupledEncode bool
	// ComputeThreads is the host thread count used for the real arithmetic
	// (does not affect simulated time).
	ComputeThreads int
}

// DefaultSupported returns the op coverage of each API personality, shaped
// after the relative operator counts of Table 4 (Metal 55 > Vulkan 35 >
// OpenCL 33 > OpenGL 15 of MNN's 94 CPU ops).
func DefaultSupported(kind backend.Kind) map[graph.OpType]bool {
	all := func(ops ...graph.OpType) map[graph.OpType]bool {
		m := map[graph.OpType]bool{}
		for _, o := range ops {
			m[o] = true
		}
		return m
	}
	switch kind {
	case backend.KindMetal:
		// Everything except transposed convolution.
		m := all(graph.AllOpTypes()...)
		delete(m, graph.OpDeconv2D)
		return m
	case backend.KindVulkan:
		m := all(graph.AllOpTypes()...)
		delete(m, graph.OpDeconv2D)
		delete(m, graph.OpInnerProduct)
		delete(m, graph.OpTanh)
		return m
	case backend.KindOpenCL:
		m := all(graph.AllOpTypes()...)
		delete(m, graph.OpDeconv2D)
		delete(m, graph.OpInnerProduct)
		delete(m, graph.OpTanh)
		delete(m, graph.OpSigmoid)
		return m
	case backend.KindOpenGL:
		return all(graph.OpInput, graph.OpConv2D, graph.OpPool, graph.OpReLU,
			graph.OpReLU6, graph.OpConcat, graph.OpEltwise, graph.OpSoftmax,
			graph.OpBatchNorm, graph.OpScale)
	default:
		return all(graph.AllOpTypes()...)
	}
}

// Backend is a simulated GPU.
type Backend struct {
	*backend.BufferTracker
	cfg     Config
	compute *cpu.Backend // real arithmetic provider (unclocked)
	// pipelines counts encoded command buffers, for tests/diagnostics.
	pipelines int
	inFlight  int // dispatches recorded since OnExecuteBegin
}

// New creates a simulated GPU backend.
func New(cfg Config) (*Backend, error) {
	switch cfg.Kind {
	case backend.KindMetal, backend.KindOpenCL, backend.KindOpenGL, backend.KindVulkan:
	default:
		return nil, fmt.Errorf("gpusim: kind %v is not a GPU API", cfg.Kind)
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("gpusim: device profile required")
	}
	if cfg.Supported == nil {
		cfg.Supported = DefaultSupported(cfg.Kind)
	}
	if cfg.ComputeThreads < 1 {
		cfg.ComputeThreads = 1
	}
	return &Backend{
		BufferTracker: backend.NewBufferTracker(),
		cfg:           cfg,
		compute:       cpu.New(cpu.Config{Threads: cfg.ComputeThreads, ForceScheme: cfg.ForceScheme}),
	}, nil
}

// Close releases the internal compute backend's worker pool.
func (b *Backend) Close() error { return b.compute.Close() }

// Kind implements backend.Backend.
func (b *Backend) Kind() backend.Kind { return b.cfg.Kind }

// Name implements backend.Backend.
func (b *Backend) Name() string { return b.cfg.Kind.String() }

// FLOPS is the Appendix C GPU capability.
func (b *Backend) FLOPS() float64 { return b.cfg.Device.GPUFLOPS() }

// ScheduleOverheadMs is the Appendix C t_schedule for this API.
func (b *Backend) ScheduleOverheadMs() float64 { return b.api().ScheduleOverheadMs() }

func (b *Backend) api() device.GPUAPI {
	switch b.cfg.Kind {
	case backend.KindMetal:
		return device.APIMetal
	case backend.KindOpenCL:
		return device.APIOpenCL
	case backend.KindOpenGL:
		return device.APIOpenGL
	case backend.KindVulkan:
		return device.APIVulkan
	default:
		return device.APINone
	}
}

// PreferredLayout mirrors the CPU image layout (the simulated device memory
// is host memory).
func (b *Backend) PreferredLayout(rank int) tensor.Layout {
	if rank == 4 {
		return tensor.NC4HW4
	}
	return tensor.NCHW
}

// Supports implements backend.Backend per the configured op coverage.
func (b *Backend) Supports(n *graph.Node) bool { return b.cfg.Supported[n.Op] }

// ConvSchemeFor implements core.ConvSchemer by delegating to the internal
// compute backend, which runs the real arithmetic for this simulated GPU.
func (b *Backend) ConvSchemeFor(n *graph.Node, inShape []int) core.ConvDecision {
	return b.compute.ConvSchemeFor(n, inShape)
}

// OnExecuteBegin opens a fresh command stream for one inference.
func (b *Backend) OnExecuteBegin() { b.inFlight = 0 }

// OnExecuteEnd submits the stream: one submission overhead per inference.
func (b *Backend) OnExecuteEnd() {
	if b.inFlight > 0 && b.cfg.Clock != nil {
		b.cfg.Clock.Charge("submit", b.ScheduleOverheadMs())
	}
	b.inFlight = 0
}

// OnCopyBuffer models a host↔device (or device-internal) transfer.
func (b *Backend) OnCopyBuffer(src, dst *tensor.Tensor) error {
	if !tensor.EqualShape(src.Shape(), dst.Shape()) {
		return fmt.Errorf("gpusim: copy shape mismatch %v vs %v", src.Shape(), dst.Shape())
	}
	dst.CopyFrom(src)
	if b.cfg.Clock != nil {
		bytes := float64(src.NumElements() * 4)
		b.cfg.Clock.Charge("transfer", bytes/TransferBytesPerMs+b.ScheduleOverheadMs())
	}
	return nil
}

// commandBuffer is the encoded dispatch for one operator.
type commandBuffer struct {
	node    *graph.Node
	kernel  backend.Execution // real arithmetic
	costMs  float64           // simulated compute cost (Eq. 5 GPU branch)
	encoded bool
}

// OnCreate prepares the operator: the real compute kernel is built, and —
// when DecoupledEncode is on — the command buffer is encoded here, during
// pre-inference. Encoding during inference is what Table 2's "w/o" rows pay.
func (b *Backend) OnCreate(n *graph.Node, inputs, outputs []*tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	if !b.Supports(n) {
		return nil, fmt.Errorf("gpusim: %s does not support op %v", b.Name(), n.Op)
	}
	kernel, err := b.compute.OnCreate(n, inputs, outputs, weights)
	if err != nil {
		return nil, err
	}
	// Simulated compute cost: the GPU runs direct kernels — MUL is the
	// direct count (graph-level), divided by the efficiency model.
	var muls int64
	// Shape info is implicit in the bound tensors.
	shapes := graph.ShapeMap{}
	for i, t := range outputs {
		if i < len(n.Outputs) {
			shapes[n.Outputs[i]] = t.Shape()
		}
	}
	for i, t := range inputs {
		if i < len(n.Inputs) {
			shapes[n.Inputs[i]] = t.Shape()
		}
	}
	muls = graph.MULCount(n, shapes)
	eff := 1.0
	if b.cfg.Efficiency != nil {
		eff = b.cfg.Efficiency(n, "gpu")
	}
	cb := &commandBuffer{
		node:   n,
		kernel: kernel,
		costMs: simclock.GPUCostMs(muls, b.FLOPS(), b.ScheduleOverheadMs(), eff),
	}
	if b.cfg.DecoupledEncode {
		b.encode(cb) // pre-inference encoding (not charged to inference)
	}
	return execBound{b: b, cb: cb}, nil
}

// encode builds the command descriptor. The work itself is bookkeeping; its
// latency on a phone driver is the EncodeCostMs constant.
func (b *Backend) encode(cb *commandBuffer) {
	cb.encoded = true
	b.pipelines++
}

type execBound struct {
	b  *Backend
	cb *commandBuffer
}

// Run dispatches the command buffer: re-encoding first if the session did
// not decouple preparation from execution.
func (e execBound) Run() error {
	b := e.b
	if !e.cb.encoded || !b.cfg.DecoupledEncode {
		b.encode(e.cb)
		if b.cfg.Clock != nil {
			b.cfg.Clock.Charge("encode", EncodeCostMs[b.cfg.Kind])
		}
	}
	if err := e.cb.kernel.Run(); err != nil {
		return err
	}
	if b.cfg.Clock != nil {
		b.cfg.Clock.Charge(e.cb.node.Op.String(), e.cb.costMs)
	}
	b.inFlight++
	return nil
}

// Pipelines reports how many command buffers have been encoded (tests).
func (b *Backend) Pipelines() int { return b.pipelines }
