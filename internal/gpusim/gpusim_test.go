package gpusim

import (
	"testing"

	"mnn/internal/backend"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

func convNode() (*graph.Node, []*tensor.Tensor, []*tensor.Tensor, backend.WeightSource) {
	n := &graph.Node{Name: "conv", Op: graph.OpConv2D,
		Inputs: []string{"in"}, Outputs: []string{"out"},
		WeightNames: []string{"w", "b"},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 1, InputCount: 8, OutputCount: 8}}
	in := tensor.NewWithLayout(tensor.NC4HW4, 1, 8, 8, 8)
	tensor.FillRandom(in, 1, 1)
	out := tensor.NewWithLayout(tensor.NC4HW4, 1, 8, 8, 8)
	w := tensor.NewRandom(2, 0.2, 8, 8, 3, 3)
	b := tensor.NewRandom(3, 0.1, 8)
	weights := func(name string) *tensor.Tensor {
		if name == "w" {
			return w
		}
		return b
	}
	return n, []*tensor.Tensor{in}, []*tensor.Tensor{out}, weights
}

func TestGPUSimComputesCorrectly(t *testing.T) {
	n, ins, outs, weights := convNode()
	clock := simclock.New()
	b, err := New(Config{Kind: backend.KindVulkan, Device: device.MI6, Clock: clock,
		DecoupledEncode: true, ComputeThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := b.OnCreate(n, ins, outs, weights)
	if err != nil {
		t.Fatal(err)
	}
	b.OnExecuteBegin()
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	b.OnExecuteEnd()
	// Results must match the unclocked CPU path bit-for-bit (same kernels).
	var sum float64
	for _, v := range outs[0].Data() {
		sum += float64(v)
	}
	if sum == 0 {
		t.Fatal("no output computed")
	}
	if clock.TotalMs() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestDecoupledEncodeMovesCostOutOfRun(t *testing.T) {
	run := func(decoupled bool) float64 {
		n, ins, outs, weights := convNode()
		clock := simclock.New()
		b, err := New(Config{Kind: backend.KindVulkan, Device: device.MI6, Clock: clock,
			DecoupledEncode: decoupled, ComputeThreads: 1})
		if err != nil {
			t.Fatal(err)
		}
		exec, err := b.OnCreate(n, ins, outs, weights)
		if err != nil {
			t.Fatal(err)
		}
		clock.Reset() // measure inference only
		b.OnExecuteBegin()
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		b.OnExecuteEnd()
		return clock.TotalMs()
	}
	with := run(true)
	without := run(false)
	if without <= with {
		t.Fatalf("per-run encoding (%.3f ms) must cost more than decoupled (%.3f ms)", without, with)
	}
	if diff := without - with; diff < EncodeCostMs[backend.KindVulkan]*0.9 {
		t.Errorf("encode cost not visible: diff %.3f", diff)
	}
}

func TestPipelineEncodedOnceWhenDecoupled(t *testing.T) {
	n, ins, outs, weights := convNode()
	b, _ := New(Config{Kind: backend.KindVulkan, Device: device.MI6, DecoupledEncode: true, ComputeThreads: 1})
	exec, err := b.OnCreate(n, ins, outs, weights)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pipelines() != 1 {
		t.Fatalf("pipelines after create: %d", b.Pipelines())
	}
	for i := 0; i < 3; i++ {
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pipelines() != 1 {
		t.Fatalf("decoupled mode must not re-encode: %d", b.Pipelines())
	}
}

func TestOpCoverageShapedLikeTable4(t *testing.T) {
	metal := len(DefaultSupported(backend.KindMetal))
	vulkan := len(DefaultSupported(backend.KindVulkan))
	opencl := len(DefaultSupported(backend.KindOpenCL))
	opengl := len(DefaultSupported(backend.KindOpenGL))
	// Table 4 ordering: Metal 55 > Vulkan 35 > OpenCL 33 > OpenGL 15.
	if !(metal > vulkan && vulkan > opencl && opencl > opengl) {
		t.Fatalf("coverage ordering wrong: metal=%d vulkan=%d opencl=%d opengl=%d",
			metal, vulkan, opencl, opengl)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Kind: backend.KindCPU, Device: device.MI6}); err == nil {
		t.Error("CPU kind must be rejected")
	}
	if _, err := New(Config{Kind: backend.KindVulkan}); err == nil {
		t.Error("missing device must be rejected")
	}
}

func TestUnsupportedOpRejected(t *testing.T) {
	b, _ := New(Config{Kind: backend.KindOpenGL, Device: device.MI6, ComputeThreads: 1})
	n := &graph.Node{Name: "fc", Op: graph.OpInnerProduct,
		Inputs: []string{"in"}, Outputs: []string{"out"},
		Attrs: &graph.InnerProductAttrs{OutputCount: 4}}
	if b.Supports(n) {
		t.Fatal("OpenGL must not support InnerProduct")
	}
	if _, err := b.OnCreate(n, nil, nil, nil); err == nil {
		t.Fatal("OnCreate must reject unsupported op")
	}
}

func TestTransferChargesClock(t *testing.T) {
	clock := simclock.New()
	b, _ := New(Config{Kind: backend.KindOpenCL, Device: device.MI6, Clock: clock, ComputeThreads: 1})
	src := tensor.NewRandom(5, 1, 1, 16, 32, 32)
	dst := tensor.New(1, 16, 32, 32)
	if err := b.OnCopyBuffer(src, dst); err != nil {
		t.Fatal(err)
	}
	if clock.TotalMs() <= 0 {
		t.Fatal("transfer must cost simulated time")
	}
	if tensor.MaxAbsDiff(src, dst) != 0 {
		t.Fatal("transfer corrupted data")
	}
}

func TestFLOPSFromAppendix(t *testing.T) {
	b, _ := New(Config{Kind: backend.KindVulkan, Device: device.MI6, ComputeThreads: 1})
	if b.FLOPS() != 42.74e9 {
		t.Fatalf("MI6 GPU FLOPS = %g", b.FLOPS())
	}
	if b.ScheduleOverheadMs() != 0.01 {
		t.Fatalf("Vulkan t_schedule = %v", b.ScheduleOverheadMs())
	}
}
