package cpu

import (
	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/tensor"
)

// Quantized execution creation: when Config.Int8 is set (and the
// optimizer.PlanInt8 partition, if provided, includes the node), eligible
// convolutions and fully-connected layers bind the prepared int8 kernels.
// Weight quantization happens here, during pre-inference; the kernels draw
// their int8 panels and int32 accumulators from the same planner arena as
// every other workspace, so the int8 hot path is as allocation-free as the
// fp32 one.

// createQuantConv binds the int8 convolution for a node whose decision
// passed core.Int8ConvSupported: the depthwise kernel for depthwise convs,
// the quantize+im2col int8 GEMM for everything else.
func (b *Backend) createQuantConv(n *graph.Node, in, out *tensor.Tensor, weight, bias *tensor.Tensor, dec core.ConvDecision) (backend.Execution, error) {
	a := n.Attrs.(*graph.Conv2DAttrs)
	pool := b.pool
	inScale := b.actScale(n)
	if a.IsDepthwise() {
		dc := kernels.PrepareQuantDepthwise(weight, bias, a, inScale)
		ws := b.workspace(n.Name, kernels.QuantDepthwiseWorkspaceFloats(in.Height(), in.Width(), pool.Lanes()))
		muls := dec.EffMULs
		return execFunc(func() error {
			dc.Run(out, in, pool, ws)
			b.charge("Conv2D", muls, n, "int8-depthwise")
			return nil
		}), nil
	}
	qc := kernels.PrepareQuantConv(weight, bias, a, inScale)
	qc.Unsigned = b.cfg.NonNegActs[n.Inputs[0]]
	ws := b.workspace(n.Name, qc.WorkspaceSize(out.Height(), out.Width()))
	muls := dec.DirectMULs // the int8 GEMM computes every multiply
	return execFunc(func() error {
		qc.Run(out, in, pool, ws)
		b.charge("Conv2D", muls, n, "int8-gemm")
		return nil
	}), nil
}

// createQuantInnerProduct binds the int8 fully-connected kernel, staging
// NC4HW4 inputs through the same planner-backed flat buffer as the fp32
// path.
func (b *Backend) createQuantInnerProduct(n *graph.Node, in, out *tensor.Tensor, w2, bias *tensor.Tensor, a *graph.InnerProductAttrs) (backend.Execution, error) {
	pool := b.pool
	batch := in.Dim(0)
	features := in.NumElements() / batch
	ip := kernels.PrepareQuantInnerProduct(w2, bias, a, b.actScale(n))
	ip.Unsigned = b.cfg.NonNegActs[n.Inputs[0]]
	muls := int64(batch) * int64(features) * int64(a.OutputCount)
	quantWS := kernels.QuantInnerProductWorkspaceFloats(batch, features, a.OutputCount)
	if in.Layout() == tensor.NC4HW4 {
		buf := b.workspace(n.Name, batch*features+quantWS)
		flat, buf := carveTensor(buf, tensor.NCHW, []int{batch, features})
		flat4 := flat.Reshape(in.Shape()...)
		return execFunc(func() error {
			flat4.CopyFrom(in)
			ip.Run(out, flat, pool, buf)
			b.charge("InnerProduct", muls, n, "int8-gemm")
			return nil
		}), nil
	}
	src := in
	if in.Rank() != 2 {
		src = in.Reshape(batch, features)
	}
	ws := b.workspace(n.Name, quantWS)
	return execFunc(func() error {
		ip.Run(out, src, pool, ws)
		b.charge("InnerProduct", muls, n, "int8-gemm")
		return nil
	}), nil
}
