package cpu

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/tensor"
)

// execFunc adapts a closure to backend.Execution. The closures are built
// once during pre-inference and capture only prepared state, so invoking
// them is allocation-free.
type execFunc func() error

func (f execFunc) Run() error { return f() }

// workspace returns the planner-provided scratch slab for a node, falling
// back to a private allocation when the backend is used outside a session's
// pre-inference walk (unit tests, gpusim's internal compute backend).
func (b *Backend) workspace(node string, need int) []float32 {
	if need == 0 {
		return nil
	}
	if buf := b.PlannedBuffer(backend.WorkspaceKey(node)); len(buf) >= need {
		return buf[:need]
	}
	return make([]float32, need)
}

// NodeWorkspaceFloats implements backend.WorkspaceSizer: the transient
// float32 requirement of each operator, declared during the pre-inference
// walk so the Figure 3 planner lays workspaces into the reuse arena
// alongside activations. Every formula mirrors what OnCreate binds; sizing
// uses the pool's lane count (the single source of truth kernels dispatch
// over), which may differ from cfg.Threads when a pool was injected.
func (b *Backend) NodeWorkspaceFloats(n *graph.Node, inputShapes, outputShapes [][]int) int {
	lanes := b.pool.Lanes()
	var in0, out0 []int
	if len(inputShapes) > 0 {
		in0 = inputShapes[0]
	}
	if len(outputShapes) > 0 {
		out0 = outputShapes[0]
	}
	switch n.Op {
	case graph.OpConv2D:
		if len(in0) != 4 || len(out0) != 4 {
			return 0
		}
		a := n.Attrs.(*graph.Conv2DAttrs)
		dec := b.ConvSchemeFor(n, in0)
		ic, oc := in0[1], out0[1]
		N, OH, OW := out0[0], out0[2], out0[3]
		if b.int8Node(n) && core.Int8ConvSupported(a, dec) {
			if a.IsDepthwise() {
				return kernels.QuantDepthwiseWorkspaceFloats(in0[2], in0[3], lanes)
			}
			return kernels.QuantConvWorkspaceFloats(a, ic, oc, OH, OW)
		}
		switch dec.Scheme {
		case core.SchemeWinograd:
			return kernels.WinogradWorkspaceFloats(a, dec.TileH, dec.TileW, ic, oc, lanes)
		case core.SchemeStrassen1x1:
			return kernels.Conv1x1WorkspaceFloats(ic, oc, N, OH, OW, lanes)
		case core.SchemeIm2col:
			// im2col computes in NCHW: the patch/product matrices plus the
			// two layout-staging copies.
			return kernels.Im2colWorkspaceFloats(a, ic, oc, OH, OW) +
				tensor.NumElements(in0) + tensor.NumElements(out0)
		default:
			return 0
		}

	case graph.OpDeconv2D:
		// Reference deconv stages through NCHW temporaries.
		return tensor.NumElements(in0) + tensor.NumElements(out0)

	case graph.OpInnerProduct:
		// NC4HW4 inputs are unpacked into a flat [batch, features] matrix.
		staging := 0
		if len(in0) == 4 {
			staging = tensor.NumElements(in0)
		}
		if b.int8Node(n) {
			a := n.Attrs.(*graph.InnerProductAttrs)
			batch := in0[0]
			features := tensor.NumElements(in0) / batch
			return staging + kernels.QuantInnerProductWorkspaceFloats(batch, features, a.OutputCount)
		}
		return staging

	case graph.OpSoftmax:
		// NC4HW4 inputs stage through NCHW in/out temporaries.
		if len(in0) == 4 {
			return tensor.NumElements(in0) + tensor.NumElements(out0)
		}
		return 0

	case graph.OpFlatten, graph.OpReshape, graph.OpDropout:
		// A packed source that changes shape is unpacked through an NCHW
		// staging buffer.
		if len(in0) == 4 && !tensor.EqualShape(in0, out0) {
			return tensor.NumElements(in0)
		}
		return 0

	case graph.OpConcat:
		a := n.Attrs.(*graph.ConcatAttrs)
		if a.Axis == 1 && len(out0) == 4 {
			return 0 // channel concat runs in place on NC4HW4
		}
		total := tensor.NumElements(out0)
		for _, s := range inputShapes {
			total += tensor.NumElements(s)
		}
		return total
	}
	return 0
}

// int8Node reports whether the quantized path applies to a node: the
// backend runs int8 and the plan (when present) includes the node.
func (b *Backend) int8Node(n *graph.Node) bool {
	return b.cfg.Int8 && (b.cfg.QuantPlan == nil || b.cfg.QuantPlan[n.Name])
}

// actScale resolves the calibrated scale of a node's first input (0 = none,
// kernels fall back to per-sample dynamic scales).
func (b *Backend) actScale(n *graph.Node) float32 {
	if len(n.Inputs) == 0 {
		return 0
	}
	return b.cfg.ActScales[n.Inputs[0]]
}

// carveTensor wraps the next PhysicalLen floats of buf as a tensor and
// returns the remainder. Falls back to a fresh tensor when buf is short.
func carveTensor(buf []float32, layout tensor.Layout, shape []int) (*tensor.Tensor, []float32) {
	need := tensor.PhysicalLen(layout, shape)
	if len(buf) < need {
		return tensor.NewWithLayout(layout, shape...), buf
	}
	return tensor.WrapBuffer(buf[:need], layout, shape...), buf[need:]
}

// OnCreate implements backend.Backend: it binds tensors, runs scheme
// selection (for convolutions), transforms/packs weights, and binds
// planner-provided workspaces, returning a pure-compute Execution. This is
// the "preparation" half of the paper's preparation–execution decoupling;
// the executions it returns are allocation-free in steady state.
func (b *Backend) OnCreate(n *graph.Node, inputs, outputs []*tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	pool := b.pool
	switch n.Op {
	case graph.OpInput:
		return execFunc(func() error { return nil }), nil

	case graph.OpConv2D:
		return b.createConv(n, inputs[0], outputs[0], weights)

	case graph.OpDeconv2D:
		return b.createDeconv(n, inputs[0], outputs[0], weights)

	case graph.OpPool:
		a := n.Attrs.(*graph.PoolAttrs)
		in, out := inputs[0], outputs[0]
		op := kernels.NewPoolOp(out, in, a)
		muls := int64(out.NumElements()) / 2
		return execFunc(func() error {
			op.Run(pool)
			b.charge("Pool", muls, n, "pool")
			return nil
		}), nil

	case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh:
		kind := map[graph.OpType]kernels.ActivationKind{
			graph.OpReLU:    kernels.ActReLU,
			graph.OpReLU6:   kernels.ActReLU6,
			graph.OpSigmoid: kernels.ActSigmoid,
			graph.OpTanh:    kernels.ActTanh,
		}[n.Op]
		in, out := inputs[0], outputs[0]
		op := kernels.NewActivationOp(out, in, kind)
		muls := int64(out.NumElements()) / 4
		label := n.Op.String()
		return execFunc(func() error {
			op.Run(pool)
			b.charge(label, muls, n, "activation")
			return nil
		}), nil

	case graph.OpBatchNorm:
		a := n.Attrs.(*graph.BatchNormAttrs)
		if len(n.WeightNames) != 4 {
			return nil, fmt.Errorf("cpu: BatchNorm %q needs 4 weights, has %d", n.Name, len(n.WeightNames))
		}
		gamma := weights(n.WeightNames[0])
		beta := weights(n.WeightNames[1])
		mean := weights(n.WeightNames[2])
		variance := weights(n.WeightNames[3])
		// Fold to scale+shift at prepare time (pre-computed constants,
		// Figure 2).
		scale, shift := kernels.FoldBatchNorm(gamma.Data(), beta.Data(), mean.Data(), variance.Data(), a.Eps)
		in, out := inputs[0], outputs[0]
		op := kernels.NewScaleOp(out, in, scale, shift)
		muls := int64(out.NumElements())
		return execFunc(func() error {
			op.Run(pool)
			b.charge("BatchNorm", muls, n, "scale")
			return nil
		}), nil

	case graph.OpScale:
		a := n.Attrs.(*graph.ScaleAttrs)
		scale := weights(n.WeightNames[0]).Data()
		var shift []float32
		if a.HasBias && len(n.WeightNames) > 1 {
			shift = weights(n.WeightNames[1]).Data()
		}
		in, out := inputs[0], outputs[0]
		op := kernels.NewScaleOp(out, in, scale, shift)
		muls := int64(out.NumElements())
		return execFunc(func() error {
			op.Run(pool)
			b.charge("Scale", muls, n, "scale")
			return nil
		}), nil

	case graph.OpEltwise:
		a := n.Attrs.(*graph.EltwiseAttrs)
		out := outputs[0]
		op := kernels.NewEltwiseOp(out, inputs, a)
		muls := int64(out.NumElements()) / 4
		return execFunc(func() error {
			op.Run(pool)
			b.charge("Eltwise", muls, n, "eltwise")
			return nil
		}), nil

	case graph.OpConcat:
		a := n.Attrs.(*graph.ConcatAttrs)
		out := outputs[0]
		ins := append([]*tensor.Tensor(nil), inputs...)
		muls := int64(out.NumElements()) / 8
		if a.Axis == 1 && out.Rank() == 4 {
			return execFunc(func() error {
				kernels.ConcatChannel(out, ins)
				b.charge("Concat", muls, n, "concat")
				return nil
			}), nil
		}
		// Generic axis: stage through NCHW temporaries from the planned
		// workspace.
		wsNeed := out.NumElements()
		for _, in := range ins {
			wsNeed += in.NumElements()
		}
		buf := b.workspace(n.Name, wsNeed)
		tmpIns := make([]*tensor.Tensor, len(ins))
		for i, in := range ins {
			tmpIns[i], buf = carveTensor(buf, tensor.NCHW, in.Shape())
		}
		tmpOut, _ := carveTensor(buf, tensor.NCHW, out.Shape())
		return execFunc(func() error {
			for i, in := range ins {
				tmpIns[i].CopyFrom(in)
			}
			kernels.ConcatAxis(tmpOut, tmpIns, a.Axis)
			out.CopyFrom(tmpOut)
			b.charge("Concat", muls, n, "concat")
			return nil
		}), nil

	case graph.OpInnerProduct:
		a := n.Attrs.(*graph.InnerProductAttrs)
		weight := weights(n.WeightNames[0])
		var bias *tensor.Tensor
		if len(n.WeightNames) > 1 {
			bias = weights(n.WeightNames[1])
		}
		in, out := inputs[0], outputs[0]
		batch := in.Dim(0)
		features := in.NumElements() / batch
		// The FC weight may be stored [out, features]; flatten input to
		// match regardless of its rank/layout.
		w2 := weight
		if weight.Rank() != 2 {
			w2 = weight.Reshape(a.OutputCount, features)
		}
		if b.int8Node(n) {
			return b.createQuantInnerProduct(n, in, out, w2, bias, a)
		}
		ip := kernels.PrepareInnerProduct(w2, bias, a)
		muls := int64(batch) * int64(features) * int64(a.OutputCount)
		if in.Layout() == tensor.NC4HW4 {
			// Unpack via logical copy into a planner-backed flat buffer;
			// flat4 is the rank-4 view the copy goes through.
			flat, _ := carveTensor(b.workspace(n.Name, batch*features), tensor.NCHW, []int{batch, features})
			flat4 := flat.Reshape(in.Shape()...)
			return execFunc(func() error {
				flat4.CopyFrom(in)
				ip.Run(out, flat, pool)
				b.charge("InnerProduct", muls, n, "gemm")
				return nil
			}), nil
		}
		src := in
		if in.Rank() != 2 {
			src = in.Reshape(batch, features)
		}
		return execFunc(func() error {
			ip.Run(out, src, pool)
			b.charge("InnerProduct", muls, n, "gemm")
			return nil
		}), nil

	case graph.OpSoftmax:
		a := n.Attrs.(*graph.SoftmaxAttrs)
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) * 2
		if in.Layout() != tensor.NC4HW4 {
			axis := a.Axis
			if axis < 0 {
				axis += in.Rank()
			}
			if axis == in.Rank()-1 {
				// Last-axis softmax (the attention case) gets the pooled
				// row-chunked kernel; rows are independent, so chunking
				// cannot perturb a single float.
				op := kernels.NewSoftmaxOp(out, in)
				return execFunc(func() error {
					op.Run(pool)
					b.charge("Softmax", muls, n, "softmax")
					return nil
				}), nil
			}
			return execFunc(func() error {
				kernels.SoftmaxRef(out, in, a.Axis)
				b.charge("Softmax", muls, n, "softmax")
				return nil
			}), nil
		}
		buf := b.workspace(n.Name, in.NumElements()+out.NumElements())
		tmpIn, buf := carveTensor(buf, tensor.NCHW, in.Shape())
		tmpOut, _ := carveTensor(buf, tensor.NCHW, out.Shape())
		return execFunc(func() error {
			tmpIn.CopyFrom(in)
			kernels.SoftmaxRef(tmpOut, tmpIn, a.Axis)
			out.CopyFrom(tmpOut)
			b.charge("Softmax", muls, n, "softmax")
			return nil
		}), nil

	case graph.OpFlatten, graph.OpReshape, graph.OpDropout:
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) / 8
		label := n.Op.String()
		run := b.createReinterpret(n, out, in)
		return execFunc(func() error {
			run()
			b.charge(label, muls, n, "copy")
			return nil
		}), nil

	case graph.OpPadding:
		a := n.Attrs.(*graph.PaddingAttrs)
		in, out := inputs[0], outputs[0]
		op := kernels.NewPadOp(out, in, a)
		muls := int64(out.NumElements()) / 8
		return execFunc(func() error {
			op.Run(pool)
			b.charge("Padding", muls, n, "copy")
			return nil
		}), nil

	case graph.OpLayerNorm:
		a := n.Attrs.(*graph.LayerNormAttrs)
		in, out := inputs[0], outputs[0]
		if err := requireFlat(n, in, out); err != nil {
			return nil, err
		}
		if len(n.WeightNames) != 2 {
			return nil, fmt.Errorf("cpu: LayerNorm %q needs gamma+beta weights, has %d", n.Name, len(n.WeightNames))
		}
		op := kernels.NewLayerNormOp(out, in, weights(n.WeightNames[0]), weights(n.WeightNames[1]), a)
		muls := int64(out.NumElements()) * 2
		return execFunc(func() error {
			op.Run(pool)
			b.charge("LayerNorm", muls, n, "norm")
			return nil
		}), nil

	case graph.OpGELU:
		in, out := inputs[0], outputs[0]
		op := kernels.NewGELUOp(out, in)
		muls := int64(out.NumElements()) * 4
		return execFunc(func() error {
			op.Run(pool)
			b.charge("GELU", muls, n, "activation")
			return nil
		}), nil

	case graph.OpTranspose:
		a := n.Attrs.(*graph.TransposeAttrs)
		in, out := inputs[0], outputs[0]
		if err := requireFlat(n, in, out); err != nil {
			return nil, err
		}
		op := kernels.NewTransposeOp(out, in, a)
		muls := int64(out.NumElements()) / 8
		return execFunc(func() error {
			op.Run(pool)
			b.charge("Transpose", muls, n, "copy")
			return nil
		}), nil

	case graph.OpMatMul:
		return b.createMatMul(n, inputs, outputs[0], weights)
	}
	return nil, fmt.Errorf("cpu: unsupported op %v", n.Op)
}

// requireFlat rejects NC4HW4-bound tensors for ops whose kernels index raw
// buffers with row-major strides. The transformer op set is rank-3, which
// PreferredLayout keeps flat, so this only fires on hand-built graphs.
func requireFlat(n *graph.Node, ts ...*tensor.Tensor) error {
	for _, t := range ts {
		if t.Layout() == tensor.NC4HW4 {
			return fmt.Errorf("cpu: %v %q requires flat (NCHW) tensors, got NC4HW4", n.Op, n.Name)
		}
	}
	return nil
}

// createMatMul prepares one of the three MatMul forms (see graph.MatMulAttrs).
func (b *Backend) createMatMul(n *graph.Node, inputs []*tensor.Tensor, out *tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	a := n.Attrs.(*graph.MatMulAttrs)
	pool := b.pool
	if err := requireFlat(n, append(append([]*tensor.Tensor(nil), inputs...), out)...); err != nil {
		return nil, err
	}
	if a.Heads == 0 {
		if len(n.WeightNames) == 0 {
			return nil, fmt.Errorf("cpu: MatMul %q weight form needs a weight", n.Name)
		}
		w := weights(n.WeightNames[0])
		var bias *tensor.Tensor
		if len(n.WeightNames) > 1 {
			bias = weights(n.WeightNames[1])
		}
		in := inputs[0]
		k, nn := w.Dim(0), w.Dim(1)
		packB := true
		if b.cfg.GemmScheme != nil {
			if p, ok := b.cfg.GemmScheme(n); ok {
				packB = p
			}
		}
		op := kernels.NewMatMulWeightOp(out, in, w, bias, a, packB)
		rows := in.NumElements() / k
		muls := int64(rows) * int64(k) * int64(nn)
		scheme := "gemm-direct"
		if packB {
			scheme = "gemm-packed"
		}
		return execFunc(func() error {
			op.Run(pool)
			b.charge("MatMul", muls, n, scheme)
			return nil
		}), nil
	}
	if len(inputs) < 2 {
		return nil, fmt.Errorf("cpu: MatMul %q batched form needs 2 inputs", n.Name)
	}
	op := kernels.NewMatMulBatchedOp(out, inputs[0], inputs[1], a)
	muls := int64(out.NumElements()) * int64(inputs[0].Dim(2))
	scheme := "gemm-av"
	if a.TransposeB {
		scheme = "gemm-qk"
	}
	return execFunc(func() error {
		op.Run(pool)
		b.charge("MatMul", muls, n, scheme)
		return nil
	}), nil
}

// createReinterpret prepares the copy for shapes that differ only by
// reinterpretation (Flatten/Reshape/Dropout). All views and staging buffers
// are bound here so the returned closure is allocation-free.
func (b *Backend) createReinterpret(n *graph.Node, dst, src *tensor.Tensor) func() {
	if tensor.EqualShape(dst.Shape(), src.Shape()) {
		return func() { dst.CopyFrom(src) }
	}
	if src.Layout() == tensor.NC4HW4 {
		// Unpack through a planner-backed NCHW staging buffer, then copy
		// flat via the pre-built reshaped view.
		staging, _ := carveTensor(b.workspace(n.Name, src.NumElements()), tensor.NCHW, src.Shape())
		view := staging.Reshape(dst.Shape()...)
		return func() {
			staging.CopyFrom(src)
			dst.CopyFrom(view)
		}
	}
	view := src.Reshape(dst.Shape()...)
	return func() { dst.CopyFrom(view) }
}

// createConv runs scheme selection (Equations 2–3) and prepares the chosen
// kernel with its planner-backed workspace.
func (b *Backend) createConv(n *graph.Node, in, out *tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	a := n.Attrs.(*graph.Conv2DAttrs)
	weight := weights(n.WeightNames[0])
	var bias *tensor.Tensor
	if len(n.WeightNames) > 1 {
		bias = weights(n.WeightNames[1])
	}
	dec := b.ConvSchemeFor(n, in.Shape())
	pool := b.pool
	lanes := pool.Lanes()

	if b.int8Node(n) && core.Int8ConvSupported(a, dec) {
		return b.createQuantConv(n, in, out, weight, bias, dec)
	}

	switch dec.Scheme {
	case core.SchemeWinograd:
		wc, err := kernels.PrepareWinograd(weight, bias, a, dec.TileH, dec.TileW)
		if err != nil {
			return nil, fmt.Errorf("cpu: conv %q: %w", n.Name, err)
		}
		ws := b.workspace(n.Name, wc.WorkspaceSize()*lanes)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			wc.Run(out, in, pool, ws)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeStrassen1x1:
		c := kernels.PrepareConv1x1(weight, bias, a)
		if b.cfg.DisableStrassen {
			c.Strassen = false
		}
		ws := b.workspace(n.Name, kernels.Conv1x1WorkspaceFloats(
			in.Channels(), out.Channels(), out.Batch(), out.Height(), out.Width(), lanes))
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			c.Run(out, in, pool, ws)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeDepthwise:
		dc := kernels.PrepareDepthwise(weight, bias, a)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			dc.Run(out, in, pool)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeIm2col:
		c := kernels.PrepareIm2col(weight, bias, a)
		gemmWS := kernels.Im2colWorkspaceFloats(a, in.Channels(), out.Channels(), out.Height(), out.Width())
		buf := b.workspace(n.Name, gemmWS+in.NumElements()+out.NumElements())
		var ws []float32
		if len(buf) >= gemmWS {
			ws, buf = buf[:gemmWS], buf[gemmWS:]
		} else {
			ws = make([]float32, gemmWS)
		}
		// im2col computes in NCHW; stage through planner-backed temps.
		tmpIn, buf := carveTensor(buf, tensor.NCHW, in.Shape())
		tmpOut, _ := carveTensor(buf, tensor.NCHW, out.Shape())
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			tmpIn.CopyFrom(in)
			c.Run(tmpOut, tmpIn, pool, ws)
			out.CopyFrom(tmpOut)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	default: // SchemeSliding
		sc := kernels.PrepareSliding(weight, bias, a)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			sc.Run(out, in, pool)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil
	}
}

func (b *Backend) createDeconv(n *graph.Node, in, out *tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	a := n.Attrs.(*graph.Conv2DAttrs)
	weight := weights(n.WeightNames[0])
	var bias *tensor.Tensor
	if len(n.WeightNames) > 1 {
		bias = weights(n.WeightNames[1])
	}
	buf := b.workspace(n.Name, in.NumElements()+out.NumElements())
	tmpIn, buf := carveTensor(buf, tensor.NCHW, in.Shape())
	tmpOut, _ := carveTensor(buf, tensor.NCHW, out.Shape())
	muls := int64(in.NumElements()) * int64(a.OutputCount) * int64(a.KernelH) * int64(a.KernelW)
	return execFunc(func() error {
		tmpIn.CopyFrom(in)
		kernels.DeconvRef(tmpOut, tmpIn, weight, bias, a)
		out.CopyFrom(tmpOut)
		b.charge("Deconv2D", muls, n, "deconv")
		return nil
	}), nil
}
