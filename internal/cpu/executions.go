package cpu

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/tensor"
)

// execFunc adapts a closure to backend.Execution.
type execFunc func() error

func (f execFunc) Run() error { return f() }

// OnCreate implements backend.Backend: it binds tensors, runs scheme
// selection (for convolutions), transforms/packs weights, pre-allocates
// workspaces and returns a pure-compute Execution. This is the
// "preparation" half of the paper's preparation–execution decoupling.
func (b *Backend) OnCreate(n *graph.Node, inputs, outputs []*tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	threads := b.cfg.Threads
	switch n.Op {
	case graph.OpInput:
		return execFunc(func() error { return nil }), nil

	case graph.OpConv2D:
		return b.createConv(n, inputs[0], outputs[0], weights)

	case graph.OpDeconv2D:
		return b.createDeconv(n, inputs[0], outputs[0], weights)

	case graph.OpPool:
		a := n.Attrs.(*graph.PoolAttrs)
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) / 2
		return execFunc(func() error {
			kernels.PoolNC4(out, in, a, threads)
			b.charge("Pool", muls, n, "pool")
			return nil
		}), nil

	case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh:
		kind := map[graph.OpType]kernels.ActivationKind{
			graph.OpReLU:    kernels.ActReLU,
			graph.OpReLU6:   kernels.ActReLU6,
			graph.OpSigmoid: kernels.ActSigmoid,
			graph.OpTanh:    kernels.ActTanh,
		}[n.Op]
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) / 4
		label := n.Op.String()
		return execFunc(func() error {
			kernels.Activation(out, in, kind, threads)
			b.charge(label, muls, n, "activation")
			return nil
		}), nil

	case graph.OpBatchNorm:
		a := n.Attrs.(*graph.BatchNormAttrs)
		if len(n.WeightNames) != 4 {
			return nil, fmt.Errorf("cpu: BatchNorm %q needs 4 weights, has %d", n.Name, len(n.WeightNames))
		}
		gamma := weights(n.WeightNames[0])
		beta := weights(n.WeightNames[1])
		mean := weights(n.WeightNames[2])
		variance := weights(n.WeightNames[3])
		// Fold to scale+shift at prepare time (pre-computed constants,
		// Figure 2).
		scale, shift := kernels.FoldBatchNorm(gamma.Data(), beta.Data(), mean.Data(), variance.Data(), a.Eps)
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements())
		return execFunc(func() error {
			kernels.ScaleNC4(out, in, scale, shift, threads)
			b.charge("BatchNorm", muls, n, "scale")
			return nil
		}), nil

	case graph.OpScale:
		a := n.Attrs.(*graph.ScaleAttrs)
		scale := weights(n.WeightNames[0]).Data()
		var shift []float32
		if a.HasBias && len(n.WeightNames) > 1 {
			shift = weights(n.WeightNames[1]).Data()
		}
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements())
		return execFunc(func() error {
			kernels.ScaleNC4(out, in, scale, shift, threads)
			b.charge("Scale", muls, n, "scale")
			return nil
		}), nil

	case graph.OpEltwise:
		a := n.Attrs.(*graph.EltwiseAttrs)
		out := outputs[0]
		ins := append([]*tensor.Tensor(nil), inputs...)
		muls := int64(out.NumElements()) / 4
		return execFunc(func() error {
			kernels.Eltwise(out, ins, a, threads)
			b.charge("Eltwise", muls, n, "eltwise")
			return nil
		}), nil

	case graph.OpConcat:
		a := n.Attrs.(*graph.ConcatAttrs)
		out := outputs[0]
		ins := append([]*tensor.Tensor(nil), inputs...)
		muls := int64(out.NumElements()) / 8
		if a.Axis == 1 && out.Rank() == 4 {
			return execFunc(func() error {
				kernels.ConcatChannel(out, ins)
				b.charge("Concat", muls, n, "concat")
				return nil
			}), nil
		}
		// Generic axis: stage through NCHW temporaries (pre-allocated).
		tmpIns := make([]*tensor.Tensor, len(ins))
		for i, in := range ins {
			tmpIns[i] = tensor.New(in.Shape()...)
		}
		tmpOut := tensor.New(out.Shape()...)
		return execFunc(func() error {
			for i, in := range ins {
				tmpIns[i].CopyFrom(in)
			}
			kernels.ConcatAxis(tmpOut, tmpIns, a.Axis)
			out.CopyFrom(tmpOut)
			b.charge("Concat", muls, n, "concat")
			return nil
		}), nil

	case graph.OpInnerProduct:
		a := n.Attrs.(*graph.InnerProductAttrs)
		weight := weights(n.WeightNames[0])
		var bias *tensor.Tensor
		if len(n.WeightNames) > 1 {
			bias = weights(n.WeightNames[1])
		}
		in, out := inputs[0], outputs[0]
		batch := in.Dim(0)
		features := in.NumElements() / batch
		// The FC weight may be stored [out, features]; flatten input to
		// match regardless of its rank/layout.
		w2 := weight
		if weight.Rank() != 2 {
			w2 = weight.Reshape(a.OutputCount, features)
		}
		ip := kernels.PrepareInnerProduct(w2, bias, a)
		flat := tensor.New(batch, features)
		muls := int64(batch) * int64(features) * int64(a.OutputCount)
		needsConvert := in.Layout() == tensor.NC4HW4
		return execFunc(func() error {
			src := in
			if needsConvert {
				// Unpack via logical copy into the flat NCHW buffer.
				flat4 := flat.Reshape(in.Shape()...)
				flat4.CopyFrom(in)
				src = flat
			} else if in.Rank() != 2 {
				src = in.Reshape(batch, features)
			}
			ip.Run(out, src, threads)
			b.charge("InnerProduct", muls, n, "gemm")
			return nil
		}), nil

	case graph.OpSoftmax:
		a := n.Attrs.(*graph.SoftmaxAttrs)
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) * 2
		if in.Layout() != tensor.NC4HW4 {
			return execFunc(func() error {
				kernels.SoftmaxRef(out, in, a.Axis)
				b.charge("Softmax", muls, n, "softmax")
				return nil
			}), nil
		}
		tmpIn := tensor.New(in.Shape()...)
		tmpOut := tensor.New(out.Shape()...)
		return execFunc(func() error {
			tmpIn.CopyFrom(in)
			kernels.SoftmaxRef(tmpOut, tmpIn, a.Axis)
			out.CopyFrom(tmpOut)
			b.charge("Softmax", muls, n, "softmax")
			return nil
		}), nil

	case graph.OpFlatten, graph.OpReshape, graph.OpDropout:
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) / 8
		label := n.Op.String()
		return execFunc(func() error {
			copyReinterpret(out, in)
			b.charge(label, muls, n, "copy")
			return nil
		}), nil

	case graph.OpPadding:
		a := n.Attrs.(*graph.PaddingAttrs)
		in, out := inputs[0], outputs[0]
		muls := int64(out.NumElements()) / 8
		return execFunc(func() error {
			kernels.PaddingNC4(out, in, a, threads)
			b.charge("Padding", muls, n, "copy")
			return nil
		}), nil
	}
	return nil, fmt.Errorf("cpu: unsupported op %v", n.Op)
}

// copyReinterpret copies src into dst when shapes differ only by
// reinterpretation (Flatten/Reshape). Data order is NCHW-logical.
func copyReinterpret(dst, src *tensor.Tensor) {
	if tensor.EqualShape(dst.Shape(), src.Shape()) {
		dst.CopyFrom(src)
		return
	}
	// Unpack src logically, then copy flat.
	flatSrc := src
	if src.Layout() == tensor.NC4HW4 {
		flatSrc = src.ToLayout(tensor.NCHW)
	}
	if dst.Layout() == tensor.NC4HW4 {
		dst.CopyFrom(flatSrc.Reshape(dst.Shape()...))
		return
	}
	copy(dst.Data(), flatSrc.Data())
}

// createConv runs scheme selection (Equations 2–3) and prepares the chosen
// kernel.
func (b *Backend) createConv(n *graph.Node, in, out *tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	a := n.Attrs.(*graph.Conv2DAttrs)
	weight := weights(n.WeightNames[0])
	var bias *tensor.Tensor
	if len(n.WeightNames) > 1 {
		bias = weights(n.WeightNames[1])
	}
	dec := core.SelectConvScheme(a, in.Shape())
	if b.cfg.ForceScheme != nil {
		dec = b.cfg.ForceScheme(n, dec)
	}
	threads := b.cfg.Threads

	switch dec.Scheme {
	case core.SchemeWinograd:
		wc, err := kernels.PrepareWinograd(weight, bias, a, dec.TileH, dec.TileW)
		if err != nil {
			return nil, fmt.Errorf("cpu: conv %q: %w", n.Name, err)
		}
		ws := make([]float32, wc.WorkspaceSize()*threads)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			wc.Run(out, in, threads, ws)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeStrassen1x1:
		c := kernels.PrepareConv1x1(weight, bias, a)
		if b.cfg.DisableStrassen {
			c.Strassen = false
		}
		ws := make([]float32, c.WorkspaceSize(in.Batch(), in.Height(), in.Width()))
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			c.Run(out, in, threads, ws)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeDepthwise:
		dc := kernels.PrepareDepthwise(weight, bias, a)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			dc.Run(out, in, threads)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	case core.SchemeIm2col:
		c := kernels.PrepareIm2col(weight, bias, a)
		ws := make([]float32, c.WorkspaceSize(in.Height(), in.Width()))
		// im2col computes in NCHW; stage through pre-allocated temps.
		tmpIn := tensor.New(in.Shape()...)
		tmpOut := tensor.New(out.Shape()...)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			tmpIn.CopyFrom(in)
			c.Run(tmpOut, tmpIn, threads, ws)
			out.CopyFrom(tmpOut)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil

	default: // SchemeSliding
		sc := kernels.PrepareSliding(weight, bias, a)
		scheme := dec.Scheme.String()
		return execFunc(func() error {
			sc.Run(out, in, threads)
			b.charge("Conv2D", dec.EffMULs, n, scheme)
			return nil
		}), nil
	}
}

func (b *Backend) createDeconv(n *graph.Node, in, out *tensor.Tensor, weights backend.WeightSource) (backend.Execution, error) {
	a := n.Attrs.(*graph.Conv2DAttrs)
	weight := weights(n.WeightNames[0])
	var bias *tensor.Tensor
	if len(n.WeightNames) > 1 {
		bias = weights(n.WeightNames[1])
	}
	tmpIn := tensor.New(in.Shape()...)
	tmpOut := tensor.New(out.Shape()...)
	muls := int64(in.NumElements()) * int64(a.OutputCount) * int64(a.KernelH) * int64(a.KernelW)
	return execFunc(func() error {
		tmpIn.CopyFrom(in)
		kernels.DeconvRef(tmpOut, tmpIn, weight, bias, a)
		out.CopyFrom(tmpOut)
		b.charge("Deconv2D", muls, n, "deconv")
		return nil
	}), nil
}
