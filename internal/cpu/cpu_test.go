package cpu

import (
	"testing"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

func weightsOf(m map[string]*tensor.Tensor) backend.WeightSource {
	return func(name string) *tensor.Tensor { return m[name] }
}

// runNode executes a single node through the backend and returns its output.
func runNode(t *testing.T, b *Backend, n *graph.Node, ins []*tensor.Tensor, out *tensor.Tensor, w map[string]*tensor.Tensor) {
	t.Helper()
	exec, err := b.OnCreate(n, ins, []*tensor.Tensor{out}, weightsOf(w))
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBackendBasics(t *testing.T) {
	b := New(Config{Threads: 4, Device: device.MI6})
	if b.Kind() != backend.KindCPU || b.Name() != "CPU" {
		t.Fatal("identity wrong")
	}
	if b.FLOPS() != 4*2.45e9 {
		t.Fatalf("FLOPS = %g (MI6, 4 threads)", b.FLOPS())
	}
	if b.ScheduleOverheadMs() != 0 {
		t.Fatal("CPU has no schedule overhead")
	}
	if b.PreferredLayout(4) != tensor.NC4HW4 || b.PreferredLayout(2) != tensor.NCHW {
		t.Fatal("preferred layouts wrong")
	}
	if !b.Supports(&graph.Node{Op: graph.OpDeconv2D, Attrs: &graph.Conv2DAttrs{}}) {
		t.Fatal("CPU must support everything")
	}
	if b.Threads() != 4 {
		t.Fatal("threads accessor")
	}
}

func TestConvSchemesThroughBackend(t *testing.T) {
	// Each configuration routes to a different kernel; all must match the
	// reference.
	cases := []struct {
		name       string
		attrs      graph.Conv2DAttrs
		ic, h, w   int
		wantScheme core.ConvScheme
	}{
		{"winograd", graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Group: 1, InputCount: 16, OutputCount: 16}, 16, 24, 24, core.SchemeWinograd},
		{"strassen1x1", graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: 16, OutputCount: 8}, 16, 12, 12, core.SchemeStrassen1x1},
		{"depthwise", graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Group: 16, InputCount: 16, OutputCount: 16}, 16, 12, 12, core.SchemeDepthwise},
		{"im2col-group", graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Group: 4, InputCount: 16, OutputCount: 16}, 16, 12, 12, core.SchemeIm2col},
		{"sliding-s2", graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Group: 1, InputCount: 8, OutputCount: 8}, 8, 13, 13, core.SchemeSliding},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := core.SelectConvScheme(&tc.attrs, []int{1, tc.ic, tc.h, tc.w})
			if dec.Scheme != tc.wantScheme {
				t.Fatalf("scheme = %v, want %v", dec.Scheme, tc.wantScheme)
			}
			src := tensor.NewRandom(1, 1, 1, tc.ic, tc.h, tc.w)
			weight := tensor.NewRandom(2, 0.3, tc.attrs.OutputCount, tc.ic/tc.attrs.Group, tc.attrs.KernelH, tc.attrs.KernelW)
			bias := tensor.NewRandom(3, 0.1, tc.attrs.OutputCount)
			oh, ow, err := graph.ConvOutputSize(tc.h, tc.w, &tc.attrs)
			if err != nil {
				t.Fatal(err)
			}
			want := tensor.New(1, tc.attrs.OutputCount, oh, ow)
			kernels.ConvRef(want, src, weight, bias, &tc.attrs)

			b := New(Config{Threads: 2})
			n := &graph.Node{Name: "c", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"out"},
				WeightNames: []string{"w", "b"}, Attrs: &tc.attrs}
			out := tensor.NewWithLayout(tensor.NC4HW4, 1, tc.attrs.OutputCount, oh, ow)
			runNode(t, b, n, []*tensor.Tensor{src.ToLayout(tensor.NC4HW4)}, out,
				map[string]*tensor.Tensor{"w": weight, "b": bias})
			if d := tensor.MaxAbsDiff(want, out); d > 5e-3 {
				t.Fatalf("diff vs reference %g", d)
			}
		})
	}
}

func TestForceSchemeOverride(t *testing.T) {
	// A fixed-scheme engine (Table 1 baseline) forces sliding on a conv the
	// cost model would run as Winograd.
	forced := false
	b := New(Config{
		Threads: 1,
		ForceScheme: func(n *graph.Node, dec core.ConvDecision) core.ConvDecision {
			forced = true
			return core.ConvDecision{Scheme: core.SchemeSliding, EffMULs: dec.DirectMULs, DirectMULs: dec.DirectMULs}
		},
	})
	attrs := graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		Group: 1, InputCount: 16, OutputCount: 16}
	src := tensor.NewRandom(4, 1, 1, 16, 24, 24)
	weight := tensor.NewRandom(5, 0.3, 16, 16, 3, 3)
	want := tensor.New(1, 16, 24, 24)
	kernels.ConvRef(want, src, weight, nil, &attrs)

	n := &graph.Node{Name: "c", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"out"},
		WeightNames: []string{"w"}, Attrs: &attrs}
	out := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
	runNode(t, b, n, []*tensor.Tensor{src.ToLayout(tensor.NC4HW4)}, out,
		map[string]*tensor.Tensor{"w": weight})
	if !forced {
		t.Fatal("ForceScheme not consulted")
	}
	if d := tensor.MaxAbsDiff(want, out); d > 1e-3 {
		t.Fatalf("forced sliding wrong by %g", d)
	}
}

func TestEfficiencyModelScalesClock(t *testing.T) {
	run := func(eff float64) float64 {
		clock := simclock.New()
		b := New(Config{Threads: 1, Device: device.MI6, Clock: clock,
			Efficiency: func(n *graph.Node, scheme string) float64 { return eff }})
		attrs := graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 1, InputCount: 8, OutputCount: 8}
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, 8, 16, 16)
		weight := tensor.NewRandom(6, 0.3, 8, 8, 3, 3)
		n := &graph.Node{Name: "c", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"out"},
			WeightNames: []string{"w"}, Attrs: &attrs}
		out := tensor.NewWithLayout(tensor.NC4HW4, 1, 8, 16, 16)
		exec, err := b.OnCreate(n, []*tensor.Tensor{src}, []*tensor.Tensor{out}, weightsOf(map[string]*tensor.Tensor{"w": weight}))
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.TotalMs()
	}
	full := run(1.0)
	half := run(0.5)
	if full <= 0 {
		t.Fatal("clock must advance")
	}
	ratio := half / full
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("efficiency 0.5 should double cost, got ratio %v", ratio)
	}
}

func TestBatchNormFoldedAtCreate(t *testing.T) {
	b := New(Config{Threads: 1})
	c := 6
	gamma := tensor.NewRandom(7, 0.1, c)
	for i := range gamma.Data() {
		gamma.Data()[i] += 1
	}
	beta := tensor.NewRandom(8, 0.1, c)
	mean := tensor.NewRandom(9, 0.1, c)
	variance := tensor.New(c)
	variance.Fill(1)
	src := tensor.NewRandom(10, 1, 1, c, 5, 5)
	want := tensor.New(1, c, 5, 5)
	kernels.BatchNormRef(want, src, gamma, beta, mean, variance, 1e-5)

	n := &graph.Node{Name: "bn", Op: graph.OpBatchNorm, Inputs: []string{"in"}, Outputs: []string{"out"},
		WeightNames: []string{"g", "b", "m", "v"}, Attrs: &graph.BatchNormAttrs{Eps: 1e-5}}
	out := tensor.NewWithLayout(tensor.NC4HW4, 1, c, 5, 5)
	runNode(t, b, n, []*tensor.Tensor{src.ToLayout(tensor.NC4HW4)}, out,
		map[string]*tensor.Tensor{"g": gamma, "b": beta, "m": mean, "v": variance})
	if d := tensor.MaxAbsDiff(want, out); d > 1e-4 {
		t.Fatalf("BN diff %g", d)
	}
}

func TestBatchNormRejectsWrongWeights(t *testing.T) {
	b := New(Config{Threads: 1})
	n := &graph.Node{Name: "bn", Op: graph.OpBatchNorm, Inputs: []string{"in"}, Outputs: []string{"out"},
		WeightNames: []string{"g"}, Attrs: &graph.BatchNormAttrs{Eps: 1e-5}}
	if _, err := b.OnCreate(n, nil, []*tensor.Tensor{tensor.New(1, 4, 2, 2)}, weightsOf(nil)); err == nil {
		t.Fatal("expected weight-count error")
	}
}

func TestConcatGenericAxisThroughBackend(t *testing.T) {
	b := New(Config{Threads: 1})
	a0 := tensor.NewRandom(11, 1, 1, 4, 2, 3).ToLayout(tensor.NC4HW4)
	a1 := tensor.NewRandom(12, 1, 1, 4, 5, 3).ToLayout(tensor.NC4HW4)
	out := tensor.NewWithLayout(tensor.NC4HW4, 1, 4, 7, 3)
	n := &graph.Node{Name: "cat", Op: graph.OpConcat, Inputs: []string{"a", "b"}, Outputs: []string{"o"},
		Attrs: &graph.ConcatAttrs{Axis: 2}}
	runNode(t, b, n, []*tensor.Tensor{a0, a1}, out, nil)
	if out.At(0, 1, 0, 0) != a0.At(0, 1, 0, 0) {
		t.Fatal("first part corrupted")
	}
	if out.At(0, 3, 2, 1) != a1.At(0, 3, 0, 1) {
		t.Fatal("second part corrupted")
	}
}

func TestDeconvThroughBackend(t *testing.T) {
	b := New(Config{Threads: 1})
	attrs := graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
		Group: 1, InputCount: 4, OutputCount: 3}
	src := tensor.NewRandom(13, 1, 1, 4, 6, 6)
	weight := tensor.NewRandom(14, 0.3, 4, 3, 3, 3) // [ic, oc, kh, kw]
	want := tensor.New(1, 3, 11, 11)
	kernels.DeconvRef(want, src, weight, nil, &attrs)
	n := &graph.Node{Name: "d", Op: graph.OpDeconv2D, Inputs: []string{"in"}, Outputs: []string{"out"},
		WeightNames: []string{"w"}, Attrs: &attrs}
	out := tensor.NewWithLayout(tensor.NC4HW4, 1, 3, 11, 11)
	runNode(t, b, n, []*tensor.Tensor{src.ToLayout(tensor.NC4HW4)}, out,
		map[string]*tensor.Tensor{"w": weight})
	if d := tensor.MaxAbsDiff(want, out); d > 1e-3 {
		t.Fatalf("deconv diff %g", d)
	}
}

func TestDisableStrassen(t *testing.T) {
	mk := func(disable bool) *tensor.Tensor {
		b := New(Config{Threads: 1, DisableStrassen: disable})
		attrs := graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
			Group: 1, InputCount: 144, OutputCount: 144}
		src := tensor.NewRandom(15, 1, 1, 144, 16, 16).ToLayout(tensor.NC4HW4)
		weight := tensor.NewRandom(16, 0.1, 144, 144, 1, 1)
		n := &graph.Node{Name: "c", Op: graph.OpConv2D, Inputs: []string{"in"}, Outputs: []string{"out"},
			WeightNames: []string{"w"}, Attrs: &attrs}
		out := tensor.NewWithLayout(tensor.NC4HW4, 1, 144, 16, 16)
		exec, err := b.OnCreate(n, []*tensor.Tensor{src}, []*tensor.Tensor{out}, weightsOf(map[string]*tensor.Tensor{"w": weight}))
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	on := mk(false)
	off := mk(true)
	if d := tensor.MaxAbsDiff(on, off); d > 1e-2 {
		t.Fatalf("strassen on/off disagree by %g", d)
	}
}

func TestOnCopyBufferShapeMismatch(t *testing.T) {
	b := New(Config{Threads: 1})
	if err := b.OnCopyBuffer(tensor.New(2, 2), tensor.New(3, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}
