// Package cpu implements the CPU backend: NC4HW4 activations, multi-threaded
// kernels, and pre-inference scheme selection (Section 3.2 of the paper) so
// that every convolution runs the cost-optimal algorithm among sliding
// window, generated Winograd, Strassen-matmul (1×1) and the depthwise and
// im2col paths.
package cpu

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// EfficiencyModel scales the simulated cost of an operator; 1.0 is the
// paper's fully-optimized kernel. Baseline engine simulators supply models
// with blind spots (e.g. NCNN's unoptimized 1×7 convolution in Figure 8).
type EfficiencyModel func(n *graph.Node, scheme string) float64

// Config parameterizes a CPU backend instance.
type Config struct {
	// Threads is the worker count (the paper benchmarks 1, 2 and 4).
	Threads int
	// Device supplies the Equation 5 FLOPS term. Nil means device.Host.
	Device *device.Profile
	// Clock accumulates simulated time; nil disables simulation.
	Clock *simclock.Clock
	// Efficiency adjusts simulated cost per op; nil means always 1.0.
	Efficiency EfficiencyModel
	// ForceScheme overrides pre-inference scheme selection; nil keeps the
	// cost-model choice. Used by fixed-scheme baselines (Table 1) and
	// ablations.
	ForceScheme func(n *graph.Node, dec core.ConvDecision) core.ConvDecision
	// DisableStrassen falls back to direct GEMM inside 1×1 convolutions.
	DisableStrassen bool
	// Pool is the persistent worker pool kernels dispatch onto. Nil makes
	// the backend create (and own) one sized to Threads; either way Close
	// releases it.
	Pool *sched.Pool
	// Int8 enables the quantized execution path: eligible convolutions
	// (core.Int8ConvSupported) and fully-connected layers run the prepared
	// int8 kernels; everything else falls back to fp32 transparently.
	Int8 bool
	// QuantPlan optionally restricts which nodes run int8 (the
	// optimizer.PlanInt8 partition, keyed by node name); nil quantizes every
	// eligible node.
	QuantPlan map[string]bool
	// ActScales maps activation tensor name → calibrated scale
	// (quant.Calibrate). Int8 kernels whose input has no entry derive a
	// per-sample max-abs scale at run time instead.
	ActScales map[string]float32
	// NonNegActs marks activation tensors proven non-negative by the int8
	// planner's dataflow pass; int8 kernels consuming them quantize unsigned
	// (restoring the GEMM's zero skip on post-ReLU sparsity).
	NonNegActs map[string]bool
	// GemmScheme, when set, overrides the packed-vs-direct choice for
	// weight-form MatMul nodes (the tuner's measured/cost decision). The
	// second return reports whether the tuner has an opinion; false keeps
	// the default (packed). Both choices are bitwise chunk-invariant, so
	// this knob can never perturb results.
	GemmScheme func(n *graph.Node) (packB, ok bool)
}

// Backend is the CPU implementation of the Figure 5 interface.
type Backend struct {
	*backend.BufferTracker
	cfg  Config
	pool *sched.Pool
}

// New creates a CPU backend.
func New(cfg Config) *Backend {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Device == nil {
		cfg.Device = device.Host
	}
	pool := cfg.Pool
	if pool == nil {
		pool = sched.New(cfg.Threads)
	}
	return &Backend{BufferTracker: backend.NewBufferTracker(), cfg: cfg, pool: pool}
}

// Close releases the worker pool. Safe to call more than once; the backend
// keeps working afterwards with inline (single-lane) execution.
func (b *Backend) Close() error {
	b.pool.Close()
	return nil
}

// Pool exposes the worker pool kernels dispatch onto.
func (b *Backend) Pool() *sched.Pool { return b.pool }

// Kind implements backend.Backend.
func (b *Backend) Kind() backend.Kind { return backend.KindCPU }

// Name implements backend.Backend.
func (b *Backend) Name() string { return "CPU" }

// FLOPS implements Equation 5 / Appendix C: sum of the k largest core
// frequencies.
func (b *Backend) FLOPS() float64 { return b.cfg.Device.CPUFLOPS(b.cfg.Threads) }

// ScheduleOverheadMs is zero on CPU (Equation 5).
func (b *Backend) ScheduleOverheadMs() float64 { return 0 }

// PreferredLayout stores rank-4 activations in NC4HW4, everything else flat.
func (b *Backend) PreferredLayout(rank int) tensor.Layout {
	if rank == 4 {
		return tensor.NC4HW4
	}
	return tensor.NCHW
}

// Supports implements backend.Backend: the CPU backend is the universal
// fallback and runs every operator.
func (b *Backend) Supports(n *graph.Node) bool { return true }

// ConvSchemeFor implements core.ConvSchemer: the Equation 2–3 heuristic
// decision with any configured override (tuner decisions, fixed-scheme
// baselines) applied. Workspace sizing, kernel creation, the int8 partition
// and session statistics all flow through this single decision point.
func (b *Backend) ConvSchemeFor(n *graph.Node, inShape []int) core.ConvDecision {
	dec := core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), inShape)
	if b.cfg.ForceScheme != nil {
		dec = b.cfg.ForceScheme(n, dec)
	}
	return dec
}

// OnExecuteBegin implements backend.Backend (no-op on CPU).
func (b *Backend) OnExecuteBegin() {}

// OnExecuteEnd implements backend.Backend (no-op on CPU).
func (b *Backend) OnExecuteEnd() {}

// OnCopyBuffer copies logically, converting layouts when they differ.
func (b *Backend) OnCopyBuffer(src, dst *tensor.Tensor) error {
	if !tensor.EqualShape(src.Shape(), dst.Shape()) {
		return fmt.Errorf("cpu: copy shape mismatch %v vs %v", src.Shape(), dst.Shape())
	}
	dst.CopyFrom(src)
	return nil
}

// charge records simulated cost for an op execution.
func (b *Backend) charge(label string, muls int64, n *graph.Node, scheme string) {
	if b.cfg.Clock == nil {
		return
	}
	eff := 1.0
	if b.cfg.Efficiency != nil {
		eff = b.cfg.Efficiency(n, scheme)
	}
	b.cfg.Clock.Charge(label, simclock.CPUCostMs(muls, b.FLOPS(), eff))
}

// Threads exposes the configured worker count.
func (b *Backend) Threads() int { return b.cfg.Threads }
