package matmul

import (
	"math"
	"testing"
	"testing/quick"

	"mnn/internal/tensor"
)

// naive reference multiply.
func refMul(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			out[i*n+j] = float32(s)
		}
	}
	return out
}

func randMat(seed uint64, rows, cols int) []float32 {
	r := tensor.NewRNG(seed)
	out := make([]float32, rows*cols)
	for i := range out {
		out[i] = r.Float32()
	}
	return out
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestMulSmall(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}    // 2×3
	b := []float32{7, 8, 9, 10, 11, 12} // 3×2
	dst := make([]float32, 4)
	Mul(dst, a, b, 2, 3, 2)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestMulMatchesReference(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {33, 17, 65}, {64, 128, 32}, {100, 1, 100}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(1, m, k)
		b := randMat(2, k, n)
		dst := make([]float32, m*n)
		Mul(dst, a, b, m, k, n)
		want := refMul(a, b, m, k, n)
		if d := maxDiff(dst, want); d > 1e-4*float64(k) {
			t.Errorf("(%d,%d,%d): max diff %g", m, k, n, d)
		}
	}
}

func TestMulAddAccumulates(t *testing.T) {
	m, k, n := 8, 8, 8
	a := randMat(3, m, k)
	b := randMat(4, k, n)
	dst := make([]float32, m*n)
	for i := range dst {
		dst[i] = 1
	}
	MulAdd(dst, a, b, m, k, n)
	want := refMul(a, b, m, k, n)
	for i := range want {
		if math.Abs(float64(dst[i]-(want[i]+1))) > 1e-4 {
			t.Fatalf("MulAdd wrong at %d: %v vs %v+1", i, dst[i], want[i])
		}
	}
}

func TestStrassenMatchesDirect(t *testing.T) {
	for _, dims := range [][3]int{
		{64, 64, 64},
		{128, 128, 128},
		{256, 256, 256},
		{100, 100, 100}, // even-ish but not power of two
		{127, 129, 131}, // all odd
		{256, 64, 256},
		{65, 256, 65},
		{512, 3, 512}, // thin inner dim never recurses
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(5, m, k)
		b := randMat(6, k, n)
		got := make([]float32, m*n)
		MulStrassen(got, a, b, m, k, n)
		want := make([]float32, m*n)
		Mul(want, a, b, m, k, n)
		if d := maxDiff(got, want); d > 1e-3*math.Sqrt(float64(k)) {
			t.Errorf("(%d,%d,%d): strassen diff %g", m, k, n, d)
		}
	}
}

func TestStrassenProperty(t *testing.T) {
	f := func(seed uint64, mRaw, kRaw, nRaw uint8) bool {
		m := int(mRaw)%96 + 32
		k := int(kRaw)%96 + 32
		n := int(nRaw)%96 + 32
		a := randMat(seed, m, k)
		b := randMat(seed+1, k, n)
		got := make([]float32, m*n)
		MulStrassen(got, a, b, m, k, n)
		want := make([]float32, m*n)
		Mul(want, a, b, m, k, n)
		return maxDiff(got, want) <= 1e-3*math.Sqrt(float64(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestShouldRecurseEquation9(t *testing.T) {
	// Isolate the pure Eq. 9 inequality from the calibrated floor.
	saved := MinSplitDim
	MinSplitDim = 2
	defer func() { MinSplitDim = saved }()

	// For a cube of size s the inequality reduces to s/8·s² > s² + s² + 1.75s²
	// i.e. s > 30. So 32 recurses, 24 does not.
	if !ShouldRecurse(32, 32, 32) {
		t.Error("32³ should recurse")
	}
	if ShouldRecurse(24, 24, 24) {
		t.Error("24³ should not recurse")
	}
	// Thin matrices never recurse regardless of the other dims.
	if ShouldRecurse(1, 1024, 1024) {
		t.Error("m=1 should never recurse")
	}
	if ShouldRecurse(1024, 1, 1024) {
		t.Error("k=1 should never recurse")
	}
}

func TestShouldRecurseCalibratedFloor(t *testing.T) {
	// With the default calibrated floor, sub-128 matrices never split even
	// though Eq. 9 alone would allow it.
	if ShouldRecurse(64, 64, 64) {
		t.Error("64³ must not recurse under the calibrated floor")
	}
	if !ShouldRecurse(128, 128, 128) {
		t.Error("128³ should recurse")
	}
}

func TestStrassenRecursionDepth(t *testing.T) {
	// 256³ splits twice under the default floor: 256 → 128 → 64 leaves.
	a := randMat(7, 256, 256)
	b := randMat(8, 256, 256)
	dst := make([]float32, 256*256)
	st := MulStrassen(dst, a, b, 256, 256, 256)
	if st.Recursions == 0 {
		t.Fatal("expected recursion for 256³")
	}
	if st.BaseCalls != 49 {
		t.Errorf("leaf calls = %d, want 49 (two levels: 256→128→64)", st.BaseCalls)
	}

	// Small matrices take the direct path.
	small := MulStrassen(make([]float32, 16*16), randMat(9, 16, 16), randMat(10, 16, 16), 16, 16, 16)
	if small.Recursions != 0 || small.BaseCalls != 1 {
		t.Errorf("16³: %+v, want direct", small)
	}
}

func TestStrassenMULsSavings(t *testing.T) {
	direct := DirectMULs(1024, 1024, 1024)
	strassen := StrassenMULs(1024, 1024, 1024)
	if strassen >= direct {
		t.Fatalf("strassen MULs %d >= direct %d", strassen, direct)
	}
	// Four levels of recursion: (7/8)⁴ ≈ 0.586 of direct.
	ratio := float64(strassen) / float64(direct)
	if ratio > 0.75 || ratio < 0.4 {
		t.Errorf("unexpected MUL ratio %v", ratio)
	}
	// No-recursion case returns exactly the direct count.
	if StrassenMULs(16, 16, 16) != DirectMULs(16, 16, 16) {
		t.Error("small case must match direct count")
	}
}

func TestMulPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func BenchmarkGEMM256(b *testing.B) {
	a := randMat(1, 256, 256)
	bb := randMat(2, 256, 256)
	dst := make([]float32, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, a, bb, 256, 256, 256)
	}
}

func BenchmarkStrassen256(b *testing.B) {
	a := randMat(1, 256, 256)
	bb := randMat(2, 256, 256)
	dst := make([]float32, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulStrassen(dst, a, bb, 256, 256, 256)
	}
}

// --- PR 3: scratch-backed Strassen and packed panels ---------------------

func TestMulStrassenScratchMatchesMulStrassen(t *testing.T) {
	for _, c := range []struct{ m, k, n int }{
		{64, 64, 64}, {127, 129, 63}, {256, 256, 256}, {100, 500, 30},
	} {
		a := randMat(11, c.m, c.k)
		b := randMat(12, c.k, c.n)
		want := make([]float32, c.m*c.n)
		MulStrassen(want, a, b, c.m, c.k, c.n)
		got := make([]float32, c.m*c.n)
		scratch := make([]float32, StrassenScratch(c.m, c.k, c.n))
		for i := range scratch {
			scratch[i] = -12345 // prove every temporary is overwritten before read
		}
		MulStrassenScratch(got, a, b, c.m, c.k, c.n, scratch)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%dx%dx%d: scratch result differs at %d: %v vs %v",
					c.m, c.k, c.n, i, got[i], want[i])
			}
		}
		// A short slab must still be correct (falls back to allocating).
		got2 := make([]float32, c.m*c.n)
		MulStrassenScratch(got2, a, b, c.m, c.k, c.n, scratch[:len(scratch)/3])
		for i := range want {
			if want[i] != got2[i] {
				t.Fatalf("%dx%dx%d: short-scratch result differs at %d", c.m, c.k, c.n, i)
			}
		}
	}
}

func TestMulStrassenScratchZeroAlloc(t *testing.T) {
	const m, k, n = 256, 256, 256
	a := randMat(13, m, k)
	b := randMat(14, k, n)
	dst := make([]float32, m*n)
	scratch := make([]float32, StrassenScratch(m, k, n))
	if len(scratch) == 0 {
		t.Skip("shape does not recurse under current MinSplitDim")
	}
	allocs := testing.AllocsPerRun(3, func() {
		MulStrassenScratch(dst, a, b, m, k, n, scratch)
	})
	if allocs != 0 {
		t.Errorf("MulStrassenScratch allocated %.1f objects/op, want 0", allocs)
	}
}

func TestPackedMulMatchesMulBitwise(t *testing.T) {
	for _, c := range []struct{ m, k, n int }{
		{1, 8, 16}, {7, 33, 50}, {64, 128, 96}, {5, 100, 1000}, {3, 17, 15},
	} {
		a := randMat(11, c.m, c.k)
		b := randMat(12, c.k, c.n)
		a[0] = 0 // exercise the zero-skip path on both sides
		want := make([]float32, c.m*c.n)
		Mul(want, a, b, c.m, c.k, c.n)
		pb := PackB(b, c.k, c.n)
		got := make([]float32, c.m*c.n)
		pb.MulInto(got, a, c.m)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%dx%dx%d: packed result differs at %d: %v vs %v",
					c.m, c.k, c.n, i, got[i], want[i])
			}
		}
	}
}

func TestPackedMulZeroAlloc(t *testing.T) {
	const m, k, n = 64, 128, 96
	a := randMat(15, m, k)
	pb := PackB(randMat(16, k, n), k, n)
	dst := make([]float32, m*n)
	allocs := testing.AllocsPerRun(5, func() {
		pb.MulInto(dst, a, m)
	})
	if allocs != 0 {
		t.Errorf("PackedB.MulInto allocated %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkPackedVsDirect(b *testing.B) {
	const m, k, n = 256, 256, 256
	a := randMat(17, m, k)
	bm := randMat(18, k, n)
	dst := make([]float32, m*n)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Mul(dst, a, bm, m, k, n)
		}
	})
	pb := PackB(bm, k, n)
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pb.MulInto(dst, a, m)
		}
	})
}
