package matmul

// MinSplitDim is the minimum dimension below which Strassen never splits,
// applied on top of the paper's Equation 9 condition.
//
// Equation 9 counts a matrix addition as costing exactly one multiplication,
// which holds for the hand-scheduled NEON kernels the paper measures. Our
// pure-Go substitute has a fused multiply-add GEMM whose per-element cost is
// lower than a memory-bound standalone addition, so recursing all the way to
// the Eq. 9 bound (31³) loses to the base kernel. A one-time calibration on
// the development host (see DESIGN.md, substitution #1) found 128 to be the
// knee: with it, 256³ breaks roughly even and 512³/1024³ win by 15–25%,
// matching the shape of the paper's Table 3.
//
// It is a variable so the ablation benchmarks can sweep it.
var MinSplitDim = 128
