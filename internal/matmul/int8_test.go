package matmul

import (
	"fmt"
	"testing"
)

func randInt8(seed uint32, n int, sparse bool) []int8 {
	out := make([]int8, n)
	s := seed
	for i := range out {
		s = s*1664525 + 1013904223
		v := int8(s >> 24)
		if v == -128 {
			v = -127
		}
		if sparse && s&3 == 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

func TestPackedBInt8MatchesRef(t *testing.T) {
	for _, tc := range []struct{ m, k, n int }{
		{1, 1, 1}, {1, 3, 5}, {4, 16, 16}, {5, 17, 33}, {7, 64, 20},
		{13, 100, 50}, {8, 15, 40}, // tiny-K fallback
	} {
		t.Run(fmt.Sprintf("%dx%dx%d", tc.m, tc.k, tc.n), func(t *testing.T) {
			a := randInt8(uint32(tc.m*tc.k), tc.m*tc.k, true)
			b := randInt8(uint32(tc.k*tc.n+1), tc.k*tc.n, false)
			want := make([]int32, tc.m*tc.n)
			MulInt8Ref(want, a, b, tc.m, tc.k, tc.n)
			got := make([]int32, tc.m*tc.n)
			pb := PackBInt8(b, tc.k, tc.n)
			pb.MulInto(got, a, tc.m, make([]int32, tc.m))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("element %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPackedBInt8ChunkedRows verifies that computing row blocks separately
// (the way a pooled kernel splits m over workers) yields identical results.
func TestPackedBInt8ChunkedRows(t *testing.T) {
	m, k, n := 23, 48, 37
	a := randInt8(9, m*k, true)
	b := randInt8(10, k*n, false)
	pb := PackBInt8(b, k, n)
	whole := make([]int32, m*n)
	pb.MulInto(whole, a, m, make([]int32, m))
	chunked := make([]int32, m*n)
	for start := 0; start < m; start += 5 {
		end := start + 5
		if end > m {
			end = m
		}
		pb.MulInto(chunked[start*n:end*n], a[start*k:end*k], end-start, make([]int32, end-start))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("element %d: chunked %d != whole %d", i, chunked[i], whole[i])
		}
	}
}

func BenchmarkPackedBInt8(b *testing.B) {
	for _, sz := range []struct{ m, k, n int }{{196, 256, 256}, {784, 128, 128}, {49, 512, 512}} {
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			a := randInt8(1, sz.m*sz.k, true)
			bm := randInt8(2, sz.k*sz.n, false)
			pb := PackBInt8(bm, sz.k, sz.n)
			dst := make([]int32, sz.m*sz.n)
			scratch := make([]int32, sz.m)
			b.SetBytes(int64(sz.m) * int64(sz.k) * int64(sz.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pb.MulInto(dst, a, sz.m, scratch)
			}
		})
	}
}

func BenchmarkPackedBFP32Equivalent(b *testing.B) {
	for _, sz := range []struct{ m, k, n int }{{196, 256, 256}, {784, 128, 128}, {49, 512, 512}} {
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			ai := randInt8(1, sz.m*sz.k, true)
			bi := randInt8(2, sz.k*sz.n, false)
			a := make([]float32, len(ai))
			for i, v := range ai {
				a[i] = float32(v)
			}
			bm := make([]float32, len(bi))
			for i, v := range bi {
				bm[i] = float32(v)
			}
			pb := PackB(bm, sz.k, sz.n)
			dst := make([]float32, sz.m*sz.n)
			b.SetBytes(int64(sz.m) * int64(sz.k) * int64(sz.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pb.MulInto(dst, a, sz.m)
			}
		})
	}
}
