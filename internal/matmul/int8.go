package matmul

// Int8 GEMM for the quantized inference path (paper Section 3.1): symmetric
// int8 operands, int32 accumulation, requantization done by the caller.
//
// A scalar CPU gives int8 no free speed: one int32 multiply costs the same
// issue slot as one float32 multiply (and on most x86 cores integer multiply
// has *half* the throughput of float multiply). The kernel therefore packs
// two columns per 64-bit word and multiplies both with a single integer
// multiply — the SWAR analogue of the SMLAL/SDOT pairing the paper's NEON
// int8 kernels use:
//
//	both operands are biased to unsigned (a+128 ∈ [0,255], b+128 ∈ [0,255]),
//	so every partial product fits in 17 bits and two column accumulators can
//	share one uint64 (bits 0..31 and 32..63) without cross-lane carries for
//	K up to 66051. The bias is undone at the end with the row/column sums:
//	Σ(a+128)(b+128) = Σab + 128·ΣA + 128·ΣB + 16384·K.
//
// Column sums are precomputed at pack time (weights never change); row sums
// are one cheap prepass over the activation block into a caller-provided
// scratch. Accumulation is exact integer arithmetic, so results are
// bitwise-identical to the reference GEMM under any chunking.
const PanelWidthInt8 = 16 // columns per packed panel (8 uint64 words per K step)

// maxSWARDepth is the largest K for which the biased dual-lane accumulation
// cannot overflow a 32-bit lane: 255·255·K ≤ 2^32−1 ⇒ K ≤ 66051.
const maxSWARDepth = 66051

// PackedBInt8 is a pre-packed right-hand int8 GEMM operand: the K×N
// row-major matrix rearranged into ceil(N/PanelWidthInt8) panels whose rows
// hold 8 uint64 words of two biased 16→32-bit column lanes each, plus the
// per-column sums the bias correction needs. Quantized weights are packed
// once at pre-inference time, so steady-state multiplies are allocation-free.
type PackedBInt8 struct {
	K, N    int
	data    []uint64
	colSums []int32 // Σ_p b[p][j], padded to the panel grid
	raw     []int8  // original row-major matrix, for the fallback path
}

// PackBInt8 packs the row-major k×n int8 matrix b.
func PackBInt8(b []int8, k, n int) *PackedBInt8 {
	if len(b) < k*n {
		panic("matmul: PackBInt8 buffer too small for declared dimensions")
	}
	words := PanelWidthInt8 / 2
	panels := (n + PanelWidthInt8 - 1) / PanelWidthInt8
	pb := &PackedBInt8{
		K: k, N: n,
		data:    make([]uint64, panels*k*words),
		colSums: make([]int32, panels*PanelWidthInt8),
		// Own a copy: the fallback path must not read through a caller
		// buffer that may be reused after packing.
		raw: append([]int8(nil), b[:k*n]...),
	}
	for jp := 0; jp < panels; jp++ {
		j0 := jp * PanelWidthInt8
		for p := 0; p < k; p++ {
			row := pb.data[(jp*k+p)*words : (jp*k+p+1)*words]
			for w := 0; w < words; w++ {
				var lo, hi int32 // biased lanes; columns past n stay 0 (bias -128)
				if j := j0 + 2*w; j < n {
					lo = int32(b[p*n+j]) + 128
					pb.colSums[j] += int32(b[p*n+j])
				}
				if j := j0 + 2*w + 1; j < n {
					hi = int32(b[p*n+j]) + 128
					pb.colSums[j] += int32(b[p*n+j])
				}
				row[w] = uint64(uint32(lo)) | uint64(uint32(hi))<<32
			}
		}
	}
	return pb
}

// MulInt8Ref computes the reference int8×int8→int32 GEMM dst = a·b with
// int32 accumulation: a is m×k, b is k×n, both row-major. It is the oracle
// the packed kernel (and the fuzz suite) verifies against.
func MulInt8Ref(dst []int32, a, b []int8, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic("matmul: MulInt8Ref buffer too small for declared dimensions")
	}
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			avi := int32(av)
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += avi * int32(bv)
			}
		}
	}
}

// Int8GemmScratch returns the int32 scratch length MulInto needs for an
// m-row multiply (the row-sum prepass buffer).
func Int8GemmScratch(m int) int { return m }

// MulInto computes dst = a·B for the m×K row-major int8 a, writing the m×N
// row-major int32 product. rowSums must provide at least Int8GemmScratch(m)
// int32 elements of scratch (planner-backed in prepared kernels; its
// contents are overwritten). The result is bitwise-identical to MulInt8Ref
// regardless of row chunking, so prepared kernels may split m across worker
// chunks without affecting the batched≡unbatched serving guarantee.
func (pb *PackedBInt8) MulInto(dst []int32, a []int8, m int, rowSums []int32) {
	k, n := pb.K, pb.N
	if len(a) < m*k || len(dst) < m*n {
		panic("matmul: buffer too small for declared dimensions")
	}
	if k < PanelWidthInt8 || k > maxSWARDepth {
		// Too shallow to amortize the micro-kernel setup (an ic=3 stem
		// layer), or deep enough to overflow the packed lanes; the direct
		// kernel handles both and is exactly equal.
		MulInt8Ref(dst, a, pb.raw, m, k, n)
		return
	}
	if len(rowSums) < m {
		panic("matmul: int8 GEMM rowSums scratch too small (need Int8GemmScratch(m))")
	}
	// Row-sum prepass for the bias correction: one pass over the block.
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		var s int32
		for _, v := range ai {
			s += int32(v)
		}
		rowSums[i] = s
	}
	const words = PanelWidthInt8 / 2
	biasK := int64(16384) * int64(k) // 128·128·K term of the bias correction
	panels := (n + PanelWidthInt8 - 1) / PanelWidthInt8
	var acc [2 * words]uint64
	for jp := 0; jp < panels; jp++ {
		j0 := jp * PanelWidthInt8
		lim := n - j0
		if lim > PanelWidthInt8 {
			lim = PanelWidthInt8
		}
		panel := pb.data[jp*k*words : (jp+1)*k*words]
		cs := pb.colSums[j0 : j0+PanelWidthInt8]
		i := 0
		// 2×16 blocking with explicit accumulator locals so they stay in
		// registers: two rows of a share each streamed panel line, and each
		// uint64 multiply-accumulate advances two columns of one row.
		for ; i+2 <= m; i += 2 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			var c00, c01, c02, c03, c04, c05, c06, c07 uint64
			var c10, c11, c12, c13, c14, c15, c16, c17 uint64
			for p := 0; p < k; p++ {
				av0 := uint64(uint32(int32(a0[p]) + 128))
				av1 := uint64(uint32(int32(a1[p]) + 128))
				bp := panel[p*words : p*words+words : p*words+words]
				v0, v1, v2, v3 := bp[0], bp[1], bp[2], bp[3]
				v4, v5, v6, v7 := bp[4], bp[5], bp[6], bp[7]
				c00 += av0 * v0
				c01 += av0 * v1
				c02 += av0 * v2
				c03 += av0 * v3
				c04 += av0 * v4
				c05 += av0 * v5
				c06 += av0 * v6
				c07 += av0 * v7
				c10 += av1 * v0
				c11 += av1 * v1
				c12 += av1 * v2
				c13 += av1 * v3
				c14 += av1 * v4
				c15 += av1 * v5
				c16 += av1 * v6
				c17 += av1 * v7
			}
			acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
			acc[4], acc[5], acc[6], acc[7] = c04, c05, c06, c07
			unbias(dst[i*n+j0:], acc[:words], rowSums[i], cs, biasK, lim)
			acc[0], acc[1], acc[2], acc[3] = c10, c11, c12, c13
			acc[4], acc[5], acc[6], acc[7] = c14, c15, c16, c17
			unbias(dst[(i+1)*n+j0:], acc[:words], rowSums[i+1], cs, biasK, lim)
		}
		for ; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 uint64
			for p := 0; p < k; p++ {
				av := uint64(uint32(int32(ai[p]) + 128))
				bp := panel[p*words : p*words+words : p*words+words]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
			}
			acc[0], acc[1], acc[2], acc[3] = c0, c1, c2, c3
			acc[4], acc[5], acc[6], acc[7] = c4, c5, c6, c7
			unbias(dst[i*n+j0:], acc[:words], rowSums[i], cs, biasK, lim)
		}
	}
}

// unbias splits the dual-lane accumulators back into columns and removes the
// +128 operand biases: true = lane − 128·ΣA − 128·ΣB_j − 16384·K.
func unbias(dst []int32, acc []uint64, rowSum int32, colSums []int32, biasK int64, lim int) {
	rowTerm := biasK + 128*int64(rowSum)
	for j := 0; j < lim; j++ {
		lane := uint32(acc[j/2] >> (uint(j&1) * 32))
		dst[j] = int32(int64(lane) - rowTerm - 128*int64(colSums[j]))
	}
}

// MulIntoU8 is MulInto for a non-negative left operand: a holds unsigned
// byte values (0..255), the case of every post-ReLU activation tensor. With
// a ≥ 0 only the right operand needs the +128 bias, so a zero activation
// contributes exactly zero to every lane — the correlated-zero skip of the
// float32 kernel works again (quantized post-ReLU activations keep their
// exact zeros, and sparsity is precisely why int8 GEMM pays off), and the
// bias correction shrinks to the row sums: true = lane − 128·Σa_row.
// Results are bitwise-identical to MulInt8Ref on the widened values under
// any row chunking.
func (pb *PackedBInt8) MulIntoU8(dst []int32, a []uint8, m int, rowSums []int32) {
	k, n := pb.K, pb.N
	if len(a) < m*k || len(dst) < m*n {
		panic("matmul: buffer too small for declared dimensions")
	}
	if k < PanelWidthInt8 || k > maxSWARDepth {
		mulU8Ref(dst, a, pb.raw, m, k, n)
		return
	}
	if len(rowSums) < m {
		panic("matmul: int8 GEMM rowSums scratch too small (need Int8GemmScratch(m))")
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		var s int32
		for _, v := range ai {
			s += int32(v)
		}
		rowSums[i] = s
	}
	const words = PanelWidthInt8 / 2
	panels := (n + PanelWidthInt8 - 1) / PanelWidthInt8
	var acc [words]uint64
	for jp := 0; jp < panels; jp++ {
		j0 := jp * PanelWidthInt8
		lim := n - j0
		if lim > PanelWidthInt8 {
			lim = PanelWidthInt8
		}
		panel := pb.data[jp*k*words : (jp+1)*k*words]
		i := 0
		for ; i+2 <= m; i += 2 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			var c00, c01, c02, c03, c04, c05, c06, c07 uint64
			var c10, c11, c12, c13, c14, c15, c16, c17 uint64
			for p := 0; p < k; p++ {
				av0 := uint64(a0[p])
				av1 := uint64(a1[p])
				if av0|av1 == 0 {
					continue
				}
				bp := panel[p*words : p*words+words : p*words+words]
				v0, v1, v2, v3 := bp[0], bp[1], bp[2], bp[3]
				v4, v5, v6, v7 := bp[4], bp[5], bp[6], bp[7]
				c00 += av0 * v0
				c01 += av0 * v1
				c02 += av0 * v2
				c03 += av0 * v3
				c04 += av0 * v4
				c05 += av0 * v5
				c06 += av0 * v6
				c07 += av0 * v7
				c10 += av1 * v0
				c11 += av1 * v1
				c12 += av1 * v2
				c13 += av1 * v3
				c14 += av1 * v4
				c15 += av1 * v5
				c16 += av1 * v6
				c17 += av1 * v7
			}
			acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
			acc[4], acc[5], acc[6], acc[7] = c04, c05, c06, c07
			unbiasU8(dst[i*n+j0:], acc[:], rowSums[i], lim)
			acc[0], acc[1], acc[2], acc[3] = c10, c11, c12, c13
			acc[4], acc[5], acc[6], acc[7] = c14, c15, c16, c17
			unbiasU8(dst[(i+1)*n+j0:], acc[:], rowSums[i+1], lim)
		}
		for ; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 uint64
			for p := 0; p < k; p++ {
				av := uint64(ai[p])
				if av == 0 {
					continue
				}
				bp := panel[p*words : p*words+words : p*words+words]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
			}
			acc[0], acc[1], acc[2], acc[3] = c0, c1, c2, c3
			acc[4], acc[5], acc[6], acc[7] = c4, c5, c6, c7
			unbiasU8(dst[i*n+j0:], acc[:], rowSums[i], lim)
		}
	}
}

// unbiasU8 removes the right-operand bias of the unsigned-A path:
// true = lane − 128·Σa_row.
func unbiasU8(dst []int32, acc []uint64, rowSum int32, lim int) {
	rowTerm := 128 * int64(rowSum)
	for j := 0; j < lim; j++ {
		lane := uint32(acc[j/2] >> (uint(j&1) * 32))
		dst[j] = int32(int64(lane) - rowTerm)
	}
}

// mulU8Ref is the reference unsigned-A × signed-B GEMM for the shapes the
// SWAR kernel does not cover.
func mulU8Ref(dst []int32, a []uint8, b []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			avi := int32(av)
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += avi * int32(bv)
			}
		}
	}
}
