package matmul

// PanelWidth is the column width of a packed GEMM panel in float32
// elements: 16 floats = 64 bytes = one cache line = four NC4HW4 channel
// packs. The packed right-hand operand stores each panel's K rows
// contiguously, so the inner kernel streams one cache line per fused
// multiply-add group instead of striding across a full row-major row.
const PanelWidth = 16

// PackedB is a pre-packed right-hand GEMM operand: the K×N row-major
// matrix rearranged into ceil(N/PanelWidth) panels of layout [K][PanelWidth]
// (zero-padded in the last panel). Weights are packed once at pre-inference
// time (they never change), making every steady-state multiply
// allocation-free and cache-blocked.
type PackedB struct {
	K, N int
	data []float32 // [panels][K][PanelWidth]
	raw  []float32 // the original row-major matrix, for the tiny-K fallback
}

// PackB packs the row-major k×n matrix b.
func PackB(b []float32, k, n int) *PackedB {
	if len(b) < k*n {
		panic("matmul: PackB buffer too small for declared dimensions")
	}
	panels := (n + PanelWidth - 1) / PanelWidth
	pb := &PackedB{K: k, N: n, data: make([]float32, panels*k*PanelWidth), raw: b[:k*n]}
	for jp := 0; jp < panels; jp++ {
		j0 := jp * PanelWidth
		lim := n - j0
		if lim > PanelWidth {
			lim = PanelWidth
		}
		for p := 0; p < k; p++ {
			dst := pb.data[(jp*k+p)*PanelWidth:]
			src := b[p*n+j0:]
			for l := 0; l < lim; l++ {
				dst[l] = src[l]
			}
		}
	}
	return pb
}

// MulInto computes dst = a·B for the m×K row-major a, writing the m×N
// row-major product. The accumulation order per output element is identical
// to Mul's (ascending p with the same zero-skip), so the packed and direct
// kernels produce bitwise-equal results — prepared kernels may pick either
// per chunk without breaking the batched≡unbatched serving guarantee.
func (pb *PackedB) MulInto(dst, a []float32, m int) {
	k, n := pb.K, pb.N
	if len(a) < m*k || len(dst) < m*n {
		panic("matmul: buffer too small for declared dimensions")
	}
	if k < PanelWidth {
		// A depth this shallow cannot amortize the micro-kernel's
		// accumulator setup (e.g. Winograd positions of an ic=3 stem
		// layer); the direct kernel is faster and bitwise-identical.
		Mul(dst, a, pb.raw, m, k, n)
		return
	}
	panels := (n + PanelWidth - 1) / PanelWidth
	// Register blocking: four rows of a share each streamed panel line,
	// quartering the panel traffic — the 4×16 micro-kernel shape NEON GEMMs
	// use, in scalar Go. Accumulation order per output element is unchanged
	// (ascending p), so results stay bitwise equal to Mul's up to the sign
	// of an all-zero dot product.
	var acc0, acc1, acc2, acc3 [PanelWidth]float32
	for jp := 0; jp < panels; jp++ {
		j0 := jp * PanelWidth
		lim := n - j0
		if lim > PanelWidth {
			lim = PanelWidth
		}
		panel := pb.data[jp*k*PanelWidth : (jp+1)*k*PanelWidth]
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := a[i*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			a2 := a[(i+2)*k : (i+3)*k]
			a3 := a[(i+3)*k : (i+4)*k]
			for l := range acc0 {
				acc0[l] = 0
				acc1[l] = 0
				acc2[l] = 0
				acc3[l] = 0
			}
			for p := 0; p < k; p++ {
				av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
				// Post-ReLU activations are sparse and spatially
				// correlated: the four adjacent pixels of this row block
				// are often zero together, so the skip fires for real.
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				bp := panel[p*PanelWidth : p*PanelWidth+PanelWidth]
				for l := 0; l < PanelWidth; l++ {
					v := bp[l]
					acc0[l] += av0 * v
					acc1[l] += av1 * v
					acc2[l] += av2 * v
					acc3[l] += av3 * v
				}
			}
			d0 := dst[i*n+j0:]
			d1 := dst[(i+1)*n+j0:]
			d2 := dst[(i+2)*n+j0:]
			d3 := dst[(i+3)*n+j0:]
			for l := 0; l < lim; l++ {
				d0[l] = acc0[l]
				d1[l] = acc1[l]
				d2[l] = acc2[l]
				d3[l] = acc3[l]
			}
		}
		for ; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			for l := range acc0 {
				acc0[l] = 0
			}
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := panel[p*PanelWidth : p*PanelWidth+PanelWidth]
				for l := 0; l < PanelWidth; l++ {
					acc0[l] += av * bp[l]
				}
			}
			di := dst[i*n+j0:]
			for l := 0; l < lim; l++ {
				di[l] = acc0[l]
			}
		}
	}
}
