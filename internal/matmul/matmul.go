// Package matmul provides the basic matrix-multiplication unit that MNN
// builds every compute-intensive operator on (paper Section 3.5), including
// the Strassen fast algorithm with the paper's Equation 9 recursion cutoff
// (Section 3.3.2).
//
// Matrices are row-major float32. The strided view type lets Strassen
// recurse into quadrants without copying.
package matmul

// view is a strided sub-matrix over a flat buffer.
type view struct {
	data   []float32
	rows   int
	cols   int
	stride int
}

func (v view) row(i int) []float32 { return v.data[i*v.stride : i*v.stride+v.cols] }

func (v view) sub(r0, c0, rows, cols int) view {
	return view{data: v.data[r0*v.stride+c0:], rows: rows, cols: cols, stride: v.stride}
}

// Mul computes dst = a·b with a direct tiled kernel.
// a is m×k, b is k×n, dst is m×n, all row-major and contiguous.
func Mul(dst, a, b []float32, m, k, n int) {
	checkDims(dst, a, b, m, k, n)
	gemm(view{dst, m, n, n}, view{a, m, k, k}, view{b, k, n, n}, false)
}

// MulAdd computes dst += a·b.
func MulAdd(dst, a, b []float32, m, k, n int) {
	checkDims(dst, a, b, m, k, n)
	gemm(view{dst, m, n, n}, view{a, m, k, k}, view{b, k, n, n}, true)
}

func checkDims(dst, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic("matmul: buffer too small for declared dimensions")
	}
}

// gemm is the base kernel: i-p-j loop order so the inner loop streams rows of
// b and dst, with 4-wide manual unrolling standing in for the NEON SIMD the
// paper's kernels use (see DESIGN.md substitution #1).
func gemm(dst, a, b view, accumulate bool) {
	m, k, n := a.rows, a.cols, b.cols
	if !accumulate {
		for i := 0; i < m; i++ {
			di := dst.row(i)
			for j := range di {
				di[j] = 0
			}
		}
	}
	// Block over k to keep the working set of b rows cache-resident.
	const kc = 128
	for p0 := 0; p0 < k; p0 += kc {
		pEnd := p0 + kc
		if pEnd > k {
			pEnd = k
		}
		for i := 0; i < m; i++ {
			ai := a.row(i)
			di := dst.row(i)
			for p := p0; p < pEnd; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b.row(p)
				j := 0
				for ; j+4 <= n; j += 4 {
					di[j] += av * bp[j]
					di[j+1] += av * bp[j+1]
					di[j+2] += av * bp[j+2]
					di[j+3] += av * bp[j+3]
				}
				for ; j < n; j++ {
					di[j] += av * bp[j]
				}
			}
		}
	}
}

// ShouldRecurse evaluates the paper's Equation 9: Strassen recursion
// continues only while the multiplications saved exceed the extra matrix
// additions (4 of size [m/2,k/2], 4 of [n/2,k/2] and 7 of [m/2,n/2]):
//
//	m·n·k − 7·(m/2)(n/2)(k/2) > 4·(m/2)(k/2) + 4·(n/2)(k/2) + 7·(m/2)(n/2).
func ShouldRecurse(m, k, n int) bool {
	if m < MinSplitDim || k < MinSplitDim || n < MinSplitDim {
		return false
	}
	mf, kf, nf := float64(m), float64(k), float64(n)
	saved := mf*nf*kf - 7*(mf/2)*(nf/2)*(kf/2)
	extra := 4*(mf/2)*(kf/2) + 4*(nf/2)*(kf/2) + 7*(mf/2)*(nf/2)
	return saved > extra
}

// Stats reports what a MulStrassen call did; used by tests and the ablation
// benchmarks.
type Stats struct {
	Recursions int // number of Strassen splits performed
	BaseCalls  int // number of direct GEMM leaf calls
}

// StrassenScratch returns the float32 count of temporary storage one
// MulStrassenScratch call of the given shape needs: per recursion level the
// 4 S-matrices [m/2,k/2], 4 T-matrices [k/2,n/2] and 9 product/U matrices
// [m/2,n/2], plus whatever the (sequential, scratch-sharing) sub-multiplies
// need one level down. The pre-inference memory planner sizes per-worker
// scratch slabs with this so steady-state GEMMs never touch the allocator.
// The result tracks the current MinSplitDim cutoff.
func StrassenScratch(m, k, n int) int {
	if !ShouldRecurse(m, k, n) {
		return 0
	}
	m2, k2, n2 := m/2, k/2, n/2
	return 4*m2*k2 + 4*k2*n2 + 9*m2*n2 + StrassenScratch(m2, k2, n2)
}

// MulStrassen computes dst = a·b using the Winograd variant of Strassen's
// algorithm (7 multiplications, 15 additions) recursing per Equation 9.
// Odd dimensions are handled by peeling the last row/column strips and
// fixing them up with direct GEMM, so any shape is accepted. Temporaries
// are heap-allocated; prepared kernels use MulStrassenScratch instead.
func MulStrassen(dst, a, b []float32, m, k, n int) Stats {
	return MulStrassenScratch(dst, a, b, m, k, n, make([]float32, StrassenScratch(m, k, n)))
}

// MulStrassenScratch is MulStrassen computing all temporaries inside the
// caller-provided scratch slab (at least StrassenScratch(m, k, n) floats; a
// short slab falls back to allocating the shortfall). Results are bitwise
// identical to MulStrassen: the scratch only changes where the temporaries
// live, not the operation order.
func MulStrassenScratch(dst, a, b []float32, m, k, n int, scratch []float32) Stats {
	checkDims(dst, a, b, m, k, n)
	var st Stats
	strassen(view{dst, m, n, n}, view{a, m, k, k}, view{b, k, n, n}, &st, scratch)
	return st
}

// carve slices an r×c matrix off the front of scratch, falling back to the
// allocator when the slab runs short (e.g. MinSplitDim was lowered between
// planning and running).
func carve(scratch []float32, r, c int) (view, []float32) {
	sz := r * c
	if len(scratch) < sz {
		return view{make([]float32, sz), r, c, c}, scratch
	}
	return view{scratch[:sz], r, c, c}, scratch[sz:]
}

func strassen(dst, a, b view, st *Stats, scratch []float32) {
	m, k, n := a.rows, a.cols, b.cols
	if !ShouldRecurse(m, k, n) {
		st.BaseCalls++
		gemm(dst, a, b, false)
		return
	}
	st.Recursions++

	m2, k2, n2 := m/2, k/2, n/2

	a11 := a.sub(0, 0, m2, k2)
	a12 := a.sub(0, k2, m2, k2)
	a21 := a.sub(m2, 0, m2, k2)
	a22 := a.sub(m2, k2, m2, k2)
	b11 := b.sub(0, 0, k2, n2)
	b12 := b.sub(0, n2, k2, n2)
	b21 := b.sub(k2, 0, k2, n2)
	b22 := b.sub(k2, n2, k2, n2)
	c11 := dst.sub(0, 0, m2, n2)
	c12 := dst.sub(0, n2, m2, n2)
	c21 := dst.sub(m2, 0, m2, n2)
	c22 := dst.sub(m2, n2, m2, n2)

	// Winograd's variant: 4 S-additions on [m/2,k/2], 4 T-additions on
	// [k/2,n/2], 7 U-additions on [m/2,n/2] — the exact counts in Eq. 9.
	// All temporaries carve sequentially off the scratch slab; the seven
	// sub-multiplies run one after another and share the remainder.
	s1, scratch := carve(scratch, m2, k2)
	s2, scratch := carve(scratch, m2, k2)
	s3, scratch := carve(scratch, m2, k2)
	s4, scratch := carve(scratch, m2, k2)
	addInto(s1, a21, a22) // S1 = A21 + A22
	subInto(s2, s1, a11)  // S2 = S1 - A11
	subInto(s3, a11, a21) // S3 = A11 - A21
	subInto(s4, a12, s2)  // S4 = A12 - S2

	t1, scratch := carve(scratch, k2, n2)
	t2, scratch := carve(scratch, k2, n2)
	t3, scratch := carve(scratch, k2, n2)
	t4, scratch := carve(scratch, k2, n2)
	subInto(t1, b12, b11) // T1 = B12 - B11
	subInto(t2, b22, t1)  // T2 = B22 - T1
	subInto(t3, b22, b12) // T3 = B22 - B12
	subInto(t4, t2, b21)  // T4 = T2 - B21

	m1, scratch := carve(scratch, m2, n2)
	m2m, scratch := carve(scratch, m2, n2)
	m3, scratch := carve(scratch, m2, n2)
	m4, scratch := carve(scratch, m2, n2)
	m5, scratch := carve(scratch, m2, n2)
	m6, scratch := carve(scratch, m2, n2)
	m7, scratch := carve(scratch, m2, n2)
	strassen(m1, a11, b11, st, scratch)  // M1 = A11·B11
	strassen(m2m, a12, b21, st, scratch) // M2 = A12·B21
	strassen(m3, s4, b22, st, scratch)   // M3 = S4·B22
	strassen(m4, a22, t4, st, scratch)   // M4 = A22·T4
	strassen(m5, s1, t1, st, scratch)    // M5 = S1·T1
	strassen(m6, s2, t2, st, scratch)    // M6 = S2·T2
	strassen(m7, s3, t3, st, scratch)    // M7 = S3·T3

	// U-phase (7 additions on [m/2,n/2]):
	addInto(c11, m1, m2m) // C11 = M1 + M2
	u2, scratch := carve(scratch, m2, n2)
	addInto(u2, m1, m6) // U2 = M1 + M6
	u3, _ := carve(scratch, m2, n2)
	addInto(u3, u2, m7)  // U3 = U2 + M7
	addInto(u2, u2, m5)  // U4 = U2 + M5 (reuse u2)
	addInto(c12, u2, m3) // C12 = U4 + M3
	subInto(c21, u3, m4) // C21 = U3 - M4
	addInto(c22, u3, m5) // C22 = U3 + M5

	// Peel fixups for odd dimensions.
	if k%2 == 1 {
		// Contribution of the last column of a × last row of b to the even core.
		aCol := a.sub(0, k-1, 2*m2, 1)
		bRow := b.sub(k-1, 0, 1, 2*n2)
		gemm(dst.sub(0, 0, 2*m2, 2*n2), aCol, bRow, true)
	}
	if m%2 == 1 {
		// Last row of dst = last row of a × all of b.
		gemm(dst.sub(m-1, 0, 1, n), a.sub(m-1, 0, 1, k), b, false)
	}
	if n%2 == 1 {
		// Last column of dst (excluding the corner already done above).
		rows := m
		if m%2 == 1 {
			rows = m - 1
		}
		if rows > 0 {
			gemm(dst.sub(0, n-1, rows, 1), a.sub(0, 0, rows, k), b.sub(0, n-1, k, 1), false)
		}
	}
}

func addInto(dst, x, y view) {
	for i := 0; i < dst.rows; i++ {
		d, xr, yr := dst.row(i), x.row(i), y.row(i)
		for j := range d {
			d[j] = xr[j] + yr[j]
		}
	}
}

func subInto(dst, x, y view) {
	for i := 0; i < dst.rows; i++ {
		d, xr, yr := dst.row(i), x.row(i), y.row(i)
		for j := range d {
			d[j] = xr[j] - yr[j]
		}
	}
}

// DirectMULs returns the multiplication count of a direct m×k×n GEMM, the
// MUL term used by the cost model.
func DirectMULs(m, k, n int) int64 { return int64(m) * int64(k) * int64(n) }

// StrassenMULs estimates the multiplication count of MulStrassen by walking
// the same recursion tree as the implementation.
func StrassenMULs(m, k, n int) int64 {
	if !ShouldRecurse(m, k, n) {
		return DirectMULs(m, k, n)
	}
	muls := 7 * StrassenMULs(m/2, k/2, n/2)
	if k%2 == 1 {
		muls += DirectMULs(2*(m/2), 1, 2*(n/2))
	}
	if m%2 == 1 {
		muls += DirectMULs(1, k, n)
	}
	if n%2 == 1 {
		rows := m
		if m%2 == 1 {
			rows = m - 1
		}
		muls += DirectMULs(rows, k, 1)
	}
	return muls
}
