package graph

import (
	"fmt"
	"sort"

	"mnn/internal/tensor"
)

// Node is a single operator instance in the graph.
type Node struct {
	Name    string
	Op      OpType
	Inputs  []string // activation tensor names consumed
	Outputs []string // activation tensor names produced
	// WeightNames references constants in Graph.Weights in the order the
	// kernel expects (e.g. [filter, bias] for Conv2D).
	WeightNames []string
	Attrs       any
}

// Graph is a full network: nodes plus constant weights.
type Graph struct {
	Name    string
	Nodes   []*Node
	Weights map[string]*tensor.Tensor
	// InputNames / OutputNames define the session interface.
	InputNames  []string
	OutputNames []string
	// ActScales holds calibrated per-tensor activation scales (symmetric
	// int8: real ≈ q·scale), keyed by activation tensor name. Populated by
	// quant.Calibrate, persisted by the converter, and consumed by the int8
	// execution path; nil/missing entries make quantized kernels fall back
	// to dynamic per-sample scales.
	ActScales map[string]float32
}

// New creates an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, Weights: map[string]*tensor.Tensor{}}
}

// AddWeight registers a constant tensor.
func (g *Graph) AddWeight(name string, t *tensor.Tensor) {
	if _, dup := g.Weights[name]; dup {
		panic(fmt.Sprintf("graph: duplicate weight %q", name))
	}
	g.Weights[name] = t
}

// AddNode appends a node. Nodes must be appended in topological order;
// Validate checks this.
func (g *Graph) AddNode(n *Node) *Node {
	g.Nodes = append(g.Nodes, n)
	return n
}

// Node returns the node with the given name, or nil.
func (g *Graph) Node(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Producer returns the node producing the named activation, or nil.
func (g *Graph) Producer(tensorName string) *Node {
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			if o == tensorName {
				return n
			}
		}
	}
	return nil
}

// Consumers returns the nodes consuming the named activation.
func (g *Graph) Consumers(tensorName string) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == tensorName {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// Validate checks structural invariants:
//   - node names and output tensor names are unique,
//   - every input is produced by an earlier node (topological order) or is a
//     declared graph input,
//   - weight references resolve,
//   - attribute types match op types,
//   - declared graph outputs exist.
func (g *Graph) Validate() error {
	nodeNames := map[string]bool{}
	produced := map[string]bool{}  // tensors produced by a node (duplicate check)
	available := map[string]bool{} // tensors consumable at the current position
	for _, in := range g.InputNames {
		available[in] = true
	}
	for i, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("graph %q: node %d has empty name", g.Name, i)
		}
		if nodeNames[n.Name] {
			return fmt.Errorf("graph %q: duplicate node name %q", g.Name, n.Name)
		}
		nodeNames[n.Name] = true
		if err := checkAttrs(n); err != nil {
			return fmt.Errorf("graph %q: node %q: %w", g.Name, n.Name, err)
		}
		if n.Op != OpInput {
			for _, in := range n.Inputs {
				if !available[in] {
					return fmt.Errorf("graph %q: node %q consumes %q before it is produced", g.Name, n.Name, in)
				}
			}
		}
		for _, w := range n.WeightNames {
			if _, ok := g.Weights[w]; !ok {
				return fmt.Errorf("graph %q: node %q references missing weight %q", g.Name, n.Name, w)
			}
		}
		for _, o := range n.Outputs {
			if produced[o] {
				return fmt.Errorf("graph %q: tensor %q produced twice", g.Name, o)
			}
			produced[o] = true
			available[o] = true
		}
	}
	for _, o := range g.OutputNames {
		if !available[o] {
			return fmt.Errorf("graph %q: declared output %q is never produced", g.Name, o)
		}
	}
	return nil
}

func checkAttrs(n *Node) error {
	ok := false
	switch n.Op {
	case OpInput:
		_, ok = n.Attrs.(*InputAttrs)
	case OpConv2D, OpDeconv2D:
		_, ok = n.Attrs.(*Conv2DAttrs)
	case OpPool:
		_, ok = n.Attrs.(*PoolAttrs)
	case OpReLU, OpReLU6, OpSigmoid, OpTanh, OpGELU:
		ok = n.Attrs == nil
	case OpBatchNorm:
		_, ok = n.Attrs.(*BatchNormAttrs)
	case OpScale:
		_, ok = n.Attrs.(*ScaleAttrs)
	case OpEltwise:
		_, ok = n.Attrs.(*EltwiseAttrs)
	case OpConcat:
		_, ok = n.Attrs.(*ConcatAttrs)
	case OpInnerProduct:
		_, ok = n.Attrs.(*InnerProductAttrs)
	case OpSoftmax:
		_, ok = n.Attrs.(*SoftmaxAttrs)
	case OpFlatten:
		_, ok = n.Attrs.(*FlattenAttrs)
	case OpReshape:
		_, ok = n.Attrs.(*ReshapeAttrs)
	case OpDropout:
		_, ok = n.Attrs.(*DropoutAttrs)
	case OpPadding:
		_, ok = n.Attrs.(*PaddingAttrs)
	case OpLayerNorm:
		_, ok = n.Attrs.(*LayerNormAttrs)
	case OpMatMul:
		_, ok = n.Attrs.(*MatMulAttrs)
	case OpTranspose:
		_, ok = n.Attrs.(*TransposeAttrs)
	default:
		return fmt.Errorf("unknown op type %v", n.Op)
	}
	if !ok {
		return fmt.Errorf("op %v has attrs of type %T", n.Op, n.Attrs)
	}
	return nil
}

// TopoSort returns the nodes reordered topologically (stable for already-
// sorted graphs). It errors on cycles or dangling inputs.
func (g *Graph) TopoSort() ([]*Node, error) {
	producerOf := map[string]*Node{}
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			producerOf[o] = n
		}
	}
	isGraphInput := map[string]bool{}
	for _, in := range g.InputNames {
		isGraphInput[in] = true
	}
	indeg := map[*Node]int{}
	dependents := map[*Node][]*Node{}
	for _, n := range g.Nodes {
		indeg[n] = 0
	}
	for _, n := range g.Nodes {
		if n.Op == OpInput {
			continue
		}
		for _, in := range n.Inputs {
			p, ok := producerOf[in]
			if !ok {
				if isGraphInput[in] {
					continue
				}
				return nil, fmt.Errorf("graph %q: tensor %q has no producer", g.Name, in)
			}
			indeg[n]++
			dependents[p] = append(dependents[p], n)
		}
	}
	var ready []*Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var order []*Node
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, d := range dependents[n] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("graph %q: cycle detected (%d of %d nodes ordered)", g.Name, len(order), len(g.Nodes))
	}
	return order, nil
}

// OpCensus counts nodes per op type, sorted by name for stable output.
func (g *Graph) OpCensus() []struct {
	Op    OpType
	Count int
} {
	counts := map[OpType]int{}
	for _, n := range g.Nodes {
		counts[n.Op]++
	}
	keys := make([]OpType, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	out := make([]struct {
		Op    OpType
		Count int
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			Op    OpType
			Count int
		}{k, counts[k]})
	}
	return out
}

// Clone deep-copies the graph structure. Weight tensors are shared (they are
// immutable by convention); attribute structs are copied shallowly except for
// slices, which are duplicated.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.InputNames = append([]string(nil), g.InputNames...)
	out.OutputNames = append([]string(nil), g.OutputNames...)
	for k, v := range g.Weights {
		out.Weights[k] = v
	}
	if g.ActScales != nil {
		out.ActScales = make(map[string]float32, len(g.ActScales))
		for k, v := range g.ActScales {
			out.ActScales[k] = v
		}
	}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, cloneNode(n))
	}
	return out
}

func cloneNode(n *Node) *Node {
	c := &Node{
		Name:        n.Name,
		Op:          n.Op,
		Inputs:      append([]string(nil), n.Inputs...),
		Outputs:     append([]string(nil), n.Outputs...),
		WeightNames: append([]string(nil), n.WeightNames...),
	}
	switch a := n.Attrs.(type) {
	case *InputAttrs:
		c.Attrs = &InputAttrs{Shape: append([]int(nil), a.Shape...)}
	case *Conv2DAttrs:
		cp := *a
		c.Attrs = &cp
	case *PoolAttrs:
		cp := *a
		c.Attrs = &cp
	case *BatchNormAttrs:
		cp := *a
		c.Attrs = &cp
	case *ScaleAttrs:
		cp := *a
		c.Attrs = &cp
	case *EltwiseAttrs:
		cp := *a
		c.Attrs = &cp
	case *ConcatAttrs:
		cp := *a
		c.Attrs = &cp
	case *InnerProductAttrs:
		cp := *a
		c.Attrs = &cp
	case *SoftmaxAttrs:
		cp := *a
		c.Attrs = &cp
	case *FlattenAttrs:
		cp := *a
		c.Attrs = &cp
	case *ReshapeAttrs:
		c.Attrs = &ReshapeAttrs{Shape: append([]int(nil), a.Shape...)}
	case *DropoutAttrs:
		cp := *a
		c.Attrs = &cp
	case *PaddingAttrs:
		cp := *a
		c.Attrs = &cp
	case *LayerNormAttrs:
		cp := *a
		c.Attrs = &cp
	case *MatMulAttrs:
		cp := *a
		c.Attrs = &cp
	case *TransposeAttrs:
		c.Attrs = &TransposeAttrs{Perm: append([]int(nil), a.Perm...)}
	case nil:
		c.Attrs = nil
	default:
		panic(fmt.Sprintf("graph: cloneNode: unknown attrs %T", n.Attrs))
	}
	return c
}
