// Package graph defines the computational-graph intermediate representation
// shared by the converter, the offline optimizer, and the runtime engine.
//
// A Graph is a list of Nodes in topological order plus a table of named
// constant tensors (weights). Activations are referenced by string name; the
// engine assigns buffers to them during pre-inference (paper Section 3.2).
package graph

import "fmt"

// OpType identifies an operator kind.
type OpType uint8

// Operator kinds. The set covers every operator needed by the paper's
// benchmark networks (MobileNet-v1/v2, SqueezeNet-v1.0/1.1, ResNet-18/50,
// Inception-v3) plus deconvolution, which Figure 1 of the paper lists among
// the operator-diversity examples.
const (
	OpInput OpType = iota
	OpConv2D
	OpDeconv2D
	OpPool
	OpReLU
	OpReLU6
	OpSigmoid
	OpTanh
	OpBatchNorm
	OpScale
	OpEltwise
	OpConcat
	OpInnerProduct
	OpSoftmax
	OpFlatten
	OpReshape
	OpDropout
	OpPadding
	OpLayerNorm
	OpGELU
	OpMatMul
	OpTranspose
	opCount // sentinel; keep last
)

var opNames = [...]string{
	OpInput:        "Input",
	OpConv2D:       "Conv2D",
	OpDeconv2D:     "Deconv2D",
	OpPool:         "Pool",
	OpReLU:         "ReLU",
	OpReLU6:        "ReLU6",
	OpSigmoid:      "Sigmoid",
	OpTanh:         "Tanh",
	OpBatchNorm:    "BatchNorm",
	OpScale:        "Scale",
	OpEltwise:      "Eltwise",
	OpConcat:       "Concat",
	OpInnerProduct: "InnerProduct",
	OpSoftmax:      "Softmax",
	OpFlatten:      "Flatten",
	OpReshape:      "Reshape",
	OpDropout:      "Dropout",
	OpPadding:      "Padding",
	OpLayerNorm:    "LayerNorm",
	OpGELU:         "GELU",
	OpMatMul:       "MatMul",
	OpTranspose:    "Transpose",
}

func (o OpType) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OpType(%d)", uint8(o))
}

// NumOpTypes returns the number of defined operator kinds.
func NumOpTypes() int { return int(opCount) }

// AllOpTypes lists every defined operator kind.
func AllOpTypes() []OpType {
	out := make([]OpType, 0, int(opCount))
	for i := OpType(0); i < opCount; i++ {
		out = append(out, i)
	}
	return out
}

// ParseOpType resolves a name produced by OpType.String.
func ParseOpType(name string) (OpType, error) {
	for i, n := range opNames {
		if n == name {
			return OpType(i), nil
		}
	}
	return 0, fmt.Errorf("graph: unknown op type %q", name)
}

// PadMode selects how convolution padding is derived.
type PadMode uint8

const (
	// PadExplicit uses the PadH/PadW attribute values on all four sides.
	PadExplicit PadMode = iota
	// PadSame pads so that output spatial size = ceil(input/stride).
	PadSame
	// PadValid applies no padding.
	PadValid
)

func (p PadMode) String() string {
	switch p {
	case PadExplicit:
		return "explicit"
	case PadSame:
		return "same"
	case PadValid:
		return "valid"
	default:
		return fmt.Sprintf("PadMode(%d)", uint8(p))
	}
}

// Conv2DAttrs parameterizes convolution and deconvolution. Weight layout is
// [oc, ic/group, kh, kw]; bias is [oc].
type Conv2DAttrs struct {
	KernelH, KernelW     int
	StrideH, StrideW     int
	DilationH, DilationW int
	PadH, PadW           int
	PadMode              PadMode
	Group                int // ic == oc == Group means depthwise
	OutputCount          int // oc
	InputCount           int // ic (filled by shape inference if zero)
	// Fused activation, produced by the offline optimizer.
	ReLU  bool
	ReLU6 bool
}

// IsDepthwise reports whether the conv is a depthwise convolution.
func (a *Conv2DAttrs) IsDepthwise() bool {
	return a.Group > 1 && a.Group == a.OutputCount && a.Group == a.InputCount
}

// PoolType selects the pooling reduction.
type PoolType uint8

const (
	MaxPool PoolType = iota
	AvgPool
)

func (p PoolType) String() string {
	if p == MaxPool {
		return "max"
	}
	return "avg"
}

// PoolAttrs parameterizes spatial pooling.
type PoolAttrs struct {
	Type             PoolType
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	PadMode          PadMode
	Global           bool // pool over the whole spatial extent
	// CountIncludePad: when true, average pooling divides by the full
	// kernel area even where the window overlaps padding (Caffe style).
	CountIncludePad bool
}

// EltwiseType selects the elementwise binary reduction.
type EltwiseType uint8

const (
	EltSum EltwiseType = iota
	EltProd
	EltMax
	EltSub
)

func (e EltwiseType) String() string {
	switch e {
	case EltSum:
		return "sum"
	case EltProd:
		return "prod"
	case EltMax:
		return "max"
	case EltSub:
		return "sub"
	default:
		return fmt.Sprintf("EltwiseType(%d)", uint8(e))
	}
}

// EltwiseAttrs parameterizes Eltwise.
type EltwiseAttrs struct {
	Type EltwiseType
	// Fused activation.
	ReLU bool
}

// ConcatAttrs parameterizes Concat. Only Axis==1 (channel) is exercised by
// the benchmark networks but any axis is supported.
type ConcatAttrs struct{ Axis int }

// BatchNormAttrs parameterizes batch normalization (inference form).
// Constants (mean/var/gamma/beta) live in the graph weight table under the
// node's extra input names.
type BatchNormAttrs struct{ Eps float32 }

// ScaleAttrs parameterizes channelwise scale+shift.
type ScaleAttrs struct{ HasBias bool }

// InnerProductAttrs parameterizes fully-connected layers. Weight layout is
// [out, in]; bias [out].
type InnerProductAttrs struct {
	OutputCount int
	ReLU        bool
}

// SoftmaxAttrs parameterizes softmax.
type SoftmaxAttrs struct{ Axis int }

// FlattenAttrs flattens from Axis onward into one dimension.
type FlattenAttrs struct{ Axis int }

// ReshapeAttrs reshapes to Shape; a -1 entry is inferred.
type ReshapeAttrs struct{ Shape []int }

// DropoutAttrs is inference-time identity; kept so converted graphs round-trip.
type DropoutAttrs struct{ Ratio float32 }

// PaddingAttrs zero-pads spatial dims.
type PaddingAttrs struct{ Top, Bottom, Left, Right int }

// InputAttrs declares a graph input shape.
type InputAttrs struct{ Shape []int }

// LayerNormAttrs parameterizes layer normalization over the last axis.
// Gamma/beta constants live in the weight table under the node's
// WeightNames (each shaped [D] where D is the last input dim).
type LayerNormAttrs struct{ Eps float32 }

// MatMulAttrs parameterizes MatMul in its three forms:
//
//   - Weight form (Heads == 0): one activation input [.., M, K] times a
//     constant weight WeightNames[0] shaped [K, N]; optional bias
//     WeightNames[1] shaped [N]. Leading dims are flattened into rows.
//   - Batched QK form (Heads >= 1, TransposeB): two activation inputs
//     [B, LA, D] x [B, LB, D] with D divisible by Heads, producing
//     per-head scores [B, Heads*LA, LB].
//   - Batched AV form (Heads >= 1, !TransposeB): [B, Heads*LA, LB] x
//     [B, LB, D] producing [B, LA, D].
//
// Scale, when non-zero, multiplies every output element (attention's
// 1/sqrt(d_head)); it is applied as a single multiply after the dot
// product so the result is bitwise independent of row chunking.
type MatMulAttrs struct {
	Heads      int
	TransposeB bool
	Scale      float32
}

// TransposeAttrs permutes tensor axes: output dim i = input dim Perm[i].
type TransposeAttrs struct{ Perm []int }
