package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, one box per operator
// colored by kind, with tensor shapes on the edges when a ShapeMap is
// provided (pass nil to omit). A visualization tool in the spirit of the
// paper's "more tools for user convenience".
func WriteDOT(g *Graph, shapes ShapeMap, w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Op)
		if a, ok := n.Attrs.(*Conv2DAttrs); ok {
			label = fmt.Sprintf("%s\\n%v %dx%d s%d", n.Name, n.Op, a.KernelH, a.KernelW, a.StrideH)
			if a.Group > 1 {
				label += fmt.Sprintf(" g%d", a.Group)
			}
		}
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%q];\n", n.Name, label, dotColor(n.Op))
	}
	producer := map[string]string{}
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			producer[o] = n.Name
		}
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			p, ok := producer[in]
			if !ok {
				continue
			}
			if shapes != nil {
				if s, ok := shapes[in]; ok {
					fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", p, n.Name, fmt.Sprint(s))
					continue
				}
			}
			fmt.Fprintf(&b, "  %q -> %q;\n", p, n.Name)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotColor(op OpType) string {
	switch op {
	case OpConv2D, OpDeconv2D:
		return "lightblue"
	case OpInnerProduct:
		return "lightsalmon"
	case OpPool:
		return "palegreen"
	case OpEltwise, OpConcat:
		return "khaki"
	case OpInput:
		return "white"
	case OpSoftmax:
		return "plum"
	default:
		return "lightgrey"
	}
}
