package graph

import (
	"fmt"

	"mnn/internal/tensor"
)

// ShapeMap maps activation tensor names to inferred shapes.
type ShapeMap map[string][]int

// InferShapes walks the graph in node order and computes the shape of every
// activation tensor. This is the first step of MNN's pre-inference: with a
// fixed input size, every intermediate extent — and therefore the entire
// memory plan — is known before any arithmetic runs (paper Section 3.2).
//
// overrideInputs optionally replaces declared input shapes (the "resize"
// path); pass nil to use the shapes recorded on Input nodes.
func InferShapes(g *Graph, overrideInputs map[string][]int) (ShapeMap, error) {
	shapes := ShapeMap{}
	for _, n := range g.Nodes {
		if err := inferNode(g, n, shapes, overrideInputs); err != nil {
			return nil, fmt.Errorf("shape inference: node %q (%v): %w", n.Name, n.Op, err)
		}
	}
	return shapes, nil
}

func inferNode(g *Graph, n *Node, shapes ShapeMap, overrides map[string][]int) error {
	in := func(i int) ([]int, error) {
		if i >= len(n.Inputs) {
			return nil, fmt.Errorf("missing input %d", i)
		}
		s, ok := shapes[n.Inputs[i]]
		if !ok {
			return nil, fmt.Errorf("input %q has no shape", n.Inputs[i])
		}
		return s, nil
	}
	setOut := func(i int, s []int) {
		shapes[n.Outputs[i]] = s
	}

	switch n.Op {
	case OpInput:
		a := n.Attrs.(*InputAttrs)
		shape := a.Shape
		if overrides != nil {
			if s, ok := overrides[n.Outputs[0]]; ok {
				shape = s
			}
		}
		setOut(0, append([]int(nil), shape...))
		return nil

	case OpConv2D:
		a := n.Attrs.(*Conv2DAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) != 4 {
			return fmt.Errorf("conv input must be rank 4, got %v", s)
		}
		if a.InputCount == 0 {
			a.InputCount = s[1]
		} else if a.InputCount != s[1] {
			return fmt.Errorf("conv expects %d input channels, got %d", a.InputCount, s[1])
		}
		if a.Group > 0 && s[1]%a.Group != 0 {
			return fmt.Errorf("input channels %d not divisible by group %d", s[1], a.Group)
		}
		oh, ow, err := convOutputSize(s[2], s[3], a)
		if err != nil {
			return err
		}
		setOut(0, []int{s[0], a.OutputCount, oh, ow})
		return nil

	case OpDeconv2D:
		a := n.Attrs.(*Conv2DAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) != 4 {
			return fmt.Errorf("deconv input must be rank 4, got %v", s)
		}
		if a.InputCount == 0 {
			a.InputCount = s[1]
		}
		kh := (a.KernelH-1)*dilOr1(a.DilationH) + 1
		kw := (a.KernelW-1)*dilOr1(a.DilationW) + 1
		oh := (s[2]-1)*a.StrideH + kh - 2*a.PadH
		ow := (s[3]-1)*a.StrideW + kw - 2*a.PadW
		if oh <= 0 || ow <= 0 {
			return fmt.Errorf("deconv output %dx%d not positive", oh, ow)
		}
		setOut(0, []int{s[0], a.OutputCount, oh, ow})
		return nil

	case OpPool:
		a := n.Attrs.(*PoolAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) != 4 {
			return fmt.Errorf("pool input must be rank 4, got %v", s)
		}
		if a.Global {
			setOut(0, []int{s[0], s[1], 1, 1})
			return nil
		}
		oh, ow, err := poolOutputSize(s[2], s[3], a)
		if err != nil {
			return err
		}
		setOut(0, []int{s[0], s[1], oh, ow})
		return nil

	case OpReLU, OpReLU6, OpSigmoid, OpTanh, OpDropout:
		s, err := in(0)
		if err != nil {
			return err
		}
		setOut(0, append([]int(nil), s...))
		return nil

	case OpBatchNorm, OpScale:
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) != 4 {
			return fmt.Errorf("%v input must be rank 4, got %v", n.Op, s)
		}
		setOut(0, append([]int(nil), s...))
		return nil

	case OpEltwise:
		s0, err := in(0)
		if err != nil {
			return err
		}
		for i := 1; i < len(n.Inputs); i++ {
			si, err := in(i)
			if err != nil {
				return err
			}
			if !tensor.EqualShape(s0, si) {
				return fmt.Errorf("eltwise shape mismatch %v vs %v", s0, si)
			}
		}
		setOut(0, append([]int(nil), s0...))
		return nil

	case OpConcat:
		a := n.Attrs.(*ConcatAttrs)
		s0, err := in(0)
		if err != nil {
			return err
		}
		if a.Axis < 0 || a.Axis >= len(s0) {
			return fmt.Errorf("concat axis %d out of range for rank %d", a.Axis, len(s0))
		}
		out := append([]int(nil), s0...)
		for i := 1; i < len(n.Inputs); i++ {
			si, err := in(i)
			if err != nil {
				return err
			}
			if len(si) != len(s0) {
				return fmt.Errorf("concat rank mismatch %v vs %v", s0, si)
			}
			for d := range si {
				if d == a.Axis {
					continue
				}
				if si[d] != s0[d] {
					return fmt.Errorf("concat non-axis dim %d mismatch %v vs %v", d, s0, si)
				}
			}
			out[a.Axis] += si[a.Axis]
		}
		setOut(0, out)
		return nil

	case OpInnerProduct:
		a := n.Attrs.(*InnerProductAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		batch := s[0]
		setOut(0, []int{batch, a.OutputCount})
		return nil

	case OpSoftmax:
		s, err := in(0)
		if err != nil {
			return err
		}
		setOut(0, append([]int(nil), s...))
		return nil

	case OpFlatten:
		a := n.Attrs.(*FlattenAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if a.Axis < 0 || a.Axis > len(s) {
			return fmt.Errorf("flatten axis %d out of range", a.Axis)
		}
		out := append([]int(nil), s[:a.Axis]...)
		rest := 1
		for _, d := range s[a.Axis:] {
			rest *= d
		}
		out = append(out, rest)
		setOut(0, out)
		return nil

	case OpReshape:
		a := n.Attrs.(*ReshapeAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		total := tensor.NumElements(s)
		out := append([]int(nil), a.Shape...)
		negIdx := -1
		prod := 1
		for i, d := range out {
			if d == -1 {
				if negIdx >= 0 {
					return fmt.Errorf("reshape with multiple -1 dims: %v", out)
				}
				negIdx = i
			} else {
				prod *= d
			}
		}
		if negIdx >= 0 {
			if prod == 0 || total%prod != 0 {
				return fmt.Errorf("reshape %v incompatible with %d elements", out, total)
			}
			out[negIdx] = total / prod
		} else if prod != total {
			return fmt.Errorf("reshape %v has %d elements, input has %d", out, prod, total)
		}
		setOut(0, out)
		return nil

	case OpPadding:
		a := n.Attrs.(*PaddingAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) != 4 {
			return fmt.Errorf("padding input must be rank 4, got %v", s)
		}
		setOut(0, []int{s[0], s[1], s[2] + a.Top + a.Bottom, s[3] + a.Left + a.Right})
		return nil

	case OpLayerNorm:
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(s) < 2 {
			return fmt.Errorf("layernorm input must be rank >= 2, got %v", s)
		}
		d := s[len(s)-1]
		for _, wn := range n.WeightNames {
			w, ok := g.Weights[wn]
			if !ok {
				return fmt.Errorf("layernorm weight %q missing", wn)
			}
			ws := w.Shape()
			if len(ws) != 1 || ws[0] != d {
				return fmt.Errorf("layernorm weight %q shape %v, want [%d]", wn, ws, d)
			}
		}
		setOut(0, append([]int(nil), s...))
		return nil

	case OpGELU:
		s, err := in(0)
		if err != nil {
			return err
		}
		setOut(0, append([]int(nil), s...))
		return nil

	case OpMatMul:
		a := n.Attrs.(*MatMulAttrs)
		s0, err := in(0)
		if err != nil {
			return err
		}
		if a.Heads == 0 {
			// Weight form: [.., M, K] x W[K, N] (+bias[N]) -> [.., M, N].
			if len(n.WeightNames) == 0 {
				return fmt.Errorf("matmul weight form needs a weight name")
			}
			w, ok := g.Weights[n.WeightNames[0]]
			if !ok {
				return fmt.Errorf("matmul weight %q missing", n.WeightNames[0])
			}
			ws := w.Shape()
			if len(ws) != 2 {
				return fmt.Errorf("matmul weight %q must be rank 2, got %v", n.WeightNames[0], ws)
			}
			k, nn := ws[0], ws[1]
			if len(s0) < 2 {
				return fmt.Errorf("matmul input must be rank >= 2, got %v", s0)
			}
			if s0[len(s0)-1] != k {
				return fmt.Errorf("matmul inner dim %d != weight rows %d", s0[len(s0)-1], k)
			}
			if len(n.WeightNames) > 1 {
				b, ok := g.Weights[n.WeightNames[1]]
				if !ok {
					return fmt.Errorf("matmul bias %q missing", n.WeightNames[1])
				}
				bs := b.Shape()
				if len(bs) != 1 || bs[0] != nn {
					return fmt.Errorf("matmul bias %q shape %v, want [%d]", n.WeightNames[1], bs, nn)
				}
			}
			out := append([]int(nil), s0...)
			out[len(out)-1] = nn
			setOut(0, out)
			return nil
		}
		// Batched forms: two rank-3 activation inputs.
		s1, err := in(1)
		if err != nil {
			return err
		}
		if len(s0) != 3 || len(s1) != 3 {
			return fmt.Errorf("batched matmul inputs must be rank 3, got %v x %v", s0, s1)
		}
		if s0[0] != s1[0] {
			return fmt.Errorf("batched matmul batch mismatch %d vs %d", s0[0], s1[0])
		}
		if a.TransposeB {
			// QK: [B, LA, D] x [B, LB, D] -> [B, H*LA, LB].
			d := s0[2]
			if s1[2] != d {
				return fmt.Errorf("qk matmul depth mismatch %d vs %d", d, s1[2])
			}
			if d%a.Heads != 0 {
				return fmt.Errorf("qk matmul depth %d not divisible by heads %d", d, a.Heads)
			}
			setOut(0, []int{s0[0], a.Heads * s0[1], s1[1]})
			return nil
		}
		// AV: [B, H*LA, LB] x [B, LB, D] -> [B, LA, D].
		if s0[1]%a.Heads != 0 {
			return fmt.Errorf("av matmul rows %d not divisible by heads %d", s0[1], a.Heads)
		}
		if s0[2] != s1[1] {
			return fmt.Errorf("av matmul inner dim mismatch %d vs %d", s0[2], s1[1])
		}
		if s1[2]%a.Heads != 0 {
			return fmt.Errorf("av matmul depth %d not divisible by heads %d", s1[2], a.Heads)
		}
		setOut(0, []int{s0[0], s0[1] / a.Heads, s1[2]})
		return nil

	case OpTranspose:
		a := n.Attrs.(*TransposeAttrs)
		s, err := in(0)
		if err != nil {
			return err
		}
		if len(a.Perm) != len(s) {
			return fmt.Errorf("transpose perm %v does not match rank %d", a.Perm, len(s))
		}
		seen := make([]bool, len(s))
		out := make([]int, len(s))
		for i, p := range a.Perm {
			if p < 0 || p >= len(s) || seen[p] {
				return fmt.Errorf("transpose perm %v is not a permutation", a.Perm)
			}
			seen[p] = true
			out[i] = s[p]
		}
		setOut(0, out)
		return nil
	}
	return fmt.Errorf("unhandled op %v", n.Op)
}

func dilOr1(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}

func strideOr1(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

// convOutputSize computes output H/W for a Conv2D.
func convOutputSize(ih, iw int, a *Conv2DAttrs) (oh, ow int, err error) {
	kh := (a.KernelH-1)*dilOr1(a.DilationH) + 1
	kw := (a.KernelW-1)*dilOr1(a.DilationW) + 1
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	var ph, pw int
	switch a.PadMode {
	case PadExplicit:
		ph, pw = a.PadH, a.PadW
	case PadValid:
		ph, pw = 0, 0
	case PadSame:
		oh = tensor.UpDiv(ih, sh)
		ow = tensor.UpDiv(iw, sw)
		if oh <= 0 || ow <= 0 {
			return 0, 0, fmt.Errorf("conv output %dx%d not positive", oh, ow)
		}
		return oh, ow, nil
	}
	oh = (ih+2*ph-kh)/sh + 1
	ow = (iw+2*pw-kw)/sw + 1
	if oh <= 0 || ow <= 0 {
		return 0, 0, fmt.Errorf("conv output %dx%d not positive (input %dx%d, kernel %dx%d, stride %dx%d, pad %dx%d)", oh, ow, ih, iw, kh, kw, sh, sw, ph, pw)
	}
	return oh, ow, nil
}

// ConvOutputSize is the exported form used by kernels and the cost model.
func ConvOutputSize(ih, iw int, a *Conv2DAttrs) (oh, ow int, err error) {
	return convOutputSize(ih, iw, a)
}

// ConvPadding resolves the effective top/left padding for a conv given its
// input size (PadSame computes centered padding).
func ConvPadding(ih, iw int, a *Conv2DAttrs) (ph, pw int) {
	switch a.PadMode {
	case PadExplicit:
		return a.PadH, a.PadW
	case PadValid:
		return 0, 0
	case PadSame:
		kh := (a.KernelH-1)*dilOr1(a.DilationH) + 1
		kw := (a.KernelW-1)*dilOr1(a.DilationW) + 1
		sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
		oh := tensor.UpDiv(ih, sh)
		ow := tensor.UpDiv(iw, sw)
		padAlongH := (oh-1)*sh + kh - ih
		padAlongW := (ow-1)*sw + kw - iw
		if padAlongH < 0 {
			padAlongH = 0
		}
		if padAlongW < 0 {
			padAlongW = 0
		}
		return padAlongH / 2, padAlongW / 2
	}
	return 0, 0
}

func poolOutputSize(ih, iw int, a *PoolAttrs) (oh, ow int, err error) {
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	var ph, pw int
	switch a.PadMode {
	case PadExplicit:
		ph, pw = a.PadH, a.PadW
	case PadValid:
		ph, pw = 0, 0
	case PadSame:
		oh = tensor.UpDiv(ih, sh)
		ow = tensor.UpDiv(iw, sw)
		return oh, ow, nil
	}
	// Caffe-style ceil division for pooling.
	oh = tensor.UpDiv(ih+2*ph-a.KernelH, sh) + 1
	ow = tensor.UpDiv(iw+2*pw-a.KernelW, sw) + 1
	if ph > 0 || pw > 0 {
		// Clip windows that start entirely inside the padding.
		if (oh-1)*sh >= ih+ph {
			oh--
		}
		if (ow-1)*sw >= iw+pw {
			ow--
		}
	}
	if oh <= 0 || ow <= 0 {
		return 0, 0, fmt.Errorf("pool output %dx%d not positive", oh, ow)
	}
	return oh, ow, nil
}

// PoolOutputSize is the exported form.
func PoolOutputSize(ih, iw int, a *PoolAttrs) (oh, ow int, err error) {
	return poolOutputSize(ih, iw, a)
}

// PoolPadding resolves effective top/left padding for pooling.
func PoolPadding(ih, iw int, a *PoolAttrs) (ph, pw int) {
	switch a.PadMode {
	case PadExplicit:
		return a.PadH, a.PadW
	case PadValid:
		return 0, 0
	case PadSame:
		sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
		oh := tensor.UpDiv(ih, sh)
		ow := tensor.UpDiv(iw, sw)
		padAlongH := (oh-1)*sh + a.KernelH - ih
		padAlongW := (ow-1)*sw + a.KernelW - iw
		if padAlongH < 0 {
			padAlongH = 0
		}
		if padAlongW < 0 {
			padAlongW = 0
		}
		return padAlongH / 2, padAlongW / 2
	}
	return 0, 0
}
