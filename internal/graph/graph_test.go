package graph

import (
	"strings"
	"testing"

	"mnn/internal/tensor"
)

// tinyConvGraph builds input(1,3,8,8) -> conv3x3s1 oc=4 -> relu -> pool2x2s2.
func tinyConvGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("tiny")
	g.InputNames = []string{"data"}
	g.OutputNames = []string{"pool1"}
	g.AddNode(&Node{Name: "data", Op: OpInput, Outputs: []string{"data"},
		Attrs: &InputAttrs{Shape: []int{1, 3, 8, 8}}})
	g.AddWeight("conv1_w", tensor.New(4, 3, 3, 3))
	g.AddWeight("conv1_b", tensor.New(4))
	g.AddNode(&Node{Name: "conv1", Op: OpConv2D, Inputs: []string{"data"}, Outputs: []string{"conv1"},
		WeightNames: []string{"conv1_w", "conv1_b"},
		Attrs: &Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			DilationH: 1, DilationW: 1, PadH: 1, PadW: 1, Group: 1, OutputCount: 4}})
	g.AddNode(&Node{Name: "relu1", Op: OpReLU, Inputs: []string{"conv1"}, Outputs: []string{"relu1"}})
	g.AddNode(&Node{Name: "pool1", Op: OpPool, Inputs: []string{"relu1"}, Outputs: []string{"pool1"},
		Attrs: &PoolAttrs{Type: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}})
	return g
}

func TestValidateOK(t *testing.T) {
	if err := tinyConvGraph(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsMissingWeight(t *testing.T) {
	g := tinyConvGraph(t)
	g.Node("conv1").WeightNames = append(g.Node("conv1").WeightNames, "ghost")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("expected missing-weight error, got %v", err)
	}
}

func TestValidateDetectsUseBeforeDef(t *testing.T) {
	g := tinyConvGraph(t)
	// Swap conv and relu so relu consumes conv1 before it exists.
	g.Nodes[1], g.Nodes[2] = g.Nodes[2], g.Nodes[1]
	if err := g.Validate(); err == nil {
		t.Fatal("expected use-before-def error")
	}
}

func TestValidateDetectsDuplicateNames(t *testing.T) {
	g := tinyConvGraph(t)
	g.AddNode(&Node{Name: "relu1", Op: OpReLU, Inputs: []string{"pool1"}, Outputs: []string{"x"}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateDetectsWrongAttrs(t *testing.T) {
	g := tinyConvGraph(t)
	g.Node("conv1").Attrs = &PoolAttrs{}
	if err := g.Validate(); err == nil {
		t.Fatal("expected attr-type error")
	}
}

func TestValidateDetectsMissingOutput(t *testing.T) {
	g := tinyConvGraph(t)
	g.OutputNames = []string{"nope"}
	if err := g.Validate(); err == nil {
		t.Fatal("expected missing-output error")
	}
}

func TestTopoSortRecoversOrder(t *testing.T) {
	g := tinyConvGraph(t)
	// Scramble: reverse the node list.
	for i, j := 0, len(g.Nodes)-1; i < j; i, j = i+1, j-1 {
		g.Nodes[i], g.Nodes[j] = g.Nodes[j], g.Nodes[i]
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if !(pos["data"] < pos["conv1"] && pos["conv1"] < pos["relu1"] && pos["relu1"] < pos["pool1"]) {
		t.Fatalf("bad topo order: %v", pos)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New("cyclic")
	g.AddNode(&Node{Name: "a", Op: OpReLU, Inputs: []string{"bOut"}, Outputs: []string{"aOut"}})
	g.AddNode(&Node{Name: "b", Op: OpReLU, Inputs: []string{"aOut"}, Outputs: []string{"bOut"}})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestInferShapes(t *testing.T) {
	g := tinyConvGraph(t)
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		"data":  {1, 3, 8, 8},
		"conv1": {1, 4, 8, 8},
		"relu1": {1, 4, 8, 8},
		"pool1": {1, 4, 4, 4},
	}
	for name, w := range want {
		if !tensor.EqualShape(shapes[name], w) {
			t.Errorf("%s: got %v, want %v", name, shapes[name], w)
		}
	}
}

func TestInferShapesWithOverride(t *testing.T) {
	g := tinyConvGraph(t)
	shapes, err := InferShapes(g, map[string][]int{"data": {1, 3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(shapes["pool1"], []int{1, 4, 8, 8}) {
		t.Fatalf("override not applied: %v", shapes["pool1"])
	}
}

func TestConvOutputSizeCases(t *testing.T) {
	cases := []struct {
		ih, iw           int
		a                Conv2DAttrs
		wantH, wantW     int
	}{
		// 3x3 s1 p1 keeps size.
		{224, 224, Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 224, 224},
		// 3x3 s2 p1 halves (ceil).
		{224, 224, Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, 112, 112},
		// 7x7 s2 p3 (ResNet stem).
		{224, 224, Conv2DAttrs{KernelH: 7, KernelW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}, 112, 112},
		// 1x1 s1.
		{56, 56, Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}, 56, 56},
		// Dilated 3x3 d2 p2 keeps size.
		{32, 32, Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2, PadH: 2, PadW: 2}, 32, 32},
		// Asymmetric 1x7 (Inception-v3), explicit pad 0x3.
		{17, 17, Conv2DAttrs{KernelH: 1, KernelW: 7, StrideH: 1, StrideW: 1, PadH: 0, PadW: 3}, 17, 17},
		// SAME padding.
		{15, 15, Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadMode: PadSame}, 8, 8},
		// VALID padding.
		{15, 15, Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadMode: PadValid}, 13, 13},
	}
	for i, c := range cases {
		oh, ow, err := ConvOutputSize(c.ih, c.iw, &c.a)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if oh != c.wantH || ow != c.wantW {
			t.Errorf("case %d: got %dx%d, want %dx%d", i, oh, ow, c.wantH, c.wantW)
		}
	}
}

func TestConvOutputSizeError(t *testing.T) {
	a := Conv2DAttrs{KernelH: 9, KernelW: 9, StrideH: 1, StrideW: 1}
	if _, _, err := ConvOutputSize(4, 4, &a); err == nil {
		t.Fatal("expected error for kernel larger than input")
	}
}

func TestConcatShape(t *testing.T) {
	g := New("cat")
	g.InputNames = []string{"a", "b"}
	g.AddNode(&Node{Name: "a", Op: OpInput, Outputs: []string{"a"}, Attrs: &InputAttrs{Shape: []int{1, 16, 8, 8}}})
	g.AddNode(&Node{Name: "b", Op: OpInput, Outputs: []string{"b"}, Attrs: &InputAttrs{Shape: []int{1, 24, 8, 8}}})
	g.AddNode(&Node{Name: "cat", Op: OpConcat, Inputs: []string{"a", "b"}, Outputs: []string{"cat"},
		Attrs: &ConcatAttrs{Axis: 1}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(shapes["cat"], []int{1, 40, 8, 8}) {
		t.Fatalf("concat shape %v", shapes["cat"])
	}
}

func TestConcatMismatchError(t *testing.T) {
	g := New("cat")
	g.InputNames = []string{"a", "b"}
	g.AddNode(&Node{Name: "a", Op: OpInput, Outputs: []string{"a"}, Attrs: &InputAttrs{Shape: []int{1, 16, 8, 8}}})
	g.AddNode(&Node{Name: "b", Op: OpInput, Outputs: []string{"b"}, Attrs: &InputAttrs{Shape: []int{1, 24, 9, 8}}})
	g.AddNode(&Node{Name: "cat", Op: OpConcat, Inputs: []string{"a", "b"}, Outputs: []string{"cat"},
		Attrs: &ConcatAttrs{Axis: 1}})
	if _, err := InferShapes(g, nil); err == nil {
		t.Fatal("expected concat mismatch error")
	}
}

func TestReshapeInference(t *testing.T) {
	g := New("rs")
	g.InputNames = []string{"x"}
	g.AddNode(&Node{Name: "x", Op: OpInput, Outputs: []string{"x"}, Attrs: &InputAttrs{Shape: []int{2, 3, 4, 5}}})
	g.AddNode(&Node{Name: "r", Op: OpReshape, Inputs: []string{"x"}, Outputs: []string{"r"},
		Attrs: &ReshapeAttrs{Shape: []int{2, -1}}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(shapes["r"], []int{2, 60}) {
		t.Fatalf("reshape -1 inference: %v", shapes["r"])
	}
}

func TestFlattenInference(t *testing.T) {
	g := New("fl")
	g.InputNames = []string{"x"}
	g.AddNode(&Node{Name: "x", Op: OpInput, Outputs: []string{"x"}, Attrs: &InputAttrs{Shape: []int{2, 3, 4, 5}}})
	g.AddNode(&Node{Name: "f", Op: OpFlatten, Inputs: []string{"x"}, Outputs: []string{"f"},
		Attrs: &FlattenAttrs{Axis: 1}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(shapes["f"], []int{2, 60}) {
		t.Fatalf("flatten: %v", shapes["f"])
	}
}

func TestDeconvShape(t *testing.T) {
	g := New("dc")
	g.InputNames = []string{"x"}
	g.AddNode(&Node{Name: "x", Op: OpInput, Outputs: []string{"x"}, Attrs: &InputAttrs{Shape: []int{1, 8, 16, 16}}})
	g.AddWeight("w", tensor.New(8, 4, 3, 3))
	g.AddNode(&Node{Name: "d", Op: OpDeconv2D, Inputs: []string{"x"}, Outputs: []string{"d"},
		WeightNames: []string{"w"},
		Attrs: &Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
			Group: 1, OutputCount: 4}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (16-1)*2 + 3 - 2*1 = 31
	if !tensor.EqualShape(shapes["d"], []int{1, 4, 31, 31}) {
		t.Fatalf("deconv shape: %v", shapes["d"])
	}
}

func TestMULCountConv(t *testing.T) {
	g := tinyConvGraph(t)
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	conv := g.Node("conv1")
	got := MULCount(conv, shapes)
	// out elems = 1*4*8*8 = 256; per-out muls = 3*3*3 = 27.
	if want := int64(256 * 27); got != want {
		t.Fatalf("conv MULs = %d, want %d", got, want)
	}
}

func TestMULCountDepthwise(t *testing.T) {
	g := New("dw")
	g.InputNames = []string{"x"}
	g.AddNode(&Node{Name: "x", Op: OpInput, Outputs: []string{"x"}, Attrs: &InputAttrs{Shape: []int{1, 32, 10, 10}}})
	g.AddWeight("w", tensor.New(32, 1, 3, 3))
	g.AddNode(&Node{Name: "dw", Op: OpConv2D, Inputs: []string{"x"}, Outputs: []string{"dw"},
		WeightNames: []string{"w"},
		Attrs: &Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 32, OutputCount: 32}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := MULCount(g.Node("dw"), shapes)
	// depthwise: 1*32*10*10 outputs * 1 channel * 9 = 28800.
	if want := int64(32 * 100 * 9); got != want {
		t.Fatalf("depthwise MULs = %d, want %d", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := tinyConvGraph(t)
	c := g.Clone()
	c.Node("conv1").Attrs.(*Conv2DAttrs).KernelH = 99
	if g.Node("conv1").Attrs.(*Conv2DAttrs).KernelH == 99 {
		t.Fatal("Clone must copy attrs")
	}
	c.Nodes[0].Inputs = append(c.Nodes[0].Inputs, "zzz")
	if len(g.Nodes[0].Inputs) != 0 {
		t.Fatal("Clone must copy input slices")
	}
}

func TestOpCensus(t *testing.T) {
	g := tinyConvGraph(t)
	census := g.OpCensus()
	m := map[OpType]int{}
	for _, c := range census {
		m[c.Op] = c.Count
	}
	if m[OpConv2D] != 1 || m[OpReLU] != 1 || m[OpPool] != 1 || m[OpInput] != 1 {
		t.Fatalf("census: %v", m)
	}
}

func TestParseOpType(t *testing.T) {
	for _, op := range AllOpTypes() {
		got, err := ParseOpType(op.String())
		if err != nil || got != op {
			t.Fatalf("round trip %v failed: %v %v", op, got, err)
		}
	}
	if _, err := ParseOpType("Bogus"); err == nil {
		t.Fatal("expected error for unknown op")
	}
}

func TestConsumersProducer(t *testing.T) {
	g := tinyConvGraph(t)
	if p := g.Producer("conv1"); p == nil || p.Name != "conv1" {
		t.Fatal("Producer lookup failed")
	}
	cs := g.Consumers("conv1")
	if len(cs) != 1 || cs[0].Name != "relu1" {
		t.Fatal("Consumers lookup failed")
	}
}

func TestPoolGlobalShape(t *testing.T) {
	g := New("gp")
	g.InputNames = []string{"x"}
	g.AddNode(&Node{Name: "x", Op: OpInput, Outputs: []string{"x"}, Attrs: &InputAttrs{Shape: []int{1, 128, 7, 7}}})
	g.AddNode(&Node{Name: "gp", Op: OpPool, Inputs: []string{"x"}, Outputs: []string{"gp"},
		Attrs: &PoolAttrs{Type: AvgPool, Global: true}})
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(shapes["gp"], []int{1, 128, 1, 1}) {
		t.Fatalf("global pool: %v", shapes["gp"])
	}
}

func TestWriteDOT(t *testing.T) {
	g := tinyConvGraph(t)
	shapes, err := InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteDOT(g, shapes, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", `"conv1"`, `"relu1"`, "->", "lightblue", "[1 4 8 8]"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Without shapes, edges carry no labels but the structure remains.
	var plain strings.Builder
	if err := WriteDOT(g, nil, &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "[1 4 8 8]") {
		t.Error("nil shapes must omit edge labels")
	}
}
