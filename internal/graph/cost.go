package graph

import "mnn/internal/tensor"

// MULCount returns the number of scalar multiplications an operator performs
// with a direct (non-fast-algorithm) implementation. This is the MUL term of
// the paper's backend cost model (Eq. 5): Cop = MUL/FLOPS * 1000 (+ t_sched).
//
// Non-multiplying ops (pooling, activation, eltwise-sum, concat, ...) return
// a small proxy count proportional to the elements they touch so that
// backend scheduling still accounts for their data movement.
func MULCount(n *Node, shapes ShapeMap) int64 {
	outShape := func(i int) []int {
		if i < len(n.Outputs) {
			return shapes[n.Outputs[i]]
		}
		return nil
	}
	inShape := func(i int) []int {
		if i < len(n.Inputs) {
			return shapes[n.Inputs[i]]
		}
		return nil
	}
	elems := func(s []int) int64 {
		if s == nil {
			return 0
		}
		return int64(tensor.NumElements(s))
	}

	switch n.Op {
	case OpConv2D:
		a := n.Attrs.(*Conv2DAttrs)
		out := outShape(0)
		in := inShape(0)
		if out == nil || in == nil {
			return 0
		}
		group := a.Group
		if group <= 0 {
			group = 1
		}
		icPerGroup := int64(in[1] / group)
		// N * oc * oh * ow * (ic/g) * kh * kw
		return elems(out) * icPerGroup * int64(a.KernelH) * int64(a.KernelW)

	case OpDeconv2D:
		a := n.Attrs.(*Conv2DAttrs)
		in := inShape(0)
		out := outShape(0)
		if out == nil || in == nil {
			return 0
		}
		group := a.Group
		if group <= 0 {
			group = 1
		}
		ocPerGroup := int64(a.OutputCount / group)
		// Every input element multiplies against kh*kw*(oc/g) weights.
		return elems(in) * ocPerGroup * int64(a.KernelH) * int64(a.KernelW)

	case OpInnerProduct:
		a := n.Attrs.(*InnerProductAttrs)
		in := inShape(0)
		if in == nil {
			return 0
		}
		features := elems(in) / int64(in[0])
		return int64(in[0]) * features * int64(a.OutputCount)

	case OpBatchNorm, OpScale:
		return elems(outShape(0)) // one multiply per element

	case OpEltwise:
		a := n.Attrs.(*EltwiseAttrs)
		if a.Type == EltProd {
			return elems(outShape(0))
		}
		return elems(outShape(0)) / 4 // movement proxy

	case OpSoftmax:
		return elems(outShape(0)) * 2 // exp + divide, approximated

	case OpPool:
		return elems(outShape(0)) / 2 // movement proxy

	case OpReLU, OpReLU6, OpSigmoid, OpTanh:
		return elems(outShape(0)) / 4

	case OpConcat, OpFlatten, OpReshape, OpDropout, OpPadding, OpInput:
		return elems(outShape(0)) / 8
	}
	return 0
}

// GraphMULs sums MULCount over all nodes.
func GraphMULs(g *Graph, shapes ShapeMap) int64 {
	var total int64
	for _, n := range g.Nodes {
		total += MULCount(n, shapes)
	}
	return total
}
