package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// coverTask records which indices were visited and by which worker.
type coverTask struct {
	hits  []int32
	maxW  atomic.Int32
	calls atomic.Int32
}

func (t *coverTask) RunChunk(worker, start, end int) {
	if w := int32(worker); w > t.maxW.Load() {
		t.maxW.Store(w)
	}
	t.calls.Add(1)
	for i := start; i < end; i++ {
		atomic.AddInt32(&t.hits[i], 1)
	}
}

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, lanes := range []int{1, 2, 3, 4, 8} {
		for _, total := range []int{0, 1, 2, 7, 64, 1000} {
			for _, chunk := range []int{0, 1, 3, 64, 2000} {
				p := New(lanes)
				ct := &coverTask{hits: make([]int32, total)}
				p.Run(total, chunk, ct)
				for i, h := range ct.hits {
					if h != 1 {
						t.Fatalf("lanes=%d total=%d chunk=%d: index %d visited %d times",
							lanes, total, chunk, i, h)
					}
				}
				if int(ct.maxW.Load()) >= lanes {
					t.Fatalf("lanes=%d: worker index %d out of range", lanes, ct.maxW.Load())
				}
				p.Close()
			}
		}
	}
}

func TestRunReusesWorkersAcrossDispatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	for iter := 0; iter < 100; iter++ {
		ct := &coverTask{hits: make([]int32, 256)}
		p.Run(256, 16, ct)
		for i, h := range ct.hits {
			if h != 1 {
				t.Fatalf("iter %d: index %d visited %d times", iter, i, h)
			}
		}
	}
}

func TestRunAfterCloseIsInline(t *testing.T) {
	p := New(4)
	ct := &coverTask{hits: make([]int32, 32)}
	p.Run(32, 4, ct) // spawn workers
	p.Close()
	p.Close() // idempotent
	ct2 := &coverTask{hits: make([]int32, 32)}
	p.Run(32, 4, ct2)
	for i, h := range ct2.hits {
		if h != 1 {
			t.Fatalf("post-close: index %d visited %d times", i, h)
		}
	}
	if ct2.maxW.Load() != 0 {
		t.Fatalf("post-close run used worker %d, want inline worker 0", ct2.maxW.Load())
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Lanes() != 1 {
		t.Fatalf("nil pool lanes = %d, want 1", p.Lanes())
	}
	ct := &coverTask{hits: make([]int32, 16)}
	p.Run(16, 4, ct)
	if ct.calls.Load() != 1 {
		t.Fatalf("nil pool made %d calls, want 1 inline call", ct.calls.Load())
	}
	p.Close() // no-op
}

// nestedTask re-enters the pool from inside RunChunk; the inner dispatch
// must degrade to inline execution instead of deadlocking.
type nestedTask struct {
	p     *Pool
	inner *coverTask
	once  sync.Once
}

func (t *nestedTask) RunChunk(worker, start, end int) {
	t.once.Do(func() {
		t.p.Run(len(t.inner.hits), 1, t.inner)
	})
}

func TestNestedRunDegradesInline(t *testing.T) {
	p := New(4)
	defer p.Close()
	inner := &coverTask{hits: make([]int32, 8)}
	nt := &nestedTask{p: p, inner: inner}
	p.Run(16, 1, nt)
	for i, h := range inner.hits {
		if h != 1 {
			t.Fatalf("nested: index %d visited %d times", i, h)
		}
	}
}

func TestCloseDuringTrafficIsSafe(t *testing.T) {
	// Close must wait for the in-flight dispatch and never panic on the
	// wake channels. Run under -race this also checks the handoff rules.
	p := New(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ct := &coverTask{hits: make([]int32, 128)}
			p.Run(128, 8, ct)
		}
	}()
	p.Close()
	<-done
}

func TestChunk(t *testing.T) {
	cases := []struct {
		total, lanes, perLane, want int
	}{
		{100, 4, 1, 25},
		{101, 4, 1, 26},
		{100, 4, 4, 7},
		{3, 8, 1, 1},
		{0, 4, 1, 1},
		{10, 0, 0, 10},
	}
	for _, c := range cases {
		if got := Chunk(c.total, c.lanes, c.perLane); got != c.want {
			t.Errorf("Chunk(%d,%d,%d) = %d, want %d", c.total, c.lanes, c.perLane, got, c.want)
		}
	}
}

func TestSpawnStaticSplit(t *testing.T) {
	hits := make([]int32, 100)
	workers := map[int]bool{}
	var mu sync.Mutex
	Spawn(4, 100, func(w, s, e int) {
		mu.Lock()
		workers[w] = true
		mu.Unlock()
		for i := s; i < e; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("Spawn: index %d visited %d times", i, h)
		}
	}
	if len(workers) != 4 {
		t.Fatalf("Spawn used %d workers, want 4", len(workers))
	}
}

func TestRunZeroAllocSteadyState(t *testing.T) {
	p := New(4)
	defer p.Close()
	ct := &coverTask{hits: make([]int32, 1024)}
	reset := func() {
		for i := range ct.hits {
			ct.hits[i] = 0
		}
	}
	p.Run(1024, 32, ct) // spawn workers outside the measurement
	reset()
	allocs := testing.AllocsPerRun(20, func() {
		p.Run(1024, 32, ct)
	})
	if allocs != 0 {
		t.Errorf("Pool.Run allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

func BenchmarkDispatch(b *testing.B) {
	p := New(4)
	defer p.Close()
	ct := &coverTask{hits: make([]int32, 4096)}
	p.Run(4096, 256, ct)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(4096, 256, ct)
	}
}

// panicTask panics on one specific index and counts normally elsewhere.
type panicTask struct {
	at    int
	calls atomic.Int32
}

func (t *panicTask) RunChunk(worker, start, end int) {
	t.calls.Add(1)
	for i := start; i < end; i++ {
		if i == t.at {
			panic("kernel exploded")
		}
	}
}

func TestRunContainsWorkerPanic(t *testing.T) {
	for _, lanes := range []int{1, 2, 4} {
		p := New(lanes)
		// Chunk 1 forces many chunks so the panicking index lands on a
		// worker lane in the multi-lane configurations as well as the
		// caller lane.
		for _, at := range []int{0, 7, 63} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("lanes=%d at=%d: panic was swallowed", lanes, at)
					}
					pe, ok := r.(*PanicError)
					if !ok {
						t.Fatalf("lanes=%d at=%d: re-panicked %T, want *PanicError", lanes, at, r)
					}
					if pe.Value != "kernel exploded" {
						t.Fatalf("panic value = %v", pe.Value)
					}
					if len(pe.Stack) == 0 {
						t.Fatal("PanicError carries no stack")
					}
				}()
				p.Run(64, 1, &panicTask{at: at})
			}()

			// The pool must remain fully usable after containment.
			ct := &coverTask{hits: make([]int32, 100)}
			p.Run(100, 3, ct)
			for i, h := range ct.hits {
				if h != 1 {
					t.Fatalf("lanes=%d: post-panic dispatch broken: index %d hit %d times", lanes, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestSpawnContainsPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError carries no stack")
		}
	}()
	Spawn(4, 16, func(worker, start, end int) {
		if start <= 5 && 5 < end {
			panic("shard exploded")
		}
	})
	t.Fatal("Spawn did not re-panic")
}
