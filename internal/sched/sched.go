// Package sched provides the persistent worker pool behind every
// multi-threaded kernel — the Go analogue of the pthread worker pools the
// paper's CPU backend keeps alive across inferences.
//
// The seed implementation spawned fresh goroutines inside every
// kernels.ParallelFor call, i.e. for every operator of every inference.
// A Pool instead parks N-1 workers on buffered wake channels once and
// re-dispatches them for the lifetime of a prepared session: a steady-state
// inference performs zero goroutine creations and zero heap allocations for
// scheduling. Work is split into fixed-size chunks pulled from an atomic
// cursor, so a slow worker (preempted, unlucky core) never strands a large
// static shard — the dynamic load balancing of a classic chunked tile queue.
//
// Dispatch protocol (all allocation-free):
//
//  1. Run stores the task and resets the cursor, then sends one token to
//     each needed worker's buffered wake channel (happens-before for the
//     task fields).
//  2. Caller and workers pull [start, end) chunks via cursor.Add until the
//     range is exhausted; each invocation carries a dense worker index for
//     kernels that keep per-worker scratch slabs.
//  3. Workers signal a WaitGroup; Run returns when the range is done.
//
// Chunk boundaries are a pure function of (total, chunk): which worker runs
// a chunk never influences results, so kernels that key numerics off chunk
// shape (Strassen recursion in the 1×1 convolution) stay bitwise
// deterministic under any scheduling — the property the serving tier's
// micro-batcher relies on.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a kernel panic recovered by the pool's containment barrier.
// Run re-panics it on the *caller's* goroutine (a panic left on a parked
// worker goroutine would kill the whole process); the session layer recovers
// it once more and converts it into an error carrying the op identity.
type PanicError struct {
	// Op is the operator the panic escaped from, filled in by the layer
	// that knows node identity (internal/session).
	Op string
	// Value is the original panic value.
	Value any
	// Stack is the stack of the goroutine that panicked, captured at
	// recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("sched: panic in kernel %q: %v", e.Op, e.Value)
	}
	return fmt.Sprintf("sched: panic in kernel: %v", e.Value)
}

// Task is one chunked parallel computation. RunChunk is called with
// disjoint [start, end) ranges covering [0, total) and a dense worker index
// 0 ≤ worker < Lanes(); implementations index per-worker scratch with it.
// RunChunk must not call back into the same Pool (nested dispatch runs the
// inner range inline on the calling worker).
type Task interface {
	RunChunk(worker, start, end int)
}

// Pool is a persistent worker pool of `lanes` execution lanes: the caller's
// goroutine plus lanes-1 parked workers, spawned lazily on the first
// parallel Run and shut down by Close. A nil *Pool is valid and runs
// everything inline (the threads ≤ 1 configuration).
//
// Run may be invoked from one goroutine at a time per Pool (each prepared
// session owns its pool and sessions are checked out exclusively); a
// concurrent or nested Run safely degrades to inline execution.
type Pool struct {
	lanes int

	mu      sync.Mutex // guards worker spawn
	started atomic.Bool
	closed  atomic.Bool
	busy    atomic.Bool
	wake    []chan struct{}
	wg      sync.WaitGroup

	// Current dispatch; written by Run before the wake sends, read by
	// workers after the receive (channel happens-before).
	task   Task
	total  int
	chunk  int
	cursor atomic.Int64

	// First panic recovered from any lane during the current dispatch;
	// re-panicked on the caller after wg.Wait restores the pool invariants.
	panicked atomic.Pointer[PanicError]
}

// New creates a pool with the given number of lanes (≤ 1 yields an inline
// pool with no workers). Workers are not spawned until the first Run that
// needs them, so preparing many sessions stays cheap.
func New(lanes int) *Pool {
	if lanes < 1 {
		lanes = 1
	}
	return &Pool{lanes: lanes}
}

// Lanes reports the number of execution lanes; 1 for a nil pool.
func (p *Pool) Lanes() int {
	if p == nil {
		return 1
	}
	return p.lanes
}

// Chunk returns the deterministic chunk size for splitting `total` items
// over `lanes` lanes with roughly `perLane` chunks per lane (≥ 1). More
// chunks per lane improve load balancing for non-uniform items at the cost
// of cursor traffic; perLane = 1 reproduces a static equal split.
func Chunk(total, lanes, perLane int) int {
	if lanes < 1 {
		lanes = 1
	}
	if perLane < 1 {
		perLane = 1
	}
	parts := lanes * perLane
	c := (total + parts - 1) / parts
	if c < 1 {
		c = 1
	}
	return c
}

// Run executes t over [0, total) in chunks of the given size (≤ 0 means one
// equal chunk per lane). It returns when the whole range has been processed.
// Inline execution (single chunk, nil/closed/busy pool) calls
// t.RunChunk(0, 0, total) on the caller's goroutine.
func (p *Pool) Run(total, chunk int, t Task) {
	if total <= 0 {
		return
	}
	lanes := p.Lanes()
	if chunk <= 0 || chunk > total {
		chunk = Chunk(total, lanes, 1)
	}
	chunks := (total + chunk - 1) / chunk
	if lanes <= 1 || chunks <= 1 || p == nil || p.closed.Load() ||
		!p.busy.CompareAndSwap(false, true) {
		runInline(t, total)
		return
	}
	p.ensureWorkers()
	p.task, p.total, p.chunk = t, total, chunk
	p.cursor.Store(0)
	helpers := lanes - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	p.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.wake[i] <- struct{}{}
	}
	p.safeDrain(0)
	p.wg.Wait()
	p.task = nil
	pe := p.panicked.Swap(nil)
	p.busy.Store(false)
	if pe != nil {
		panic(pe)
	}
}

// runInline executes the whole range on the caller's goroutine, normalizing
// a kernel panic into *PanicError so callers see one panic type regardless
// of which dispatch path ran.
func runInline(t Task, total int) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*PanicError); ok {
				panic(r)
			}
			panic(&PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	t.RunChunk(0, 0, total)
}

// safeDrain is drain behind the containment barrier: a panic in a chunk is
// captured (first one wins), the cursor is exhausted so the other lanes stop
// pulling work, and the lane returns normally — Run re-raises the panic on
// the caller's goroutine once every lane has quiesced. The deferred recover
// costs a few nanoseconds per dispatch and no allocations on the no-panic
// path.
func (p *Pool) safeDrain(worker int) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PanicError)
			if !ok {
				pe = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.panicked.CompareAndSwap(nil, pe)
			// Fast-forward the cursor past total: remaining chunks are
			// abandoned, the dispatch unwinds as quickly as possible.
			p.cursor.Add(int64(p.total) + int64(p.chunk))
		}
	}()
	p.drain(worker)
}

// drain pulls chunks off the shared cursor until the range is exhausted.
func (p *Pool) drain(worker int) {
	t, total, chunk := p.task, p.total, p.chunk
	for {
		end := int(p.cursor.Add(int64(chunk)))
		start := end - chunk
		if start >= total {
			return
		}
		if end > total {
			end = total
		}
		t.RunChunk(worker, start, end)
	}
}

// ensureWorkers spawns the parked workers once.
func (p *Pool) ensureWorkers() {
	if p.started.Load() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started.Load() {
		return
	}
	p.wake = make([]chan struct{}, p.lanes-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		id := i + 1
		go func() {
			for range ch {
				p.safeDrain(id)
				p.wg.Done()
			}
		}()
	}
	p.started.Store(true)
}

// Close shuts the workers down. It waits for an in-flight Run to finish,
// then releases the worker goroutines. Close is idempotent; Run after Close
// executes inline. A nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	// Acquire the dispatch slot so no Run is mid-flight while the wake
	// channels close underneath it.
	for !p.busy.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	p.mu.Lock()
	for _, ch := range p.wake {
		close(ch)
	}
	p.wake = nil
	p.mu.Unlock()
	// busy stays true: the pool is permanently retired to inline mode.
}

// funcTask adapts a closure to Task. The adapter (and the closure's capture
// block) heap-allocates, so this is reserved for cold paths; steady-state
// kernels implement Task on prepared state instead.
type funcTask struct {
	fn func(worker, start, end int)
}

func (t *funcTask) RunChunk(worker, start, end int) { t.fn(worker, start, end) }

// RunFunc dispatches a closure over [0, total) on the pool. Cold-path
// convenience (allocates the adapter); hot kernels pass a Task.
func (p *Pool) RunFunc(total, chunk int, fn func(worker, start, end int)) {
	if total <= 0 {
		return
	}
	t := funcTask{fn: fn}
	p.Run(total, chunk, &t)
}

// Spawn runs fn over [0, n) on up to `threads` freshly spawned goroutines
// with a static equal split — the seed ParallelFor behaviour, kept for
// one-shot cold paths (pre-inference weight transforms) where standing up a
// pool isn't worth it. Panics in spawned goroutines are contained and
// re-raised as a *PanicError on the caller once all shards finish.
func Spawn(threads, n int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + threads - 1) / threads
	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[PanicError]
	)
	worker := 0
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &PanicError{Value: r, Stack: debug.Stack()})
				}
			}()
			fn(w, s, e)
		}(worker, start, end)
		worker++
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		panic(pe)
	}
}
