package kernels

import (
	"fmt"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// quantBudget is the max-abs error allowed between an int8 kernel and the
// fp32 reference on unit-scale random inputs: a few quantization steps of
// accumulated rounding noise.
func quantBudget(maxAbsOut float64) float64 { return 0.04 * maxAbsOut }

func maxAbsOf(t *tensor.Tensor) float64 {
	var m float64
	for _, v := range t.ToLayout(tensor.NCHW).Data() {
		x := float64(v)
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

func TestQuantConvMatchesRef(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	for _, tc := range []struct {
		name   string
		attrs  graph.Conv2DAttrs
		ic, hw int
	}{
		{"3x3", graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Group: 1, InputCount: 8, OutputCount: 16}, 8, 12},
		{"1x1", graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: 32, OutputCount: 24, ReLU: true}, 32, 9},
		{"5x5s2", graph.Conv2DAttrs{KernelH: 5, KernelW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2, Group: 1, InputCount: 6, OutputCount: 10, ReLU6: true}, 6, 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.attrs
			src := tensor.NewRandom(11, 1, 2, tc.ic, tc.hw, tc.hw)
			weight := tensor.NewRandom(12, 0.2, a.OutputCount, tc.ic, a.KernelH, a.KernelW)
			bias := tensor.NewRandom(13, 0.1, a.OutputCount)
			oh, ow, err := graph.ConvOutputSize(tc.hw, tc.hw, &a)
			if err != nil {
				t.Fatal(err)
			}
			want := tensor.New(2, a.OutputCount, oh, ow)
			ConvRef(want, src, weight, bias, &a)

			qc := PrepareQuantConv(weight, bias, &a, 0)
			for _, layout := range []tensor.Layout{tensor.NCHW, tensor.NC4HW4} {
				t.Run(layout.String(), func(t *testing.T) {
					in := src.ToLayout(layout)
					got := tensor.NewWithLayout(layout, 2, a.OutputCount, oh, ow)
					ws := make([]float32, qc.WorkspaceSize(oh, ow))
					qc.Run(got, in, pool, ws)
					budget := quantBudget(maxAbsOf(want))
					if d := tensor.MaxAbsDiff(want, got); d > budget {
						t.Fatalf("quant conv error %g > budget %g", d, budget)
					}
				})
			}
		})
	}
}

// TestQuantConvBatchIndependence: a batch-N run must be bitwise identical to
// N single-sample runs (the serving micro-batcher invariant), including with
// the dynamic per-sample scale.
func TestQuantConvBatchIndependence(t *testing.T) {
	pool := sched.New(3)
	defer pool.Close()
	a := graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: 20, OutputCount: 24, ReLU: true}
	weight := tensor.NewRandom(3, 0.3, 24, 20, 1, 1)
	qc := PrepareQuantConv(weight, nil, &a, 0)
	const N, hw = 3, 7
	batch := tensor.NewRandom(5, 1.5, N, 20, hw, hw).ToLayout(tensor.NC4HW4)
	gotBatch := tensor.NewWithLayout(tensor.NC4HW4, N, 24, hw, hw)
	ws := make([]float32, qc.WorkspaceSize(hw, hw))
	qc.Run(gotBatch, batch, pool, ws)
	for n := 0; n < N; n++ {
		single := tensor.NewWithLayout(tensor.NC4HW4, 1, 20, hw, hw)
		for c := 0; c < 20; c++ {
			for y := 0; y < hw; y++ {
				for x := 0; x < hw; x++ {
					single.Set(0, c, y, x, batch.At(n, c, y, x))
				}
			}
		}
		gotSingle := tensor.NewWithLayout(tensor.NC4HW4, 1, 24, hw, hw)
		qc.Run(gotSingle, single, pool, ws)
		for c := 0; c < 24; c++ {
			for y := 0; y < hw; y++ {
				for x := 0; x < hw; x++ {
					if gotSingle.At(0, c, y, x) != gotBatch.At(n, c, y, x) {
						t.Fatalf("sample %d (%d,%d,%d): single %v != batched %v",
							n, c, y, x, gotSingle.At(0, c, y, x), gotBatch.At(n, c, y, x))
					}
				}
			}
		}
	}
}

func TestQuantDepthwiseMatchesRef(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	a := graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 10, InputCount: 10, OutputCount: 10, ReLU6: true}
	src := tensor.NewRandom(21, 1, 2, 10, 11, 11)
	weight := tensor.NewRandom(22, 0.3, 10, 1, 3, 3)
	bias := tensor.NewRandom(23, 0.1, 10)
	want := tensor.New(2, 10, 11, 11)
	ConvRef(want, src, weight, bias, &a)

	dc := PrepareQuantDepthwise(weight, bias, &a, 0)
	in := src.ToLayout(tensor.NC4HW4)
	got := tensor.NewWithLayout(tensor.NC4HW4, 2, 10, 11, 11)
	ws := make([]float32, QuantDepthwiseWorkspaceFloats(11, 11, pool.Lanes()))
	dc.Run(got, in, pool, ws)
	budget := quantBudget(maxAbsOf(want))
	if d := tensor.MaxAbsDiff(want, got); d > budget {
		t.Fatalf("quant depthwise error %g > budget %g", d, budget)
	}
}

func TestQuantInnerProductMatchesRef(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	a := graph.InnerProductAttrs{OutputCount: 40, ReLU: true}
	src := tensor.NewRandom(31, 1, 3, 64)
	weight := tensor.NewRandom(32, 0.2, 40, 64)
	bias := tensor.NewRandom(33, 0.1, 40)
	want := tensor.New(3, 40)
	InnerProductRef(want, src, weight, bias, &a)

	ip := PrepareQuantInnerProduct(weight, bias, &a, 0)
	got := tensor.New(3, 40)
	ws := make([]float32, QuantInnerProductWorkspaceFloats(3, 64, 40))
	ip.Run(got, src, pool, ws)
	budget := quantBudget(maxAbsOf(want))
	if d := tensor.MaxAbsDiff(want, got); d > budget {
		t.Fatalf("quant FC error %g > budget %g", d, budget)
	}
}

// TestQuantCalibratedScaleUsed pins that a prepared kernel honours a
// calibrated input scale rather than deriving one per sample: feeding the
// same data scaled down must then produce different quantized outputs than
// re-deriving would.
func TestQuantCalibratedScaleUsed(t *testing.T) {
	pool := sched.New(1)
	defer pool.Close()
	a := graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: 16, OutputCount: 16}
	weight := tensor.NewRandom(41, 0.3, 16, 16, 1, 1)
	src := tensor.NewRandom(42, 1, 1, 16, 6, 6)

	dynamic := PrepareQuantConv(weight, nil, &a, 0)
	calibrated := PrepareQuantConv(weight, nil, &a, tensor.QuantScale(float64(maxAbs32(src.Data()))))
	outD := tensor.New(1, 16, 6, 6)
	outC := tensor.New(1, 16, 6, 6)
	ws := make([]float32, dynamic.WorkspaceSize(6, 6))
	dynamic.Run(outD, src, pool, ws)
	calibrated.Run(outC, src, pool, ws)
	// With the calibrated scale equal to the sample's max-abs scale, the two
	// paths must agree bitwise.
	for i, v := range outD.Data() {
		if outC.Data()[i] != v {
			t.Fatalf("element %d: calibrated %v != dynamic %v", i, outC.Data()[i], v)
		}
	}
}

func BenchmarkQuantConv1x1(b *testing.B) {
	pool := sched.New(4)
	defer pool.Close()
	a := graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: 128, OutputCount: 128, ReLU: true}
	w := tensor.NewRandom(2, 0.2, 128, 128, 1, 1)
	qc := PrepareQuantConv(w, nil, &a, 0)
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 28, 28)
	tensor.FillRandom(src, 3, 1)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 28, 28)
	ws := make([]float32, qc.WorkspaceSize(28, 28))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qc.Run(dst, src, pool, ws)
	}
}

func BenchmarkQuantVsFloatConv1x1(b *testing.B) {
	for _, chans := range []int{128, 256, 512} {
		hw := 28
		if chans == 512 {
			hw = 14
		}
		a := graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Group: 1, InputCount: chans, OutputCount: chans, ReLU: true}
		w := tensor.NewRandom(2, 0.2, chans, chans, 1, 1)
		src := tensor.NewWithLayout(tensor.NC4HW4, 1, chans, hw, hw)
		tensor.FillRandom(src, 3, 1)
		dst := tensor.NewWithLayout(tensor.NC4HW4, 1, chans, hw, hw)
		b.Run(fmt.Sprintf("int8/c%d", chans), func(b *testing.B) {
			pool := sched.New(4)
			defer pool.Close()
			qc := PrepareQuantConv(w, nil, &a, 0)
			ws := make([]float32, qc.WorkspaceSize(hw, hw))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qc.Run(dst, src, pool, ws)
			}
		})
		b.Run(fmt.Sprintf("fp32/c%d", chans), func(b *testing.B) {
			pool := sched.New(4)
			defer pool.Close()
			c := PrepareConv1x1(w, nil, &a)
			ws := make([]float32, c.WorkspaceSize(1, hw, hw, pool.Lanes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(dst, src, pool, ws)
			}
		})
	}
}
