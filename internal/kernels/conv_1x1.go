package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/tensor"
)

// Conv1x1 is the prepared state of the 1×1 convolution, which MNN lowers to
// one large matrix multiplication accelerated with Strassen's algorithm
// (paper Sections 3.2 and 3.3.2). The pixel matrix is laid out [pixels, ic]
// so each thread multiplies a contiguous row block, and the weight is stored
// transposed as [ic, oc].
type Conv1x1 struct {
	attrs    graph.Conv2DAttrs
	ic, oc   int
	wT       []float32 // [ic][oc]
	bias     []float32
	Strassen bool // use MulStrassen for the pixel GEMM (MNN's choice)
}

// PrepareConv1x1 packs weights for the 1×1 kernel. weight is [oc, ic, 1, 1].
func PrepareConv1x1(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *Conv1x1 {
	oc, ic := weight.Dim(0), weight.Dim(1)
	c := &Conv1x1{attrs: *a, ic: ic, oc: oc, Strassen: true}
	c.wT = make([]float32, ic*oc)
	w := weight.Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			c.wT[i*oc+o] = w[o*ic+i]
		}
	}
	c.bias = make([]float32, oc)
	if bias != nil {
		copy(c.bias, bias.Data())
	}
	return c
}

// WorkspaceSize returns the per-run scratch requirement in float32s for a
// given source size: the unpacked [pixels, ic] matrix plus the [pixels, oc]
// product.
func (c *Conv1x1) WorkspaceSize(n, h, w int) int {
	oh := tensor.UpDiv(h, strideOr1(c.attrs.StrideH))
	ow := tensor.UpDiv(w, strideOr1(c.attrs.StrideW))
	px := n * oh * ow
	return px * (c.ic + c.oc)
}

// Run executes the convolution. src and dst must be NC4HW4. workspace may be
// nil or at least WorkspaceSize floats.
func (c *Conv1x1) Run(dst, src *tensor.Tensor, threads int, workspace []float32) {
	a := &c.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	ic4 := tensor.UpDiv(c.ic, 4)
	oc4 := tensor.UpDiv(c.oc, 4)
	px := N * OH * OW
	if workspace == nil {
		workspace = make([]float32, px*(c.ic+c.oc))
	}
	in := workspace[:px*c.ic]
	out := workspace[px*c.ic : px*(c.ic+c.oc)]
	s := src.Data()
	d := dst.Data()

	// Unpack NC4HW4 → [pixels, ic] rows (applying stride).
	ParallelFor(threads, px, func(start, end int) {
		for p := start; p < end; p++ {
			n := p / (OH * OW)
			rem := p % (OH * OW)
			iy := (rem / OW) * sh
			ix := (rem % OW) * sw
			row := in[p*c.ic : (p+1)*c.ic]
			for cz := 0; cz < ic4; cz++ {
				so := (((n*ic4+cz)*H+iy)*W + ix) * 4
				lim := c.ic - cz*4
				if lim > 4 {
					lim = 4
				}
				for l := 0; l < lim; l++ {
					row[cz*4+l] = s[so+l]
				}
			}
		}
	})

	// GEMM: per sample, [OH*OW, ic] × [ic, oc] → [OH*OW, oc], row blocks per
	// thread. The Strassen recursion shape depends on the row count, so the
	// GEMM must not span batch elements: keeping it per-sample makes a
	// batch-N run bitwise identical to N single runs, which the serving
	// micro-batcher relies on to split stacked outputs back per request.
	ohw := OH * OW
	for n := 0; n < N; n++ {
		base := n * ohw
		ParallelFor(threads, ohw, func(start, end int) {
			rows := end - start
			s0, e0 := base+start, base+end
			if c.Strassen {
				matmul.MulStrassen(out[s0*c.oc:e0*c.oc], in[s0*c.ic:e0*c.ic], c.wT, rows, c.ic, c.oc)
			} else {
				matmul.Mul(out[s0*c.oc:e0*c.oc], in[s0*c.ic:e0*c.ic], c.wT, rows, c.ic, c.oc)
			}
		})
	}

	// Repack [pixels, oc] → NC4HW4 with bias + activation.
	ParallelFor(threads, px, func(start, end int) {
		for p := start; p < end; p++ {
			n := p / (OH * OW)
			rem := p % (OH * OW)
			row := out[p*c.oc : (p+1)*c.oc]
			for o := 0; o < c.oc; o++ {
				v := row[o] + c.bias[o]
				if a.ReLU6 {
					v = relu6(v)
				} else if a.ReLU {
					v = relu(v)
				}
				oz, ol := o/4, o%4
				d[(((n*oc4+oz)*OH*OW)+rem)*4+ol] = v
			}
		}
	})
}
