package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Conv1x1 is the prepared state of the 1×1 convolution, which MNN lowers to
// one large matrix multiplication accelerated with Strassen's algorithm
// (paper Sections 3.2 and 3.3.2). The pixel matrix is laid out [pixels, ic]
// so each thread multiplies a contiguous row block, and the weight is stored
// transposed as [ic, oc] — both raw (Strassen right operand) and packed into
// 64-byte panels (direct-GEMM fast path).
type Conv1x1 struct {
	attrs    graph.Conv2DAttrs
	ic, oc   int
	wT       []float32       // [ic][oc]
	packed   *matmul.PackedB // wT in 64-byte panels for the non-recursing path
	bias     []float32
	Strassen bool // use Strassen recursion for large pixel GEMMs (MNN's choice)

	rs      conv1x1Run
	unpackT conv1x1Unpack
	gemmT   conv1x1Gemm
	packT   conv1x1Pack
}

type conv1x1Run struct {
	s, d             []float32
	H, W, OH, OW     int
	sh, sw, ic4, oc4 int
	px, ohw, base    int
	in, out          []float32 // workspace views: [px,ic] and [px,oc]
	scratch          []float32 // per-worker Strassen temporaries
	scratchPer       int
}

type conv1x1Unpack struct{ c *Conv1x1 }
type conv1x1Gemm struct{ c *Conv1x1 }
type conv1x1Pack struct{ c *Conv1x1 }

// PrepareConv1x1 packs weights for the 1×1 kernel. weight is [oc, ic, 1, 1].
func PrepareConv1x1(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *Conv1x1 {
	oc, ic := weight.Dim(0), weight.Dim(1)
	c := &Conv1x1{attrs: *a, ic: ic, oc: oc, Strassen: true}
	c.wT = make([]float32, ic*oc)
	w := weight.Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			c.wT[i*oc+o] = w[o*ic+i]
		}
	}
	c.packed = matmul.PackB(c.wT, ic, oc)
	c.bias = make([]float32, oc)
	if bias != nil {
		copy(c.bias, bias.Data())
	}
	c.unpackT.c, c.gemmT.c, c.packT.c = c, c, c
	return c
}

// gemmChunk is the deterministic row-block size of the per-sample pixel
// GEMM: one equal chunk per lane, exactly the static split the Strassen
// recursion shape has always been keyed off. It must not depend on which
// worker runs a chunk, so batched and unbatched runs stay bitwise equal.
func gemmChunk(ohw, lanes int) int { return sched.Chunk(ohw, lanes, 1) }

// WorkspaceSize returns the per-run scratch requirement in float32s for a
// given source size and lane count: the unpacked [pixels, ic] matrix, the
// [pixels, oc] product, and one Strassen temporary slab per lane sized for
// the largest per-sample GEMM row block.
func (c *Conv1x1) WorkspaceSize(n, h, w, lanes int) int {
	oh := tensor.UpDiv(h, strideOr1(c.attrs.StrideH))
	ow := tensor.UpDiv(w, strideOr1(c.attrs.StrideW))
	return Conv1x1WorkspaceFloats(c.ic, c.oc, n, oh, ow, lanes)
}

// Run executes the convolution on the pool. src and dst must be NC4HW4.
// workspace may be nil or at least WorkspaceSize(n, h, w, p.Lanes()) floats;
// with a planner-provided workspace, steady-state calls are allocation-free.
func (c *Conv1x1) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	a := &c.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	lanes := p.Lanes()
	px := N * OH * OW
	ohw := OH * OW
	per := matmul.StrassenScratch(gemmChunk(ohw, lanes), c.ic, c.oc)
	need := px*(c.ic+c.oc) + lanes*per // == Conv1x1WorkspaceFloats(...)
	if len(workspace) < need {
		workspace = make([]float32, need)
	}
	c.rs = conv1x1Run{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: OH, OW: OW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		ic4: tensor.UpDiv(c.ic, 4), oc4: tensor.UpDiv(c.oc, 4),
		px: px, ohw: ohw,
		in:         workspace[:px*c.ic],
		out:        workspace[px*c.ic : px*(c.ic+c.oc)],
		scratch:    workspace[px*(c.ic+c.oc) : need],
		scratchPer: per,
	}

	// Unpack NC4HW4 → [pixels, ic] rows (applying stride).
	p.Run(px, sched.Chunk(px, lanes, elemChunksPerLane), &c.unpackT)

	// GEMM: per sample, [OH*OW, ic] × [ic, oc] → [OH*OW, oc], row blocks per
	// lane. The Strassen recursion shape depends on the row count, so the
	// GEMM must not span batch elements: keeping it per-sample makes a
	// batch-N run bitwise identical to N single runs, which the serving
	// micro-batcher relies on to split stacked outputs back per request.
	for n := 0; n < N; n++ {
		c.rs.base = n * ohw
		p.Run(ohw, gemmChunk(ohw, lanes), &c.gemmT)
	}

	// Repack [pixels, oc] → NC4HW4 with bias + activation.
	p.Run(px, sched.Chunk(px, lanes, elemChunksPerLane), &c.packT)
}

func (t *conv1x1Unpack) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	s := r.s
	// Pixel coordinates advance incrementally — no per-pixel div/mod.
	n := start / r.ohw
	rem := start % r.ohw
	py := rem / r.OW
	px := rem % r.OW
	hw := r.H * r.W
	for p := start; p < end; p++ {
		row := r.in[p*c.ic : (p+1)*c.ic]
		srcBase := n*r.ic4*hw + py*r.sh*r.W + px*r.sw
		for cz := 0; cz < r.ic4; cz++ {
			so := (srcBase + cz*hw) * 4
			lim := c.ic - cz*4
			if lim > 4 {
				lim = 4
			}
			for l := 0; l < lim; l++ {
				row[cz*4+l] = s[so+l]
			}
		}
		px++
		if px == r.OW {
			px = 0
			py++
			if py == r.OH {
				py = 0
				n++
			}
		}
	}
}

func (t *conv1x1Gemm) RunChunk(worker, start, end int) {
	c := t.c
	r := &c.rs
	rows := end - start
	s0 := r.base + start
	a := r.in[s0*c.ic : (s0+rows)*c.ic]
	d := r.out[s0*c.oc : (s0+rows)*c.oc]
	if c.Strassen && matmul.ShouldRecurse(rows, c.ic, c.oc) {
		scratch := r.scratch[worker*r.scratchPer : (worker+1)*r.scratchPer]
		matmul.MulStrassenScratch(d, a, c.wT, rows, c.ic, c.oc, scratch)
	} else {
		// Non-recursing shapes take the packed-panel kernel, which is
		// bitwise-identical to the direct GEMM the recursion bottoms out in.
		c.packed.MulInto(d, a, rows)
	}
}

func (t *conv1x1Pack) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	a := &c.attrs
	d := r.d
	n := start / r.ohw
	rem := start % r.ohw
	for p := start; p < end; p++ {
		row := r.out[p*c.oc : (p+1)*c.oc]
		base := (n*r.oc4*r.ohw + rem) * 4
		o := 0
		for oz := 0; oz < r.oc4; oz++ {
			lim := c.oc - oz*4
			if lim > 4 {
				lim = 4
			}
			do := base + oz*r.ohw*4
			for ol := 0; ol < lim; ol++ {
				v := row[o] + c.bias[o]
				if a.ReLU6 {
					v = relu6(v)
				} else if a.ReLU {
					v = relu(v)
				}
				d[do+ol] = v
				o++
			}
		}
		rem++
		if rem == r.ohw {
			rem = 0
			n++
		}
	}
}
