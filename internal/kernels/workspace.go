package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/matmul"
)

// Workspace sizing helpers: the pre-inference planner (Figure 3) asks for
// every kernel's transient-buffer requirement before the arena is laid out,
// from shapes alone — no kernel needs to be built to answer. Each formula
// must match what the corresponding Run carves, so the planner-provided
// slice always suffices and the hot path never falls back to the allocator.

// Conv1x1WorkspaceFloats is the 1×1 (Strassen GEMM) convolution's
// requirement for an N×ic×(oh·ow) → N×oc×(oh·ow) run over `lanes` worker
// lanes: the unpacked pixel matrix, the product matrix, and one Strassen
// temporary slab per lane sized for the per-sample GEMM row block.
func Conv1x1WorkspaceFloats(ic, oc, n, oh, ow, lanes int) int {
	if lanes < 1 {
		lanes = 1
	}
	px := n * oh * ow
	per := matmul.StrassenScratch(gemmChunk(oh*ow, lanes), ic, oc)
	return px*(ic+oc) + lanes*per
}

// Im2colWorkspaceFloats is the im2col+GEMM convolution's requirement for a
// batch element: the patch matrix [oh·ow, (ic/g)·kh·kw] plus the product
// [oh·ow, oc/g].
func Im2colWorkspaceFloats(a *graph.Conv2DAttrs, ic, oc, oh, ow int) int {
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := ic / group
	ocg := oc / group
	return oh*ow*icg*a.KernelH*a.KernelW + oh*ow*ocg
}

// WinogradWorkspaceFloats is the F(nh×nw) Winograd convolution's
// requirement over `lanes` worker lanes. It mirrors
// (*WinogradConv).WorkspaceSize without building the kernel: per lane the
// gathered/transformed tile block srcT [m²·U·ic] and dstT [m²·U·oc] plus
// the two gather tiles and the transform scratch.
func WinogradWorkspaceFloats(a *graph.Conv2DAttrs, nh, nw, ic, oc, lanes int) int {
	if lanes < 1 {
		lanes = 1
	}
	kh, kw := a.KernelH, a.KernelW
	if kh == 1 {
		nh = 1
	}
	if kw == 1 {
		nw = 1
	}
	mh, mw := nh+kh-1, nw+kw-1
	mm := mh * mw
	u := DefaultTileBlock
	return (mm*u*ic + mm*u*oc + 3*mm) * lanes
}
