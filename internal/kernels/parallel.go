package kernels

import "sync"

// ParallelFor splits [0, n) into at most `threads` contiguous chunks and runs
// fn(start, end) on each concurrently. threads ≤ 1 (or n ≤ 1) runs inline,
// so single-threaded configurations pay no goroutine overhead. This stands in
// for the pthread worker pools of the paper's CPU backend.
func ParallelFor(threads, n int, fn func(start, end int)) {
	ParallelForWorker(threads, n, func(_, start, end int) { fn(start, end) })
}

// ParallelForWorker is ParallelFor with a dense worker index (0 ≤ worker <
// threads) passed to fn, for kernels that need a private workspace slot per
// concurrent chunk.
func ParallelForWorker(threads, n int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	worker := 0
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			fn(w, s, e)
		}(worker, start, end)
		worker++
	}
	wg.Wait()
}
