package kernels

import "mnn/internal/sched"

// elemChunksPerLane is how many chunks per worker elementwise kernels cut
// their range into: fine enough that a preempted worker can be covered by
// the others via the pool's atomic cursor, coarse enough that cursor
// traffic stays negligible.
const elemChunksPerLane = 4

// ParallelFor splits [0, n) into deterministic chunks and runs fn(start,
// end) over the pool's lanes. A nil pool (or one lane, or n ≤ 1) runs
// inline, so single-threaded configurations pay nothing.
//
// The closure adapter allocates, which is fine for cold paths (weight
// transforms, reference kernels, tests); steady-state kernels implement
// sched.Task on prepared state and call Pool.Run directly instead.
func ParallelFor(p *sched.Pool, n int, fn func(start, end int)) {
	ParallelForWorker(p, n, func(_, start, end int) { fn(start, end) })
}

// ParallelForWorker is ParallelFor with a dense worker index (0 ≤ worker <
// p.Lanes()) passed to fn, for code that keeps a private workspace slot per
// lane.
func ParallelForWorker(p *sched.Pool, n int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if p.Lanes() <= 1 || n == 1 {
		fn(0, 0, n)
		return
	}
	p.RunFunc(n, sched.Chunk(n, p.Lanes(), 1), fn)
}
