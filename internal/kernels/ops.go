package kernels

import (
	"math"

	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/tensor"
)

// PoolNC4 executes max/average pooling on NC4HW4 tensors, processing the
// four packed channels of a block lane-parallel.
func PoolNC4(dst, src *tensor.Tensor, a *graph.PoolAttrs, threads int) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	c4 := tensor.UpDiv(C, 4)
	kh, kw := a.KernelH, a.KernelW
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	if a.Global {
		kh, kw, sh, sw = H, W, 1, 1
	}
	ph, pw := graph.PoolPadding(H, W, a)
	if a.Global {
		ph, pw = 0, 0
	}
	s := src.Data()
	d := dst.Data()
	ParallelFor(threads, N*c4, func(start, end int) {
		for item := start; item < end; item++ {
			srcOff := item * H * W * 4
			dstOff := item * OH * OW * 4
			for oy := 0; oy < OH; oy++ {
				for ox := 0; ox < OW; ox++ {
					y0, x0 := oy*sh-ph, ox*sw-pw
					var m0, m1, m2, m3 float32
					var a0, a1, a2, a3 float64
					m0, m1, m2, m3 = float32(math.Inf(-1)), float32(math.Inf(-1)), float32(math.Inf(-1)), float32(math.Inf(-1))
					count := 0
					for ky := 0; ky < kh; ky++ {
						iy := y0 + ky
						if iy < 0 || iy >= H {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := x0 + kx
							if ix < 0 || ix >= W {
								continue
							}
							so := srcOff + (iy*W+ix)*4
							v0, v1, v2, v3 := s[so], s[so+1], s[so+2], s[so+3]
							if a.Type == graph.MaxPool {
								if v0 > m0 {
									m0 = v0
								}
								if v1 > m1 {
									m1 = v1
								}
								if v2 > m2 {
									m2 = v2
								}
								if v3 > m3 {
									m3 = v3
								}
							} else {
								a0 += float64(v0)
								a1 += float64(v1)
								a2 += float64(v2)
								a3 += float64(v3)
							}
							count++
						}
					}
					do := dstOff + (oy*OW+ox)*4
					if a.Type == graph.MaxPool {
						d[do], d[do+1], d[do+2], d[do+3] = m0, m1, m2, m3
					} else {
						div := float64(count)
						if a.CountIncludePad {
							div = float64(kh * kw)
						}
						if div == 0 {
							div = 1
						}
						d[do] = float32(a0 / div)
						d[do+1] = float32(a1 / div)
						d[do+2] = float32(a2 / div)
						d[do+3] = float32(a3 / div)
					}
				}
			}
		}
	})
}

// ActivationKind enumerates unary activations.
type ActivationKind uint8

const (
	ActReLU ActivationKind = iota
	ActReLU6
	ActSigmoid
	ActTanh
)

// Activation applies a unary activation elementwise over the physical
// buffer. For NC4HW4 tensors the padding lanes are transformed too, which is
// harmless: they are never read logically and ReLU/ReLU6 keep them zero.
func Activation(dst, src *tensor.Tensor, kind ActivationKind, threads int) {
	s := src.Data()
	d := dst.Data()
	ParallelFor(threads, len(s), func(start, end int) {
		switch kind {
		case ActReLU:
			for i := start; i < end; i++ {
				d[i] = relu(s[i])
			}
		case ActReLU6:
			for i := start; i < end; i++ {
				d[i] = relu6(s[i])
			}
		case ActSigmoid:
			for i := start; i < end; i++ {
				d[i] = float32(1 / (1 + math.Exp(-float64(s[i]))))
			}
		case ActTanh:
			for i := start; i < end; i++ {
				d[i] = float32(math.Tanh(float64(s[i])))
			}
		}
	})
}

// Eltwise applies a binary elementwise reduction over ≥2 inputs with
// identical shapes and layouts, writing into dst (which may alias inputs[0]).
func Eltwise(dst *tensor.Tensor, inputs []*tensor.Tensor, a *graph.EltwiseAttrs, threads int) {
	d := dst.Data()
	first := inputs[0].Data()
	ParallelFor(threads, len(d), func(start, end int) {
		copy(d[start:end], first[start:end])
		for _, in := range inputs[1:] {
			s := in.Data()
			switch a.Type {
			case graph.EltSum:
				for i := start; i < end; i++ {
					d[i] += s[i]
				}
			case graph.EltProd:
				for i := start; i < end; i++ {
					d[i] *= s[i]
				}
			case graph.EltMax:
				for i := start; i < end; i++ {
					if s[i] > d[i] {
						d[i] = s[i]
					}
				}
			case graph.EltSub:
				for i := start; i < end; i++ {
					d[i] -= s[i]
				}
			}
		}
		if a.ReLU {
			for i := start; i < end; i++ {
				d[i] = relu(d[i])
			}
		}
	})
}

// ConcatChannel concatenates along the channel axis. When every input's
// channel count is a multiple of the pack factor, blocks are copied
// wholesale; otherwise a generic per-element path repacks.
func ConcatChannel(dst *tensor.Tensor, inputs []*tensor.Tensor) {
	if dst.Layout() == tensor.NC4HW4 {
		allAligned := true
		for _, in := range inputs {
			if in.Channels()%4 != 0 || in.Layout() != tensor.NC4HW4 {
				allAligned = false
				break
			}
		}
		if allAligned {
			N := dst.Batch()
			H, W := dst.Height(), dst.Width()
			dc4 := tensor.UpDiv(dst.Channels(), 4)
			d := dst.Data()
			czOff := 0
			for _, in := range inputs {
				ic4 := in.Channels() / 4
				s := in.Data()
				for n := 0; n < N; n++ {
					for cz := 0; cz < ic4; cz++ {
						srcOff := ((n*ic4 + cz) * H * W) * 4
						dstOff := ((n*dc4 + czOff + cz) * H * W) * 4
						copy(d[dstOff:dstOff+H*W*4], s[srcOff:srcOff+H*W*4])
					}
				}
				czOff += ic4
			}
			return
		}
	}
	// Generic path.
	cOff := 0
	for _, in := range inputs {
		N, C, H, W := in.Batch(), in.Channels(), in.Height(), in.Width()
		for n := 0; n < N; n++ {
			for c := 0; c < C; c++ {
				for y := 0; y < H; y++ {
					for x := 0; x < W; x++ {
						dst.Set(n, cOff+c, y, x, in.At(n, c, y, x))
					}
				}
			}
		}
		cOff += C
	}
}

// ConcatAxis concatenates along an arbitrary axis on NCHW buffers.
func ConcatAxis(dst *tensor.Tensor, inputs []*tensor.Tensor, axis int) {
	shape := dst.Shape()
	outer := 1
	for _, v := range shape[:axis] {
		outer *= v
	}
	innerDst := 1
	for _, v := range shape[axis:] {
		innerDst *= v
	}
	d := dst.Data()
	off := 0
	for _, in := range inputs {
		is := in.Shape()
		innerSrc := 1
		for _, v := range is[axis:] {
			innerSrc *= v
		}
		s := in.Data()
		for o := 0; o < outer; o++ {
			copy(d[o*innerDst+off:o*innerDst+off+innerSrc], s[o*innerSrc:(o+1)*innerSrc])
		}
		off += innerSrc
	}
}

// ScaleNC4 applies per-channel y = x·scale + shift on an NC4HW4 tensor.
// BatchNorm folds into this form at prepare time.
func ScaleNC4(dst, src *tensor.Tensor, scale, shift []float32, threads int) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	c4 := tensor.UpDiv(C, 4)
	s := src.Data()
	d := dst.Data()
	// Padded-lane-safe packed parameters.
	ps := make([]float32, c4*4)
	pb := make([]float32, c4*4)
	copy(ps, scale)
	if shift != nil {
		copy(pb, shift)
	}
	ParallelFor(threads, N*c4, func(start, end int) {
		for item := start; item < end; item++ {
			cz := item % c4
			s0, s1, s2, s3 := ps[cz*4], ps[cz*4+1], ps[cz*4+2], ps[cz*4+3]
			b0, b1, b2, b3 := pb[cz*4], pb[cz*4+1], pb[cz*4+2], pb[cz*4+3]
			off := item * H * W * 4
			for p := 0; p < H*W; p++ {
				o := off + p*4
				d[o] = s[o]*s0 + b0
				d[o+1] = s[o+1]*s1 + b1
				d[o+2] = s[o+2]*s2 + b2
				d[o+3] = s[o+3]*s3 + b3
			}
		}
	})
}

// FoldBatchNorm converts BatchNorm constants into (scale, shift) pairs:
// y = gamma·(x-mean)/sqrt(var+eps) + beta = x·s + b.
func FoldBatchNorm(gamma, beta, mean, variance []float32, eps float32) (scale, shift []float32) {
	n := len(gamma)
	scale = make([]float32, n)
	shift = make([]float32, n)
	for i := 0; i < n; i++ {
		s := gamma[i] / float32(math.Sqrt(float64(variance[i]+eps)))
		scale[i] = s
		shift[i] = beta[i] - s*mean[i]
	}
	return scale, shift
}

// InnerProduct is the prepared fully-connected kernel: a [batch, features] ×
// [features, out] GEMM on the transposed weight.
type InnerProduct struct {
	attrs    graph.InnerProductAttrs
	features int
	wT       []float32
	bias     []float32
}

// PrepareInnerProduct transposes the [out, features] weight.
func PrepareInnerProduct(weight, bias *tensor.Tensor, a *graph.InnerProductAttrs) *InnerProduct {
	out := weight.Dim(0)
	features := weight.Dim(1)
	ip := &InnerProduct{attrs: *a, features: features}
	ip.wT = make([]float32, features*out)
	w := weight.Data()
	for o := 0; o < out; o++ {
		for i := 0; i < features; i++ {
			ip.wT[i*out+o] = w[o*features+i]
		}
	}
	ip.bias = make([]float32, out)
	if bias != nil {
		copy(ip.bias, bias.Data())
	}
	return ip
}

// Run executes the FC layer on NCHW buffers (src flattened per batch).
func (ip *InnerProduct) Run(dst, src *tensor.Tensor, threads int) {
	batch := src.Dim(0)
	out := ip.attrs.OutputCount
	s := src.Data()
	d := dst.Data()
	ParallelFor(threads, batch, func(start, end int) {
		rows := end - start
		matmul.Mul(d[start*out:end*out], s[start*ip.features:end*ip.features], ip.wT, rows, ip.features, out)
	})
	ParallelFor(threads, batch, func(start, end int) {
		for n := start; n < end; n++ {
			for o := 0; o < out; o++ {
				v := d[n*out+o] + ip.bias[o]
				if ip.attrs.ReLU && v < 0 {
					v = 0
				}
				d[n*out+o] = v
			}
		}
	})
}

// PaddingNC4 zero-pads spatial dims on NC4HW4 tensors.
func PaddingNC4(dst, src *tensor.Tensor, a *graph.PaddingAttrs, threads int) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OW := dst.Width()
	c4 := tensor.UpDiv(C, 4)
	s := src.Data()
	d := dst.Data()
	dst.Zero()
	ParallelFor(threads, N*c4, func(start, end int) {
		for item := start; item < end; item++ {
			srcOff := item * H * W * 4
			dstOff := item * dst.Height() * OW * 4
			for y := 0; y < H; y++ {
				srcRow := srcOff + y*W*4
				dstRow := dstOff + ((y+a.Top)*OW+a.Left)*4
				copy(d[dstRow:dstRow+W*4], s[srcRow:srcRow+W*4])
			}
		}
	})
}
