package kernels

import (
	"math"

	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// The operators in this file follow one pattern: a New*Op constructor binds
// tensors and derives geometry once (pre-inference), and Run dispatches the
// op's RunChunk onto the persistent worker pool — no closures, no per-run
// allocation. The loose function forms at the bottom keep the seed API for
// reference kernels and tests; they construct a throwaway op per call.

// PoolOp is the prepared max/average pooling execution on NC4HW4 tensors,
// processing the four packed channels of a block lane-parallel.
type PoolOp struct {
	a              graph.PoolAttrs
	s, d           []float32
	H, W, OH, OW   int
	c4, n          int
	kh, kw, sh, sw int
	ph, pw         int
}

// NewPoolOp binds a pooling execution.
func NewPoolOp(dst, src *tensor.Tensor, a *graph.PoolAttrs) *PoolOp {
	o := &PoolOp{
		a: *a, s: src.Data(), d: dst.Data(),
		H: src.Height(), W: src.Width(), OH: dst.Height(), OW: dst.Width(),
		c4: tensor.UpDiv(src.Channels(), 4), n: src.Batch(),
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
	}
	if a.Global {
		o.kh, o.kw, o.sh, o.sw = o.H, o.W, 1, 1
	}
	o.ph, o.pw = graph.PoolPadding(o.H, o.W, a)
	if a.Global {
		o.ph, o.pw = 0, 0
	}
	return o
}

// Run executes the pooling on the pool.
func (o *PoolOp) Run(p *sched.Pool) {
	total := o.n * o.c4
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over (batch, channel-block) items.
func (o *PoolOp) RunChunk(_, start, end int) {
	s, d := o.s, o.d
	for item := start; item < end; item++ {
		srcOff := item * o.H * o.W * 4
		dstOff := item * o.OH * o.OW * 4
		for oy := 0; oy < o.OH; oy++ {
			for ox := 0; ox < o.OW; ox++ {
				y0, x0 := oy*o.sh-o.ph, ox*o.sw-o.pw
				var m0, m1, m2, m3 float32
				var a0, a1, a2, a3 float64
				m0, m1, m2, m3 = float32(math.Inf(-1)), float32(math.Inf(-1)), float32(math.Inf(-1)), float32(math.Inf(-1))
				count := 0
				for ky := 0; ky < o.kh; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= o.H {
						continue
					}
					for kx := 0; kx < o.kw; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= o.W {
							continue
						}
						so := srcOff + (iy*o.W+ix)*4
						v0, v1, v2, v3 := s[so], s[so+1], s[so+2], s[so+3]
						if o.a.Type == graph.MaxPool {
							if v0 > m0 {
								m0 = v0
							}
							if v1 > m1 {
								m1 = v1
							}
							if v2 > m2 {
								m2 = v2
							}
							if v3 > m3 {
								m3 = v3
							}
						} else {
							a0 += float64(v0)
							a1 += float64(v1)
							a2 += float64(v2)
							a3 += float64(v3)
						}
						count++
					}
				}
				do := dstOff + (oy*o.OW+ox)*4
				if o.a.Type == graph.MaxPool {
					d[do], d[do+1], d[do+2], d[do+3] = m0, m1, m2, m3
				} else {
					div := float64(count)
					if o.a.CountIncludePad {
						div = float64(o.kh * o.kw)
					}
					if div == 0 {
						div = 1
					}
					d[do] = float32(a0 / div)
					d[do+1] = float32(a1 / div)
					d[do+2] = float32(a2 / div)
					d[do+3] = float32(a3 / div)
				}
			}
		}
	}
}

// ActivationKind enumerates unary activations.
type ActivationKind uint8

const (
	ActReLU ActivationKind = iota
	ActReLU6
	ActSigmoid
	ActTanh
)

// ActivationOp is the prepared elementwise activation execution. For
// NC4HW4 tensors the padding lanes are transformed too, which is harmless:
// they are never read logically and ReLU/ReLU6 keep them zero.
type ActivationOp struct {
	kind ActivationKind
	s, d []float32
}

// NewActivationOp binds an activation execution.
func NewActivationOp(dst, src *tensor.Tensor, kind ActivationKind) *ActivationOp {
	return &ActivationOp{kind: kind, s: src.Data(), d: dst.Data()}
}

// Run executes the activation on the pool.
func (o *ActivationOp) Run(p *sched.Pool) {
	p.Run(len(o.s), sched.Chunk(len(o.s), p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over flat element indices.
func (o *ActivationOp) RunChunk(_, start, end int) {
	s, d := o.s, o.d
	switch o.kind {
	case ActReLU:
		for i := start; i < end; i++ {
			d[i] = relu(s[i])
		}
	case ActReLU6:
		for i := start; i < end; i++ {
			d[i] = relu6(s[i])
		}
	case ActSigmoid:
		for i := start; i < end; i++ {
			d[i] = float32(1 / (1 + math.Exp(-float64(s[i]))))
		}
	case ActTanh:
		for i := start; i < end; i++ {
			d[i] = float32(math.Tanh(float64(s[i])))
		}
	}
}

// EltwiseOp is the prepared binary elementwise reduction over ≥2 inputs
// with identical shapes and layouts; dst may alias inputs[0]. The element
// count is re-derived from the destination's shape at every Run (not from
// buffer length) so the op stays correct when a dynamic-shape session
// shrinks the logical extent below the planned capacity.
type EltwiseOp struct {
	a   graph.EltwiseAttrs
	dst *tensor.Tensor
	d   []float32
	ins [][]float32
}

// NewEltwiseOp binds an eltwise execution.
func NewEltwiseOp(dst *tensor.Tensor, inputs []*tensor.Tensor, a *graph.EltwiseAttrs) *EltwiseOp {
	o := &EltwiseOp{a: *a, dst: dst, d: dst.Data(), ins: make([][]float32, len(inputs))}
	for i, in := range inputs {
		o.ins[i] = in.Data()
	}
	return o
}

// Run executes the reduction on the pool.
func (o *EltwiseOp) Run(p *sched.Pool) {
	total := o.dst.PhysicalLen()
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over flat element indices.
func (o *EltwiseOp) RunChunk(_, start, end int) {
	d := o.d
	copy(d[start:end], o.ins[0][start:end])
	for _, s := range o.ins[1:] {
		switch o.a.Type {
		case graph.EltSum:
			for i := start; i < end; i++ {
				d[i] += s[i]
			}
		case graph.EltProd:
			for i := start; i < end; i++ {
				d[i] *= s[i]
			}
		case graph.EltMax:
			for i := start; i < end; i++ {
				if s[i] > d[i] {
					d[i] = s[i]
				}
			}
		case graph.EltSub:
			for i := start; i < end; i++ {
				d[i] -= s[i]
			}
		}
	}
	if o.a.ReLU {
		for i := start; i < end; i++ {
			d[i] = relu(d[i])
		}
	}
}

// ScaleOp is the prepared per-channel y = x·scale + shift execution on an
// NC4HW4 tensor; BatchNorm folds into this form at prepare time. The
// parameters are packed to padded channel blocks once at creation (the seed
// re-packed them on every run).
type ScaleOp struct {
	s, d   []float32
	ps, pb []float32 // padded-lane-safe packed parameters
	c4, n  int
	hw     int
}

// NewScaleOp binds a scale execution.
func NewScaleOp(dst, src *tensor.Tensor, scale, shift []float32) *ScaleOp {
	c4 := tensor.UpDiv(src.Channels(), 4)
	o := &ScaleOp{
		s: src.Data(), d: dst.Data(),
		ps: make([]float32, c4*4), pb: make([]float32, c4*4),
		c4: c4, n: src.Batch(), hw: src.Height() * src.Width(),
	}
	copy(o.ps, scale)
	if shift != nil {
		copy(o.pb, shift)
	}
	return o
}

// Run executes the scale on the pool.
func (o *ScaleOp) Run(p *sched.Pool) {
	total := o.n * o.c4
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over (batch, channel-block) items.
func (o *ScaleOp) RunChunk(_, start, end int) {
	s, d := o.s, o.d
	for item := start; item < end; item++ {
		cz := item % o.c4
		s0, s1, s2, s3 := o.ps[cz*4], o.ps[cz*4+1], o.ps[cz*4+2], o.ps[cz*4+3]
		b0, b1, b2, b3 := o.pb[cz*4], o.pb[cz*4+1], o.pb[cz*4+2], o.pb[cz*4+3]
		off := item * o.hw * 4
		for p := 0; p < o.hw; p++ {
			i := off + p*4
			d[i] = s[i]*s0 + b0
			d[i+1] = s[i+1]*s1 + b1
			d[i+2] = s[i+2]*s2 + b2
			d[i+3] = s[i+3]*s3 + b3
		}
	}
}

// PadOp is the prepared spatial zero-padding execution on NC4HW4 tensors.
type PadOp struct {
	a            graph.PaddingAttrs
	s, d         []float32
	H, W, OH, OW int
	c4, n        int
	dst          *tensor.Tensor
}

// NewPadOp binds a padding execution.
func NewPadOp(dst, src *tensor.Tensor, a *graph.PaddingAttrs) *PadOp {
	return &PadOp{
		a: *a, s: src.Data(), d: dst.Data(), dst: dst,
		H: src.Height(), W: src.Width(), OH: dst.Height(), OW: dst.Width(),
		c4: tensor.UpDiv(src.Channels(), 4), n: src.Batch(),
	}
}

// Run executes the padding on the pool.
func (o *PadOp) Run(p *sched.Pool) {
	o.dst.Zero()
	total := o.n * o.c4
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over (batch, channel-block) items.
func (o *PadOp) RunChunk(_, start, end int) {
	s, d := o.s, o.d
	for item := start; item < end; item++ {
		srcOff := item * o.H * o.W * 4
		dstOff := item * o.OH * o.OW * 4
		for y := 0; y < o.H; y++ {
			srcRow := srcOff + y*o.W*4
			dstRow := dstOff + ((y+o.a.Top)*o.OW+o.a.Left)*4
			copy(d[dstRow:dstRow+o.W*4], s[srcRow:srcRow+o.W*4])
		}
	}
}

// ConcatChannel concatenates along the channel axis. When every input's
// channel count is a multiple of the pack factor, blocks are copied
// wholesale; otherwise a generic per-element path repacks. Allocation-free.
func ConcatChannel(dst *tensor.Tensor, inputs []*tensor.Tensor) {
	if dst.Layout() == tensor.NC4HW4 {
		allAligned := true
		for _, in := range inputs {
			if in.Channels()%4 != 0 || in.Layout() != tensor.NC4HW4 {
				allAligned = false
				break
			}
		}
		if allAligned {
			N := dst.Batch()
			H, W := dst.Height(), dst.Width()
			dc4 := tensor.UpDiv(dst.Channels(), 4)
			d := dst.Data()
			czOff := 0
			for _, in := range inputs {
				ic4 := in.Channels() / 4
				s := in.Data()
				for n := 0; n < N; n++ {
					for cz := 0; cz < ic4; cz++ {
						srcOff := ((n*ic4 + cz) * H * W) * 4
						dstOff := ((n*dc4 + czOff + cz) * H * W) * 4
						copy(d[dstOff:dstOff+H*W*4], s[srcOff:srcOff+H*W*4])
					}
				}
				czOff += ic4
			}
			return
		}
	}
	// Generic path.
	cOff := 0
	for _, in := range inputs {
		N, C, H, W := in.Batch(), in.Channels(), in.Height(), in.Width()
		for n := 0; n < N; n++ {
			for c := 0; c < C; c++ {
				for y := 0; y < H; y++ {
					for x := 0; x < W; x++ {
						dst.Set(n, cOff+c, y, x, in.At(n, c, y, x))
					}
				}
			}
		}
		cOff += C
	}
}

// ConcatAxis concatenates along an arbitrary axis on NCHW buffers.
func ConcatAxis(dst *tensor.Tensor, inputs []*tensor.Tensor, axis int) {
	shape := dst.Shape()
	outer := 1
	for _, v := range shape[:axis] {
		outer *= v
	}
	innerDst := 1
	for _, v := range shape[axis:] {
		innerDst *= v
	}
	d := dst.Data()
	off := 0
	for _, in := range inputs {
		is := in.Shape()
		innerSrc := 1
		for _, v := range is[axis:] {
			innerSrc *= v
		}
		s := in.Data()
		for o := 0; o < outer; o++ {
			copy(d[o*innerDst+off:o*innerDst+off+innerSrc], s[o*innerSrc:(o+1)*innerSrc])
		}
		off += innerSrc
	}
}

// FoldBatchNorm converts BatchNorm constants into (scale, shift) pairs:
// y = gamma·(x-mean)/sqrt(var+eps) + beta = x·s + b.
func FoldBatchNorm(gamma, beta, mean, variance []float32, eps float32) (scale, shift []float32) {
	n := len(gamma)
	scale = make([]float32, n)
	shift = make([]float32, n)
	for i := 0; i < n; i++ {
		s := gamma[i] / float32(math.Sqrt(float64(variance[i]+eps)))
		scale[i] = s
		shift[i] = beta[i] - s*mean[i]
	}
	return scale, shift
}

// InnerProduct is the prepared fully-connected kernel: a [batch, features] ×
// [features, out] GEMM on the transposed, panel-packed weight.
type InnerProduct struct {
	attrs    graph.InnerProductAttrs
	features int
	wT       []float32
	packed   *matmul.PackedB
	bias     []float32

	rs ipRun
}

type ipRun struct {
	s, d  []float32
	batch int
}

// PrepareInnerProduct transposes the [out, features] weight and packs it
// into GEMM panels.
func PrepareInnerProduct(weight, bias *tensor.Tensor, a *graph.InnerProductAttrs) *InnerProduct {
	out := weight.Dim(0)
	features := weight.Dim(1)
	ip := &InnerProduct{attrs: *a, features: features}
	ip.wT = make([]float32, features*out)
	w := weight.Data()
	for o := 0; o < out; o++ {
		for i := 0; i < features; i++ {
			ip.wT[i*out+o] = w[o*features+i]
		}
	}
	ip.packed = matmul.PackB(ip.wT, features, out)
	ip.bias = make([]float32, out)
	if bias != nil {
		copy(ip.bias, bias.Data())
	}
	return ip
}

// Run executes the FC layer on NCHW buffers (src flattened per batch).
func (ip *InnerProduct) Run(dst, src *tensor.Tensor, p *sched.Pool) {
	ip.rs = ipRun{s: src.Data(), d: dst.Data(), batch: src.Dim(0)}
	p.Run(ip.rs.batch, sched.Chunk(ip.rs.batch, p.Lanes(), 1), ip)
}

// RunChunk implements sched.Task over batch rows: the row-block GEMM plus
// the (row-local) bias and activation.
func (ip *InnerProduct) RunChunk(_, start, end int) {
	r := &ip.rs
	out := ip.attrs.OutputCount
	rows := end - start
	d := r.d[start*out : end*out]
	ip.packed.MulInto(d, r.s[start*ip.features:end*ip.features], rows)
	for n := 0; n < rows; n++ {
		for o := 0; o < out; o++ {
			v := d[n*out+o] + ip.bias[o]
			if ip.attrs.ReLU && v < 0 {
				v = 0
			}
			d[n*out+o] = v
		}
	}
}

// --- seed-compatible function forms (reference kernels, tests) -----------

// PoolNC4 executes max/average pooling on NC4HW4 tensors.
func PoolNC4(dst, src *tensor.Tensor, a *graph.PoolAttrs, p *sched.Pool) {
	NewPoolOp(dst, src, a).Run(p)
}

// Activation applies a unary activation elementwise over the physical
// buffer.
func Activation(dst, src *tensor.Tensor, kind ActivationKind, p *sched.Pool) {
	NewActivationOp(dst, src, kind).Run(p)
}

// Eltwise applies a binary elementwise reduction over ≥2 inputs with
// identical shapes and layouts, writing into dst (which may alias inputs[0]).
func Eltwise(dst *tensor.Tensor, inputs []*tensor.Tensor, a *graph.EltwiseAttrs, p *sched.Pool) {
	NewEltwiseOp(dst, inputs, a).Run(p)
}

// ScaleNC4 applies per-channel y = x·scale + shift on an NC4HW4 tensor.
func ScaleNC4(dst, src *tensor.Tensor, scale, shift []float32, p *sched.Pool) {
	NewScaleOp(dst, src, scale, shift).Run(p)
}

// PaddingNC4 zero-pads spatial dims on NC4HW4 tensors.
func PaddingNC4(dst, src *tensor.Tensor, a *graph.PaddingAttrs, p *sched.Pool) {
	NewPadOp(dst, src, a).Run(p)
}
