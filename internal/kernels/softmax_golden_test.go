package kernels

import (
	"math"
	"testing"

	"mnn/internal/tensor"
)

// softmaxOracle3 is an independent brute-force softmax for rank-3 tensors,
// used to pin SoftmaxRef's collapsed outer/axis/inner stride walk: it
// enumerates full (i, j, k) index triples and spells the reduced axis out
// explicitly per case, so a stride mix-up in the kernel cannot also be
// present here.
func softmaxOracle3(src *tensor.Tensor, axis int) *tensor.Tensor {
	shape := src.Shape()
	d0, d1, d2 := shape[0], shape[1], shape[2]
	at := func(i, j, k int) float64 { return float64(src.Data()[(i*d1+j)*d2+k]) }
	dst := tensor.New(shape...)
	out := dst.Data()
	set := func(i, j, k int, v float64) { out[(i*d1+j)*d2+k] = float32(v) }

	reduce := func(n int, get func(x int) float64, put func(x int, v float64)) {
		maxV := math.Inf(-1)
		for x := 0; x < n; x++ {
			if v := get(x); v > maxV {
				maxV = v
			}
		}
		var sum float64
		for x := 0; x < n; x++ {
			sum += math.Exp(get(x) - maxV)
		}
		for x := 0; x < n; x++ {
			put(x, math.Exp(get(x)-maxV)/sum)
		}
	}
	switch axis {
	case 0:
		for j := 0; j < d1; j++ {
			for k := 0; k < d2; k++ {
				reduce(d0, func(x int) float64 { return at(x, j, k) },
					func(x int, v float64) { set(x, j, k, v) })
			}
		}
	case 1:
		for i := 0; i < d0; i++ {
			for k := 0; k < d2; k++ {
				reduce(d1, func(x int) float64 { return at(i, x, k) },
					func(x int, v float64) { set(i, x, k, v) })
			}
		}
	case 2:
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				reduce(d2, func(x int) float64 { return at(i, j, x) },
					func(x int, v float64) { set(i, j, x, v) })
			}
		}
	}
	return dst
}

// TestSoftmaxGoldenLastAxis pins exact values on the last axis — the form
// attention uses. exp({0, ln2, ln4}) = {1, 2, 4}, so the probabilities are
// exactly {1/7, 2/7, 4/7}.
func TestSoftmaxGoldenLastAxis(t *testing.T) {
	ln2, ln4 := float32(math.Log(2)), float32(math.Log(4))
	src := tensor.FromData([]float32{
		0, ln2, ln4,
		ln4, ln2, 0,
	}, 2, 3)
	want := []float32{
		1.0 / 7, 2.0 / 7, 4.0 / 7,
		4.0 / 7, 2.0 / 7, 1.0 / 7,
	}
	for _, axis := range []int{1, -1} {
		dst := tensor.New(2, 3)
		SoftmaxRef(dst, src, axis)
		for i, w := range want {
			if g := dst.Data()[i]; math.Abs(float64(g-w)) > 1e-6 {
				t.Fatalf("axis %d: dst[%d] = %v, want %v", axis, i, g, w)
			}
		}
	}
}

// TestSoftmaxGoldenPerAxis checks SoftmaxRef against the index-tuple
// oracle on every axis of a rank-3 tensor, positive and negative spelling.
// The pre-fix bug normalized over the wrong extent whenever axis wasn't
// the row dimension of a matrix; any stride mix-up shows up here as a
// row/column transposition.
func TestSoftmaxGoldenPerAxis(t *testing.T) {
	src := tensor.NewRandom(99, 1, 2, 3, 4)
	for axis := 0; axis < 3; axis++ {
		want := softmaxOracle3(src, axis)
		for _, spelled := range []int{axis, axis - 3} {
			dst := tensor.New(2, 3, 4)
			SoftmaxRef(dst, src, spelled)
			if d := tensor.MaxAbsDiff(want, dst); d > 1e-6 {
				t.Fatalf("axis %d (spelled %d): max diff %g from oracle", axis, spelled, d)
			}
		}
	}
}

// TestSoftmaxAxisOutOfRangePanics: a bogus axis must fail loudly, not
// silently normalize over the wrong extent.
func TestSoftmaxAxisOutOfRangePanics(t *testing.T) {
	for _, axis := range []int{3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("axis %d on rank 3: no panic", axis)
				}
			}()
			SoftmaxRef(tensor.New(2, 3, 4), tensor.NewRandom(7, 1, 2, 3, 4), axis)
		}()
	}
}

// TestSoftmaxNC4HW4Staged: non-flat layouts are staged through NCHW, so a
// channel-axis softmax on NC4HW4 data matches the flat result exactly.
func TestSoftmaxNC4HW4Staged(t *testing.T) {
	flat := tensor.NewRandom(5, 1, 1, 6, 2, 2)
	want := tensor.New(1, 6, 2, 2)
	SoftmaxRef(want, flat, 1)

	packed := flat.ToLayout(tensor.NC4HW4)
	got := tensor.NewWithLayout(tensor.NC4HW4, 1, 6, 2, 2)
	SoftmaxRef(got, packed, 1)
	if d := tensor.MaxAbsDiff(want, got); d > 0 {
		t.Fatalf("NC4HW4 softmax differs from flat by %g", d)
	}
}
