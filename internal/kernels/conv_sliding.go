package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// SlidingConv is the prepared state of the sliding-window convolution on
// NC4HW4 tensors: weights are re-packed at pre-inference time into
// [oc/4][ic/4][kh][kw][4ic][4oc] order so that the innermost loop is a dense
// 4×4 multiply-accumulate block — the structure NEON kernels use, expressed
// in scalar Go (DESIGN.md substitution #1).
type SlidingConv struct {
	attrs  graph.Conv2DAttrs
	ic, oc int
	packed []float32 // [oc4][ic4][kh][kw][4][4]
	bias   []float32 // length oc4*4

	// rs is the bound per-run geometry. Prepared kernels are owned by one
	// session and sessions run exclusively, so a single slot suffices; it
	// lets RunChunk execute on pool workers without any per-run closure.
	rs slidingRun
}

type slidingRun struct {
	s, d                   []float32
	H, W, OH, OW           int
	ic4, oc4               int
	kh, kw, sh, sw, dh, dw int
	ph, pw                 int
	relu, relu6            bool
}

// PrepareSliding packs weights for the sliding-window kernel.
// weight is [oc, ic, kh, kw] (group must be 1; use PrepareDepthwise or the
// im2col path for grouped convolution). bias may be nil.
func PrepareSliding(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *SlidingConv {
	oc, ic := weight.Dim(0), weight.Dim(1)
	kh, kw := a.KernelH, a.KernelW
	oc4 := tensor.UpDiv(oc, 4)
	ic4 := tensor.UpDiv(ic, 4)
	sc := &SlidingConv{attrs: *a, ic: ic, oc: oc}
	sc.packed = make([]float32, oc4*ic4*kh*kw*16)
	w := weight.Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					v := w[((o*ic+i)*kh+ky)*kw+kx]
					oz, ol := o/4, o%4
					cz, cl := i/4, i%4
					idx := ((((oz*ic4+cz)*kh+ky)*kw+kx)*4+cl)*4 + ol
					sc.packed[idx] = v
				}
			}
		}
	}
	sc.bias = make([]float32, oc4*4)
	if bias != nil {
		copy(sc.bias, bias.Data())
	}
	return sc
}

// Run executes the convolution on the pool. src and dst must be NC4HW4.
// Steady-state calls are allocation-free.
func (sc *SlidingConv) Run(dst, src *tensor.Tensor, p *sched.Pool) {
	a := &sc.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	sc.rs = slidingRun{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: dst.Height(), OW: dst.Width(),
		ic4: tensor.UpDiv(sc.ic, 4), oc4: tensor.UpDiv(sc.oc, 4),
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		dh: dilOr1(a.DilationH), dw: dilOr1(a.DilationW),
		ph: ph, pw: pw, relu: a.ReLU, relu6: a.ReLU6,
	}
	total := N * sc.rs.oc4
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), sc)
}

// RunChunk implements sched.Task: one (batch, output-channel-block) pair
// per work item.
func (sc *SlidingConv) RunChunk(_, start, end int) {
	r := &sc.rs
	s, d := r.s, r.d
	for item := start; item < end; item++ {
		n, oz := item/r.oc4, item%r.oc4
		bias0, bias1, bias2, bias3 := sc.bias[oz*4], sc.bias[oz*4+1], sc.bias[oz*4+2], sc.bias[oz*4+3]
		dstBase := ((n*r.oc4 + oz) * r.OH) * r.OW * 4
		for oy := 0; oy < r.OH; oy++ {
			for ox := 0; ox < r.OW; ox++ {
				acc0, acc1, acc2, acc3 := bias0, bias1, bias2, bias3
				for cz := 0; cz < r.ic4; cz++ {
					srcCZ := ((n*r.ic4 + cz) * r.H) * r.W * 4
					wCZ := ((oz*r.ic4 + cz) * r.kh) * r.kw * 16
					for ky := 0; ky < r.kh; ky++ {
						iy := oy*r.sh - r.ph + ky*r.dh
						if iy < 0 || iy >= r.H {
							continue
						}
						rowOff := srcCZ + iy*r.W*4
						wKY := wCZ + ky*r.kw*16
						for kx := 0; kx < r.kw; kx++ {
							ix := ox*r.sw - r.pw + kx*r.dw
							if ix < 0 || ix >= r.W {
								continue
							}
							so := rowOff + ix*4
							s0, s1, s2, s3 := s[so], s[so+1], s[so+2], s[so+3]
							wb := sc.packed[wKY+kx*16 : wKY+kx*16+16]
							acc0 += s0*wb[0] + s1*wb[4] + s2*wb[8] + s3*wb[12]
							acc1 += s0*wb[1] + s1*wb[5] + s2*wb[9] + s3*wb[13]
							acc2 += s0*wb[2] + s1*wb[6] + s2*wb[10] + s3*wb[14]
							acc3 += s0*wb[3] + s1*wb[7] + s2*wb[11] + s3*wb[15]
						}
					}
				}
				if r.relu6 {
					acc0, acc1, acc2, acc3 = relu6(acc0), relu6(acc1), relu6(acc2), relu6(acc3)
				} else if r.relu {
					acc0, acc1, acc2, acc3 = relu(acc0), relu(acc1), relu(acc2), relu(acc3)
				}
				do := dstBase + (oy*r.OW+ox)*4
				d[do] = acc0
				d[do+1] = acc1
				d[do+2] = acc2
				d[do+3] = acc3
			}
		}
	}
}

func relu(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

func relu6(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 6 {
		return 6
	}
	return v
}

func strideOr1(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

func dilOr1(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}
