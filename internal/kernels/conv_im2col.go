package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Im2colConv is the prepared state of the generic im2col+GEMM convolution.
// This is the strategy TF-Lite-style engines apply to every convolution and
// the path MNN itself uses for configurations outside the Winograd/sliding
// sweet spots (grouped non-depthwise convs, exotic dilations). Activations
// are NCHW. The per-group transposed weights are pre-packed into 64-byte
// GEMM panels at prepare time.
type Im2colConv struct {
	attrs  graph.Conv2DAttrs
	ic, oc int
	// wT is [group][ickhkw/g][oc/g] — transposed per-group weight.
	wT []float32
	// packed[g] is group g's weight in matmul panels.
	packed []*matmul.PackedB
	bias   []float32

	rs       im2colRun
	colsT    im2colCols
	gemmT    im2colGemm
	scatterT im2colScatter
}

type im2colRun struct {
	s, d                   []float32
	H, W, OH, OW           int
	kh, kw, sh, sw, dh, dw int
	ph, pw                 int
	group, icg, ocg, k, px int
	n, g                   int // current (batch, group) of the sequential outer loop
	cols, prod             []float32
}

type im2colCols struct{ c *Im2colConv }
type im2colGemm struct{ c *Im2colConv }
type im2colScatter struct{ c *Im2colConv }

// PrepareIm2col packs the [oc, ic/g, kh, kw] weight into per-group
// transposed GEMM operands.
func PrepareIm2col(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *Im2colConv {
	oc := weight.Dim(0)
	icg := weight.Dim(1) // ic per group
	kh, kw := a.KernelH, a.KernelW
	group := a.Group
	if group <= 0 {
		group = 1
	}
	ocg := oc / group
	k := icg * kh * kw
	c := &Im2colConv{attrs: *a, ic: icg * group, oc: oc}
	c.wT = make([]float32, group*k*ocg)
	w := weight.Data()
	for g := 0; g < group; g++ {
		for o := 0; o < ocg; o++ {
			for i := 0; i < k; i++ {
				c.wT[(g*k+i)*ocg+o] = w[(g*ocg+o)*k+i]
			}
		}
	}
	c.packed = make([]*matmul.PackedB, group)
	for g := 0; g < group; g++ {
		c.packed[g] = matmul.PackB(c.wT[g*k*ocg:(g+1)*k*ocg], k, ocg)
	}
	c.bias = make([]float32, oc)
	if bias != nil {
		copy(c.bias, bias.Data())
	}
	c.colsT.c, c.gemmT.c, c.scatterT.c = c, c, c
	return c
}

// WorkspaceSize returns the scratch float32 count for a batch-element run:
// the im2col patch matrix [oh*ow, icg*kh*kw] plus the product [oh*ow, ocg].
func (c *Im2colConv) WorkspaceSize(h, w int) int {
	a := &c.attrs
	oh, ow, err := graph.ConvOutputSize(h, w, a)
	if err != nil {
		return 0
	}
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := c.ic / group
	ocg := c.oc / group
	return oh*ow*icg*a.KernelH*a.KernelW + oh*ow*ocg
}

// Run executes the convolution on NCHW tensors over the pool. workspace may
// be nil or at least WorkspaceSize(h, w) floats; with a planner-provided
// workspace, steady-state calls are allocation-free.
func (c *Im2colConv) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	a := &c.attrs
	N, _, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := c.ic / group
	ocg := c.oc / group
	k := icg * a.KernelH * a.KernelW
	px := OH * OW
	if len(workspace) < px*k+px*ocg {
		workspace = make([]float32, px*k+px*ocg)
	}
	lanes := p.Lanes()
	c.rs = im2colRun{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: OH, OW: OW,
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		dh: dilOr1(a.DilationH), dw: dilOr1(a.DilationW),
		ph: ph, pw: pw,
		group: group, icg: icg, ocg: ocg, k: k, px: px,
		cols: workspace[:px*k],
		prod: workspace[px*k : px*k+px*ocg],
	}

	for n := 0; n < N; n++ {
		for g := 0; g < group; g++ {
			c.rs.n, c.rs.g = n, g
			// im2col: rows are output pixels, columns are (ic, ky, kx).
			p.Run(px, sched.Chunk(px, lanes, elemChunksPerLane), &c.colsT)
			// GEMM [px, k] × [k, ocg] → [px, ocg] on packed panels.
			p.Run(px, sched.Chunk(px, lanes, 1), &c.gemmT)
			// Scatter to NCHW with bias + activation.
			p.Run(ocg, sched.Chunk(ocg, lanes, elemChunksPerLane), &c.scatterT)
		}
	}
}

func (t *im2colCols) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	s := r.s
	for p := start; p < end; p++ {
		oy, ox := p/r.OW, p%r.OW
		row := r.cols[p*r.k : (p+1)*r.k]
		idx := 0
		for i := 0; i < r.icg; i++ {
			srcC := r.g*r.icg + i
			chanOff := (r.n*c.ic + srcC) * r.H * r.W
			for ky := 0; ky < r.kh; ky++ {
				iy := oy*r.sh - r.ph + ky*r.dh
				for kx := 0; kx < r.kw; kx++ {
					ix := ox*r.sw - r.pw + kx*r.dw
					if iy < 0 || iy >= r.H || ix < 0 || ix >= r.W {
						row[idx] = 0
					} else {
						row[idx] = s[chanOff+iy*r.W+ix]
					}
					idx++
				}
			}
		}
	}
}

func (t *im2colGemm) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	c.packed[r.g].MulInto(r.prod[start*r.ocg:end*r.ocg], r.cols[start*r.k:end*r.k], end-start)
}

func (t *im2colScatter) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	a := &c.attrs
	d := r.d
	for o := start; o < end; o++ {
		dstC := r.g*r.ocg + o
		b := c.bias[dstC]
		off := (r.n*c.oc + dstC) * r.OH * r.OW
		for p := 0; p < r.px; p++ {
			v := r.prod[p*r.ocg+o] + b
			if a.ReLU6 {
				v = relu6(v)
			} else if a.ReLU {
				v = relu(v)
			}
			d[off+p] = v
		}
	}
}
