package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/tensor"
)

// Im2colConv is the prepared state of the generic im2col+GEMM convolution.
// This is the strategy TF-Lite-style engines apply to every convolution and
// the path MNN itself uses for configurations outside the Winograd/sliding
// sweet spots (grouped non-depthwise convs, exotic dilations). Activations
// are NCHW.
type Im2colConv struct {
	attrs  graph.Conv2DAttrs
	ic, oc int
	// wT is [group][ickhkw/g][oc/g] — transposed per-group weight.
	wT   []float32
	bias []float32
}

// PrepareIm2col packs the [oc, ic/g, kh, kw] weight into per-group
// transposed GEMM operands.
func PrepareIm2col(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *Im2colConv {
	oc := weight.Dim(0)
	icg := weight.Dim(1) // ic per group
	kh, kw := a.KernelH, a.KernelW
	group := a.Group
	if group <= 0 {
		group = 1
	}
	ocg := oc / group
	k := icg * kh * kw
	c := &Im2colConv{attrs: *a, ic: icg * group, oc: oc}
	c.wT = make([]float32, group*k*ocg)
	w := weight.Data()
	for g := 0; g < group; g++ {
		for o := 0; o < ocg; o++ {
			for i := 0; i < k; i++ {
				c.wT[(g*k+i)*ocg+o] = w[(g*ocg+o)*k+i]
			}
		}
	}
	c.bias = make([]float32, oc)
	if bias != nil {
		copy(c.bias, bias.Data())
	}
	return c
}

// WorkspaceSize returns the scratch float32 count for a batch-element run:
// the im2col patch matrix [oh*ow, icg*kh*kw] plus the product [oh*ow, ocg].
func (c *Im2colConv) WorkspaceSize(h, w int) int {
	a := &c.attrs
	oh, ow, err := graph.ConvOutputSize(h, w, a)
	if err != nil {
		return 0
	}
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := c.ic / group
	ocg := c.oc / group
	return oh*ow*icg*a.KernelH*a.KernelW + oh*ow*ocg
}

// Run executes the convolution on NCHW tensors.
func (c *Im2colConv) Run(dst, src *tensor.Tensor, threads int, workspace []float32) {
	a := &c.attrs
	N, _, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	kh, kw := a.KernelH, a.KernelW
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	dh, dw := dilOr1(a.DilationH), dilOr1(a.DilationW)
	ph, pw := graph.ConvPadding(H, W, a)
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := c.ic / group
	ocg := c.oc / group
	k := icg * kh * kw
	px := OH * OW
	if workspace == nil {
		workspace = make([]float32, px*k+px*ocg)
	}
	cols := workspace[:px*k]
	prod := workspace[px*k : px*k+px*ocg]
	s := src.Data()
	d := dst.Data()

	for n := 0; n < N; n++ {
		for g := 0; g < group; g++ {
			// im2col: rows are output pixels, columns are (ic, ky, kx).
			ParallelFor(threads, px, func(start, end int) {
				for p := start; p < end; p++ {
					oy, ox := p/OW, p%OW
					row := cols[p*k : (p+1)*k]
					idx := 0
					for i := 0; i < icg; i++ {
						srcC := g*icg + i
						chanOff := (n*c.ic + srcC) * H * W
						for ky := 0; ky < kh; ky++ {
							iy := oy*sh - ph + ky*dh
							for kx := 0; kx < kw; kx++ {
								ix := ox*sw - pw + kx*dw
								if iy < 0 || iy >= H || ix < 0 || ix >= W {
									row[idx] = 0
								} else {
									row[idx] = s[chanOff+iy*W+ix]
								}
								idx++
							}
						}
					}
				}
			})
			// GEMM [px, k] × [k, ocg] → [px, ocg].
			ParallelFor(threads, px, func(start, end int) {
				matmul.Mul(prod[start*ocg:end*ocg], cols[start*k:end*k],
					c.wT[g*k*ocg:(g+1)*k*ocg], end-start, k, ocg)
			})
			// Scatter to NCHW with bias + activation.
			ParallelFor(threads, ocg, func(start, end int) {
				for o := start; o < end; o++ {
					dstC := g*ocg + o
					b := c.bias[dstC]
					off := (n*c.oc + dstC) * OH * OW
					for p := 0; p < px; p++ {
						v := prod[p*ocg+o] + b
						if a.ReLU6 {
							v = relu6(v)
						} else if a.ReLU {
							v = relu(v)
						}
						d[off+p] = v
					}
				}
			})
		}
	}
}
