package kernels

import (
	"math"

	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Prepared kernels for the transformer op set. They follow the same pattern
// as ops.go — bind once, Run dispatches RunChunk onto the persistent pool,
// zero per-run allocation — with one addition for dynamic shapes: geometry
// (row counts, sequence lengths) is re-derived from the bound tensors'
// *current* shapes at every Run, never captured from buffer lengths. A
// dynamic-shape session mutates those shapes in place between runs; the
// planned buffers keep their max-shape capacity underneath.
//
// Batched ≡ unbatched bitwise: every op below either chunks work along a
// unit whose result is computed independently of all other units (rows for
// LayerNorm/Softmax/weight-form MatMul via matmul.PackedB's chunk-invariant
// contract, (batch, head) pairs for the attention GEMMs, single elements
// for GELU/Transpose), so batch concatenation and worker-count changes
// cannot move a single float.

// maxTransposeRank bounds Transpose to fixed-size stride arrays so RunChunk
// stays allocation-free.
const maxTransposeRank = 6

// LayerNormOp normalizes over the last axis with per-feature gamma/beta.
type LayerNormOp struct {
	eps        float32
	dst, src   *tensor.Tensor
	s, d       []float32
	gamma, bet []float32

	d1 int // last-axis extent (static: feature dim never changes)
}

// NewLayerNormOp binds a layer-norm execution.
func NewLayerNormOp(dst, src, gamma, beta *tensor.Tensor, a *graph.LayerNormAttrs) *LayerNormOp {
	shape := src.Shape()
	return &LayerNormOp{
		eps: a.Eps, dst: dst, src: src,
		s: src.Data(), d: dst.Data(),
		gamma: gamma.Data(), bet: beta.Data(),
		d1: shape[len(shape)-1],
	}
}

// Run executes the layer norm on the pool, chunked over rows.
func (o *LayerNormOp) Run(p *sched.Pool) {
	shape := o.src.Shape()
	rows := 1
	for _, e := range shape[:len(shape)-1] {
		rows *= e
	}
	p.Run(rows, sched.Chunk(rows, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over rows.
func (o *LayerNormOp) RunChunk(_, start, end int) {
	d1 := o.d1
	for r := start; r < end; r++ {
		row := o.s[r*d1 : (r+1)*d1]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d1)
		var variance float64
		for _, v := range row {
			dv := float64(v) - mean
			variance += dv * dv
		}
		variance /= float64(d1)
		inv := float32(1 / math.Sqrt(variance+float64(o.eps)))
		out := o.d[r*d1 : (r+1)*d1]
		for i, v := range row {
			out[i] = (v-float32(mean))*inv*o.gamma[i] + o.bet[i]
		}
	}
}

// GELUOp applies the tanh-approximated GELU elementwise.
type GELUOp struct {
	dst, src *tensor.Tensor
	s, d     []float32
}

// NewGELUOp binds a GELU execution.
func NewGELUOp(dst, src *tensor.Tensor) *GELUOp {
	return &GELUOp{dst: dst, src: src, s: src.Data(), d: dst.Data()}
}

// Run executes the GELU on the pool. PhysicalLen covers NC4HW4 padding
// lanes too, which is harmless: GELU(0) == 0 keeps them zero.
func (o *GELUOp) Run(p *sched.Pool) {
	total := o.src.PhysicalLen()
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over flat element indices.
func (o *GELUOp) RunChunk(_, start, end int) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i := start; i < end; i++ {
		x := float64(o.s[i])
		o.d[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// SoftmaxOp is the prepared last-axis softmax on flat tensors, chunked over
// rows. Only axis == rank-1 (or -1) reaches this op; other axes run through
// SoftmaxRef.
type SoftmaxOp struct {
	dst, src *tensor.Tensor
	s, d     []float32
}

// NewSoftmaxOp binds a last-axis softmax execution.
func NewSoftmaxOp(dst, src *tensor.Tensor) *SoftmaxOp {
	return &SoftmaxOp{dst: dst, src: src, s: src.Data(), d: dst.Data()}
}

// Run executes the softmax on the pool.
func (o *SoftmaxOp) Run(p *sched.Pool) {
	shape := o.src.Shape()
	rows := 1
	for _, e := range shape[:len(shape)-1] {
		rows *= e
	}
	p.Run(rows, sched.Chunk(rows, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over rows.
func (o *SoftmaxOp) RunChunk(_, start, end int) {
	shape := o.src.Shape()
	d1 := shape[len(shape)-1]
	for r := start; r < end; r++ {
		row := o.s[r*d1 : (r+1)*d1]
		out := o.d[r*d1 : (r+1)*d1]
		maxV := float64(math.Inf(-1))
		for _, v := range row {
			if float64(v) > maxV {
				maxV = float64(v)
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxV)
		}
		for i, v := range row {
			out[i] = float32(math.Exp(float64(v)-maxV) / sum)
		}
	}
}

// TransposeOp permutes axes of a flat tensor, chunked over output elements.
type TransposeOp struct {
	dst, src *tensor.Tensor
	s, d     []float32
	perm     [maxTransposeRank]int
	rank     int

	inStride, outStride [maxTransposeRank]int
}

// NewTransposeOp binds a transpose execution.
func NewTransposeOp(dst, src *tensor.Tensor, a *graph.TransposeAttrs) *TransposeOp {
	o := &TransposeOp{dst: dst, src: src, s: src.Data(), d: dst.Data(), rank: len(a.Perm)}
	copy(o.perm[:], a.Perm)
	return o
}

// Run executes the transpose on the pool. Strides are re-derived from the
// current shapes here (once per run, not per chunk).
func (o *TransposeOp) Run(p *sched.Pool) {
	in, out := o.src.Shape(), o.dst.Shape()
	acc := 1
	for i := o.rank - 1; i >= 0; i-- {
		o.inStride[i] = acc
		acc *= in[i]
	}
	total := 1
	for i := o.rank - 1; i >= 0; i-- {
		o.outStride[i] = total
		total *= out[i]
	}
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), o)
}

// RunChunk implements sched.Task over flat output indices.
func (o *TransposeOp) RunChunk(_, start, end int) {
	for flat := start; flat < end; flat++ {
		rem := flat
		srcOff := 0
		for j := 0; j < o.rank; j++ {
			srcOff += (rem / o.outStride[j]) * o.inStride[o.perm[j]]
			rem %= o.outStride[j]
		}
		o.d[flat] = o.s[srcOff]
	}
}

type matMulForm uint8

const (
	mmWeight matMulForm = iota // activation × packed constant weight
	mmQK                       // [B,LA,D] × [B,LB,D]ᵀ per head
	mmAV                       // [B,H·LA,LB] × [B,LB,D] per head
)

// MatMulOp covers the three MatMul forms of graph.MatMulAttrs. The weight
// form packs the constant [K,N] weight into matmul.PackedB panels once and
// row-chunks MulInto (bitwise chunk-invariant); the attention forms chunk
// over (batch, head) pairs with plain ascending-index float32 dot products,
// applying Scale as a single multiply after each dot.
type MatMulOp struct {
	form  matMulForm
	heads int
	scale float32 // resolved: 1 when attrs.Scale == 0

	dst, a, b *tensor.Tensor
	ad, bd, d []float32

	// Weight form only.
	k, n   int
	packed *matmul.PackedB
	bias   []float32
}

// NewMatMulWeightOp binds the weight form: src [.., M, K] × w [K, N] with
// optional bias [N]. When packB is false the GEMM runs on the unpacked
// weight via matmul.Mul — the tuner's cost model picks between the two.
func NewMatMulWeightOp(dst, src, w, bias *tensor.Tensor, a *graph.MatMulAttrs, packB bool) *MatMulOp {
	ws := w.Shape()
	o := &MatMulOp{
		form: mmWeight, scale: resolveScale(a.Scale),
		dst: dst, a: src, ad: src.Data(), d: dst.Data(),
		k: ws[0], n: ws[1],
	}
	if packB {
		o.packed = matmul.PackB(w.Data(), o.k, o.n)
	} else {
		o.bd = w.Data()
	}
	if bias != nil {
		o.bias = bias.Data()
	}
	return o
}

// NewMatMulBatchedOp binds the QK (TransposeB) or AV form over two rank-3
// activations.
func NewMatMulBatchedOp(dst, a, b *tensor.Tensor, attrs *graph.MatMulAttrs) *MatMulOp {
	form := mmAV
	if attrs.TransposeB {
		form = mmQK
	}
	return &MatMulOp{
		form: form, heads: attrs.Heads, scale: resolveScale(attrs.Scale),
		dst: dst, a: a, b: b,
		ad: a.Data(), bd: b.Data(), d: dst.Data(),
	}
}

func resolveScale(s float32) float32 {
	if s == 0 {
		return 1
	}
	return s
}

// Run executes the GEMM on the pool.
func (o *MatMulOp) Run(p *sched.Pool) {
	if o.form == mmWeight {
		shape := o.a.Shape()
		rows := 1
		for _, e := range shape[:len(shape)-1] {
			rows *= e
		}
		p.Run(rows, sched.Chunk(rows, p.Lanes(), 1), o)
		return
	}
	total := o.a.Dim(0) * o.heads
	p.Run(total, sched.Chunk(total, p.Lanes(), 1), o)
}

// RunChunk implements sched.Task: rows for the weight form, (batch, head)
// pairs for the attention forms.
func (o *MatMulOp) RunChunk(_, start, end int) {
	switch o.form {
	case mmWeight:
		o.runWeight(start, end)
	case mmQK:
		o.runQK(start, end)
	case mmAV:
		o.runAV(start, end)
	}
}

func (o *MatMulOp) runWeight(start, end int) {
	k, n := o.k, o.n
	rows := end - start
	d := o.d[start*n : end*n]
	if o.packed != nil {
		o.packed.MulInto(d, o.ad[start*k:end*k], rows)
	} else {
		matmul.Mul(d, o.ad[start*k:end*k], o.bd, rows, k, n)
	}
	if o.scale != 1 {
		for i := range d {
			d[i] *= o.scale
		}
	}
	if o.bias != nil {
		for r := 0; r < rows; r++ {
			row := d[r*n : (r+1)*n]
			for j, b := range o.bias {
				row[j] += b
			}
		}
	}
}

func (o *MatMulOp) runQK(start, end int) {
	qs, ks := o.a.Shape(), o.b.Shape()
	la, d := qs[1], qs[2]
	lb := ks[1]
	h := o.heads
	dh := d / h
	for item := start; item < end; item++ {
		b, hd := item/h, item%h
		for i := 0; i < la; i++ {
			q := o.ad[(b*la+i)*d+hd*dh:]
			outRow := o.d[(b*h*la+hd*la+i)*lb:]
			for j := 0; j < lb; j++ {
				kr := o.bd[(b*lb+j)*d+hd*dh:]
				var acc float32
				for p := 0; p < dh; p++ {
					acc += q[p] * kr[p]
				}
				outRow[j] = acc * o.scale
			}
		}
	}
}

func (o *MatMulOp) runAV(start, end int) {
	as, vs := o.a.Shape(), o.b.Shape()
	hla, lb := as[1], as[2]
	d := vs[2]
	h := o.heads
	la := hla / h
	dh := d / h
	for item := start; item < end; item++ {
		b, hd := item/h, item%h
		for i := 0; i < la; i++ {
			score := o.ad[(b*hla+hd*la+i)*lb:]
			out := o.d[(b*la+i)*d+hd*dh:]
			for j := 0; j < dh; j++ {
				var acc float32
				for p := 0; p < lb; p++ {
					acc += score[p] * o.bd[(b*lb+p)*d+hd*dh+j]
				}
				out[j] = acc * o.scale
			}
		}
	}
}
