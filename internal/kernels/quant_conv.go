package kernels

import (
	"math"

	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// Quantized (int8) prepared kernels — the runtime half of the paper's
// Section 3.1 model quantization. Weights are quantized symmetrically per
// output channel at prepare time; activations are quantized on entry with
// either the calibrated per-tensor scale (quant.Calibrate) or, as a
// fallback, a per-sample max-abs scale derived on the fly. Accumulation is
// int32, and requantization back to float32 (with bias and fused
// activation) happens in the same pass that scatters the output, so the
// fp32↔int8 boundary never materializes an extra tensor.
//
// Every per-sample decision (quantization scale, GEMM row blocking) is a
// pure function of that sample's data, so a batch-N run is bitwise
// identical to N single runs — the invariant the serving micro-batcher
// relies on, preserved by the conformance suite.

// quantizeActVal quantizes one activation value with the inverse scale:
// round half away from zero, clamped to ±127.
func quantizeActVal(v, inv float32) int8 {
	r := v * inv
	if r >= 0 {
		r += 0.5
		if r >= 127 {
			return 127
		}
		return int8(int32(r))
	}
	r -= 0.5
	if r <= -127 {
		return -127
	}
	return int8(int32(r))
}

// quantizeActValU quantizes a provably non-negative activation to an
// unsigned byte (0..254): same step size as the signed path, double the
// headroom above a calibrated scale, and exact zeros stay zero so the int8
// GEMM's sparsity skip fires.
func quantizeActValU(v, inv float32) uint8 {
	r := v*inv + 0.5
	if r >= 254 {
		return 254
	}
	if r < 0 {
		return 0
	}
	return uint8(int32(r))
}

// maxAbs32 scans a slice for its largest absolute value.
func maxAbs32(s []float32) float32 {
	var m float32
	for _, v := range s {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// maxAbsNC4Sample scans one NC4HW4 sample slice (C channels over hw spatial
// positions) for its largest logical absolute value. Pad lanes of a
// partially-used last channel block are excluded: arena-backed activations
// recycle bytes, so pads can hold stale values that must not inflate a
// dynamic quantization scale (or, worse, vary between batched and unbatched
// arena layouts).
func maxAbsNC4Sample(s []float32, C, hw int) float32 {
	full := C / 4
	m := maxAbs32(s[:full*hw*4])
	if rem := C - full*4; rem > 0 {
		tail := s[full*hw*4:]
		for p := 0; p < hw; p++ {
			for l := 0; l < rem; l++ {
				v := tail[p*4+l]
				if v < 0 {
					v = -v
				}
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// actScaleFromMax resolves the activation scale for one sample: the
// calibrated scale when available, otherwise derived from the (logical,
// pad-free) max-abs by the shared tensor.QuantScale policy — the same
// derivation calibration uses, so the two modes agree on identical data.
func actScaleFromMax(calibrated, maxAbs float32) float32 {
	if calibrated > 0 {
		return calibrated
	}
	return tensor.QuantScale(float64(maxAbs))
}

// quantizeWeightChannels quantizes the [channels][per] row-major weight
// symmetrically per channel: q = roundToEven(w/scale), scale = maxAbs/127
// (1 for an all-zero channel, so zero weights round-trip exactly).
func quantizeWeightChannels(w []float32, channels, per int) (q []int8, scales []float32) {
	q = make([]int8, channels*per)
	scales = make([]float32, channels)
	for c := 0; c < channels; c++ {
		row := w[c*per : (c+1)*per]
		scale := tensor.QuantScale(float64(maxAbs32(row)))
		scales[c] = scale
		for i, v := range row {
			r := math.RoundToEven(float64(v / scale))
			if r > 127 {
				r = 127
			}
			if r < -127 {
				r = -127
			}
			q[c*per+i] = int8(r)
		}
	}
	return q, scales
}

// ---------------------------------------------------------------------------
// QuantConv: group-1 convolution as quantize+im2col → int8 GEMM → requantize.

// QuantConv is the prepared int8 convolution for group-1 convs: the im2col
// patch matrix is quantized as it is gathered, multiplied against the
// panel-packed int8 weight with int32 accumulation, and requantized (scale,
// bias, fused activation) while scattering to the output layout. Src and dst
// may be NCHW or NC4HW4.
type QuantConv struct {
	attrs   graph.Conv2DAttrs
	ic, oc  int
	k       int // ic·kh·kw
	packed  *matmul.PackedBInt8
	wScales []float32 // per-output-channel weight scales
	bias    []float32
	// InputScale is the calibrated activation scale (quant.Calibrate); zero
	// derives a per-sample max-abs scale at run time.
	InputScale float32
	// Unsigned quantizes the input as non-negative bytes. Only set it when
	// the input tensor is provably ≥ 0 (optimizer.PlanInt8's dataflow pass):
	// it restores the GEMM's correlated-zero skip on post-ReLU sparsity.
	Unsigned bool

	outScale []float32 // per-channel inScale·wScale, refreshed per sample

	rs       quantConvRun
	colsT    quantConvCols
	gemmT    quantConvGemm
	scatterT quantConvScatter
}

type quantConvRun struct {
	s, d                   []float32
	nc4In, nc4Out          bool
	H, W, OH, OW           int
	kh, kw, sh, sw, dh, dw int
	ph, pw                 int
	px                     int
	n                      int // current batch element
	inv                    float32
	cols                   []int8
	acc                    []int32
	rowSums                []int32
}

type quantConvCols struct{ c *QuantConv }
type quantConvGemm struct{ c *QuantConv }
type quantConvScatter struct{ c *QuantConv }

// PrepareQuantConv quantizes the [oc, ic, kh, kw] group-1 weight per output
// channel and packs it into int8 GEMM panels. inputScale zero means derive
// per sample at run time.
func PrepareQuantConv(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs, inputScale float32) *QuantConv {
	oc, ic := weight.Dim(0), weight.Dim(1)
	kh, kw := a.KernelH, a.KernelW
	k := ic * kh * kw
	c := &QuantConv{attrs: *a, ic: ic, oc: oc, k: k, InputScale: inputScale}
	q, scales := quantizeWeightChannels(weight.Data(), oc, k)
	c.wScales = scales
	// Transpose [oc][k] → [k][oc] for the GEMM right operand.
	bT := make([]int8, k*oc)
	for o := 0; o < oc; o++ {
		for i := 0; i < k; i++ {
			bT[i*oc+o] = q[o*k+i]
		}
	}
	c.packed = matmul.PackBInt8(bT, k, oc)
	c.bias = make([]float32, oc)
	if bias != nil {
		copy(c.bias, bias.Data())
	}
	c.outScale = make([]float32, oc)
	c.colsT.c, c.gemmT.c, c.scatterT.c = c, c, c
	return c
}

// QuantConvWorkspaceFloats is the planner requirement for one batch
// element: the int8 patch matrix [oh·ow, ic·kh·kw], the int32 accumulator
// [oh·ow, oc], and the GEMM row-sum scratch, all counted in float32 units.
func QuantConvWorkspaceFloats(a *graph.Conv2DAttrs, ic, oc, oh, ow int) int {
	px := oh * ow
	k := ic * a.KernelH * a.KernelW
	return int8Floats(px*k) + px*oc + matmul.Int8GemmScratch(px)
}

// WorkspaceSize mirrors QuantConvWorkspaceFloats from the prepared state.
func (c *QuantConv) WorkspaceSize(oh, ow int) int {
	return QuantConvWorkspaceFloats(&c.attrs, c.ic, c.oc, oh, ow)
}

// Run executes the quantized convolution on the pool. workspace may be nil
// or at least WorkspaceSize(oh, ow) floats; with a planner-provided
// workspace, steady-state calls are allocation-free.
func (c *QuantConv) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	a := &c.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	px := OH * OW
	cols, rest := carveInt8(workspace, px*c.k)
	acc, rest := carveInt32(rest, px*c.oc)
	rowSums, _ := carveInt32(rest, matmul.Int8GemmScratch(px))
	c.rs = quantConvRun{
		s: src.Data(), d: dst.Data(),
		nc4In: src.Layout() == tensor.NC4HW4, nc4Out: dst.Layout() == tensor.NC4HW4,
		H: H, W: W, OH: OH, OW: OW,
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		dh: dilOr1(a.DilationH), dw: dilOr1(a.DilationW),
		ph: ph, pw: pw, px: px,
		cols: cols, acc: acc, rowSums: rowSums,
	}
	lanes := p.Lanes()
	inSampleLen := len(c.rs.s) / N
	for n := 0; n < N; n++ {
		c.rs.n = n
		sample := c.rs.s[n*inSampleLen : (n+1)*inSampleLen]
		var m float32
		if c.InputScale == 0 {
			if c.rs.nc4In {
				m = maxAbsNC4Sample(sample, c.ic, H*W)
			} else {
				m = maxAbs32(sample)
			}
		}
		scale := actScaleFromMax(c.InputScale, m)
		c.rs.inv = 1 / scale
		for o, ws := range c.wScales {
			c.outScale[o] = scale * ws
		}
		// Quantize + im2col: rows are output pixels, columns are (c, ky, kx).
		p.Run(px, sched.Chunk(px, lanes, elemChunksPerLane), &c.colsT)
		// Int8 GEMM [px, k] × [k, oc] → int32 [px, oc] on packed panels.
		p.Run(px, sched.Chunk(px, lanes, 1), &c.gemmT)
		// Requantize + bias + activation, scattered to the output layout.
		p.Run(c.oc, sched.Chunk(c.oc, lanes, elemChunksPerLane), &c.scatterT)
	}
}

func (t *quantConvCols) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	s := r.s
	hw := r.H * r.W
	ic4 := tensor.UpDiv(c.ic, 4)
	inv := r.inv
	for p := start; p < end; p++ {
		oy, ox := p/r.OW, p%r.OW
		row := r.cols[p*c.k : (p+1)*c.k]
		idx := 0
		for ch := 0; ch < c.ic; ch++ {
			chanOff := (r.n*c.ic + ch) * hw
			stride := 1
			if r.nc4In {
				chanOff = ((r.n*ic4+ch>>2)*hw)*4 + ch&3
				stride = 4
			}
			for ky := 0; ky < r.kh; ky++ {
				iy := oy*r.sh - r.ph + ky*r.dh
				if iy < 0 || iy >= r.H {
					for kx := 0; kx < r.kw; kx++ {
						row[idx] = 0
						idx++
					}
					continue
				}
				rowOff := chanOff + iy*r.W*stride
				if c.Unsigned {
					for kx := 0; kx < r.kw; kx++ {
						ix := ox*r.sw - r.pw + kx*r.dw
						if ix < 0 || ix >= r.W {
							row[idx] = 0
						} else {
							row[idx] = int8(quantizeActValU(s[rowOff+ix*stride], inv))
						}
						idx++
					}
					continue
				}
				for kx := 0; kx < r.kw; kx++ {
					ix := ox*r.sw - r.pw + kx*r.dw
					if ix < 0 || ix >= r.W {
						row[idx] = 0
					} else {
						row[idx] = quantizeActVal(s[rowOff+ix*stride], inv)
					}
					idx++
				}
			}
		}
	}
}

func (t *quantConvGemm) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	rows := end - start
	if c.Unsigned {
		c.packed.MulIntoU8(r.acc[start*c.oc:end*c.oc], u8View(r.cols[start*c.k:end*c.k]), rows, r.rowSums[start:end])
		return
	}
	c.packed.MulInto(r.acc[start*c.oc:end*c.oc], r.cols[start*c.k:end*c.k], rows, r.rowSums[start:end])
}

func (t *quantConvScatter) RunChunk(_, start, end int) {
	c := t.c
	r := &c.rs
	a := &c.attrs
	d := r.d
	oc4 := tensor.UpDiv(c.oc, 4)
	for o := start; o < end; o++ {
		scale := c.outScale[o]
		b := c.bias[o]
		off, stride := (r.n*c.oc+o)*r.px, 1
		if r.nc4Out {
			off, stride = ((r.n*oc4+o>>2)*r.px)*4+o&3, 4
		}
		for p := 0; p < r.px; p++ {
			v := float32(r.acc[p*c.oc+o])*scale + b
			if a.ReLU6 {
				v = relu6(v)
			} else if a.ReLU {
				v = relu(v)
			}
			d[off+p*stride] = v
		}
	}
}

// ---------------------------------------------------------------------------
// QuantDepthwiseConv: per-channel int8 depthwise on NC4HW4 tensors.

// QuantDepthwiseConv is the prepared int8 depthwise convolution. Each worker
// quantizes one (batch, channel-block) of the input into a per-lane int8
// staging block and convolves it against the packed per-channel int8
// filters with int32 accumulation, requantizing on output. Src and dst must
// be NC4HW4.
type QuantDepthwiseConv struct {
	attrs   graph.Conv2DAttrs
	c       int
	packed  []int8    // [c4][kh][kw][4]
	wScales []float32 // per-channel, padded to c4·4
	bias    []float32 // padded to c4·4
	// InputScale is the calibrated activation scale; zero derives per sample.
	InputScale float32

	outScale []float32 // per-channel inScale·wScale, refreshed per sample

	rs quantDWRun
}

type quantDWRun struct {
	s, d                   []float32
	H, W, OH, OW, c4       int
	kh, kw, sh, sw, dh, dw int
	ph, pw                 int
	n                      int
	inv                    float32
	qsrc                   []int8 // per-lane staging, lanes·H·W·4
	blk                    int    // H·W·4
	relu, relu6            bool
}

// PrepareQuantDepthwise quantizes the [c, 1, kh, kw] depthwise weight per
// channel and packs it to channel blocks.
func PrepareQuantDepthwise(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs, inputScale float32) *QuantDepthwiseConv {
	c := weight.Dim(0)
	kh, kw := a.KernelH, a.KernelW
	c4 := tensor.UpDiv(c, 4)
	dc := &QuantDepthwiseConv{attrs: *a, c: c, InputScale: inputScale}
	q, scales := quantizeWeightChannels(weight.Data(), c, kh*kw)
	dc.packed = make([]int8, c4*kh*kw*4)
	dc.wScales = make([]float32, c4*4)
	copy(dc.wScales, scales)
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dc.packed[((ch/4*kh+ky)*kw+kx)*4+ch%4] = q[(ch*kh+ky)*kw+kx]
			}
		}
	}
	dc.bias = make([]float32, c4*4)
	if bias != nil {
		copy(dc.bias, bias.Data())
	}
	dc.outScale = make([]float32, c4*4)
	return dc
}

// QuantDepthwiseWorkspaceFloats is the planner requirement: one int8
// input-sized staging block per worker lane, in float32 units.
func QuantDepthwiseWorkspaceFloats(h, w, lanes int) int {
	if lanes < 1 {
		lanes = 1
	}
	return lanes * int8Floats(h*w*4)
}

// Run executes the quantized depthwise convolution on the pool. src and dst
// must be NC4HW4; workspace may be nil or at least
// QuantDepthwiseWorkspaceFloats(h, w, p.Lanes()) floats.
func (dc *QuantDepthwiseConv) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	a := &dc.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	lanes := p.Lanes()
	blk := H * W * 4
	qsrc, _ := carveInt8(workspace, lanes*blk)
	dc.rs = quantDWRun{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: dst.Height(), OW: dst.Width(),
		c4: tensor.UpDiv(dc.c, 4),
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		dh: dilOr1(a.DilationH), dw: dilOr1(a.DilationW),
		ph: ph, pw: pw, qsrc: qsrc, blk: blk,
		relu: a.ReLU, relu6: a.ReLU6,
	}
	sampleLen := dc.rs.c4 * blk
	for n := 0; n < N; n++ {
		dc.rs.n = n
		var m float32
		if dc.InputScale == 0 {
			m = maxAbsNC4Sample(dc.rs.s[n*sampleLen:(n+1)*sampleLen], dc.c, H*W)
		}
		scale := actScaleFromMax(dc.InputScale, m)
		dc.rs.inv = 1 / scale
		for ch, ws := range dc.wScales {
			dc.outScale[ch] = scale * ws
		}
		p.Run(dc.rs.c4, sched.Chunk(dc.rs.c4, lanes, elemChunksPerLane), dc)
	}
}

// RunChunk implements sched.Task over channel blocks of the current batch
// element: quantize the block into the lane's staging buffer, then convolve.
func (dc *QuantDepthwiseConv) RunChunk(worker, start, end int) {
	r := &dc.rs
	d := r.d
	qs := r.qsrc[worker*r.blk : (worker+1)*r.blk]
	inv := r.inv
	// Interior ox range: ox·sw−pw ≥ 0 and ox·sw−pw+(kw−1)·dw ≤ W−1.
	oxLo := (r.pw + r.sw - 1) / r.sw
	oxHi := -1
	if num := r.W - 1 - (r.kw-1)*r.dw + r.pw; num >= 0 {
		oxHi = num / r.sw
	}
	if oxHi > r.OW-1 {
		oxHi = r.OW - 1
	}
	for cz := start; cz < end; cz++ {
		src := r.s[((r.n*r.c4+cz)*r.H*r.W)*4 : ((r.n*r.c4+cz)*r.H*r.W)*4+r.blk]
		for i, v := range src {
			qs[i] = quantizeActVal(v, inv)
		}
		s0, s1, s2, s3 := dc.outScale[cz*4], dc.outScale[cz*4+1], dc.outScale[cz*4+2], dc.outScale[cz*4+3]
		b0, b1, b2, b3 := dc.bias[cz*4], dc.bias[cz*4+1], dc.bias[cz*4+2], dc.bias[cz*4+3]
		dstCZ := ((r.n*r.c4 + cz) * r.OH) * r.OW * 4
		wCZ := cz * r.kh * r.kw * 4
		for oy := 0; oy < r.OH; oy++ {
			iy0 := oy*r.sh - r.ph
			rowInterior := iy0 >= 0 && iy0+(r.kh-1)*r.dh < r.H
			for ox := 0; ox < r.OW; ox++ {
				var acc0, acc1, acc2, acc3 int32
				if rowInterior && ox >= oxLo && ox <= oxHi {
					base := iy0*r.W*4 + (ox*r.sw-r.pw)*4
					wo := wCZ
					for ky := 0; ky < r.kh; ky++ {
						so := base + ky*r.dh*r.W*4
						for kx := 0; kx < r.kw; kx++ {
							wp := dc.packed[wo : wo+4]
							acc0 += int32(qs[so]) * int32(wp[0])
							acc1 += int32(qs[so+1]) * int32(wp[1])
							acc2 += int32(qs[so+2]) * int32(wp[2])
							acc3 += int32(qs[so+3]) * int32(wp[3])
							so += r.dw * 4
							wo += 4
						}
					}
				} else {
					for ky := 0; ky < r.kh; ky++ {
						iy := iy0 + ky*r.dh
						if iy < 0 || iy >= r.H {
							continue
						}
						rowOff := iy * r.W * 4
						wKY := wCZ + ky*r.kw*4
						for kx := 0; kx < r.kw; kx++ {
							ix := ox*r.sw - r.pw + kx*r.dw
							if ix < 0 || ix >= r.W {
								continue
							}
							so := rowOff + ix*4
							wo := wKY + kx*4
							acc0 += int32(qs[so]) * int32(dc.packed[wo])
							acc1 += int32(qs[so+1]) * int32(dc.packed[wo+1])
							acc2 += int32(qs[so+2]) * int32(dc.packed[wo+2])
							acc3 += int32(qs[so+3]) * int32(dc.packed[wo+3])
						}
					}
				}
				v0 := float32(acc0)*s0 + b0
				v1 := float32(acc1)*s1 + b1
				v2 := float32(acc2)*s2 + b2
				v3 := float32(acc3)*s3 + b3
				if r.relu6 {
					v0, v1, v2, v3 = relu6(v0), relu6(v1), relu6(v2), relu6(v3)
				} else if r.relu {
					v0, v1, v2, v3 = relu(v0), relu(v1), relu(v2), relu(v3)
				}
				do := dstCZ + (oy*r.OW+ox)*4
				d[do] = v0
				d[do+1] = v1
				d[do+2] = v2
				d[do+3] = v3
			}
		}
	}
}

// ---------------------------------------------------------------------------
// QuantInnerProduct: int8 fully-connected layer.

// QuantInnerProduct is the prepared int8 fully-connected kernel: each input
// row is quantized with its per-sample (or calibrated) scale and multiplied
// against the panel-packed int8 weight, requantizing with per-output-channel
// scales.
type QuantInnerProduct struct {
	attrs    graph.InnerProductAttrs
	features int
	packed   *matmul.PackedBInt8
	wScales  []float32
	bias     []float32
	// InputScale is the calibrated activation scale; zero derives per row.
	InputScale float32
	// Unsigned quantizes rows as non-negative bytes (see QuantConv.Unsigned).
	Unsigned bool

	rs quantIPRun
}

type quantIPRun struct {
	s, d    []float32
	batch   int
	qa      []int8
	acc     []int32
	rowSums []int32
	scales  []float32 // per-row quantization scale, filled at quantize time
}

// PrepareQuantInnerProduct quantizes the [out, features] weight per output
// channel and packs it into int8 GEMM panels.
func PrepareQuantInnerProduct(weight, bias *tensor.Tensor, a *graph.InnerProductAttrs, inputScale float32) *QuantInnerProduct {
	out := weight.Dim(0)
	features := weight.Dim(1)
	ip := &QuantInnerProduct{attrs: *a, features: features, InputScale: inputScale}
	q, scales := quantizeWeightChannels(weight.Data(), out, features)
	ip.wScales = scales
	bT := make([]int8, features*out)
	for o := 0; o < out; o++ {
		for i := 0; i < features; i++ {
			bT[i*out+o] = q[o*features+i]
		}
	}
	ip.packed = matmul.PackBInt8(bT, features, out)
	ip.bias = make([]float32, out)
	if bias != nil {
		copy(ip.bias, bias.Data())
	}
	return ip
}

// QuantInnerProductWorkspaceFloats is the planner requirement for a
// [batch, features] × [features, out] run, in float32 units: the quantized
// rows, the int32 product, the GEMM row-sum scratch and the per-row scales.
func QuantInnerProductWorkspaceFloats(batch, features, out int) int {
	return int8Floats(batch*features) + batch*out + matmul.Int8GemmScratch(batch) + batch
}

// Run executes the FC layer on NCHW buffers (src flattened per batch row).
// workspace may be nil or at least QuantInnerProductWorkspaceFloats floats.
func (ip *QuantInnerProduct) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	batch := src.Dim(0)
	out := ip.attrs.OutputCount
	qa, rest := carveInt8(workspace, batch*ip.features)
	acc, rest := carveInt32(rest, batch*out)
	rowSums, rest := carveInt32(rest, matmul.Int8GemmScratch(batch))
	scales := rest
	if len(scales) < batch {
		scales = make([]float32, batch)
	} else {
		scales = scales[:batch]
	}
	ip.rs = quantIPRun{s: src.Data(), d: dst.Data(), batch: batch,
		qa: qa, acc: acc, rowSums: rowSums, scales: scales}
	p.Run(batch, sched.Chunk(batch, p.Lanes(), 1), ip)
}

// RunChunk implements sched.Task over batch rows: quantize the rows, run the
// row-block int8 GEMM, requantize with bias and activation.
func (ip *QuantInnerProduct) RunChunk(_, start, end int) {
	r := &ip.rs
	out := ip.attrs.OutputCount
	f := ip.features
	rows := end - start
	for n := start; n < end; n++ {
		src := r.s[n*f : (n+1)*f]
		var m float32
		if ip.InputScale == 0 {
			m = maxAbs32(src) // flat NCHW rows carry no pad lanes
		}
		scale := actScaleFromMax(ip.InputScale, m)
		r.scales[n] = scale
		inv := 1 / scale
		q := r.qa[n*f : (n+1)*f]
		if ip.Unsigned {
			for i, v := range src {
				q[i] = int8(quantizeActValU(v, inv))
			}
		} else {
			for i, v := range src {
				q[i] = quantizeActVal(v, inv)
			}
		}
	}
	if ip.Unsigned {
		ip.packed.MulIntoU8(r.acc[start*out:end*out], u8View(r.qa[start*f:end*f]), rows, r.rowSums[start:end])
	} else {
		ip.packed.MulInto(r.acc[start*out:end*out], r.qa[start*f:end*f], rows, r.rowSums[start:end])
	}
	for n := start; n < end; n++ {
		scale := r.scales[n]
		d := r.d[n*out : (n+1)*out]
		a := r.acc[n*out : (n+1)*out]
		for o := 0; o < out; o++ {
			v := float32(a[o])*(scale*ip.wScales[o]) + ip.bias[o]
			if ip.attrs.ReLU && v < 0 {
				v = 0
			}
			d[o] = v
		}
	}
}
