package kernels

import "unsafe"

// The memory planner (Figure 3) deals in float32 elements: activations,
// workspaces and staging buffers all share one arena of []float32. The
// quantized kernels need int8 panels and int32 accumulators, so they carve
// their planner slices and reinterpret the backing bytes — the arena is
// 4-byte aligned and a workspace buffer is always fully written before it is
// read, so the type pun never observes stale float bits.

// int8Floats returns the float32 count that holds n bytes of int8 scratch.
func int8Floats(n int) int { return (n + 3) / 4 }

// carveInt8 reinterprets the first int8Floats(n) floats of buf as an []int8
// of length n, returning the view and the remaining buffer. A short buf
// falls back to a private allocation (backends used outside a session's
// pre-inference walk).
func carveInt8(buf []float32, n int) ([]int8, []float32) {
	f := int8Floats(n)
	if n == 0 {
		return nil, buf
	}
	if len(buf) < f {
		return make([]int8, n), buf
	}
	head := buf[:f]
	return unsafe.Slice((*int8)(unsafe.Pointer(unsafe.SliceData(head))), n), buf[f:]
}

// u8View reinterprets an []int8 as []uint8 (same bytes): the unsigned
// quantization mode stores 0..254 byte values in the shared cols scratch.
func u8View(s []int8) []uint8 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint8)(unsafe.Pointer(unsafe.SliceData(s))), len(s))
}

// carveInt32 reinterprets the first n floats of buf as an []int32 of length
// n, returning the view and the remaining buffer.
func carveInt32(buf []float32, n int) ([]int32, []float32) {
	if n == 0 {
		return nil, buf
	}
	if len(buf) < n {
		return make([]int32, n), buf
	}
	head := buf[:n]
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(head))), n), buf[n:]
}
