package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// DepthwiseConv is the prepared state of the depthwise convolution on
// NC4HW4 tensors. Each channel convolves with its own kh×kw filter; the four
// channels of a packed block are processed lane-parallel, mirroring the NEON
// vectorization of the paper's kernels.
type DepthwiseConv struct {
	attrs  graph.Conv2DAttrs
	c      int
	packed []float32 // [c4][kh][kw][4]
	bias   []float32 // length c4*4

	rs depthwiseRun
}

type depthwiseRun struct {
	s, d                   []float32
	H, W, OH, OW, c4       int
	kh, kw, sh, sw, dh, dw int
	ph, pw                 int
	relu, relu6            bool
}

// PrepareDepthwise packs weights for the depthwise kernel.
// weight is [c, 1, kh, kw]; bias may be nil.
func PrepareDepthwise(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *DepthwiseConv {
	c := weight.Dim(0)
	kh, kw := a.KernelH, a.KernelW
	c4 := tensor.UpDiv(c, 4)
	dc := &DepthwiseConv{attrs: *a, c: c}
	dc.packed = make([]float32, c4*kh*kw*4)
	w := weight.Data()
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				v := w[(ch*kh+ky)*kw+kx]
				cz, cl := ch/4, ch%4
				dc.packed[((cz*kh+ky)*kw+kx)*4+cl] = v
			}
		}
	}
	dc.bias = make([]float32, c4*4)
	if bias != nil {
		copy(dc.bias, bias.Data())
	}
	return dc
}

// Run executes the depthwise convolution on the pool. src and dst must be
// NC4HW4. Steady-state calls are allocation-free.
func (dc *DepthwiseConv) Run(dst, src *tensor.Tensor, p *sched.Pool) {
	a := &dc.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	dc.rs = depthwiseRun{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: dst.Height(), OW: dst.Width(),
		c4: tensor.UpDiv(dc.c, 4),
		kh: a.KernelH, kw: a.KernelW,
		sh: strideOr1(a.StrideH), sw: strideOr1(a.StrideW),
		dh: dilOr1(a.DilationH), dw: dilOr1(a.DilationW),
		ph: ph, pw: pw, relu: a.ReLU, relu6: a.ReLU6,
	}
	total := N * dc.rs.c4
	p.Run(total, sched.Chunk(total, p.Lanes(), elemChunksPerLane), dc)
}

// RunChunk implements sched.Task: one (batch, channel-block) per item.
// Interior output pixels — where the kernel window cannot cross the image
// border — take a fast path with no per-tap bounds checks; the tap order
// (and thus the accumulation order) is identical to the generic path, so
// results are bitwise equal.
func (dc *DepthwiseConv) RunChunk(_, start, end int) {
	r := &dc.rs
	s, d := r.s, r.d
	// Interior ox range: ox·sw−pw ≥ 0 and ox·sw−pw+(kw−1)·dw ≤ W−1.
	oxLo := (r.pw + r.sw - 1) / r.sw
	oxHi := -1 // no interior columns unless the window fits at all
	if num := r.W - 1 - (r.kw-1)*r.dw + r.pw; num >= 0 {
		oxHi = num / r.sw
	}
	if oxHi > r.OW-1 {
		oxHi = r.OW - 1
	}
	for item := start; item < end; item++ {
		n, cz := item/r.c4, item%r.c4
		b0, b1, b2, b3 := dc.bias[cz*4], dc.bias[cz*4+1], dc.bias[cz*4+2], dc.bias[cz*4+3]
		srcCZ := ((n*r.c4 + cz) * r.H) * r.W * 4
		dstCZ := ((n*r.c4 + cz) * r.OH) * r.OW * 4
		wCZ := cz * r.kh * r.kw * 4
		for oy := 0; oy < r.OH; oy++ {
			iy0 := oy*r.sh - r.ph
			rowInterior := iy0 >= 0 && iy0+(r.kh-1)*r.dh < r.H
			for ox := 0; ox < r.OW; ox++ {
				acc0, acc1, acc2, acc3 := b0, b1, b2, b3
				if rowInterior && ox >= oxLo && ox <= oxHi {
					base := srcCZ + iy0*r.W*4 + (ox*r.sw-r.pw)*4
					wo := wCZ
					for ky := 0; ky < r.kh; ky++ {
						so := base + ky*r.dh*r.W*4
						for kx := 0; kx < r.kw; kx++ {
							wp := dc.packed[wo : wo+4]
							acc0 += s[so] * wp[0]
							acc1 += s[so+1] * wp[1]
							acc2 += s[so+2] * wp[2]
							acc3 += s[so+3] * wp[3]
							so += r.dw * 4
							wo += 4
						}
					}
				} else {
					for ky := 0; ky < r.kh; ky++ {
						iy := iy0 + ky*r.dh
						if iy < 0 || iy >= r.H {
							continue
						}
						rowOff := srcCZ + iy*r.W*4
						wKY := wCZ + ky*r.kw*4
						for kx := 0; kx < r.kw; kx++ {
							ix := ox*r.sw - r.pw + kx*r.dw
							if ix < 0 || ix >= r.W {
								continue
							}
							so := rowOff + ix*4
							wo := wKY + kx*4
							acc0 += s[so] * dc.packed[wo]
							acc1 += s[so+1] * dc.packed[wo+1]
							acc2 += s[so+2] * dc.packed[wo+2]
							acc3 += s[so+3] * dc.packed[wo+3]
						}
					}
				}
				if r.relu6 {
					acc0, acc1, acc2, acc3 = relu6(acc0), relu6(acc1), relu6(acc2), relu6(acc3)
				} else if r.relu {
					acc0, acc1, acc2, acc3 = relu(acc0), relu(acc1), relu(acc2), relu(acc3)
				}
				do := dstCZ + (oy*r.OW+ox)*4
				d[do] = acc0
				d[do+1] = acc1
				d[do+2] = acc2
				d[do+3] = acc3
			}
		}
	}
}
