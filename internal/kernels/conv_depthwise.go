package kernels

import (
	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// DepthwiseConv is the prepared state of the depthwise convolution on
// NC4HW4 tensors. Each channel convolves with its own kh×kw filter; the four
// channels of a packed block are processed lane-parallel, mirroring the NEON
// vectorization of the paper's kernels.
type DepthwiseConv struct {
	attrs  graph.Conv2DAttrs
	c      int
	packed []float32 // [c4][kh][kw][4]
	bias   []float32 // length c4*4
}

// PrepareDepthwise packs weights for the depthwise kernel.
// weight is [c, 1, kh, kw]; bias may be nil.
func PrepareDepthwise(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) *DepthwiseConv {
	c := weight.Dim(0)
	kh, kw := a.KernelH, a.KernelW
	c4 := tensor.UpDiv(c, 4)
	dc := &DepthwiseConv{attrs: *a, c: c}
	dc.packed = make([]float32, c4*kh*kw*4)
	w := weight.Data()
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				v := w[(ch*kh+ky)*kw+kx]
				cz, cl := ch/4, ch%4
				dc.packed[((cz*kh+ky)*kw+kx)*4+cl] = v
			}
		}
	}
	dc.bias = make([]float32, c4*4)
	if bias != nil {
		copy(dc.bias, bias.Data())
	}
	return dc
}

// Run executes the depthwise convolution. src and dst must be NC4HW4.
func (dc *DepthwiseConv) Run(dst, src *tensor.Tensor, threads int) {
	a := &dc.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	c4 := tensor.UpDiv(dc.c, 4)
	kh, kw := a.KernelH, a.KernelW
	sh, sw := strideOr1(a.StrideH), strideOr1(a.StrideW)
	dh, dw := dilOr1(a.DilationH), dilOr1(a.DilationW)
	ph, pw := graph.ConvPadding(H, W, a)
	s := src.Data()
	d := dst.Data()

	ParallelFor(threads, N*c4, func(start, end int) {
		for item := start; item < end; item++ {
			n, cz := item/c4, item%c4
			b0, b1, b2, b3 := dc.bias[cz*4], dc.bias[cz*4+1], dc.bias[cz*4+2], dc.bias[cz*4+3]
			srcCZ := ((n*c4 + cz) * H) * W * 4
			dstCZ := ((n*c4 + cz) * OH) * OW * 4
			wCZ := cz * kh * kw * 4
			for oy := 0; oy < OH; oy++ {
				for ox := 0; ox < OW; ox++ {
					acc0, acc1, acc2, acc3 := b0, b1, b2, b3
					for ky := 0; ky < kh; ky++ {
						iy := oy*sh - ph + ky*dh
						if iy < 0 || iy >= H {
							continue
						}
						rowOff := srcCZ + iy*W*4
						wKY := wCZ + ky*kw*4
						for kx := 0; kx < kw; kx++ {
							ix := ox*sw - pw + kx*dw
							if ix < 0 || ix >= W {
								continue
							}
							so := rowOff + ix*4
							wo := wKY + kx*4
							acc0 += s[so] * dc.packed[wo]
							acc1 += s[so+1] * dc.packed[wo+1]
							acc2 += s[so+2] * dc.packed[wo+2]
							acc3 += s[so+3] * dc.packed[wo+3]
						}
					}
					if a.ReLU6 {
						acc0, acc1, acc2, acc3 = relu6(acc0), relu6(acc1), relu6(acc2), relu6(acc3)
					} else if a.ReLU {
						acc0, acc1, acc2, acc3 = relu(acc0), relu(acc1), relu(acc2), relu(acc3)
					}
					do := dstCZ + (oy*OW+ox)*4
					d[do] = acc0
					d[do+1] = acc1
					d[do+2] = acc2
					d[do+3] = acc3
				}
			}
		}
	})
}
