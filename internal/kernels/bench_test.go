package kernels

import (
	"fmt"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// Kernel micro-benchmarks: per-scheme convolution throughput on a
// representative mid-network layer, for tuning work on the kernels
// themselves (the table/figure harness lives at the repository root).

func benchConvSetup(ic, oc, size, k int) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor, *graph.Conv2DAttrs) {
	a := &graph.Conv2DAttrs{KernelH: k, KernelW: k, StrideH: 1, StrideW: 1,
		PadH: k / 2, PadW: k / 2, Group: 1, InputCount: ic, OutputCount: oc}
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, ic, size, size)
	tensor.FillRandom(src, 1, 1)
	weight := tensor.NewRandom(2, 0.2, oc, ic, k, k)
	bias := tensor.NewRandom(3, 0.1, oc)
	return src, weight, bias, a
}

func BenchmarkConvSliding3x3(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			src, w, bias, a := benchConvSetup(64, 64, 56, 3)
			sc := PrepareSliding(w, bias, a)
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 56, 56)
			pool := testPool(b, threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Run(dst, src, pool)
			}
		})
	}
}

func BenchmarkConvWinograd3x3(b *testing.B) {
	for _, tile := range []int{2, 4, 6} {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("F%d/t%d", tile, threads), func(b *testing.B) {
				src, w, bias, a := benchConvSetup(64, 64, 56, 3)
				wc, err := PrepareWinograd(w, bias, a, tile, tile)
				if err != nil {
					b.Fatal(err)
				}
				ws := make([]float32, wc.WorkspaceSize()*threads)
				dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 56, 56)
				pool := testPool(b, threads)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					wc.Run(dst, src, pool, ws)
				}
			})
		}
	}
}

func BenchmarkConv1x1Strassen(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			src, w, bias, a := benchConvSetup(256, 256, 28, 1)
			c := PrepareConv1x1(w, bias, a)
			ws := make([]float32, c.WorkspaceSize(1, 28, 28, threads))
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 256, 28, 28)
			pool := testPool(b, threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(dst, src, pool, ws)
			}
		})
	}
}

func BenchmarkConvDepthwise3x3(b *testing.B) {
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, 256, 28, 28)
	tensor.FillRandom(src, 1, 1)
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 256, InputCount: 256, OutputCount: 256}
	w := tensor.NewRandom(2, 0.2, 256, 1, 3, 3)
	dc := PrepareDepthwise(w, nil, a)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 256, 28, 28)
	pool := testPool(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Run(dst, src, pool)
	}
}

func BenchmarkConvIm2col3x3(b *testing.B) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 1, InputCount: 64, OutputCount: 64}
	src := tensor.NewRandom(1, 1, 1, 64, 56, 56)
	w := tensor.NewRandom(2, 0.2, 64, 64, 3, 3)
	c := PrepareIm2col(w, nil, a)
	ws := make([]float32, c.WorkspaceSize(56, 56))
	dst := tensor.New(1, 64, 56, 56)
	pool := testPool(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(dst, src, pool, ws)
	}
}

func BenchmarkConvAsymmetric1x7Winograd(b *testing.B) {
	a := &graph.Conv2DAttrs{KernelH: 1, KernelW: 7, StrideH: 1, StrideW: 1,
		PadH: 0, PadW: 3, Group: 1, InputCount: 128, OutputCount: 128}
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 17, 17)
	tensor.FillRandom(src, 1, 1)
	w := tensor.NewRandom(2, 0.2, 128, 128, 1, 7)
	wc, err := PrepareWinograd(w, nil, a, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	ws := make([]float32, wc.WorkspaceSize()*4)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 128, 17, 17)
	pool := testPool(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc.Run(dst, src, pool, ws)
	}
}

func BenchmarkPoolGlobal(b *testing.B) {
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, 1024, 7, 7)
	tensor.FillRandom(src, 1, 1)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 1024, 1, 1)
	a := &graph.PoolAttrs{Type: graph.AvgPool, Global: true}
	op := NewPoolOp(dst, src, a)
	pool := testPool(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Run(pool)
	}
}
