package kernels

import (
	"fmt"
	"math"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

func TestPoolNC4MatchesRef(t *testing.T) {
	cases := []struct {
		name    string
		a       graph.PoolAttrs
		c, h, w int
	}{
		{"max2x2s2", graph.PoolAttrs{Type: graph.MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, 8, 8, 8},
		{"max3x3s2p1", graph.PoolAttrs{Type: graph.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, 6, 9, 9},
		{"avg3x3s1p1", graph.PoolAttrs{Type: graph.AvgPool, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 5, 7, 7},
		{"avg-incl-pad", graph.PoolAttrs{Type: graph.AvgPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, CountIncludePad: true}, 4, 9, 9},
		{"global-avg", graph.PoolAttrs{Type: graph.AvgPool, Global: true}, 10, 7, 7},
		{"global-max", graph.PoolAttrs{Type: graph.MaxPool, Global: true}, 3, 5, 5},
	}
	for _, tc := range cases {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/t%d", tc.name, threads), func(t *testing.T) {
				src := tensor.NewRandom(5, 1, 1, tc.c, tc.h, tc.w)
				var oh, ow int
				var err error
				if tc.a.Global {
					oh, ow = 1, 1
				} else {
					oh, ow, err = graph.PoolOutputSize(tc.h, tc.w, &tc.a)
					if err != nil {
						t.Fatal(err)
					}
				}
				want := tensor.New(1, tc.c, oh, ow)
				PoolRef(want, src, &tc.a)
				src4 := src.ToLayout(tensor.NC4HW4)
				got := tensor.NewWithLayout(tensor.NC4HW4, 1, tc.c, oh, ow)
				PoolNC4(got, src4, &tc.a, testPool(t, threads))
				if d := tensor.MaxAbsDiff(want, got); d > 1e-5 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

func TestActivationKinds(t *testing.T) {
	src := tensor.FromData([]float32{-3, -0.5, 0, 0.5, 3, 7}, 6)
	check := func(kind ActivationKind, want []float32) {
		dst := tensor.New(6)
		Activation(dst, src, kind, nil)
		for i := range want {
			if math.Abs(float64(dst.Data()[i]-want[i])) > 1e-5 {
				t.Errorf("kind %d elem %d: got %v want %v", kind, i, dst.Data()[i], want[i])
			}
		}
	}
	check(ActReLU, []float32{0, 0, 0, 0.5, 3, 7})
	check(ActReLU6, []float32{0, 0, 0, 0.5, 3, 6})
	sig := func(x float64) float32 { return float32(1 / (1 + math.Exp(-x))) }
	check(ActSigmoid, []float32{sig(-3), sig(-0.5), 0.5, sig(0.5), sig(3), sig(7)})
	th := func(x float64) float32 { return float32(math.Tanh(x)) }
	check(ActTanh, []float32{th(-3), th(-0.5), 0, th(0.5), th(3), th(7)})
}

func TestEltwiseOps(t *testing.T) {
	a := tensor.FromData([]float32{1, 2, 3, 4}, 4)
	b := tensor.FromData([]float32{5, -6, 7, -8}, 4)
	for _, tc := range []struct {
		typ  graph.EltwiseType
		want []float32
	}{
		{graph.EltSum, []float32{6, -4, 10, -4}},
		{graph.EltProd, []float32{5, -12, 21, -32}},
		{graph.EltMax, []float32{5, 2, 7, 4}},
		{graph.EltSub, []float32{-4, 8, -4, 12}},
	} {
		dst := tensor.New(4)
		Eltwise(dst, []*tensor.Tensor{a, b}, &graph.EltwiseAttrs{Type: tc.typ}, nil)
		for i := range tc.want {
			if dst.Data()[i] != tc.want[i] {
				t.Errorf("%v: got %v want %v", tc.typ, dst.Data(), tc.want)
				break
			}
		}
	}
	// Fused ReLU.
	dst := tensor.New(4)
	Eltwise(dst, []*tensor.Tensor{a, b}, &graph.EltwiseAttrs{Type: graph.EltSum, ReLU: true}, nil)
	want := []float32{6, 0, 10, 0}
	for i := range want {
		if dst.Data()[i] != want[i] {
			t.Fatalf("relu sum: got %v want %v", dst.Data(), want)
		}
	}
	// Three inputs.
	dst3 := tensor.New(4)
	Eltwise(dst3, []*tensor.Tensor{a, a, a}, &graph.EltwiseAttrs{Type: graph.EltSum}, testPool(t, 2))
	for i, v := range []float32{3, 6, 9, 12} {
		if dst3.Data()[i] != v {
			t.Fatalf("3-input sum: %v", dst3.Data())
		}
	}
}

func TestConcatChannelAligned(t *testing.T) {
	a := tensor.NewRandom(1, 1, 1, 4, 3, 3).ToLayout(tensor.NC4HW4)
	b := tensor.NewRandom(2, 1, 1, 8, 3, 3).ToLayout(tensor.NC4HW4)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 12, 3, 3)
	ConcatChannel(dst, []*tensor.Tensor{a, b})
	for c := 0; c < 4; c++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if dst.At(0, c, y, x) != a.At(0, c, y, x) {
					t.Fatal("first input corrupted")
				}
			}
		}
	}
	for c := 0; c < 8; c++ {
		if dst.At(0, 4+c, 1, 1) != b.At(0, c, 1, 1) {
			t.Fatal("second input corrupted")
		}
	}
}

func TestConcatChannelUnaligned(t *testing.T) {
	a := tensor.NewRandom(3, 1, 1, 3, 2, 2).ToLayout(tensor.NC4HW4)
	b := tensor.NewRandom(4, 1, 1, 5, 2, 2).ToLayout(tensor.NC4HW4)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 8, 2, 2)
	ConcatChannel(dst, []*tensor.Tensor{a, b})
	for c := 0; c < 3; c++ {
		if dst.At(0, c, 0, 0) != a.At(0, c, 0, 0) {
			t.Fatal("unaligned concat first input")
		}
	}
	for c := 0; c < 5; c++ {
		if dst.At(0, 3+c, 1, 0) != b.At(0, c, 1, 0) {
			t.Fatal("unaligned concat second input")
		}
	}
}

func TestConcatAxisSpatial(t *testing.T) {
	a := tensor.NewRandom(5, 1, 1, 2, 2, 3)
	b := tensor.NewRandom(6, 1, 1, 2, 4, 3)
	dst := tensor.New(1, 2, 6, 3)
	ConcatAxis(dst, []*tensor.Tensor{a, b}, 2)
	if dst.At(0, 1, 0, 0) != a.At(0, 1, 0, 0) || dst.At(0, 1, 2, 1) != b.At(0, 1, 0, 1) {
		t.Fatal("axis-2 concat wrong")
	}
}

func TestScaleNC4MatchesRef(t *testing.T) {
	src := tensor.NewRandom(7, 1, 1, 6, 4, 4)
	scale := []float32{1, 2, 3, 4, 5, 6}
	shift := []float32{0.5, -0.5, 0, 1, -1, 2}
	want := tensor.New(1, 6, 4, 4)
	ScaleRef(want, src, tensor.FromData(scale, 6), tensor.FromData(shift, 6))
	src4 := src.ToLayout(tensor.NC4HW4)
	got := tensor.NewWithLayout(tensor.NC4HW4, 1, 6, 4, 4)
	ScaleNC4(got, src4, scale, shift, testPool(t, 2))
	if d := tensor.MaxAbsDiff(want, got); d > 1e-5 {
		t.Fatalf("max diff %g", d)
	}
}

func TestFoldBatchNormMatchesRef(t *testing.T) {
	c := 5
	r := tensor.NewRNG(9)
	gamma := make([]float32, c)
	beta := make([]float32, c)
	mean := make([]float32, c)
	variance := make([]float32, c)
	for i := 0; i < c; i++ {
		gamma[i] = r.Float32() + 1.5
		beta[i] = r.Float32()
		mean[i] = r.Float32()
		variance[i] = r.Float32()*0.5 + 1
	}
	src := tensor.NewRandom(10, 1, 1, c, 3, 3)
	want := tensor.New(1, c, 3, 3)
	BatchNormRef(want, src, tensor.FromData(gamma, c), tensor.FromData(beta, c),
		tensor.FromData(mean, c), tensor.FromData(variance, c), 1e-5)

	scale, shift := FoldBatchNorm(gamma, beta, mean, variance, 1e-5)
	src4 := src.ToLayout(tensor.NC4HW4)
	got := tensor.NewWithLayout(tensor.NC4HW4, 1, c, 3, 3)
	ScaleNC4(got, src4, scale, shift, nil)
	if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
		t.Fatalf("folded BN differs from reference by %g", d)
	}
}

func TestInnerProductMatchesRef(t *testing.T) {
	batch, features, out := 3, 20, 7
	src := tensor.NewRandom(11, 1, batch, features)
	weight := tensor.NewRandom(12, 1, out, features)
	bias := tensor.NewRandom(13, 1, out)
	a := &graph.InnerProductAttrs{OutputCount: out}
	want := tensor.New(batch, out)
	InnerProductRef(want, src, weight, bias, a)
	ip := PrepareInnerProduct(weight, bias, a)
	got := tensor.New(batch, out)
	ip.Run(got, src, testPool(t, 2))
	if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
	// With fused ReLU.
	aR := &graph.InnerProductAttrs{OutputCount: out, ReLU: true}
	wantR := tensor.New(batch, out)
	InnerProductRef(wantR, src, weight, bias, aR)
	ipR := PrepareInnerProduct(weight, bias, aR)
	gotR := tensor.New(batch, out)
	ipR.Run(gotR, src, nil)
	if d := tensor.MaxAbsDiff(wantR, gotR); d > 1e-4 {
		t.Fatalf("relu max diff %g", d)
	}
}

func TestSoftmaxRef(t *testing.T) {
	src := tensor.FromData([]float32{1, 2, 3, 4}, 1, 4)
	dst := tensor.New(1, 4)
	SoftmaxRef(dst, src, 1)
	var sum float64
	for _, v := range dst.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum %v", sum)
	}
	if !(dst.Data()[3] > dst.Data()[2] && dst.Data()[2] > dst.Data()[1]) {
		t.Fatal("softmax not monotone")
	}
	// Large inputs must not overflow (max-subtraction).
	big := tensor.FromData([]float32{1000, 1001}, 1, 2)
	dstBig := tensor.New(1, 2)
	SoftmaxRef(dstBig, big, 1)
	if math.IsNaN(float64(dstBig.Data()[0])) || math.IsInf(float64(dstBig.Data()[1]), 0) {
		t.Fatal("softmax overflow")
	}
}

func TestSoftmaxAxis2(t *testing.T) {
	src := tensor.NewRandom(14, 1, 2, 3, 4)
	dst := tensor.New(2, 3, 4)
	SoftmaxRef(dst, src, 1)
	// Sum along axis 1 must be 1 for each (outer, inner).
	d := dst.Data()
	for o := 0; o < 2; o++ {
		for in := 0; in < 4; in++ {
			var sum float64
			for i := 0; i < 3; i++ {
				sum += float64(d[o*12+i*4+in])
			}
			if math.Abs(sum-1) > 1e-5 {
				t.Fatalf("axis softmax sum %v", sum)
			}
		}
	}
}

func TestPaddingNC4(t *testing.T) {
	src := tensor.NewRandom(15, 1, 1, 5, 3, 3)
	a := &graph.PaddingAttrs{Top: 1, Bottom: 2, Left: 3, Right: 1}
	want := tensor.New(1, 5, 6, 7)
	for c := 0; c < 5; c++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				want.Set(0, c, y+1, x+3, src.At(0, c, y, x))
			}
		}
	}
	src4 := src.ToLayout(tensor.NC4HW4)
	got := tensor.NewWithLayout(tensor.NC4HW4, 1, 5, 6, 7)
	PaddingNC4(got, src4, a, testPool(t, 2))
	if d := tensor.MaxAbsDiff(want, got); d > 0 {
		t.Fatalf("padding diff %g", d)
	}
}

func TestParallelForCoverage(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7, 100} {
		n := 37
		seen := make([]int32, n)
		var hits [100]bool
		pool := sched.New(threads)
		ParallelForWorker(pool, n, func(w, s, e int) {
			hits[w] = true
			for i := s; i < e; i++ {
				seen[i]++
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, v)
			}
		}
		// Worker indices must be dense and unique-per-chunk.
		workers := 0
		for _, h := range hits {
			if h {
				workers++
			}
		}
		wantW := threads
		if wantW > n {
			wantW = n
		}
		if workers > wantW {
			t.Fatalf("threads=%d: %d workers used", threads, workers)
		}
	}
	// Zero-length range must not call fn.
	called := false
	ParallelFor(sched.New(4), 0, func(s, e int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}
