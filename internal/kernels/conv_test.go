package kernels

import (
	"fmt"
	"testing"
	"testing/quick"

	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// testPool returns a worker pool with n lanes, closed when the test ends.
func testPool(tb testing.TB, n int) *sched.Pool {
	tb.Helper()
	p := sched.New(n)
	tb.Cleanup(p.Close)
	return p
}

// convCase describes one convolution configuration under test.
type convCase struct {
	name            string
	n, ic, h, w, oc int
	kh, kw          int
	sh, sw          int
	dh, dw          int
	ph, pw          int
	group           int
	relu, relu6     bool
}

func (cc convCase) attrs() *graph.Conv2DAttrs {
	g := cc.group
	if g == 0 {
		g = 1
	}
	return &graph.Conv2DAttrs{
		KernelH: cc.kh, KernelW: cc.kw,
		StrideH: cc.sh, StrideW: cc.sw,
		DilationH: cc.dh, DilationW: cc.dw,
		PadH: cc.ph, PadW: cc.pw,
		Group: g, OutputCount: cc.oc, InputCount: cc.ic,
		ReLU: cc.relu, ReLU6: cc.relu6,
	}
}

// runRef computes the oracle output in NCHW.
func runRef(t *testing.T, cc convCase, seed uint64) (src, weight, bias, dst *tensor.Tensor) {
	t.Helper()
	a := cc.attrs()
	src = tensor.NewRandom(seed, 1, cc.n, cc.ic, cc.h, cc.w)
	g := a.Group
	weight = tensor.NewRandom(seed+1, 1, cc.oc, cc.ic/g, cc.kh, cc.kw)
	bias = tensor.NewRandom(seed+2, 1, cc.oc)
	oh, ow, err := graph.ConvOutputSize(cc.h, cc.w, a)
	if err != nil {
		t.Fatal(err)
	}
	dst = tensor.New(cc.n, cc.oc, oh, ow)
	ConvRef(dst, src, weight, bias, a)
	return
}

func TestSlidingConvMatchesRef(t *testing.T) {
	cases := []convCase{
		{name: "3x3s1p1", n: 1, ic: 3, h: 8, w: 8, oc: 8, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1},
		{name: "3x3s2p1", n: 1, ic: 8, h: 9, w: 9, oc: 4, kh: 3, kw: 3, sh: 2, sw: 2, ph: 1, pw: 1},
		{name: "5x5s1p2", n: 2, ic: 6, h: 7, w: 7, oc: 10, kh: 5, kw: 5, sh: 1, sw: 1, ph: 2, pw: 2},
		{name: "1x7", n: 1, ic: 4, h: 9, w: 9, oc: 6, kh: 1, kw: 7, sh: 1, sw: 1, ph: 0, pw: 3},
		{name: "7x1", n: 1, ic: 4, h: 9, w: 9, oc: 6, kh: 7, kw: 1, sh: 1, sw: 1, ph: 3, pw: 0},
		{name: "dilated", n: 1, ic: 5, h: 10, w: 10, oc: 7, kh: 3, kw: 3, sh: 1, sw: 1, dh: 2, dw: 2, ph: 2, pw: 2},
		{name: "relu", n: 1, ic: 3, h: 6, w: 6, oc: 5, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, relu: true},
		{name: "relu6", n: 1, ic: 3, h: 6, w: 6, oc: 5, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, relu6: true},
		{name: "nonsquare-stride", n: 1, ic: 4, h: 12, w: 8, oc: 4, kh: 3, kw: 3, sh: 2, sw: 1, ph: 1, pw: 1},
	}
	for _, cc := range cases {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/t%d", cc.name, threads), func(t *testing.T) {
				src, weight, bias, want := runRef(t, cc, 42)
				sc := PrepareSliding(weight, bias, cc.attrs())
				src4 := src.ToLayout(tensor.NC4HW4)
				dst4 := tensor.NewWithLayout(tensor.NC4HW4, want.Shape()...)
				sc.Run(dst4, src4, testPool(t, threads))
				if d := tensor.MaxAbsDiff(want, dst4); d > 1e-3 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

func TestDepthwiseConvMatchesRef(t *testing.T) {
	cases := []convCase{
		{name: "dw3x3s1", n: 1, ic: 8, h: 8, w: 8, oc: 8, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, group: 8},
		{name: "dw3x3s2", n: 1, ic: 16, h: 9, w: 9, oc: 16, kh: 3, kw: 3, sh: 2, sw: 2, ph: 1, pw: 1, group: 16},
		{name: "dw5x5", n: 2, ic: 6, h: 10, w: 10, oc: 6, kh: 5, kw: 5, sh: 1, sw: 1, ph: 2, pw: 2, group: 6},
		{name: "dw-relu6", n: 1, ic: 12, h: 7, w: 7, oc: 12, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, group: 12, relu6: true},
		{name: "dw-unaligned", n: 1, ic: 7, h: 6, w: 6, oc: 7, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, group: 7},
	}
	for _, cc := range cases {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/t%d", cc.name, threads), func(t *testing.T) {
				src, weight, bias, want := runRef(t, cc, 7)
				dc := PrepareDepthwise(weight, bias, cc.attrs())
				src4 := src.ToLayout(tensor.NC4HW4)
				dst4 := tensor.NewWithLayout(tensor.NC4HW4, want.Shape()...)
				dc.Run(dst4, src4, testPool(t, threads))
				if d := tensor.MaxAbsDiff(want, dst4); d > 1e-3 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

func TestWinogradConvMatchesRef(t *testing.T) {
	cases := []struct {
		cc     convCase
		nh, nw int
	}{
		{convCase{name: "F2_3x3", n: 1, ic: 4, h: 10, w: 10, oc: 8, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1}, 2, 2},
		{convCase{name: "F4_3x3", n: 1, ic: 8, h: 16, w: 16, oc: 8, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1}, 4, 4},
		{convCase{name: "F6_3x3", n: 1, ic: 4, h: 24, w: 24, oc: 4, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1}, 6, 6},
		{convCase{name: "F2_5x5", n: 1, ic: 3, h: 12, w: 12, oc: 6, kh: 5, kw: 5, sh: 1, sw: 1, ph: 2, pw: 2}, 2, 2},
		{convCase{name: "F4_2x2", n: 1, ic: 5, h: 9, w: 9, oc: 5, kh: 2, kw: 2, sh: 1, sw: 1, ph: 0, pw: 0}, 4, 4},
		// Asymmetric kernels — the Inception-v3 cases of Figure 8.
		{convCase{name: "F1x4_1x7", n: 1, ic: 4, h: 9, w: 17, oc: 4, kh: 1, kw: 7, sh: 1, sw: 1, ph: 0, pw: 3}, 4, 4},
		{convCase{name: "F4x1_7x1", n: 1, ic: 4, h: 17, w: 9, oc: 4, kh: 7, kw: 1, sh: 1, sw: 1, ph: 3, pw: 0}, 4, 4},
		// Output size not divisible by tile (edge tiles clipped).
		{convCase{name: "ragged", n: 2, ic: 6, h: 11, w: 13, oc: 7, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1}, 4, 4},
		// Activation fused.
		{convCase{name: "F4relu", n: 1, ic: 4, h: 12, w: 12, oc: 4, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, relu: true}, 4, 4},
	}
	for _, tc := range cases {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/t%d", tc.cc.name, threads), func(t *testing.T) {
				src, weight, bias, want := runRef(t, tc.cc, 11)
				wc, err := PrepareWinograd(weight, bias, tc.cc.attrs(), tc.nh, tc.nw)
				if err != nil {
					t.Fatal(err)
				}
				src4 := src.ToLayout(tensor.NC4HW4)
				dst4 := tensor.NewWithLayout(tensor.NC4HW4, want.Shape()...)
				wc.Run(dst4, src4, testPool(t, threads), nil)
				if d := tensor.MaxAbsDiff(want, dst4); d > 5e-3 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

func TestWinogradSmallTileBlock(t *testing.T) {
	// Force multiple tile blocks to exercise block iteration.
	cc := convCase{n: 1, ic: 4, h: 20, w: 20, oc: 4, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1}
	src, weight, bias, want := runRef(t, cc, 13)
	wc, err := PrepareWinograd(weight, bias, cc.attrs(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wc.tileBlock = 4 // 100 tiles → 25 blocks
	src4 := src.ToLayout(tensor.NC4HW4)
	dst4 := tensor.NewWithLayout(tensor.NC4HW4, want.Shape()...)
	wc.Run(dst4, src4, testPool(t, 3), nil)
	if d := tensor.MaxAbsDiff(want, dst4); d > 5e-3 {
		t.Fatalf("max diff %g", d)
	}
}

func TestWinogradRejectsStride2(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, Group: 1, OutputCount: 4, InputCount: 4}
	w := tensor.New(4, 4, 3, 3)
	if _, err := PrepareWinograd(w, nil, a, 2, 2); err == nil {
		t.Fatal("expected stride error")
	}
}

func TestWinogradRejectsDilation(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2, Group: 1, OutputCount: 4, InputCount: 4}
	w := tensor.New(4, 4, 3, 3)
	if _, err := PrepareWinograd(w, nil, a, 2, 2); err == nil {
		t.Fatal("expected dilation error")
	}
}

func TestConv1x1MatchesRef(t *testing.T) {
	cases := []convCase{
		{name: "small", n: 1, ic: 8, h: 6, w: 6, oc: 16, kh: 1, kw: 1, sh: 1, sw: 1},
		{name: "unaligned", n: 1, ic: 7, h: 5, w: 5, oc: 9, kh: 1, kw: 1, sh: 1, sw: 1},
		{name: "stride2", n: 1, ic: 8, h: 8, w: 8, oc: 8, kh: 1, kw: 1, sh: 2, sw: 2},
		{name: "batch2", n: 2, ic: 12, h: 7, w: 7, oc: 6, kh: 1, kw: 1, sh: 1, sw: 1},
		{name: "relu", n: 1, ic: 8, h: 6, w: 6, oc: 8, kh: 1, kw: 1, sh: 1, sw: 1, relu: true},
		// Large enough that the row-block GEMM recurses into Strassen.
		{name: "strassen", n: 1, ic: 130, h: 16, w: 16, oc: 140, kh: 1, kw: 1, sh: 1, sw: 1},
	}
	for _, cc := range cases {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/t%d", cc.name, threads), func(t *testing.T) {
				src, weight, bias, want := runRef(t, cc, 23)
				c := PrepareConv1x1(weight, bias, cc.attrs())
				src4 := src.ToLayout(tensor.NC4HW4)
				dst4 := tensor.NewWithLayout(tensor.NC4HW4, want.Shape()...)
				c.Run(dst4, src4, testPool(t, threads), nil)
				if d := tensor.MaxAbsDiff(want, dst4); d > 5e-3 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

func TestConv1x1DirectVsStrassen(t *testing.T) {
	cc := convCase{n: 1, ic: 64, h: 14, w: 14, oc: 64, kh: 1, kw: 1, sh: 1, sw: 1}
	src, weight, bias, _ := runRef(t, cc, 29)
	src4 := src.ToLayout(tensor.NC4HW4)

	c := PrepareConv1x1(weight, bias, cc.attrs())
	dstS := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 14, 14)
	c.Run(dstS, src4, nil, nil)

	c.Strassen = false
	dstD := tensor.NewWithLayout(tensor.NC4HW4, 1, 64, 14, 14)
	c.Run(dstD, src4, nil, nil)

	if d := tensor.MaxAbsDiff(dstS, dstD); d > 1e-3 {
		t.Fatalf("strassen vs direct 1x1 differ by %g", d)
	}
}

func TestIm2colConvMatchesRef(t *testing.T) {
	cases := []convCase{
		{name: "3x3", n: 1, ic: 4, h: 8, w: 8, oc: 6, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1},
		{name: "grouped", n: 1, ic: 8, h: 8, w: 8, oc: 12, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, group: 4},
		{name: "stride-dil", n: 1, ic: 3, h: 13, w: 13, oc: 5, kh: 3, kw: 3, sh: 2, sw: 2, dh: 2, dw: 2, ph: 2, pw: 2},
		{name: "asym", n: 2, ic: 3, h: 9, w: 11, oc: 4, kh: 1, kw: 7, sh: 1, sw: 1, ph: 0, pw: 3},
		{name: "relu6", n: 1, ic: 4, h: 6, w: 6, oc: 4, kh: 3, kw: 3, sh: 1, sw: 1, ph: 1, pw: 1, relu6: true},
	}
	for _, cc := range cases {
		for _, threads := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/t%d", cc.name, threads), func(t *testing.T) {
				src, weight, bias, want := runRef(t, cc, 31)
				c := PrepareIm2col(weight, bias, cc.attrs())
				dst := tensor.New(want.Shape()...)
				c.Run(dst, src, testPool(t, threads), nil)
				if d := tensor.MaxAbsDiff(want, dst); d > 1e-3 {
					t.Fatalf("max diff %g", d)
				}
			})
		}
	}
}

// Property test: the three optimized general-conv implementations agree with
// the oracle on random configurations.
func TestConvImplementationsAgreeProperty(t *testing.T) {
	pool := testPool(t, 2)
	f := func(seed uint64, icR, ocR, hR, kR uint8) bool {
		ic := int(icR)%7 + 1
		oc := int(ocR)%9 + 1
		h := int(hR)%10 + 5
		k := []int{1, 2, 3, 5}[int(kR)%4]
		pad := k / 2
		cc := convCase{n: 1, ic: ic, h: h, w: h, oc: oc, kh: k, kw: k, sh: 1, sw: 1, ph: pad, pw: pad}
		a := cc.attrs()
		src := tensor.NewRandom(seed, 1, 1, ic, h, h)
		weight := tensor.NewRandom(seed+1, 1, oc, ic, k, k)
		oh, ow, err := graph.ConvOutputSize(h, h, a)
		if err != nil {
			return true // skip invalid configs
		}
		want := tensor.New(1, oc, oh, ow)
		ConvRef(want, src, weight, nil, a)

		src4 := src.ToLayout(tensor.NC4HW4)

		sc := PrepareSliding(weight, nil, a)
		dstS := tensor.NewWithLayout(tensor.NC4HW4, 1, oc, oh, ow)
		sc.Run(dstS, src4, pool)
		if tensor.MaxAbsDiff(want, dstS) > 1e-2 {
			return false
		}

		im := PrepareIm2col(weight, nil, a)
		dstI := tensor.New(1, oc, oh, ow)
		im.Run(dstI, src, pool, nil)
		if tensor.MaxAbsDiff(want, dstI) > 1e-2 {
			return false
		}

		if k > 1 {
			wc, err := PrepareWinograd(weight, nil, a, 2, 2)
			if err != nil {
				return false
			}
			dstW := tensor.NewWithLayout(tensor.NC4HW4, 1, oc, oh, ow)
			wc.Run(dstW, src4, pool, nil)
			if tensor.MaxAbsDiff(want, dstW) > 5e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeconvRefShape(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
		Group: 1, OutputCount: 2, InputCount: 3}
	src := tensor.NewRandom(1, 1, 1, 3, 4, 4)
	weight := tensor.NewRandom(2, 1, 3, 2, 3, 3) // [ic, oc, kh, kw]
	dst := tensor.New(1, 2, 7, 7)
	DeconvRef(dst, src, weight, nil, a)
	// Spot-check one value: deconv output at (0,0) collects src(0,0)·w(1,1)
	// (kernel center hits due to pad 1).
	var want float64
	for ic := 0; ic < 3; ic++ {
		want += float64(src.At(0, ic, 0, 0)) * float64(weight.At(ic, 0, 1, 1))
	}
	got := float64(dst.At(0, 0, 0, 0))
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("deconv corner: got %v want %v", got, want)
	}
}
