package kernels

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/matmul"
	"mnn/internal/sched"
	"mnn/internal/tensor"
	"mnn/internal/winograd"
)

// WinogradConv is the prepared state of the Winograd convolution following
// Figure 4 of the paper: weights are transformed once at pre-inference time
// (W' = G·W·Gᵀ), inputs are transformed per tile (X' = Bᵀ·X·B), the Hadamard
// product over channels is re-ordered into one matrix multiplication per
// transform position, and outputs are transformed back (Y = Aᵀ·Y'·A).
//
// Transforms are applied per axis with independent matrices, so asymmetric
// kernels (1×7, 7×1, …) are handled by the same code path — this is what
// makes the engine free of the case-by-case bottleneck shown in Figure 8.
type WinogradConv struct {
	attrs  graph.Conv2DAttrs
	ic, oc int

	nh, nw int // output tile size per axis
	mh, mw int // transform size per axis (n + k - 1)

	matsH, matsW *winograd.Matrices

	// wT holds transformed weights: [mh*mw][ic][oc] flattened, one ic×oc
	// matrix per transform position (the right operand of Figure 4's
	// per-position matmul); packedW is the same data in 64-byte GEMM
	// panels, one PackedB per transform position.
	wT      []float32
	packedW []*matmul.PackedB
	bias    []float32

	// tileBlock is U in Figure 4: how many tiles are gathered into one
	// matmul batch.
	tileBlock int

	rs winogradRun
}

type winogradRun struct {
	s, d          []float32
	H, W, OH, OW  int
	ph, pw        int
	ic4, oc4      int
	tilesX        int
	tilesPerImage int
	totalTiles    int
	workspace     []float32
	wsPer         int
}

// DefaultTileBlock is the default number of Winograd tiles batched into one
// per-position matrix multiplication (U in Figure 4).
const DefaultTileBlock = 64

// PrepareWinograd transforms weights for F(nh×nw, kh×kw) Winograd
// convolution. weight is [oc, ic, kh, kw]; bias may be nil. The convolution
// must have stride 1, dilation 1 and group 1; tile sizes must satisfy
// n+k-1 ≤ 12 on each axis. An axis with kernel size 1 uses the identity
// transform (n=1).
func PrepareWinograd(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs, nh, nw int) (*WinogradConv, error) {
	if strideOr1(a.StrideH) != 1 || strideOr1(a.StrideW) != 1 {
		return nil, fmt.Errorf("winograd conv requires stride 1, got %dx%d", a.StrideH, a.StrideW)
	}
	if dilOr1(a.DilationH) != 1 || dilOr1(a.DilationW) != 1 {
		return nil, fmt.Errorf("winograd conv requires dilation 1")
	}
	if a.Group > 1 {
		return nil, fmt.Errorf("winograd conv requires group 1, got %d", a.Group)
	}
	kh, kw := a.KernelH, a.KernelW
	if kh == 1 {
		nh = 1
	}
	if kw == 1 {
		nw = 1
	}
	if nh < 1 || nw < 1 {
		return nil, fmt.Errorf("invalid tile size %dx%d", nh, nw)
	}
	matsH, err := winograd.Generate(nh, kh, winograd.DefaultF)
	if err != nil {
		return nil, err
	}
	matsW, err := winograd.Generate(nw, kw, winograd.DefaultF)
	if err != nil {
		return nil, err
	}
	oc, ic := weight.Dim(0), weight.Dim(1)
	wc := &WinogradConv{
		attrs: *a, ic: ic, oc: oc,
		nh: nh, nw: nw, mh: matsH.M, mw: matsW.M,
		matsH: matsH, matsW: matsW,
		tileBlock: DefaultTileBlock,
	}
	mh, mw := wc.mh, wc.mw
	wc.wT = make([]float32, mh*mw*ic*oc)
	w := weight.Data()
	// Transform each output channel's filters in parallel: for wide layers
	// (512×512) this is millions of small transforms and dominates
	// pre-inference time otherwise. One-shot goroutines are fine here —
	// this is pre-inference, not the hot path.
	sched.Spawn(4, oc, func(_, start, end int) {
		kTile := make([]float32, kh*kw)
		tTile := make([]float32, mh*mw)
		scratch := make([]float32, mh*kw)
		for o := start; o < end; o++ {
			for i := 0; i < ic; i++ {
				copy(kTile, w[(o*ic+i)*kh*kw:(o*ic+i+1)*kh*kw])
				// W' = G_h (kh→mh rows) · W · G_wᵀ (kw→mw cols).
				rectTransform(tTile, kTile, matsH.G, matsW.G, mh, kh, kw, mw, scratch)
				for p := 0; p < mh*mw; p++ {
					wc.wT[(p*ic+i)*oc+o] = tTile[p]
				}
			}
		}
	})
	wc.packedW = make([]*matmul.PackedB, mh*mw)
	for p := 0; p < mh*mw; p++ {
		wc.packedW[p] = matmul.PackB(wc.wT[p*ic*oc:(p+1)*ic*oc], ic, oc)
	}
	wc.bias = make([]float32, tensor.AlignUp(oc, 4))
	if bias != nil {
		copy(wc.bias, bias.Data())
	}
	return wc, nil
}

// rectTransform computes dst = L · src · Rᵀ where L is lm×lk, src is lk×rk,
// R is rm×rk; dst is lm×rm. scratch must hold lm*rk floats.
func rectTransform(dst, src, l, r []float32, lm, lk, rk, rm int, scratch []float32) {
	// scratch = L(lm×lk) · src(lk×rk)
	for i := 0; i < lm; i++ {
		li := l[i*lk : (i+1)*lk]
		row := scratch[i*rk : (i+1)*rk]
		for j := range row {
			row[j] = 0
		}
		for p, lv := range li {
			if lv == 0 {
				continue
			}
			sp := src[p*rk : (p+1)*rk]
			for j, sv := range sp {
				row[j] += lv * sv
			}
		}
	}
	// dst = scratch(lm×rk) · Rᵀ: dst[i][j] = Σ_p scratch[i][p]·R[j][p]
	for i := 0; i < lm; i++ {
		si := scratch[i*rk : (i+1)*rk]
		for j := 0; j < rm; j++ {
			rj := r[j*rk : (j+1)*rk]
			var sum float32
			for p := 0; p < rk; p++ {
				sum += si[p] * rj[p]
			}
			dst[i*rm+j] = sum
		}
	}
}

// WorkspaceSize returns the float32 count of the scratch workspace one
// worker lane needs for the given source spatial size. The pre-inference
// memory planner allocates Lanes() of these from the arena (Section 3.2 of
// the paper).
func (wc *WinogradConv) WorkspaceSize() int {
	mm := wc.mh * wc.mw
	u := wc.tileBlock
	// srcT [mm][U][ic] + dstT [mm][U][oc] + gather tile + transform scratch.
	return mm*u*wc.ic + mm*u*wc.oc + 2*mm + mm
}

// Run executes the convolution on the pool. src and dst must be NC4HW4.
// workspace may be nil (allocated internally) or a slice of at least
// WorkspaceSize()*p.Lanes() floats; with a planner-provided workspace,
// steady-state calls are allocation-free.
func (wc *WinogradConv) Run(dst, src *tensor.Tensor, p *sched.Pool, workspace []float32) {
	a := &wc.attrs
	N, H, W := src.Batch(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	ph, pw := graph.ConvPadding(H, W, a)
	lanes := p.Lanes()

	tilesY := tensor.UpDiv(OH, wc.nh)
	tilesX := tensor.UpDiv(OW, wc.nw)
	tilesPerImage := tilesY * tilesX
	totalTiles := N * tilesPerImage
	blocks := tensor.UpDiv(totalTiles, wc.tileBlock)

	wsPer := wc.WorkspaceSize()
	if len(workspace) < wsPer*lanes {
		workspace = make([]float32, wsPer*lanes)
	}
	wc.rs = winogradRun{
		s: src.Data(), d: dst.Data(),
		H: H, W: W, OH: OH, OW: OW, ph: ph, pw: pw,
		ic4: tensor.UpDiv(wc.ic, 4), oc4: tensor.UpDiv(wc.oc, 4),
		tilesX: tilesX, tilesPerImage: tilesPerImage, totalTiles: totalTiles,
		workspace: workspace, wsPer: wsPer,
	}
	// Tile blocks feed the chunked queue; finer-than-static chunks let the
	// atomic cursor rebalance uneven blocks across lanes.
	p.Run(blocks, sched.Chunk(blocks, lanes, elemChunksPerLane), wc)
}

// RunChunk implements sched.Task over tile-block indices.
func (wc *WinogradConv) RunChunk(worker, start, end int) {
	r := &wc.rs
	a := &wc.attrs
	s, d := r.s, r.d
	nh, nw, mh, mw := wc.nh, wc.nw, wc.mh, wc.mw
	mm := mh * mw
	u := wc.tileBlock

	ws := r.workspace[worker*r.wsPer : (worker+1)*r.wsPer]
	srcT := ws[:mm*u*wc.ic]
	dstT := ws[mm*u*wc.ic : mm*u*(wc.ic+wc.oc)]
	tile := ws[mm*u*(wc.ic+wc.oc) : mm*u*(wc.ic+wc.oc)+mm]
	tileT := ws[mm*u*(wc.ic+wc.oc)+mm : mm*u*(wc.ic+wc.oc)+2*mm]
	scratch := ws[mm*u*(wc.ic+wc.oc)+2*mm:]

	for blk := start; blk < end; blk++ {
		t0 := blk * u
		t1 := t0 + u
		if t1 > r.totalTiles {
			t1 = r.totalTiles
		}
		cnt := t1 - t0

		// ---- Input transform: fill srcT[p][u][ic].
		for t := t0; t < t1; t++ {
			ti := t - t0
			n := t / r.tilesPerImage
			rem := t % r.tilesPerImage
			ty, tx := rem/r.tilesX, rem%r.tilesX
			y0 := ty*nh - r.ph
			x0 := tx*nw - r.pw
			for c := 0; c < wc.ic; c++ {
				cz, cl := c/4, c%4
				base := ((n*r.ic4 + cz) * r.H) * r.W * 4
				// Gather mh×mw patch with zero padding.
				for yy := 0; yy < mh; yy++ {
					iy := y0 + yy
					for xx := 0; xx < mw; xx++ {
						ix := x0 + xx
						if iy < 0 || iy >= r.H || ix < 0 || ix >= r.W {
							tile[yy*mw+xx] = 0
						} else {
							tile[yy*mw+xx] = s[base+(iy*r.W+ix)*4+cl]
						}
					}
				}
				// X' = BT_h · X · B_w  (B_w applied as · BT_wᵀ).
				rectTransform(tileT, tile, wc.matsH.BT, wc.matsW.BT, mh, mh, mw, mw, scratch)
				for p := 0; p < mm; p++ {
					srcT[(p*u+ti)*wc.ic+c] = tileT[p]
				}
			}
		}

		// ---- Per-position matmul (Figure 4): Y'[p] = X'[p] · W'[p], on
		// the pre-packed panels (bitwise-identical to the direct GEMM).
		for p := 0; p < mm; p++ {
			wc.packedW[p].MulInto(dstT[p*u*wc.oc:(p*u+cnt)*wc.oc],
				srcT[p*u*wc.ic:(p*u+cnt)*wc.ic], cnt)
		}

		// ---- Output transform: Y = AT_h · Y' · A_w, then bias+act+write.
		for t := t0; t < t1; t++ {
			ti := t - t0
			n := t / r.tilesPerImage
			rem := t % r.tilesPerImage
			ty, tx := rem/r.tilesX, rem%r.tilesX
			oy0 := ty * nh
			ox0 := tx * nw
			for o := 0; o < wc.oc; o++ {
				oz, ol := o/4, o%4
				for p := 0; p < mm; p++ {
					tile[p] = dstT[(p*u+ti)*wc.oc+o]
				}
				rectTransform(tileT, tile, wc.matsH.AT, wc.matsW.AT, nh, mh, mw, nw, scratch)
				bv := wc.bias[o]
				base := ((n*r.oc4 + oz) * r.OH) * r.OW * 4
				for yy := 0; yy < nh; yy++ {
					oy := oy0 + yy
					if oy >= r.OH {
						break
					}
					for xx := 0; xx < nw; xx++ {
						ox := ox0 + xx
						if ox >= r.OW {
							break
						}
						v := tileT[yy*nw+xx] + bv
						if a.ReLU6 {
							v = relu6(v)
						} else if a.ReLU {
							v = relu(v)
						}
						d[base+(oy*r.OW+ox)*4+ol] = v
					}
				}
			}
		}
	}
}
