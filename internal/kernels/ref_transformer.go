package kernels

import (
	"fmt"
	"math"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// Reference kernels for the transformer op set (LayerNorm, GELU, MatMul,
// Transpose). Like the CNN oracles in ref.go they are deliberately
// unoptimized and accumulate in float64; the prepared kernels in
// transformer_ops.go must agree within the conformance tolerance. All of
// them derive element counts from the tensor shape, never from buffer
// length, so they work on max-shape-planned (dynamic) tensors whose backing
// buffers are longer than the logical content.

// LayerNormRef normalizes over the last axis: y = gamma·(x-mean)/sqrt(var+eps) + beta.
// src/dst are flat row-major; gamma/beta are [D] with D the last dim.
func LayerNormRef(dst, src, gamma, beta *tensor.Tensor, eps float32) {
	shape := src.Shape()
	d := shape[len(shape)-1]
	rows := 1
	for _, e := range shape[:len(shape)-1] {
		rows *= e
	}
	s, o := src.Data(), dst.Data()
	g, b := gamma.Data(), beta.Data()
	for r := 0; r < rows; r++ {
		row := s[r*d : (r+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dv := float64(v) - mean
			variance += dv * dv
		}
		variance /= float64(d)
		inv := 1 / math.Sqrt(variance+float64(eps))
		out := o[r*d : (r+1)*d]
		for i, v := range row {
			out[i] = float32((float64(v)-mean)*inv*float64(g[i]) + float64(b[i]))
		}
	}
}

// GELURef applies the tanh-approximated Gaussian error linear unit
// elementwise: 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
func GELURef(dst, src *tensor.Tensor) {
	n := tensor.NumElements(src.Shape())
	s, o := src.Data(), dst.Data()
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i := 0; i < n; i++ {
		x := float64(s[i])
		o[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// TransposeRef permutes axes: dst[i0..ik] = src[i_perm[0]..i_perm[k]] with
// output dim j = input dim perm[j]. Flat row-major tensors of any rank.
func TransposeRef(dst, src *tensor.Tensor, perm []int) {
	in := src.Shape()
	out := dst.Shape()
	rank := len(in)
	inStride := rowMajorStrides(in)
	outStride := rowMajorStrides(out)
	s, o := src.Data(), dst.Data()
	total := tensor.NumElements(out)
	idx := make([]int, rank)
	for flat := 0; flat < total; flat++ {
		rem := flat
		for j := 0; j < rank; j++ {
			idx[j] = rem / outStride[j]
			rem %= outStride[j]
		}
		srcOff := 0
		for j := 0; j < rank; j++ {
			srcOff += idx[j] * inStride[perm[j]]
		}
		o[flat] = s[srcOff]
	}
}

func rowMajorStrides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// MatMulRef is the oracle for all three MatMul forms (see graph.MatMulAttrs).
// Weight form: b is nil, w is [K,N], bias optional [N]. Batched forms: w and
// bias are nil, a/b are the two rank-3 activations.
func MatMulRef(dst, a, b, w, bias *tensor.Tensor, attrs *graph.MatMulAttrs) {
	if attrs.Heads == 0 {
		matMulWeightRef(dst, a, w, bias, attrs.Scale)
		return
	}
	if attrs.TransposeB {
		matMulQKRef(dst, a, b, attrs.Heads, attrs.Scale)
		return
	}
	matMulAVRef(dst, a, b, attrs.Heads, attrs.Scale)
}

func refScale(s float32) float64 {
	if s == 0 {
		return 1
	}
	return float64(s)
}

func matMulWeightRef(dst, src, w, bias *tensor.Tensor, scale float32) {
	ws := w.Shape()
	k, n := ws[0], ws[1]
	shape := src.Shape()
	rows := 1
	for _, e := range shape[:len(shape)-1] {
		rows *= e
	}
	if shape[len(shape)-1] != k {
		panic(fmt.Sprintf("kernels: matmul ref inner dim %d != %d", shape[len(shape)-1], k))
	}
	s, o, wd := src.Data(), dst.Data(), w.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}
	sc := refScale(scale)
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(s[r*k+p]) * float64(wd[p*n+j])
			}
			acc *= sc
			if bd != nil {
				acc += float64(bd[j])
			}
			o[r*n+j] = float32(acc)
		}
	}
}

func matMulQKRef(dst, q, kt *tensor.Tensor, heads int, scale float32) {
	qs, ks := q.Shape(), kt.Shape()
	bN, la, d := qs[0], qs[1], qs[2]
	lb := ks[1]
	dh := d / heads
	sc := refScale(scale)
	qd, kd, o := q.Data(), kt.Data(), dst.Data()
	for b := 0; b < bN; b++ {
		for h := 0; h < heads; h++ {
			for i := 0; i < la; i++ {
				for j := 0; j < lb; j++ {
					var acc float64
					for p := 0; p < dh; p++ {
						acc += float64(qd[(b*la+i)*d+h*dh+p]) * float64(kd[(b*lb+j)*d+h*dh+p])
					}
					o[(b*heads*la+h*la+i)*lb+j] = float32(acc * sc)
				}
			}
		}
	}
}

func matMulAVRef(dst, a, v *tensor.Tensor, heads int, scale float32) {
	as, vs := a.Shape(), v.Shape()
	bN, hla, lb := as[0], as[1], as[2]
	la := hla / heads
	d := vs[2]
	dh := d / heads
	sc := refScale(scale)
	ad, vd, o := a.Data(), v.Data(), dst.Data()
	for b := 0; b < bN; b++ {
		for h := 0; h < heads; h++ {
			for i := 0; i < la; i++ {
				for j := 0; j < dh; j++ {
					var acc float64
					for p := 0; p < lb; p++ {
						acc += float64(ad[(b*hla+h*la+i)*lb+p]) * float64(vd[(b*lb+p)*d+h*dh+j])
					}
					o[(b*la+i)*d+h*dh+j] = float32(acc * sc)
				}
			}
		}
	}
}
