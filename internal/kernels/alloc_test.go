package kernels

// Regression tests: after preparation, every conv kernel's Run (and the
// prepared elementwise ops) must be allocation-free when handed its planned
// workspace and the persistent pool — the property the Figure 3 planner
// extension exists to guarantee.

import (
	"fmt"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

func assertZeroAllocs(t *testing.T, name string, warm func(), run func()) {
	t.Helper()
	warm() // spawn pool workers, fault in lazily-built state
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("%s allocated %.1f objects/op in steady state, want 0", name, allocs)
	}
}

func TestConvKernelsZeroAllocAfterPrepare(t *testing.T) {
	for _, threads := range []int{1, 4} {
		pool := testPool(t, threads)
		lanes := pool.Lanes()

		t.Run(fmt.Sprintf("sliding/t%d", threads), func(t *testing.T) {
			a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
				PadH: 1, PadW: 1, Group: 1, InputCount: 16, OutputCount: 16}
			w := tensor.NewRandom(1, 0.2, 16, 16, 3, 3)
			sc := PrepareSliding(w, nil, a)
			src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			tensor.FillRandom(src, 2, 1)
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			assertZeroAllocs(t, "SlidingConv.Run",
				func() { sc.Run(dst, src, pool) },
				func() { sc.Run(dst, src, pool) })
		})

		t.Run(fmt.Sprintf("depthwise/t%d", threads), func(t *testing.T) {
			a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
				PadH: 1, PadW: 1, Group: 16, InputCount: 16, OutputCount: 16}
			w := tensor.NewRandom(3, 0.2, 16, 1, 3, 3)
			dc := PrepareDepthwise(w, nil, a)
			src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			tensor.FillRandom(src, 4, 1)
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			assertZeroAllocs(t, "DepthwiseConv.Run",
				func() { dc.Run(dst, src, pool) },
				func() { dc.Run(dst, src, pool) })
		})

		t.Run(fmt.Sprintf("conv1x1/t%d", threads), func(t *testing.T) {
			// Large enough that the per-lane GEMM recurses into Strassen, so
			// the planner-provided scratch path is exercised too.
			a := &graph.Conv2DAttrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
				Group: 1, InputCount: 96, OutputCount: 96}
			w := tensor.NewRandom(5, 0.2, 96, 96, 1, 1)
			c := PrepareConv1x1(w, nil, a)
			src := tensor.NewWithLayout(tensor.NC4HW4, 1, 96, 32, 32)
			tensor.FillRandom(src, 6, 1)
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 96, 32, 32)
			ws := make([]float32, c.WorkspaceSize(1, 32, 32, lanes))
			assertZeroAllocs(t, "Conv1x1.Run",
				func() { c.Run(dst, src, pool, ws) },
				func() { c.Run(dst, src, pool, ws) })
		})

		t.Run(fmt.Sprintf("winograd/t%d", threads), func(t *testing.T) {
			a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
				PadH: 1, PadW: 1, Group: 1, InputCount: 16, OutputCount: 16}
			w := tensor.NewRandom(7, 0.2, 16, 16, 3, 3)
			wc, err := PrepareWinograd(w, nil, a, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			tensor.FillRandom(src, 8, 1)
			dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
			ws := make([]float32, wc.WorkspaceSize()*lanes)
			assertZeroAllocs(t, "WinogradConv.Run",
				func() { wc.Run(dst, src, pool, ws) },
				func() { wc.Run(dst, src, pool, ws) })
		})

		t.Run(fmt.Sprintf("im2col/t%d", threads), func(t *testing.T) {
			a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
				PadH: 1, PadW: 1, Group: 2, InputCount: 8, OutputCount: 8}
			w := tensor.NewRandom(9, 0.2, 8, 4, 3, 3)
			c := PrepareIm2col(w, nil, a)
			src := tensor.NewRandom(10, 1, 1, 8, 24, 24)
			dst := tensor.New(1, 8, 24, 24)
			ws := make([]float32, c.WorkspaceSize(24, 24))
			assertZeroAllocs(t, "Im2colConv.Run",
				func() { c.Run(dst, src, pool, ws) },
				func() { c.Run(dst, src, pool, ws) })
		})
	}
}

// TestQuantKernelsZeroAllocAfterPrepare: every prepared int8 kernel must be
// allocation-free after Prepare when handed its planned workspace — in both
// scale modes (calibrated and dynamic per-sample) and both quantization
// modes (signed and unsigned).
func TestQuantKernelsZeroAllocAfterPrepare(t *testing.T) {
	for _, threads := range []int{1, 4} {
		pool := testPool(t, threads)
		lanes := pool.Lanes()
		for _, inputScale := range []float32{0, 0.01} {
			mode := "dynamic"
			if inputScale > 0 {
				mode = "calibrated"
			}

			t.Run(fmt.Sprintf("quantconv/t%d/%s", threads, mode), func(t *testing.T) {
				a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
					PadH: 1, PadW: 1, Group: 1, InputCount: 16, OutputCount: 16, ReLU: true}
				w := tensor.NewRandom(21, 0.2, 16, 16, 3, 3)
				qc := PrepareQuantConv(w, nil, a, inputScale)
				qc.Unsigned = inputScale > 0
				src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
				tensor.FillRandom(src, 22, 1)
				dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
				ws := make([]float32, qc.WorkspaceSize(24, 24))
				assertZeroAllocs(t, "QuantConv.Run",
					func() { qc.Run(dst, src, pool, ws) },
					func() { qc.Run(dst, src, pool, ws) })
			})

			t.Run(fmt.Sprintf("quantdepthwise/t%d/%s", threads, mode), func(t *testing.T) {
				a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
					PadH: 1, PadW: 1, Group: 16, InputCount: 16, OutputCount: 16, ReLU6: true}
				w := tensor.NewRandom(23, 0.2, 16, 1, 3, 3)
				dc := PrepareQuantDepthwise(w, nil, a, inputScale)
				src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
				tensor.FillRandom(src, 24, 1)
				dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 24, 24)
				ws := make([]float32, QuantDepthwiseWorkspaceFloats(24, 24, lanes))
				assertZeroAllocs(t, "QuantDepthwiseConv.Run",
					func() { dc.Run(dst, src, pool, ws) },
					func() { dc.Run(dst, src, pool, ws) })
			})

			t.Run(fmt.Sprintf("quantfc/t%d/%s", threads, mode), func(t *testing.T) {
				ip := PrepareQuantInnerProduct(tensor.NewRandom(25, 0.2, 10, 64), nil,
					&graph.InnerProductAttrs{OutputCount: 10}, inputScale)
				ip.Unsigned = inputScale > 0
				flat := tensor.NewRandom(26, 1, 2, 64)
				out := tensor.New(2, 10)
				ws := make([]float32, QuantInnerProductWorkspaceFloats(2, 64, 10))
				assertZeroAllocs(t, "QuantInnerProduct.Run",
					func() { ip.Run(out, flat, pool, ws) },
					func() { ip.Run(out, flat, pool, ws) })
			})
		}
	}
}

func TestPreparedOpsZeroAlloc(t *testing.T) {
	pool := testPool(t, 4)
	src := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 16, 16)
	tensor.FillRandom(src, 11, 1)
	dst := tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 16, 16)

	act := NewActivationOp(dst, src, ActReLU)
	assertZeroAllocs(t, "ActivationOp.Run",
		func() { act.Run(pool) }, func() { act.Run(pool) })

	scale := make([]float32, 16)
	for i := range scale {
		scale[i] = 1.5
	}
	sc := NewScaleOp(dst, src, scale, nil)
	assertZeroAllocs(t, "ScaleOp.Run",
		func() { sc.Run(pool) }, func() { sc.Run(pool) })

	pl := NewPoolOp(tensor.NewWithLayout(tensor.NC4HW4, 1, 16, 8, 8), src,
		&graph.PoolAttrs{Type: graph.MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
	assertZeroAllocs(t, "PoolOp.Run",
		func() { pl.Run(pool) }, func() { pl.Run(pool) })

	elt := NewEltwiseOp(dst, []*tensor.Tensor{src, src}, &graph.EltwiseAttrs{Type: graph.EltSum})
	assertZeroAllocs(t, "EltwiseOp.Run",
		func() { elt.Run(pool) }, func() { elt.Run(pool) })

	ip := PrepareInnerProduct(tensor.NewRandom(12, 0.2, 10, 64), nil,
		&graph.InnerProductAttrs{OutputCount: 10})
	flat := tensor.NewRandom(13, 1, 2, 64)
	out := tensor.New(2, 10)
	assertZeroAllocs(t, "InnerProduct.Run",
		func() { ip.Run(out, flat, pool) }, func() { ip.Run(out, flat, pool) })
}
