// Package kernels implements the operator kernels of the engine: the
// optimized NC4HW4 paths (sliding window, Winograd per Figure 4 of the
// paper, 1×1-as-Strassen-matmul, depthwise) plus naive reference
// implementations that serve both as correctness oracles in tests and as the
// "unoptimized operator" fallback that the case-by-case baseline engines
// fall into (paper Figure 8).
package kernels

import (
	"fmt"
	"math"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// ConvRef is the naive direct convolution oracle. src/dst are NCHW; weight
// is [oc, ic/group, kh, kw]; bias may be nil. Supports stride, dilation,
// padding and groups (including depthwise). Deliberately unoptimized.
func ConvRef(dst, src, weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OC, OH, OW := dst.Channels(), dst.Height(), dst.Width()
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := C / group
	ocg := OC / group
	dh, dw := a.DilationH, a.DilationW
	if dh <= 0 {
		dh = 1
	}
	if dw <= 0 {
		dw = 1
	}
	sh, sw := a.StrideH, a.StrideW
	if sh <= 0 {
		sh = 1
	}
	if sw <= 0 {
		sw = 1
	}
	ph, pw := graph.ConvPadding(H, W, a)
	var b []float32
	if bias != nil {
		b = bias.Data()
	}
	for n := 0; n < N; n++ {
		for oc := 0; oc < OC; oc++ {
			g := oc / ocg
			for oy := 0; oy < OH; oy++ {
				for ox := 0; ox < OW; ox++ {
					var sum float64
					for ic := 0; ic < icg; ic++ {
						srcC := g*icg + ic
						for ky := 0; ky < a.KernelH; ky++ {
							iy := oy*sh - ph + ky*dh
							if iy < 0 || iy >= H {
								continue
							}
							for kx := 0; kx < a.KernelW; kx++ {
								ix := ox*sw - pw + kx*dw
								if ix < 0 || ix >= W {
									continue
								}
								sum += float64(src.At(n, srcC, iy, ix)) * float64(weight.At(oc, ic, ky, kx))
							}
						}
					}
					v := float32(sum)
					if b != nil {
						v += b[oc]
					}
					v = applyActivation(v, a.ReLU, a.ReLU6)
					dst.Set(n, oc, oy, ox, v)
				}
			}
		}
	}
}

// DeconvRef is the naive transposed-convolution oracle (NCHW).
// weight is [ic, oc/group, kh, kw] following the Caffe convention.
func DeconvRef(dst, src, weight, bias *tensor.Tensor, a *graph.Conv2DAttrs) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OC, OH, OW := dst.Channels(), dst.Height(), dst.Width()
	group := a.Group
	if group <= 0 {
		group = 1
	}
	icg := C / group
	ocg := OC / group
	sh, sw := a.StrideH, a.StrideW
	if sh <= 0 {
		sh = 1
	}
	if sw <= 0 {
		sw = 1
	}
	dst.Zero()
	for n := 0; n < N; n++ {
		for g := 0; g < group; g++ {
			for ic := 0; ic < icg; ic++ {
				srcC := g*icg + ic
				for iy := 0; iy < H; iy++ {
					for ix := 0; ix < W; ix++ {
						sv := src.At(n, srcC, iy, ix)
						if sv == 0 {
							continue
						}
						for oc := 0; oc < ocg; oc++ {
							dstC := g*ocg + oc
							for ky := 0; ky < a.KernelH; ky++ {
								oy := iy*sh + ky - a.PadH
								if oy < 0 || oy >= OH {
									continue
								}
								for kx := 0; kx < a.KernelW; kx++ {
									ox := ix*sw + kx - a.PadW
									if ox < 0 || ox >= OW {
										continue
									}
									dst.Set(n, dstC, oy, ox,
										dst.At(n, dstC, oy, ox)+sv*weight.At(srcC, oc, ky, kx))
								}
							}
						}
					}
				}
			}
		}
	}
	if bias != nil {
		b := bias.Data()
		for n := 0; n < N; n++ {
			for oc := 0; oc < OC; oc++ {
				for oy := 0; oy < OH; oy++ {
					for ox := 0; ox < OW; ox++ {
						v := dst.At(n, oc, oy, ox) + b[oc]
						v = applyActivation(v, a.ReLU, a.ReLU6)
						dst.Set(n, oc, oy, ox, v)
					}
				}
			}
		}
	}
}

// PoolRef is the naive pooling oracle (NCHW).
func PoolRef(dst, src *tensor.Tensor, a *graph.PoolAttrs) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	kh, kw := a.KernelH, a.KernelW
	sh, sw := a.StrideH, a.StrideW
	if sh <= 0 {
		sh = 1
	}
	if sw <= 0 {
		sw = 1
	}
	if a.Global {
		kh, kw, sh, sw = H, W, 1, 1
	}
	ph, pw := graph.PoolPadding(H, W, a)
	if a.Global {
		ph, pw = 0, 0
	}
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for oy := 0; oy < OH; oy++ {
				for ox := 0; ox < OW; ox++ {
					y0, x0 := oy*sh-ph, ox*sw-pw
					var acc float64
					count := 0
					neg := float32(math.Inf(-1))
					for ky := 0; ky < kh; ky++ {
						iy := y0 + ky
						if iy < 0 || iy >= H {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := x0 + kx
							if ix < 0 || ix >= W {
								continue
							}
							v := src.At(n, c, iy, ix)
							if a.Type == graph.MaxPool {
								if v > neg {
									neg = v
								}
							} else {
								acc += float64(v)
							}
							count++
						}
					}
					var out float32
					if a.Type == graph.MaxPool {
						out = neg
					} else {
						div := count
						if a.CountIncludePad {
							div = kh * kw
						}
						if div == 0 {
							div = 1
						}
						out = float32(acc / float64(div))
					}
					dst.Set(n, c, oy, ox, out)
				}
			}
		}
	}
}

// InnerProductRef computes dst[b, o] = Σ_i src[b, i]·w[o, i] + bias[o].
// src may be any rank; it is flattened per batch.
func InnerProductRef(dst, src, weight, bias *tensor.Tensor, a *graph.InnerProductAttrs) {
	batch := src.Dim(0)
	features := src.NumElements() / batch
	s := src.ToLayout(tensor.NCHW).Data()
	w := weight.Data()
	d := dst.Data()
	var b []float32
	if bias != nil {
		b = bias.Data()
	}
	for n := 0; n < batch; n++ {
		for o := 0; o < a.OutputCount; o++ {
			var sum float64
			for i := 0; i < features; i++ {
				sum += float64(s[n*features+i]) * float64(w[o*features+i])
			}
			v := float32(sum)
			if b != nil {
				v += b[o]
			}
			if a.ReLU && v < 0 {
				v = 0
			}
			d[n*a.OutputCount+o] = v
		}
	}
}

// SoftmaxRef computes softmax along axis. Any layout is accepted: the
// stride walk below indexes raw buffers with row-major strides, which is
// only valid on flat NCHW data, so NC4HW4/NHWC tensors are staged through
// NCHW first (allocation is acceptable in a reference kernel). A negative
// axis counts from the end (-1 = last axis); an out-of-range axis panics
// rather than silently normalizing over the wrong extent.
func SoftmaxRef(dst, src *tensor.Tensor, axis int) {
	shape := src.Shape()
	if axis < 0 {
		axis += len(shape)
	}
	if axis < 0 || axis >= len(shape) {
		panic(fmt.Sprintf("kernels: softmax axis %d out of range for rank %d", axis, len(shape)))
	}
	if src.Layout() != tensor.NCHW {
		src = src.ToLayout(tensor.NCHW)
	}
	flat := dst
	if dst.Layout() != tensor.NCHW {
		flat = tensor.New(shape...)
	}
	softmaxFlat(flat, src, axis, shape)
	if flat != dst {
		dst.CopyFrom(flat)
	}
}

func softmaxFlat(dst, src *tensor.Tensor, axis int, shape []int) {
	outer := 1
	for _, d := range shape[:axis] {
		outer *= d
	}
	axisN := shape[axis]
	inner := 1
	for _, d := range shape[axis+1:] {
		inner *= d
	}
	s := src.Data()
	d := dst.Data()
	for o := 0; o < outer; o++ {
		for in := 0; in < inner; in++ {
			base := o*axisN*inner + in
			maxV := float64(math.Inf(-1))
			for i := 0; i < axisN; i++ {
				if v := float64(s[base+i*inner]); v > maxV {
					maxV = v
				}
			}
			var sum float64
			for i := 0; i < axisN; i++ {
				sum += math.Exp(float64(s[base+i*inner]) - maxV)
			}
			for i := 0; i < axisN; i++ {
				d[base+i*inner] = float32(math.Exp(float64(s[base+i*inner])-maxV) / sum)
			}
		}
	}
}

// BatchNormRef applies y = gamma·(x-mean)/sqrt(var+eps) + beta per channel.
func BatchNormRef(dst, src, gamma, beta, mean, variance *tensor.Tensor, eps float32) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	g, b, m, v := gamma.Data(), beta.Data(), mean.Data(), variance.Data()
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			scale := g[c] / float32(math.Sqrt(float64(v[c]+eps)))
			shift := b[c] - scale*m[c]
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					dst.Set(n, c, y, x, src.At(n, c, y, x)*scale+shift)
				}
			}
		}
	}
}

// ScaleRef applies y = x·scale[c] (+ bias[c]).
func ScaleRef(dst, src, scale, bias *tensor.Tensor) {
	N, C, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	s := scale.Data()
	var b []float32
	if bias != nil {
		b = bias.Data()
	}
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			sc := s[c]
			var sh float32
			if b != nil {
				sh = b[c]
			}
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					dst.Set(n, c, y, x, src.At(n, c, y, x)*sc+sh)
				}
			}
		}
	}
}

func applyActivation(v float32, relu, relu6 bool) float32 {
	if relu6 {
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
		return v
	}
	if relu && v < 0 {
		return 0
	}
	return v
}
