// Package leakcheck asserts that tests return the process to its starting
// goroutine count — the harness behind the PR 8 guarantee that Engine.Close,
// Server.Shutdown and mesh Router.Close release every worker they spawned,
// including when shutdown races injected faults.
//
// The check is count-based with a settle loop: goroutines legitimately take
// a moment to unwind after a Close (parked pool workers draining, HTTP
// keep-alive conns timing out), so the assertion polls until the count drops
// back to the baseline or a timeout expires, and dumps all stacks on
// failure so the leaked goroutine is named in the test log.
package leakcheck

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long a check waits for goroutines to unwind.
const settleTimeout = 10 * time.Second

// Check snapshots the goroutine count now and registers a cleanup that
// fails the test if the count hasn't returned to the snapshot (plus slack
// for runtime-owned goroutines) by the end of the test. Call it first thing
// in the test body:
//
//	func TestX(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
func Check(t testing.TB) {
	t.Helper()
	// Tests drive HTTP traffic through the default transport; its idle
	// conns own background read loops that would read as leaks.
	http.DefaultClient.CloseIdleConnections()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(settleTimeout)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at start, %d after cleanup; dumping stacks:\n%s", base, n, buf)
	})
}
