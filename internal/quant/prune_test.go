package quant_test

import (
	"math"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/quant"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

func TestPruneTensorSparsity(t *testing.T) {
	w := tensor.NewRandom(1, 1, 1000)
	zeroed := quant.PruneTensor(w, 0.5)
	if zeroed != 500 {
		t.Fatalf("zeroed %d, want 500", zeroed)
	}
	count := 0
	for _, v := range w.Data() {
		if v == 0 {
			count++
		}
	}
	if count < 500 {
		t.Fatalf("only %d zeros", count)
	}
}

func TestPruneKeepsLargestMagnitudes(t *testing.T) {
	w := tensor.FromData([]float32{0.1, -5, 0.2, 4, -0.05, 3, 0.15, -2}, 8)
	quant.PruneTensor(w, 0.5)
	d := w.Data()
	// The four large-magnitude entries must survive.
	if d[1] != -5 || d[3] != 4 || d[5] != 3 || d[7] != -2 {
		t.Fatalf("large weights pruned: %v", d)
	}
	// The four small ones must be gone.
	if d[0] != 0 || d[2] != 0 || d[4] != 0 || d[6] != 0 {
		t.Fatalf("small weights survived: %v", d)
	}
}

func TestPruneEdgeCases(t *testing.T) {
	w := tensor.NewRandom(2, 1, 10)
	if quant.PruneTensor(w, 0) != 0 {
		t.Error("fraction 0 must be a no-op")
	}
	if quant.PruneTensor(w.Clone(), 1.5) != 10 {
		t.Error("fraction >1 clamps to everything")
	}
	tiny := tensor.NewRandom(3, 1, 3)
	if quant.PruneTensor(tiny, 0.1) != 0 {
		t.Error("fraction below one element rounds to zero")
	}
}

func TestPruneWeightsGraph(t *testing.T) {
	g := models.SqueezeNetV11()
	rep := quant.PruneWeights(g, 0.6)
	if rep.TensorsPruned < 20 {
		t.Fatalf("pruned only %d tensors", rep.TensorsPruned)
	}
	sp := rep.Sparsity()
	if math.Abs(sp-0.6) > 0.02 {
		t.Fatalf("sparsity %.3f, want ≈0.6", sp)
	}
	if got := quant.GraphSparsity(g); math.Abs(got-sp) > 0.02 {
		t.Fatalf("GraphSparsity %.3f disagrees with report %.3f", got, sp)
	}
}

func TestPrunedModelStillRuns(t *testing.T) {
	// Moderate pruning must leave the network functional (outputs finite,
	// softmax normalized) even though values change.
	g := models.SqueezeNetV11()
	quant.PruneWeights(g, 0.3)
	in := tensor.New(1, 3, 224, 224)
	tensor.FillRandom(in, 5, 1)
	outs, err := session.RunReference(g, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range outs["prob"].Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("pruned model produced non-finite output")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax sum %v", sum)
	}
}

func TestPruneSkipsQuantized(t *testing.T) {
	g := models.SqueezeNetV11()
	quant.QuantizeWeights(g)
	rep := quant.PruneWeights(g, 0.5)
	if rep.TensorsPruned != 0 {
		t.Fatalf("pruning must skip int8 weights, touched %d", rep.TensorsPruned)
	}
}

func TestPruneSharedWeightCountedOnce(t *testing.T) {
	g := graph.New("shared")
	g.InputNames = []string{"x"}
	g.OutputNames = []string{"b"}
	g.AddNode(&graph.Node{Name: "x", Op: graph.OpInput, Outputs: []string{"x"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 4, 8, 8}}})
	g.AddWeight("w", tensor.NewRandom(1, 1, 4, 4, 3, 3))
	attrs := func() *graph.Conv2DAttrs {
		return &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
			PadH: 1, PadW: 1, Group: 1, InputCount: 4, OutputCount: 4}
	}
	g.AddNode(&graph.Node{Name: "a", Op: graph.OpConv2D, Inputs: []string{"x"}, Outputs: []string{"a"},
		WeightNames: []string{"w"}, Attrs: attrs()})
	g.AddNode(&graph.Node{Name: "b", Op: graph.OpConv2D, Inputs: []string{"a"}, Outputs: []string{"b"},
		WeightNames: []string{"w"}, Attrs: attrs()})
	rep := quant.PruneWeights(g, 0.5)
	if rep.TensorsPruned != 1 {
		t.Fatalf("shared weight pruned %d times", rep.TensorsPruned)
	}
	if rep.WeightsTotal != 144 {
		t.Fatalf("total %d, want 144", rep.WeightsTotal)
	}
}
