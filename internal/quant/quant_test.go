package quant

import (
	"testing"
	"testing/quick"

	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/models"
	"mnn/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	w := tensor.NewRandom(1, 0.5, 64, 32, 3, 3)
	// Symmetric int8: error bounded by scale/2 = maxAbs/254.
	if e := MaxQuantError(w); e > 0.5/254+1e-6 {
		t.Fatalf("quant error %g too large", e)
	}
}

// TestQuantizeZeroTensor pins the zero-scale handling: an exact-zero tensor
// quantizes at scale 1 (not 0) and round-trips back to exact zeros.
func TestQuantizeZeroTensor(t *testing.T) {
	z := tensor.New(4, 4)
	q := QuantizeTensor(z)
	if q.Quant.Scale != 1 {
		t.Fatalf("zero tensor scale %v, want 1 (scale 0 would lose the exact round trip)", q.Quant.Scale)
	}
	for _, qv := range q.Int8Data() {
		if qv != 0 {
			t.Fatal("zero tensor must quantize to exact zeros")
		}
	}
	d, err := Dequantize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Data() {
		if v != 0 {
			t.Fatal("zero tensor must stay zero")
		}
	}
	if e := MaxQuantError(z); e != 0 {
		t.Fatalf("zero tensor round-trip error %g, want exactly 0", e)
	}
}

// TestDequantizeRejectsNonInt8 pins the error (not panic) contract on the
// untrusted model-load path.
func TestDequantizeRejectsNonInt8(t *testing.T) {
	if _, err := Dequantize(tensor.New(2, 2)); err == nil {
		t.Fatal("Dequantize(float32) must error")
	}
	if _, err := Dequantize(tensor.NewInt32(2, 2)); err == nil {
		t.Fatal("Dequantize(int32) must error")
	}
	q := QuantizeTensor(tensor.NewRandom(1, 0.5, 2, 2))
	if _, err := Dequantize(q); err != nil {
		t.Fatalf("Dequantize(int8) must succeed: %v", err)
	}
}

func TestQuantizePropertyBounded(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		scale := float32(scaleRaw)/16 + 0.01
		w := tensor.NewRandom(seed, scale, 3, 5, 7)
		return MaxQuantError(w) <= float64(scale)/254+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMulInt8MatchesInt32(t *testing.T) {
	r := tensor.NewRNG(7)
	m, k, n := 5, 9, 6
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	for i := range a {
		a[i] = int8(r.Intn(255) - 127)
	}
	for i := range b {
		b[i] = int8(r.Intn(255) - 127)
	}
	dst := make([]int32, m*n)
	MulInt8(dst, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want int32
			for p := 0; p < k; p++ {
				want += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			if dst[i*n+j] != want {
				t.Fatalf("(%d,%d): got %d want %d", i, j, dst[i*n+j], want)
			}
		}
	}
}

func TestQuantizedConvCloseToFloat(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 1, InputCount: 8, OutputCount: 16}
	src := tensor.NewRandom(11, 1, 1, 8, 12, 12)
	weight := tensor.NewRandom(12, 0.2, 16, 8, 3, 3)
	bias := tensor.NewRandom(13, 0.1, 16)
	want := tensor.New(1, 16, 12, 12)
	kernels.ConvRef(want, src, weight, bias, a)

	qc, err := PrepareQuantizedConv(weight, bias, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.New(1, 16, 12, 12)
	qc.Run(got, src)
	// int8×int8 accumulation: relative error a few percent of the dynamic
	// range is expected.
	if d := tensor.MaxAbsDiff(want, got); d > 0.15 {
		t.Fatalf("quantized conv error %g", d)
	}
	// But it must be non-trivially accurate, not garbage.
	var norm float64
	for _, v := range want.Data() {
		if x := float64(v); x > norm {
			norm = x
		}
	}
	if norm < 0.5 {
		t.Fatal("test signal too weak to be meaningful")
	}
}

func TestQuantizedConvRejectsGroups(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, Group: 4, InputCount: 8, OutputCount: 8}
	if _, err := PrepareQuantizedConv(tensor.New(8, 2, 3, 3), nil, a, 0); err == nil {
		t.Fatal("expected group error")
	}
}

func TestQuantizeWeightsGraph(t *testing.T) {
	g := models.SqueezeNetV11()
	count, saved := QuantizeWeights(g)
	if count < 20 {
		t.Fatalf("only %d weights quantized", count)
	}
	if saved < 1_000_000 {
		t.Fatalf("saved only %d bytes", saved)
	}
	// All conv filters now int8; biases float.
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D {
			continue
		}
		if g.Weights[n.WeightNames[0]].DType() != tensor.Int8 {
			t.Fatalf("conv %q filter not quantized", n.Name)
		}
		if len(n.WeightNames) > 1 && g.Weights[n.WeightNames[1]].DType() != tensor.Float32 {
			t.Fatalf("conv %q bias must stay float", n.Name)
		}
	}
	// Dequantize restores float graph.
	if n := DequantizeWeights(g); n != count {
		t.Fatalf("dequantized %d, want %d", n, count)
	}
}
