package quant

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/cpu"
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

// Calibrate runs each sample through an fp32 CPU session and records a
// symmetric per-tensor activation scale (max-abs observer: scale =
// maxAbs/127, 1 for tensors that stay exactly zero) for every activation in
// the graph, writing the result into g.ActScales and returning it. The
// converter persists the table (format v2) so an engine opened with
// mnn.WithPrecision(mnn.PrecisionInt8) can quantize activations with fixed
// scales instead of deriving them per sample.
//
// Each sample maps every declared graph input to a tensor of its declared
// (or first sample's) shape. Calibration reuses one prepared session, so it
// costs N ordinary inferences plus one max-abs pass per activation.
func Calibrate(g *graph.Graph, samples []map[string]*tensor.Tensor) (map[string]float32, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("quant: Calibrate needs at least one sample")
	}
	shapes := map[string][]int{}
	for name, t := range samples[0] {
		shapes[name] = t.Shape()
	}
	bk := cpu.New(cpu.Config{Threads: 1, Pool: sched.New(1)})
	s, err := session.New(g, session.Config{
		Backends:    []backend.Backend{bk},
		InputShapes: shapes,
	})
	if err != nil {
		return nil, fmt.Errorf("quant: calibration session: %w", err)
	}
	defer s.Close()

	maxAbsByName := map[string]float32{}
	observe := func(n *graph.Node, outs []*tensor.Tensor) {
		for i, name := range n.Outputs {
			if i >= len(outs) || outs[i] == nil {
				continue
			}
			// MaxAbs scans logical elements only: NC4HW4 pad lanes of
			// arena-backed tensors can hold stale bytes from recycled
			// buffers and must not leak into the observed range.
			if m := float32(outs[i].MaxAbs()); m > maxAbsByName[name] {
				maxAbsByName[name] = m
			}
		}
	}
	for i, sample := range samples {
		for name, t := range sample {
			in := s.Input(name)
			if in == nil {
				return nil, fmt.Errorf("quant: sample %d names unknown input %q", i, name)
			}
			if !tensor.EqualShape(in.Shape(), t.Shape()) {
				return nil, fmt.Errorf("quant: sample %d input %q has shape %v, want %v",
					i, name, t.Shape(), in.Shape())
			}
			in.CopyFrom(t)
		}
		if err := s.RunObserved(nil, observe); err != nil {
			return nil, fmt.Errorf("quant: calibration run %d: %w", i, err)
		}
	}

	scales := make(map[string]float32, len(maxAbsByName))
	for name, m := range maxAbsByName {
		scales[name] = tensor.QuantScale(float64(m))
	}
	g.ActScales = scales
	return scales, nil
}

// CalibrateSynthetic calibrates with n deterministic random samples shaped
// from the graph's declared inputs — the zero-dependency path mnnconvert
// -calibrate uses when no representative dataset is at hand.
func CalibrateSynthetic(g *graph.Graph, n int, seed uint64) (map[string]float32, error) {
	if n < 1 {
		n = 1
	}
	var inputs []*graph.Node
	for _, node := range g.Nodes {
		if node.Op == graph.OpInput {
			inputs = append(inputs, node)
		}
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("quant: graph %q has no declared inputs", g.Name)
	}
	samples := make([]map[string]*tensor.Tensor, n)
	for i := range samples {
		sample := map[string]*tensor.Tensor{}
		for _, node := range inputs {
			a := node.Attrs.(*graph.InputAttrs)
			if len(a.Shape) == 0 {
				return nil, fmt.Errorf("quant: input %q declares no shape", node.Name)
			}
			seed++
			sample[node.Outputs[0]] = tensor.NewRandom(seed, 1, a.Shape...)
		}
		samples[i] = sample
	}
	return Calibrate(g, samples)
}
