package quant

import (
	"math"
	"sort"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// The paper's future work item (2): "integrating model compression tools
// (e.g. pruning) to slim the model on the fly". This file implements
// magnitude pruning: per filter tensor, the smallest-magnitude fraction of
// weights is zeroed. Combined with int8 quantization, sparse + quantized
// models compress well and the zero weights are skipped by the GEMM kernels'
// zero-test fast path.

// PruneReport summarizes a pruning pass.
type PruneReport struct {
	TensorsPruned int
	WeightsTotal  int
	WeightsZeroed int
}

// Sparsity returns the achieved zero fraction.
func (r PruneReport) Sparsity() float64 {
	if r.WeightsTotal == 0 {
		return 0
	}
	return float64(r.WeightsZeroed) / float64(r.WeightsTotal)
}

// PruneTensor zeroes the fraction of t's entries with the smallest
// magnitudes (per-tensor global magnitude pruning). Returns how many entries
// were zeroed. fraction is clamped to [0, 1].
func PruneTensor(t *tensor.Tensor, fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	d := t.Data()
	n := len(d)
	cut := int(float64(n) * fraction)
	if cut == 0 {
		return 0
	}
	mags := make([]float64, n)
	for i, v := range d {
		mags[i] = math.Abs(float64(v))
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	threshold := sorted[cut-1]
	zeroed := 0
	for i := range d {
		if mags[i] <= threshold && zeroed < cut {
			d[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// PruneWeights magnitude-prunes every Conv2D/InnerProduct filter in the
// graph to the target sparsity. Biases and normalization constants are left
// intact. Weights already quantized to int8 are skipped.
func PruneWeights(g *graph.Graph, sparsity float64) PruneReport {
	var rep PruneReport
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D && n.Op != graph.OpDeconv2D && n.Op != graph.OpInnerProduct {
			continue
		}
		if len(n.WeightNames) == 0 {
			continue
		}
		name := n.WeightNames[0]
		if seen[name] {
			continue
		}
		seen[name] = true
		w := g.Weights[name]
		if w.DType() != tensor.Float32 {
			continue
		}
		rep.TensorsPruned++
		rep.WeightsTotal += w.NumElements()
		rep.WeightsZeroed += PruneTensor(w, sparsity)
	}
	return rep
}

// GraphSparsity reports the current zero fraction over all conv/FC filters.
func GraphSparsity(g *graph.Graph) float64 {
	total, zeros := 0, 0
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D && n.Op != graph.OpDeconv2D && n.Op != graph.OpInnerProduct {
			continue
		}
		if len(n.WeightNames) == 0 {
			continue
		}
		name := n.WeightNames[0]
		if seen[name] {
			continue
		}
		seen[name] = true
		w := g.Weights[name]
		if w.DType() != tensor.Float32 {
			continue
		}
		for _, v := range w.Data() {
			total++
			if v == 0 {
				zeros++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}
