// Package quant implements the paper's Section 3.1 model quantization, both
// halves of it:
//
//   - the offline tool: symmetric per-tensor int8 quantization of
//     convolution and fully-connected weights (QuantizeWeights) for 4×
//     model-size compression, and a calibration pass (Calibrate) that runs
//     sample inputs through an fp32 session and records per-tensor
//     activation scales into the graph, where the converter persists them;
//
//   - the runtime contract: engines opened with int8 precision
//     (mnn.WithPrecision) execute calibrated graphs on the prepared int8
//     kernels in internal/kernels (im2col conv, depthwise conv and FC over
//     the packed int8 GEMM in internal/matmul), quantizing activations at
//     kernel entry with the calibrated scales — or per-sample max-abs when
//     a tensor was never calibrated — and requantizing fused with bias and
//     activation on the way out. Operators without an int8 kernel fall back
//     to fp32 transparently (optimizer.PlanInt8 decides the partition).
//
// QuantizedConv in this package is the self-contained reference form of the
// quantized convolution; the engine path uses the pooled, planner-backed
// kernels instead.
package quant

import (
	"fmt"
	"math"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// QuantizeTensor converts a float32 tensor to symmetric int8:
// q = round(x / scale) with scale = tensor.QuantScale(maxAbs) — maxAbs/127,
// where an all-zero tensor keeps scale 1 so exact zeros round-trip exactly.
func QuantizeTensor(t *tensor.Tensor) *tensor.Tensor {
	d := t.Data()
	var maxAbs float64
	for _, v := range d {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := tensor.QuantScale(maxAbs)
	q := tensor.NewInt8(tensor.QuantParams{Scale: scale}, t.Shape()...)
	qd := q.Int8Data()
	for i, v := range d {
		r := math.RoundToEven(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		qd[i] = int8(r)
	}
	return q
}

// Dequantize converts an int8 tensor back to float32. Non-int8 input is an
// error, not a panic: the model-load path feeds this untrusted data.
func Dequantize(q *tensor.Tensor) (*tensor.Tensor, error) {
	t, err := q.Dequantize()
	if err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	return t, nil
}

// QuantizeWeights replaces every Conv2D/InnerProduct filter in the graph
// with its int8 form (biases stay float32: they are tiny and precision-
// critical). Returns the number of tensors quantized and the byte savings.
func QuantizeWeights(g *graph.Graph) (count int, savedBytes int64) {
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D && n.Op != graph.OpDeconv2D && n.Op != graph.OpInnerProduct {
			continue
		}
		if len(n.WeightNames) == 0 {
			continue
		}
		name := n.WeightNames[0]
		w := g.Weights[name]
		if w.DType() != tensor.Float32 {
			continue
		}
		g.Weights[name] = QuantizeTensor(w)
		count++
		savedBytes += int64(w.NumElements()) * 3 // 4 bytes → 1 byte
	}
	return count, savedBytes
}

// DequantizeWeights restores float32 weights in place (the on-device load
// path for engines without int8 kernels).
func DequantizeWeights(g *graph.Graph) int {
	count := 0
	for name, w := range g.Weights {
		if w.DType() != tensor.Int8 {
			continue
		}
		d, err := Dequantize(w)
		if err != nil {
			// Unreachable: guarded by the dtype check above.
			continue
		}
		g.Weights[name] = d
		count++
	}
	return count
}

// MaxQuantError returns the worst absolute error introduced by quantizing
// and dequantizing t.
func MaxQuantError(t *tensor.Tensor) float64 {
	d, err := Dequantize(QuantizeTensor(t))
	if err != nil {
		// Unreachable: QuantizeTensor always yields int8.
		panic(err)
	}
	return tensor.MaxAbsDiff(t, d)
}

// MulInt8 computes the int8×int8→int32 GEMM dst = a·b with int32
// accumulation: a is m×k, b is k×n (row-major).
func MulInt8(dst []int32, a, b []int8, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic("quant: MulInt8 buffer too small")
	}
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			avi := int32(av)
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += avi * int32(bv)
			}
		}
	}
}

// QuantizedConv is a prepared int8 convolution (im2col + int8 GEMM +
// float32 requantization). src and dst are float32 NCHW tensors; the input
// is quantized on the fly with the calibrated input scale.
type QuantizedConv struct {
	attrs      graph.Conv2DAttrs
	ic, oc     int
	wq         []int8 // [k][oc] transposed quantized weights
	wScale     float32
	bias       []float32
	InputScale float32 // calibrated activation scale (x/scale → int8)
}

// PrepareQuantizedConv quantizes weights ([oc, ic, kh, kw], group 1) and
// fixes the activation scale. inputScale 0 lets Run derive it per call.
func PrepareQuantizedConv(weight, bias *tensor.Tensor, a *graph.Conv2DAttrs, inputScale float32) (*QuantizedConv, error) {
	if a.Group > 1 {
		return nil, fmt.Errorf("quant: grouped convolution not supported")
	}
	oc, ic := weight.Dim(0), weight.Dim(1)
	k := ic * a.KernelH * a.KernelW
	q := QuantizeTensor(weight)
	qc := &QuantizedConv{attrs: *a, ic: ic, oc: oc, wScale: q.Quant.Scale, InputScale: inputScale}
	qc.wq = make([]int8, k*oc)
	qd := q.Int8Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < k; i++ {
			qc.wq[i*oc+o] = qd[o*k+i]
		}
	}
	qc.bias = make([]float32, oc)
	if bias != nil {
		copy(qc.bias, bias.Data())
	}
	return qc, nil
}

// Run executes the quantized convolution on NCHW tensors.
func (qc *QuantizedConv) Run(dst, src *tensor.Tensor) {
	a := &qc.attrs
	N, _, H, W := src.Batch(), src.Channels(), src.Height(), src.Width()
	OH, OW := dst.Height(), dst.Width()
	kh, kw := a.KernelH, a.KernelW
	sh, sw := a.StrideH, a.StrideW
	if sh <= 0 {
		sh = 1
	}
	if sw <= 0 {
		sw = 1
	}
	dh, dw := a.DilationH, a.DilationW
	if dh <= 0 {
		dh = 1
	}
	if dw <= 0 {
		dw = 1
	}
	ph, pw := graph.ConvPadding(H, W, a)
	k := qc.ic * kh * kw
	px := OH * OW

	inScale := qc.InputScale
	if inScale == 0 {
		var maxAbs float64
		for _, v := range src.Data() {
			x := math.Abs(float64(v))
			if x > maxAbs {
				maxAbs = x
			}
		}
		inScale = float32(maxAbs / 127)
		if inScale == 0 {
			inScale = 1
		}
	}
	outScale := inScale * qc.wScale

	cols := make([]int8, px*k)
	acc := make([]int32, px*qc.oc)
	s := src.Data()
	d := dst.Data()
	for n := 0; n < N; n++ {
		for p := 0; p < px; p++ {
			oy, ox := p/OW, p%OW
			row := cols[p*k : (p+1)*k]
			idx := 0
			for i := 0; i < qc.ic; i++ {
				chanOff := (n*qc.ic + i) * H * W
				for ky := 0; ky < kh; ky++ {
					iy := oy*sh - ph + ky*dh
					for kx := 0; kx < kw; kx++ {
						ix := ox*sw - pw + kx*dw
						if iy < 0 || iy >= H || ix < 0 || ix >= W {
							row[idx] = 0
						} else {
							r := math.RoundToEven(float64(s[chanOff+iy*W+ix] / inScale))
							if r > 127 {
								r = 127
							}
							if r < -127 {
								r = -127
							}
							row[idx] = int8(r)
						}
						idx++
					}
				}
			}
		}
		MulInt8(acc, cols, qc.wq, px, k, qc.oc)
		for p := 0; p < px; p++ {
			for o := 0; o < qc.oc; o++ {
				v := float32(acc[p*qc.oc+o])*outScale + qc.bias[o]
				if a.ReLU6 {
					if v < 0 {
						v = 0
					} else if v > 6 {
						v = 6
					}
				} else if a.ReLU && v < 0 {
					v = 0
				}
				d[(n*qc.oc+o)*px+p] = v
			}
		}
	}
}
