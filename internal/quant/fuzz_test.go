package quant

import (
	"encoding/binary"
	"math"
	"testing"

	"mnn/internal/matmul"
	"mnn/internal/tensor"
)

// FuzzMulInt8 cross-checks every int8 GEMM implementation — the offline
// MulInt8, the naive matmul reference and the packed SWAR kernel (signed and
// unsigned-A modes) — against each other on fuzzed shapes and data. Integer
// accumulation is exact, so any disagreement is a real bug.
func FuzzMulInt8(f *testing.F) {
	f.Add(uint8(3), uint8(17), uint8(5), []byte{1, 2, 3, 255, 0, 7})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0x80})
	f.Add(uint8(4), uint8(64), uint8(33), []byte{9, 0, 0, 0, 128, 127})
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint8, data []byte) {
		m := int(mRaw)%6 + 1
		k := int(kRaw)%70 + 1
		n := int(nRaw)%40 + 1
		at := func(i int) int8 {
			if len(data) == 0 {
				return 0
			}
			return int8(data[i%len(data)])
		}
		a := make([]int8, m*k)
		b := make([]int8, k*n)
		for i := range a {
			a[i] = at(i)
		}
		for i := range b {
			b[i] = at(i + m*k)
		}
		want := make([]int32, m*n)
		matmul.MulInt8Ref(want, a, b, m, k, n)
		got := make([]int32, m*n)
		MulInt8(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MulInt8 (%d,%d,%d) element %d: got %d want %d", m, k, n, i, got[i], want[i])
			}
		}
		pb := matmul.PackBInt8(b, k, n)
		scratch := make([]int32, matmul.Int8GemmScratch(m))
		for i := range got {
			got[i] = 0
		}
		pb.MulInto(got, a, m, scratch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PackedBInt8 (%d,%d,%d) element %d: got %d want %d", m, k, n, i, got[i], want[i])
			}
		}
		// Unsigned-A mode: reinterpret the fuzzed bytes as 0..255 rows and
		// verify against a widened reference.
		au := make([]uint8, m*k)
		for i := range au {
			au[i] = uint8(a[i])
		}
		wantU := make([]int32, m*n)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				av := int32(au[i*k+p])
				for j := 0; j < n; j++ {
					wantU[i*n+j] += av * int32(b[p*n+j])
				}
			}
		}
		gotU := make([]int32, m*n)
		pb.MulIntoU8(gotU, au, m, scratch)
		for i := range wantU {
			if gotU[i] != wantU[i] {
				t.Fatalf("MulIntoU8 (%d,%d,%d) element %d: got %d want %d", m, k, n, i, gotU[i], wantU[i])
			}
		}
	})
}

// FuzzQuantizeRoundTrip: for any finite float32 tensor, quantize→dequantize
// must err by at most scale/2 per element (symmetric rounding), and exact
// zeros must survive exactly.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0x7f, 0x7f}) // near-max float32
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		if n == 0 {
			return
		}
		vals := make([]float32, n)
		for i := 0; i < n; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			vals[i] = v
		}
		tt := tensor.FromData(vals, n)
		q := QuantizeTensor(tt)
		scale := float64(q.Quant.Scale)
		if scale <= 0 {
			t.Fatalf("non-positive scale %v", scale)
		}
		d, err := Dequantize(q)
		if err != nil {
			t.Fatal(err)
		}
		// scale/2 rounding plus one ulp of the scale multiply.
		budget := scale/2 + scale*1e-5
		for i, v := range vals {
			got := d.Data()[i]
			if v == 0 && got != 0 {
				t.Fatalf("exact zero at %d round-tripped to %v", i, got)
			}
			if diff := math.Abs(float64(v) - float64(got)); diff > budget {
				t.Fatalf("element %d: |%v - %v| = %g > scale/2 = %g", i, v, got, diff, budget)
			}
		}
	})
}
