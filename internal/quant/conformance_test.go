package quant

// Kernel-level conformance between the three int8 implementations: the
// self-contained QuantizedConv reference in this package, the pooled
// runtime kernels in internal/kernels, and the naive fp32 reference. Plus
// the calibration pass's contract: deterministic, complete, positive.

import (
	"testing"

	"mnn/internal/graph"
	"mnn/internal/kernels"
	"mnn/internal/matmul"
	"mnn/internal/models"
	"mnn/internal/sched"
	"mnn/internal/tensor"
)

// TestMulInt8AgreesWithPackedGemm: the offline MulInt8 GEMM, the reference
// matmul.MulInt8Ref and the packed SWAR kernel must agree bitwise (integer
// accumulation is exact) on shapes covering the tiny-K fallback and both
// panel-remainder paths.
func TestMulInt8AgreesWithPackedGemm(t *testing.T) {
	r := tensor.NewRNG(3)
	for _, tc := range []struct{ m, k, n int }{
		{1, 4, 4}, {3, 16, 16}, {5, 33, 20}, {8, 64, 48}, {7, 100, 31},
	} {
		a := make([]int8, tc.m*tc.k)
		b := make([]int8, tc.k*tc.n)
		for i := range a {
			a[i] = int8(r.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(r.Intn(255) - 127)
		}
		want := make([]int32, tc.m*tc.n)
		MulInt8(want, a, b, tc.m, tc.k, tc.n)
		ref := make([]int32, tc.m*tc.n)
		matmul.MulInt8Ref(ref, a, b, tc.m, tc.k, tc.n)
		packed := make([]int32, tc.m*tc.n)
		matmul.PackBInt8(b, tc.k, tc.n).MulInto(packed, a, tc.m, make([]int32, tc.m))
		for i := range want {
			if ref[i] != want[i] || packed[i] != want[i] {
				t.Fatalf("%dx%dx%d element %d: MulInt8=%d ref=%d packed=%d",
					tc.m, tc.k, tc.n, i, want[i], ref[i], packed[i])
			}
		}
	}
}

// TestQuantizedConvPathsAgree: the offline QuantizedConv (per-tensor scales)
// and the runtime kernels.QuantConv (per-channel scales) must both land
// within the quantization noise floor of the fp32 reference.
func TestQuantizedConvPathsAgree(t *testing.T) {
	a := &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1,
		PadH: 1, PadW: 1, Group: 1, InputCount: 8, OutputCount: 12}
	src := tensor.NewRandom(31, 1, 1, 8, 10, 10)
	weight := tensor.NewRandom(32, 0.3, 12, 8, 3, 3)
	bias := tensor.NewRandom(33, 0.1, 12)
	want := tensor.New(1, 12, 10, 10)
	kernels.ConvRef(want, src, weight, bias, a)
	var norm float64
	for _, v := range want.Data() {
		if x := float64(v); x > norm {
			norm = x
		}
	}
	if norm < 0.5 {
		t.Fatal("test signal too weak to be meaningful")
	}
	budget := 0.05 * norm

	offline, err := PrepareQuantizedConv(weight, bias, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotOffline := tensor.New(1, 12, 10, 10)
	offline.Run(gotOffline, src)
	if d := tensor.MaxAbsDiff(want, gotOffline); d > budget {
		t.Fatalf("offline QuantizedConv error %g > %g", d, budget)
	}

	pool := sched.New(2)
	defer pool.Close()
	runtime := kernels.PrepareQuantConv(weight, bias, a, 0)
	gotRuntime := tensor.New(1, 12, 10, 10)
	ws := make([]float32, runtime.WorkspaceSize(10, 10))
	runtime.Run(gotRuntime, src, pool, ws)
	if d := tensor.MaxAbsDiff(want, gotRuntime); d > budget {
		t.Fatalf("runtime QuantConv error %g > %g", d, budget)
	}
	// Per-channel runtime quantization must not be worse than the per-tensor
	// offline tool by more than noise.
	if dr, do := tensor.MaxAbsDiff(want, gotRuntime), tensor.MaxAbsDiff(want, gotOffline); dr > 2*do+1e-3 {
		t.Fatalf("per-channel runtime error %g worse than per-tensor offline %g", dr, do)
	}
}

// TestCalibrateContract: calibration is deterministic, covers every
// activation the graph produces, and never emits a non-positive scale.
func TestCalibrateContract(t *testing.T) {
	build := func() (*graph.Graph, map[string]*tensor.Tensor) {
		g := models.SqueezeNetV11()
		return g, map[string]*tensor.Tensor{"data": tensor.NewRandom(5, 1, 1, 3, 64, 64)}
	}
	g1, s1 := build()
	scales1, err := Calibrate(g1, []map[string]*tensor.Tensor{s1})
	if err != nil {
		t.Fatal(err)
	}
	g2, s2 := build()
	scales2, err := Calibrate(g2, []map[string]*tensor.Tensor{s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scales1) != len(scales2) {
		t.Fatalf("calibration nondeterministic: %d vs %d scales", len(scales1), len(scales2))
	}
	for name, v := range scales1 {
		if scales2[name] != v {
			t.Fatalf("calibration nondeterministic at %q: %v vs %v", name, v, scales2[name])
		}
		if v <= 0 {
			t.Fatalf("non-positive scale %v for %q", v, name)
		}
	}
	for _, n := range g1.Nodes {
		for _, o := range n.Outputs {
			if _, ok := scales1[o]; !ok {
				t.Fatalf("activation %q has no calibrated scale", o)
			}
		}
	}
	if g1.ActScales == nil {
		t.Fatal("Calibrate must store scales into the graph")
	}

	if _, err := Calibrate(g1, nil); err == nil {
		t.Fatal("Calibrate with no samples must error")
	}
	if _, err := Calibrate(g1, []map[string]*tensor.Tensor{
		{"bogus": tensor.New(1, 3, 64, 64)}}); err == nil {
		t.Fatal("Calibrate with unknown input must error")
	}
}

// TestCalibrateSyntheticUsesDeclaredShapes pins the mnnconvert -calibrate
// path on a model small enough to run its declared 224 shape quickly.
func TestCalibrateSyntheticUsesDeclaredShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution calibration in -short mode")
	}
	g := models.SqueezeNetV11()
	scales, err := CalibrateSynthetic(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scales) == 0 || g.ActScales == nil {
		t.Fatal("synthetic calibration produced no scales")
	}
}
