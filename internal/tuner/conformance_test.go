package tuner

// Cross-algorithm equivalence suite: for every built-in network, force each
// legal convolution algorithm onto every layer that admits it and assert the
// outputs agree with the default selection within a small fp32 budget. This
// pins the property the whole tuner rests on: any candidate the search can
// commit — however the cost model or a micro-benchmark ranks it — computes
// the same convolution. A wrong-answer kernel can therefore never be
// "picked fast"; it is caught here first.

import (
	"fmt"
	"testing"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

// forcedVariant is one algorithm family the suite forces network-wide.
type forcedVariant struct {
	name string
	// pick returns the forced decision for a conv, or false to keep the
	// default (the family is not legal there).
	pick func(cands []core.ConvCandidate) (core.ConvDecision, bool)
}

func schemeVariant(s core.ConvScheme, tile int) forcedVariant {
	name := s.String()
	if s == core.SchemeWinograd {
		name = fmt.Sprintf("%s-%d", name, tile)
	}
	return forcedVariant{name: name, pick: func(cands []core.ConvCandidate) (core.ConvDecision, bool) {
		for _, c := range cands {
			if c.Decision.Scheme != s {
				continue
			}
			if s == core.SchemeWinograd && c.Decision.TileH != tile && c.Decision.TileW != tile {
				continue
			}
			return c.Decision, true
		}
		return core.ConvDecision{}, false
	}}
}

var conformanceVariants = []forcedVariant{
	schemeVariant(core.SchemeSliding, 0),
	schemeVariant(core.SchemeIm2col, 0),
	schemeVariant(core.SchemeStrassen1x1, 0),
	schemeVariant(core.SchemeDepthwise, 0),
	schemeVariant(core.SchemeWinograd, 2),
	schemeVariant(core.SchemeWinograd, 4),
	schemeVariant(core.SchemeWinograd, 6),
}

// conformanceNets mirrors the root conformance suite's shape choices:
// small inputs except where a network's structure pins a minimum.
var conformanceNets = []struct {
	net   string
	hw    int
	heavy bool
}{
	{"mobilenet-v1", 64, false},
	{"mobilenet-v2", 64, false},
	{"squeezenet-v1.0", 64, false},
	{"squeezenet-v1.1", 64, false},
	{"resnet-18", 64, false},
	{"resnet-50", 64, true},
	{"inception-v3", 107, true},
	{"vgg-16", 224, true},
}

// crossAlgorithmBudget is the max-abs output deviation allowed between two
// legal algorithms for the same fp32 network. Winograd's transform
// arithmetic reorders float operations, so exact equality is impossible;
// observed deviations on these shapes are below 2e-5 (post-softmax), the
// budget sits an order of magnitude above.
const crossAlgorithmBudget = 2e-4

func runForced(t *testing.T, g *graph.Graph, shapes map[string][]int, input *tensor.Tensor,
	force func(n *graph.Node, dec core.ConvDecision) (core.ConvDecision, bool)) (map[string]*tensor.Tensor, int) {
	t.Helper()
	admitted := 0
	var wrapped func(n *graph.Node, dec core.ConvDecision) core.ConvDecision
	if force != nil {
		wrapped = func(n *graph.Node, dec core.ConvDecision) core.ConvDecision {
			d, ok := force(n, dec)
			if !ok {
				return dec
			}
			admitted++
			return d
		}
	}
	bk := cpu.New(cpu.Config{Threads: 2, ForceScheme: wrapped})
	s, err := session.New(g, session.Config{Backends: []backend.Backend{bk}, InputShapes: shapes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Input(g.InputNames[0]).CopyFrom(input)
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	outs := map[string]*tensor.Tensor{}
	for _, name := range s.OutputNames() {
		outs[name] = s.Output(name).Clone()
	}
	return outs, admitted
}

func TestCrossAlgorithmEquivalence(t *testing.T) {
	for _, tc := range conformanceNets {
		tc := tc
		t.Run(tc.net, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy model in -short mode")
			}
			g, err := models.ByName(tc.net)
			if err != nil {
				t.Fatal(err)
			}
			input := tensor.NewRandom(7, 1, 1, 3, tc.hw, tc.hw)
			shapes := map[string][]int{g.InputNames[0]: {1, 3, tc.hw, tc.hw}}
			inferred, err := graph.InferShapes(g, shapes)
			if err != nil {
				t.Fatal(err)
			}
			ref, _ := runForced(t, g, shapes, input, nil)

			for _, v := range conformanceVariants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					force := func(n *graph.Node, dec core.ConvDecision) (core.ConvDecision, bool) {
						cands := core.ConvCandidates(n.Attrs.(*graph.Conv2DAttrs), inferred[n.Inputs[0]])
						return v.pick(cands)
					}
					got, admitted := runForced(t, g, shapes, input, force)
					if admitted == 0 {
						t.Skipf("no layer of %s admits %s", tc.net, v.name)
					}
					for name, r := range ref {
						if d := tensor.MaxAbsDiff(r, got[name]); d > crossAlgorithmBudget {
							t.Errorf("output %q: forcing %s on %d layers deviates %.3e from default, budget %.1e",
								name, v.name, admitted, d, crossAlgorithmBudget)
						}
					}
				})
			}
		})
	}
}
