package tuner

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeTuningCache hardens mnn.Open against hostile or bit-rotted
// tuning-cache files: decoding arbitrary bytes must never panic, and
// anything that does decode must re-encode and decode to the same cache
// (the persistence layer can't silently mutate decisions).
func FuzzDecodeTuningCache(f *testing.F) {
	valid, err := EncodeCache(sampleCache())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 99, "host": "h", "model": "m", "entries": {}}`))
	f.Add([]byte(`{"version": 1, "host": "h", "model": "m", "entries": null}`))
	f.Add([]byte(`{"version": 1, "host": "h", "model": "m", "entries": {"sig": {"scheme": "winograd", "tile_h": -4}}}`))
	f.Add([]byte(`{"version": 1, "entries": {"s": {"scheme": "quantum"}}}`))
	f.Add([]byte(`{"version": 1, "unknown_field": true}`))
	f.Add([]byte(`{"version": 1e309}`))
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Repeat([]byte(`[`), 10000))
	f.Add([]byte(strings.Repeat("\x00\xff\x7f", 64)))
	f.Add([]byte(`{"version": 1, "host": "` + strings.Repeat("h", 1<<16) + `", "model": "m", "entries": {}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCache(data)
		if err != nil {
			return
		}
		encoded, err := EncodeCache(c)
		if err != nil {
			t.Fatalf("decoded cache fails to re-encode: %v", err)
		}
		again, err := DecodeCache(encoded)
		if err != nil {
			t.Fatalf("re-encoded cache fails to decode: %v", err)
		}
		if again.Host != c.Host || again.Model != c.Model || len(again.Entries) != len(c.Entries) {
			t.Fatalf("round trip mutated the cache: %+v vs %+v", again, c)
		}
		for sig, e := range c.Entries {
			if again.Entries[sig] != e {
				t.Fatalf("round trip mutated entry %q: %+v vs %+v", sig, again.Entries[sig], e)
			}
		}
	})
}
