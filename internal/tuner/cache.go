package tuner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"

	"mnn/internal/graph"
)

// CacheVersion is the on-disk format version. Decoding a file written by a
// different version fails with ErrCacheStale so the caller re-tunes instead
// of trusting decisions measured under different semantics.
const CacheVersion = 1

// ErrCacheStale marks a structurally valid cache that does not apply here:
// wrong format version, a different host, or a different model. Callers
// fall back to the cost model (and re-measure) instead of erroring.
var ErrCacheStale = errors.New("tuner: tuning cache is stale (version, host or model mismatch)")

// ErrCacheCorrupt marks a cache file that could not be decoded at all.
var ErrCacheCorrupt = errors.New("tuner: tuning cache is corrupt")

// CacheEntry is one persisted decision: the winning algorithm for a
// convolution signature, with the measured steady-state latency that earned
// the pick (diagnostics only — decisions are re-validated against the
// legality predicates on every load).
type CacheEntry struct {
	Scheme  string  `json:"scheme"`
	TileH   int     `json:"tile_h,omitempty"`
	TileW   int     `json:"tile_w,omitempty"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
}

// Cache holds tuned decisions for one (host, model) pair.
type Cache struct {
	Host    string
	Model   string
	Entries map[string]CacheEntry
}

// cacheFile is the JSON wire form.
type cacheFile struct {
	Version int                   `json:"version"`
	Host    string                `json:"host"`
	Model   string                `json:"model"`
	Entries map[string]CacheEntry `json:"entries"`
}

// HostKey identifies the measuring host: measured picks transfer neither
// across architectures nor across core counts, so both are part of the key.
func HostKey() string {
	return runtime.GOOS + "/" + runtime.GOARCH + "-c" + strconv.Itoa(runtime.NumCPU())
}

// NewCache returns an empty cache keyed to this host and the given model.
func NewCache(model string) *Cache {
	return &Cache{Host: HostKey(), Model: model, Entries: map[string]CacheEntry{}}
}

// SigConv is the tuning signature of one convolution: every attribute and
// shape dimension that affects algorithm legality or performance. Layers
// sharing a signature (MobileNet repeats its blocks) are measured once.
func SigConv(a *graph.Conv2DAttrs, inShape []int) string {
	act := 0
	if a.ReLU {
		act = 1
	}
	if a.ReLU6 {
		act = 2
	}
	shape := ""
	for i, d := range inShape {
		if i > 0 {
			shape += "x"
		}
		shape += strconv.Itoa(d)
	}
	return fmt.Sprintf("k%dx%d_s%dx%d_d%dx%d_p%dx%dm%d_g%d_oc%d_in%s_a%d",
		a.KernelH, a.KernelW, a.StrideH, a.StrideW, a.DilationH, a.DilationW,
		a.PadH, a.PadW, int(a.PadMode), a.Group, a.OutputCount, shape, act)
}

// EncodeCache serializes a cache to the versioned JSON form. Map keys are
// emitted sorted, so encode→decode→encode is byte-identical.
func EncodeCache(c *Cache) ([]byte, error) {
	entries := c.Entries
	if entries == nil {
		entries = map[string]CacheEntry{}
	}
	data, err := json.MarshalIndent(cacheFile{
		Version: CacheVersion, Host: c.Host, Model: c.Model, Entries: entries,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeCache parses a cache file. It never panics on hostile input: any
// structural problem returns ErrCacheCorrupt, a version mismatch returns
// ErrCacheStale. Host/model applicability is the caller's check (LoadCacheFile)
// so tooling can still inspect foreign caches.
func DecodeCache(data []byte) (*Cache, error) {
	var f cacheFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCacheCorrupt, err)
	}
	if f.Version != CacheVersion {
		return nil, fmt.Errorf("%w: file version %d, want %d", ErrCacheStale, f.Version, CacheVersion)
	}
	if f.Entries == nil {
		f.Entries = map[string]CacheEntry{}
	}
	return &Cache{Host: f.Host, Model: f.Model, Entries: f.Entries}, nil
}

// LoadCacheFile reads and validates a cache for this host. A missing file
// returns os.ErrNotExist; a corrupt or stale (wrong version/host) file
// returns the matching sentinel — callers treat every error as "cold cache".
//
// The model field is provenance metadata, not a staleness gate: entries are
// keyed by convolution signature and lane count, which fully determine a
// measurement on a given host, so two models pointed at one cache file
// share entries (and merge on save) instead of clobbering each other.
func LoadCacheFile(path, model string) (*Cache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := DecodeCache(data)
	if err != nil {
		return nil, err
	}
	if c.Host != HostKey() {
		return nil, fmt.Errorf("%w: cache measured on host %q, this is %q",
			ErrCacheStale, c.Host, HostKey())
	}
	c.Model = model
	return c, nil
}

// TornSaveCacheFile is the fault-injection twin of SaveCacheFile: it
// simulates a crash in the middle of persisting — the destination is left
// truncated mid-document and a half-written temp file (the kind the atomic
// writer would have renamed) is left behind. Warm loads must shrug both off
// (ErrCacheCorrupt → cold re-tune) per the "bad cache can never break Open"
// contract.
func TornSaveCacheFile(path string, c *Cache) error {
	data, err := EncodeCache(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tuning-*.json")
	if err != nil {
		return err
	}
	// The crash point: both files stop mid-write, no rename ever happens.
	cut := len(data) / 2
	if _, err := tmp.Write(data[:cut]); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.WriteFile(path, data[:cut], 0o644)
}

// SaveCacheFile writes the cache atomically (temp file + rename) so a crash
// mid-write can never leave a truncated cache behind.
func SaveCacheFile(path string, c *Cache) error {
	data, err := EncodeCache(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tuning-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
