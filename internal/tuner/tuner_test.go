package tuner

import (
	"math/rand"
	"path/filepath"
	"testing"

	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/optimizer"
)

// randomConv draws a random convolution configuration from the space the
// built-in networks (and the serving tier's arbitrary models) inhabit.
func randomConv(r *rand.Rand) (*graph.Conv2DAttrs, []int) {
	ic := 1 + r.Intn(64)
	oc := 1 + r.Intn(64)
	k := []int{1, 1, 2, 3, 3, 5, 7}[r.Intn(7)]
	kw := k
	if r.Intn(8) == 0 { // asymmetric kernels (Inception)
		kw = []int{1, 3, 7}[r.Intn(3)]
	}
	a := &graph.Conv2DAttrs{
		KernelH: k, KernelW: kw,
		StrideH: 1 + r.Intn(3), StrideW: 1 + r.Intn(3),
		DilationH: 1 + r.Intn(2), DilationW: 1 + r.Intn(2),
		PadMode: graph.PadSame,
		Group:   1, InputCount: ic, OutputCount: oc,
		ReLU: r.Intn(2) == 0,
	}
	switch r.Intn(5) {
	case 0: // depthwise
		a.Group, a.InputCount, a.OutputCount = ic, ic, ic
	case 1: // grouped
		g := []int{2, 4}[r.Intn(2)]
		a.InputCount, a.OutputCount = ic*g, oc*g
		a.Group = g
	}
	if r.Intn(3) == 0 {
		a.PadMode = graph.PadExplicit
		a.PadH, a.PadW = r.Intn(3), r.Intn(3)
	}
	hw := 4 + r.Intn(60)
	return a, []int{1, a.InputCount, hw, hw}
}

// TestCandidateLegalityProperty: across randomized shapes, every candidate
// the cost model can propose satisfies its kernel's preconditions — the
// tuner can never hand the backend an algorithm the prepared kernels reject.
func TestCandidateLegalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a, inShape := randomConv(r)
		cands := core.ConvCandidates(a, inShape)
		if len(cands) == 0 {
			t.Fatalf("trial %d: no legal candidate for %+v %v (im2col should be universal)", trial, a, inShape)
		}
		for _, c := range cands {
			dec := c.Decision
			switch dec.Scheme {
			case core.SchemeWinograd:
				if a.StrideH > 1 || a.StrideW > 1 {
					t.Fatalf("trial %d: Winograd proposed with stride %dx%d", trial, a.StrideH, a.StrideW)
				}
				if a.DilationH > 1 || a.DilationW > 1 {
					t.Fatalf("trial %d: Winograd proposed with dilation %dx%d", trial, a.DilationH, a.DilationW)
				}
				if a.Group > 1 {
					t.Fatalf("trial %d: Winograd proposed with group %d", trial, a.Group)
				}
				if dec.TileH+a.KernelH-1 > 10 || dec.TileW+a.KernelW-1 > 10 {
					t.Fatalf("trial %d: Winograd transform %dx%d exceeds the float32 bound",
						trial, dec.TileH+a.KernelH-1, dec.TileW+a.KernelW-1)
				}
				if a.KernelH > inShape[2] || a.KernelW > inShape[3] {
					t.Fatalf("trial %d: Winograd proposed with kernel larger than input", trial)
				}
			case core.SchemeStrassen1x1:
				if a.KernelH != 1 || a.KernelW != 1 {
					t.Fatalf("trial %d: 1x1 path proposed for k=%dx%d", trial, a.KernelH, a.KernelW)
				}
				if a.Group > 1 {
					t.Fatalf("trial %d: 1x1 path proposed with group %d", trial, a.Group)
				}
				if ph, pw := graph.ConvPadding(inShape[2], inShape[3], a); ph != 0 || pw != 0 {
					t.Fatalf("trial %d: 1x1 path proposed with padding %dx%d", trial, ph, pw)
				}
			case core.SchemeDepthwise:
				if !a.IsDepthwise() {
					t.Fatalf("trial %d: depthwise kernel proposed for non-depthwise conv", trial)
				}
			case core.SchemeSliding:
				if a.Group > 1 {
					t.Fatalf("trial %d: sliding kernel proposed with group %d", trial, a.Group)
				}
			case core.SchemeIm2col:
				g := a.Group
				if g <= 0 {
					g = 1
				}
				if a.OutputCount%g != 0 || a.InputCount%g != 0 {
					t.Fatalf("trial %d: im2col proposed with indivisible groups", trial)
				}
			default:
				t.Fatalf("trial %d: unknown scheme %v proposed", trial, dec.Scheme)
			}
		}
	}
}

// TestHeuristicDecisionIsACandidate: the built-in Equation 2–3 pick is
// always inside the enumerated candidate set with identical tile sizes and
// cost terms — the refactor onto shared legality predicates cannot have
// diverged the two code paths.
func TestHeuristicDecisionIsACandidate(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a, inShape := randomConv(r)
		dec := core.SelectConvScheme(a, inShape)
		found := false
		for _, c := range core.ConvCandidates(a, inShape) {
			if c.Decision.Scheme == dec.Scheme && c.Decision.TileH == dec.TileH && c.Decision.TileW == dec.TileW {
				found = true
				if c.Decision.EffMULs != dec.EffMULs {
					t.Fatalf("trial %d: candidate EffMULs %d != heuristic %d for %v",
						trial, c.Decision.EffMULs, dec.EffMULs, dec.Scheme)
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: heuristic decision %v (tile %dx%d) absent from candidates of %+v %v",
				trial, dec.Scheme, dec.TileH, dec.TileW, a, inShape)
		}
	}
}

// TestCostModePickIsACandidate: the committed cost-model decision is always
// drawn from the legal candidate list (never an out-of-band scheme).
func TestCostModePickIsACandidate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, inShape := randomConv(r)
		cands := core.ConvCandidates(a, inShape)
		best := rankCandidates(cands)[0]
		found := false
		for _, c := range cands {
			if c.Decision == best.Decision {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: ranked winner not in candidate set", trial)
		}
	}
}

// TestInt8PlanRespectsTunedSchemes: for every built-in network, the int8
// partition computed from a tuned plan marks a convolution int8 only when
// Int8ConvSupported holds for the algorithm that will actually run — the
// plan/runtime consistency the quantized dispatch depends on.
func TestInt8PlanRespectsTunedSchemes(t *testing.T) {
	for _, net := range []string{"mobilenet-v1", "squeezenet-v1.1", "resnet-18"} {
		g, err := models.ByName(net)
		if err != nil {
			t.Fatal(err)
		}
		shapes, err := graph.InferShapes(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := New(g, shapes, Config{Mode: ModeCost})
		if err != nil {
			t.Fatal(err)
		}
		int8Plan, err := optimizer.PlanInt8With(g, nil, plan.SchemeFor)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Op != graph.OpConv2D || !int8Plan.Int8[n.Name] {
				continue
			}
			a := n.Attrs.(*graph.Conv2DAttrs)
			dec := plan.SchemeFor(n, shapes[n.Inputs[0]])
			if !core.Int8ConvSupported(a, dec) {
				t.Errorf("%s: node %q planned int8 but tuned scheme %v is not int8-supported",
					net, n.Name, dec.Scheme)
			}
		}
	}
}

// TestMeasuredModeCommitsAndCaches: a small measured search commits one
// decision per conv node, measures only unique signatures, persists the
// winners, and a second search resolves everything from the cache without
// spawning a single micro-benchmark.
func TestMeasuredModeCommitsAndCaches(t *testing.T) {
	g, err := models.ByName("squeezenet-v1.1")
	if err != nil {
		t.Fatal(err)
	}
	hw := 32
	override := map[string][]int{g.InputNames[0]: {1, 3, hw, hw}}
	shapes, err := graph.InferShapes(g, override)
	if err != nil {
		t.Fatal(err)
	}
	cache := filepath.Join(t.TempDir(), "sq.tuning.json")
	cfg := Config{Mode: ModeMeasured, Threads: 2, CachePath: cache, Reps: 1, TopK: 2}
	cold, err := New(g, shapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	convs := 0
	for _, n := range g.Nodes {
		if n.Op == graph.OpConv2D {
			convs++
			if _, ok := cold.Decisions[n.Name]; !ok {
				t.Errorf("conv %q has no committed decision", n.Name)
			}
		}
	}
	if cold.Report.ConvOps != convs {
		t.Errorf("report covers %d conv ops, graph has %d", cold.Report.ConvOps, convs)
	}
	if cold.Report.Measured == 0 || !cold.Report.CacheSaved {
		t.Fatalf("cold search measured %d candidates, saved=%v — expected measurement and a cache write",
			cold.Report.Measured, cold.Report.CacheSaved)
	}
	warm, err := New(g, shapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Report.Measured != 0 {
		t.Errorf("warm search ran %d micro-benchmarks, want 0", warm.Report.Measured)
	}
	if warm.Report.CacheHits != warm.Report.Unique {
		t.Errorf("warm search hit %d/%d signatures", warm.Report.CacheHits, warm.Report.Unique)
	}
	for name, d := range cold.Decisions {
		if warm.Decisions[name] != d {
			t.Errorf("node %q: warm decision %+v != cold %+v", name, warm.Decisions[name], d)
		}
	}
}

// TestGemmDecisionsOnTransformer: a cost-mode plan covers every weight-form
// MatMul of the transformer with a batch-invariant packed-vs-direct choice,
// and the adapter reports ok=false for nodes outside the plan.
func TestGemmDecisionsOnTransformer(t *testing.T) {
	g, err := models.ByName("transformer")
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(g, shapes, Config{Mode: ModeCost})
	if err != nil {
		t.Fatal(err)
	}
	weightForm := 0
	for _, n := range g.Nodes {
		if n.Op != graph.OpMatMul {
			continue
		}
		a := n.Attrs.(*graph.MatMulAttrs)
		packed, ok := plan.GemmScheme(n)
		if a.Heads > 0 {
			if ok {
				t.Errorf("batched matmul %q got a gemm decision", n.Name)
			}
			continue
		}
		weightForm++
		if !ok {
			t.Errorf("weight-form matmul %q has no gemm decision", n.Name)
		}
		// Every transformer weight GEMM has K >= 32 — deep enough to pack.
		if !packed {
			t.Errorf("matmul %q: expected packed at K>=32", n.Name)
		}
	}
	// 2 layers × (Q,K,V,proj,FFN up,FFN down) + classifier = 13.
	if weightForm != 13 || plan.Report.GemmOps != 13 {
		t.Errorf("weight-form matmuls = %d, Report.GemmOps = %d, want 13", weightForm, plan.Report.GemmOps)
	}
}

// TestGemmDecisionBatchInvariant: the same graph inferred at different batch
// sizes must commit identical gemm decisions (the serving tier's batched and
// unbatched engines must prepare the same kernels).
func TestGemmDecisionBatchInvariant(t *testing.T) {
	g, err := models.ByName("transformer")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := graph.InferShapes(g, map[string][]int{"tokens": {4, 16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := New(g, s1, Config{Mode: ModeCost})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := New(g, s4, Config{Mode: ModeCost})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Gemm) != len(p4.Gemm) {
		t.Fatalf("decision counts differ: %d vs %d", len(p1.Gemm), len(p4.Gemm))
	}
	for name, v := range p1.Gemm {
		if p4.Gemm[name] != v {
			t.Errorf("node %q: batch-1 packed=%v, batch-4 packed=%v", name, v, p4.Gemm[name])
		}
	}
}

// TestGemmPackedThreshold pins the tiny-K rule: below the panel width the
// packed kernel would fall back to the direct loop anyway, so the plan must
// commit direct.
func TestGemmPackedThreshold(t *testing.T) {
	if gemmPacked(16, 15, 64) {
		t.Error("K=15 must stay direct")
	}
	if !gemmPacked(16, 16, 64) {
		t.Error("K=16 must pack")
	}
}
