package tuner

import (
	"path/filepath"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
)

// BenchmarkSearchCost measures the pure-analytic search: this is overhead
// every cost-mode Open pays, so it must stay trivially cheap next to
// session preparation.
func BenchmarkSearchCost(b *testing.B) {
	g, err := models.ByName("resnet-18")
	if err != nil {
		b.Fatal(err)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, shapes, Config{Mode: ModeCost}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchMeasuredWarm measures warm-cache resolution — the steady
// deployment state of a measured-mode Open. The cold pass (outside the
// timer) runs the actual micro-benchmarks once.
func BenchmarkSearchMeasuredWarm(b *testing.B) {
	g, err := models.ByName("squeezenet-v1.1")
	if err != nil {
		b.Fatal(err)
	}
	override := map[string][]int{g.InputNames[0]: {1, 3, 32, 32}}
	shapes, err := graph.InferShapes(g, override)
	if err != nil {
		b.Fatal(err)
	}
	cache := filepath.Join(b.TempDir(), "sq.tuning.json")
	cfg := Config{Mode: ModeMeasured, Threads: 2, CachePath: cache, Reps: 1, TopK: 2}
	if _, err := New(g, shapes, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := New(g, shapes, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Report.Measured != 0 {
			b.Fatalf("warm search measured %d candidates", plan.Report.Measured)
		}
	}
}
