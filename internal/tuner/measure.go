package tuner

import (
	"fmt"
	"time"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/graph"
	"mnn/internal/sched"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

// measureBest times each ranked candidate on the real shape and returns the
// fastest, its steady-state ns/op, and how many candidates were actually
// measured. Config.Reps is deliberately small: preparation time is
// user-visible (mnn.Open latency) and the cache amortizes it to zero on
// later opens. A single-candidate list commits without timing anything. A
// candidate whose preparation fails is disqualified rather than fatal — the
// search degrades to the remaining candidates.
func measureBest(a *graph.Conv2DAttrs, inShape []int, ranked []core.ConvCandidate, pool *sched.Pool, reps int, int8Mode bool) (core.ConvDecision, float64, int, error) {
	if len(ranked) == 1 {
		return ranked[0].Decision, 0, 0, nil
	}
	bestIdx := -1
	bestNs := 0.0
	measured := 0
	var lastErr error
	for i, cand := range ranked {
		ns, err := measureCandidate(a, inShape, cand.Decision, pool, reps, int8Mode)
		if err != nil {
			lastErr = err
			continue
		}
		measured++
		if bestIdx < 0 || ns < bestNs {
			bestIdx, bestNs = i, ns
		}
	}
	if bestIdx < 0 {
		return core.ConvDecision{}, 0, measured, fmt.Errorf("every candidate failed to prepare: %w", lastErr)
	}
	return ranked[bestIdx].Decision, bestNs, measured, nil
}

// measureCandidate prepares a one-node convolution through the same
// pre-inference pipeline the engine runs (NC4HW4 activations, planned
// workspaces, the persistent worker pool) with the candidate algorithm
// forced, and times steady-state runs. Timing the real session — not a bare
// kernel loop — makes the measurement include exactly the staging copies and
// layout conversions the algorithm would pay inside a full network. In int8
// mode the backend runs the quantized path, so GEMM-lowered candidates time
// the int8 kernels that would actually execute (per-sample dynamic scales,
// the uncalibrated worst case) while Winograd/sliding time their fp32
// fallbacks — the same split the int8 planner will commit.
func measureCandidate(a *graph.Conv2DAttrs, inShape []int, dec core.ConvDecision, pool *sched.Pool, reps int, int8Mode bool) (float64, error) {
	g := graph.New("tuner-probe")
	g.AddNode(&graph.Node{Name: "in", Op: graph.OpInput, Outputs: []string{"in"},
		Attrs: &graph.InputAttrs{Shape: append([]int(nil), inShape...)}})
	group := a.Group
	if group <= 0 {
		group = 1
	}
	ic := a.InputCount
	if ic == 0 && len(inShape) == 4 {
		ic = inShape[1]
	}
	w := tensor.New(a.OutputCount, ic/group, a.KernelH, a.KernelW)
	tensor.FillRandom(w, 11, 1) // non-zero: the GEMM's zero skip must not flatter one path
	g.AddWeight("w", w)
	b := tensor.New(a.OutputCount)
	tensor.FillRandom(b, 13, 0.1)
	g.AddWeight("b", b)
	attrs := *a
	g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D,
		Inputs: []string{"in"}, Outputs: []string{"conv"},
		WeightNames: []string{"w", "b"}, Attrs: &attrs})
	g.OutputNames = []string{"conv"}

	bk := cpu.New(cpu.Config{
		Threads: pool.Lanes(),
		Pool:    pool,
		Int8:    int8Mode,
		ForceScheme: func(n *graph.Node, _ core.ConvDecision) core.ConvDecision {
			return dec
		},
	})
	// The session is dropped, not Closed: Close would tear down the shared
	// tuning pool, and a dropped session holds no goroutines of its own.
	s, err := session.New(g, session.Config{Backends: []backend.Backend{bk}})
	if err != nil {
		return 0, err
	}
	tensor.FillRandom(s.Input("in"), 17, 1)
	if err := s.Run(nil); err != nil {
		return 0, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := s.Run(nil); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()), nil
}
