package tuner

import (
	"mnn/internal/core"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// ScoreBackends assigns every operator to its cheapest backend by evaluating
// the Equation 4–5 cost terms per node instead of per whole graph: compute
// at the backend's FLOPS (plus t_schedule on accelerators), plus a staging
// transfer whenever an input was produced on a different backend. Compared
// to core.SelectBackend — which prices entire graphs and then falls back per
// unsupported node — this yields finer hybrid schedules: a wide convolution
// can go to the scored GPU while the cheap pointwise ops around it stay on
// the CPU, without paying a transfer for every hop, because the transfer
// term makes oscillation expensive.
//
// providers[0] must be the CPU fallback (the universal backend). The
// returned costs are the per-backend totals of the assigned nodes, for
// diagnostics.
func ScoreBackends(g *graph.Graph, shapes graph.ShapeMap, providers []core.CostProvider) (core.Assignment, core.BackendCosts) {
	assign := core.Assignment{}
	costs := core.BackendCosts{}
	if len(providers) == 0 {
		return assign, costs
	}
	cpuP := providers[0]
	for _, p := range providers {
		costs[p.Name()] = 0
	}
	producedOn := map[string]string{} // tensor name → producing backend
	for _, n := range g.Nodes {
		if n.Op == graph.OpInput {
			// Graph inputs always materialize on the CPU so callers can fill
			// them (the session pins this too).
			assign[n.Name] = cpuP.Name()
			for _, o := range n.Outputs {
				producedOn[o] = cpuP.Name()
			}
			continue
		}
		muls := graph.MULCount(n, shapes)
		best := -1.0
		bestP := cpuP
		for _, p := range providers {
			if !p.Supports(n) {
				continue
			}
			var c float64
			if p.ScheduleOverheadMs() > 0 {
				c = simclock.GPUCostMs(muls, p.FLOPS(), p.ScheduleOverheadMs(), 1)
			} else {
				c = simclock.CPUCostMs(muls, p.FLOPS(), 1)
			}
			c += transferCost(n, shapes, producedOn, p)
			if best < 0 || c < best {
				best, bestP = c, p
			}
		}
		assign[n.Name] = bestP.Name()
		costs[bestP.Name()] += best
		for _, o := range n.Outputs {
			producedOn[o] = bestP.Name()
		}
	}
	return assign, costs
}

// transferCost prices the staging copies a backend would pay to consume
// inputs produced elsewhere: bytes over the host↔device bandwidth, plus the
// dispatch overhead on the accelerator side. CPU-side copies of
// GPU-produced tensors pay bandwidth only (the simulator charges CPU copies
// no scheduling overhead).
func transferCost(n *graph.Node, shapes graph.ShapeMap, producedOn map[string]string, p core.CostProvider) float64 {
	var c float64
	for _, in := range n.Inputs {
		home, ok := producedOn[in]
		if !ok || home == p.Name() {
			continue
		}
		bytes := float64(tensor.NumElements(shapes[in]) * 4)
		c += bytes / gpusim.TransferBytesPerMs
		if p.ScheduleOverheadMs() > 0 {
			c += p.ScheduleOverheadMs()
		}
	}
	return c
}
