package tuner

import (
	"testing"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/models"
)

func newCPUProvider(t *testing.T, dev *device.Profile) *cpu.Backend {
	t.Helper()
	b := cpu.New(cpu.Config{Threads: 1, Device: dev})
	t.Cleanup(func() { b.Close() })
	return b
}

// TestScoreBackendsHybridAssignment: with a simulated GPU whose raw FLOPS
// dwarf the CPU's, the per-node scorer must send the heavy convolutions to
// the GPU, keep unsupported operators on the CPU fallback, and pin graph
// inputs to the CPU — a valid hybrid schedule by construction.
func TestScoreBackendsHybridAssignment(t *testing.T) {
	g, err := models.ByName("mobilenet-v1")
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.ByName("MI6")
	if dev == nil {
		t.Fatal("MI6 device profile missing")
	}
	cpuBk := newCPUProvider(t, dev)
	gpuBk, err := gpusim.New(gpusim.Config{Kind: backend.KindVulkan, Device: dev, ComputeThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gpuBk.Close()
	providers := []core.CostProvider{cpuBk, gpuBk}
	assign, costs := ScoreBackends(g, shapes, providers)

	if len(assign) != len(g.Nodes) {
		t.Fatalf("assignment covers %d nodes, graph has %d", len(assign), len(g.Nodes))
	}
	gpuNodes, cpuNodes := 0, 0
	for _, n := range g.Nodes {
		name, ok := assign[n.Name]
		if !ok {
			t.Fatalf("node %q unassigned", n.Name)
		}
		switch name {
		case cpuBk.Name():
			cpuNodes++
		case gpuBk.Name():
			gpuNodes++
			if !gpuBk.Supports(n) {
				t.Errorf("node %q (%v) assigned to %s which does not support it", n.Name, n.Op, name)
			}
		default:
			t.Errorf("node %q assigned to unknown backend %q", n.Name, name)
		}
		if n.Op == graph.OpInput && name != cpuBk.Name() {
			t.Errorf("graph input %q not pinned to CPU", n.Name)
		}
	}
	if gpuNodes == 0 {
		t.Errorf("no node offloaded to the GPU (cpu=%d); per-node scoring is vacuous", cpuNodes)
	}
	if costs[cpuBk.Name()]+costs[gpuBk.Name()] <= 0 {
		t.Error("scored costs are empty")
	}
}

// TestScoreBackendsCPUOnly: with only the CPU provider, everything lands on
// it (the degenerate schedule).
func TestScoreBackendsCPUOnly(t *testing.T) {
	g, err := models.ByName("squeezenet-v1.1")
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpuBk := newCPUProvider(t, device.Host)
	assign, _ := ScoreBackends(g, shapes, []core.CostProvider{cpuBk})
	for name, b := range assign {
		if b != cpuBk.Name() {
			t.Errorf("node %q assigned to %q with only a CPU provider", name, b)
		}
	}
}
