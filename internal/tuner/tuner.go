// Package tuner implements the paper's semi-automated kernel search: given
// a graph with fixed input sizes, it scores every legal algorithm for each
// convolution with a first-principles FLOP/bytes cost model, optionally
// refines the top candidates with on-device micro-benchmarks on the real
// shapes (closing the model–hardware gap), and persists the winners in a
// versioned per-host tuning cache so the next preparation is fast and
// deterministic. The heuristic of core.SelectConvScheme remains the
// zero-cost default; the tuner is the searchable, testable decision point
// that replaces it when a caller opts in.
package tuner

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"mnn/internal/core"
	"mnn/internal/fault"
	"mnn/internal/graph"
	"mnn/internal/sched"
)

// Mode selects how convolution algorithms are chosen.
type Mode int

const (
	// ModeHeuristic keeps the Equation 2–3 selection of core.SelectConvScheme.
	ModeHeuristic Mode = iota
	// ModeCost scores every legal candidate with the analytic cost model and
	// commits the argmin — no measurement, no cache.
	ModeCost
	// ModeMeasured micro-benchmarks the top-K cost-model candidates on the
	// real shapes and commits the fastest; results persist in the tuning
	// cache so later preparations skip the measurements entirely.
	ModeMeasured
)

func (m Mode) String() string {
	switch m {
	case ModeHeuristic:
		return "heuristic"
	case ModeCost:
		return "cost"
	case ModeMeasured:
		return "measured"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps a mode name (CLI flags, serve model specs) to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "heuristic", "off":
		return ModeHeuristic, nil
	case "cost", "model":
		return ModeCost, nil
	case "measured", "auto":
		return ModeMeasured, nil
	default:
		return ModeHeuristic, fmt.Errorf("tuner: unknown tuning mode %q (want heuristic, cost or measured)", s)
	}
}

// Config parameterizes a search.
type Config struct {
	// Mode selects the search depth. ModeHeuristic returns a nil plan.
	Mode Mode
	// Threads sizes the worker pool the micro-benchmarks dispatch on; it
	// should match the pool the engine will run with so measured ranking
	// reflects real parallel speedups. <1 means 1.
	Threads int
	// Int8 tells the search the engine will execute at int8 precision:
	// micro-benchmarks then time the quantized kernels for GEMM-lowered
	// candidates (what would actually run) instead of their fp32 twins, and
	// cache entries are keyed separately — an fp32 ranking must never decide
	// an int8 engine's schemes, and vice versa.
	Int8 bool
	// CachePath is the tuning-cache file (ModeMeasured only). Empty disables
	// persistence: measurements rerun on every preparation.
	CachePath string
	// ModelKey identifies the model inside the cache file; defaults to the
	// graph's name.
	ModelKey string
	// TopK bounds how many cost-ranked candidates are measured per unique
	// convolution signature (default 3).
	TopK int
	// Reps is the number of timed runs per measured candidate; the minimum
	// is kept (default 3).
	Reps int
	// Fault is the optional fault injector for the tuner.cache.read and
	// tuner.cache.write sites (nil disables injection).
	Fault *fault.Injector
}

// Report summarizes what a search did — the engine exposes it so tests can
// assert, for example, that a warm cache skipped every micro-benchmark.
type Report struct {
	// Mode is the search depth that ran.
	Mode string
	// ConvOps counts convolution nodes covered by decisions.
	ConvOps int
	// GemmOps counts weight-form MatMul nodes covered by packed-vs-direct
	// decisions (cost-only; GEMM kernels are not micro-benchmarked).
	GemmOps int
	// Unique counts distinct convolution signatures (the dedup unit).
	Unique int
	// CacheHits counts signatures resolved from the loaded cache.
	CacheHits int
	// Measured counts candidates actually micro-benchmarked.
	Measured int
	// CacheLoaded / CacheSaved report cache file activity.
	CacheLoaded bool
	CacheSaved  bool
	// CachePath echoes the cache location (empty when persistence is off).
	CachePath string
}

// Plan is the committed outcome of a search: one decision per convolution
// node, ready to override the heuristic during pre-inference.
type Plan struct {
	// Decisions maps node name → the algorithm to prepare.
	Decisions map[string]core.ConvDecision
	// Gemm maps weight-form MatMul node name → whether to pre-pack the
	// weight into GEMM panels (true) or keep the direct row-major kernel
	// (false). Both kernels are bitwise-identical per output element, so
	// this is purely a throughput choice.
	Gemm map[string]bool
	// Report summarizes the search.
	Report Report
}

// GemmScheme adapts the plan to the cpu.Config.GemmScheme hook: it resolves
// the packed-vs-direct choice for a weight-form MatMul node, reporting
// ok=false for nodes the plan does not cover (the backend then keeps its
// default).
func (p *Plan) GemmScheme(n *graph.Node) (packB, ok bool) {
	if p == nil || p.Gemm == nil {
		return false, false
	}
	packB, ok = p.Gemm[n.Name]
	return packB, ok
}

// SchemeFor resolves a node's decision, falling back to the heuristic for
// nodes the plan does not cover (non-conv nodes, resized graphs). The
// signature matches optimizer.PlanInt8With's resolver.
func (p *Plan) SchemeFor(n *graph.Node, inShape []int) core.ConvDecision {
	if p != nil {
		if dec, ok := p.Decisions[n.Name]; ok {
			return dec
		}
	}
	return core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), inShape)
}

// ForceScheme adapts the plan to the cpu.Config.ForceScheme hook.
func (p *Plan) ForceScheme(n *graph.Node, dec core.ConvDecision) core.ConvDecision {
	if p != nil {
		if d, ok := p.Decisions[n.Name]; ok {
			return d
		}
	}
	return dec
}

// Kernel-family throughput factors for the analytic score: the packed-panel
// GEMM paths retire more multiply-equivalents per unit time than the scalar
// sliding loop — but only once the reduction depth K amortizes the panel
// packing (a K=27 stem conv gains nothing from the GEMM, which is why
// sliding wins small-channel stems, the paper's Table 1 first column).
// Calibrated coarsely against this repository's kernels; ModeMeasured
// supersedes these numbers with real timings.
const (
	gemmPeakEff  = 1.35 // asymptotic GEMM advantage over the sliding loop
	gemmHalfK    = 40.0 // reduction depth at which half the advantage is realized
	strassenEff  = 1.25 // 1×1 lowering (the pixel matrix is pre-flattened)
	winogradEff  = 1.0  // arith already counts the algorithmic savings
	directEff    = 1.0  // sliding / depthwise reference
	minStrassenK = 8    // below this the 1×1 GEMM degenerates like tiny-K im2col
)

// Score is the analytic cost of one candidate in multiply-equivalents:
// arithmetic scaled by the kernel family's achieved-throughput factor, plus
// the memory-traffic term weighted as in the Equation 2 extension.
func Score(c core.ConvCandidate) float64 {
	eff := directEff
	switch c.Decision.Scheme {
	case core.SchemeIm2col:
		k := float64(c.GemmK)
		eff = gemmPeakEff * k / (k + gemmHalfK)
	case core.SchemeStrassen1x1:
		eff = strassenEff
		if c.GemmK < minStrassenK {
			eff = gemmPeakEff * float64(c.GemmK) / (float64(c.GemmK) + gemmHalfK)
		}
	case core.SchemeWinograd:
		eff = winogradEff
	}
	if eff <= 0 {
		eff = 1.0
	}
	return c.Arith/eff + core.TrafficCostFactor*c.Traffic
}

// rankCandidates returns the candidates sorted by ascending analytic score.
func rankCandidates(cands []core.ConvCandidate) []core.ConvCandidate {
	ranked := append([]core.ConvCandidate(nil), cands...)
	sort.SliceStable(ranked, func(i, j int) bool { return Score(ranked[i]) < Score(ranked[j]) })
	return ranked
}

// convSite is one unique convolution signature and the nodes sharing it.
// normShape is inShape with the batch normalized to 1: algorithm legality
// is batch-independent, and deciding (and measuring) at batch 1 keeps the
// committed algorithm identical across batch sizes — the serving
// micro-batcher's second engine must pick exactly what the unbatched engine
// picked, or batched results would stop being bitwise identical to
// unbatched ones.
type convSite struct {
	sig       string
	attrs     *graph.Conv2DAttrs
	inShape   []int
	normShape []int
	nodes     []string
}

// collectSites groups the graph's convolutions by tuning signature, in
// first-appearance order so search work is deterministic.
func collectSites(g *graph.Graph, shapes graph.ShapeMap) []*convSite {
	var order []*convSite
	bySig := map[string]*convSite{}
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D {
			continue
		}
		a := n.Attrs.(*graph.Conv2DAttrs)
		inShape := shapes[n.Inputs[0]]
		normShape := append([]int(nil), inShape...)
		if len(normShape) == 4 {
			normShape[0] = 1
		}
		sig := SigConv(a, normShape)
		site, ok := bySig[sig]
		if !ok {
			site = &convSite{sig: sig, attrs: a,
				inShape: append([]int(nil), inShape...), normShape: normShape}
			bySig[sig] = site
			order = append(order, site)
		}
		site.nodes = append(site.nodes, n.Name)
	}
	return order
}

// decisionForScheme maps a (scheme, tile) choice onto the candidate list
// evaluated at the real batch size, so committed decisions carry the right
// EffMULs for the simulated clock even though ranking ran at batch 1.
func decisionForScheme(dec core.ConvDecision, cands []core.ConvCandidate) (core.ConvDecision, bool) {
	for _, c := range cands {
		if c.Decision.Scheme == dec.Scheme && c.Decision.TileH == dec.TileH && c.Decision.TileW == dec.TileW {
			return c.Decision, true
		}
	}
	return core.ConvDecision{}, false
}

// candidateFromCache maps a cache entry back onto the signature's legal
// candidate list. A corrupt or stale entry (unknown scheme, an algorithm the
// predicates reject for this shape) returns false and the search falls back
// to the cost model — a bad cache can degrade performance, never correctness.
func candidateFromCache(e CacheEntry, cands []core.ConvCandidate) (core.ConvDecision, bool) {
	scheme, err := core.ParseConvScheme(e.Scheme)
	if err != nil {
		return core.ConvDecision{}, false
	}
	for _, c := range cands {
		if c.Decision.Scheme != scheme {
			continue
		}
		if scheme == core.SchemeWinograd && (c.Decision.TileH != e.TileH || c.Decision.TileW != e.TileW) {
			continue
		}
		return c.Decision, true
	}
	return core.ConvDecision{}, false
}

// gemmSite is one unique weight-form MatMul signature. Like convSite, the
// deciding shape has its batch normalized to 1 so the committed kernel is
// identical across batch sizes — the packed and direct kernels are bitwise
// equal anyway, but batch-invariant decisions keep the tuning report (and
// any future measured ranking) stable between the serving tier's batched
// and unbatched engines.
type gemmSite struct {
	sig     string
	m, k, n int // batch-1 GEMM dims: m rows, reduction depth k, n columns
	nodes   []string
}

// collectGemmSites groups weight-form MatMul nodes (Heads == 0: activation
// × constant weight) by their batch-1 GEMM signature. Batched QK/AV forms
// have no weight to pack and are skipped.
func collectGemmSites(g *graph.Graph, shapes graph.ShapeMap) []*gemmSite {
	var order []*gemmSite
	bySig := map[string]*gemmSite{}
	for _, n := range g.Nodes {
		if n.Op != graph.OpMatMul {
			continue
		}
		if a := n.Attrs.(*graph.MatMulAttrs); a.Heads > 0 {
			continue
		}
		inShape := shapes[n.Inputs[0]]
		w := g.Weights[n.WeightNames[0]]
		if len(inShape) < 2 || w == nil || w.Rank() != 2 {
			continue
		}
		k, nn := w.Dim(0), w.Dim(1)
		m := 1
		for _, d := range inShape[1 : len(inShape)-1] { // batch normalized to 1
			m *= d
		}
		sig := fmt.Sprintf("gemm/m%d/k%d/n%d", m, k, nn)
		site, ok := bySig[sig]
		if !ok {
			site = &gemmSite{sig: sig, m: m, k: k, n: nn}
			bySig[sig] = site
			order = append(order, site)
		}
		site.nodes = append(site.nodes, n.Name)
	}
	return order
}

// gemmPacked is the analytic packed-vs-direct choice. Packing happens once
// at pre-inference (the weight never changes), so at run time the packed
// panel kernel is never slower once the reduction depth reaches the panel
// width; below it the packed kernel's own tiny-K fallback runs the direct
// loop anyway, so committing direct there skips a pointless pack and the
// panel copy it would retain. m and n are carried for a future measured
// ranking; today's model depends only on k.
func gemmPacked(m, k, n int) bool {
	_, _ = m, n
	return k >= minGemmPackK
}

// minGemmPackK mirrors matmul.PanelWidth: the depth below which the packed
// kernel's own tiny-K fallback makes packing pure overhead.
const minGemmPackK = 16

// New runs the search for a graph whose shapes are already inferred and
// returns the committed plan. ModeHeuristic returns (nil, nil): callers keep
// the built-in selection with zero overhead.
func New(g *graph.Graph, shapes graph.ShapeMap, cfg Config) (*Plan, error) {
	if cfg.Mode == ModeHeuristic {
		return nil, nil
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 3
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.ModelKey == "" {
		cfg.ModelKey = g.Name
	}
	plan := &Plan{
		Decisions: map[string]core.ConvDecision{},
		Report:    Report{Mode: cfg.Mode.String(), CachePath: cfg.CachePath},
	}
	sites := collectSites(g, shapes)
	plan.Report.Unique = len(sites)

	// Weight-form MatMul nodes get a cost-only packed-vs-direct decision in
	// every non-heuristic mode. Both kernels are bitwise-identical, so there
	// is nothing for ModeMeasured to rank that the cost model can get wrong
	// in a correctness-visible way.
	for _, gs := range collectGemmSites(g, shapes) {
		packed := gemmPacked(gs.m, gs.k, gs.n)
		for _, name := range gs.nodes {
			if plan.Gemm == nil {
				plan.Gemm = map[string]bool{}
			}
			plan.Gemm[name] = packed
			plan.Report.GemmOps++
		}
	}

	var cache *Cache
	if cfg.Mode == ModeMeasured {
		if cfg.CachePath != "" {
			if o := cfg.Fault.Hit(fault.SiteCacheRead, cfg.CachePath); o != nil {
				// An injected read fault behaves exactly like a corrupt
				// file: ignore the cache and re-tune — the PR 5 contract
				// that a bad cache can never break an Open.
				_ = o.Apply()
			} else if c, err := LoadCacheFile(cfg.CachePath, cfg.ModelKey); err == nil {
				cache = c
				plan.Report.CacheLoaded = true
			} else if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, ErrCacheStale) && !errors.Is(err, ErrCacheCorrupt) {
				return nil, fmt.Errorf("tuner: reading cache %s: %w", cfg.CachePath, err)
			}
		}
		if cache == nil {
			cache = NewCache(cfg.ModelKey)
		}
	}

	// The micro-benchmark pool is created lazily: a fully warm cache (or
	// ModeCost) never spawns a worker.
	var pool *sched.Pool
	defer func() {
		if pool != nil {
			pool.Close()
		}
	}()
	dirty := false

	for _, site := range sites {
		// Measured rankings depend on how many lanes the kernels fan out
		// over and on the execution precision, so cache entries carry both;
		// one cache file still serves every configuration of the model.
		key := fmt.Sprintf("%s@t%d", site.sig, cfg.Threads)
		if cfg.Int8 {
			key += "i8"
		}
		// Rank and measure at batch 1 (normShape) so the choice is
		// batch-invariant; commit the decision re-evaluated at the real
		// batch so EffMULs stays correct for the simulated clock.
		normCands := core.ConvCandidates(site.attrs, site.normShape)
		realCands := core.ConvCandidates(site.attrs, site.inShape)
		commit := func(d core.ConvDecision) core.ConvDecision {
			if mapped, ok := decisionForScheme(d, realCands); ok {
				return mapped
			}
			// Unreachable while legality is batch-independent; keep the
			// heuristic so a degenerate shape still prepares.
			return core.SelectConvScheme(site.attrs, site.inShape)
		}
		var dec core.ConvDecision
		switch {
		case len(normCands) == 0:
			// Unreachable for valid graphs (im2col is universal).
			dec = core.SelectConvScheme(site.attrs, site.inShape)
		case cfg.Mode == ModeCost:
			dec = commit(rankCandidates(normCands)[0].Decision)
		default: // ModeMeasured
			if e, ok := cache.Entries[key]; ok {
				if d, ok := candidateFromCache(e, normCands); ok {
					dec = commit(d)
					plan.Report.CacheHits++
					break
				}
				// Entry rejected by the legality predicates: drop and re-measure.
				delete(cache.Entries, key)
			}
			ranked := rankCandidates(normCands)
			if len(ranked) > cfg.TopK {
				ranked = ranked[:cfg.TopK]
			}
			if pool == nil {
				pool = sched.New(cfg.Threads)
			}
			best, bestNs, measured, err := measureBest(site.attrs, site.normShape, ranked, pool, cfg.Reps, cfg.Int8)
			if err != nil {
				return nil, fmt.Errorf("tuner: measuring %s: %w", site.sig, err)
			}
			plan.Report.Measured += measured
			dec = commit(best)
			cache.Entries[key] = CacheEntry{
				Scheme: best.Scheme.String(), TileH: best.TileH, TileW: best.TileW, NsPerOp: bestNs,
			}
			dirty = true
		}
		for _, name := range site.nodes {
			plan.Decisions[name] = dec
			plan.Report.ConvOps++
		}
	}

	if cfg.Mode == ModeMeasured && cfg.CachePath != "" && dirty {
		// Re-read and merge just before writing: a concurrent Open sharing
		// the path may have persisted entries since we loaded. Last writer
		// wins per entry, but nobody's measurements are wholesale lost.
		if latest, err := LoadCacheFile(cfg.CachePath, cfg.ModelKey); err == nil {
			for sig, e := range latest.Entries {
				if _, ours := cache.Entries[sig]; !ours {
					cache.Entries[sig] = e
				}
			}
		}
		if o := cfg.Fault.Hit(fault.SiteCacheWrite, cfg.CachePath); o != nil && o.Mode == fault.ModeTorn {
			// Simulated crash mid-persist: tear the write (truncated
			// destination, stale temp left behind) and keep going — the
			// in-memory plan is unaffected; the damage is what the next
			// Open must survive. CacheSaved stays false.
			_ = TornSaveCacheFile(cfg.CachePath, cache)
		} else if err := o.Apply(); err != nil {
			return nil, fmt.Errorf("tuner: writing cache %s: %w", cfg.CachePath, err)
		} else if o == nil {
			if err := SaveCacheFile(cfg.CachePath, cache); err != nil {
				return nil, fmt.Errorf("tuner: writing cache %s: %w", cfg.CachePath, err)
			}
			plan.Report.CacheSaved = true
		}
	}
	return plan, nil
}
