package tuner

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
)

func sampleCache() *Cache {
	c := NewCache("squeezenet-v1.1+40nodes")
	c.Entries["k3x3_s2x2_d1x1_p0x0m0_g1_oc64_in1x3x64x64_a1"] = CacheEntry{Scheme: "sliding", NsPerOp: 120000}
	c.Entries["k1x1_s1x1_d1x1_p0x0m0_g1_oc16_in1x64x16x16_a1"] = CacheEntry{Scheme: "strassen-1x1", NsPerOp: 45000}
	c.Entries["k3x3_s1x1_d1x1_p1x1m0_g1_oc64_in1x16x16x16_a1"] = CacheEntry{Scheme: "winograd", TileH: 4, TileW: 4, NsPerOp: 200000}
	return c
}

// TestCacheEncodeDecodeEncodeIdentity: the persisted form round-trips
// byte-identically, so repeated tunings never churn the file.
func TestCacheEncodeDecodeEncodeIdentity(t *testing.T) {
	c := sampleCache()
	first, err := EncodeCache(c)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCache(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeCache(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("encode→decode→encode changed the bytes:\n%s\nvs\n%s", first, second)
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "dir", "model.tuning.json")
	c := sampleCache()
	if err := SaveCacheFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCacheFile(path, c.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != c.Host || got.Model != c.Model || len(got.Entries) != len(c.Entries) {
		t.Fatalf("round trip mangled the cache: %+v vs %+v", got, c)
	}
	for sig, e := range c.Entries {
		if got.Entries[sig] != e {
			t.Errorf("entry %q: %+v != %+v", sig, got.Entries[sig], e)
		}
	}
}

func TestCacheMismatchesAreStale(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, c *Cache, mangle func([]byte) []byte) string {
		data, err := EncodeCache(c)
		if err != nil {
			t.Fatal(err)
		}
		if mangle != nil {
			data = mangle(data)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	hostMismatch := sampleCache()
	hostMismatch.Host = "plan9/mips-c420"
	if _, err := LoadCacheFile(write("host.json", hostMismatch, nil), hostMismatch.Model); !errors.Is(err, ErrCacheStale) {
		t.Errorf("host mismatch: got %v, want ErrCacheStale", err)
	}
	// A different model is NOT stale: entries are keyed by signature+lanes,
	// which fully determine a measurement on this host, so models sharing a
	// cache path merge instead of clobbering each other's results.
	shared, err := LoadCacheFile(write("model.json", sampleCache(), nil), "other-model")
	if err != nil {
		t.Errorf("model mismatch: got %v, want shared entries", err)
	} else if len(shared.Entries) != len(sampleCache().Entries) {
		t.Errorf("model mismatch dropped entries: %d of %d", len(shared.Entries), len(sampleCache().Entries))
	}
	versionBump := func(data []byte) []byte {
		return bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	}
	if _, err := LoadCacheFile(write("version.json", sampleCache(), versionBump), sampleCache().Model); !errors.Is(err, ErrCacheStale) {
		t.Errorf("version mismatch: got %v, want ErrCacheStale", err)
	}
	if _, err := LoadCacheFile(write("corrupt.json", sampleCache(), func(d []byte) []byte { return d[:len(d)/2] }), sampleCache().Model); !errors.Is(err, ErrCacheCorrupt) {
		t.Errorf("truncated file: got %v, want ErrCacheCorrupt", err)
	}
	if _, err := LoadCacheFile(filepath.Join(dir, "missing.json"), "m"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want ErrNotExist", err)
	}
}

// TestStaleCacheFallsBackToSearch: a search pointed at a stale or corrupt
// cache must not fail — it re-tunes from the cost model and rewrites the
// file for the current host.
func TestStaleCacheFallsBackToSearch(t *testing.T) {
	g, err := models.ByName("squeezenet-v1.1")
	if err != nil {
		t.Fatal(err)
	}
	override := map[string][]int{g.InputNames[0]: {1, 3, 32, 32}}
	shapes, err := graph.InferShapes(g, override)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string]string{
		"corrupt.json": `{"version": 1, "host": `,
		"garbage.json": strings.Repeat("\x00\xff", 100),
		"version.json": `{"version": 7, "host": "x", "model": "y", "entries": {}}`,
		"empty.json":   ``,
	} {
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		plan, err := New(g, shapes, Config{Mode: ModeMeasured, Threads: 2, CachePath: path, Reps: 1, TopK: 2})
		if err != nil {
			t.Fatalf("%s: search failed instead of falling back: %v", name, err)
		}
		if plan.Report.CacheLoaded {
			t.Errorf("%s: unusable cache reported as loaded", name)
		}
		if !plan.Report.CacheSaved {
			t.Errorf("%s: search did not rewrite the unusable cache", name)
		}
		// The rewritten file must decode cleanly and apply to this host+model.
		if _, err := LoadCacheFile(path, g.Name); err != nil {
			t.Errorf("%s: rewritten cache does not load: %v", name, err)
		}
	}
}

// TestSharedCachePathMergesAcrossModels: two models tuned against one cache
// file accumulate entries instead of clobbering each other — alternating
// loads stay warm rather than re-measuring forever.
func TestSharedCachePathMergesAcrossModels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.json")
	tune := func(net string) Report {
		g, err := models.ByName(net)
		if err != nil {
			t.Fatal(err)
		}
		override := map[string][]int{g.InputNames[0]: {1, 3, 32, 32}}
		shapes, err := graph.InferShapes(g, override)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := New(g, shapes, Config{Mode: ModeMeasured, Threads: 2, CachePath: path, Reps: 1, TopK: 2})
		if err != nil {
			t.Fatal(err)
		}
		return plan.Report
	}
	if r := tune("squeezenet-v1.1"); r.Measured == 0 {
		t.Fatalf("first model did not measure: %+v", r)
	}
	if r := tune("mobilenet-v1"); r.Measured == 0 {
		t.Fatalf("second model did not measure: %+v", r)
	}
	for _, net := range []string{"squeezenet-v1.1", "mobilenet-v1"} {
		if r := tune(net); r.Measured != 0 || r.CacheHits != r.Unique {
			t.Errorf("%s re-tuned against the shared cache: %+v", net, r)
		}
	}
}

// TestIllegalCacheEntryIsIgnored: an entry naming an algorithm the legality
// predicates reject for its signature is dropped and re-measured — a
// hand-edited or stale cache can degrade performance but never correctness.
func TestIllegalCacheEntryIsIgnored(t *testing.T) {
	g, err := models.ByName("mobilenet-v1")
	if err != nil {
		t.Fatal(err)
	}
	override := map[string][]int{g.InputNames[0]: {1, 3, 32, 32}}
	shapes, err := graph.InferShapes(g, override)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "poisoned.json")
	cfg := Config{Mode: ModeMeasured, Threads: 2, CachePath: path, Reps: 1, TopK: 2}
	if _, err := New(g, shapes, cfg); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCacheFile(path, "mobilenet-v1")
	if err != nil {
		t.Fatal(err)
	}
	// Poison every entry with an illegal algorithm (winograd on depthwise and
	// 1×1 layers alike) plus one unknown scheme name.
	for sig := range c.Entries {
		c.Entries[sig] = CacheEntry{Scheme: "winograd", TileH: 4, TileW: 4}
	}
	for sig := range c.Entries {
		c.Entries[sig] = CacheEntry{Scheme: "quantum-annealing"}
		break
	}
	if err := SaveCacheFile(path, c); err != nil {
		t.Fatal(err)
	}
	plan, err := New(g, shapes, cfg)
	if err != nil {
		t.Fatalf("poisoned cache broke the search: %v", err)
	}
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D {
			continue
		}
		a := n.Attrs.(*graph.Conv2DAttrs)
		dec := plan.Decisions[n.Name]
		if a.IsDepthwise() && dec.Scheme.String() == "winograd" {
			t.Errorf("node %q: poisoned winograd entry survived on a depthwise conv", n.Name)
		}
	}
	if plan.Report.Measured == 0 {
		t.Error("poisoned entries were not re-measured")
	}
}
