package tensor

import (
	"testing"
	"testing/quick"
)

func TestNumElements(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{1, 3, 224, 224}, 150528},
		{[]int{4, 0, 2}, 0},
	}
	for _, c := range cases {
		if got := NumElements(c.shape); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestUpDivAlignUp(t *testing.T) {
	if UpDiv(7, 4) != 2 || UpDiv(8, 4) != 2 || UpDiv(9, 4) != 3 || UpDiv(0, 4) != 0 {
		t.Fatal("UpDiv wrong")
	}
	if AlignUp(7, 4) != 8 || AlignUp(8, 4) != 8 || AlignUp(1, 16) != 16 {
		t.Fatal("AlignUp wrong")
	}
}

func TestPhysicalLenNC4HW4(t *testing.T) {
	// 3 channels pad to 4, 5 channels pad to 8.
	if got := PhysicalLen(NC4HW4, []int{1, 3, 2, 2}); got != 1*1*2*2*4 {
		t.Errorf("PhysicalLen c=3: %d", got)
	}
	if got := PhysicalLen(NC4HW4, []int{2, 5, 3, 3}); got != 2*2*3*3*4 {
		t.Errorf("PhysicalLen c=5: %d", got)
	}
	if got := PhysicalLen(NCHW, []int{2, 5, 3, 3}); got != 90 {
		t.Errorf("PhysicalLen NCHW: %d", got)
	}
}

func TestSetAtAcrossLayouts(t *testing.T) {
	for _, layout := range []Layout{NCHW, NHWC, NC4HW4} {
		tt := NewWithLayout(layout, 2, 5, 3, 4)
		want := map[[4]int]float32{}
		r := NewRNG(7)
		for n := 0; n < 2; n++ {
			for c := 0; c < 5; c++ {
				for h := 0; h < 3; h++ {
					for w := 0; w < 4; w++ {
						v := r.Float32()
						tt.Set(n, c, h, w, v)
						want[[4]int{n, c, h, w}] = v
					}
				}
			}
		}
		for k, v := range want {
			if got := tt.At(k[0], k[1], k[2], k[3]); got != v {
				t.Fatalf("%s: At%v = %v, want %v", layout, k, got, v)
			}
		}
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	src := NewRandom(42, 1, 2, 7, 5, 6)
	for _, mid := range []Layout{NHWC, NC4HW4} {
		conv := src.ToLayout(mid)
		back := conv.ToLayout(NCHW)
		if MaxAbsDiff(src, back) != 0 {
			t.Errorf("round trip through %s not exact", mid)
		}
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(seed uint64, cRaw, hRaw, wRaw uint8) bool {
		c := int(cRaw)%13 + 1
		h := int(hRaw)%9 + 1
		w := int(wRaw)%9 + 1
		src := NewRandom(seed, 1, 1, c, h, w)
		return MaxAbsDiff(src, src.ToLayout(NC4HW4).ToLayout(NCHW)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNC4HW4PaddingIsZero(t *testing.T) {
	tt := NewWithLayout(NC4HW4, 1, 3, 2, 2)
	tt.Fill(1)
	// Physical buffer has channel 3 (the pad slot) interleaved; every 4th
	// element with index%4==3 must remain zero.
	for i, v := range tt.Data() {
		if i%4 == 3 && v != 0 {
			t.Fatalf("pad slot %d = %v, want 0", i, v)
		}
		if i%4 != 3 && v != 1 {
			t.Fatalf("data slot %d = %v, want 1", i, v)
		}
	}
}

func TestCopyFromCrossLayout(t *testing.T) {
	src := NewRandom(3, 1, 1, 6, 4, 4)
	dst := NewWithLayout(NC4HW4, 1, 6, 4, 4)
	dst.CopyFrom(src)
	if MaxAbsDiff(src, dst) != 0 {
		t.Fatal("cross-layout CopyFrom lost data")
	}
}

func TestReshape(t *testing.T) {
	src := NewRandom(9, 1, 2, 3, 4, 5)
	r := src.Reshape(6, 20)
	if r.Rank() != 2 || r.Dim(0) != 6 || r.Dim(1) != 20 {
		t.Fatalf("bad reshape dims: %v", r.Shape())
	}
	// Shared buffer: mutate through reshape, observe in src.
	r.Data()[0] = 123
	if src.Data()[0] != 123 {
		t.Fatal("Reshape must share the backing buffer")
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestCloneIndependence(t *testing.T) {
	a := NewRandom(11, 1, 1, 2, 2, 2)
	b := a.Clone()
	b.Data()[0] += 5
	if a.Data()[0] == b.Data()[0] {
		t.Fatal("Clone must deep copy")
	}
}

func TestWrapBuffer(t *testing.T) {
	buf := make([]float32, 100)
	tt := WrapBuffer(buf, NCHW, 2, 3, 4)
	if tt.NumElements() != 24 {
		t.Fatal("wrong element count")
	}
	tt.Data()[5] = 9
	if buf[5] != 9 {
		t.Fatal("WrapBuffer must alias the buffer")
	}
}

func TestAllClose(t *testing.T) {
	a := NewRandom(1, 1, 1, 2, 3, 3)
	b := a.Clone()
	if !AllClose(a, b, 0, 0) {
		t.Fatal("identical tensors must be close")
	}
	b.Data()[0] += 1e-3
	if AllClose(a, b, 0, 1e-5) {
		t.Fatal("should not be close at atol 1e-5")
	}
	if !AllClose(a, b, 0, 1e-2) {
		t.Fatal("should be close at atol 1e-2")
	}
}

func TestFromDataPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for OOB index")
		}
	}()
	New(1, 1, 2, 2).At(0, 0, 2, 0)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG must be deterministic")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestFillRandomRange(t *testing.T) {
	tt := New(1, 4, 8, 8)
	FillRandom(tt, 123, 0.5)
	for _, v := range tt.Data() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("value %v outside [-0.5, 0.5)", v)
		}
	}
}

func TestInt8Tensor(t *testing.T) {
	q := QuantParams{Scale: 0.1}
	tt := NewInt8(q, 2, 3)
	if tt.DType() != Int8 || len(tt.Int8Data()) != 6 {
		t.Fatal("bad int8 tensor")
	}
	if tt.Quant.Scale != 0.1 {
		t.Fatal("quant params lost")
	}
}

func TestString(t *testing.T) {
	s := NewWithLayout(NC4HW4, 1, 64, 56, 56).String()
	if s != "Tensor[1,64,56,56] NC4HW4 float32" {
		t.Fatalf("String() = %q", s)
	}
}
