package tensor

// Deterministic pseudo-random filling for synthetic weights and test inputs.
// A tiny xorshift generator keeps the package dependency-free and makes every
// benchmark input reproducible across runs and platforms.

// RNG is a small deterministic pseudo-random generator (xorshift64*).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped to a constant).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 advances the generator.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform value in [-1, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40)/float32(1<<24)*2 - 1
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// FillRandom fills the logical elements of t with uniform values in
// [-scale, scale) from a deterministic stream.
func FillRandom(t *Tensor, seed uint64, scale float32) {
	r := NewRNG(seed)
	if t.layout != NC4HW4 || len(t.shape) != 4 {
		d := t.Data()
		for i := range d {
			d[i] = r.Float32() * scale
		}
		return
	}
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					t.Set(n, c, h, w, r.Float32()*scale)
				}
			}
		}
	}
}

// NewRandom allocates an NCHW tensor filled from the deterministic stream.
func NewRandom(seed uint64, scale float32, shape ...int) *Tensor {
	t := New(shape...)
	FillRandom(t, seed, scale)
	return t
}
