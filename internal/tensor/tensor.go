// Package tensor provides the dense tensor type used throughout the engine,
// including the NC4HW4 packed layout that MNN introduces for SIMD-friendly
// kernels (Section 3.3.1 of the paper).
//
// A Tensor owns a flat []float32 buffer plus shape and layout metadata.
// Layout conversions between NCHW, NHWC and NC4HW4 are lossless round trips.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Layout describes how the logical N×C×H×W elements are arranged in memory.
type Layout uint8

const (
	// NCHW is the canonical row-major layout: index = ((n*C+c)*H+h)*W+w.
	NCHW Layout = iota
	// NHWC places channels innermost: index = ((n*H+h)*W+w)*C+c.
	NHWC
	// NC4HW4 packs channels into groups of 4 so that 4 channel values of
	// the same spatial position are contiguous:
	// index = (((n*ceil(C/4)+c/4)*H+h)*W+w)*4 + c%4.
	// This is the layout MNN uses to vectorize the Winograd Hadamard stage
	// and most CPU kernels (paper Section 3.3.1, "NC4HW4").
	NC4HW4
)

// Pack is the channel-packing factor of the NC4HW4 layout (V in the paper).
const Pack = 4

func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case NHWC:
		return "NHWC"
	case NC4HW4:
		return "NC4HW4"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// DataType enumerates element types. The engine computes in float32; int8 is
// used by the post-training quantization path.
type DataType uint8

const (
	Float32 DataType = iota
	Int8
	Int32
)

func (d DataType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	case Int32:
		return "int32"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(d))
	}
}

// Tensor is a dense n-dimensional array. Rank-4 tensors are interpreted as
// N×C×H×W regardless of the physical Layout. Lower-rank tensors (biases,
// FC weights) always use the trivial row-major layout and report NCHW.
type Tensor struct {
	shape  []int
	layout Layout
	dtype  DataType

	// Exactly one of the following backing stores is non-nil, matching dtype.
	f32 []float32
	i8  []int8
	i32 []int32

	// Quant carries quantization parameters when dtype == Int8.
	Quant *QuantParams
}

// QuantParams holds symmetric per-tensor quantization metadata.
type QuantParams struct {
	Scale     float32 // real = quantized * Scale
	ZeroPoint int32   // always 0 for symmetric quantization
}

// New allocates a zero-filled float32 tensor with the given shape in NCHW.
func New(shape ...int) *Tensor {
	return NewWithLayout(NCHW, shape...)
}

// NewWithLayout allocates a zero-filled float32 tensor in the given layout.
// For NC4HW4 the physical buffer is padded up to a multiple of Pack channels.
func NewWithLayout(layout Layout, shape ...int) *Tensor {
	t := &Tensor{shape: cloneInts(shape), layout: layout, dtype: Float32}
	t.f32 = make([]float32, t.PhysicalLen())
	return t
}

// NewInt8 allocates a zero-filled int8 tensor (NCHW physical order).
func NewInt8(q QuantParams, shape ...int) *Tensor {
	t := &Tensor{shape: cloneInts(shape), layout: NCHW, dtype: Int8, Quant: &q}
	t.i8 = make([]int8, t.PhysicalLen())
	return t
}

// NewInt32 allocates a zero-filled int32 tensor (NCHW physical order).
func NewInt32(shape ...int) *Tensor {
	t := &Tensor{shape: cloneInts(shape), layout: NCHW, dtype: Int32}
	t.i32 = make([]int32, t.PhysicalLen())
	return t
}

// FromData wraps data (not copied) as an NCHW float32 tensor.
// len(data) must equal the element count of shape.
func FromData(data []float32, shape ...int) *Tensor {
	n := NumElements(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromData length %d != shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: cloneInts(shape), layout: NCHW, dtype: Float32, f32: data}
}

// WrapBuffer wraps a pre-allocated buffer (e.g. an arena slice from the
// memory planner) as a tensor of the given layout. The buffer length must be
// at least PhysicalLen for the shape/layout.
func WrapBuffer(buf []float32, layout Layout, shape ...int) *Tensor {
	t := &Tensor{shape: cloneInts(shape), layout: layout, dtype: Float32}
	need := t.PhysicalLen()
	if len(buf) < need {
		panic(fmt.Sprintf("tensor: WrapBuffer length %d < required %d for %v %s", len(buf), need, shape, layout))
	}
	t.f32 = buf[:need]
	return t
}

// Shape returns the logical shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Layout returns the physical layout.
func (t *Tensor) Layout() Layout { return t.layout }

// DType returns the element type.
func (t *Tensor) DType() DataType { return t.dtype }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumElements returns the logical element count (unpadded).
func (t *Tensor) NumElements() int { return NumElements(t.shape) }

// Data returns the raw float32 backing buffer (physical order, including
// NC4HW4 padding). Panics for non-float32 tensors.
func (t *Tensor) Data() []float32 {
	if t.dtype != Float32 {
		panic("tensor: Data called on " + t.dtype.String() + " tensor")
	}
	return t.f32
}

// Int8Data returns the raw int8 backing buffer.
func (t *Tensor) Int8Data() []int8 {
	if t.dtype != Int8 {
		panic("tensor: Int8Data called on " + t.dtype.String() + " tensor")
	}
	return t.i8
}

// Int32Data returns the raw int32 backing buffer.
func (t *Tensor) Int32Data() []int32 {
	if t.dtype != Int32 {
		panic("tensor: Int32Data called on " + t.dtype.String() + " tensor")
	}
	return t.i32
}

// Batch, Channels, Height, Width interpret the tensor as N×C×H×W.
// They panic if the rank is not 4.
func (t *Tensor) Batch() int    { t.mustRank4(); return t.shape[0] }
func (t *Tensor) Channels() int { t.mustRank4(); return t.shape[1] }
func (t *Tensor) Height() int   { t.mustRank4(); return t.shape[2] }
func (t *Tensor) Width() int    { t.mustRank4(); return t.shape[3] }

func (t *Tensor) mustRank4() {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: rank-4 accessor on rank-%d tensor", len(t.shape)))
	}
}

// PhysicalLen returns the number of elements in the backing buffer,
// including NC4HW4 channel padding.
func (t *Tensor) PhysicalLen() int { return PhysicalLen(t.layout, t.shape) }

// PhysicalLen computes the backing-buffer length for a shape in a layout.
func PhysicalLen(layout Layout, shape []int) int {
	if layout == NC4HW4 {
		if len(shape) != 4 {
			panic(fmt.Sprintf("tensor: NC4HW4 requires rank 4, got %v", shape))
		}
		n, c, h, w := shape[0], shape[1], shape[2], shape[3]
		return n * UpDiv(c, Pack) * h * w * Pack
	}
	return NumElements(shape)
}

// NumElements multiplies the dims of shape. An empty shape has one element
// (scalar); any zero dim yields zero.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// UpDiv returns ceil(a/b) for positive b.
func UpDiv(a, b int) int { return (a + b - 1) / b }

// AlignUp rounds a up to the next multiple of b.
func AlignUp(a, b int) int { return UpDiv(a, b) * b }

// At reads the element at NCHW logical coordinates regardless of layout.
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.f32[t.offset(n, c, h, w)]
}

// Set writes the element at NCHW logical coordinates regardless of layout.
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.f32[t.offset(n, c, h, w)] = v
}

func (t *Tensor) offset(n, c, h, w int) int {
	t.mustRank4()
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if n < 0 || n >= N || c < 0 || c >= C || h < 0 || h >= H || w < 0 || w >= W {
		panic(fmt.Sprintf("tensor: index (%d,%d,%d,%d) out of range %v", n, c, h, w, t.shape))
	}
	switch t.layout {
	case NCHW:
		return ((n*C+c)*H+h)*W + w
	case NHWC:
		return ((n*H+h)*W+w)*C + c
	case NC4HW4:
		c4 := UpDiv(C, Pack)
		return (((n*c4+c/Pack)*H+h)*W+w)*Pack + c%Pack
	default:
		panic("tensor: unknown layout")
	}
}

// Reshape returns a tensor sharing the same buffer with a new shape. Only
// valid for NCHW/NHWC-free tensors (physical order == logical order) whose
// element count matches.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if t.layout == NC4HW4 {
		panic("tensor: Reshape on NC4HW4 tensor; convert layout first")
	}
	if NumElements(shape) != t.NumElements() {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor{shape: cloneInts(shape), layout: NCHW, dtype: t.dtype, f32: t.f32, i8: t.i8, i32: t.i32, Quant: t.Quant}
}

// SetBoundedShape overwrites the tensor's shape in place without touching the
// backing buffer, which keeps its planned (max-shape) capacity. This is the
// dynamic-shape primitive: the logical content becomes the flat row-major
// prefix of the buffer. The new shape must have the same rank and fit the
// existing buffer; only flat layouts (NCHW on rank != 4 data, or rank-4 NCHW)
// are supported. No allocation occurs.
func (t *Tensor) SetBoundedShape(shape []int) error {
	if t.layout == NC4HW4 {
		return fmt.Errorf("tensor: SetBoundedShape on NC4HW4 tensor")
	}
	if len(shape) != len(t.shape) {
		return fmt.Errorf("tensor: SetBoundedShape rank %d -> %d", len(t.shape), len(shape))
	}
	need := PhysicalLen(t.layout, shape)
	if need > len(t.f32) {
		return fmt.Errorf("tensor: SetBoundedShape %v needs %d floats, buffer holds %d", shape, need, len(t.f32))
	}
	copy(t.shape, shape)
	return nil
}

// MinNormalScale is the smallest normal float32 (0x1p-126), the floor for
// symmetric int8 quantization scales: a subnormal scale loses mantissa
// precision and breaks the error ≤ scale/2 round-trip bound.
const MinNormalScale = 1.1754943508222875e-38

// QuantScale derives the symmetric int8 quantization scale from a max-abs
// range observation: maxAbs/127, where an all-zero range yields scale 1 (so
// exact zeros round-trip exactly) and subnormal results clamp to
// MinNormalScale. Every scale producer — the offline quantizer, the
// calibration pass, and the runtime kernels' dynamic per-sample path — must
// derive scales through this one function so calibrated and dynamic
// quantization can never diverge on the same data.
func QuantScale(maxAbs float64) float32 {
	scale := float32(maxAbs / 127)
	if scale == 0 {
		return 1
	}
	if scale < MinNormalScale {
		return MinNormalScale
	}
	return scale
}

// MaxAbs returns the largest absolute value among the logical elements of
// t. NC4HW4 padding lanes are excluded: arena-backed buffers recycle bytes
// across steps, so pad lanes can hold stale values that must not leak into
// range observations (quantization scales, calibration).
func (t *Tensor) MaxAbs() float64 {
	if t.layout != NC4HW4 || len(t.shape) != 4 || t.shape[1]%Pack == 0 {
		// No pad lanes: the physical buffer is exactly the logical content.
		var m float32
		for _, v := range t.f32 {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		return float64(m)
	}
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	c4 := UpDiv(C, Pack)
	full := C / Pack // fully-used channel blocks
	hw := H * W
	var m float32
	for n := 0; n < N; n++ {
		base := n * c4 * hw * Pack
		for _, v := range t.f32[base : base+full*hw*Pack] {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		rem := C - full*Pack
		tail := t.f32[base+full*hw*Pack : base+c4*hw*Pack]
		for p := 0; p < hw; p++ {
			for l := 0; l < rem; l++ {
				v := tail[p*Pack+l]
				if v < 0 {
					v = -v
				}
				if v > m {
					m = v
				}
			}
		}
	}
	return float64(m)
}

// Dequantize converts a symmetric int8 tensor back to a fresh float32
// tensor using its Quant scale. It errors on non-int8 input (use the tensor
// directly) so callers on the model-load path can reject corrupt data
// instead of panicking.
func (t *Tensor) Dequantize() (*Tensor, error) {
	if t.dtype != Int8 {
		return nil, fmt.Errorf("tensor: Dequantize on %s tensor (want int8)", t.dtype)
	}
	scale := float64(1)
	if t.Quant != nil {
		scale = float64(t.Quant.Scale)
	}
	out := New(t.shape...)
	d := out.Data()
	for i, v := range t.i8 {
		// Compute in float64 and clamp: for a tensor whose max-abs sits at
		// the top of the float32 range, 127·scale can round past MaxFloat32
		// and a float32 multiply would overflow the round trip to ±Inf.
		x := float64(v) * scale
		if x > math.MaxFloat32 {
			x = math.MaxFloat32
		} else if x < -math.MaxFloat32 {
			x = -math.MaxFloat32
		}
		d[i] = float32(x)
	}
	return out, nil
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{shape: cloneInts(t.shape), layout: t.layout, dtype: t.dtype}
	if t.Quant != nil {
		q := *t.Quant
		out.Quant = &q
	}
	switch t.dtype {
	case Float32:
		out.f32 = append([]float32(nil), t.f32...)
	case Int8:
		out.i8 = append([]int8(nil), t.i8...)
	case Int32:
		out.i32 = append([]int32(nil), t.i32...)
	}
	return out
}

// Zero clears the backing buffer.
func (t *Tensor) Zero() {
	switch t.dtype {
	case Float32:
		for i := range t.f32 {
			t.f32[i] = 0
		}
	case Int8:
		for i := range t.i8 {
			t.i8[i] = 0
		}
	case Int32:
		for i := range t.i32 {
			t.i32[i] = 0
		}
	}
}

// Fill sets every logical element to v (padding slots are left untouched).
func (t *Tensor) Fill(v float32) {
	if t.layout != NC4HW4 || len(t.shape) != 4 {
		for i := range t.f32 {
			t.f32[i] = v
		}
		return
	}
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					t.Set(n, c, h, w, v)
				}
			}
		}
	}
}

// ToLayout converts the tensor into the target layout, returning a new
// tensor (or the receiver when the layout already matches).
func (t *Tensor) ToLayout(target Layout) *Tensor {
	if t.layout == target {
		return t
	}
	if len(t.shape) != 4 {
		// Non-rank-4 tensors are layout-free; just relabel.
		out := t.Clone()
		out.layout = target
		return out
	}
	out := NewWithLayout(target, t.shape...)
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					out.Set(n, c, h, w, t.At(n, c, h, w))
				}
			}
		}
	}
	return out
}

// CopyFrom copies logical contents from src (shapes must match; layouts may
// differ). Fast path for identical layouts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !EqualShape(t.shape, src.shape) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape))
	}
	if t.layout == src.layout {
		copy(t.f32, src.f32)
		return
	}
	if len(t.shape) != 4 {
		copy(t.f32, src.f32)
		return
	}
	N, C, H, W := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					t.Set(n, c, h, w, src.At(n, c, h, w))
				}
			}
		}
	}
}

// EqualShape reports whether two shapes are identical.
func EqualShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between the
// logical contents of a and b (layouts may differ). Shapes must match.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !EqualShape(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.shape, b.shape))
	}
	if len(a.shape) == 4 {
		var m float64
		N, C, H, W := a.shape[0], a.shape[1], a.shape[2], a.shape[3]
		for n := 0; n < N; n++ {
			for c := 0; c < C; c++ {
				for h := 0; h < H; h++ {
					for w := 0; w < W; w++ {
						d := math.Abs(float64(a.At(n, c, h, w)) - float64(b.At(n, c, h, w)))
						if d > m {
							m = d
						}
					}
				}
			}
		}
		return m
	}
	var m float64
	for i := range a.f32 {
		d := math.Abs(float64(a.f32[i]) - float64(b.f32[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element of a and b differs by at most
// atol + rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !EqualShape(a.shape, b.shape) {
		return false
	}
	an, bn := a.ToLayout(NCHW), b.ToLayout(NCHW)
	for i := range an.f32 {
		av, bv := float64(an.f32[i]), float64(bn.f32[i])
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}

// String renders a compact description, e.g. "Tensor[1,64,56,56] NC4HW4 float32".
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor[")
	for i, d := range t.shape {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteString("] ")
	b.WriteString(t.layout.String())
	b.WriteByte(' ')
	b.WriteString(t.dtype.String())
	return b.String()
}

func cloneInts(s []int) []int { return append([]int(nil), s...) }
