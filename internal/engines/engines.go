// Package engines models the competing mobile inference engines of the
// paper's evaluation — NCNN, MACE, TF-Lite, CoreML and TVM — as scheduling
// policies plus calibrated per-operator efficiency factors over the same
// Equation 5 cost substrate that prices MNN itself.
//
// The real binaries cannot run here (no phones, no GPU drivers; DESIGN.md
// substitution #4), so each baseline is characterized by its published
// strategy:
//
//   - NCNN/MACE: manual case-by-case kernels — excellent on the handful of
//     shapes they hand-optimized, an order of magnitude off elsewhere
//     (the paper's Figure 8 shows NCNN's 1×7/7×1 blind spot on
//     Inception-v3);
//   - TF-Lite: im2col+GEMM everywhere — uniform but never algorithmically
//     optimal, and its OpenGL backend degrades on wide convolutions
//     (Figure 7's ResNet-18 row);
//   - CoreML: Apple-tuned Metal, slightly ahead of portable engines on iOS
//     GPUs, unavailable elsewhere;
//   - TVM: offline auto-tuned kernels — near-peak once tuned, but tuning
//     and compiling cost minutes per (model, device) pair (Table 5);
//   - MNN: this repository's engine — semi-automated search: effective
//     MULs after Winograd/Strassen scheme selection at efficiency 1.0.
//
// Every factor below is a behavioral calibration, not a measurement of the
// named product.
package engines

import (
	"fmt"

	"mnn/internal/backend"
	"mnn/internal/core"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/gpusim"
	"mnn/internal/simclock"
)

// Engine identifies a simulated engine.
type Engine string

const (
	MNN    Engine = "MNN"
	NCNN   Engine = "NCNN"
	MACE   Engine = "MACE"
	TFLite Engine = "TF-Lite"
	CoreML Engine = "CoreML"
	TVM    Engine = "TVM"
)

// All lists the comparison engines of Figure 7 (TVM is compared separately
// in Figure 9).
func All() []Engine { return []Engine{NCNN, MACE, TFLite, CoreML, MNN} }

// Mode selects CPU (with thread count) or GPU (with API) execution.
type Mode struct {
	GPU     bool
	Threads int          // CPU thread count
	API     backend.Kind // GPU API personality
}

func (m Mode) String() string {
	if m.GPU {
		return m.API.String()
	}
	return fmt.Sprintf("CPU%d", m.Threads)
}

// GPUAPIs returns which GPU APIs an engine ships on a given OS, per Table 4.
func GPUAPIs(e Engine, os string) []backend.Kind {
	switch e {
	case MNN:
		if os == "iOS" {
			return []backend.Kind{backend.KindMetal}
		}
		return []backend.Kind{backend.KindOpenCL, backend.KindOpenGL, backend.KindVulkan}
	case NCNN:
		return []backend.Kind{backend.KindVulkan} // iOS+Android per Table 4
	case MACE:
		if os == "iOS" {
			return nil // Android only
		}
		return []backend.Kind{backend.KindOpenCL}
	case TFLite:
		if os == "iOS" {
			return []backend.Kind{backend.KindMetal}
		}
		return []backend.Kind{backend.KindOpenGL}
	case CoreML:
		if os == "iOS" {
			return []backend.Kind{backend.KindMetal}
		}
		return nil
	default:
		return nil
	}
}

// SupportsDevice reports whether the engine runs on the device's OS at all.
func SupportsDevice(e Engine, dev *device.Profile) bool {
	switch e {
	case CoreML:
		return dev.OS == "iOS"
	case MACE:
		return dev.OS == "Android"
	default:
		return true
	}
}

// convClass buckets a convolution into the shapes manual engines optimize.
type convClass uint8

const (
	classCommon   convClass = iota // 1×1, 3×3 s1/s2, 5×5, depthwise 3×3
	classUncommon                  // 1×7, 7×1, 7×7, dilated, grouped, other
)

func classify(a *graph.Conv2DAttrs) convClass {
	k := [2]int{a.KernelH, a.KernelW}
	dil := a.DilationH > 1 || a.DilationW > 1
	if dil {
		return classUncommon
	}
	if a.IsDepthwise() {
		if k == [2]int{3, 3} || k == [2]int{5, 5} {
			return classCommon
		}
		return classUncommon
	}
	if a.Group > 1 {
		return classUncommon
	}
	switch k {
	case [2]int{1, 1}, [2]int{3, 3}, [2]int{5, 5}:
		return classCommon
	case [2]int{7, 7}:
		// The big 7×7 stem conv is common enough that NCNN/MACE cover it.
		return classCommon
	default:
		return classUncommon // 1×7, 7×1, 1×3, 3×1, …
	}
}

// cpuEff returns the efficiency factor (fraction of Equation 5 peak) of an
// engine's CPU kernel for one node. MNN is handled separately (it changes
// the MUL count instead).
func cpuEff(e Engine, n *graph.Node) float64 {
	base := map[Engine]float64{
		NCNN:   0.62, // hand assembly on covered shapes
		MACE:   0.60,
		TFLite: 0.45, // generic im2col+GEMM via Eigen-class code
		CoreML: 0.55,
		TVM:    0.62, // tuned schedules
	}[e]
	if base == 0 {
		base = 0.5
	}
	if n.Op != graph.OpConv2D {
		return base
	}
	a := n.Attrs.(*graph.Conv2DAttrs)
	if classify(a) == classUncommon {
		switch e {
		case NCNN:
			// Figure 8: un-optimized operators fall to naive loops.
			return 0.030
		case MACE:
			return 0.30
		case TFLite, CoreML, TVM:
			// im2col/tuned paths generalize; mild penalty only.
			return base * 0.8
		}
	}
	return base
}

// isPlain3x3s1 matches the one convolution shape every manual engine ships
// hand-written Winograd for.
func isPlain3x3s1(a *graph.Conv2DAttrs) bool {
	return a.KernelH == 3 && a.KernelW == 3 && a.Group <= 1 &&
		a.StrideH <= 1 && a.StrideW <= 1 && a.DilationH <= 1 && a.DilationW <= 1
}

// baselineEffMULs gives NCNN/MACE their hardcoded-Winograd savings on plain
// 3×3 stride-1 convolutions: on that exact shape the case-by-case engines
// are as algorithmically strong as MNN (the paper's Figure 7 shows NCNN ≈
// MNN on ResNet-18 CPU); everywhere else they run direct kernels.
func baselineEffMULs(e Engine, n *graph.Node, shapes graph.ShapeMap) (int64, float64) {
	muls := graph.MULCount(n, shapes)
	eff := cpuEff(e, n)
	if n.Op != graph.OpConv2D {
		return muls, eff
	}
	a := n.Attrs.(*graph.Conv2DAttrs)
	if (e == NCNN || e == MACE) && isPlain3x3s1(a) {
		return muls / 3, eff * 1.15
	}
	return muls, eff
}

// gpuEff returns the GPU efficiency factor per engine/API/device/node.
func gpuEff(e Engine, api backend.Kind, dev *device.Profile, n *graph.Node) float64 {
	var base float64
	switch {
	case e == CoreML && api == backend.KindMetal:
		base = 1.05 // Apple's own stack, slightly ahead of portable engines
	case e == MNN && api == backend.KindMetal:
		base = 0.92
	case e == MNN && api == backend.KindVulkan:
		base = 0.90
	case e == MNN && api == backend.KindOpenCL:
		base = 0.88
	case e == MNN && api == backend.KindOpenGL:
		base = 0.70
	case e == NCNN && api == backend.KindVulkan:
		// "NCNN with Vulkan backend is not very fast on MI6" — their Vulkan
		// path underperforms on Adreno; acceptable on Mali.
		if dev.GPU == "Adreno (TM) 540" || dev.GPU == "Adreno (TM) 530" {
			base = 0.30
		} else {
			base = 0.65
		}
	case e == MACE && api == backend.KindOpenCL:
		base = 0.80
	case e == TFLite && api == backend.KindOpenGL:
		base = 0.55
	case e == TFLite && api == backend.KindMetal:
		base = 0.60
	default:
		base = 0.5
	}
	if n != nil && n.Op == graph.OpConv2D {
		a := n.Attrs.(*graph.Conv2DAttrs)
		if e == TFLite && api == backend.KindOpenGL && a.InputCount >= 128 {
			// "TF-Lite with OpenGL still has much room for improvement on
			// ResNet-18": wide convolutions overwhelm its shader path.
			base *= 0.35
		}
		if classify(a) == classUncommon && (e == NCNN || e == MACE) {
			base *= 0.25
		}
	}
	return base
}

// CPUSIMDFactor converts the paper's frequency-sum CPU capability
// (Appendix C, used verbatim for Equation 5 *scheduling*) into a simulated
// *throughput*: NEON retires ~4 multiply-accumulates per core per cycle, so
// measured mobile-CPU latencies sit ≈4× below the frequency-sum prediction
// (e.g. MobileNet-v1's 569M MACs in ~15 ms on 4 A11 threads). Applied only
// when pricing simulated measurements, never when choosing backends.
const CPUSIMDFactor = 4.0

// mnnSchemeEff is the realization efficiency of each MNN kernel relative to
// Equation 5 peak: the Winograd/im2col pipelines are gather/scatter-bound,
// the packed direct kernels come closer to peak. Calibrated so the MNN/TVM
// and MNN/NCNN gaps match Figures 7–9.
var mnnSchemeEff = map[core.ConvScheme]float64{
	core.SchemeWinograd:    0.55,
	core.SchemeSliding:     0.80,
	core.SchemeStrassen1x1: 0.80,
	core.SchemeDepthwise:   0.80,
	core.SchemeIm2col:      0.55,
}

// mnnEffMULs returns MNN's effective MUL count for a node after scheme
// selection (Winograd/Strassen savings) and the realization efficiency of
// the chosen kernel.
func mnnEffMULs(n *graph.Node, shapes graph.ShapeMap) (int64, float64) {
	if n.Op == graph.OpConv2D {
		dec := core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), shapes[n.Inputs[0]])
		return dec.EffMULs, mnnSchemeEff[dec.Scheme]
	}
	return graph.MULCount(n, shapes), 0.8
}

// tvmEffMULs models TVM's auto-tuned kernels: tuning recovers Winograd-
// class savings on plain 3×3 stride-1 convolutions but not MNN's adaptive
// tile sizes or the Strassen 1×1 path.
func tvmEffMULs(n *graph.Node, shapes graph.ShapeMap) int64 {
	muls := graph.MULCount(n, shapes)
	if n.Op != graph.OpConv2D {
		return muls
	}
	if isPlain3x3s1(n.Attrs.(*graph.Conv2DAttrs)) {
		return muls * 45 / 100
	}
	return muls
}

// Result is one simulated measurement.
type Result struct {
	Engine Engine
	Device string
	Mode   Mode
	// SimMs is the simulated single-image inference latency.
	SimMs float64
	// CPUFallbackOps counts operators that ran on CPU in a GPU mode.
	CPUFallbackOps int
}

// Simulate prices one engine/device/mode/network combination with the
// Equation 5 cost model. computeThreads on real hardware equals
// mode.Threads; the simulated clock needs no real compute at all, so this
// walk is analytic and instant.
func Simulate(e Engine, g *graph.Graph, dev *device.Profile, mode Mode) (Result, error) {
	res := Result{Engine: e, Device: dev.Name, Mode: mode}
	if !SupportsDevice(e, dev) {
		return res, fmt.Errorf("engines: %s does not support %s (%s)", e, dev.Name, dev.OS)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		return res, err
	}
	if !mode.GPU {
		res.SimMs = simulateCPU(e, g, shapes, dev, mode.Threads)
		return res, nil
	}
	ok := false
	for _, api := range GPUAPIs(e, dev.OS) {
		if api == mode.API {
			ok = true
			break
		}
	}
	if !ok {
		return res, fmt.Errorf("engines: %s has no %s backend on %s", e, mode.API, dev.OS)
	}
	ms, fallback := simulateGPU(e, g, shapes, dev, mode.API, mode.Threads)
	res.SimMs = ms
	res.CPUFallbackOps = fallback
	return res, nil
}

func simulateCPU(e Engine, g *graph.Graph, shapes graph.ShapeMap, dev *device.Profile, threads int) float64 {
	flops := dev.CPUFLOPS(threads) * CPUSIMDFactor
	var ms float64
	for _, n := range g.Nodes {
		var muls int64
		var eff float64
		switch e {
		case MNN:
			muls, eff = mnnEffMULs(n, shapes)
		case TVM:
			muls = tvmEffMULs(n, shapes)
			eff = cpuEff(e, n)
		default:
			muls, eff = baselineEffMULs(e, n, shapes)
		}
		ms += simclock.CPUCostMs(muls, flops, eff)
	}
	return ms
}

// supportedOn maps each engine's GPU op coverage. MNN uses the gpusim
// default sets (scaled from Table 4); baselines support convolution-family
// ops plus the common glue.
func supportedOn(e Engine, api backend.Kind, op graph.OpType) bool {
	if e == MNN {
		return gpusim.DefaultSupported(api)[op]
	}
	switch op {
	case graph.OpConv2D, graph.OpPool, graph.OpReLU, graph.OpReLU6,
		graph.OpConcat, graph.OpEltwise, graph.OpScale, graph.OpBatchNorm, graph.OpInput:
		return true
	case graph.OpSoftmax, graph.OpInnerProduct:
		// CoreML's full-stack Metal covers the heads too.
		return e == CoreML
	default:
		return false
	}
}

func simulateGPU(e Engine, g *graph.Graph, shapes graph.ShapeMap, dev *device.Profile, api backend.Kind, threads int) (float64, int) {
	gpuFLOPS := dev.GPUFLOPS()
	cpuFLOPS := dev.CPUFLOPS(max(1, threads))
	tSched := apiOverheadMs(api)
	var ms float64
	fallback := 0
	for _, n := range g.Nodes {
		muls := graph.MULCount(n, shapes)
		if supportedOn(e, api, n.Op) {
			eff := gpuEff(e, api, dev, n)
			gm := muls
			if e == MNN {
				// MNN's generated Winograd shaders give the GPU backends
				// the same algorithmic savings as the CPU (Section 3.3).
				gm, _ = mnnEffMULs(n, shapes)
			}
			ms += simclock.GPUCostMs(gm, gpuFLOPS, tSched, eff)
			continue
		}
		// Hybrid fallback to CPU (Section 3.2): CPU-priced plus transfers.
		fallback++
		var cpuMuls int64
		var eff float64
		if e == MNN {
			cpuMuls, eff = mnnEffMULs(n, shapes)
		} else {
			cpuMuls = muls
			eff = cpuEff(e, n)
		}
		ms += simclock.CPUCostMs(cpuMuls, cpuFLOPS*CPUSIMDFactor, eff) + 2*tSched
	}
	return ms, fallback
}

func apiOverheadMs(api backend.Kind) float64 {
	switch api {
	case backend.KindOpenCL, backend.KindOpenGL:
		return 0.05
	case backend.KindVulkan, backend.KindMetal:
		return 0.01
	default:
		return 0
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
