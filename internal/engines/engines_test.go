package engines

import (
	"testing"

	"mnn/internal/backend"
	"mnn/internal/device"
	"mnn/internal/models"
)

func TestMNNBeatsBaselinesOnCPU(t *testing.T) {
	// Figure 7's headline claim: MNN outperforms other engines by roughly
	// 20–40% across devices and networks on CPU.
	for _, netName := range []string{"mobilenet-v1", "squeezenet-v1.1", "resnet-18"} {
		g, err := models.ByName(netName)
		if err != nil {
			t.Fatal(err)
		}
		for _, dev := range []*device.Profile{device.MI6, device.Mate20, device.IPhoneX} {
			mode := Mode{Threads: 4}
			mnn, err := Simulate(MNN, g, dev, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range []Engine{NCNN, TFLite} {
				r, err := Simulate(e, g, dev, mode)
				if err != nil {
					t.Fatal(err)
				}
				if r.SimMs <= mnn.SimMs {
					t.Errorf("%s on %s/%s: %s %.1fms not slower than MNN %.1fms",
						netName, dev.Name, mode, e, r.SimMs, mnn.SimMs)
				}
			}
		}
	}
}

func TestFourThreadFasterThanTwo(t *testing.T) {
	g := models.MobileNetV1()
	r2, _ := Simulate(MNN, g, device.Mate20, Mode{Threads: 2})
	r4, _ := Simulate(MNN, g, device.Mate20, Mode{Threads: 4})
	if r4.SimMs >= r2.SimMs {
		t.Fatalf("4 threads (%.1f) not faster than 2 (%.1f)", r4.SimMs, r2.SimMs)
	}
}

func TestNCNNVulkanSlowOnMI6(t *testing.T) {
	// Figure 7 observation (3): NCNN-Vulkan underperforms on the MI6's
	// Adreno GPU but is respectable on Mate20's Mali.
	g := models.MobileNetV1()
	mi6, err := Simulate(NCNN, g, device.MI6, Mode{GPU: true, API: backend.KindVulkan})
	if err != nil {
		t.Fatal(err)
	}
	mnnMi6, _ := Simulate(MNN, g, device.MI6, Mode{GPU: true, API: backend.KindVulkan})
	if mi6.SimMs < 2*mnnMi6.SimMs {
		t.Errorf("NCNN-Vulkan on MI6 (%.1f) should lag MNN (%.1f) badly", mi6.SimMs, mnnMi6.SimMs)
	}
}

func TestCoreMLSlightlyBeatsMNNMetal(t *testing.T) {
	// Figure 7 observation (3): MNN Metal is "a little slower than CoreML
	// but still comparable".
	g := models.MobileNetV1()
	coreml, err := Simulate(CoreML, g, device.IPhoneX, Mode{GPU: true, API: backend.KindMetal})
	if err != nil {
		t.Fatal(err)
	}
	mnn, err := Simulate(MNN, g, device.IPhoneX, Mode{GPU: true, API: backend.KindMetal})
	if err != nil {
		t.Fatal(err)
	}
	if coreml.SimMs >= mnn.SimMs {
		t.Errorf("CoreML (%.1f) should edge out MNN Metal (%.1f)", coreml.SimMs, mnn.SimMs)
	}
	if coreml.SimMs < mnn.SimMs*0.6 {
		t.Errorf("but they must stay comparable: CoreML %.1f vs MNN %.1f", coreml.SimMs, mnn.SimMs)
	}
}

func TestIPhoneCPU4ComparableToGPU(t *testing.T) {
	// Figure 7 observation (4): multi-thread CPU on the A11 competes with
	// the GPU backend.
	g := models.MobileNetV1()
	cpu4, _ := Simulate(MNN, g, device.IPhone8, Mode{Threads: 4})
	gpu, _ := Simulate(MNN, g, device.IPhone8, Mode{GPU: true, API: backend.KindMetal})
	ratio := cpu4.SimMs / gpu.SimMs
	if ratio > 3 || ratio < 0.5 {
		t.Errorf("CPU4 %.1fms vs Metal %.1fms: not competitive (ratio %.2f)", cpu4.SimMs, gpu.SimMs, ratio)
	}
}

func TestNCNNInceptionBottleneck(t *testing.T) {
	// Figure 8: NCNN on Inception-v3 is several times slower than
	// everything else because the 1×7/7×1 convolutions are unoptimized.
	g := models.InceptionV3()
	dev := device.P20
	ncnn, _ := Simulate(NCNN, g, dev, Mode{Threads: 4})
	mnn, _ := Simulate(MNN, g, dev, Mode{Threads: 4})
	tfl, _ := Simulate(TFLite, g, dev, Mode{Threads: 4})
	mace, _ := Simulate(MACE, g, dev, Mode{Threads: 4})
	if ncnn.SimMs < 3*mnn.SimMs {
		t.Errorf("NCNN (%.0f) should be ≥3× MNN (%.0f) on Inception-v3", ncnn.SimMs, mnn.SimMs)
	}
	if ncnn.SimMs < 2.5*tfl.SimMs {
		t.Errorf("NCNN (%.0f) should trail TF-Lite (%.0f) badly", ncnn.SimMs, tfl.SimMs)
	}
	// MACE degrades less (its uncommon-shape penalty is milder).
	if mace.SimMs >= ncnn.SimMs {
		t.Errorf("MACE (%.0f) should sit between MNN and NCNN (%.0f)", mace.SimMs, ncnn.SimMs)
	}
	// And MNN on the same net does NOT suffer: its generated Winograd
	// covers 1×7/7×1. Compare per-MUL throughput vs MobileNet.
	mob := models.MobileNetV1()
	mnnMob, _ := Simulate(MNN, mob, dev, Mode{Threads: 4})
	if mnn.SimMs > 25*mnnMob.SimMs {
		t.Errorf("MNN Inception (%.0f) vs MobileNet (%.0f): disproportionate", mnn.SimMs, mnnMob.SimMs)
	}
}

func TestMNNFasterThanTVM(t *testing.T) {
	// Figure 9: MNN-CPU is consistently (if modestly) faster than TVM-CPU.
	dev := device.P20Pro
	for _, netName := range models.Names() {
		g, _ := models.ByName(netName)
		mnn, _ := Simulate(MNN, g, dev, Mode{Threads: 4})
		tvm, _ := Simulate(TVM, g, dev, Mode{Threads: 4})
		if mnn.SimMs >= tvm.SimMs {
			t.Errorf("%s: MNN %.1f not faster than TVM %.1f", netName, mnn.SimMs, tvm.SimMs)
		}
		if tvm.SimMs > mnn.SimMs*3 {
			t.Errorf("%s: TVM %.1f implausibly slow vs MNN %.1f (should be competitive)", netName, tvm.SimMs, mnn.SimMs)
		}
	}
}

func TestTVMTuningModelMatchesTable5(t *testing.T) {
	for _, row := range []struct {
		trials   int
		autoTune float64 // paper's seconds
	}{
		{1, 355}, {10, 1477}, {30, 4583},
	} {
		got := TVMTuningModel(row.trials)
		lo, hi := row.autoTune*0.75, row.autoTune*1.25
		if got.AutoTuneSeconds < lo || got.AutoTuneSeconds > hi {
			t.Errorf("trials=%d: autotune %.0f s outside [%.0f, %.0f] (paper %.0f)",
				row.trials, got.AutoTuneSeconds, lo, hi, row.autoTune)
		}
		if got.CompileSeconds < 35 || got.CompileSeconds > 45 {
			t.Errorf("trials=%d: compile %.0f s, paper ≈ 40", row.trials, got.CompileSeconds)
		}
	}
}

func TestTVMFleetCostScalesWithDevices(t *testing.T) {
	one := TVMFleetCost(10, 1)
	fleet := TVMFleetCost(10, 500)
	if fleet != 500*one {
		t.Fatalf("fleet cost must scale linearly: %v vs %v", fleet, one)
	}
	// 500 devices at 10 trials ≈ 9 days of tuning; the paper's point.
	if fleet < 500_000 {
		t.Errorf("fleet cost %.0f s implausibly small", fleet)
	}
}

func TestEngineAvailabilityMatrix(t *testing.T) {
	if SupportsDevice(CoreML, device.MI6) {
		t.Error("CoreML must not run on Android")
	}
	if SupportsDevice(MACE, device.IPhoneX) {
		t.Error("MACE must not run on iOS")
	}
	if !SupportsDevice(NCNN, device.MI6) || !SupportsDevice(NCNN, device.IPhoneX) {
		t.Error("NCNN runs on both OSes")
	}
	if apis := GPUAPIs(MNN, "Android"); len(apis) != 3 {
		t.Errorf("MNN Android APIs: %v", apis)
	}
	if apis := GPUAPIs(MNN, "iOS"); len(apis) != 1 || apis[0] != backend.KindMetal {
		t.Errorf("MNN iOS APIs: %v", apis)
	}
	g := models.MobileNetV1()
	if _, err := Simulate(CoreML, g, device.MI6, Mode{Threads: 4}); err == nil {
		t.Error("expected error simulating CoreML on Android")
	}
	if _, err := Simulate(MNN, g, device.MI6, Mode{GPU: true, API: backend.KindMetal}); err == nil {
		t.Error("expected error: Metal on Android")
	}
}

func TestGPUHybridFallbackCounted(t *testing.T) {
	g := models.MobileNetV1()
	r, err := Simulate(MNN, g, device.MI6, Mode{GPU: true, API: backend.KindVulkan, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Vulkan lacks InnerProduct in our coverage map: at least the FC layer
	// falls back.
	if r.CPUFallbackOps == 0 {
		t.Error("expected CPU fallback ops in hybrid schedule")
	}
}

func TestMNNGPUBeatsCPUOnBigNets(t *testing.T) {
	g := models.ResNet18()
	cpu, _ := Simulate(MNN, g, device.MI6, Mode{Threads: 4})
	gpu, _ := Simulate(MNN, g, device.MI6, Mode{GPU: true, API: backend.KindOpenCL, Threads: 4})
	if gpu.SimMs >= cpu.SimMs {
		t.Errorf("Adreno540 OpenCL (%.0f) should beat CPU (%.0f) on ResNet-18", gpu.SimMs, cpu.SimMs)
	}
}
