package engines

// TVM deployment-cost model (the paper's Table 5 and Section 4.2): TVM
// generates model-specific code, so shipping or updating a model requires
// auto-tuning trials and a compile step per (model, device) pair, executed
// offline on a host with the phone attached. MNN's pre-inference replaces
// this with a sub-millisecond runtime search.
//
// The per-trial and fixed costs below are fitted to Table 5's measurements
// on a Samsung Galaxy S8 (355 s for 1 trial, 1477 s for 10, 4583 s for 30;
// compile ≈ 40 s throughout).

// TVMDeployCost estimates the offline cost (seconds) of preparing one model
// for one device with the given number of auto-tuning trials.
type TVMDeployCost struct {
	AutoTuneSeconds float64
	CompileSeconds  float64
}

// TVMTuningModel returns the Table 5 cost model.
//
// Fitting t(n) = a + b·n to the three published points gives b ≈ 145 s per
// trial of measurement+search and a ≈ 200 s of session setup; the 30-trial
// point runs slightly super-linear (search space growth), modelled with a
// small quadratic term.
func TVMTuningModel(trials int) TVMDeployCost {
	n := float64(trials)
	return TVMDeployCost{
		AutoTuneSeconds: 200 + 142*n + 0.8*n*n,
		CompileSeconds:  40,
	}
}

// TVMFleetCost scales deployment cost across a device fleet: every distinct
// device type needs its own tuning run (Section 4.2's argument — the
// production service of Table 6 covers 500+ device types).
func TVMFleetCost(trials, deviceTypes int) float64 {
	per := TVMTuningModel(trials)
	return float64(deviceTypes) * (per.AutoTuneSeconds + per.CompileSeconds)
}

// MNNSearchCost is the runtime cost of MNN's counterpart: pre-inference
// scheme selection, measured per session creation on-device. It is
// milliseconds, not minutes, and needs no host, no fleet enumeration and no
// re-release (Section 3.5).
func MNNSearchCost() TVMDeployCost { return TVMDeployCost{} }
