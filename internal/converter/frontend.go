package converter

import (
	"encoding/json"
	"fmt"
	"io"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// The JSON frontend is a minimal stand-in for the ONNX/TF/Caffe importers of
// the real converter (those formats need protobuf, unavailable offline; see
// DESIGN.md). It is expressive enough to describe every network in the
// benchmark zoo.

// jsonModel is the top-level document.
type jsonModel struct {
	Name    string       `json:"name"`
	Inputs  []string     `json:"inputs"`
	Outputs []string     `json:"outputs"`
	Nodes   []jsonNode   `json:"nodes"`
	Weights []jsonWeight `json:"weights"`
}

type jsonNode struct {
	Name    string          `json:"name"`
	Op      string          `json:"op"`
	Inputs  []string        `json:"inputs,omitempty"`
	Outputs []string        `json:"outputs,omitempty"`
	Weights []string        `json:"weights,omitempty"`
	Attrs   json.RawMessage `json:"attrs,omitempty"`
}

type jsonWeight struct {
	Name  string    `json:"name"`
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data,omitempty"`
	// Init "random" generates deterministic synthetic values.
	Init  string  `json:"init,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	Scale float32 `json:"scale,omitempty"`
}

type jsonConvAttrs struct {
	Kernel   []int  `json:"kernel"` // [kh, kw] or [k]
	Stride   []int  `json:"stride,omitempty"`
	Pad      []int  `json:"pad,omitempty"`
	PadMode  string `json:"pad_mode,omitempty"` // "same"/"valid"/"" (explicit)
	Dilation []int  `json:"dilation,omitempty"`
	Group    int    `json:"group,omitempty"`
	Outputs  int    `json:"outputs"`
	ReLU     bool   `json:"relu,omitempty"`
	ReLU6    bool   `json:"relu6,omitempty"`
}

type jsonPoolAttrs struct {
	Type   string `json:"type"` // "max"/"avg"
	Kernel []int  `json:"kernel,omitempty"`
	Stride []int  `json:"stride,omitempty"`
	Pad    []int  `json:"pad,omitempty"`
	Global bool   `json:"global,omitempty"`
}

func pair(v []int, def int) (int, int) {
	switch len(v) {
	case 0:
		return def, def
	case 1:
		return v[0], v[0]
	default:
		return v[0], v[1]
	}
}

// ParseJSON reads the frontend format into a graph.
func ParseJSON(in io.Reader) (*graph.Graph, error) {
	var m jsonModel
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("converter: frontend parse: %w", err)
	}
	g := graph.New(m.Name)
	g.InputNames = m.Inputs
	g.OutputNames = m.Outputs

	for _, w := range m.Weights {
		t := tensor.New(w.Shape...)
		switch {
		case len(w.Data) > 0:
			if len(w.Data) != t.NumElements() {
				return nil, fmt.Errorf("converter: weight %q data length %d != shape %v", w.Name, len(w.Data), w.Shape)
			}
			copy(t.Data(), w.Data)
		case w.Init == "random":
			scale := w.Scale
			if scale == 0 {
				scale = 0.1
			}
			tensor.FillRandom(t, w.Seed, scale)
		case w.Init == "zeros" || w.Init == "":
			// already zero
		default:
			return nil, fmt.Errorf("converter: weight %q has unknown init %q", w.Name, w.Init)
		}
		g.AddWeight(w.Name, t)
	}

	for _, jn := range m.Nodes {
		op, err := graph.ParseOpType(jn.Op)
		if err != nil {
			return nil, fmt.Errorf("converter: node %q: %w", jn.Name, err)
		}
		n := &graph.Node{Name: jn.Name, Op: op, Inputs: jn.Inputs, Outputs: jn.Outputs, WeightNames: jn.Weights}
		if len(n.Outputs) == 0 {
			n.Outputs = []string{jn.Name}
		}
		if err := parseJSONAttrs(n, jn.Attrs); err != nil {
			return nil, fmt.Errorf("converter: node %q: %w", jn.Name, err)
		}
		g.AddNode(n)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("converter: frontend graph invalid: %w", err)
	}
	return g, nil
}

func parseJSONAttrs(n *graph.Node, raw json.RawMessage) error {
	unmarshal := func(v any) error {
		if raw == nil {
			return fmt.Errorf("op %v requires attrs", n.Op)
		}
		return json.Unmarshal(raw, v)
	}
	switch n.Op {
	case graph.OpInput:
		var a struct {
			Shape []int `json:"shape"`
		}
		if err := unmarshal(&a); err != nil {
			return err
		}
		n.Attrs = &graph.InputAttrs{Shape: a.Shape}
	case graph.OpConv2D, graph.OpDeconv2D:
		var a jsonConvAttrs
		if err := unmarshal(&a); err != nil {
			return err
		}
		kh, kw := pair(a.Kernel, 1)
		sh, sw := pair(a.Stride, 1)
		ph, pw := pair(a.Pad, 0)
		dh, dw := pair(a.Dilation, 1)
		mode := graph.PadExplicit
		switch a.PadMode {
		case "same":
			mode = graph.PadSame
		case "valid":
			mode = graph.PadValid
		case "":
		default:
			return fmt.Errorf("unknown pad_mode %q", a.PadMode)
		}
		group := a.Group
		if group == 0 {
			group = 1
		}
		n.Attrs = &graph.Conv2DAttrs{
			KernelH: kh, KernelW: kw, StrideH: sh, StrideW: sw,
			DilationH: dh, DilationW: dw, PadH: ph, PadW: pw, PadMode: mode,
			Group: group, OutputCount: a.Outputs, ReLU: a.ReLU, ReLU6: a.ReLU6,
		}
	case graph.OpPool:
		var a jsonPoolAttrs
		if err := unmarshal(&a); err != nil {
			return err
		}
		kh, kw := pair(a.Kernel, 1)
		sh, sw := pair(a.Stride, 1)
		ph, pw := pair(a.Pad, 0)
		pt := graph.MaxPool
		if a.Type == "avg" {
			pt = graph.AvgPool
		} else if a.Type != "max" && a.Type != "" {
			return fmt.Errorf("unknown pool type %q", a.Type)
		}
		n.Attrs = &graph.PoolAttrs{Type: pt, KernelH: kh, KernelW: kw,
			StrideH: sh, StrideW: sw, PadH: ph, PadW: pw, Global: a.Global}
	case graph.OpBatchNorm:
		var a struct {
			Eps float32 `json:"eps"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		}
		if a.Eps == 0 {
			a.Eps = 1e-5
		}
		n.Attrs = &graph.BatchNormAttrs{Eps: a.Eps}
	case graph.OpScale:
		n.Attrs = &graph.ScaleAttrs{HasBias: len(n.WeightNames) > 1}
	case graph.OpEltwise:
		var a struct {
			Type string `json:"type"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		}
		et := graph.EltSum
		switch a.Type {
		case "", "sum":
		case "prod":
			et = graph.EltProd
		case "max":
			et = graph.EltMax
		case "sub":
			et = graph.EltSub
		default:
			return fmt.Errorf("unknown eltwise type %q", a.Type)
		}
		n.Attrs = &graph.EltwiseAttrs{Type: et}
	case graph.OpConcat:
		var a struct {
			Axis int `json:"axis"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		} else {
			a.Axis = 1
		}
		n.Attrs = &graph.ConcatAttrs{Axis: a.Axis}
	case graph.OpInnerProduct:
		var a struct {
			Outputs int  `json:"outputs"`
			ReLU    bool `json:"relu"`
		}
		if err := unmarshal(&a); err != nil {
			return err
		}
		n.Attrs = &graph.InnerProductAttrs{OutputCount: a.Outputs, ReLU: a.ReLU}
	case graph.OpSoftmax:
		var a struct {
			Axis int `json:"axis"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		} else {
			a.Axis = 1
		}
		n.Attrs = &graph.SoftmaxAttrs{Axis: a.Axis}
	case graph.OpFlatten:
		var a struct {
			Axis int `json:"axis"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		} else {
			a.Axis = 1
		}
		n.Attrs = &graph.FlattenAttrs{Axis: a.Axis}
	case graph.OpReshape:
		var a struct {
			Shape []int `json:"shape"`
		}
		if err := unmarshal(&a); err != nil {
			return err
		}
		n.Attrs = &graph.ReshapeAttrs{Shape: a.Shape}
	case graph.OpDropout:
		n.Attrs = &graph.DropoutAttrs{Ratio: 0.5}
	case graph.OpPadding:
		var a struct {
			Top, Bottom, Left, Right int
		}
		if err := unmarshal(&a); err != nil {
			return err
		}
		n.Attrs = &graph.PaddingAttrs{Top: a.Top, Bottom: a.Bottom, Left: a.Left, Right: a.Right}
	case graph.OpLayerNorm:
		var a struct {
			Eps float32 `json:"eps"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		}
		if a.Eps == 0 {
			a.Eps = 1e-5
		}
		n.Attrs = &graph.LayerNormAttrs{Eps: a.Eps}
	case graph.OpMatMul:
		var a struct {
			Heads      int     `json:"heads"`
			TransposeB bool    `json:"transpose_b"`
			Scale      float32 `json:"scale"`
		}
		if raw != nil {
			if err := json.Unmarshal(raw, &a); err != nil {
				return err
			}
		}
		n.Attrs = &graph.MatMulAttrs{Heads: a.Heads, TransposeB: a.TransposeB, Scale: a.Scale}
	case graph.OpTranspose:
		var a struct {
			Perm []int `json:"perm"`
		}
		if err := unmarshal(&a); err != nil {
			return err
		}
		n.Attrs = &graph.TransposeAttrs{Perm: a.Perm}
	case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh, graph.OpGELU:
		n.Attrs = nil
	default:
		return fmt.Errorf("unsupported op %v", n.Op)
	}
	return nil
}

// ExportJSON writes a graph in the frontend format (weights inlined), so
// round-trip tests and tooling can regenerate sources.
func ExportJSON(g *graph.Graph, out io.Writer) error {
	m := jsonModel{Name: g.Name, Inputs: g.InputNames, Outputs: g.OutputNames}
	for _, n := range g.Nodes {
		jn := jsonNode{Name: n.Name, Op: n.Op.String(), Inputs: n.Inputs,
			Outputs: n.Outputs, Weights: n.WeightNames}
		attrs, err := exportAttrs(n)
		if err != nil {
			return err
		}
		jn.Attrs = attrs
		m.Nodes = append(m.Nodes, jn)
	}
	for _, name := range sortedWeightNames(g) {
		t := g.Weights[name]
		if t.DType() != tensor.Float32 {
			return fmt.Errorf("converter: ExportJSON supports float32 weights only (%q is %v)", name, t.DType())
		}
		m.Weights = append(m.Weights, jsonWeight{Name: name, Shape: t.Shape(), Data: t.Data()})
	}
	enc := json.NewEncoder(out)
	return enc.Encode(&m)
}

func exportAttrs(n *graph.Node) (json.RawMessage, error) {
	var v any
	switch a := n.Attrs.(type) {
	case *graph.InputAttrs:
		v = map[string]any{"shape": a.Shape}
	case *graph.Conv2DAttrs:
		mode := ""
		switch a.PadMode {
		case graph.PadSame:
			mode = "same"
		case graph.PadValid:
			mode = "valid"
		}
		v = jsonConvAttrs{Kernel: []int{a.KernelH, a.KernelW},
			Stride: []int{a.StrideH, a.StrideW}, Pad: []int{a.PadH, a.PadW},
			PadMode: mode, Dilation: []int{a.DilationH, a.DilationW},
			Group: a.Group, Outputs: a.OutputCount, ReLU: a.ReLU, ReLU6: a.ReLU6}
	case *graph.PoolAttrs:
		v = jsonPoolAttrs{Type: a.Type.String(), Kernel: []int{a.KernelH, a.KernelW},
			Stride: []int{a.StrideH, a.StrideW}, Pad: []int{a.PadH, a.PadW}, Global: a.Global}
	case *graph.BatchNormAttrs:
		v = map[string]any{"eps": a.Eps}
	case *graph.ScaleAttrs:
		v = nil
	case *graph.EltwiseAttrs:
		v = map[string]any{"type": a.Type.String()}
	case *graph.ConcatAttrs:
		v = map[string]any{"axis": a.Axis}
	case *graph.InnerProductAttrs:
		v = map[string]any{"outputs": a.OutputCount, "relu": a.ReLU}
	case *graph.SoftmaxAttrs:
		v = map[string]any{"axis": a.Axis}
	case *graph.FlattenAttrs:
		v = map[string]any{"axis": a.Axis}
	case *graph.ReshapeAttrs:
		v = map[string]any{"shape": a.Shape}
	case *graph.DropoutAttrs:
		v = nil
	case *graph.PaddingAttrs:
		v = map[string]any{"Top": a.Top, "Bottom": a.Bottom, "Left": a.Left, "Right": a.Right}
	case *graph.LayerNormAttrs:
		v = map[string]any{"eps": a.Eps}
	case *graph.MatMulAttrs:
		v = map[string]any{"heads": a.Heads, "transpose_b": a.TransposeB, "scale": a.Scale}
	case *graph.TransposeAttrs:
		v = map[string]any{"perm": a.Perm}
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("converter: cannot export attrs %T", n.Attrs)
	}
	if v == nil {
		return nil, nil
	}
	return json.Marshal(v)
}
