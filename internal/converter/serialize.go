// Package converter implements the offline conversion stage of Figure 2:
// reading models from a frontend format (a pseudo-ONNX JSON dialect, since
// real protobuf frontends are out of scope offline), running the graph
// optimizer, and serializing to the engine's own compact binary format
// (".mnn" in the paper; ".mnng" here).
package converter

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// Magic and version of the binary format. Version 2 appends the calibrated
// activation-scale table (quant.Calibrate) after the weights; version-1
// files load fine with no scales. Version 3 adds the transformer op family
// (LayerNorm, GELU, MatMul, Transpose) to the attr codec; the container
// layout is unchanged, so v1/v2 files still load. A v2-only reader meeting
// a v3 file fails its version check up front — it never mis-parses the new
// attrs — which is why Load reports past-Version files with the typed
// ErrUnsupportedVersion instead of a generic parse error.
const (
	Magic   = 0x4D4E4E47 // "MNNG"
	Version = 3
)

// ErrUnsupportedVersion is returned by Load when the file's format version
// is newer than this reader supports (e.g. a v2-era reader handed a v3
// file). Test with errors.Is.
var ErrUnsupportedVersion = errors.New("converter: unsupported format version")

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u32(v uint32) {
	if w.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, w.err = w.w.Write(b[:])
}

func (w *writer) i32(v int) { w.u32(uint32(int32(v))) }

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) strs(ss []string) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.u32(1)
	} else {
		w.u32(0)
	}
}

func (w *writer) ints(vs []int) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.i32(v)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) i32() int { return int(int32(r.u32())) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("converter: string length %d too large", n)
		return ""
	}
	b := make([]byte, n)
	_, r.err = io.ReadFull(r.r, b)
	return string(b)
}

func (r *reader) strs() []string {
	n := r.u32()
	if r.err != nil || n > 1<<20 {
		if n > 1<<20 {
			r.err = fmt.Errorf("converter: list length %d too large", n)
		}
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *reader) bool() bool { return r.u32() != 0 }

func (r *reader) ints() []int {
	n := r.u32()
	if r.err != nil || n > 1<<20 {
		if n > 1<<20 {
			r.err = fmt.Errorf("converter: list length %d too large", n)
		}
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

// Save serializes a graph to the binary format.
func Save(g *graph.Graph, out io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	w := &writer{w: bufio.NewWriter(out)}
	w.u32(Magic)
	w.u32(Version)
	w.str(g.Name)
	w.strs(g.InputNames)
	w.strs(g.OutputNames)

	w.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		w.str(n.Name)
		w.u32(uint32(n.Op))
		w.strs(n.Inputs)
		w.strs(n.Outputs)
		w.strs(n.WeightNames)
		writeAttrs(w, n)
	}

	w.u32(uint32(len(g.Weights)))
	// Deterministic order: follow node weight references, then leftovers
	// sorted implicitly by first-reference; simpler: write in sorted order.
	for _, name := range sortedWeightNames(g) {
		t := g.Weights[name]
		w.str(name)
		w.u32(uint32(t.DType()))
		w.ints(t.Shape())
		switch t.DType() {
		case tensor.Float32:
			for _, v := range t.Data() {
				w.f32(v)
			}
		case tensor.Int8:
			w.f32(t.Quant.Scale)
			if w.err == nil {
				raw := make([]byte, len(t.Int8Data()))
				for i, v := range t.Int8Data() {
					raw[i] = byte(v)
				}
				_, w.err = w.w.Write(raw)
			}
		default:
			return fmt.Errorf("converter: cannot serialize dtype %v", t.DType())
		}
	}

	// Calibrated activation scales (version 2), in sorted order for
	// deterministic output.
	scaleNames := make([]string, 0, len(g.ActScales))
	for name := range g.ActScales {
		scaleNames = append(scaleNames, name)
	}
	sort.Strings(scaleNames)
	w.u32(uint32(len(scaleNames)))
	for _, name := range scaleNames {
		w.str(name)
		w.f32(g.ActScales[name])
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func sortedWeightNames(g *graph.Graph) []string {
	names := make([]string, 0, len(g.Weights))
	for name := range g.Weights {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Load deserializes a graph from the binary format.
func Load(in io.Reader) (*graph.Graph, error) {
	r := &reader{r: bufio.NewReader(in)}
	if m := r.u32(); m != Magic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("converter: bad magic %#x", m)
	}
	version := r.u32()
	if version < 1 || version > Version {
		return nil, fmt.Errorf("%w: file is v%d, this reader supports v1-v%d", ErrUnsupportedVersion, version, Version)
	}
	g := graph.New(r.str())
	g.InputNames = r.strs()
	g.OutputNames = r.strs()

	nNodes := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nNodes > 1<<20 {
		return nil, fmt.Errorf("converter: node count %d too large", nNodes)
	}
	for i := uint32(0); i < nNodes; i++ {
		n := &graph.Node{
			Name: r.str(),
			Op:   graph.OpType(r.u32()),
		}
		n.Inputs = r.strs()
		n.Outputs = r.strs()
		n.WeightNames = r.strs()
		if err := readAttrs(r, n); err != nil {
			return nil, err
		}
		g.AddNode(n)
	}

	nWeights := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nWeights > 1<<20 {
		return nil, fmt.Errorf("converter: weight count %d too large", nWeights)
	}
	for i := uint32(0); i < nWeights; i++ {
		name := r.str()
		dt := tensor.DataType(r.u32())
		shape := r.ints()
		if r.err != nil {
			return nil, r.err
		}
		if err := checkWeightShape(name, shape); err != nil {
			return nil, err
		}
		switch dt {
		case tensor.Float32:
			t := tensor.New(shape...)
			d := t.Data()
			for j := range d {
				d[j] = r.f32()
			}
			g.AddWeight(name, t)
		case tensor.Int8:
			scale := r.f32()
			t := tensor.NewInt8(tensor.QuantParams{Scale: scale}, shape...)
			raw := make([]byte, len(t.Int8Data()))
			if r.err == nil {
				_, r.err = io.ReadFull(r.r, raw)
			}
			for j, v := range raw {
				t.Int8Data()[j] = int8(v)
			}
			g.AddWeight(name, t)
		default:
			return nil, fmt.Errorf("converter: weight %q has unsupported dtype %v", name, dt)
		}
	}

	if version >= 2 {
		nScales := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if nScales > 1<<20 {
			return nil, fmt.Errorf("converter: activation-scale count %d too large", nScales)
		}
		if nScales > 0 {
			g.ActScales = make(map[string]float32, nScales)
			for i := uint32(0); i < nScales; i++ {
				name := r.str()
				g.ActScales[name] = r.f32()
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("converter: loaded graph invalid: %w", err)
	}
	return g, nil
}

// checkWeightShape rejects corrupt weight shapes before tensor allocation:
// negative dims would panic makeslice and absurd element counts would OOM
// on untrusted model files.
func checkWeightShape(name string, shape []int) error {
	elems := int64(1)
	for _, d := range shape {
		if d < 0 {
			return fmt.Errorf("converter: weight %q has negative dim in shape %v", name, shape)
		}
		elems *= int64(d)
		if elems > 1<<28 {
			return fmt.Errorf("converter: weight %q shape %v too large", name, shape)
		}
	}
	return nil
}

func writeAttrs(w *writer, n *graph.Node) {
	switch a := n.Attrs.(type) {
	case *graph.InputAttrs:
		w.ints(a.Shape)
	case *graph.Conv2DAttrs:
		w.i32(a.KernelH)
		w.i32(a.KernelW)
		w.i32(a.StrideH)
		w.i32(a.StrideW)
		w.i32(a.DilationH)
		w.i32(a.DilationW)
		w.i32(a.PadH)
		w.i32(a.PadW)
		w.u32(uint32(a.PadMode))
		w.i32(a.Group)
		w.i32(a.OutputCount)
		w.i32(a.InputCount)
		w.bool(a.ReLU)
		w.bool(a.ReLU6)
	case *graph.PoolAttrs:
		w.u32(uint32(a.Type))
		w.i32(a.KernelH)
		w.i32(a.KernelW)
		w.i32(a.StrideH)
		w.i32(a.StrideW)
		w.i32(a.PadH)
		w.i32(a.PadW)
		w.u32(uint32(a.PadMode))
		w.bool(a.Global)
		w.bool(a.CountIncludePad)
	case *graph.BatchNormAttrs:
		w.f32(a.Eps)
	case *graph.ScaleAttrs:
		w.bool(a.HasBias)
	case *graph.EltwiseAttrs:
		w.u32(uint32(a.Type))
		w.bool(a.ReLU)
	case *graph.ConcatAttrs:
		w.i32(a.Axis)
	case *graph.InnerProductAttrs:
		w.i32(a.OutputCount)
		w.bool(a.ReLU)
	case *graph.SoftmaxAttrs:
		w.i32(a.Axis)
	case *graph.FlattenAttrs:
		w.i32(a.Axis)
	case *graph.ReshapeAttrs:
		w.ints(a.Shape)
	case *graph.DropoutAttrs:
		w.f32(a.Ratio)
	case *graph.PaddingAttrs:
		w.i32(a.Top)
		w.i32(a.Bottom)
		w.i32(a.Left)
		w.i32(a.Right)
	case *graph.LayerNormAttrs:
		w.f32(a.Eps)
	case *graph.MatMulAttrs:
		w.i32(a.Heads)
		w.bool(a.TransposeB)
		w.f32(a.Scale)
	case *graph.TransposeAttrs:
		w.ints(a.Perm)
	case nil:
		// activation ops carry no attrs
	default:
		w.err = fmt.Errorf("converter: cannot serialize attrs %T", n.Attrs)
	}
}

func readAttrs(r *reader, n *graph.Node) error {
	switch n.Op {
	case graph.OpInput:
		n.Attrs = &graph.InputAttrs{Shape: r.ints()}
	case graph.OpConv2D, graph.OpDeconv2D:
		a := &graph.Conv2DAttrs{}
		a.KernelH = r.i32()
		a.KernelW = r.i32()
		a.StrideH = r.i32()
		a.StrideW = r.i32()
		a.DilationH = r.i32()
		a.DilationW = r.i32()
		a.PadH = r.i32()
		a.PadW = r.i32()
		a.PadMode = graph.PadMode(r.u32())
		a.Group = r.i32()
		a.OutputCount = r.i32()
		a.InputCount = r.i32()
		a.ReLU = r.bool()
		a.ReLU6 = r.bool()
		n.Attrs = a
	case graph.OpPool:
		a := &graph.PoolAttrs{}
		a.Type = graph.PoolType(r.u32())
		a.KernelH = r.i32()
		a.KernelW = r.i32()
		a.StrideH = r.i32()
		a.StrideW = r.i32()
		a.PadH = r.i32()
		a.PadW = r.i32()
		a.PadMode = graph.PadMode(r.u32())
		a.Global = r.bool()
		a.CountIncludePad = r.bool()
		n.Attrs = a
	case graph.OpBatchNorm:
		n.Attrs = &graph.BatchNormAttrs{Eps: r.f32()}
	case graph.OpScale:
		n.Attrs = &graph.ScaleAttrs{HasBias: r.bool()}
	case graph.OpEltwise:
		n.Attrs = &graph.EltwiseAttrs{Type: graph.EltwiseType(r.u32()), ReLU: r.bool()}
	case graph.OpConcat:
		n.Attrs = &graph.ConcatAttrs{Axis: r.i32()}
	case graph.OpInnerProduct:
		n.Attrs = &graph.InnerProductAttrs{OutputCount: r.i32(), ReLU: r.bool()}
	case graph.OpSoftmax:
		n.Attrs = &graph.SoftmaxAttrs{Axis: r.i32()}
	case graph.OpFlatten:
		n.Attrs = &graph.FlattenAttrs{Axis: r.i32()}
	case graph.OpReshape:
		n.Attrs = &graph.ReshapeAttrs{Shape: r.ints()}
	case graph.OpDropout:
		n.Attrs = &graph.DropoutAttrs{Ratio: r.f32()}
	case graph.OpPadding:
		n.Attrs = &graph.PaddingAttrs{Top: r.i32(), Bottom: r.i32(), Left: r.i32(), Right: r.i32()}
	case graph.OpLayerNorm:
		n.Attrs = &graph.LayerNormAttrs{Eps: r.f32()}
	case graph.OpMatMul:
		n.Attrs = &graph.MatMulAttrs{Heads: r.i32(), TransposeB: r.bool(), Scale: r.f32()}
	case graph.OpTranspose:
		n.Attrs = &graph.TransposeAttrs{Perm: r.ints()}
	case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh, graph.OpGELU:
		n.Attrs = nil
	default:
		return fmt.Errorf("converter: unknown op %d for node %q", n.Op, n.Name)
	}
	return r.err
}
