package converter

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

// tinyTransformerGraph builds a minimal graph exercising every v3 op
// (LayerNorm, GELU, MatMul in all three forms, Transpose) without the full
// built-in's weight volume.
func tinyTransformerGraph() *graph.Graph {
	g := graph.New("tiny-tf")
	const b, l, d, h = 1, 4, 8, 2
	g.AddNode(&graph.Node{Name: "x", Op: graph.OpInput, Outputs: []string{"x"},
		Attrs: &graph.InputAttrs{Shape: []int{b, l, d}}})

	gamma := tensor.New(d)
	beta := tensor.New(d)
	for i := 0; i < d; i++ {
		gamma.Data()[i] = 1
	}
	g.AddWeight("ln_g", gamma)
	g.AddWeight("ln_b", beta)
	g.AddNode(&graph.Node{Name: "ln", Op: graph.OpLayerNorm, Inputs: []string{"x"},
		Outputs: []string{"ln"}, WeightNames: []string{"ln_g", "ln_b"},
		Attrs: &graph.LayerNormAttrs{Eps: 1e-5}})

	w := tensor.New(d, d)
	tensor.FillRandom(w, 11, 0.3)
	g.AddWeight("w_q", w)
	g.AddNode(&graph.Node{Name: "q", Op: graph.OpMatMul, Inputs: []string{"ln"},
		Outputs: []string{"q"}, WeightNames: []string{"w_q"}, Attrs: &graph.MatMulAttrs{}})

	g.AddNode(&graph.Node{Name: "qk", Op: graph.OpMatMul, Inputs: []string{"q", "ln"},
		Outputs: []string{"qk"}, Attrs: &graph.MatMulAttrs{Heads: h, TransposeB: true, Scale: 0.5}})
	g.AddNode(&graph.Node{Name: "att", Op: graph.OpSoftmax, Inputs: []string{"qk"},
		Outputs: []string{"att"}, Attrs: &graph.SoftmaxAttrs{Axis: -1}})
	g.AddNode(&graph.Node{Name: "av", Op: graph.OpMatMul, Inputs: []string{"att", "ln"},
		Outputs: []string{"av"}, Attrs: &graph.MatMulAttrs{Heads: h}})
	g.AddNode(&graph.Node{Name: "gelu", Op: graph.OpGELU, Inputs: []string{"av"},
		Outputs: []string{"gelu"}})
	g.AddNode(&graph.Node{Name: "tp", Op: graph.OpTranspose, Inputs: []string{"gelu"},
		Outputs: []string{"tp"}, Attrs: &graph.TransposeAttrs{Perm: []int{0, 2, 1}}})

	g.InputNames = []string{"x"}
	g.OutputNames = []string{"tp"}
	return g
}

// TestV3RoundTripTransformer: the transformer op family survives the binary
// format bit-exactly, checked by reference inference on both graphs.
func TestV3RoundTripTransformer(t *testing.T) {
	for _, build := range []func() *graph.Graph{
		tinyTransformerGraph,
		func() *graph.Graph { g, _ := models.ByName("transformer"); return g },
	} {
		g := build()
		var buf bytes.Buffer
		if err := Save(g, &buf); err != nil {
			t.Fatal(err)
		}
		g2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		inShape := g.Node(g.InputNames[0]).Attrs.(*graph.InputAttrs).Shape
		in := tensor.New(inShape...)
		tensor.FillRandom(in, 5, 1)
		feeds := map[string]*tensor.Tensor{g.InputNames[0]: in}
		out1, err := session.RunReference(g, feeds)
		if err != nil {
			t.Fatal(err)
		}
		out2, err := session.RunReference(g2, feeds)
		if err != nil {
			t.Fatal(err)
		}
		name := g.OutputNames[0]
		if d := tensor.MaxAbsDiff(out1[name], out2[name]); d != 0 {
			t.Fatalf("%s: round trip changed inference by %g", g.Name, d)
		}
	}
}

// TestV3AttrsRoundTripExactly pins every new attr field through the codec.
func TestV3AttrsRoundTripExactly(t *testing.T) {
	g := tinyTransformerGraph()
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a := g2.Node("ln").Attrs.(*graph.LayerNormAttrs); a.Eps != 1e-5 {
		t.Errorf("LayerNorm eps = %v", a.Eps)
	}
	if a := g2.Node("qk").Attrs.(*graph.MatMulAttrs); a.Heads != 2 || !a.TransposeB || a.Scale != 0.5 {
		t.Errorf("QK attrs = %+v", a)
	}
	if a := g2.Node("av").Attrs.(*graph.MatMulAttrs); a.Heads != 2 || a.TransposeB || a.Scale != 0 {
		t.Errorf("AV attrs = %+v", a)
	}
	if a := g2.Node("q").Attrs.(*graph.MatMulAttrs); a.Heads != 0 || a.TransposeB {
		t.Errorf("weight-form attrs = %+v", a)
	}
	if a := g2.Node("tp").Attrs.(*graph.TransposeAttrs); len(a.Perm) != 3 || a.Perm[1] != 2 {
		t.Errorf("Transpose perm = %v", a.Perm)
	}
	if g2.Node("gelu").Attrs != nil {
		t.Errorf("GELU attrs = %+v, want nil", g2.Node("gelu").Attrs)
	}
}

// TestFutureVersionTypedError simulates an older reader meeting a
// newer-format file (the v2-only-reader-meets-v3-file scenario): the version
// gate must fire with the typed sentinel before any attr parsing happens.
func TestFutureVersionTypedError(t *testing.T) {
	g := tinyTransformerGraph()
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The version field is the second u32.
	binary.LittleEndian.PutUint32(data[4:8], Version+1)
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Load(v%d file) = %v, want ErrUnsupportedVersion", Version+1, err)
	}
	// Version 0 is equally out of range.
	binary.LittleEndian.PutUint32(data[4:8], 0)
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Load(v0 file) = %v, want ErrUnsupportedVersion", err)
	}
}

// TestV3JSONFrontendRoundTrip: the JSON dialect carries the transformer ops.
func TestV3JSONFrontendRoundTrip(t *testing.T) {
	g := tinyTransformerGraph()
	var buf bytes.Buffer
	if err := ExportJSON(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 4, 8)
	tensor.FillRandom(in, 8, 1)
	out1, err := session.RunReference(g, map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := session.RunReference(g2, map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out1["tp"], out2["tp"]); d != 0 {
		t.Fatalf("JSON round trip changed inference by %g", d)
	}
}

// FuzzLoad fuzzes the binary loader with a v3 seed (satellite 6): whatever
// the input, Load must return a graph or an error — never panic — and any
// successfully loaded graph must survive a second Save/Load round trip.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := Save(tinyTransformerGraph(), &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A truncated prefix and raw garbage exercise the error paths.
	f.Add(seed.Bytes()[:len(seed.Bytes())/3])
	f.Add([]byte("MNNGnot really"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Save(g, &buf); err != nil {
			t.Fatalf("Save(Load(fuzz)) failed: %v", err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Load(Save(Load(fuzz))) failed: %v", err)
		}
	})
}
