package converter

import (
	"bytes"
	"strings"
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/quant"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

func TestSaveLoadRoundTripAllNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trips every zoo network incl. resnet-50/inception-v3 (~19s)")
	}
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := models.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(g, &buf); err != nil {
				t.Fatal(err)
			}
			g2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if g2.Name != g.Name || len(g2.Nodes) != len(g.Nodes) || len(g2.Weights) != len(g.Weights) {
				t.Fatalf("structure mismatch: %d/%d nodes, %d/%d weights",
					len(g2.Nodes), len(g.Nodes), len(g2.Weights), len(g.Weights))
			}
			// Node-level equality.
			for i, n := range g.Nodes {
				n2 := g2.Nodes[i]
				if n.Name != n2.Name || n.Op != n2.Op {
					t.Fatalf("node %d differs: %s/%v vs %s/%v", i, n.Name, n.Op, n2.Name, n2.Op)
				}
			}
			// Weight bit-equality.
			for name, w := range g.Weights {
				w2 := g2.Weights[name]
				if w2 == nil {
					t.Fatalf("weight %q missing after round trip", name)
				}
				if tensor.MaxAbsDiff(w, w2) != 0 {
					t.Fatalf("weight %q changed", name)
				}
			}
		})
	}
}

func TestRoundTripPreservesInference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs inference on round-tripped networks (~15s)")
	}
	g := models.SqueezeNetV11()
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 3, 224, 224)
	tensor.FillRandom(in, 99, 1)
	out1, err := session.RunReference(g, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := session.RunReference(g2, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out1["prob"], out2["prob"]); d != 0 {
		t.Fatalf("round trip changed inference by %g", d)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Truncated valid prefix.
	g := models.SqueezeNetV11()
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestQuantizedModelRoundTrip(t *testing.T) {
	g := models.SqueezeNetV11()
	count, saved := quant.QuantizeWeights(g)
	if count == 0 || saved <= 0 {
		t.Fatalf("quantization did nothing: %d, %d", count, saved)
	}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Quantized weights must survive bit-exactly (int8 + scale).
	for name, w := range g.Weights {
		if w.DType() != tensor.Int8 {
			continue
		}
		w2 := g2.Weights[name]
		if w2.DType() != tensor.Int8 || w2.Quant.Scale != w.Quant.Scale {
			t.Fatalf("weight %q: dtype/scale mismatch", name)
		}
		for i := range w.Int8Data() {
			if w.Int8Data()[i] != w2.Int8Data()[i] {
				t.Fatalf("weight %q: int8 data mismatch", name)
			}
		}
	}
	// Size: quantized file should be much smaller than float.
	var fbuf bytes.Buffer
	if err := Save(models.SqueezeNetV11(), &fbuf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= fbuf.Len()*2/3 {
		t.Errorf("quantized size %d not < 2/3 of float size %d", buf.Len(), fbuf.Len())
	}
}

// TestActScalesRoundTrip: calibrated activation scales (format v2) must
// survive serialization exactly, and a scale-free graph must round-trip to a
// nil table.
func TestActScalesRoundTrip(t *testing.T) {
	g := models.SqueezeNetV11()
	g.ActScales = map[string]float32{"conv1": 0.125, "pool10": 3.5e-3, "prob": 1}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.ActScales) != len(g.ActScales) {
		t.Fatalf("got %d scales, want %d", len(g2.ActScales), len(g.ActScales))
	}
	for name, v := range g.ActScales {
		if g2.ActScales[name] != v {
			t.Fatalf("scale %q: got %v want %v", name, g2.ActScales[name], v)
		}
	}

	plain := models.SqueezeNetV11()
	buf.Reset()
	if err := Save(plain, &buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ActScales != nil {
		t.Fatalf("uncalibrated graph round-tripped %d scales", len(p2.ActScales))
	}
}

const tinyJSON = `{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 8, 8]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"],
     "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "stride": [1], "pad": [1], "outputs": 4, "relu": true}},
    {"name": "pool1", "op": "Pool", "inputs": ["conv1"],
     "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["pool1"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [4, 3, 3, 3], "init": "random", "seed": 3, "scale": 0.2},
    {"name": "b1", "shape": [4], "init": "zeros"}
  ]
}`

func TestParseJSONFrontend(t *testing.T) {
	g, err := ParseJSON(strings.NewReader(tinyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes: %d", len(g.Nodes))
	}
	conv := g.Node("conv1")
	a := conv.Attrs.(*graph.Conv2DAttrs)
	if a.KernelH != 3 || a.KernelW != 3 || !a.ReLU || a.OutputCount != 4 {
		t.Fatalf("conv attrs: %+v", a)
	}
	// Must run end to end.
	in := tensor.New(1, 3, 8, 8)
	tensor.FillRandom(in, 4, 1)
	outs, err := session.RunReference(g, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range outs["prob"].Data() {
		sum += float64(v)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("softmax sum %v", sum)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","nodes":[{"name":"n","op":"Bogus"}]}`,                         // unknown op
		`{"name":"x","nodes":[{"name":"n","op":"Conv2D","inputs":["missing"]}]}`,   // missing attrs
		`{"name":"x","weights":[{"name":"w","shape":[2],"data":[1,2,3]}]}`,         // bad length
		`{"name":"x","weights":[{"name":"w","shape":[2],"init":"gaussian"}]}`,      // bad init
		`{"name":"x","unknown_field":1}`,                                           // strict fields
	}
	for i, c := range cases {
		if _, err := ParseJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestExportImportJSON(t *testing.T) {
	g, err := ParseJSON(strings.NewReader(tinyJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 3, 8, 8)
	tensor.FillRandom(in, 5, 1)
	out1, _ := session.RunReference(g, map[string]*tensor.Tensor{"data": in})
	out2, _ := session.RunReference(g2, map[string]*tensor.Tensor{"data": in})
	if d := tensor.MaxAbsDiff(out1["prob"], out2["prob"]); d != 0 {
		t.Fatalf("JSON round trip changed inference by %g", d)
	}
}

func TestLoadSurvivesCorruption(t *testing.T) {
	// Flipping bytes anywhere in a valid model must produce an error or a
	// (possibly different) valid graph — never a panic or a hang.
	g, err := ParseJSON(strings.NewReader(tinyJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := tensor.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), data...)
		for flips := 0; flips <= trial%3; flips++ {
			pos := r.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Load panicked: %v", trial, p)
				}
			}()
			_, _ = Load(bytes.NewReader(corrupted))
		}()
	}
}

func TestLoadTruncationSweep(t *testing.T) {
	g, err := ParseJSON(strings.NewReader(tinyJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 97 {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes loaded successfully", cut)
		}
	}
}
