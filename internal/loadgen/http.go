package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mnn/internal/tensor"
	"mnn/serve"
)

// HTTPConfig points a load generator at a serve.Server speaking the
// KServe-style protocol, so the same RunSingleStream/RunConcurrent harness
// that measures in-process Engine.Infer can measure the network path
// end-to-end (JSON encode, HTTP, micro-batching, JSON decode).
type HTTPConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8500".
	BaseURL string
	// Model is the registry name to infer against.
	Model string
	// Client is the HTTP client to use. The default client keeps a deep
	// idle pool (http.DefaultClient only retains 2 idle conns per host,
	// which would re-dial constantly at in-flight ≥4 and skew the
	// measurement with TCP handshakes).
	Client *http.Client
	// Headers are added to every request (e.g. X-Request-Priority,
	// X-Request-Timeout for SLO-aware admission control).
	Headers map[string]string
}

// defaultClient is shared by every HTTP query func so all load-generator
// runs in a process reuse one keep-alive pool. The idle pool is as deep as
// the open-loop generator's MaxOutstanding default (256): an overload run
// parks its whole fan-out as warm connections instead of re-dialing, and
// MaxConnsPerHost caps total connections at the same mark so a shedding
// server is never hammered with TCP churn — the run measures the server's
// admission behaviour, not the client's connection storms.
var defaultClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 256,
	MaxConnsPerHost:     256,
	IdleConnTimeout:     90 * time.Second,
}}

// NewHTTPQuery pre-encodes one inference request for the given inputs and
// returns a query func for the load generators: each call POSTs the body,
// requires HTTP 200, and drains the response so connections are reused.
func NewHTTPQuery(cfg HTTPConfig, inputs map[string]*tensor.Tensor) (func() error, error) {
	if cfg.BaseURL == "" || cfg.Model == "" {
		return nil, fmt.Errorf("loadgen: HTTPConfig needs BaseURL and Model")
	}
	client := cfg.Client
	if client == nil {
		client = defaultClient
	}
	req := serve.InferRequest{}
	for name, t := range inputs {
		req.Inputs = append(req.Inputs, serve.EncodeTensor(name, t))
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: encoding infer request: %w", err)
	}
	url := cfg.BaseURL + "/v2/models/" + cfg.Model + "/infer"
	return func() error {
		hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("loadgen: %s: %w", url, err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		for k, v := range cfg.Headers {
			hreq.Header.Set(k, v)
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return fmt.Errorf("loadgen: %s: %w", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			// Admission control rejected the query; drain for keep-alive and
			// classify as shed so open-loop overload runs count it apart.
			_, _ = io.Copy(io.Discard, resp.Body)
			return fmt.Errorf("%w: %s (Retry-After %s)", ErrShed, url, resp.Header.Get("Retry-After"))
		}
		if resp.StatusCode != http.StatusOK {
			blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			return fmt.Errorf("loadgen: %s: HTTP %d: %s", url, resp.StatusCode, blob)
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}, nil
}
