package loadgen

import (
	"net"
	"strings"
	"testing"

	"mnn"
	"mnn/internal/tensor"
	"mnn/serve"
)

const tinyHTTPModel = `{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 8, 8]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"], "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "pad": [1], "outputs": 4, "relu": true}},
    {"name": "gap", "op": "Pool", "inputs": ["conv1"], "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["gap"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [4, 3, 3, 3], "init": "random", "seed": 1, "scale": 0.3},
    {"name": "b1", "shape": [4], "init": "random", "seed": 2, "scale": 0.1}
  ]
}`

// TestHTTPQueryDrivesServer runs the concurrent generator against a live
// serve.Server over loopback HTTP — the bench harness's end-to-end path.
func TestHTTPQueryDrivesServer(t *testing.T) {
	g, err := mnn.ParseJSONModel(strings.NewReader(tinyHTTPModel))
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Load("tiny", serve.ModelConfig{Model: g, Options: []mnn.Option{mnn.WithPoolSize(2)}}); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(t.Context()) })

	in := tensor.New(1, 3, 8, 8)
	tensor.FillRandom(in, 3, 1)
	query, err := NewHTTPQuery(HTTPConfig{
		BaseURL: "http://" + l.Addr().String(),
		Model:   "tiny",
	}, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrent(query, ConcurrentConfig{InFlight: 4, MinQueryCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryCount < 16 || st.QPSWithLoadgen <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A query against a missing model reports the HTTP status and body.
	bad, err := NewHTTPQuery(HTTPConfig{
		BaseURL: "http://" + l.Addr().String(),
		Model:   "ghost",
	}, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing model query = %v, want HTTP 404 error", err)
	}

	if _, err := NewHTTPQuery(HTTPConfig{}, nil); err == nil {
		t.Fatal("empty HTTPConfig must be rejected")
	}
}
