package loadgen

import (
	"net"
	"net/http"
	"strings"
	"testing"

	"mnn"
	"mnn/internal/tensor"
	"mnn/serve"
)

const tinyHTTPModel = `{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 8, 8]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"], "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "pad": [1], "outputs": 4, "relu": true}},
    {"name": "gap", "op": "Pool", "inputs": ["conv1"], "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["gap"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [4, 3, 3, 3], "init": "random", "seed": 1, "scale": 0.3},
    {"name": "b1", "shape": [4], "init": "random", "seed": 2, "scale": 0.1}
  ]
}`

// TestHTTPQueryDrivesServer runs the concurrent generator against a live
// serve.Server over loopback HTTP — the bench harness's end-to-end path.
func TestHTTPQueryDrivesServer(t *testing.T) {
	g, err := mnn.ParseJSONModel(strings.NewReader(tinyHTTPModel))
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Load("tiny", serve.ModelConfig{Model: g, Options: []mnn.Option{mnn.WithPoolSize(2)}}); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(t.Context()) })

	in := tensor.New(1, 3, 8, 8)
	tensor.FillRandom(in, 3, 1)
	query, err := NewHTTPQuery(HTTPConfig{
		BaseURL: "http://" + l.Addr().String(),
		Model:   "tiny",
	}, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrent(query, ConcurrentConfig{InFlight: 4, MinQueryCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryCount < 16 || st.QPSWithLoadgen <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A query against a missing model reports the HTTP status and body.
	bad, err := NewHTTPQuery(HTTPConfig{
		BaseURL: "http://" + l.Addr().String(),
		Model:   "ghost",
	}, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing model query = %v, want HTTP 404 error", err)
	}

	if _, err := NewHTTPQuery(HTTPConfig{}, nil); err == nil {
		t.Fatal("empty HTTPConfig must be rejected")
	}
}

// TestSharedTransportCaps: queries that don't bring their own client share
// one pooled transport whose connection cap matches the open-loop
// generator's MaxOutstanding default — overload runs must saturate the
// server's admission queue, not the client's dialer.
func TestSharedTransportCaps(t *testing.T) {
	tr, ok := defaultClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", defaultClient.Transport)
	}
	if tr.MaxConnsPerHost < 256 {
		t.Errorf("MaxConnsPerHost %d cannot carry MaxOutstanding=256 open-loop runs", tr.MaxConnsPerHost)
	}
	if tr.MaxIdleConnsPerHost < tr.MaxConnsPerHost {
		t.Errorf("idle pool per host (%d) smaller than the conn cap (%d): the tail of an overload run re-dials",
			tr.MaxIdleConnsPerHost, tr.MaxConnsPerHost)
	}
	if tr.DisableKeepAlives {
		t.Error("keep-alives disabled on the shared transport")
	}
}
