package loadgen_test

import (
	"context"
	"runtime"
	"testing"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
)

// driveEngine measures Engine.Infer throughput for mobilenet-v1 at the given
// pool size and in-flight request count.
func driveEngine(t *testing.T, poolSize, inFlight, queries int) loadgen.Stats {
	t.Helper()
	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(1), mnn.WithPoolSize(poolSize))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tensor.New(1, 3, 224, 224)
	tensor.FillRandom(in, 1, 1)
	query := func() error {
		_, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
		return err
	}
	if err := query(); err != nil { // warm up
		t.Fatal(err)
	}
	st, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
		InFlight: inFlight, MinQueryCount: queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEnginePoolThroughputSmoke is the issue's -short loadgen smoke: with 4
// requests in flight, a pool of 4 prepared sessions must beat a pool of 1 on
// aggregate mobilenet-v1 throughput. The comparison needs real CPU
// parallelism, so on a single-core host the numbers are reported but the
// assertion is skipped.
func TestEnginePoolThroughputSmoke(t *testing.T) {
	const inFlight, queries = 4, 6
	singleCPU := runtime.GOMAXPROCS(0) < 2
	// One retry absorbs scheduler noise on shared CI runners: fail only if
	// pool 4 loses both attempts.
	var p1, p4 loadgen.Stats
	for attempt := 0; attempt < 2; attempt++ {
		p1 = driveEngine(t, 1, inFlight, queries)
		p4 = driveEngine(t, 4, inFlight, queries)
		t.Logf("mobilenet-v1, %d in flight: pool1 %.2f qps (p90 %v), pool4 %.2f qps (p90 %v)",
			inFlight, p1.QPSWithLoadgen, p1.P90Latency, p4.QPSWithLoadgen, p4.P90Latency)
		if singleCPU || p4.QPSWithLoadgen > p1.QPSWithLoadgen {
			break
		}
	}
	if singleCPU {
		t.Skipf("GOMAXPROCS=%d: pool scaling needs ≥2 CPUs, throughput comparison not meaningful",
			runtime.GOMAXPROCS(0))
	}
	if p4.QPSWithLoadgen <= p1.QPSWithLoadgen {
		t.Fatalf("pool4 throughput %.2f qps did not beat pool1 %.2f qps in two attempts",
			p4.QPSWithLoadgen, p1.QPSWithLoadgen)
	}
}

// TestEngineInFlightSweep drives Engine.Infer at 1/4/16 in-flight requests
// (the issue's throughput measurement) against a pooled engine and checks the
// generator stays healthy at every level; the throughput ordering itself is
// hardware-dependent, so it is logged rather than asserted.
func TestEngineInFlightSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes ~10s at mobilenet-v1 host latency; smoke covers -short")
	}
	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(1), mnn.WithPoolSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tensor.New(1, 3, 224, 224)
	tensor.FillRandom(in, 1, 1)
	query := func() error {
		_, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
		return err
	}
	if err := query(); err != nil {
		t.Fatal(err)
	}
	for _, inFlight := range []int{1, 4, 16} {
		st, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
			InFlight: inFlight, MinQueryCount: 8,
		})
		if err != nil {
			t.Fatalf("in-flight %d: %v", inFlight, err)
		}
		if st.QueryCount != 8 || st.QPSWithLoadgen <= 0 {
			t.Fatalf("in-flight %d: degenerate stats %+v", inFlight, st)
		}
		t.Logf("in-flight %2d: %.2f qps, p50 %v, p99 %v",
			inFlight, st.QPSWithLoadgen, st.P50Latency, st.P99Latency)
	}
}
