package loadgen

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRunConcurrentCounts(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	st, err := RunConcurrent(func() error {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil
	}, ConcurrentConfig{InFlight: 4, MinQueryCount: 32})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 32 || st.QueryCount != 32 {
		t.Fatalf("calls=%d stats=%d, want 32", calls, st.QueryCount)
	}
	if st.QPSWithLoadgen <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestRunConcurrentDefaultsAndValidation(t *testing.T) {
	st, err := RunConcurrent(func() error { return nil }, ConcurrentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryCount != 64 {
		t.Fatalf("default min query count: %d, want 64", st.QueryCount)
	}
	if _, err := RunConcurrent(func() error { return nil },
		ConcurrentConfig{MinQueryCount: 10, MaxQueryCount: 5}); err == nil {
		t.Fatal("max < min must fail")
	}
}

func TestRunConcurrentPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	n := 0
	_, err := RunConcurrent(func() error {
		mu.Lock()
		n++
		me := n
		mu.Unlock()
		if me == 3 {
			return boom
		}
		return nil
	}, ConcurrentConfig{InFlight: 2, MinQueryCount: 1000})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n >= 1000 {
		t.Fatal("run must stop promptly after the first error")
	}
}

func TestRunConcurrentMinDuration(t *testing.T) {
	st, err := RunConcurrent(func() error {
		time.Sleep(time.Millisecond)
		return nil
	}, ConcurrentConfig{InFlight: 2, MinQueryCount: 2, MaxQueryCount: 1000,
		MinDuration: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryCount < 4 {
		t.Fatalf("duration-driven run issued only %d queries", st.QueryCount)
	}
	// With no explicit MaxQueryCount the duration must still govern the run
	// instead of being cut off at the default query cap.
	t0 := time.Now()
	st, err = RunConcurrent(func() error { return nil },
		ConcurrentConfig{InFlight: 2, MinQueryCount: 2, MinDuration: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("run ended after %v, before MinDuration", elapsed)
	}
	if st.QueryCount <= 64 {
		t.Fatalf("duration-bounded run stopped at the default cap (%d queries)", st.QueryCount)
	}
}

// Sleep-bound queries overlap regardless of core count, so higher in-flight
// must raise aggregate throughput — this pins the generator's concurrency
// machinery without depending on host CPU parallelism.
func TestRunConcurrentOverlapsSleepQueries(t *testing.T) {
	run := func(inFlight int) Stats {
		st, err := RunConcurrent(func() error {
			time.Sleep(5 * time.Millisecond)
			return nil
		}, ConcurrentConfig{InFlight: inFlight, MinQueryCount: 16})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(1)
	par := run(4)
	if par.QPSWithLoadgen < 2*seq.QPSWithLoadgen {
		t.Fatalf("in-flight 4 QPS %.1f not ≥ 2× in-flight 1 QPS %.1f",
			par.QPSWithLoadgen, seq.QPSWithLoadgen)
	}
}
