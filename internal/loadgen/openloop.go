package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed marks a query rejected by server-side admission control (HTTP
// 429). Open-loop runs count shed queries separately from failures: under
// deliberate overload, rejections are the system working as designed.
var ErrShed = errors.New("loadgen: query shed")

// OpenLoopConfig drives queries at a fixed arrival rate regardless of how
// fast responses come back — the MLPerf "server" scenario shape. Unlike the
// closed-loop runners, a slow server does not slow the generator down, so
// queue growth, shedding and goodput collapse become observable.
type OpenLoopConfig struct {
	// Rate is the arrival rate in queries/second (required).
	Rate float64
	// Duration is the offered-load window; arrivals stop after it and the
	// run drains outstanding queries (required).
	Duration time.Duration
	// MaxOutstanding caps concurrent in-flight queries (a real client pool
	// is finite too); arrivals past the cap are dropped client-side and
	// counted in Dropped. 0 means 256.
	MaxOutstanding int
}

// OpenLoopStats reports one open-loop run. Offered = Issued + Dropped;
// Issued = Completed + Shed + Failed.
type OpenLoopStats struct {
	Offered   int // arrivals the schedule generated
	Issued    int // queries actually sent
	Completed int // HTTP 200 (or query() == nil)
	Shed      int // rejected by admission control (ErrShed)
	Failed    int // any other error
	Dropped   int // client-side drops at MaxOutstanding

	// GoodputQPS is completed queries per second of wall time, drain
	// included — what the system actually delivered under the offered load.
	GoodputQPS float64
	// ShedRate is Shed / Issued.
	ShedRate float64

	// Latency distribution over completed queries only.
	MinLatency  time.Duration
	MeanLatency time.Duration
	P50Latency  time.Duration
	P90Latency  time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration

	// FirstError is the first non-shed failure, for diagnostics.
	FirstError error
}

// RunOpenLoop issues query() at cfg.Rate for cfg.Duration, never waiting
// for responses before the next arrival (open loop). Queries that return an
// error wrapping ErrShed count as shed; other errors count as failed and do
// not stop the run.
func RunOpenLoop(query func() error, cfg OpenLoopConfig) (OpenLoopStats, error) {
	if cfg.Rate <= 0 {
		return OpenLoopStats{}, fmt.Errorf("loadgen: open loop needs a positive rate, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return OpenLoopStats{}, fmt.Errorf("loadgen: open loop needs a positive duration, got %v", cfg.Duration)
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 256
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		st        OpenLoopStats
		latencies []time.Duration
		inflight  int
	)
	start := time.Now()
	for i := 0; ; i++ {
		// Absolute schedule: arrival i fires at start + i·interval, so a
		// slow dispatch doesn't stretch the offered rate.
		next := start.Add(time.Duration(i) * interval)
		if next.Sub(start) >= cfg.Duration {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		st.Offered++
		mu.Lock()
		if inflight >= cfg.MaxOutstanding {
			st.Dropped++
			mu.Unlock()
			continue
		}
		inflight++
		mu.Unlock()
		st.Issued++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			err := query()
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			inflight--
			switch {
			case err == nil:
				st.Completed++
				latencies = append(latencies, lat)
			case errors.Is(err, ErrShed):
				st.Shed++
			default:
				st.Failed++
				if st.FirstError == nil {
					st.FirstError = err
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if wall > 0 {
		st.GoodputQPS = float64(st.Completed) / wall.Seconds()
	}
	if st.Issued > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Issued)
	}
	lat := summarize(latencies, wall)
	st.MinLatency = lat.MinLatency
	st.MeanLatency = lat.MeanLatency
	st.P50Latency = lat.P50Latency
	st.P90Latency = lat.P90Latency
	st.P99Latency = lat.P99Latency
	st.MaxLatency = lat.MaxLatency
	return st, nil
}
