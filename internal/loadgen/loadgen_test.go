package loadgen

import (
	"errors"
	"testing"
	"time"
)

func TestRunSingleStreamCounts(t *testing.T) {
	calls := 0
	st, err := RunSingleStream(func() error {
		calls++
		return nil
	}, Config{MinQueryCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 50 || st.QueryCount != 50 {
		t.Fatalf("calls=%d stats=%d", calls, st.QueryCount)
	}
	if st.QPSWithLoadgen <= 0 || st.QPSWithoutLoadgen <= 0 {
		t.Fatalf("QPS not computed: %+v", st)
	}
	// Loadgen overhead means with-loadgen QPS ≤ without-loadgen QPS.
	if st.QPSWithLoadgen > st.QPSWithoutLoadgen*1.05 {
		t.Errorf("with-loadgen QPS %.1f should not exceed pure QPS %.1f", st.QPSWithLoadgen, st.QPSWithoutLoadgen)
	}
}

func TestRunSingleStreamMaxCap(t *testing.T) {
	calls := 0
	_, err := RunSingleStream(func() error {
		calls++
		return nil
	}, Config{MinQueryCount: 10, MaxQueryCount: 10, MinDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("max cap ignored: %d calls", calls)
	}
}

func TestRunSingleStreamError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := RunSingleStream(func() error { return boom }, Config{MinQueryCount: 5}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := RunSingleStream(func() error { return nil }, Config{MinQueryCount: 10, MaxQueryCount: 5}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestLatencyStatsOrdering(t *testing.T) {
	d := 0
	st, err := RunSingleStream(func() error {
		d++
		time.Sleep(time.Duration(d%5) * 100 * time.Microsecond)
		return nil
	}, Config{MinQueryCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !(st.MinLatency <= st.P50Latency && st.P50Latency <= st.P90Latency &&
		st.P90Latency <= st.P99Latency && st.P99Latency <= st.MaxLatency) {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	if st.MeanLatency < st.MinLatency || st.MeanLatency > st.MaxLatency {
		t.Fatalf("mean outside range: %+v", st)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 50); p != 5 {
		t.Errorf("p50 = %d", p)
	}
	if p := percentile(sorted, 90); p != 9 {
		t.Errorf("p90 = %d", p)
	}
	if p := percentile(sorted, 99); p != 10 {
		t.Errorf("p99 = %d", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}
