package loadgen

import (
	"fmt"
	"sync"
	"time"
)

// ConcurrentConfig parameterizes RunConcurrent, the multi-stream counterpart
// of the MLPerf single-stream generator: keep InFlight queries outstanding
// at all times and measure aggregate throughput, the serving regime the
// pooled Engine API is built for.
type ConcurrentConfig struct {
	// InFlight is the number of concurrently outstanding queries (1 reduces
	// to single-stream issue order, though latencies are still measured per
	// worker). Typical sweep: 1, 4, 16.
	InFlight int
	// MinQueryCount is the lower bound on issued queries (default 64).
	MinQueryCount int
	// MaxQueryCount caps the run. 0 means MinQueryCount, or effectively
	// unbounded when MinDuration is set.
	MaxQueryCount int
	// MinDuration keeps issuing until this much time has passed.
	MinDuration time.Duration
}

// RunConcurrent drives query() from cfg.InFlight goroutines until the query
// budget and duration are met. The returned Stats aggregate all workers:
// QPSWithLoadgen is wall-clock throughput, the latency percentiles are over
// individual query latencies (which include any queueing inside query, e.g.
// waiting for a pooled session). The first query error stops the run.
func RunConcurrent(query func() error, cfg ConcurrentConfig) (Stats, error) {
	if cfg.InFlight < 1 {
		cfg.InFlight = 1
	}
	if cfg.MinQueryCount <= 0 {
		cfg.MinQueryCount = 64
	}
	if cfg.MaxQueryCount <= 0 {
		if cfg.MinDuration > 0 {
			cfg.MaxQueryCount = int(^uint(0) >> 1) // duration-bounded run
		} else {
			cfg.MaxQueryCount = cfg.MinQueryCount
		}
	}
	if cfg.MaxQueryCount < cfg.MinQueryCount {
		return Stats{}, fmt.Errorf("loadgen: max_query_count %d < min_query_count %d", cfg.MaxQueryCount, cfg.MinQueryCount)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		issued    int
		firstErr  error
	)
	wallStart := time.Now()
	// next reserves one query slot, honouring min/max counts and duration;
	// it returns false once the run is over or a worker failed.
	next := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || issued >= cfg.MaxQueryCount {
			return false
		}
		if issued >= cfg.MinQueryCount && time.Since(wallStart) >= cfg.MinDuration {
			return false
		}
		issued++
		return true
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.InFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next() {
				t0 := time.Now()
				err := query()
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)
	if firstErr != nil {
		return Stats{}, fmt.Errorf("loadgen: concurrent query: %w", firstErr)
	}
	return summarize(latencies, wall), nil
}
