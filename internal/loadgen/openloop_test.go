package loadgen

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpenLoopOfferedRate(t *testing.T) {
	var calls atomic.Int64
	st, err := RunOpenLoop(func() error {
		calls.Add(1)
		return nil
	}, OpenLoopConfig{Rate: 200, Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 200 qps × 0.5 s = 100 arrivals; the absolute schedule keeps the count
	// exact even if individual dispatches lag.
	if st.Offered != 100 {
		t.Fatalf("offered %d arrivals, want 100", st.Offered)
	}
	if st.Issued != 100 || st.Completed != 100 || int(calls.Load()) != 100 {
		t.Fatalf("issued %d / completed %d / called %d, want all 100", st.Issued, st.Completed, calls.Load())
	}
	if st.Shed != 0 || st.Failed != 0 || st.Dropped != 0 {
		t.Fatalf("shed %d / failed %d / dropped %d, want zeroes", st.Shed, st.Failed, st.Dropped)
	}
	if st.GoodputQPS <= 0 {
		t.Fatalf("goodput %.1f, want > 0", st.GoodputQPS)
	}
}

func TestOpenLoopClassifiesShedAndFailed(t *testing.T) {
	var n atomic.Int64
	boom := errors.New("boom")
	st, err := RunOpenLoop(func() error {
		switch n.Add(1) % 3 {
		case 0:
			return fmt.Errorf("server said no: %w", ErrShed)
		case 1:
			return boom
		}
		return nil
	}, OpenLoopConfig{Rate: 300, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 || st.Failed == 0 || st.Completed == 0 {
		t.Fatalf("shed %d / failed %d / completed %d, want all non-zero", st.Shed, st.Failed, st.Completed)
	}
	if st.Shed+st.Failed+st.Completed != st.Issued {
		t.Fatalf("shed+failed+completed = %d, issued = %d", st.Shed+st.Failed+st.Completed, st.Issued)
	}
	if !errors.Is(st.FirstError, boom) {
		t.Fatalf("FirstError = %v, want boom", st.FirstError)
	}
	wantRate := float64(st.Shed) / float64(st.Issued)
	if st.ShedRate != wantRate {
		t.Fatalf("ShedRate = %v, want %v", st.ShedRate, wantRate)
	}
}

func TestOpenLoopDropsAtMaxOutstanding(t *testing.T) {
	release := make(chan struct{})
	// Queries block past the arrival window, so the cap pins Issued at 4;
	// release them only after arrivals have stopped or the drain deadlocks.
	timer := time.AfterFunc(300*time.Millisecond, func() { close(release) })
	defer timer.Stop()
	st, err := RunOpenLoop(func() error {
		<-release
		return nil
	}, OpenLoopConfig{Rate: 500, Duration: 200 * time.Millisecond, MaxOutstanding: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 4 {
		t.Fatalf("issued %d with MaxOutstanding 4 and queries that never return, want 4", st.Issued)
	}
	if st.Dropped != st.Offered-4 {
		t.Fatalf("dropped %d of %d offered, want %d", st.Dropped, st.Offered, st.Offered-4)
	}
}

func TestOpenLoopRejectsBadConfig(t *testing.T) {
	if _, err := RunOpenLoop(func() error { return nil }, OpenLoopConfig{Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := RunOpenLoop(func() error { return nil }, OpenLoopConfig{Rate: 10}); err == nil {
		t.Fatal("duration 0 accepted")
	}
}
