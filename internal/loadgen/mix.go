package loadgen

import (
	"fmt"
	"sync/atomic"
)

// RoundRobin interleaves query funcs into one mixed workload: the i-th
// call overall runs queries[i mod len(queries)]. The counter is atomic, so
// the returned func is safe for the concurrent and open-loop generators,
// which issue from many goroutines — under concurrency the interleave is
// fair in aggregate rather than strictly ordered. Use it to offer a
// mixed-shape stream to a bucketed batcher from a single generator run.
func RoundRobin(queries ...func() error) (func() error, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("loadgen: RoundRobin needs at least one query")
	}
	if len(queries) == 1 {
		return queries[0], nil
	}
	var n atomic.Uint64
	return func() error {
		return queries[(n.Add(1)-1)%uint64(len(queries))]()
	}, nil
}
