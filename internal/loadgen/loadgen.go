// Package loadgen reimplements the MLPerf-inference single-stream load
// generator used for the paper's Appendix A benchmark (Table 7): issue one
// query at a time, measure per-query latency, and report QPS with and
// without the generator's own overhead plus a latency distribution.
package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Config mirrors the MLPerf single-stream knobs the paper reports.
type Config struct {
	// MinQueryCount is the lower bound on issued queries (MLPerf: 1024).
	MinQueryCount int
	// MaxQueryCount caps the run (MLPerf: 5000). 0 means MinQueryCount.
	MaxQueryCount int
	// MinDuration keeps issuing until this much time has passed.
	MinDuration time.Duration
}

// Stats matches the rows of Table 7.
type Stats struct {
	QueryCount            int
	QPSWithLoadgen        float64 // wall-clock queries/second incl. harness
	QPSWithoutLoadgen     float64 // based on summed query latencies only
	MinLatency            time.Duration
	MaxLatency            time.Duration
	MeanLatency           time.Duration
	P50Latency            time.Duration
	P90Latency            time.Duration
	P99Latency            time.Duration
	LoadgenOverheadPerQry time.Duration
}

// RunSingleStream drives query() in MLPerf single-stream mode.
func RunSingleStream(query func() error, cfg Config) (Stats, error) {
	if cfg.MinQueryCount <= 0 {
		cfg.MinQueryCount = 1024
	}
	if cfg.MaxQueryCount <= 0 {
		cfg.MaxQueryCount = cfg.MinQueryCount
	}
	if cfg.MaxQueryCount < cfg.MinQueryCount {
		return Stats{}, fmt.Errorf("loadgen: max_query_count %d < min_query_count %d", cfg.MaxQueryCount, cfg.MinQueryCount)
	}
	latencies := make([]time.Duration, 0, cfg.MinQueryCount)
	wallStart := time.Now()
	for {
		issued := len(latencies)
		if issued >= cfg.MaxQueryCount {
			break
		}
		if issued >= cfg.MinQueryCount && time.Since(wallStart) >= cfg.MinDuration {
			break
		}
		t0 := time.Now()
		if err := query(); err != nil {
			return Stats{}, fmt.Errorf("loadgen: query %d: %w", issued, err)
		}
		latencies = append(latencies, time.Since(t0))
	}
	wall := time.Since(wallStart)
	return summarize(latencies, wall), nil
}

func summarize(latencies []time.Duration, wall time.Duration) Stats {
	n := len(latencies)
	st := Stats{QueryCount: n}
	if n == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	st.MinLatency = sorted[0]
	st.MaxLatency = sorted[n-1]
	st.MeanLatency = sum / time.Duration(n)
	st.P50Latency = percentile(sorted, 50)
	st.P90Latency = percentile(sorted, 90)
	st.P99Latency = percentile(sorted, 99)
	st.QPSWithLoadgen = float64(n) / wall.Seconds()
	if sum > 0 {
		st.QPSWithoutLoadgen = float64(n) / sum.Seconds()
	}
	if overhead := wall - sum; overhead > 0 {
		st.LoadgenOverheadPerQry = overhead / time.Duration(n)
	}
	return st
}

// percentile returns the pth percentile of a sorted slice (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
