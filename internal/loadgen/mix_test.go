package loadgen

import (
	"sync"
	"testing"
)

func TestRoundRobinInterleaves(t *testing.T) {
	if _, err := RoundRobin(); err == nil {
		t.Fatal("empty RoundRobin accepted")
	}
	counts := make([]int, 3)
	queries := make([]func() error, len(counts))
	var mu sync.Mutex
	for i := range queries {
		i := i
		queries[i] = func() error {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return nil
		}
	}
	q, err := RoundRobin(queries...)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 30
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := q(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i, c := range counts {
		if c != rounds/len(counts) {
			t.Fatalf("query %d ran %d times, want %d: %v", i, c, rounds/len(counts), counts)
		}
	}
}
