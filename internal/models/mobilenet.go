package models

import (
	"fmt"

	"mnn/internal/graph"
)

// MobileNetV1 builds MobileNet-v1 (Howard et al., 2017) at width 1.0 for
// 224×224 input: a 3×3 stem followed by 13 depthwise-separable blocks, then
// global average pooling and a 1000-way classifier.
func MobileNetV1() *graph.Graph {
	b := newBuilder("mobilenet-v1", 0x1001)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 32, convOpts{kh: 3, sh: 2, ph: 1, pw: 1, relu: true})

	// (oc, stride) per separable block.
	blocks := []struct{ oc, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	ic := 32
	for i, blk := range blocks {
		dw := fmt.Sprintf("conv%d_dw", i+2)
		pw := fmt.Sprintf("conv%d_pw", i+2)
		x = b.conv(dw, x, ic, ic, convOpts{kh: 3, sh: blk.stride, ph: 1, pw: 1, group: ic, relu: true})
		x = b.conv(pw, x, ic, blk.oc, convOpts{kh: 1, relu: true})
		ic = blk.oc
	}
	x = b.globalAvgPool("pool6", x)
	x = b.fc("fc7", x, 1024, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}

// MobileNetV2 builds MobileNet-v2 (inverted residual bottlenecks with
// ReLU6) at width 1.0 for 224×224 input.
func MobileNetV2() *graph.Graph {
	b := newBuilder("mobilenet-v2", 0x1002)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 32, convOpts{kh: 3, sh: 2, ph: 1, pw: 1, relu6: true})

	ic := 32
	blockIdx := 0
	bottleneck := func(x string, oc, stride, expand int) string {
		blockIdx++
		prefix := fmt.Sprintf("block%d", blockIdx)
		mid := ic * expand
		y := x
		if expand != 1 {
			y = b.conv(prefix+"_expand", y, ic, mid, convOpts{kh: 1, relu6: true})
		}
		y = b.conv(prefix+"_dw", y, mid, mid, convOpts{kh: 3, sh: stride, ph: 1, pw: 1, group: mid, relu6: true})
		y = b.conv(prefix+"_project", y, mid, oc, convOpts{kh: 1})
		if stride == 1 && ic == oc {
			y = b.add(prefix+"_add", x, y)
		}
		ic = oc
		return y
	}

	// (expansion, oc, repeats, stride) per stage, per the paper.
	stages := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for _, st := range stages {
		for r := 0; r < st.n; r++ {
			stride := st.s
			if r > 0 {
				stride = 1
			}
			x = bottleneck(x, st.c, stride, st.t)
		}
	}
	x = b.conv("conv_last", x, 320, 1280, convOpts{kh: 1, relu6: true})
	x = b.globalAvgPool("pool", x)
	x = b.fc("fc", x, 1280, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}
