package models

import (
	"fmt"

	"mnn/internal/graph"
)

// InceptionV3 builds Inception-v3 (Szegedy et al.) for 299×299 input. The
// B-blocks contain the 1×7 and 7×1 convolutions that expose the
// case-by-case optimization bottleneck of the paper's Figure 8.
func InceptionV3() *graph.Graph {
	b := newBuilder("inception-v3", 0x1007)
	x := b.input("data", 1, 3, 299, 299)

	cbr := func(name, in string, ic, oc int, o convOpts) string {
		o.relu = true
		return b.conv(name, in, ic, oc, o)
	}

	// Stem: 299 → 35×35×192.
	x = cbr("conv1", x, 3, 32, convOpts{kh: 3, sh: 2})
	x = cbr("conv2", x, 32, 32, convOpts{kh: 3})
	x = cbr("conv3", x, 32, 64, convOpts{kh: 3, ph: 1, pw: 1})
	x = b.maxPool("pool1", x, 3, 2, 0)
	x = cbr("conv4", x, 64, 80, convOpts{kh: 1})
	x = cbr("conv5", x, 80, 192, convOpts{kh: 3})
	x = b.maxPool("pool2", x, 3, 2, 0)
	ic := 192

	// Inception-A ×3 (35×35).
	inceptionA := func(name, in string, poolProj int) string {
		b1 := cbr(name+"_1x1", in, ic, 64, convOpts{kh: 1})
		b5 := cbr(name+"_5x5_reduce", in, ic, 48, convOpts{kh: 1})
		b5 = cbr(name+"_5x5", b5, 48, 64, convOpts{kh: 5, ph: 2, pw: 2})
		b3 := cbr(name+"_3x3_reduce", in, ic, 64, convOpts{kh: 1})
		b3 = cbr(name+"_3x3a", b3, 64, 96, convOpts{kh: 3, ph: 1, pw: 1})
		b3 = cbr(name+"_3x3b", b3, 96, 96, convOpts{kh: 3, ph: 1, pw: 1})
		bp := b.avgPool(name+"_pool", in, 3, 1, 1)
		bp = cbr(name+"_pool_proj", bp, ic, poolProj, convOpts{kh: 1})
		out := b.concat(name+"_concat", b1, b5, b3, bp)
		ic = 64 + 64 + 96 + poolProj
		return out
	}
	x = inceptionA("mixed0", x, 32)  // 256
	x = inceptionA("mixed1", x, 64)  // 288
	x = inceptionA("mixed2", x, 64)  // 288

	// Reduction-A: 35 → 17.
	{
		in := x
		b3 := cbr("mixed3_3x3", in, ic, 384, convOpts{kh: 3, sh: 2})
		bd := cbr("mixed3_dbl_reduce", in, ic, 64, convOpts{kh: 1})
		bd = cbr("mixed3_dbl_a", bd, 64, 96, convOpts{kh: 3, ph: 1, pw: 1})
		bd = cbr("mixed3_dbl_b", bd, 96, 96, convOpts{kh: 3, sh: 2})
		bp := b.maxPool("mixed3_pool", in, 3, 2, 0)
		x = b.concat("mixed3_concat", b3, bd, bp)
		ic = 384 + 96 + ic
	}

	// Inception-B ×4 (17×17) — the 1×7/7×1 factorized convolutions.
	inceptionB := func(name, in string, c7 int) string {
		b1 := cbr(name+"_1x1", in, ic, 192, convOpts{kh: 1})
		b7 := cbr(name+"_7x7_reduce", in, ic, c7, convOpts{kh: 1})
		b7 = cbr(name+"_1x7", b7, c7, c7, convOpts{kh: 1, kw: 7, ph: 0, pw: 3})
		b7 = cbr(name+"_7x1", b7, c7, 192, convOpts{kh: 7, kw: 1, ph: 3, pw: 0})
		bd := cbr(name+"_dbl_reduce", in, ic, c7, convOpts{kh: 1})
		bd = cbr(name+"_dbl_7x1a", bd, c7, c7, convOpts{kh: 7, kw: 1, ph: 3, pw: 0})
		bd = cbr(name+"_dbl_1x7a", bd, c7, c7, convOpts{kh: 1, kw: 7, ph: 0, pw: 3})
		bd = cbr(name+"_dbl_7x1b", bd, c7, c7, convOpts{kh: 7, kw: 1, ph: 3, pw: 0})
		bd = cbr(name+"_dbl_1x7b", bd, c7, 192, convOpts{kh: 1, kw: 7, ph: 0, pw: 3})
		bp := b.avgPool(name+"_pool", in, 3, 1, 1)
		bp = cbr(name+"_pool_proj", bp, ic, 192, convOpts{kh: 1})
		out := b.concat(name+"_concat", b1, b7, bd, bp)
		ic = 4 * 192
		return out
	}
	x = inceptionB("mixed4", x, 128)
	x = inceptionB("mixed5", x, 160)
	x = inceptionB("mixed6", x, 160)
	x = inceptionB("mixed7", x, 192)

	// Reduction-B: 17 → 8.
	{
		in := x
		b3 := cbr("mixed8_3x3_reduce", in, ic, 192, convOpts{kh: 1})
		b3 = cbr("mixed8_3x3", b3, 192, 320, convOpts{kh: 3, sh: 2})
		b7 := cbr("mixed8_7x7_reduce", in, ic, 192, convOpts{kh: 1})
		b7 = cbr("mixed8_1x7", b7, 192, 192, convOpts{kh: 1, kw: 7, ph: 0, pw: 3})
		b7 = cbr("mixed8_7x1", b7, 192, 192, convOpts{kh: 7, kw: 1, ph: 3, pw: 0})
		b7 = cbr("mixed8_3x3b", b7, 192, 192, convOpts{kh: 3, sh: 2})
		bp := b.maxPool("mixed8_pool", in, 3, 2, 0)
		x = b.concat("mixed8_concat", b3, b7, bp)
		ic = 320 + 192 + ic
	}

	// Inception-C ×2 (8×8).
	inceptionC := func(name, in string) string {
		b1 := cbr(name+"_1x1", in, ic, 320, convOpts{kh: 1})
		b3 := cbr(name+"_3x3_reduce", in, ic, 384, convOpts{kh: 1})
		b3a := cbr(name+"_1x3", b3, 384, 384, convOpts{kh: 1, kw: 3, ph: 0, pw: 1})
		b3b := cbr(name+"_3x1", b3, 384, 384, convOpts{kh: 3, kw: 1, ph: 1, pw: 0})
		bd := cbr(name+"_dbl_reduce", in, ic, 448, convOpts{kh: 1})
		bd = cbr(name+"_dbl_3x3", bd, 448, 384, convOpts{kh: 3, ph: 1, pw: 1})
		bda := cbr(name+"_dbl_1x3", bd, 384, 384, convOpts{kh: 1, kw: 3, ph: 0, pw: 1})
		bdb := cbr(name+"_dbl_3x1", bd, 384, 384, convOpts{kh: 3, kw: 1, ph: 1, pw: 0})
		bp := b.avgPool(name+"_pool", in, 3, 1, 1)
		bp = cbr(name+"_pool_proj", bp, ic, 192, convOpts{kh: 1})
		out := b.concat(name+"_concat", b1, b3a, b3b, bda, bdb, bp)
		ic = 320 + 4*384 + 192
		return out
	}
	x = inceptionC("mixed9", x)
	x = inceptionC("mixed10", x)

	x = b.globalAvgPool("pool3", x)
	x = b.dropout("drop", x)
	x = b.fc("fc", x, 2048, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}

// CommoditySearchDetector builds the main-object detector of the paper's
// Section 4.3 online case study (Table 6): an SSD-style detector with a
// full-width MobileNet backbone on 300×300 input, a multi-scale feature
// pyramid, per-scale box/class heads (100 commodity categories), sized to
// the ~0.8 GMAC budget that matches the published ~90 ms AIT on Kirin-970
// class devices.
func CommoditySearchDetector() *graph.Graph {
	b := newBuilder("commodity-detector", 0x1008)
	x := b.input("data", 1, 3, 300, 300)
	x = b.conv("conv1", x, 3, 32, convOpts{kh: 3, sh: 2, ph: 1, pw: 1, relu: true})
	blocks := []struct{ oc, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1},
	}
	ic := 32
	for i, blk := range blocks {
		dw := fmt.Sprintf("conv%d_dw", i+2)
		pw := fmt.Sprintf("conv%d_pw", i+2)
		x = b.conv(dw, x, ic, ic, convOpts{kh: 3, sh: blk.stride, ph: 1, pw: 1, group: ic, relu: true})
		x = b.conv(pw, x, ic, blk.oc, convOpts{kh: 1, relu: true})
		ic = blk.oc
	}
	// Feature pyramid: two extra downsampling stages.
	p1 := x // 19×19×512
	p2 := b.conv("extra1", p1, 512, 256, convOpts{kh: 3, sh: 2, ph: 1, pw: 1, relu: true}) // 10×10
	p3 := b.conv("extra2", p2, 256, 256, convOpts{kh: 3, sh: 2, ph: 1, pw: 1, relu: true}) // 5×5
	// Per-scale heads: 4 box coords + 100 classes per anchor (1 anchor/cell
	// keeps the toy head simple).
	heads := []struct {
		name string
		feat string
		c    int
	}{
		{"head1", p1, 512}, {"head2", p2, 256}, {"head3", p3, 256},
	}
	var boxOuts, clsOuts []string
	for _, h := range heads {
		bx := b.conv(h.name+"_box", h.feat, h.c, 4, convOpts{kh: 3, ph: 1, pw: 1})
		cl := b.conv(h.name+"_cls", h.feat, h.c, 100, convOpts{kh: 3, ph: 1, pw: 1})
		boxOuts = append(boxOuts, b.globalAvgPool(h.name+"_boxpool", bx))
		clsOuts = append(clsOuts, b.globalAvgPool(h.name+"_clspool", cl))
	}
	box := b.concat("box", boxOuts...)
	cls := b.concat("cls_all", clsOuts...)
	clsFlat := b.flatten("cls_flat", cls)
	prob := b.softmax("cls_prob", clsFlat, 1)
	return b.finish(box, prob)
}
