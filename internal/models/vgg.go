package models

import (
	"fmt"

	"mnn/internal/graph"
)

// VGG16 builds VGG-16 (Simonyan & Zisserman): five 3×3 convolution stages
// with max-pool downsampling and three FC layers. At ~15.3 GMACs it is the
// heavy classical baseline — useful for stressing the Winograd path, since
// every convolution is a plain 3×3 stride-1 (the shape all engines
// optimize, so relative engine gaps shrink — a useful contrast to
// Inception-v3 in the Figure 8 story).
func VGG16() *graph.Graph {
	b := newBuilder("vgg-16", 0x1009)
	x := b.input("data", 1, 3, 224, 224)
	ic := 3
	stageIdx := 0
	stage := func(x string, oc, convs int) string {
		stageIdx++
		for i := 0; i < convs; i++ {
			name := fmt.Sprintf("conv%d_%d", stageIdx, i+1)
			x = b.conv(name, x, ic, oc, convOpts{kh: 3, ph: 1, pw: 1, relu: true})
			ic = oc
		}
		return b.maxPool(fmt.Sprintf("pool%d", stageIdx), x, 2, 2, 0)
	}
	x = stage(x, 64, 2)
	x = stage(x, 128, 2)
	x = stage(x, 256, 3)
	x = stage(x, 512, 3)
	x = stage(x, 512, 3)
	x = b.flatten("flat", x) // 512×7×7 = 25088
	x = b.fcRelu("fc6", x, 25088, 4096)
	x = b.dropout("drop6", x)
	x = b.fcRelu("fc7", x, 4096, 4096)
	x = b.dropout("drop7", x)
	x = b.fc("fc8", x, 4096, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}

func (b *builder) fcRelu(name, in string, features, out int) string {
	w := b.weight(name+"_w", heScale(features), out, features)
	bias := b.weight(name+"_b", 0.1, out)
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpInnerProduct,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: []string{w, bias},
		Attrs:       &graph.InnerProductAttrs{OutputCount: out, ReLU: true}})
	return name
}
