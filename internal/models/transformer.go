package models

import (
	"math"

	"mnn/internal/graph"
)

// Transformer dimensions. Tiny on purpose: the built-in exists to exercise
// the dynamic-shape machinery and the attention op set end-to-end, not to
// chase accuracy. The input is [batch, seq, TransformerDim] token embeddings
// (tokenization happens outside the engine); the output is per-sequence
// class probabilities [batch, seq, TransformerClasses] after a last-axis
// softmax, so every tensor in the graph is rank 3 and stays in the flat
// NCHW layout end to end.
const (
	TransformerDim     = 32 // model width D
	TransformerHeads   = 4  // attention heads H (head width D/H = 8)
	TransformerLayers  = 2  // encoder blocks
	TransformerSeqLen  = 16 // default (declared) sequence length
	TransformerClasses = 10
)

// Transformer builds the tiny pre-LN transformer encoder: per block
// LN → multi-head self-attention → residual → LN → FFN(GELU) → residual,
// then a classifier MatMul and last-axis softmax.
func Transformer() *graph.Graph {
	b := newBuilder("transformer", 400)
	d := TransformerDim
	x := b.input("tokens", 1, TransformerSeqLen, d)
	for l := 0; l < TransformerLayers; l++ {
		x = b.encoderBlock(blockName("enc", l), x, d)
	}
	logits := b.matmulWeight("classifier", x, d, TransformerClasses)
	out := b.softmax("prob", logits, -1)
	return b.finish(out)
}

func blockName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// encoderBlock appends one pre-LN encoder block reading activation in.
func (b *builder) encoderBlock(name, in string, d int) string {
	h := TransformerHeads
	scale := float32(1 / math.Sqrt(float64(d/h)))

	ln1 := b.layerNorm(name+"_ln1", in, d)
	q := b.matmulWeight(name+"_q", ln1, d, d)
	k := b.matmulWeight(name+"_k", ln1, d, d)
	v := b.matmulWeight(name+"_v", ln1, d, d)
	scores := b.matmulQK(name+"_qk", q, k, h, scale)
	attn := b.softmax(name+"_attn", scores, -1)
	ctx := b.matmulAV(name+"_av", attn, v, h)
	proj := b.matmulWeight(name+"_proj", ctx, d, d)
	res1 := b.add(name+"_res1", in, proj)

	ln2 := b.layerNorm(name+"_ln2", res1, d)
	ff1 := b.matmulWeight(name+"_ff1", ln2, d, 4*d)
	act := b.gelu(name+"_gelu", ff1)
	ff2 := b.matmulWeight(name+"_ff2", act, 4*d, d)
	return b.add(name+"_res2", res1, ff2)
}

func (b *builder) layerNorm(name, in string, d int) string {
	g := b.weight(name+"_gamma", 0, d)
	gt := b.g.Weights[g]
	for i := range gt.Data() {
		gt.Data()[i] = gt.Data()[i]*0.1 + 1
	}
	beta := b.weight(name+"_beta", 0.1, d)
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpLayerNorm,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: []string{g, beta},
		Attrs:       &graph.LayerNormAttrs{Eps: 1e-5}})
	return name
}

func (b *builder) gelu(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpGELU,
		Inputs: []string{in}, Outputs: []string{name}})
	return name
}

// matmulWeight appends a weight-form MatMul [.., k] × W[k, n] + bias[n].
func (b *builder) matmulWeight(name, in string, k, n int) string {
	w := b.weight(name+"_w", heScale(k), k, n)
	bias := b.weight(name+"_b", 0.05, n)
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpMatMul,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: []string{w, bias},
		Attrs:       &graph.MatMulAttrs{}})
	return name
}

// matmulQK appends the scaled Q·Kᵀ attention-score MatMul.
func (b *builder) matmulQK(name, q, k string, heads int, scale float32) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpMatMul,
		Inputs: []string{q, k}, Outputs: []string{name},
		Attrs: &graph.MatMulAttrs{Heads: heads, TransposeB: true, Scale: scale}})
	return name
}

// matmulAV appends the attention-weighted value aggregation MatMul.
func (b *builder) matmulAV(name, a, v string, heads int) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpMatMul,
		Inputs: []string{a, v}, Outputs: []string{name},
		Attrs: &graph.MatMulAttrs{Heads: heads}})
	return name
}
