// Package models builds the benchmark networks of the paper's evaluation:
// MobileNet-v1/v2, SqueezeNet-v1.0/v1.1, ResNet-18/50 and Inception-v3.
// Weights are synthetic but deterministic (DESIGN.md substitution #5),
// scaled by fan-in so activations stay bounded through deep networks.
package models

import (
	"fmt"
	"math"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// builder accumulates a graph with auto-named weights.
type builder struct {
	g    *graph.Graph
	seed uint64
}

func newBuilder(name string, seed uint64) *builder {
	return &builder{g: graph.New(name), seed: seed}
}

func (b *builder) weight(name string, scale float32, shape ...int) string {
	t := tensor.New(shape...)
	b.seed++
	tensor.FillRandom(t, b.seed, scale)
	b.g.AddWeight(name, t)
	return name
}

// heScale returns a fan-in normalized weight scale.
func heScale(fanIn int) float32 {
	return float32(math.Sqrt(2.0 / float64(fanIn)))
}

func (b *builder) input(name string, shape ...int) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpInput, Outputs: []string{name},
		Attrs: &graph.InputAttrs{Shape: append([]int(nil), shape...)}})
	b.g.InputNames = append(b.g.InputNames, name)
	return name
}

// convOpts tweaks the conv builder.
type convOpts struct {
	kh, kw, sh, sw, ph, pw int
	dilation               int
	group                  int
	relu, relu6            bool
	noBias                 bool
}

func (b *builder) conv(name, in string, ic, oc int, o convOpts) string {
	if o.kw == 0 {
		o.kw = o.kh
	}
	if o.sh == 0 {
		o.sh = 1
	}
	if o.sw == 0 {
		o.sw = o.sh
	}
	if o.group == 0 {
		o.group = 1
	}
	if o.dilation == 0 {
		o.dilation = 1
	}
	wname := b.weight(name+"_w", heScale(ic/o.group*o.kh*o.kw), oc, ic/o.group, o.kh, o.kw)
	names := []string{wname}
	if !o.noBias {
		names = append(names, b.weight(name+"_b", 0.1, oc))
	}
	b.g.AddNode(&graph.Node{
		Name: name, Op: graph.OpConv2D,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: names,
		Attrs: &graph.Conv2DAttrs{
			KernelH: o.kh, KernelW: o.kw,
			StrideH: o.sh, StrideW: o.sw,
			DilationH: o.dilation, DilationW: o.dilation,
			PadH: o.ph, PadW: o.pw,
			Group: o.group, InputCount: ic, OutputCount: oc,
			ReLU: o.relu, ReLU6: o.relu6,
		},
	})
	return name
}

func (b *builder) batchNorm(name, in string, c int) string {
	g := b.weight(name+"_gamma", 0, c)
	// Gamma around 1, variance positive.
	gt := b.g.Weights[g]
	for i := range gt.Data() {
		gt.Data()[i] = gt.Data()[i]*0.1 + 1
	}
	beta := b.weight(name+"_beta", 0.1, c)
	mean := b.weight(name+"_mean", 0.1, c)
	vname := b.weight(name+"_var", 0, c)
	vt := b.g.Weights[vname]
	for i := range vt.Data() {
		vt.Data()[i] = vt.Data()[i]*0.05 + 1
	}
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpBatchNorm,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: []string{g, beta, mean, vname},
		Attrs:       &graph.BatchNormAttrs{Eps: 1e-5}})
	return name
}

func (b *builder) relu(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpReLU,
		Inputs: []string{in}, Outputs: []string{name}})
	return name
}

func (b *builder) relu6(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpReLU6,
		Inputs: []string{in}, Outputs: []string{name}})
	return name
}

func (b *builder) maxPool(name, in string, k, s, p int) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpPool,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.PoolAttrs{Type: graph.MaxPool, KernelH: k, KernelW: k,
			StrideH: s, StrideW: s, PadH: p, PadW: p}})
	return name
}

func (b *builder) avgPool(name, in string, k, s, p int) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpPool,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.PoolAttrs{Type: graph.AvgPool, KernelH: k, KernelW: k,
			StrideH: s, StrideW: s, PadH: p, PadW: p}})
	return name
}

func (b *builder) globalAvgPool(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpPool,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.PoolAttrs{Type: graph.AvgPool, Global: true}})
	return name
}

func (b *builder) concat(name string, ins ...string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpConcat,
		Inputs: ins, Outputs: []string{name},
		Attrs: &graph.ConcatAttrs{Axis: 1}})
	return name
}

func (b *builder) add(name string, ins ...string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpEltwise,
		Inputs: ins, Outputs: []string{name},
		Attrs: &graph.EltwiseAttrs{Type: graph.EltSum}})
	return name
}

func (b *builder) fc(name, in string, features, out int) string {
	w := b.weight(name+"_w", heScale(features), out, features)
	bias := b.weight(name+"_b", 0.1, out)
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpInnerProduct,
		Inputs: []string{in}, Outputs: []string{name},
		WeightNames: []string{w, bias},
		Attrs:       &graph.InnerProductAttrs{OutputCount: out}})
	return name
}

func (b *builder) softmax(name, in string, axis int) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpSoftmax,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.SoftmaxAttrs{Axis: axis}})
	return name
}

func (b *builder) dropout(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpDropout,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.DropoutAttrs{Ratio: 0.5}})
	return name
}

func (b *builder) finish(outputs ...string) *graph.Graph {
	b.g.OutputNames = outputs
	if err := b.g.Validate(); err != nil {
		panic(fmt.Sprintf("models: %s invalid: %v", b.g.Name, err))
	}
	return b.g
}

// ByName builds a network by its benchmark name.
func ByName(name string) (*graph.Graph, error) {
	switch name {
	case "mobilenet-v1":
		return MobileNetV1(), nil
	case "mobilenet-v2":
		return MobileNetV2(), nil
	case "squeezenet-v1.0":
		return SqueezeNetV10(), nil
	case "squeezenet-v1.1":
		return SqueezeNetV11(), nil
	case "resnet-18":
		return ResNet18(), nil
	case "resnet-50":
		return ResNet50(), nil
	case "inception-v3":
		return InceptionV3(), nil
	case "vgg-16":
		return VGG16(), nil
	case "transformer":
		return Transformer(), nil
	default:
		return nil, fmt.Errorf("models: unknown network %q", name)
	}
}

// Names lists the available networks.
func Names() []string {
	return []string{"mobilenet-v1", "mobilenet-v2", "squeezenet-v1.0",
		"squeezenet-v1.1", "resnet-18", "resnet-50", "inception-v3", "vgg-16",
		"transformer"}
}

func (b *builder) flatten(name, in string) string {
	b.g.AddNode(&graph.Node{Name: name, Op: graph.OpFlatten,
		Inputs: []string{in}, Outputs: []string{name},
		Attrs: &graph.FlattenAttrs{Axis: 1}})
	return name
}
