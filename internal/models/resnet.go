package models

import (
	"fmt"

	"mnn/internal/graph"
)

// ResNet18 builds ResNet-18 (He et al., 2016): 7×7 stem, four stages of
// basic blocks (two 3×3 convs + identity/projection shortcut), with
// BatchNorm after every convolution.
func ResNet18() *graph.Graph {
	b := newBuilder("resnet-18", 0x1005)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 64, convOpts{kh: 7, sh: 2, ph: 3, pw: 3, noBias: true})
	x = b.batchNorm("bn1", x, 64)
	x = b.relu("relu1", x)
	x = b.maxPool("pool1", x, 3, 2, 1)

	ic := 64
	basic := func(name, in string, oc, stride int) string {
		y := b.conv(name+"_conv1", in, ic, oc, convOpts{kh: 3, sh: stride, ph: 1, pw: 1, noBias: true})
		y = b.batchNorm(name+"_bn1", y, oc)
		y = b.relu(name+"_relu1", y)
		y = b.conv(name+"_conv2", y, oc, oc, convOpts{kh: 3, ph: 1, pw: 1, noBias: true})
		y = b.batchNorm(name+"_bn2", y, oc)
		short := in
		if stride != 1 || ic != oc {
			short = b.conv(name+"_down", in, ic, oc, convOpts{kh: 1, sh: stride, noBias: true})
			short = b.batchNorm(name+"_downbn", short, oc)
		}
		y = b.add(name+"_add", short, y)
		y = b.relu(name+"_relu2", y)
		ic = oc
		return y
	}

	stages := []struct{ oc, blocks, stride int }{
		{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := st.stride
			if bi > 0 {
				stride = 1
			}
			x = basic(fmt.Sprintf("layer%d_%d", si+1, bi), x, st.oc, stride)
		}
	}
	x = b.globalAvgPool("pool5", x)
	x = b.fc("fc", x, 512, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}

// ResNet50 builds ResNet-50: bottleneck blocks (1×1 reduce → 3×3 → 1×1
// expand ×4) across four stages.
func ResNet50() *graph.Graph {
	b := newBuilder("resnet-50", 0x1006)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 64, convOpts{kh: 7, sh: 2, ph: 3, pw: 3, noBias: true})
	x = b.batchNorm("bn1", x, 64)
	x = b.relu("relu1", x)
	x = b.maxPool("pool1", x, 3, 2, 1)

	ic := 64
	bottleneck := func(name, in string, mid, oc, stride int) string {
		y := b.conv(name+"_conv1", in, ic, mid, convOpts{kh: 1, noBias: true})
		y = b.batchNorm(name+"_bn1", y, mid)
		y = b.relu(name+"_relu1", y)
		y = b.conv(name+"_conv2", y, mid, mid, convOpts{kh: 3, sh: stride, ph: 1, pw: 1, noBias: true})
		y = b.batchNorm(name+"_bn2", y, mid)
		y = b.relu(name+"_relu2", y)
		y = b.conv(name+"_conv3", y, mid, oc, convOpts{kh: 1, noBias: true})
		y = b.batchNorm(name+"_bn3", y, oc)
		short := in
		if stride != 1 || ic != oc {
			short = b.conv(name+"_down", in, ic, oc, convOpts{kh: 1, sh: stride, noBias: true})
			short = b.batchNorm(name+"_downbn", short, oc)
		}
		y = b.add(name+"_add", short, y)
		y = b.relu(name+"_relu3", y)
		ic = oc
		return y
	}

	stages := []struct{ mid, oc, blocks, stride int }{
		{64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2}, {512, 2048, 3, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := st.stride
			if bi > 0 {
				stride = 1
			}
			x = bottleneck(fmt.Sprintf("layer%d_%d", si+1, bi), x, st.mid, st.oc, stride)
		}
	}
	x = b.globalAvgPool("pool5", x)
	x = b.fc("fc", x, 2048, 1000)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}
