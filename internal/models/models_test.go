package models

import (
	"testing"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// expected top-level properties per network.
var netProps = []struct {
	name       string
	inputShape []int
	output     string
	outClasses int
	minNodes   int
	directMULs int64 // approximate known MAC counts (±35%)
}{
	{"mobilenet-v1", []int{1, 3, 224, 224}, "prob", 1000, 30, 569e6},
	{"mobilenet-v2", []int{1, 3, 224, 224}, "prob", 1000, 60, 300e6},
	{"squeezenet-v1.1", []int{1, 3, 224, 224}, "prob", 1000, 40, 352e6},
	{"squeezenet-v1.0", []int{1, 3, 224, 224}, "prob", 1000, 40, 837e6},
	{"resnet-18", []int{1, 3, 224, 224}, "prob", 1000, 50, 1.8e9},
	{"resnet-50", []int{1, 3, 224, 224}, "prob", 1000, 120, 3.9e9},
	{"inception-v3", []int{1, 3, 299, 299}, "prob", 1000, 120, 5.7e9},
	{"vgg-16", []int{1, 3, 224, 224}, "prob", 1000, 25, 15.3e9},
}

func TestNetworksBuildAndInfer(t *testing.T) {
	for _, p := range netProps {
		t.Run(p.name, func(t *testing.T) {
			g, err := ByName(p.name)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(g.Nodes) < p.minNodes {
				t.Errorf("only %d nodes, expected ≥ %d", len(g.Nodes), p.minNodes)
			}
			shapes, err := graph.InferShapes(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.EqualShape(shapes["data"], p.inputShape) {
				t.Errorf("input shape %v", shapes["data"])
			}
			out := shapes[p.output]
			if len(out) != 2 || out[1] != p.outClasses {
				t.Errorf("output shape %v, want [1 %d]", out, p.outClasses)
			}
		})
	}
}

func TestNetworkMULCounts(t *testing.T) {
	// Conv+FC multiplication counts must be near the published MAC counts —
	// this guards against mis-built architectures (wrong strides, missing
	// blocks).
	for _, p := range netProps {
		t.Run(p.name, func(t *testing.T) {
			g, _ := ByName(p.name)
			shapes, err := graph.InferShapes(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			var muls int64
			for _, n := range g.Nodes {
				if n.Op == graph.OpConv2D || n.Op == graph.OpInnerProduct {
					muls += graph.MULCount(n, shapes)
				}
			}
			lo := int64(float64(p.directMULs) * 0.65)
			hi := int64(float64(p.directMULs) * 1.35)
			if muls < lo || muls > hi {
				t.Errorf("MULs = %d, want within [%d, %d] (published ≈ %d)", muls, lo, hi, p.directMULs)
			}
		})
	}
}

func TestInceptionHasAsymmetricConvs(t *testing.T) {
	g := InceptionV3()
	asym := 0
	for _, n := range g.Nodes {
		if n.Op != graph.OpConv2D {
			continue
		}
		a := n.Attrs.(*graph.Conv2DAttrs)
		if a.KernelH != a.KernelW {
			asym++
		}
	}
	// 4 B-blocks ×5 + reduction-B ×2 + 2 C-blocks ×4 = 30.
	if asym < 20 {
		t.Errorf("only %d asymmetric convolutions; Figure 8's bottleneck needs the 1×7/7×1 family", asym)
	}
}

func TestMobileNetV1DepthwiseCount(t *testing.T) {
	g := MobileNetV1()
	dw := 0
	for _, n := range g.Nodes {
		if n.Op == graph.OpConv2D && n.Attrs.(*graph.Conv2DAttrs).IsDepthwise() {
			dw++
		}
	}
	if dw != 13 {
		t.Errorf("depthwise convs = %d, want 13", dw)
	}
}

func TestResNet18HasResiduals(t *testing.T) {
	g := ResNet18()
	adds := 0
	for _, n := range g.Nodes {
		if n.Op == graph.OpEltwise {
			adds++
		}
	}
	if adds != 8 {
		t.Errorf("residual adds = %d, want 8", adds)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("expected error for unknown network")
	}
	if len(Names()) != 9 {
		t.Fatalf("Names() = %v", Names())
	}
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := MobileNetV1()
	b := MobileNetV1()
	wa := a.Weights["conv1_w"].Data()
	wb := b.Weights["conv1_w"].Data()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("weights must be deterministic across builds")
		}
	}
}

func TestCommodityDetectorTwoOutputs(t *testing.T) {
	g := CommoditySearchDetector()
	if len(g.OutputNames) != 2 {
		t.Fatalf("outputs: %v", g.OutputNames)
	}
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three pyramid scales: 3×4 box coords, 3×100 class scores.
	if !tensor.EqualShape(shapes["box"], []int{1, 12, 1, 1}) {
		t.Errorf("box shape %v", shapes["box"])
	}
	if !tensor.EqualShape(shapes["cls_prob"], []int{1, 300}) {
		t.Errorf("cls shape %v", shapes["cls_prob"])
	}
	// The workload must sit in the ~0.5–1.5 GMAC band of the production
	// detector (Table 6's ~90 ms AIT).
	var muls int64
	for _, n := range g.Nodes {
		if n.Op == graph.OpConv2D {
			muls += graph.MULCount(n, shapes)
		}
	}
	if muls < 500e6 || muls > 1600e6 {
		t.Errorf("detector MACs = %d, want ~0.8G", muls)
	}
}
