package models

import (
	"fmt"

	"mnn/internal/graph"
)

// fire builds a SqueezeNet fire module: squeeze 1×1 then parallel expand
// 1×1 and 3×3 branches concatenated on channels.
func fire(b *builder, name, in string, ic, squeeze, expand1, expand3 int) (string, int) {
	s := b.conv(name+"_squeeze", in, ic, squeeze, convOpts{kh: 1, relu: true})
	e1 := b.conv(name+"_expand1x1", s, squeeze, expand1, convOpts{kh: 1, relu: true})
	e3 := b.conv(name+"_expand3x3", s, squeeze, expand3, convOpts{kh: 3, ph: 1, pw: 1, relu: true})
	return b.concat(name+"_concat", e1, e3), expand1 + expand3
}

// SqueezeNetV10 builds SqueezeNet v1.0 (Iandola et al., 2016): 7×7 stem,
// fire modules with late downsampling.
func SqueezeNetV10() *graph.Graph {
	b := newBuilder("squeezenet-v1.0", 0x1003)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 96, convOpts{kh: 7, sh: 2, relu: true})
	x = b.maxPool("pool1", x, 3, 2, 0)
	ic := 96
	fires := []struct{ s, e1, e3 int }{
		{16, 64, 64}, {16, 64, 64}, {32, 128, 128},
	}
	for i, f := range fires {
		x, ic = fire(b, fmt.Sprintf("fire%d", i+2), x, ic, f.s, f.e1, f.e3)
	}
	x = b.maxPool("pool4", x, 3, 2, 0)
	fires2 := []struct{ s, e1, e3 int }{
		{32, 128, 128}, {48, 192, 192}, {48, 192, 192}, {64, 256, 256},
	}
	for i, f := range fires2 {
		x, ic = fire(b, fmt.Sprintf("fire%d", i+5), x, ic, f.s, f.e1, f.e3)
	}
	x = b.maxPool("pool8", x, 3, 2, 0)
	x, ic = fire(b, "fire9", x, ic, 64, 256, 256)
	x = b.dropout("drop9", x)
	x = b.conv("conv10", x, ic, 1000, convOpts{kh: 1, relu: true})
	x = b.globalAvgPool("pool10", x)
	x = b.flatten("flat10", x)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}

// SqueezeNetV11 builds SqueezeNet v1.1: 3×3 stem and earlier downsampling
// (≈2.4× cheaper than v1.0 at the same accuracy).
func SqueezeNetV11() *graph.Graph {
	b := newBuilder("squeezenet-v1.1", 0x1004)
	x := b.input("data", 1, 3, 224, 224)
	x = b.conv("conv1", x, 3, 64, convOpts{kh: 3, sh: 2, relu: true})
	x = b.maxPool("pool1", x, 3, 2, 0)
	ic := 64
	x, ic = fire(b, "fire2", x, ic, 16, 64, 64)
	x, ic = fire(b, "fire3", x, ic, 16, 64, 64)
	x = b.maxPool("pool3", x, 3, 2, 0)
	x, ic = fire(b, "fire4", x, ic, 32, 128, 128)
	x, ic = fire(b, "fire5", x, ic, 32, 128, 128)
	x = b.maxPool("pool5", x, 3, 2, 0)
	x, ic = fire(b, "fire6", x, ic, 48, 192, 192)
	x, ic = fire(b, "fire7", x, ic, 48, 192, 192)
	x, ic = fire(b, "fire8", x, ic, 64, 256, 256)
	x, ic = fire(b, "fire9", x, ic, 64, 256, 256)
	x = b.dropout("drop9", x)
	x = b.conv("conv10", x, ic, 1000, convOpts{kh: 1, relu: true})
	x = b.globalAvgPool("pool10", x)
	x = b.flatten("flat10", x)
	x = b.softmax("prob", x, 1)
	return b.finish(x)
}
