package winograd

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"mnn/internal/tensor"
)

// correlate1D computes y[j] = Σ_i g[i]·d[j+i] directly.
func correlate1D(d, g []float32, n int) []float32 {
	y := make([]float32, n)
	for j := 0; j < n; j++ {
		var s float32
		for i := range g {
			s += g[i] * d[j+i]
		}
		y[j] = s
	}
	return y
}

// winograd1D computes the same via y = AT[(G·g) ⊙ (BT·d)].
func winograd1D(mats *Matrices, d, g []float32) []float32 {
	m, n, k := mats.M, mats.N, mats.K
	gg := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float32
		for j := 0; j < k; j++ {
			s += mats.G[i*k+j] * g[j]
		}
		gg[i] = s
	}
	dd := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float32
		for j := 0; j < m; j++ {
			s += mats.BT[i*m+j] * d[j]
		}
		dd[i] = s
	}
	prod := make([]float32, m)
	for i := range prod {
		prod[i] = gg[i] * dd[i]
	}
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for j := 0; j < m; j++ {
			s += mats.AT[i*m+j] * prod[j]
		}
		y[i] = s
	}
	return y
}

func TestGenerate1DMatchesDirect(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, tc := range [][2]int{{2, 3}, {4, 3}, {6, 3}, {2, 2}, {4, 2}, {2, 5}, {3, 3}, {4, 5}, {6, 5}, {2, 7}, {4, 7}, {1, 3}} {
		n, k := tc[0], tc[1]
		mats, err := Generate(n, k, DefaultF)
		if err != nil {
			t.Fatalf("F(%d,%d): %v", n, k, err)
		}
		m := n + k - 1
		d := make([]float32, m)
		g := make([]float32, k)
		for i := range d {
			d[i] = r.Float32()
		}
		for i := range g {
			g[i] = r.Float32()
		}
		want := correlate1D(d, g, n)
		got := winograd1D(mats, d, g)
		for i := range want {
			if diff := math.Abs(float64(want[i] - got[i])); diff > 1e-4 {
				t.Errorf("F(%d,%d) output %d: got %v want %v (diff %g)", n, k, i, got[i], want[i], diff)
			}
		}
	}
}

func TestGenerate1DProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%6 + 1
		k := int(kRaw)%5 + 1
		if n+k-1 > 10 {
			return true
		}
		mats, err := Generate(n, k, DefaultF)
		if err != nil {
			return false
		}
		r := tensor.NewRNG(seed)
		m := n + k - 1
		d := make([]float32, m)
		g := make([]float32, k)
		for i := range d {
			d[i] = r.Float32()
		}
		for i := range g {
			g[i] = r.Float32()
		}
		want := correlate1D(d, g, n)
		got := winograd1D(mats, d, g)
		for i := range want {
			if math.Abs(float64(want[i]-got[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// direct 2D correlation of an m×m tile with a k×k kernel producing n×n.
func correlate2D(d []float32, m int, g []float32, k, n int) []float32 {
	y := make([]float32, n*n)
	for oy := 0; oy < n; oy++ {
		for ox := 0; ox < n; ox++ {
			var s float32
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					s += g[ky*k+kx] * d[(oy+ky)*m+(ox+kx)]
				}
			}
			y[oy*n+ox] = s
		}
	}
	return y
}

func TestTransform2DMatchesDirect(t *testing.T) {
	r := tensor.NewRNG(2)
	for _, tc := range [][2]int{{2, 3}, {4, 3}, {6, 3}, {2, 5}, {4, 5}, {2, 2}, {4, 2}} {
		n, k := tc[0], tc[1]
		mats := Get(n, k)
		m := mats.M
		d := make([]float32, m*m)
		g := make([]float32, k*k)
		for i := range d {
			d[i] = r.Float32()
		}
		for i := range g {
			g[i] = r.Float32()
		}
		scratch := make([]float32, m*m)
		wT := make([]float32, m*m)
		mats.TransformWeight(wT, g, scratch)
		xT := make([]float32, m*m)
		mats.TransformInput(xT, d, scratch)
		prod := make([]float32, m*m)
		for i := range prod {
			prod[i] = wT[i] * xT[i]
		}
		y := make([]float32, n*n)
		mats.TransformOutput(y, prod, scratch)

		want := correlate2D(d, m, g, k, n)
		for i := range want {
			if math.Abs(float64(want[i]-y[i])) > 2e-4 {
				t.Errorf("F(%dx%d,%dx%d) elem %d: got %v want %v", n, n, k, k, i, y[i], want[i])
			}
		}
	}
}

func TestKnownF23Structure(t *testing.T) {
	// For F(2,3) with points {0, ±f, ∞}, AT must be 2×4 and BT 4×4;
	// AT row 0 should read the even combination: [1, 1, 1, 0].
	mats := Get(2, 3)
	if mats.M != 4 || len(mats.AT) != 8 || len(mats.BT) != 16 || len(mats.G) != 12 {
		t.Fatalf("bad dims: m=%d", mats.M)
	}
	// AT = Eyᵀ where Ey rows are [1, p] for p ∈ {0, f, -f} plus ∞ row [0,1].
	want := []float32{1, 1, 1, 0, 0, 0.5, -0.5, 1}
	for i := range want {
		if math.Abs(float64(mats.AT[i]-want[i])) > 1e-6 {
			t.Fatalf("AT[%d] = %v, want %v", i, mats.AT[i], want[i])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(0, 3, DefaultF); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := Generate(3, 0, DefaultF); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Generate(10, 5, DefaultF); err == nil {
		t.Error("m=14 must fail")
	}
}

func TestPointsSpacing(t *testing.T) {
	pts := points(5, 0.5)
	want := []float64{0, 0.5, -0.5, 1, -1}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
}

func TestNumericalErrorSmallWithHalfSpacing(t *testing.T) {
	// f = 0.5 (paper's choice) must give clearly lower error than f = 2 for
	// a large tile, demonstrating why Equation 8 includes the scalar f.
	errFor := func(f float64) float64 {
		mats, err := Generate(6, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		r := tensor.NewRNG(3)
		var worst float64
		for trial := 0; trial < 20; trial++ {
			m := mats.M
			d := make([]float32, m)
			g := make([]float32, 3)
			for i := range d {
				d[i] = r.Float32()
			}
			for i := range g {
				g[i] = r.Float32()
			}
			want := correlate1D(d, g, 6)
			got := winograd1D(mats, d, g)
			for i := range want {
				if e := math.Abs(float64(want[i] - got[i])); e > worst {
					worst = e
				}
			}
		}
		return worst
	}
	ePaper, eBig := errFor(0.5), errFor(2.0)
	if ePaper > 1e-3 {
		t.Errorf("f=0.5 error too large: %g", ePaper)
	}
	if eBig <= ePaper {
		t.Logf("note: f=2 error %g not worse than f=0.5 error %g (acceptable but unexpected)", eBig, ePaper)
	}
}

func TestArithmeticCostFormula(t *testing.T) {
	// Hand-check Eq. 2 for n=2, k=3, ic=4, oc=8: m=4.
	// 2*4*64 + 4*8*16 + 2*4*6 = 512 + 512 + 48 = 1072.
	if got := ArithmeticCost(2, 3, 4, 8); got != 1072 {
		t.Fatalf("ArithmeticCost = %v, want 1072", got)
	}
}

func TestGetCacheConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m := Get(2+(j%3)*2, 3)
				if m == nil || m.N < 2 {
					t.Error("bad cached matrices")
					return
				}
			}
		}()
	}
	wg.Wait()
	// Same pointer must be returned for the same key.
	if Get(4, 3) != Get(4, 3) {
		t.Fatal("cache must return identical pointer")
	}
}

func TestInvertIdentity(t *testing.T) {
	a := []float64{2, 0, 0, 0, 3, 0, 0, 0, 4}
	inv, err := invert(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0, 0, 0, 1.0 / 3, 0, 0, 0, 0.25}
	for i := range want {
		if math.Abs(inv[i]-want[i]) > 1e-12 {
			t.Fatalf("invert diag: %v", inv)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := invert(a, 2); err == nil {
		t.Fatal("expected singular error")
	}
}
