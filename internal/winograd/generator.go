// Package winograd implements MNN's Winograd generator (paper Section 3.3.1):
// given any output tile size n and kernel size k it produces the transform
// matrices A, B, G of F(n×n, k×k) at runtime, instead of hardcoding them for
// a few popular cases the way TF-Lite/NCNN/MACE do.
//
// The construction follows the Toom–Cook derivation. With m = n+k-1
// multiplications, choose m-1 finite interpolation points plus the point at
// infinity. Using Vandermonde evaluation matrices
//
//	Eg (m×k), Ey (m×n), Vm (m×m, last row = infinity row [0,…,0,1]),
//
// the 1-D correlation of an m-long signal d with a k-tap filter g is
//
//	y = Eyᵀ [ (Eg·g) ⊙ (Vm⁻ᵀ·d) ],
//
// so A = Ey, G = Eg and Bᵀ = Vm⁻ᵀ. Following the paper's Equation 8, the
// finite points are 0, ±f, ±2f, … with f = 0.5 chosen to bound numerical
// error.
package winograd

import (
	"fmt"
	"sync"
)

// DefaultF is the point-spacing scalar f from Equation 8 of the paper.
const DefaultF = 0.5

// Matrices holds the three transform matrices of F(n×n, k×k), stored
// row-major in float32 (the compute precision) and float64 (for tests).
type Matrices struct {
	N, K, M int // output tile, kernel, m = n+k-1

	// AT is n×m: output transform (Y = AT · Y' · A).
	// G is m×k: weight transform (W' = G · W · Gᵀ).
	// BT is m×m: input transform (X' = BT · X · B).
	AT, G, BT []float32

	// Float64 copies for error analysis.
	AT64, G64, BT64 []float64
}

// Generate constructs the transform matrices for F(n×n, k×k) with point
// spacing f. n ≥ 1, k ≥ 1 and n+k-1 ≤ 12 (beyond that the Vandermonde system
// is too ill-conditioned to be useful in float32).
func Generate(n, k int, f float64) (*Matrices, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("winograd: invalid F(%d,%d)", n, k)
	}
	m := n + k - 1
	if m > 12 {
		return nil, fmt.Errorf("winograd: F(%d,%d) needs %d points; numerically unusable", n, k, m)
	}
	pts := points(m-1, f)

	// Ey: m×n evaluation matrix (A), Eg: m×k (G).
	A64 := vandermonde(pts, m, n)
	G64 := vandermonde(pts, m, k)

	// Vm: m×m full Vandermonde; BT = inverse-transpose of Vm.
	Vm := vandermonde(pts, m, m)
	VmInv, err := invert(Vm, m)
	if err != nil {
		return nil, fmt.Errorf("winograd: F(%d,%d): %w", n, k, err)
	}
	BT64 := transpose(VmInv, m, m)

	AT64 := transpose(A64, m, n)

	return &Matrices{
		N: n, K: k, M: m,
		AT: toF32(AT64), G: toF32(G64), BT: toF32(BT64),
		AT64: AT64, G64: G64, BT64: BT64,
	}, nil
}

// points returns count finite interpolation points 0, f, -f, 2f, -2f, …
// per Equation 8 of the paper.
func points(count int, f float64) []float64 {
	pts := make([]float64, 0, count)
	pts = append(pts, 0)
	for i := 1; len(pts) < count; i++ {
		pts = append(pts, float64(i)*f)
		if len(pts) < count {
			pts = append(pts, -float64(i)*f)
		}
	}
	return pts[:count]
}

// vandermonde builds the rows×cols evaluation matrix over pts plus a final
// infinity row [0,…,0,1]. rows must equal len(pts)+1.
func vandermonde(pts []float64, rows, cols int) []float64 {
	if rows != len(pts)+1 {
		panic("winograd: vandermonde row mismatch")
	}
	v := make([]float64, rows*cols)
	for i, p := range pts {
		pow := 1.0
		for j := 0; j < cols; j++ {
			v[i*cols+j] = pow
			pow *= p
		}
	}
	v[(rows-1)*cols+cols-1] = 1 // infinity row
	return v
}

// invert computes the inverse of an n×n matrix by Gauss–Jordan elimination
// with partial pivoting.
func invert(a []float64, n int) ([]float64, error) {
	// Augment [a | I].
	aug := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		copy(aug[i*2*n:], a[i*n:(i+1)*n])
		aug[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := abs(aug[col*2*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(aug[r*2*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("singular Vandermonde (column %d)", col)
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				aug[col*2*n+j], aug[pivot*2*n+j] = aug[pivot*2*n+j], aug[col*2*n+j]
			}
		}
		// Normalize pivot row.
		pv := aug[col*2*n+col]
		for j := 0; j < 2*n; j++ {
			aug[col*2*n+j] /= pv
		}
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := aug[r*2*n+col]
			if factor == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug[r*2*n+j] -= factor * aug[col*2*n+j]
			}
		}
	}
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		copy(inv[i*n:(i+1)*n], aug[i*2*n+n:i*2*n+2*n])
	}
	return inv, nil
}

func transpose(a []float64, rows, cols int) []float64 {
	t := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

func toF32(a []float64) []float32 {
	out := make([]float32, len(a))
	for i, v := range a {
		out[i] = float32(v)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var (
	cacheMu sync.Mutex
	cache   = map[[2]int]*Matrices{}
)

// Get returns cached matrices for F(n×n, k×k) with the default f, generating
// them on first use. It panics on invalid sizes — callers validate n,k via
// Generate when handling untrusted input.
func Get(n, k int) *Matrices {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := [2]int{n, k}
	if m, ok := cache[key]; ok {
		return m
	}
	m, err := Generate(n, k, DefaultF)
	if err != nil {
		panic(err)
	}
	cache[key] = m
	return m
}
