package winograd

// Tile-level transforms. All matrices are tiny (≤ 12×12); these helpers are
// used by the Winograd convolution kernel on per-tile scratch buffers.

// matMul computes dst = a·b for row-major a (rm×rk) and b (rk×rn).
func matMul(dst, a, b []float32, rm, rk, rn int) {
	for i := 0; i < rm; i++ {
		ai := a[i*rk : (i+1)*rk]
		di := dst[i*rn : (i+1)*rn]
		for j := range di {
			di[j] = 0
		}
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*rn : (p+1)*rn]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// TransformWeight computes dst = G · src · Gᵀ, mapping a k×k kernel tile to
// an m×m transformed tile. scratch must hold at least m·k floats.
func (mats *Matrices) TransformWeight(dst, src, scratch []float32) {
	m, k := mats.M, mats.K
	// scratch = G(m×k) · src(k×k) → m×k
	matMul(scratch[:m*k], mats.G, src, m, k, k)
	// dst = scratch(m×k) · Gᵀ(k×m): dst[i][j] = Σ scratch[i][p] * G[j][p]
	for i := 0; i < m; i++ {
		si := scratch[i*k : (i+1)*k]
		for j := 0; j < m; j++ {
			gj := mats.G[j*k : (j+1)*k]
			var sum float32
			for p := 0; p < k; p++ {
				sum += si[p] * gj[p]
			}
			dst[i*m+j] = sum
		}
	}
}

// TransformInput computes dst = Bᵀ · src · B for an m×m input tile.
// scratch must hold at least m·m floats. dst and src may not alias.
func (mats *Matrices) TransformInput(dst, src, scratch []float32) {
	m := mats.M
	// scratch = BT(m×m) · src(m×m)
	matMul(scratch[:m*m], mats.BT, src, m, m, m)
	// dst = scratch · B = scratch · BTᵀ: dst[i][j] = Σ scratch[i][p] * BT[j][p]
	for i := 0; i < m; i++ {
		si := scratch[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			bj := mats.BT[j*m : (j+1)*m]
			var sum float32
			for p := 0; p < m; p++ {
				sum += si[p] * bj[p]
			}
			dst[i*m+j] = sum
		}
	}
}

// TransformOutput computes dst = Aᵀ · src · A, reducing an m×m product tile
// to the n×n output tile. scratch must hold at least n·m floats.
func (mats *Matrices) TransformOutput(dst, src, scratch []float32) {
	n, m := mats.N, mats.M
	// scratch = AT(n×m) · src(m×m) → n×m
	matMul(scratch[:n*m], mats.AT, src, n, m, m)
	// dst = scratch(n×m) · A(m×n) where A = ATᵀ: dst[i][j] = Σ scratch[i][p]*AT[j][p]
	for i := 0; i < n; i++ {
		si := scratch[i*m : (i+1)*m]
		for j := 0; j < n; j++ {
			aj := mats.AT[j*m : (j+1)*m]
			var sum float32
			for p := 0; p < m; p++ {
				sum += si[p] * aj[p]
			}
			dst[i*n+j] = sum
		}
	}
}

// ArithmeticCost evaluates Equation 2 of the paper: the per-tile arithmetic
// cost of F(n×n, k×k) Winograd convolution with ic input and oc output
// channels,
//
//	C(n) = 2·ic·(n+k-1)³ + ic·oc·(n+k-1)² + n·(n+k-1)·(2n+k-1).
func ArithmeticCost(n, k, ic, oc int) float64 {
	m := float64(n + k - 1)
	return 2*float64(ic)*m*m*m +
		float64(ic)*float64(oc)*m*m +
		float64(n)*m*float64(2*n+k-1)
}
