// Package memory implements the pre-inference memory planner of Figure 3 in
// the paper: because input sizes are fixed, the engine virtually walks the
// graph once, records every allocation and free as (size, defStep,
// lastStep) lifetimes, replays that stream through a best-fit free-list
// simulation, and lays everything out in a single arena that following
// inference sessions alias into without ever calling the allocator.
//
// Figure 3 mapping:
//
//   - the "virtual walk" is session.prepare's lifetime analysis feeding
//     Backend.OnAcquireBuffer/OnReleaseBuffer (one Item per buffer);
//   - "memory pool reuse" is PlanItems' free-list simulation — an item
//     freed at step s can back another defined at s+1, so the arena is the
//     high-water mark of live bytes, not the sum (NoReuseSize keeps the
//     naive figure for the ablation benchmark);
//   - "execute with pre-allocated memory" is Arena.Buffer handing out
//     aliased sub-slices during Run.
//
// Coverage: the arena holds the activations AND every kernel workspace.
// Each backend that computes (the CPU backend, via backend.WorkspaceSizer)
// declares per-node transient needs during the walk — GEMM pixel/product
// matrices, per-worker-lane Strassen scratch slabs, Winograd tile buffers,
// im2col panels, layout-staging copies — with single-step lifetimes, so
// workspaces share bytes with dead activations and with other steps'
// workspaces. Together with the persistent worker pool (internal/sched)
// this makes steady-state inference fully allocation-free; the
// testing.AllocsPerRun regression tests and `mnnbench -exp allocs` hold
// that line.
package memory

import (
	"fmt"
	"sort"
)

// Item is one buffer requirement: a named region of Size float32 elements
// that must be live from step DefStep through step LastStep (inclusive).
type Item struct {
	Name     string
	Size     int
	DefStep  int
	LastStep int
}

// Chunk is a planned placement inside the arena.
type Chunk struct {
	Offset int
	Size   int
}

// Plan is the result of planning: every item's placement plus the total
// arena size.
type Plan struct {
	ArenaSize int
	Chunks    map[string]Chunk
	// NoReuseSize is what a naive allocator (no lifetime reuse) would need;
	// kept for the memory-pool ablation benchmark.
	NoReuseSize int
}

// alignment in float32 elements: 16 floats = 64 bytes, one cache line.
const alignment = 16

func alignUp(n int) int { return (n + alignment - 1) / alignment * alignment }

// PlanItems lays out items with a best-fit free-list simulation of the
// paper's pre-inference walk (Figure 3: alloc/free stream is replayed ahead
// of time). Items sharing a step boundary do not overlap: an item freed at
// step s can back another item defined at step s+1, not one defined at s.
func PlanItems(items []Item) (*Plan, error) {
	for _, it := range items {
		if it.Size < 0 {
			return nil, fmt.Errorf("memory: item %q has negative size", it.Name)
		}
		if it.LastStep < it.DefStep {
			return nil, fmt.Errorf("memory: item %q dies (%d) before defined (%d)", it.Name, it.LastStep, it.DefStep)
		}
	}
	// Group allocations by def step and frees by last step.
	maxStep := 0
	for _, it := range items {
		if it.LastStep > maxStep {
			maxStep = it.LastStep
		}
	}
	allocAt := map[int][]Item{}
	freeAt := map[int][]Item{}
	noReuse := 0
	for _, it := range items {
		allocAt[it.DefStep] = append(allocAt[it.DefStep], it)
		freeAt[it.LastStep] = append(freeAt[it.LastStep], it)
		noReuse += alignUp(it.Size)
	}

	arena := &simArena{}
	plan := &Plan{Chunks: map[string]Chunk{}, NoReuseSize: noReuse}
	for step := 0; step <= maxStep; step++ {
		allocs := allocAt[step]
		// Deterministic order: larger first (classic best-fit heuristic),
		// ties by name.
		sort.Slice(allocs, func(i, j int) bool {
			if allocs[i].Size != allocs[j].Size {
				return allocs[i].Size > allocs[j].Size
			}
			return allocs[i].Name < allocs[j].Name
		})
		for _, it := range allocs {
			if _, dup := plan.Chunks[it.Name]; dup {
				return nil, fmt.Errorf("memory: duplicate item %q", it.Name)
			}
			off := arena.alloc(alignUp(it.Size))
			plan.Chunks[it.Name] = Chunk{Offset: off, Size: it.Size}
		}
		for _, it := range freeAt[step] {
			c := plan.Chunks[it.Name]
			arena.release(c.Offset, alignUp(it.Size))
		}
	}
	plan.ArenaSize = arena.high
	return plan, nil
}

// simArena is a best-fit free-list simulator with coalescing.
type simArena struct {
	free []Chunk // sorted by offset, non-adjacent
	high int     // high-water mark
}

func (a *simArena) alloc(size int) int {
	if size == 0 {
		return 0
	}
	// Best fit: smallest free chunk that holds size.
	best := -1
	for i, c := range a.free {
		if c.Size >= size && (best < 0 || c.Size < a.free[best].Size) {
			best = i
		}
	}
	if best >= 0 {
		c := a.free[best]
		off := c.Offset
		if c.Size == size {
			a.free = append(a.free[:best], a.free[best+1:]...)
		} else {
			a.free[best] = Chunk{Offset: c.Offset + size, Size: c.Size - size}
		}
		return off
	}
	off := a.high
	a.high += size
	return off
}

func (a *simArena) release(offset, size int) {
	if size == 0 {
		return
	}
	// Insert sorted by offset, then coalesce neighbours.
	idx := sort.Search(len(a.free), func(i int) bool { return a.free[i].Offset >= offset })
	a.free = append(a.free, Chunk{})
	copy(a.free[idx+1:], a.free[idx:])
	a.free[idx] = Chunk{Offset: offset, Size: size}
	// Coalesce with next.
	if idx+1 < len(a.free) && a.free[idx].Offset+a.free[idx].Size == a.free[idx+1].Offset {
		a.free[idx].Size += a.free[idx+1].Size
		a.free = append(a.free[:idx+1], a.free[idx+2:]...)
	}
	// Coalesce with previous.
	if idx > 0 && a.free[idx-1].Offset+a.free[idx-1].Size == a.free[idx].Offset {
		a.free[idx-1].Size += a.free[idx].Size
		a.free = append(a.free[:idx], a.free[idx+1:]...)
	}
}

// Arena is the runtime slab backing a Plan. Buffer hands out aliased
// sub-slices; no allocation happens during inference (the decoupling that
// Table 2 of the paper measures).
type Arena struct {
	slab []float32
	plan *Plan
}

// NewArena materializes the plan into one backing slab.
func NewArena(plan *Plan) *Arena {
	return &Arena{slab: make([]float32, plan.ArenaSize), plan: plan}
}

// Buffer returns the planned slice for item name.
func (a *Arena) Buffer(name string) []float32 {
	c, ok := a.plan.Chunks[name]
	if !ok {
		panic(fmt.Sprintf("memory: no planned chunk named %q", name))
	}
	return a.slab[c.Offset : c.Offset+c.Size]
}

// Has reports whether the plan contains an item.
func (a *Arena) Has(name string) bool {
	_, ok := a.plan.Chunks[name]
	return ok
}

// Size returns the arena length in float32 elements.
func (a *Arena) Size() int { return len(a.slab) }
