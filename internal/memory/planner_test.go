package memory

import (
	"testing"
	"testing/quick"

	"mnn/internal/tensor"
)

func TestPlanReusesDeadBuffers(t *testing.T) {
	// Chain a→b→c where a dies when b is defined: c can reuse a's space.
	items := []Item{
		{Name: "a", Size: 100, DefStep: 0, LastStep: 1},
		{Name: "b", Size: 100, DefStep: 1, LastStep: 2},
		{Name: "c", Size: 100, DefStep: 2, LastStep: 3},
	}
	plan, err := PlanItems(items)
	if err != nil {
		t.Fatal(err)
	}
	// Two live at once ⇒ arena should be 2 aligned chunks, not 3.
	if plan.ArenaSize != 2*112 { // 100 aligns to 112
		t.Fatalf("arena = %d, want 224", plan.ArenaSize)
	}
	if plan.NoReuseSize != 3*112 {
		t.Fatalf("noReuse = %d, want 336", plan.NoReuseSize)
	}
	if plan.Chunks["a"].Offset != plan.Chunks["c"].Offset {
		t.Errorf("c should reuse a's chunk: a@%d c@%d", plan.Chunks["a"].Offset, plan.Chunks["c"].Offset)
	}
}

func TestPlanNoOverlapWhileLive(t *testing.T) {
	items := []Item{
		{Name: "x", Size: 50, DefStep: 0, LastStep: 5},
		{Name: "y", Size: 70, DefStep: 1, LastStep: 3},
		{Name: "z", Size: 30, DefStep: 2, LastStep: 4},
		{Name: "w", Size: 60, DefStep: 4, LastStep: 6}, // can reuse y (dead at 4? y dies at 3, w defined at 4 ⇒ yes)
	}
	plan, err := PlanItems(items)
	if err != nil {
		t.Fatal(err)
	}
	checkNoLiveOverlap(t, items, plan)
	if plan.Chunks["w"].Offset != plan.Chunks["y"].Offset {
		t.Errorf("w should best-fit into y's freed chunk")
	}
}

func checkNoLiveOverlap(t *testing.T, items []Item, plan *Plan) {
	t.Helper()
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			a, b := items[i], items[j]
			// Overlapping lifetimes?
			if a.DefStep <= b.LastStep && b.DefStep <= a.LastStep {
				ca, cb := plan.Chunks[a.Name], plan.Chunks[b.Name]
				if ca.Offset < cb.Offset+cb.Size && cb.Offset < ca.Offset+ca.Size && ca.Size > 0 && cb.Size > 0 {
					t.Errorf("live items %q and %q overlap: %+v vs %+v", a.Name, b.Name, ca, cb)
				}
			}
		}
	}
}

func TestPlanPropertyNoLiveOverlap(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := r.Intn(20) + 2
		items := make([]Item, n)
		for i := range items {
			def := r.Intn(15)
			items[i] = Item{
				Name:     string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Size:     r.Intn(500) + 1,
				DefStep:  def,
				LastStep: def + r.Intn(8),
			}
		}
		plan, err := PlanItems(items)
		if err != nil {
			return false
		}
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				a, b := items[i], items[j]
				if a.DefStep <= b.LastStep && b.DefStep <= a.LastStep {
					ca, cb := plan.Chunks[a.Name], plan.Chunks[b.Name]
					if ca.Offset < cb.Offset+cb.Size && cb.Offset < ca.Offset+ca.Size {
						return false
					}
				}
			}
		}
		return plan.ArenaSize <= plan.NoReuseSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := PlanItems([]Item{{Name: "bad", Size: -1, DefStep: 0, LastStep: 0}}); err == nil {
		t.Error("negative size must fail")
	}
	if _, err := PlanItems([]Item{{Name: "bad", Size: 1, DefStep: 5, LastStep: 2}}); err == nil {
		t.Error("inverted lifetime must fail")
	}
	if _, err := PlanItems([]Item{
		{Name: "dup", Size: 1, DefStep: 0, LastStep: 1},
		{Name: "dup", Size: 1, DefStep: 0, LastStep: 1},
	}); err == nil {
		t.Error("duplicate name must fail")
	}
}

func TestArenaBuffersAlias(t *testing.T) {
	items := []Item{
		{Name: "a", Size: 10, DefStep: 0, LastStep: 1},
		{Name: "b", Size: 20, DefStep: 0, LastStep: 1},
	}
	plan, err := PlanItems(items)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena(plan)
	if arena.Size() != plan.ArenaSize {
		t.Fatal("arena size mismatch")
	}
	a := arena.Buffer("a")
	b := arena.Buffer("b")
	if len(a) != 10 || len(b) != 20 {
		t.Fatal("buffer lengths wrong")
	}
	a[0] = 42
	if arena.Buffer("a")[0] != 42 {
		t.Fatal("Buffer must alias the slab")
	}
	if !arena.Has("a") || arena.Has("zzz") {
		t.Fatal("Has wrong")
	}
}

func TestArenaBufferPanicsOnUnknown(t *testing.T) {
	plan, _ := PlanItems(nil)
	arena := NewArena(plan)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	arena.Buffer("ghost")
}

func TestCoalescing(t *testing.T) {
	// Free two adjacent chunks; a larger item must fit into their union.
	items := []Item{
		{Name: "a", Size: 64, DefStep: 0, LastStep: 1},
		{Name: "b", Size: 64, DefStep: 0, LastStep: 1},
		{Name: "big", Size: 128, DefStep: 2, LastStep: 3},
	}
	plan, err := PlanItems(items)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaSize != 128 {
		t.Fatalf("arena = %d, want 128 (coalesced reuse)", plan.ArenaSize)
	}
}

func TestZeroSizeItem(t *testing.T) {
	plan, err := PlanItems([]Item{{Name: "z", Size: 0, DefStep: 0, LastStep: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaSize != 0 {
		t.Fatalf("zero item should cost nothing, got %d", plan.ArenaSize)
	}
}

func TestResNetLikePattern(t *testing.T) {
	// Residual block: input lives across the block (skip connection).
	items := []Item{
		{Name: "in", Size: 1000, DefStep: 0, LastStep: 3},  // consumed by add at step 3
		{Name: "c1", Size: 1000, DefStep: 1, LastStep: 2},
		{Name: "c2", Size: 1000, DefStep: 2, LastStep: 3},
		{Name: "add", Size: 1000, DefStep: 3, LastStep: 4},
	}
	plan, err := PlanItems(items)
	if err != nil {
		t.Fatal(err)
	}
	checkNoLiveOverlap(t, items, plan)
	// Peak live = in + c1 + c2 = 3 buffers (at step 2).
	if plan.ArenaSize != 3*1008 {
		t.Fatalf("arena = %d, want %d", plan.ArenaSize, 3*1008)
	}
}
