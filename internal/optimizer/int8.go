package optimizer

import (
	"fmt"

	"mnn/internal/core"
	"mnn/internal/graph"
)

// Int8Plan is the offline precision partition of a graph for int8
// execution: which nodes run on the prepared int8 kernels and where the
// quant/dequant boundaries fall. The runtime kernels fuse the boundary work
// (activations are quantized at int8-kernel entry and requantized on exit),
// so the boundaries never materialize as standalone graph nodes — the plan
// records where they act, and the counts feed diagnostics and the bench
// report.
type Int8Plan struct {
	// Int8 maps node name → true when the node executes on int8 kernels.
	Int8 map[string]bool
	// Int8Nodes / FP32Nodes partition the op count (inputs excluded).
	Int8Nodes, FP32Nodes int
	// QuantBoundaries counts fp32→int8 edges (an activation quantized on
	// kernel entry); DequantBoundaries counts int8→fp32 edges, including
	// int8 nodes feeding graph outputs.
	QuantBoundaries, DequantBoundaries int
	// Calibrated counts int8 nodes whose first input carries a calibrated
	// activation scale; the rest fall back to per-sample dynamic scales.
	Calibrated int
	// NonNegActs marks activation tensors that are provably non-negative
	// (post-ReLU/ReLU6/sigmoid chains). Int8 kernels consuming them quantize
	// unsigned, which restores the correlated-zero skip in the int8 GEMM.
	NonNegActs map[string]bool
}

// PlanInt8 partitions a graph for int8 execution: every operator the int8
// kernel set covers (see core.Int8ConvSupported; plus fully-connected
// layers) is marked int8, everything else stays fp32. The engine's CPU
// backend consumes the plan when the engine is opened with
// mnn.WithPrecision(mnn.PrecisionInt8). inputShapes optionally overrides
// the declared input shapes (the engine passes its WithInputShapes
// overrides) — scheme selection, and therefore the partition, depends on
// the shapes the session will actually run.
func PlanInt8(g *graph.Graph, inputShapes map[string][]int) (*Int8Plan, error) {
	return PlanInt8With(g, inputShapes, nil)
}

// PlanInt8With is PlanInt8 with an explicit per-convolution scheme resolver.
// When a tuner overrides the Equation 2–3 heuristic, the int8 partition must
// be computed from the schemes that will actually run — Int8ConvSupported
// depends on the algorithm — or the offline plan and the runtime dispatch
// would drift. A nil schemeFor falls back to core.SelectConvScheme.
func PlanInt8With(g *graph.Graph, inputShapes map[string][]int, schemeFor func(n *graph.Node, inShape []int) core.ConvDecision) (*Int8Plan, error) {
	shapes, err := graph.InferShapes(g, inputShapes)
	if err != nil {
		return nil, fmt.Errorf("optimizer: int8 plan: %w", err)
	}
	if schemeFor == nil {
		schemeFor = func(n *graph.Node, inShape []int) core.ConvDecision {
			return core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), inShape)
		}
	}
	plan := &Int8Plan{Int8: map[string]bool{}, NonNegActs: nonNegActs(g)}
	int8Producer := map[string]bool{} // tensor name → produced by an int8 node
	for _, n := range g.Nodes {
		if n.Op == graph.OpInput {
			continue
		}
		isInt8 := false
		switch n.Op {
		case graph.OpConv2D:
			a := n.Attrs.(*graph.Conv2DAttrs)
			dec := schemeFor(n, shapes[n.Inputs[0]])
			isInt8 = core.Int8ConvSupported(a, dec)
		case graph.OpInnerProduct:
			isInt8 = true
		}
		if isInt8 {
			plan.Int8[n.Name] = true
			plan.Int8Nodes++
			if g.ActScales[n.Inputs[0]] > 0 {
				plan.Calibrated++
			}
			for _, in := range n.Inputs {
				if !int8Producer[in] {
					plan.QuantBoundaries++
				}
			}
		} else {
			plan.FP32Nodes++
			for _, in := range n.Inputs {
				if int8Producer[in] {
					plan.DequantBoundaries++
				}
			}
		}
		for _, o := range n.Outputs {
			int8Producer[o] = isInt8
		}
	}
	for _, o := range g.OutputNames {
		if int8Producer[o] {
			plan.DequantBoundaries++
		}
	}
	return plan, nil
}

// nonNegActs runs a forward dataflow pass proving which activation tensors
// cannot hold negative values: ReLU-family outputs, and value-preserving or
// monotone ops (pool, concat, pad, reshape, non-subtracting eltwise) whose
// inputs are all non-negative. The analysis is sound, not complete — an
// unproven tensor just uses the signed quantization path.
func nonNegActs(g *graph.Graph) map[string]bool {
	nonNeg := map[string]bool{}
	allIn := func(n *graph.Node) bool {
		for _, in := range n.Inputs {
			if !nonNeg[in] {
				return false
			}
		}
		return true
	}
	for _, n := range g.Nodes {
		v := false
		switch n.Op {
		case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpSoftmax:
			v = true
		case graph.OpConv2D, graph.OpDeconv2D:
			a := n.Attrs.(*graph.Conv2DAttrs)
			v = a.ReLU || a.ReLU6
		case graph.OpInnerProduct:
			v = n.Attrs.(*graph.InnerProductAttrs).ReLU
		case graph.OpEltwise:
			a := n.Attrs.(*graph.EltwiseAttrs)
			v = a.ReLU || (a.Type != graph.EltSub && allIn(n))
		case graph.OpPool, graph.OpConcat, graph.OpPadding,
			graph.OpFlatten, graph.OpReshape, graph.OpDropout:
			v = allIn(n)
		}
		for _, o := range n.Outputs {
			nonNeg[o] = v
		}
	}
	return nonNeg
}
