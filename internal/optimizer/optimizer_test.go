package optimizer

import (
	"context"
	"testing"

	"mnn/internal/backend"
	"mnn/internal/cpu"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/session"
	"mnn/internal/tensor"
)

func countOps(g *graph.Graph, op graph.OpType) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Op == op {
			c++
		}
	}
	return c
}

// runBoth runs reference inference on the original and optimized graphs and
// returns the max output difference.
func runBoth(t *testing.T, g *graph.Graph, seed uint64) float64 {
	t.Helper()
	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(shapes[g.InputNames[0]]...)
	tensor.FillRandom(in, seed, 1)
	before, err := session.RunReference(g, map[string]*tensor.Tensor{g.InputNames[0]: in})
	if err != nil {
		t.Fatal(err)
	}
	opt := g.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatal(err)
	}
	after, err := session.RunReference(opt, map[string]*tensor.Tensor{opt.InputNames[0]: in})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for name, b := range before {
		d := tensor.MaxAbsDiff(b, after[name])
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestOptimizeResNet18PreservesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs resnet-18 through two full sessions (~37s)")
	}
	g := models.ResNet18()
	if d := runBoth(t, g, 21); d > 1e-3 {
		t.Fatalf("optimization changed ResNet-18 output by %g", d)
	}
}

func TestOptimizeFoldsAllResNetBN(t *testing.T) {
	g := models.ResNet18()
	bnBefore := countOps(g, graph.OpBatchNorm)
	reluBefore := countOps(g, graph.OpReLU)
	if bnBefore == 0 || reluBefore == 0 {
		t.Fatal("test net must contain BN and ReLU")
	}
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, graph.OpBatchNorm); got != 0 {
		t.Errorf("%d BatchNorm nodes remain", got)
	}
	// ReLUs directly after convs/adds fuse; ResNet has every ReLU in such a
	// position.
	if got := countOps(g, graph.OpReLU); got != 0 {
		t.Errorf("%d ReLU nodes remain", got)
	}
}

func TestOptimizeSqueezeNetDropsDropout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs squeezenet through a full session (~7s)")
	}
	g := models.SqueezeNetV11()
	if countOps(g, graph.OpDropout) == 0 {
		t.Fatal("net must contain dropout")
	}
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, graph.OpDropout); got != 0 {
		t.Errorf("%d Dropout nodes remain", got)
	}
	if d := runBoth(t, models.SqueezeNetV11(), 22); d > 1e-4 {
		t.Fatalf("output changed by %g", d)
	}
}

func TestOptimizeMobileNetPreservesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mobilenet through two full sessions (~15s)")
	}
	if d := runBoth(t, models.MobileNetV1(), 23); d > 1e-4 {
		t.Fatalf("output changed by %g", d)
	}
}

func TestBNNotFoldedThroughSharedOutput(t *testing.T) {
	// conv output feeds BN and a second consumer: folding would corrupt the
	// second path, so the pass must leave it alone.
	g := graph.New("shared")
	g.InputNames = []string{"x"}
	g.OutputNames = []string{"bn", "other"}
	g.AddNode(&graph.Node{Name: "x", Op: graph.OpInput, Outputs: []string{"x"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 4, 8, 8}}})
	w := tensor.NewRandom(1, 0.3, 4, 4, 3, 3)
	g.AddWeight("w", w)
	g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D, Inputs: []string{"x"}, Outputs: []string{"conv"},
		WeightNames: []string{"w"},
		Attrs: &graph.Conv2DAttrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Group: 1, InputCount: 4, OutputCount: 4}})
	for _, name := range []string{"g", "b", "m"} {
		g.AddWeight(name, tensor.NewRandom(2, 0.1, 4))
	}
	v := tensor.New(4)
	v.Fill(1)
	g.AddWeight("v", v)
	g.AddNode(&graph.Node{Name: "bn", Op: graph.OpBatchNorm, Inputs: []string{"conv"}, Outputs: []string{"bn"},
		WeightNames: []string{"g", "b", "m", "v"}, Attrs: &graph.BatchNormAttrs{Eps: 1e-5}})
	g.AddNode(&graph.Node{Name: "other", Op: graph.OpReLU, Inputs: []string{"conv"}, Outputs: []string{"other"}})
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	// BN may be replaced by Scale but must NOT be folded into the conv.
	if countOps(g, graph.OpConv2D) != 1 {
		t.Fatal("conv disappeared")
	}
	conv := g.Node("conv")
	if conv.Attrs.(*graph.Conv2DAttrs).ReLU {
		t.Error("ReLU on a shared output must not fuse")
	}
	if len(conv.WeightNames) != 1 {
		t.Error("conv weights must be untouched when output is shared")
	}
}

func TestFuseActivationIntoEltwise(t *testing.T) {
	g := graph.New("addrelu")
	g.InputNames = []string{"a", "b"}
	g.OutputNames = []string{"relu"}
	g.AddNode(&graph.Node{Name: "a", Op: graph.OpInput, Outputs: []string{"a"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 4, 4, 4}}})
	g.AddNode(&graph.Node{Name: "b", Op: graph.OpInput, Outputs: []string{"b"},
		Attrs: &graph.InputAttrs{Shape: []int{1, 4, 4, 4}}})
	g.AddNode(&graph.Node{Name: "add", Op: graph.OpEltwise, Inputs: []string{"a", "b"}, Outputs: []string{"add"},
		Attrs: &graph.EltwiseAttrs{Type: graph.EltSum}})
	g.AddNode(&graph.Node{Name: "relu", Op: graph.OpReLU, Inputs: []string{"add"}, Outputs: []string{"relu"}})
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if countOps(g, graph.OpReLU) != 0 {
		t.Fatal("relu not fused")
	}
	if !g.Node("add").Attrs.(*graph.EltwiseAttrs).ReLU {
		t.Fatal("eltwise did not absorb relu")
	}
	if g.OutputNames[0] != "add" {
		t.Fatalf("output not rewired: %v", g.OutputNames)
	}
}

func TestOptimizeShrinksNodeCount(t *testing.T) {
	g := models.ResNet50()
	before := len(g.Nodes)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	after := len(g.Nodes)
	// ResNet-50: 53 BN + 49 ReLU should fuse away.
	if after >= before-90 {
		t.Errorf("nodes %d → %d; expected ≥90 removed", before, after)
	}
}

func TestOptimizedSessionMatchesUnoptimized(t *testing.T) {
	if testing.Short() {
		t.Skip("compares full sessions on a deep network (~20s)")
	}
	// End-to-end: optimized graph through the real engine equals the
	// unoptimized graph through the reference.
	g := models.ResNet18()
	shapes, _ := graph.InferShapes(g, nil)
	in := tensor.New(shapes["data"]...)
	tensor.FillRandom(in, 33, 1)
	ref, err := session.RunReference(g, map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	opt := g.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatal(err)
	}
	s := newCPUSession(t, opt)
	s.Input("data").CopyFrom(in)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], s.Output("prob")); d > 2e-3 {
		t.Fatalf("optimized engine output differs by %g", d)
	}
}

func newCPUSession(t *testing.T, g *graph.Graph) *session.Session {
	t.Helper()
	s, err := session.New(g, session.Config{Backends: []backend.Backend{cpu.New(cpu.Config{Threads: 4})}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
