package optimizer

import (
	"testing"

	"mnn/internal/graph"
	"mnn/internal/models"
)

func TestPlanInt8MobileNet(t *testing.T) {
	g := models.MobileNetV1()
	plan, err := PlanInt8(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// MobileNet-v1: 13 pointwise + 13 depthwise convs + the FC run int8; the
	// stem conv (sliding scheme), pool and softmax stay fp32.
	if plan.Int8Nodes != 27 {
		t.Errorf("int8 nodes = %d, want 27", plan.Int8Nodes)
	}
	for _, name := range []string{"conv2_dw", "conv2_pw", "fc7"} {
		if !plan.Int8[name] {
			t.Errorf("node %q missing from int8 plan", name)
		}
	}
	if plan.Int8["conv1"] {
		t.Error("stem conv (sliding scheme) must stay fp32")
	}
	if plan.QuantBoundaries == 0 || plan.DequantBoundaries == 0 {
		t.Errorf("boundaries: %d quant / %d dequant, want both > 0",
			plan.QuantBoundaries, plan.DequantBoundaries)
	}
	// No calibration: nothing carries a fixed scale yet.
	if plan.Calibrated != 0 {
		t.Errorf("calibrated = %d on an uncalibrated graph", plan.Calibrated)
	}
	g.ActScales = map[string]float32{"conv1": 0.05}
	plan2, err := PlanInt8(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// conv2_dw consumes conv1's output; it is now calibrated.
	if plan2.Calibrated != 1 {
		t.Errorf("calibrated = %d after one scale, want 1", plan2.Calibrated)
	}
}

func TestNonNegActsDataflow(t *testing.T) {
	g := models.MobileNetV1()
	plan, err := PlanInt8(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every ReLU6-fused conv output is non-negative; the raw graph input and
	// the FC logits are not provable.
	if !plan.NonNegActs["conv1"] || !plan.NonNegActs["conv2_dw"] {
		t.Error("fused-ReLU6 conv outputs must be proven non-negative")
	}
	if plan.NonNegActs["data"] {
		t.Error("graph input must not be assumed non-negative")
	}
	if plan.NonNegActs["fc7"] {
		t.Error("un-activated FC output must not be assumed non-negative")
	}
	// Softmax output is provably non-negative.
	if !plan.NonNegActs["prob"] {
		t.Error("softmax output is non-negative")
	}
	// Pooling preserves non-negativity.
	if !plan.NonNegActs["pool6"] {
		t.Error("global pool of a non-negative tensor is non-negative")
	}
}

func TestPlanInt8RejectsInvalidGraph(t *testing.T) {
	g := graph.New("broken")
	g.AddNode(&graph.Node{Name: "c", Op: graph.OpConv2D, Inputs: []string{"missing"},
		Outputs: []string{"out"}, Attrs: &graph.Conv2DAttrs{KernelH: 1, KernelW: 1, OutputCount: 1}})
	if _, err := PlanInt8(g, nil); err == nil {
		t.Fatal("PlanInt8 on a graph without shapes must error")
	}
}
