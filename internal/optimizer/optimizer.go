// Package optimizer implements the offline graph optimizations of Figure 2:
// operator fusion (Conv+BatchNorm, Conv+Scale, Conv+ReLU/ReLU6,
// Eltwise+ReLU), operator replacement (BatchNorm → Scale) and identity
// elimination (Dropout). These run in the converter, before the model ships
// to devices.
package optimizer

import (
	"fmt"
	"math"

	"mnn/internal/graph"
	"mnn/internal/tensor"
)

// Pass is one rewrite; it reports whether it changed the graph.
type Pass func(g *graph.Graph) (bool, error)

// Optimize runs the standard pass pipeline to a fixed point (bounded).
func Optimize(g *graph.Graph) error {
	passes := []struct {
		name string
		fn   Pass
	}{
		{"drop-dropout", DropDropout},
		{"fold-bn-into-conv", FoldBatchNormIntoConv},
		{"replace-bn-with-scale", ReplaceBatchNormWithScale},
		{"fold-scale-into-conv", FoldScaleIntoConv},
		{"fuse-activation", FuseActivation},
	}
	// Each pass rewrites at most one site per call; drive every pass to its
	// own fixed point, then repeat the pipeline until nothing changes
	// (a pass can expose new opportunities for an earlier one).
	maxRewrites := 4 * len(g.Nodes)
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, p := range passes {
			for rewrites := 0; ; rewrites++ {
				if rewrites > maxRewrites {
					return fmt.Errorf("optimizer: pass %s did not converge", p.name)
				}
				c, err := p.fn(g)
				if err != nil {
					return fmt.Errorf("optimizer: pass %s: %w", p.name, err)
				}
				if !c {
					break
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return g.Validate()
}

// soleConsumerIndex returns the index of the unique consumer node of tensor
// name, or -1 if the tensor has other consumers or is a graph output.
func soleConsumerIndex(g *graph.Graph, name string) int {
	for _, o := range g.OutputNames {
		if o == name {
			return -1
		}
	}
	idx := -1
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == name {
				if idx >= 0 {
					return -1
				}
				idx = i
			}
		}
	}
	return idx
}

// removeNode deletes node i, rewiring its single input to its consumers.
func removeNode(g *graph.Graph, i int) {
	n := g.Nodes[i]
	from := n.Outputs[0]
	to := n.Inputs[0]
	for _, m := range g.Nodes {
		for j, in := range m.Inputs {
			if in == from {
				m.Inputs[j] = to
			}
		}
	}
	for j, o := range g.OutputNames {
		if o == from {
			g.OutputNames[j] = to
		}
	}
	g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
}

// DropDropout removes inference-time identity Dropout nodes.
func DropDropout(g *graph.Graph) (bool, error) {
	for i, n := range g.Nodes {
		if n.Op == graph.OpDropout {
			removeNode(g, i)
			return true, nil
		}
	}
	return false, nil
}

// bnScaleShift extracts the folded (scale, shift) of a BatchNorm node.
func bnScaleShift(g *graph.Graph, n *graph.Node) (scale, shift []float32, err error) {
	if len(n.WeightNames) != 4 {
		return nil, nil, fmt.Errorf("BatchNorm %q has %d weights, want 4", n.Name, len(n.WeightNames))
	}
	a := n.Attrs.(*graph.BatchNormAttrs)
	gamma := g.Weights[n.WeightNames[0]].Data()
	beta := g.Weights[n.WeightNames[1]].Data()
	mean := g.Weights[n.WeightNames[2]].Data()
	variance := g.Weights[n.WeightNames[3]].Data()
	c := len(gamma)
	scale = make([]float32, c)
	shift = make([]float32, c)
	for i := 0; i < c; i++ {
		s := gamma[i] / float32(math.Sqrt(float64(variance[i]+a.Eps)))
		scale[i] = s
		shift[i] = beta[i] - s*mean[i]
	}
	return scale, shift, nil
}

// scaleConvWeights rewrites conv weights in place: W'[o,...] = W[o,...]·s[o],
// b'[o] = b[o]·s[o] + t[o]. Adds a bias weight if the conv had none.
func scaleConvWeights(g *graph.Graph, conv *graph.Node, scale, shift []float32) {
	w := g.Weights[conv.WeightNames[0]]
	oc := w.Dim(0)
	per := w.NumElements() / oc
	// Clone: weights may be shared between graphs.
	nw := w.Clone()
	d := nw.Data()
	for o := 0; o < oc; o++ {
		for i := 0; i < per; i++ {
			d[o*per+i] *= scale[o]
		}
	}
	wName := conv.WeightNames[0] + "_fused"
	if _, exists := g.Weights[wName]; !exists {
		g.AddWeight(wName, nw)
	} else {
		g.Weights[wName] = nw
	}
	conv.WeightNames[0] = wName

	var bias *tensor.Tensor
	if len(conv.WeightNames) > 1 {
		bias = g.Weights[conv.WeightNames[1]].Clone()
	} else {
		bias = tensor.New(oc)
	}
	bd := bias.Data()
	for o := 0; o < oc; o++ {
		bd[o] = bd[o]*scale[o] + shift[o]
	}
	bName := conv.Name + "_bias_fused"
	if _, exists := g.Weights[bName]; !exists {
		g.AddWeight(bName, bias)
	} else {
		g.Weights[bName] = bias
	}
	if len(conv.WeightNames) > 1 {
		conv.WeightNames[1] = bName
	} else {
		conv.WeightNames = append(conv.WeightNames, bName)
	}
}

// FoldBatchNormIntoConv fuses Conv2D→BatchNorm chains when the conv output
// feeds only the BN.
func FoldBatchNormIntoConv(g *graph.Graph) (bool, error) {
	for i, n := range g.Nodes {
		if n.Op != graph.OpBatchNorm {
			continue
		}
		prod := g.Producer(n.Inputs[0])
		if prod == nil || prod.Op != graph.OpConv2D {
			continue
		}
		a := prod.Attrs.(*graph.Conv2DAttrs)
		if a.ReLU || a.ReLU6 {
			continue // activation already fused; BN after activation can't fold
		}
		ci := soleConsumerIndex(g, prod.Outputs[0])
		if ci < 0 || g.Nodes[ci] != n {
			continue
		}
		scale, shift, err := bnScaleShift(g, n)
		if err != nil {
			return false, err
		}
		scaleConvWeights(g, prod, scale, shift)
		removeNode(g, i)
		return true, nil
	}
	return false, nil
}

// FoldScaleIntoConv fuses Conv2D→Scale chains.
func FoldScaleIntoConv(g *graph.Graph) (bool, error) {
	for i, n := range g.Nodes {
		if n.Op != graph.OpScale {
			continue
		}
		prod := g.Producer(n.Inputs[0])
		if prod == nil || prod.Op != graph.OpConv2D {
			continue
		}
		a := prod.Attrs.(*graph.Conv2DAttrs)
		if a.ReLU || a.ReLU6 {
			continue
		}
		ci := soleConsumerIndex(g, prod.Outputs[0])
		if ci < 0 || g.Nodes[ci] != n {
			continue
		}
		sa := n.Attrs.(*graph.ScaleAttrs)
		scale := g.Weights[n.WeightNames[0]].Data()
		oc := len(scale)
		shift := make([]float32, oc)
		if sa.HasBias && len(n.WeightNames) > 1 {
			copy(shift, g.Weights[n.WeightNames[1]].Data())
		}
		scaleConvWeights(g, prod, scale, shift)
		removeNode(g, i)
		return true, nil
	}
	return false, nil
}

// ReplaceBatchNormWithScale rewrites remaining BatchNorm nodes (those not
// behind a conv) into the cheaper folded Scale form — an operator
// replacement in the paper's taxonomy.
func ReplaceBatchNormWithScale(g *graph.Graph) (bool, error) {
	for _, n := range g.Nodes {
		if n.Op != graph.OpBatchNorm {
			continue
		}
		scale, shift, err := bnScaleShift(g, n)
		if err != nil {
			return false, err
		}
		sName := n.Name + "_scale_w"
		bName := n.Name + "_scale_b"
		if _, exists := g.Weights[sName]; !exists {
			g.AddWeight(sName, tensor.FromData(scale, len(scale)))
			g.AddWeight(bName, tensor.FromData(shift, len(shift)))
		} else {
			g.Weights[sName] = tensor.FromData(scale, len(scale))
			g.Weights[bName] = tensor.FromData(shift, len(shift))
		}
		n.Op = graph.OpScale
		n.WeightNames = []string{sName, bName}
		n.Attrs = &graph.ScaleAttrs{HasBias: true}
		return true, nil
	}
	return false, nil
}

// FuseActivation folds ReLU/ReLU6 nodes into a producing Conv2D, Eltwise or
// InnerProduct.
func FuseActivation(g *graph.Graph) (bool, error) {
	for i, n := range g.Nodes {
		if n.Op != graph.OpReLU && n.Op != graph.OpReLU6 {
			continue
		}
		prod := g.Producer(n.Inputs[0])
		if prod == nil {
			continue
		}
		ci := soleConsumerIndex(g, prod.Outputs[0])
		if ci < 0 || g.Nodes[ci] != n {
			continue
		}
		switch prod.Op {
		case graph.OpConv2D, graph.OpDeconv2D:
			a := prod.Attrs.(*graph.Conv2DAttrs)
			if a.ReLU || a.ReLU6 {
				continue
			}
			if n.Op == graph.OpReLU {
				a.ReLU = true
			} else {
				a.ReLU6 = true
			}
		case graph.OpEltwise:
			if n.Op != graph.OpReLU {
				continue
			}
			a := prod.Attrs.(*graph.EltwiseAttrs)
			if a.ReLU {
				continue
			}
			a.ReLU = true
		case graph.OpInnerProduct:
			if n.Op != graph.OpReLU {
				continue
			}
			a := prod.Attrs.(*graph.InnerProductAttrs)
			if a.ReLU {
				continue
			}
			a.ReLU = true
		default:
			continue
		}
		removeNode(g, i)
		return true, nil
	}
	return false, nil
}
