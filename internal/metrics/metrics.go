// Package metrics is a dependency-free instrumentation library exposing
// counters, gauges and histograms in the Prometheus text exposition format
// (version 0.0.4). It implements the small subset of the Prometheus client
// model the serving tier needs — labeled metric families with deterministic
// output — without pulling the real client library into the module.
//
// Usage mirrors prometheus/client_golang:
//
//	reg := metrics.NewRegistry()
//	reqs := reg.NewCounter("mnn_requests_total", "Requests by model.", "model", "code")
//	reqs.With("mobilenet-v1", "200").Inc()
//	lat := reg.NewHistogram("mnn_infer_duration_seconds", "…", metrics.DefBuckets, "model")
//	lat.With("mobilenet-v1").Observe(0.0123)
//	http.Handle("/metrics", reg.Handler())
//
// All types are safe for concurrent use. Hot-path operations (Inc, Add,
// Observe on an already-resolved child) are lock-free atomics; resolving a
// child with With takes a short per-family mutex, so callers on hot paths
// should resolve children once and hold on to them.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are latency-oriented histogram buckets in seconds, matching the
// Prometheus client default: fine resolution in the single-millisecond range
// where engine inferences live, coarse out to 10 s for overload tails.
var DefBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them. Families appear in the
// output in registration order; children within a family in sorted
// label-value order, so consecutive scrapes of the same state are
// byte-identical (tests and diffs rely on this).
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // label-values key → *Counter/*Gauge/*Histogram
}

func (r *Registry) register(name, help, typ string, buckets []float64, labels []string) *family {
	if name == "" || strings.ContainsAny(name, " \n\"{}") {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.seen[name] = true
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]any),
	}
	r.fams = append(r.fams, f)
	return f
}

// NewCounter registers a monotonically increasing counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", nil, labels)}
}

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", nil, labels)}
}

// NewHistogram registers a histogram family with the given upper bucket
// bounds (ascending; the implicit +Inf bucket is added automatically).
// A nil buckets slice means DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	return &HistogramVec{fam: r.register(name, help, "histogram", append([]float64(nil), buckets...), labels)}
}

// child resolves (creating on first use) the child for the given label
// values; build constructs it.
func (f *family) child(values []string, build func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = build()
		f.children[key] = c
	}
	return c
}

// delete removes the child with the given label values; a no-op when the
// child doesn't exist.
func (f *family) delete(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	delete(f.children, key)
	f.mu.Unlock()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// Delete drops the child for the given label values so the series of a
// removed object stops appearing in scrapes. Resolving the same values
// again with With starts a fresh child from zero.
func (v *CounterVec) Delete(values ...string) { v.fam.delete(values) }

// With resolves the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() any { return &Counter{} }).(*Counter)
}

// Counter is one monotonically increasing series.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas panic (counters are monotonic).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// Delete drops the child for the given label values (see CounterVec.Delete).
func (v *GaugeVec) Delete(values ...string) { v.fam.delete(values) }

// With resolves the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Gauge is one series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// Delete drops the child for the given label values (see CounterVec.Delete).
func (v *HistogramVec) Delete(values ...string) { v.fam.delete(values) }

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() any {
		return &Histogram{
			bounds: v.fam.buckets,
			counts: make([]atomic.Uint64, len(v.fam.buckets)+1),
		}
	}).(*Histogram)
}

// Histogram is one series of cumulative buckets plus sum and count.
type Histogram struct {
	bounds []float64       // shared with the family; never mutated
	counts []atomic.Uint64 // one per bound, last is +Inf
	sum    atomic.Uint64   // float64 bits
	n      atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the bucket the sample falls in ("le" semantics);
	// past the last bound it lands in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.n.Add(1)
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// WriteText renders every family in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry over HTTP with the standard content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make(map[string]any, len(f.children))
	for k, v := range f.children {
		children[k] = v
	}
	f.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		switch c := children[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += c.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", formatFloat(bound)), cum)
			}
			cum += c.counts[len(f.buckets)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Count())
		}
	}
}

// labelString renders {a="x",b="y"[,extra="v"]}, or "" when empty.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes backslash, quote and newline exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes newlines and backslashes in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
