package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A counter.", "model")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Add(0.5)
	if got := c.With("a").Value(); got != 3 {
		t.Errorf("counter a = %v, want 3", got)
	}
	if got := c.With("b").Value(); got != 0.5 {
		t.Errorf("counter b = %v, want 0.5", got)
	}
	g := r.NewGauge("test_depth", "A gauge.")
	g.With().Set(7)
	g.With().Add(-2)
	if got := g.With().Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	c.With("a").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "A histogram.", []float64{0.01, 0.1, 1}, "model")
	child := h.With("m")
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 2} {
		child.Observe(v)
	}
	if child.Count() != 5 {
		t.Errorf("count = %d, want 5", child.Count())
	}
	if math.Abs(child.Sum()-2.535) > 1e-9 {
		t.Errorf("sum = %v, want 2.535", child.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: le 0.01 holds 0.005 and 0.01 (le semantics),
	// le 0.1 adds 0.02, le 1 adds 0.5, +Inf adds 2.
	for _, want := range []string{
		`test_seconds_bucket{model="m",le="0.01"} 2`,
		`test_seconds_bucket{model="m",le="0.1"} 3`,
		`test_seconds_bucket{model="m",le="1"} 4`,
		`test_seconds_bucket{model="m",le="+Inf"} 5`,
		`test_seconds_count{model="m"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "Total requests.", "model", "code")
	c.With("mobilenet-v1", "200").Add(3)
	c.With("mobilenet-v1", "429").Inc()
	g := r.NewGauge("app_up", "Server up.")
	g.With().Set(1)
	r.NewHistogram("app_latency_seconds", "Latency.", []float64{0.5}, "model")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{model="mobilenet-v1",code="200"} 3
app_requests_total{model="mobilenet-v1",code="429"} 1
# HELP app_up Server up.
# TYPE app_up gauge
app_up 1
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
`
	if b.String() != want {
		t.Errorf("exposition output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// ValidatePromText wraps ValidateText for test call sites.
func ValidatePromText(t *testing.T, text string) {
	t.Helper()
	if err := ValidateText(text); err != nil {
		t.Error(err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "Escapes.", "path")
	c.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("escaped output = %q, want to contain %q", b.String(), want)
	}
	ValidatePromText(t, b.String())
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "y")
}

func TestLabelCardinalityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("card_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label count did not panic")
		}
	}()
	c.With("only-one")
}

// TestConcurrentUpdates exercises the atomics under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "x", "m")
	h := r.NewHistogram("conc_seconds", "x", nil, "m")
	g := r.NewGauge("conc_depth", "x", "m")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cnt := c.With("m")
			hist := h.With("m")
			for i := 0; i < 1000; i++ {
				cnt.Inc()
				hist.Observe(0.003)
				g.With("m").Set(float64(i))
			}
		}()
	}
	// Concurrent scrape while updating.
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := c.With("m").Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := h.With("m").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestVecDelete(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_bucket_gauge", "per-bucket gauge", "model", "bucket")
	g.With("m", "a").Set(1)
	g.With("m", "b").Set(2)
	g.Delete("m", "a")
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `bucket="a"`) {
		t.Fatalf("deleted series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `test_bucket_gauge{model="m",bucket="b"} 2`) {
		t.Fatalf("surviving series missing:\n%s", out)
	}
	// Re-creating a deleted series starts from a fresh child.
	g.With("m", "a").Add(5)
	if v := g.With("m", "a").Value(); v != 5 {
		t.Fatalf("recreated series value %v, want 5", v)
	}
	// Deleting a never-created series is a no-op; wrong label count panics.
	g.Delete("m", "never")
	defer func() {
		if recover() == nil {
			t.Fatal("Delete with wrong label count did not panic")
		}
	}()
	g.Delete("m")
}
