package metrics

import (
	"fmt"
	"regexp"
	"strings"
)

// promLine matches one valid exposition sample line:
// name{label="v",...} value — or a bare name value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$`)

// ValidateText checks that text is well-formed Prometheus exposition format:
// every non-empty line is a # HELP/# TYPE comment or a sample line. It is
// used by the serving tests and the CI metrics smoke to assert /metrics
// output parses, without needing promtool in the image.
func ValidateText(text string) error {
	if strings.TrimSpace(text) == "" {
		return fmt.Errorf("metrics: empty exposition output")
	}
	for i, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("metrics: invalid exposition line %d: %q", i+1, line)
		}
	}
	return nil
}
