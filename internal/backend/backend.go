// Package backend defines the backend abstraction module of Section 3.4:
// the uniform interface (Figure 5 of the paper) behind which every hardware
// platform and software solution hides. Resource management, memory
// allocation and scheduling are disentangled from operator implementations:
// "front-end operator" code only sees this interface.
package backend

import (
	"fmt"

	"mnn/internal/graph"
	"mnn/internal/memory"
	"mnn/internal/tensor"
)

// Kind identifies a backend implementation, mirroring MNNForwardType.
type Kind uint8

const (
	KindCPU Kind = iota
	KindMetal
	KindOpenCL
	KindOpenGL
	KindVulkan
)

func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindMetal:
		return "Metal"
	case KindOpenCL:
		return "OpenCL"
	case KindOpenGL:
		return "OpenGL"
	case KindVulkan:
		return "Vulkan"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// StorageType mirrors the paper's buffer storage classes.
type StorageType uint8

const (
	// StorageStatic buffers live for the whole session (weights, constants).
	StorageStatic StorageType = iota
	// StorageDynamic buffers are planned into the reuse arena (activations,
	// workspaces) during pre-inference.
	StorageDynamic
)

// WeightSource resolves constant tensors by name during OnCreate.
type WeightSource func(name string) *tensor.Tensor

// Execution is a prepared, bound operator instance (the object onCreate
// returns in Figure 5). Everything shape- or weight-dependent happened at
// creation; Run is pure compute.
type Execution interface {
	Run() error
}

// Backend is the uniform interface of Figure 5.
type Backend interface {
	// Kind identifies the backend.
	Kind() Kind
	// Name is the human-readable unique name (used in assignments/costs).
	Name() string

	// Supports reports whether the operator can run here. Unsupported ops
	// are scheduled to the CPU (Section 3.2).
	Supports(n *graph.Node) bool

	// OnCreate builds the execution instance for one operator with bound
	// input/output tensors. Weight re-packing, Winograd weight transforms
	// and (on GPU) pipeline/command setup happen here — during
	// pre-inference, not inference (Table 2's decoupling).
	OnCreate(n *graph.Node, inputs, outputs []*tensor.Tensor, weights WeightSource) (Execution, error)

	// OnExecuteBegin/End bracket one inference (GPU backends open/submit
	// their command stream here).
	OnExecuteBegin()
	OnExecuteEnd()

	// OnAcquireBuffer declares that the named buffer of size float32
	// elements must be live from the current step; OnReleaseBuffer ends the
	// lifetime. Static buffers bypass the reuse arena.
	OnAcquireBuffer(name string, size int, step int, st StorageType)
	OnReleaseBuffer(name string, step int)
	// OnAllocate ends the virtual walk: plans and materializes the arena.
	OnAllocate() error
	// OnClearBuffer drops all planned state.
	OnClearBuffer()
	// Buffer returns the backing slice of a planned buffer.
	Buffer(name string) []float32
	// ArenaSize reports the planned arena length (float32 elements).
	ArenaSize() int
	// NoReuseSize reports the arena length a reuse-free allocator would
	// need, for diagnostics.
	NoReuseSize() int

	// OnCopyBuffer copies src into dst, converting layout if needed
	// (and, across backends, modelling the transfer).
	OnCopyBuffer(src, dst *tensor.Tensor) error

	// PreferredLayout returns the activation layout for a tensor rank.
	PreferredLayout(rank int) tensor.Layout

	// FLOPS and ScheduleOverheadMs are the Equation 5 cost terms.
	FLOPS() float64
	ScheduleOverheadMs() float64
}

// WorkspaceSizer is implemented by backends whose kernels need transient
// scratch (GEMM workspaces, Strassen temporaries, Winograd tile buffers,
// layout-staging copies). During the pre-inference walk the session asks
// for each node's requirement and plans it into the reuse arena with a
// single-step lifetime, so OnCreate can bind planner-backed slices and the
// hot path never calls the allocator (the paper's Figure 3 extended from
// activations to all transients).
type WorkspaceSizer interface {
	// NodeWorkspaceFloats returns the float32 count of scratch the backend
	// will want for this node, given the inferred input/output shapes.
	// Zero means no workspace.
	NodeWorkspaceFloats(n *graph.Node, inputShapes, outputShapes [][]int) int
}

// WorkspaceKey names a node's planned workspace buffer inside its backend's
// arena ("ws@" + node name; node names never collide with it because
// tensor buffers are keyed by output-tensor name).
func WorkspaceKey(node string) string { return "ws@" + node }

// BufferTracker implements the acquire/release/allocate protocol on top of
// the memory planner; concrete backends embed it.
type BufferTracker struct {
	items    []memory.Item
	open     map[string]int // name → index into items
	statics  map[string][]float32
	arena    *memory.Arena
	plan     *memory.Plan
	lastStep int
}

// NewBufferTracker returns an empty tracker.
func NewBufferTracker() *BufferTracker {
	return &BufferTracker{open: map[string]int{}, statics: map[string][]float32{}}
}

// OnAcquireBuffer records the start of a buffer's lifetime.
func (bt *BufferTracker) OnAcquireBuffer(name string, size int, step int, st StorageType) {
	if st == StorageStatic {
		bt.statics[name] = make([]float32, size)
		return
	}
	if _, dup := bt.open[name]; dup {
		panic(fmt.Sprintf("backend: buffer %q acquired twice", name))
	}
	bt.items = append(bt.items, memory.Item{Name: name, Size: size, DefStep: step, LastStep: step})
	bt.open[name] = len(bt.items) - 1
	if step > bt.lastStep {
		bt.lastStep = step
	}
}

// OnReleaseBuffer extends then closes a buffer's lifetime at step.
func (bt *BufferTracker) OnReleaseBuffer(name string, step int) {
	idx, ok := bt.open[name]
	if !ok {
		if _, isStatic := bt.statics[name]; isStatic {
			return
		}
		panic(fmt.Sprintf("backend: release of unknown buffer %q", name))
	}
	if step > bt.items[idx].LastStep {
		bt.items[idx].LastStep = step
	}
	if step > bt.lastStep {
		bt.lastStep = step
	}
	delete(bt.open, name)
}

// OnAllocate plans all recorded lifetimes and materializes the arena.
// Buffers still open are extended to the final step.
func (bt *BufferTracker) OnAllocate() error {
	for name, idx := range bt.open {
		_ = name
		if bt.items[idx].LastStep < bt.lastStep {
			bt.items[idx].LastStep = bt.lastStep
		}
	}
	plan, err := memory.PlanItems(bt.items)
	if err != nil {
		return err
	}
	bt.plan = plan
	bt.arena = memory.NewArena(plan)
	return nil
}

// OnClearBuffer drops everything.
func (bt *BufferTracker) OnClearBuffer() {
	bt.items = nil
	bt.open = map[string]int{}
	bt.statics = map[string][]float32{}
	bt.arena = nil
	bt.plan = nil
	bt.lastStep = 0
}

// PlannedBuffer returns the backing slice of a planned or static buffer,
// or nil when the name was never planned (e.g. a backend used outside a
// session's pre-inference walk). Unlike Buffer it never panics, so
// OnCreate can fall back to a private allocation.
func (bt *BufferTracker) PlannedBuffer(name string) []float32 {
	if s, ok := bt.statics[name]; ok {
		return s
	}
	if bt.arena != nil && bt.arena.Has(name) {
		return bt.arena.Buffer(name)
	}
	return nil
}

// Buffer returns a planned or static buffer.
func (bt *BufferTracker) Buffer(name string) []float32 {
	if s, ok := bt.statics[name]; ok {
		return s
	}
	if bt.arena == nil {
		panic("backend: Buffer before OnAllocate")
	}
	return bt.arena.Buffer(name)
}

// ArenaSize reports the dynamic arena size (excludes statics).
func (bt *BufferTracker) ArenaSize() int {
	if bt.arena == nil {
		return 0
	}
	return bt.arena.Size()
}

// NoReuseSize reports what the arena would cost without lifetime reuse
// (the Figure 3 comparison baseline).
func (bt *BufferTracker) NoReuseSize() int {
	if bt.plan == nil {
		return 0
	}
	return bt.plan.NoReuseSize
}
