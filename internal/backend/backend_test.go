package backend

import (
	"testing"
)

func TestBufferTrackerLifecycle(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("a", 100, 0, StorageDynamic)
	bt.OnAcquireBuffer("b", 200, 1, StorageDynamic)
	bt.OnReleaseBuffer("a", 1)
	bt.OnReleaseBuffer("b", 2)
	bt.OnAcquireBuffer("c", 100, 2, StorageDynamic)
	bt.OnReleaseBuffer("c", 3)
	if err := bt.OnAllocate(); err != nil {
		t.Fatal(err)
	}
	if len(bt.Buffer("a")) != 100 || len(bt.Buffer("b")) != 200 || len(bt.Buffer("c")) != 100 {
		t.Fatal("buffer lengths wrong")
	}
	if bt.ArenaSize() <= 0 {
		t.Fatal("arena empty")
	}
	// c is defined after a is freed and should reuse its space: arena must
	// be smaller than the naive 400+ floats.
	if bt.ArenaSize() > 320+2*16 {
		t.Errorf("arena %d did not reuse freed chunks", bt.ArenaSize())
	}
}

func TestBufferTrackerStatics(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("w", 64, 0, StorageStatic)
	// Statics are available before OnAllocate and never planned.
	if len(bt.Buffer("w")) != 64 {
		t.Fatal("static buffer missing")
	}
	bt.OnReleaseBuffer("w", 5) // must be a no-op, not a panic
	if err := bt.OnAllocate(); err != nil {
		t.Fatal(err)
	}
	if bt.ArenaSize() != 0 {
		t.Fatalf("statics must not consume arena: %d", bt.ArenaSize())
	}
}

func TestBufferTrackerOpenBuffersExtended(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("never-released", 10, 0, StorageDynamic)
	bt.OnAcquireBuffer("later", 10, 5, StorageDynamic)
	bt.OnReleaseBuffer("later", 6)
	if err := bt.OnAllocate(); err != nil {
		t.Fatal(err)
	}
	// The open buffer must live to the final step, i.e. not share space
	// with "later".
	a := bt.Buffer("never-released")
	b := bt.Buffer("later")
	a[0] = 1
	b[0] = 2
	if a[0] != 1 {
		t.Fatal("open buffer was recycled")
	}
}

func TestBufferTrackerDoubleAcquirePanics(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("x", 1, 0, StorageDynamic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bt.OnAcquireBuffer("x", 1, 1, StorageDynamic)
}

func TestBufferTrackerUnknownReleasePanics(t *testing.T) {
	bt := NewBufferTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bt.OnReleaseBuffer("ghost", 0)
}

func TestBufferTrackerClear(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("a", 10, 0, StorageDynamic)
	bt.OnReleaseBuffer("a", 1)
	if err := bt.OnAllocate(); err != nil {
		t.Fatal(err)
	}
	bt.OnClearBuffer()
	if bt.ArenaSize() != 0 {
		t.Fatal("clear failed")
	}
	// Reusable after clear.
	bt.OnAcquireBuffer("a", 10, 0, StorageDynamic)
	bt.OnReleaseBuffer("a", 1)
	if err := bt.OnAllocate(); err != nil {
		t.Fatal(err)
	}
	if len(bt.Buffer("a")) != 10 {
		t.Fatal("tracker not reusable after clear")
	}
}

func TestBufferPanicsBeforeAllocate(t *testing.T) {
	bt := NewBufferTracker()
	bt.OnAcquireBuffer("a", 10, 0, StorageDynamic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bt.Buffer("a")
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindCPU: "CPU", KindMetal: "Metal", KindOpenCL: "OpenCL",
		KindOpenGL: "OpenGL", KindVulkan: "Vulkan",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v", k)
		}
	}
}
