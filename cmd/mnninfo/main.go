// Command mnninfo inspects a model: per-layer shapes, multiplication
// counts, the Equation 2–3 scheme each convolution would get, the planned
// memory footprint, and the operator census — the kind of "more tools for
// user convenience" the paper's Section 5 plans.
//
//	mnninfo -net inception-v3
//	mnninfo -in model.mnng -layers
package main

import (
	"flag"
	"fmt"
	"os"

	"mnn"
	"mnn/internal/core"
	"mnn/internal/graph"
	"mnn/internal/memory"
	"mnn/internal/tensor"
)

func main() {
	binIn := flag.String("in", "", "binary model path")
	net := flag.String("net", "", "built-in network name instead of -in")
	layers := flag.Bool("layers", false, "print the per-layer table")
	flag.Parse()

	var g *mnn.Graph
	var err error
	switch {
	case *net != "":
		g, err = mnn.BuildNetwork(*net)
	case *binIn != "":
		g, err = mnn.LoadGraphFile(*binIn)
	default:
		fmt.Fprintln(os.Stderr, "mnninfo: -in or -net is required")
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	shapes, err := graph.InferShapes(g, nil)
	if err != nil {
		fail(err)
	}

	fmt.Printf("model: %s\n", g.Name)
	fmt.Printf("inputs: %v  outputs: %v\n", g.InputNames, g.OutputNames)

	// Census.
	fmt.Println("\noperator census:")
	for _, c := range g.OpCensus() {
		fmt.Printf("  %-14s %4d\n", c.Op, c.Count)
	}

	// Weights.
	var weightFloats, weightBytes int64
	for _, w := range g.Weights {
		weightFloats += int64(w.NumElements())
		switch w.DType() {
		case tensor.Int8:
			weightBytes += int64(w.NumElements())
		default:
			weightBytes += int64(w.NumElements()) * 4
		}
	}
	fmt.Printf("\nweights: %d tensors, %.2fM parameters, %.1f MB\n",
		len(g.Weights), float64(weightFloats)/1e6, float64(weightBytes)/(1<<20))

	// Compute.
	var totalMULs, convMULs int64
	schemes := map[string]int{}
	for _, n := range g.Nodes {
		muls := graph.MULCount(n, shapes)
		totalMULs += muls
		if n.Op == graph.OpConv2D {
			convMULs += muls
			dec := core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), shapes[n.Inputs[0]])
			schemes[dec.Scheme.String()]++
		}
	}
	fmt.Printf("compute: %.1f GMACs total, %.1f GMACs in convolutions\n",
		float64(totalMULs)/1e9, float64(convMULs)/1e9)
	fmt.Printf("pre-inference scheme mix: %v\n", schemes)

	// Activation memory plan (single-backend NC4HW4, as the CPU session
	// would lay it out).
	producerStep := map[string]int{}
	lastUse := map[string]int{}
	for i, n := range g.Nodes {
		for _, o := range n.Outputs {
			producerStep[o] = i
			lastUse[o] = i
		}
		for _, in := range n.Inputs {
			lastUse[in] = i
		}
	}
	for _, o := range g.OutputNames {
		lastUse[o] = len(g.Nodes) - 1
	}
	var items []memory.Item
	for name, def := range producerStep {
		s := shapes[name]
		shape4 := s
		if len(s) != 4 {
			shape4 = []int{1, 1, 1, tensor.NumElements(s)}
		}
		items = append(items, memory.Item{
			Name: name, Size: tensor.PhysicalLen(tensor.NC4HW4, shape4),
			DefStep: def, LastStep: lastUse[name],
		})
	}
	plan, err := memory.PlanItems(items)
	if err != nil {
		fail(err)
	}
	fmt.Printf("activation arena: %.1f MB planned (%.1f MB without lifetime reuse, %.0f%% saved)\n",
		float64(plan.ArenaSize)*4/(1<<20), float64(plan.NoReuseSize)*4/(1<<20),
		(1-float64(plan.ArenaSize)/float64(plan.NoReuseSize))*100)

	if *layers {
		fmt.Println("\nper-layer table:")
		fmt.Printf("%-28s %-13s %-18s %12s %-12s\n", "name", "op", "output", "MACs", "scheme")
		for _, n := range g.Nodes {
			out := ""
			if len(n.Outputs) > 0 {
				out = fmt.Sprint(shapes[n.Outputs[0]])
			}
			scheme := ""
			if n.Op == graph.OpConv2D {
				dec := core.SelectConvScheme(n.Attrs.(*graph.Conv2DAttrs), shapes[n.Inputs[0]])
				scheme = dec.Scheme.String()
				if dec.Scheme.String() == "winograd" {
					scheme = fmt.Sprintf("winograd %dx%d", dec.TileH, dec.TileW)
				}
			}
			fmt.Printf("%-28s %-13s %-18s %12d %-12s\n",
				trunc(n.Name, 28), n.Op, out, graph.MULCount(n, shapes), scheme)
		}
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnninfo:", err)
	os.Exit(1)
}
