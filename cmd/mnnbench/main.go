// Command mnnbench regenerates the tables and figures of the paper's
// evaluation section. Run one experiment:
//
//	mnnbench -exp table1
//
// or everything:
//
//	mnnbench -exp all
//
// Host-measured experiments (Tables 1–3, 7, ablations) time this
// repository's kernels on the local machine; device-labelled experiments
// (Figures 7–9, Tables 5, 6, 8) use the Equation 5 simulator with the
// paper's Appendix C device constants — see DESIGN.md for the substitution
// rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mnn/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, "+strings.Join(bench.Experiments, ", "))
	quick := flag.Bool("quick", false, "reduce repetitions and sizes for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Println(e)
		}
		return
	}
	opt := bench.Options{Quick: *quick, Out: os.Stdout}
	run := func(name string) {
		if err := bench.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "mnnbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range bench.Experiments {
			run(e)
		}
		return
	}
	for _, e := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(e))
	}
}
