// Command mnnbench regenerates the tables and figures of the paper's
// evaluation section. Run one experiment:
//
//	mnnbench -exp table1
//
// or everything:
//
//	mnnbench -exp all
//
// With -json the measured rows are additionally written as a
// machine-readable array (experiment, case, ns/op, throughput) for the
// perf-trajectory tooling; table output is unchanged:
//
//	mnnbench -exp throughput,serving -json bench.json
//
// Host-measured experiments (Tables 1–3, 7, ablations) time this
// repository's kernels on the local machine; device-labelled experiments
// (Figures 7–9, Tables 5, 6, 8) use the Equation 5 simulator with the
// paper's Appendix C device constants — see DESIGN.md for the substitution
// rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mnn/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, "+strings.Join(bench.Experiments, ", "))
	quick := flag.Bool("quick", false, "reduce repetitions and sizes for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "also write machine-readable results to this path")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Println(e)
		}
		return
	}
	opt := bench.Options{Quick: *quick, Out: os.Stdout}
	if *jsonPath != "" {
		opt.Recorder = &bench.Recorder{}
	}
	// writeResults flushes whatever has been recorded so far, so a failing
	// experiment doesn't discard the rows measured before it.
	writeResults := func() {
		if opt.Recorder == nil {
			return
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnnbench: %v\n", err)
			os.Exit(1)
		}
		if err := opt.Recorder.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnnbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result rows to %s\n", len(opt.Recorder.Results()), *jsonPath)
	}
	run := func(name string) {
		if err := bench.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "mnnbench: %s: %v\n", name, err)
			writeResults()
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range bench.Experiments {
			run(e)
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(e))
		}
	}
	writeResults()
}
