// Command mnnrun loads a model and runs inference through the v2 Engine
// API, reporting latency, pre-inference decisions and (optionally) the
// Equation 5 simulated time on a named device profile. With -check it also
// validates the engine output against the naive reference interpreter.
//
//	mnnrun -in model.mnng -threads 4 -runs 10
//	mnnrun -net mobilenet-v1 -device MI6 -forward auto -simulate
//	mnnrun -net resnet-18 -check
//	mnnrun -net mobilenet-v1 -pool 4 -inflight 4 -runs 16   # concurrent
//	mnnrun -net inception-v3 -timeout 100ms                 # cancellation
//	mnnrun -net resnet-18 -tuning measured -tuning-cache /tmp/rn18.tuning
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"mnn"
	"mnn/internal/loadgen"
	"mnn/internal/tensor"
)

func main() {
	binIn := flag.String("in", "", "binary model path")
	net := flag.String("net", "", "built-in network name instead of -in")
	threads := flag.Int("threads", 4, "CPU threads per pooled session")
	runs := flag.Int("runs", 10, "timed runs (after one warm-up, as in the paper)")
	deviceName := flag.String("device", "", "simulated device profile (see -list-devices)")
	forward := flag.String("forward", "cpu", "backend: auto, cpu, metal, opencl, opengl, vulkan")
	precision := flag.String("precision", "fp32", "execution precision: fp32 or int8")
	tuning := flag.String("tuning", "heuristic", "kernel search: heuristic, cost or measured")
	tuningCache := flag.String("tuning-cache", "", "persistent tuning-cache file for -tuning measured")
	simulate := flag.Bool("simulate", false, "report Equation 5 simulated time")
	check := flag.Bool("check", false, "compare output against the reference interpreter")
	profile := flag.Bool("profile", false, "print a per-operator timing breakdown")
	pool := flag.Int("pool", 1, "prepared sessions held by the engine")
	inflight := flag.Int("inflight", 1, "concurrent inference goroutines for the timed runs")
	timeout := flag.Duration("timeout", 0, "per-inference deadline (0 = none)")
	listDevices := flag.Bool("list-devices", false, "list device profiles and exit")
	flag.Parse()

	if *listDevices {
		for _, d := range mnn.Devices() {
			fmt.Println(d)
		}
		return
	}

	// -in always loads a file; a bare name only ever resolves to the zoo.
	var model any
	switch {
	case *binIn != "":
		g, err := mnn.LoadGraphFile(*binIn)
		if err != nil {
			fail(err)
		}
		model = g
	case *net != "":
		model = *net
	default:
		fmt.Fprintln(os.Stderr, "mnnrun: -in or -net is required")
		os.Exit(2)
	}
	if *runs < 1 {
		fail(fmt.Errorf("-runs must be >= 1, got %d", *runs))
	}
	if *inflight < 1 {
		fail(fmt.Errorf("-inflight must be >= 1, got %d", *inflight))
	}

	ft, err := mnn.ParseForwardType(*forward)
	if err != nil {
		fail(err)
	}
	prec, err := mnn.ParsePrecision(*precision)
	if err != nil {
		fail(err)
	}
	tm, err := mnn.ParseTuningMode(*tuning)
	if err != nil {
		fail(err)
	}
	opts := []mnn.Option{
		mnn.WithThreads(*threads),
		mnn.WithForwardType(ft),
		mnn.WithPoolSize(*pool),
		mnn.WithPrecision(prec),
		mnn.WithTuning(tm),
		mnn.WithTuningCache(*tuningCache),
	}
	if *deviceName != "" {
		opts = append(opts, mnn.WithDevice(*deviceName))
	}
	if *simulate {
		opts = append(opts, mnn.WithSimulatedClock())
	}

	t0 := time.Now()
	eng, err := mnn.Open(model, opts...)
	if err != nil {
		fail(err)
	}
	defer eng.Close()
	fmt.Printf("pre-inference: %.1f ms (%d pooled sessions)\n",
		float64(time.Since(t0).Microseconds())/1000, eng.PoolSize())

	st := eng.Stats()
	fmt.Printf("schemes: %v\n", st.SchemeCounts)
	if tm != mnn.TuningHeuristic {
		ts := eng.TuningStats()
		fmt.Printf("tuning: %s — %d conv ops, %d unique shapes, %d cache hits, %d measured\n",
			ts.Mode, ts.ConvOps, ts.Unique, ts.CacheHits, ts.Measured)
	}
	backends := map[string]int{}
	for _, b := range st.Assignment {
		backends[b]++
	}
	fmt.Printf("backend assignment: %v (cross-backend copies: %d)\n", backends, st.CrossBackendCopies)
	for name, floats := range st.ArenaFloats {
		fmt.Printf("arena[%s]: %.1f MB\n", name, float64(floats)*4/(1<<20))
	}

	newCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	infer := func(inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
		ctx, cancel := newCtx()
		defer cancel()
		return eng.Infer(ctx, inputs)
	}

	// Fill inputs deterministically.
	inputs := map[string]*mnn.Tensor{}
	for _, name := range eng.InputNames() {
		in := mnn.NewTensor(eng.InputShape(name)...)
		tensor.FillRandom(in, 1, 1)
		inputs[name] = in
	}

	// Warm-up + timed runs (paper Section 4.1's protocol), optionally with
	// several requests in flight against the session pool.
	if _, err := infer(inputs); err != nil {
		fail(err)
	}
	if *simulate {
		eng.ResetSimulatedClock()
	}
	var (
		mu      sync.Mutex
		outputs map[string]*mnn.Tensor
	)
	st2, err := loadgen.RunConcurrent(func() error {
		out, err := infer(inputs)
		if err != nil {
			return err
		}
		mu.Lock()
		outputs = out
		mu.Unlock()
		return nil
	}, loadgen.ConcurrentConfig{
		InFlight: *inflight, MinQueryCount: *runs, MaxQueryCount: *runs,
	})
	if err != nil {
		if errors.Is(err, mnn.ErrCancelled) {
			fail(fmt.Errorf("inference exceeded -timeout %v: %w", *timeout, err))
		}
		fail(err)
	}
	fmt.Printf("host latency: %.2f ms mean, %.2f ms p90 (%d runs, %d in flight)\n",
		float64(st2.MeanLatency.Microseconds())/1000,
		float64(st2.P90Latency.Microseconds())/1000, st2.QueryCount, *inflight)
	if *inflight > 1 {
		fmt.Printf("aggregate throughput: %.2f inferences/s\n", st2.QPSWithLoadgen)
	}
	if *simulate {
		fmt.Printf("simulated latency on %s: %.2f ms/run\n",
			*deviceName, eng.SimulatedMs()/float64(*runs))
	}

	if *check {
		ref, err := mnn.RunReference(eng.Graph(), inputs)
		if err != nil {
			fail(err)
		}
		worst := 0.0
		for _, name := range eng.OutputNames() {
			if d := tensor.MaxAbsDiff(ref[name], outputs[name]); d > worst {
				worst = d
			}
		}
		fmt.Printf("reference check: max |Δ| = %g\n", worst)
		if worst > 5e-3 {
			fail(fmt.Errorf("output mismatch vs reference: %g", worst))
		}
	}
	if *profile {
		ctx, cancel := newCtx()
		_, p, err := eng.InferProfiled(ctx, inputs)
		cancel()
		if err != nil {
			fail(err)
		}
		fmt.Println()
		p.Dump(os.Stdout, 10)
	}
	for _, name := range eng.OutputNames() {
		fmt.Printf("output %q: %v\n", name, outputs[name])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnnrun:", err)
	os.Exit(1)
}
