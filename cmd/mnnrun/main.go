// Command mnnrun loads a model and runs inference, reporting latency,
// pre-inference decisions and (optionally) the Equation 5 simulated time on
// a named device profile. With -check it also validates the engine output
// against the naive reference interpreter.
//
//	mnnrun -in model.mnng -threads 4 -runs 10
//	mnnrun -net mobilenet-v1 -device MI6 -forward auto -simulate
//	mnnrun -net resnet-18 -check
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

func main() {
	binIn := flag.String("in", "", "binary model path")
	net := flag.String("net", "", "built-in network name instead of -in")
	threads := flag.Int("threads", 4, "CPU threads")
	runs := flag.Int("runs", 10, "timed runs (after one warm-up, as in the paper)")
	deviceName := flag.String("device", "", "simulated device profile (see -list-devices)")
	forward := flag.String("forward", "cpu", "backend: auto, cpu, metal, opencl, opengl, vulkan")
	simulate := flag.Bool("simulate", false, "report Equation 5 simulated time")
	check := flag.Bool("check", false, "compare output against the reference interpreter")
	profile := flag.Bool("profile", false, "print a per-operator timing breakdown")
	listDevices := flag.Bool("list-devices", false, "list device profiles and exit")
	flag.Parse()

	if *listDevices {
		for _, d := range mnn.Devices() {
			fmt.Println(d)
		}
		return
	}

	var g *mnn.Graph
	var err error
	switch {
	case *net != "":
		g, err = mnn.BuildNetwork(*net)
	case *binIn != "":
		var ip *mnn.Interpreter
		if ip, err = mnn.LoadModelFile(*binIn); err == nil {
			g = ip.Graph()
		}
	default:
		fmt.Fprintln(os.Stderr, "mnnrun: -in or -net is required")
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	ft := map[string]mnn.ForwardType{
		"auto": mnn.ForwardAuto, "cpu": mnn.ForwardCPU, "metal": mnn.ForwardMetal,
		"opencl": mnn.ForwardOpenCL, "opengl": mnn.ForwardOpenGL, "vulkan": mnn.ForwardVulkan,
	}[strings.ToLower(*forward)]

	interp := mnn.NewInterpreter(g)
	t0 := time.Now()
	sess, err := interp.CreateSession(mnn.Config{
		Type: ft, Threads: *threads, DeviceName: *deviceName, Simulate: *simulate,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("pre-inference: %.1f ms\n", float64(time.Since(t0).Microseconds())/1000)

	st := sess.Stats()
	fmt.Printf("schemes: %v\n", st.SchemeCounts)
	backends := map[string]int{}
	for _, b := range st.Assignment {
		backends[b]++
	}
	fmt.Printf("backend assignment: %v (cross-backend copies: %d)\n", backends, st.CrossBackendCopies)
	for name, floats := range st.ArenaFloats {
		fmt.Printf("arena[%s]: %.1f MB\n", name, float64(floats)*4/(1<<20))
	}

	// Fill inputs deterministically.
	inputs := map[string]*mnn.Tensor{}
	for _, name := range g.InputNames {
		in := sess.Input(name)
		tmp := tensor.New(in.Shape()...)
		tensor.FillRandom(tmp, 1, 1)
		in.CopyFrom(tmp)
		inputs[name] = tmp
	}

	// Warm-up + timed runs (paper Section 4.1's protocol).
	if _, err := sess.RunTimed(); err != nil {
		fail(err)
	}
	if *simulate {
		sess.ResetSimulatedClock()
	}
	var total time.Duration
	for i := 0; i < *runs; i++ {
		d, err := sess.RunTimed()
		if err != nil {
			fail(err)
		}
		total += d
	}
	fmt.Printf("host latency: %.2f ms (avg of %d runs)\n",
		float64(total.Microseconds())/1000/float64(*runs), *runs)
	if *simulate {
		fmt.Printf("simulated latency on %s: %.2f ms/run\n",
			*deviceName, sess.SimulatedMs()/float64(*runs))
	}

	if *check {
		ref, err := mnn.RunReference(g, inputs)
		if err != nil {
			fail(err)
		}
		worst := 0.0
		for _, name := range sess.OutputNames() {
			if d := tensor.MaxAbsDiff(ref[name], sess.Output(name)); d > worst {
				worst = d
			}
		}
		fmt.Printf("reference check: max |Δ| = %g\n", worst)
		if worst > 5e-3 {
			fail(fmt.Errorf("output mismatch vs reference: %g", worst))
		}
	}
	if *profile {
		p, err := sess.RunProfiled()
		if err != nil {
			fail(err)
		}
		fmt.Println()
		p.Dump(os.Stdout, 10)
	}
	for _, name := range sess.OutputNames() {
		out := sess.Output(name)
		fmt.Printf("output %q: %v\n", name, out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnnrun:", err)
	os.Exit(1)
}
