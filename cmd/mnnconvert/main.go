// Command mnnconvert is the offline converter of Figure 2: it reads a model
// (the pseudo-ONNX JSON frontend or a built-in zoo network), runs the graph
// optimizer (operator fusion/replacement, Dropout elimination), optionally
// quantizes weights to int8, and writes the engine's binary format.
//
//	mnnconvert -net mobilenet-v1 -o mobilenet.mnng
//	mnnconvert -json model.json -quantize -o model.mnng
//	mnnconvert -net mobilenet-v1 -quantize -calibrate 8 -o mobilenet-int8.mnng
//	mnnconvert -in model.mnng -export-json model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mnn"
	"mnn/internal/converter"
)

func main() {
	net := flag.String("net", "", "built-in network to convert (see -list-nets)")
	jsonIn := flag.String("json", "", "read the JSON frontend format from this file")
	binIn := flag.String("in", "", "read an existing binary model from this file")
	out := flag.String("o", "", "output path for the binary model")
	exportJSON := flag.String("export-json", "", "write the graph back out as frontend JSON")
	optimize := flag.Bool("optimize", true, "run the offline graph optimizer")
	quantize := flag.Bool("quantize", false, "int8-quantize conv/FC weights")
	calibrate := flag.Int("calibrate", 0, "record per-tensor activation scales from this many synthetic samples (enables fixed-scale int8 execution)")
	calibSeed := flag.Uint64("calibrate-seed", 1, "deterministic seed for the synthetic calibration samples")
	prune := flag.Float64("prune", 0, "magnitude-prune conv/FC weights to this sparsity (0–1)")
	listNets := flag.Bool("list-nets", false, "list built-in networks and exit")
	flag.Parse()

	if *listNets {
		for _, n := range mnn.Networks() {
			fmt.Println(n)
		}
		return
	}

	var g *mnn.Graph
	var err error
	switch {
	case *net != "":
		g, err = mnn.BuildNetwork(*net)
	case *jsonIn != "":
		var f *os.File
		if f, err = os.Open(*jsonIn); err == nil {
			g, err = mnn.ParseJSONModel(f)
			f.Close()
		}
	case *binIn != "":
		g, err = mnn.LoadGraphFile(*binIn)
	default:
		fmt.Fprintln(os.Stderr, "mnnconvert: one of -net, -json or -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	if *optimize {
		before := len(g.Nodes)
		if err := mnn.Optimize(g); err != nil {
			fail(err)
		}
		fmt.Printf("optimizer: %d → %d nodes\n", before, len(g.Nodes))
	}
	if *prune > 0 {
		// Prune before quantizing so magnitudes are still float32.
		sp := mnn.PruneWeights(g, *prune)
		fmt.Printf("pruner: %.1f%% of conv/FC weights zeroed\n", sp*100)
	}
	if *calibrate > 0 {
		// Calibration runs fp32 inference, so it happens after pruning (the
		// shipped weights determine the activation ranges) but before weight
		// quantization mutates the graph.
		scales, err := mnn.CalibrateSynthetic(g, *calibrate, *calibSeed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("calibrator: %d activation scales from %d samples\n", len(scales), *calibrate)
	}
	if *quantize {
		count, saved := mnn.QuantizeWeights(g)
		fmt.Printf("quantizer: %d tensors → int8, %.1f MB saved\n", count, float64(saved)/(1<<20))
	}

	if *exportJSON != "" {
		f, err := os.Create(*exportJSON)
		if err != nil {
			fail(err)
		}
		if err := converter.ExportJSON(g, f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *exportJSON)
	}
	if *out != "" {
		if err := mnn.SaveModelFile(g, *out); err != nil {
			fail(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%.1f MB, %d nodes, %d weights)\n",
			*out, float64(info.Size())/(1<<20), len(g.Nodes), len(g.Weights))
	}
	if *out == "" && *exportJSON == "" {
		fmt.Fprintln(os.Stderr, "mnnconvert: nothing to write (use -o or -export-json)")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnnconvert:", err)
	os.Exit(1)
}
