package main

import (
	"strings"
	"testing"
	"time"
)

// TestCheckSpecsRejectsDuplicates: two -model flags naming the same
// name:version must fail fast instead of silently hot-swapping, and the
// error must name the offender.
func TestCheckSpecsRejectsDuplicates(t *testing.T) {
	mk := func(v string) modelSpec {
		t.Helper()
		s, err := parseModelSpec(v)
		if err != nil {
			t.Fatalf("parseModelSpec(%q): %v", v, err)
		}
		return s
	}
	cases := []struct {
		name    string
		specs   []modelSpec
		wantErr string // substring; empty = no error
	}{
		{"distinct names", []modelSpec{mk("a=mobilenet-v1"), mk("b=squeezenet-v1.1")}, ""},
		{"same name", []modelSpec{mk("m=mobilenet-v1"), mk("m=squeezenet-v1.1")}, `"m:1"`},
		{"same name same version", []modelSpec{mk("m=mobilenet-v1,version=2"), mk("m=squeezenet-v1.1,version=2")}, `"m:2"`},
		{"same name distinct versions", []modelSpec{mk("m=mobilenet-v1,version=1"), mk("m=mobilenet-v1,version=2")}, ""},
		{"explicit version 1 collides with implicit", []modelSpec{mk("m=mobilenet-v1"), mk("m=mobilenet-v1,version=1")}, `"m:1"`},
	}
	for _, tc := range cases {
		err := checkSpecs(tc.specs)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: no error, want one mentioning %s", tc.name, tc.wantErr)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not name the duplicate %s", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseModelSpecVersionKeys(t *testing.T) {
	s, err := parseModelSpec("m=mobilenet-v1,version=3,default=true,lazy=true,queue=4,slo=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.ref() != "m:3" {
		t.Errorf("ref %q, want m:3", s.ref())
	}
	if !s.setDefault || !s.cfg.Lazy {
		t.Errorf("setDefault=%v lazy=%v, want both true", s.setDefault, s.cfg.Lazy)
	}
	if s.cfg.Admission.Queue != 4 || s.cfg.Admission.SLO != 50*time.Millisecond {
		t.Errorf("admission %+v not carried through", s.cfg.Admission)
	}
	for _, bad := range []string{
		"m=x,version=",
		"m=x,version=1:2",
		"m=x,default=maybe",
		"m=x,lazy=2x",
	} {
		if _, err := parseModelSpec(bad); err == nil {
			t.Errorf("parseModelSpec(%q): no error", bad)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"64KiB", 64 << 10},
		{"512MiB", 512 << 20},
		{"1GiB", 1 << 30},
		{"1.5GiB", 3 << 29},
		{"2GB", 2e9},
		{"100B", 100},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "MiB", "-1", "many"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q): no error", bad)
		}
	}
}
