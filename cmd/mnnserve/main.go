// Command mnnserve exposes a Registry of prepared engines over the
// KServe-style /v2 HTTP protocol, with per-model shape-bucketed continuous
// batching.
//
//	mnnserve -addr :8500 -model mobilenet=mobilenet-v1,pool=4,threads=2
//	mnnserve -model sq=squeezenet-v1.1,maxbatch=8,maxlatency=5ms,buckets=4 \
//	         -model det=path/to/detector.mnng,shape=data:1x3x320x320
//	mnnserve -model mobilenet-v1 -max-batch 4        # global batching default
//
// Each -model flag is name=source[,key=value...]; a bare source serves under
// its own name. Keys: pool, threads, forward, device, precision (fp32/int8),
// tuning (heuristic/cost/measured), tuningcache (persistent tuning-cache
// path), maxbatch, maxlatency, buckets (how many input-shape buckets the
// batcher keeps batch engines for; 1 batches only the declared shape),
// shape=input:AxBxC... (repeatable), maxshape=input:AxBxC... (repeatable;
// opens a dynamic engine planned once at the max shape — requests may then
// use any shape elementwise ≤ the max, and the batcher serves every in-plan
// shape bucket from one shared batch engine; mutually exclusive with
// shape), queue
// (admission queue depth; enables SLO-aware load shedding), concurrency,
// slo (latency budget, e.g. slo=50ms), priority (default class:
// high/normal/batch), degrade=int8 (route to a quantized engine under
// sustained overload), version (registry version; the model serves as
// name:version), default=true (pin this version for bare-name requests)
// and lazy=true (open engines on first request). Two -model flags naming
// the same name:version are rejected. With -memory-budget every model
// loads lazily and idle engines are evicted least-recently-used when the
// resident byte total exceeds the budget. Models can also be hot-loaded and
// unloaded at runtime through POST /v2/repository/models/{name}/load and
// /unload. Prometheus metrics are served on GET /metrics.
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests before closing the engines.
//
// For resilience testing, -chaos arms the deterministic fault-injection
// subsystem with a seeded schedule (see README "Fault tolerance"):
//
//	mnnserve -model mobilenet-v1 -chaos 'session.kernel=panic,p=0.01' -chaos-seed 7
//
// A model whose kernels keep panicking is quarantined after
// -quarantine-after contained panics and sheds requests with 503 +
// X-Model-Quarantined until -quarantine-cooldown elapses.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only via -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mnn"
	"mnn/internal/fault"
	"mnn/serve"
	"mnn/serve/admission"
)

type modelSpec struct {
	name    string
	version string // empty = serve.DefaultVersion
	// setDefault pins this version as what bare-name requests resolve to.
	setDefault bool
	cfg        serve.ModelConfig
	// tuning/tuningCache are kept for the batching+measured validation in
	// main, which runs after the global -max-batch default is applied.
	tuning      string
	tuningCache string
}

// ref is the registry reference the spec loads under.
func (s modelSpec) ref() string {
	v := s.version
	if v == "" {
		v = serve.DefaultVersion
	}
	return serve.JoinRef(s.name, v)
}

// checkSpecs rejects two -model flags naming the same model version: the
// registry would hot-swap silently and the earlier definition would serve
// no traffic, which on a command line is always a typo.
func checkSpecs(specs []modelSpec) error {
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if seen[s.ref()] {
			return fmt.Errorf("duplicate -model name %q: each -model flag must use a distinct name (or a distinct version=)", s.ref())
		}
		seen[s.ref()] = true
	}
	return nil
}

// parseBytes parses a -memory-budget value: a plain byte count or a number
// with a KiB/MiB/GiB (or KB/MB/GB, decimal) suffix, e.g. "512MiB".
func parseBytes(v string) (int64, error) {
	suffixes := []struct {
		s    string
		mult int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"B", 1},
	}
	num, mult := strings.TrimSpace(v), int64(1)
	for _, suf := range suffixes {
		if strings.HasSuffix(num, suf.s) {
			num, mult = strings.TrimSpace(strings.TrimSuffix(num, suf.s)), suf.mult
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 1073741824, 512MiB, 1GiB)", v)
	}
	return int64(f * float64(mult)), nil
}

func main() {
	addr := flag.String("addr", ":8500", "listen address")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060); keep it off public interfaces")
	maxBatch := flag.Int("max-batch", 0, "default micro-batch size for models that don't set maxbatch= (0 disables batching)")
	maxLatency := flag.Duration("max-latency", serve.DefaultMaxLatency, "default micro-batch window for models that don't set maxlatency=")
	maxBuckets := flag.Int("max-buckets", 0, "default shape-bucket bound for batching models that don't set buckets= (0 = serve.DefaultMaxBuckets; 1 batches only the declared input shape)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
	memoryBudget := flag.String("memory-budget", "", "resident-engine byte budget (e.g. 512MiB, 1GiB); models load lazily on first request and idle ones are evicted LRU under pressure (empty = unlimited, eager loads)")
	chaos := flag.String("chaos", "", "fault-injection spec, e.g. 'session.kernel=panic,p=0.01;registry.load=error,count=1' (empty = disabled; see README)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic -chaos fault schedule")
	quarantineAfter := flag.Int("quarantine-after", serve.DefaultQuarantineAfter, "consecutive contained kernel panics before a model is quarantined (0 disables)")
	quarantineCooldown := flag.Duration("quarantine-cooldown", serve.DefaultQuarantineCooldown, "how long a quarantined model sheds requests before a half-open probe")
	var specs []modelSpec
	flag.Func("model", "model to serve: name=source[,key=value...] (repeatable; see package docs)", func(v string) error {
		s, err := parseModelSpec(v)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fail(fmt.Errorf("no models: pass at least one -model flag (or hot-load via the repository API after adding one)"))
	}
	if err := checkSpecs(specs); err != nil {
		fail(err)
	}

	reg := serve.NewRegistry()
	reg.SetQuarantinePolicy(*quarantineAfter, *quarantineCooldown)
	if *chaos != "" {
		// Armed before any Load so registry.load faults can hit eager loads
		// too. One injector for the whole process keeps count= budgets global.
		plan, err := fault.ParsePlan(*chaosSeed, *chaos)
		if err != nil {
			fail(err)
		}
		reg.SetFaultInjector(fault.NewInjector(plan))
		fmt.Printf("mnnserve: chaos armed (seed %d): %s\n", *chaosSeed, plan)
	}
	if *memoryBudget != "" {
		// Set before any Load: with a budget, every load is lazy and the
		// first request (not startup) opens the engines.
		budget, err := parseBytes(*memoryBudget)
		if err != nil {
			fail(fmt.Errorf("-memory-budget: %v", err))
		}
		reg.SetMemoryBudget(budget)
	}
	for _, s := range specs {
		// The global flags fill whichever knobs the spec left unset, so a
		// per-model maxbatch= still honours the global -max-latency and
		// vice versa.
		if s.cfg.Batch.MaxBatch == 0 {
			s.cfg.Batch.MaxBatch = *maxBatch
		}
		if s.cfg.Batch.MaxLatency <= 0 {
			s.cfg.Batch.MaxLatency = *maxLatency
		}
		if s.cfg.Batch.Buckets == 0 {
			s.cfg.Batch.Buckets = *maxBuckets
		}
		// Measured picks only repeat across the batched and unbatched
		// engines through a shared cache; without one the micro-batcher
		// could commit different algorithms and break the batched≡unbatched
		// bitwise guarantee.
		if mode, err := mnn.ParseTuningMode(s.tuning); err == nil &&
			mode == mnn.TuningMeasured && s.cfg.Batch.MaxBatch > 1 && s.tuningCache == "" {
			reg.Close()
			fail(fmt.Errorf("-model %q: tuning=measured with batching requires tuningcache=", s.name))
		}
		t0 := time.Now()
		if err := reg.Load(s.ref(), s.cfg); err != nil {
			reg.Close()
			fail(err)
		}
		if s.setDefault {
			name, version := serve.SplitRef(s.ref())
			if err := reg.SetDefault(name, version); err != nil {
				reg.Close()
				fail(err)
			}
		}
		m, _ := reg.Get(s.ref())
		batching := "off"
		if m.Batching() {
			buckets := s.cfg.Batch.Buckets
			if buckets <= 0 {
				buckets = serve.DefaultMaxBuckets
			}
			batching = fmt.Sprintf("%d within %v, %d shape buckets", s.cfg.Batch.MaxBatch, s.cfg.Batch.MaxLatency, buckets)
		}
		adm := "off"
		if m.Admission() {
			adm = fmt.Sprintf("queue %d", s.cfg.Admission.Queue)
			if s.cfg.Admission.SLO > 0 {
				adm += fmt.Sprintf(", slo %v", s.cfg.Admission.SLO)
			}
			if s.cfg.Admission.Degrade != "" {
				adm += ", degrade " + s.cfg.Admission.Degrade
			}
		}
		if m.Lazy() {
			fmt.Printf("mnnserve: registered %q lazily (engines open on first request, batching %s, admission %s)\n",
				s.ref(), batching, adm)
		} else {
			fmt.Printf("mnnserve: loaded %q (pre-inference %.0f ms, batching %s, admission %s)\n",
				s.ref(), float64(time.Since(t0).Milliseconds()), batching, adm)
		}
	}

	if *pprofAddr != "" {
		// Worker-pool scheduling, GC behaviour and goroutine counts under
		// load are all visible here (/debug/pprof/); see README "Profiling".
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mnnserve: pprof:", err)
			}
		}()
		fmt.Printf("mnnserve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	srv := serve.NewServer(reg)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("mnnserve: serving %v on %s\n", reg.Names(), *addr)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		fmt.Println("mnnserve: shutting down, draining in-flight requests...")
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fail(err)
		}
	}
	fmt.Println("mnnserve: bye")
}

// parseModelSpec parses one -model flag value.
func parseModelSpec(v string) (modelSpec, error) {
	parts := strings.Split(v, ",")
	head := parts[0]
	name, source := head, head
	if i := strings.Index(head, "="); i >= 0 {
		name, source = head[:i], head[i+1:]
	}
	if name == "" || source == "" {
		return modelSpec{}, fmt.Errorf("-model %q: want name=source[,key=value...]", v)
	}
	s := modelSpec{name: name, cfg: serve.ModelConfig{Model: source}}
	var lo serve.LoadOptions
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return modelSpec{}, fmt.Errorf("-model %q: option %q is not key=value", v, kv)
		}
		switch key {
		case "pool":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: pool=%q: %v", v, val, err)
			}
			lo.PoolSize = n
		case "threads":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: threads=%q: %v", v, val, err)
			}
			lo.Threads = n
		case "forward":
			lo.Forward = val
		case "device":
			lo.Device = val
		case "precision":
			lo.Precision = val
		case "tuning":
			lo.Tuning = val
		case "tuningcache":
			lo.TuningCache = val
		case "maxbatch":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: maxbatch=%q: %v", v, val, err)
			}
			s.cfg.Batch.MaxBatch = n
		case "maxlatency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: maxlatency=%q: %v", v, val, err)
			}
			s.cfg.Batch.MaxLatency = d
		case "buckets":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: buckets=%q: %v", v, val, err)
			}
			s.cfg.Batch.Buckets = n
		case "queue":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: queue=%q: %v", v, val, err)
			}
			s.cfg.Admission.Queue = n
		case "concurrency":
			n, err := strconv.Atoi(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: concurrency=%q: %v", v, val, err)
			}
			s.cfg.Admission.Concurrency = n
		case "slo":
			d, err := time.ParseDuration(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: slo=%q: %v", v, val, err)
			}
			s.cfg.Admission.SLO = d
		case "priority":
			p, err := admission.ParsePriority(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: priority=%q: %v", v, val, err)
			}
			s.cfg.Admission.DefaultPriority = p
		case "degrade":
			s.cfg.Admission.Degrade = val
		case "version":
			if val == "" || strings.Contains(val, ":") {
				return modelSpec{}, fmt.Errorf("-model %q: version=%q: must be non-empty without ':'", v, val)
			}
			s.version = val
		case "default":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: default=%q: %v", v, val, err)
			}
			s.setDefault = b
		case "lazy":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return modelSpec{}, fmt.Errorf("-model %q: lazy=%q: %v", v, val, err)
			}
			s.cfg.Lazy = b
		case "shape":
			input, dims, ok := strings.Cut(val, ":")
			if !ok {
				return modelSpec{}, fmt.Errorf("-model %q: shape=%q: want input:AxBxC...", v, val)
			}
			var shape []int
			for _, d := range strings.Split(dims, "x") {
				n, err := strconv.Atoi(d)
				if err != nil {
					return modelSpec{}, fmt.Errorf("-model %q: shape=%q: %v", v, val, err)
				}
				shape = append(shape, n)
			}
			if lo.InputShapes == nil {
				lo.InputShapes = make(map[string][]int)
			}
			lo.InputShapes[input] = shape
		case "maxshape":
			input, dims, ok := strings.Cut(val, ":")
			if !ok {
				return modelSpec{}, fmt.Errorf("-model %q: maxshape=%q: want input:AxBxC...", v, val)
			}
			var shape []int
			for _, d := range strings.Split(dims, "x") {
				n, err := strconv.Atoi(d)
				if err != nil {
					return modelSpec{}, fmt.Errorf("-model %q: maxshape=%q: %v", v, val, err)
				}
				shape = append(shape, n)
			}
			if lo.MaxInputShapes == nil {
				lo.MaxInputShapes = make(map[string][]int)
			}
			lo.MaxInputShapes[input] = shape
		default:
			return modelSpec{}, fmt.Errorf("-model %q: unknown option %q (want pool, threads, forward, device, precision, tuning, tuningcache, maxbatch, maxlatency, shape, maxshape, queue, concurrency, slo, priority, degrade, version, default or lazy)", v, key)
		}
	}
	opts, err := lo.EngineOptions()
	if err != nil {
		return modelSpec{}, fmt.Errorf("-model %q: %v", v, err)
	}
	s.cfg.Options = opts
	s.tuning = lo.Tuning
	s.tuningCache = lo.TuningCache
	return s, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnnserve:", err)
	os.Exit(1)
}
