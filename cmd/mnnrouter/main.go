// Command mnnrouter is the model-mesh front door: it spreads /v2 inference
// traffic across N mnnserve replicas with consistent hashing on the model
// reference (bounded-load variant), active health checking, retry of
// connection-level failures on another replica, and per-replica circuit
// breaking. 429 admission rejections from a replica pass through verbatim —
// they are backpressure, not failure.
//
//	mnnrouter -addr :8000 \
//	          -replica http://10.0.0.1:8500 \
//	          -replica http://10.0.0.2:8500 \
//	          -replica http://10.0.0.3:8500
//
// Version-aware traffic policies:
//
//	-canary resnet=1:90,2:10    # 90/10 split for requests not pinning a version
//	-shadow resnet=2            # duplicate resnet traffic to version 2, discard responses
//
// The router serves its own Prometheus metrics on GET /metrics (per-replica
// request counts, retries, health, circuit state, canary/shadow counters);
// replica serving metrics stay on each replica's /metrics.
//
// Retries back off with capped exponential delay and full jitter
// (-retry-backoff-base, -retry-backoff-cap). For resilience testing,
// -chaos injects deterministic faults into the router's own transport:
//
//	mnnrouter -replica http://localhost:8500 \
//	          -chaos 'mesh.transport=connreset,p=0.05;mesh.transport=latency:50ms,p=0.2' \
//	          -chaos-seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mnn/internal/fault"
	"mnn/serve/mesh"
)

func main() {
	addr := flag.String("addr", ":8000", "listen address")
	healthInterval := flag.Duration("health-interval", mesh.DefaultHealthInterval, "active health-check period")
	healthTimeout := flag.Duration("health-timeout", mesh.DefaultHealthTimeout, "health probe timeout")
	unhealthyAfter := flag.Int("unhealthy-after", mesh.DefaultUnhealthyAfter, "consecutive failed checks before a replica is ejected")
	loadFactor := flag.Float64("load-factor", mesh.DefaultLoadFactor, "bounded-load spill factor (>1; lower = stricter balance, higher = stickier placement)")
	vnodes := flag.Int("vnodes", mesh.DefaultVNodes, "virtual nodes per replica on the hash ring")
	breakerThreshold := flag.Int("breaker-threshold", mesh.DefaultBreakerThreshold, "consecutive connection failures that open a replica's circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", mesh.DefaultBreakerCooldown, "how long an open circuit skips the replica before a half-open probe")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
	retryBackoffBase := flag.Duration("retry-backoff-base", mesh.DefaultRetryBackoffBase, "first-retry delay of the capped exponential backoff between connection-level retries")
	retryBackoffCap := flag.Duration("retry-backoff-cap", mesh.DefaultRetryBackoffCap, "upper bound on one backoff delay")
	retrySeed := flag.Uint64("retry-seed", 0, "seed for the backoff jitter stream (0 = from the clock; set for reproducible retry schedules)")
	chaos := flag.String("chaos", "", "transport fault-injection spec, e.g. 'mesh.transport=connreset,p=0.05' (empty = disabled; see README)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic -chaos fault schedule")

	cfg := mesh.Config{
		Canary: make(map[string]mesh.CanaryRule),
		Shadow: make(map[string]string),
	}
	flag.Func("replica", "mnnserve base URL, e.g. http://host:8500 (repeatable, required)", func(v string) error {
		cfg.Replicas = append(cfg.Replicas, v)
		return nil
	})
	flag.Func("canary", "weighted version split for unpinned requests: model=version:weight,... (repeatable)", func(v string) error {
		model, rule, err := mesh.ParseCanarySpec(v)
		if err != nil {
			return err
		}
		if _, dup := cfg.Canary[model]; dup {
			return fmt.Errorf("duplicate -canary for model %q", model)
		}
		cfg.Canary[model] = rule
		return nil
	})
	flag.Func("shadow", "duplicate-and-discard a model's traffic to a version: model=version (repeatable)", func(v string) error {
		model, version, err := mesh.ParseShadowSpec(v)
		if err != nil {
			return err
		}
		if _, dup := cfg.Shadow[model]; dup {
			return fmt.Errorf("duplicate -shadow for model %q", model)
		}
		cfg.Shadow[model] = version
		return nil
	})
	flag.Parse()
	cfg.HealthInterval = *healthInterval
	cfg.HealthTimeout = *healthTimeout
	cfg.UnhealthyAfter = *unhealthyAfter
	cfg.LoadFactor = *loadFactor
	cfg.VNodes = *vnodes
	cfg.BreakerThreshold = *breakerThreshold
	cfg.BreakerCooldown = *breakerCooldown
	cfg.RetryBackoffBase = *retryBackoffBase
	cfg.RetryBackoffCap = *retryBackoffCap
	cfg.RetrySeed = *retrySeed
	if *chaos != "" {
		plan, err := fault.ParsePlan(*chaosSeed, *chaos)
		if err != nil {
			fail(err)
		}
		for _, r := range plan.Rules {
			if r.Site != fault.SiteMeshTransport {
				fail(fmt.Errorf("-chaos: site %s is not a router site (the router only enacts %s; arm the others on the replicas via mnnserve -chaos)", r.Site, fault.SiteMeshTransport))
			}
		}
		cfg.Transport = fault.NewTransport(nil, fault.NewInjector(plan))
		fmt.Printf("mnnrouter: chaos armed (seed %d): %s\n", *chaosSeed, plan)
	}

	rt, err := mesh.New(cfg)
	if err != nil {
		fail(err)
	}
	defer rt.Close()

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("mnnrouter: routing %d replicas on %s\n", len(cfg.Replicas), *addr)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		fmt.Println("mnnrouter: shutting down, draining in-flight requests...")
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fail(err)
		}
	}
	fmt.Println("mnnrouter: bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnnrouter:", err)
	os.Exit(1)
}
