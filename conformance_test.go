package mnn_test

// Cross-path conformance suite: for every built-in model the int8 engine
// must agree with the fp32 engine within a per-model error budget, and the
// int8 path must preserve the serving tier's batched≡unbatched bitwise
// guarantee. Budgets are pinned ~20–100× above the currently observed
// deviation so a real accuracy regression (a broken requantization, a wrong
// scale) trips them while quantization noise does not.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"mnn"
	"mnn/internal/optimizer"
	"mnn/internal/tensor"
	"mnn/serve"
)

// int8ConformanceCases lists every built-in model with a small-shape input
// (inception's stride tree needs 107; vgg-16's flatten→fc pins 224) and its
// max-abs output error budget. Observed deviations on these shapes are
// 0.7e-6 – 9e-6 (post-softmax probabilities).
var int8ConformanceCases = []struct {
	net    string
	hw     int
	budget float64
	heavy  bool // skipped in -short mode (race CI runs -short)
}{
	{"mobilenet-v1", 64, 1e-4, false},
	{"mobilenet-v2", 64, 1e-4, false},
	{"squeezenet-v1.0", 64, 1e-4, false},
	{"squeezenet-v1.1", 64, 1e-4, false},
	{"resnet-18", 64, 2e-4, false},
	{"resnet-50", 64, 2e-4, true},
	{"inception-v3", 107, 2e-4, true},
	{"vgg-16", 224, 2e-4, true},
}

// calibrated builds a network, resizes it to the test shape and calibrates
// it with one deterministic sample.
func calibrated(t *testing.T, net string, hw int) (*mnn.Graph, string, *mnn.Tensor) {
	t.Helper()
	g, err := mnn.BuildNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	input := g.InputNames[0]
	sample := tensor.NewRandom(7, 1, 1, 3, hw, hw)
	if _, err := mnn.Calibrate(g, []map[string]*mnn.Tensor{{input: sample}}); err != nil {
		t.Fatal(err)
	}
	return g, input, sample
}

func TestInt8ConformanceBuiltinModels(t *testing.T) {
	for _, tc := range int8ConformanceCases {
		t.Run(tc.net, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy model in -short mode")
			}
			g, input, sample := calibrated(t, tc.net, tc.hw)
			shapes := map[string][]int{input: {1, 3, tc.hw, tc.hw}}
			plan, err := optimizer.PlanInt8(g, shapes)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Int8Nodes == 0 {
				t.Fatalf("int8 plan covers no nodes — the conformance run would be vacuous")
			}
			inputs := map[string]*mnn.Tensor{input: sample}
			outs := map[mnn.Precision]map[string]*mnn.Tensor{}
			for _, p := range []mnn.Precision{mnn.PrecisionFP32, mnn.PrecisionInt8} {
				eng, err := mnn.Open(g, mnn.WithThreads(2), mnn.WithInputShapes(shapes), mnn.WithPrecision(p))
				if err != nil {
					t.Fatal(err)
				}
				out, err := eng.Infer(context.Background(), inputs)
				eng.Close()
				if err != nil {
					t.Fatal(err)
				}
				outs[p] = out
			}
			for name, ref := range outs[mnn.PrecisionFP32] {
				d := tensor.MaxAbsDiff(ref, outs[mnn.PrecisionInt8][name])
				if d > tc.budget {
					t.Errorf("output %q: int8 deviates %.3e from fp32, budget %.1e (%d int8 nodes)",
						name, d, tc.budget, plan.Int8Nodes)
				}
			}
		})
	}
}

// TestInt8BatchedUnbatchedBitwise: an int8 engine prepared at batch N must
// produce, for each stacked sample, bit-for-bit the outputs of a batch-1
// engine — the invariant the serving micro-batcher splits results on. Both
// scale modes are covered: calibrated (fixed scales) and dynamic (the
// per-sample max-abs fallback, which would break here if it ever looked
// across the whole batch).
func TestInt8BatchedUnbatchedBitwise(t *testing.T) {
	const batch, hw = 3, 64
	for _, calibrate := range []bool{true, false} {
		name := "dynamic"
		if calibrate {
			name = "calibrated"
		}
		t.Run(name, func(t *testing.T) {
			g, err := mnn.BuildNetwork("mobilenet-v1")
			if err != nil {
				t.Fatal(err)
			}
			input := g.InputNames[0]
			if calibrate {
				if _, err := mnn.Calibrate(g, []map[string]*mnn.Tensor{
					{input: tensor.NewRandom(9, 1, 1, 3, hw, hw)}}); err != nil {
					t.Fatal(err)
				}
			}
			open := func(n int) *mnn.Engine {
				eng, err := mnn.Open(g, mnn.WithThreads(2), mnn.WithPrecision(mnn.PrecisionInt8),
					mnn.WithInputShapes(map[string][]int{input: {n, 3, hw, hw}}))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { eng.Close() })
				return eng
			}
			batched, single := open(batch), open(1)

			stacked := mnn.NewTensor(batch, 3, hw, hw)
			singles := make([]*mnn.Tensor, batch)
			per := 3 * hw * hw
			for n := 0; n < batch; n++ {
				// Distinct magnitudes per sample so a batch-wide dynamic
				// scale would produce different quantizations.
				singles[n] = tensor.NewRandom(uint64(20+n), float32(n+1), 1, 3, hw, hw)
				copy(stacked.Data()[n*per:(n+1)*per], singles[n].Data())
			}
			ctx := context.Background()
			outB, err := batched.Infer(ctx, map[string]*mnn.Tensor{input: stacked})
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < batch; n++ {
				outS, err := single.Infer(ctx, map[string]*mnn.Tensor{input: singles[n]})
				if err != nil {
					t.Fatal(err)
				}
				for oname, s := range outS {
					b := outB[oname]
					perOut := s.NumElements()
					bd := b.Data()[n*perOut : (n+1)*perOut]
					for i, v := range s.Data() {
						if bd[i] != v {
							t.Fatalf("sample %d output %q[%d]: batched %v != single %v",
								n, oname, i, bd[i], v)
						}
					}
				}
			}
		})
	}
}

// TestInt8ServingBatchedBitwise drives the real serving stack: a registry
// model with the micro-batcher in front of an int8 engine must answer
// concurrent requests bit-identically to a plain unbatched int8 engine.
func TestInt8ServingBatchedBitwise(t *testing.T) {
	const hw = 64
	g, input, _ := calibrated(t, "squeezenet-v1.1", hw)
	shapes := map[string][]int{input: {1, 3, hw, hw}}

	reg := serve.NewRegistry()
	defer reg.Close()
	if err := reg.Load("sq-int8", serve.ModelConfig{
		Model: g,
		Options: []mnn.Option{mnn.WithThreads(2), mnn.WithPoolSize(2),
			mnn.WithInputShapes(shapes), mnn.WithPrecision(mnn.PrecisionInt8)},
		Batch: serve.BatchConfig{MaxBatch: 4},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("sq-int8")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Batching() {
		t.Fatal("batcher not active")
	}
	md, err := m.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	if md.Precision != "int8" {
		t.Fatalf("metadata precision %q, want int8", md.Precision)
	}
	ref, err := mnn.Open(g, mnn.WithThreads(2), mnn.WithInputShapes(shapes),
		mnn.WithPrecision(mnn.PrecisionInt8))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const requests = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			in := tensor.NewRandom(uint64(100+r), float32(r%3+1), 1, 3, hw, hw)
			got, err := m.Infer(ctx, map[string]*mnn.Tensor{input: in})
			if err != nil {
				errs <- err
				return
			}
			want, err := ref.Infer(ctx, map[string]*mnn.Tensor{input: in})
			if err != nil {
				errs <- err
				return
			}
			for name, w := range want {
				gd := got[name].Data()
				for i, v := range w.Data() {
					if gd[i] != v {
						errs <- fmt.Errorf("request %d output %q[%d]: batched %v != unbatched %v",
							r, name, i, gd[i], v)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
