package mnn

import "errors"

// Sentinel errors returned by the v2 Engine API. Wrap-aware: test with
// errors.Is, e.g.
//
//	if errors.Is(err, mnn.ErrCancelled) { ... }
var (
	// ErrUnknownDevice is returned by Open/CreateSession when the requested
	// simulated device profile does not exist (see Devices()).
	ErrUnknownDevice = errors.New("mnn: unknown device")

	// ErrUnknownNetwork is returned by Open/BuildNetwork when the requested
	// built-in network does not exist (see Networks()).
	ErrUnknownNetwork = errors.New("mnn: unknown network")

	// ErrInputShape is returned by Engine.Infer when the input map is
	// missing a declared graph input, names an unknown input, or provides a
	// tensor whose shape disagrees with the prepared session.
	ErrInputShape = errors.New("mnn: input shape mismatch")

	// ErrCancelled is returned by Engine.Infer when the context is
	// cancelled or its deadline expires, either while waiting for a pooled
	// session or between pipeline operators mid-inference.
	ErrCancelled = errors.New("mnn: inference cancelled")

	// ErrEngineClosed is returned by Engine.Infer after Close.
	ErrEngineClosed = errors.New("mnn: engine closed")

	// ErrUnknownBackend is returned by Open/CreateSession when the forward
	// type is unknown or the device lacks the requested GPU API.
	ErrUnknownBackend = errors.New("mnn: unknown or unsupported backend")
)
