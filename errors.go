package mnn

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the v2 Engine API. Wrap-aware: test with
// errors.Is, e.g.
//
//	if errors.Is(err, mnn.ErrCancelled) { ... }
var (
	// ErrUnknownDevice is returned by Open/CreateSession when the requested
	// simulated device profile does not exist (see Devices()).
	ErrUnknownDevice = errors.New("mnn: unknown device")

	// ErrUnknownNetwork is returned by Open/BuildNetwork when the requested
	// built-in network does not exist (see Networks()).
	ErrUnknownNetwork = errors.New("mnn: unknown network")

	// ErrInputShape is returned by Engine.Infer when the input map is
	// missing a declared graph input, names an unknown input, or provides a
	// tensor whose shape disagrees with the prepared session.
	ErrInputShape = errors.New("mnn: input shape mismatch")

	// ErrShapeOutOfPlan is returned by Engine.Infer on a dynamic engine
	// (WithMaxInputShapes) when a request's input shape cannot be served by
	// the planned arena: wrong rank, a dim exceeding the planned maximum, or
	// a derived activation that would overflow its planned buffer. The
	// request is rejected before any arena byte is read or written.
	ErrShapeOutOfPlan = errors.New("mnn: input shape outside planned maximum")

	// ErrCancelled is returned by Engine.Infer when the context is
	// cancelled or its deadline expires, either while waiting for a pooled
	// session or between pipeline operators mid-inference.
	ErrCancelled = errors.New("mnn: inference cancelled")

	// ErrEngineClosed is returned by Engine.Infer after Close.
	ErrEngineClosed = errors.New("mnn: engine closed")

	// ErrUnknownBackend is returned by Open/CreateSession when the forward
	// type is unknown or the device lacks the requested GPU API.
	ErrUnknownBackend = errors.New("mnn: unknown or unsupported backend")

	// ErrKernelPanic is returned by Engine.Infer when a kernel panicked
	// mid-inference. The containment barriers (sched → session → engine)
	// convert the panic into this typed error instead of crashing the
	// process; the poisoned pooled session is closed and rebuilt. Use
	// errors.As with *KernelPanicError for the op identity and stack.
	ErrKernelPanic = errors.New("mnn: kernel panic")
)

// KernelPanicError carries the identity of a contained kernel panic: which
// operator it escaped from, the original panic value, and the stack of the
// goroutine that panicked. It wraps ErrKernelPanic for errors.Is.
type KernelPanicError struct {
	// Op is the graph node (or graph name, when the panic happened outside
	// a node) the panic escaped from.
	Op string
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *KernelPanicError) Error() string {
	return fmt.Sprintf("mnn: kernel panic in op %q: %v", e.Op, e.Value)
}

func (e *KernelPanicError) Unwrap() error { return ErrKernelPanic }
