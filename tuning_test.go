package mnn_test

// Engine-level tuning tests: the warm-cache fast path (a second Open must
// skip every micro-benchmark), bitwise determinism of warm-cache engines,
// and option validation. The cross-algorithm equivalence suite lives with
// the tuner (internal/tuner); these tests pin the public-API contract.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"mnn"
	"mnn/internal/tensor"
	"mnn/internal/tuner"
)

const tuningTestHW = 64

func openTuned(t *testing.T, cache string) *mnn.Engine {
	t.Helper()
	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(2),
		mnn.WithInputShapes(map[string][]int{"data": {1, 3, tuningTestHW, tuningTestHW}}),
		mnn.WithTuning(mnn.TuningMeasured), mnn.WithTuningCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestTuningWarmOpenSkipsMicrobenchmarks: the first measured Open pays for
// its micro-benchmarks once and persists the winners; every later Open of
// the same (host, model) resolves purely from the cache.
func TestTuningWarmOpenSkipsMicrobenchmarks(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "mobilenet.tuning.json")
	cold := openTuned(t, cache).TuningStats()
	if cold.Measured == 0 {
		t.Fatalf("cold open measured nothing: %+v", cold)
	}
	if !cold.CacheSaved {
		t.Fatalf("cold open did not persist the cache: %+v", cold)
	}
	warm := openTuned(t, cache).TuningStats()
	if warm.Measured != 0 {
		t.Errorf("warm open ran %d micro-benchmarks, want 0: %+v", warm.Measured, warm)
	}
	if !warm.CacheLoaded || warm.CacheHits != warm.Unique || warm.Unique == 0 {
		t.Errorf("warm open did not resolve fully from cache: %+v", warm)
	}
}

// TestTuningWarmCacheDeterminism: with a warm cache, independent Opens make
// identical decisions and steady-state inference is bitwise reproducible —
// two engines, two InferInto runs each, all four outputs identical.
func TestTuningWarmCacheDeterminism(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "mobilenet.tuning.json")
	openTuned(t, cache).Close() // cold: measure once, fill the cache

	in := tensor.NewRandom(3, 1, 1, 3, tuningTestHW, tuningTestHW)
	inputs := map[string]*mnn.Tensor{"data": in}
	ctx := context.Background()
	var ref []float32
	for e := 0; e < 2; e++ {
		eng := openTuned(t, cache)
		if ts := eng.TuningStats(); ts.Measured != 0 {
			t.Fatalf("engine %d: warm open measured %d candidates", e, ts.Measured)
		}
		out := map[string]*mnn.Tensor{"prob": mnn.NewTensor(1, 1000)}
		for run := 0; run < 2; run++ {
			if err := eng.InferInto(ctx, inputs, out); err != nil {
				t.Fatal(err)
			}
			got := out["prob"].Data()
			if ref == nil {
				ref = append([]float32(nil), got...)
				continue
			}
			for i, v := range got {
				if v != ref[i] {
					t.Fatalf("engine %d run %d: output[%d] = %v, want bitwise %v", e, run, i, v, ref[i])
				}
			}
		}
		eng.Close()
	}
}

// TestTuningCostModeMatchesWithinBudget: the cost model may commit different
// algorithms than the heuristic, but every candidate computes the same
// convolution — outputs agree within the cross-algorithm fp32 budget.
func TestTuningCostModeMatchesWithinBudget(t *testing.T) {
	in := tensor.NewRandom(5, 1, 1, 3, tuningTestHW, tuningTestHW)
	inputs := map[string]*mnn.Tensor{"data": in}
	outs := map[mnn.TuningMode]map[string]*mnn.Tensor{}
	for _, mode := range []mnn.TuningMode{mnn.TuningHeuristic, mnn.TuningCost} {
		eng, err := mnn.Open("resnet-18", mnn.WithThreads(2),
			mnn.WithInputShapes(map[string][]int{"data": {1, 3, tuningTestHW, tuningTestHW}}),
			mnn.WithTuning(mode))
		if err != nil {
			t.Fatal(err)
		}
		out, err := eng.Infer(context.Background(), inputs)
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		outs[mode] = out
	}
	for name, ref := range outs[mnn.TuningHeuristic] {
		if d := tensor.MaxAbsDiff(ref, outs[mnn.TuningCost][name]); d > 2e-4 {
			t.Errorf("output %q: cost-model engine deviates %.3e from heuristic", name, d)
		}
	}
}

// TestTuningWithInt8Precision: tuning and the quantized path compose — the
// int8 partition is recomputed from the tuned schemes (a conv the tuner
// moves to sliding must not be dispatched int8), and the tuned int8 engine
// stays within the int8 conformance budget of the fp32 heuristic engine.
func TestTuningWithInt8Precision(t *testing.T) {
	shapes := map[string][]int{"data": {1, 3, tuningTestHW, tuningTestHW}}
	in := tensor.NewRandom(9, 1, 1, 3, tuningTestHW, tuningTestHW)
	inputs := map[string]*mnn.Tensor{"data": in}
	ref, err := mnn.Open("mobilenet-v1", mnn.WithThreads(2), mnn.WithInputShapes(shapes))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	tuned, err := mnn.Open("mobilenet-v1", mnn.WithThreads(2), mnn.WithInputShapes(shapes),
		mnn.WithPrecision(mnn.PrecisionInt8), mnn.WithTuning(mnn.TuningCost))
	if err != nil {
		t.Fatal(err)
	}
	defer tuned.Close()
	ctx := context.Background()
	want, err := ref.Infer(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tuned.Infer(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if d := tensor.MaxAbsDiff(w, got[name]); d > 1e-4 {
			t.Errorf("output %q: tuned int8 deviates %.3e from fp32 heuristic", name, d)
		}
	}
}

func TestTuningOptionValidation(t *testing.T) {
	if _, err := mnn.Open("mobilenet-v1", mnn.WithTuning(mnn.TuningMode(42))); err == nil {
		t.Error("WithTuning(42) accepted")
	}
	if _, err := mnn.ParseTuningMode("bogus"); err == nil {
		t.Error("ParseTuningMode(bogus) accepted")
	}
	for in, want := range map[string]mnn.TuningMode{
		"":          mnn.TuningHeuristic,
		"heuristic": mnn.TuningHeuristic,
		"off":       mnn.TuningHeuristic,
		"cost":      mnn.TuningCost,
		"Measured":  mnn.TuningMeasured,
	} {
		got, err := mnn.ParseTuningMode(in)
		if err != nil || got != want {
			t.Errorf("ParseTuningMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// ErrCancelled-style sentinel behaviour: a cache directory that cannot
	// be created must surface as an Open error, not a panic.
	if _, err := mnn.Open("mobilenet-v1", mnn.WithThreads(1),
		mnn.WithInputShapes(map[string][]int{"data": {1, 3, 32, 32}}),
		mnn.WithTuning(mnn.TuningMeasured), mnn.WithTuningCache(string([]byte{0}))); err == nil {
		t.Error("unwritable tuning-cache path accepted")
	} else if errors.Is(err, mnn.ErrUnknownNetwork) {
		t.Errorf("wrong error class: %v", err)
	}
}

// TestTuningTornWriteRecovery simulates a crash mid-persist (injected
// tuner.cache.write=torn): the destination is left truncated and a stale
// half-written temp file sits next to it. The contract is that no state
// the crash left behind can break a later Open — it silently re-tunes
// cold and repairs the cache for the Opens after it.
func TestTuningTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "mobilenet.tuning.json")
	plan, err := mnn.ParseFaultPlan(1, "tuner.cache.write=torn,count=1")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(2),
		mnn.WithInputShapes(map[string][]int{"data": {1, 3, tuningTestHW, tuningTestHW}}),
		mnn.WithTuning(mnn.TuningMeasured), mnn.WithTuningCache(cache),
		mnn.WithFaultPlan(plan))
	if err != nil {
		t.Fatalf("Open under torn write = %v", err)
	}
	torn := eng.TuningStats()
	eng.Close()
	if torn.CacheSaved {
		t.Fatalf("torn write still reported CacheSaved: %+v", torn)
	}
	// The damage is what a real crash leaves: corrupt destination plus a
	// stale temp the atomic writer never renamed.
	if _, err := tuner.LoadCacheFile(cache, "mobilenet-v1"); !errors.Is(err, tuner.ErrCacheCorrupt) {
		t.Fatalf("destination after torn write: %v, want ErrCacheCorrupt", err)
	}
	temps, err := filepath.Glob(filepath.Join(dir, ".tuning-*.json"))
	if err != nil || len(temps) == 0 {
		t.Fatalf("no stale temp left behind (err=%v)", err)
	}
	// Recovery: the next Open treats the corrupt cache as cold, re-tunes,
	// and atomically rewrites a good cache over the wreckage.
	second := openTuned(t, cache).TuningStats()
	if second.CacheLoaded {
		t.Fatalf("corrupt cache was trusted: %+v", second)
	}
	if second.Measured == 0 || !second.CacheSaved {
		t.Fatalf("recovery open did not re-tune and repair: %+v", second)
	}
	third := openTuned(t, cache).TuningStats()
	if third.Measured != 0 || !third.CacheLoaded {
		t.Fatalf("repaired cache not warm: %+v", third)
	}
}
