package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

// batcher implements dynamic micro-batching for one model: concurrent
// single-sample requests are queued, coalesced, stacked along N and run
// through a second engine prepared at batch size maxBatch. A flush happens
// when the batch fills or when the oldest queued request has waited
// maxLatency. Full batches run on the batched engine; partial flushes and
// requests whose shapes don't match the stackable single-sample shape fall
// through to the unbatched engine.
type batcher struct {
	eng        *mnn.Engine // prepared at batch size maxBatch
	fallback   *mnn.Engine // the model's unbatched engine (not owned)
	maxBatch   int
	maxLatency time.Duration

	// perShape / perLen describe one request's slot inside the stacked
	// input tensors; outShape / outLen the slot inside the outputs.
	inputNames  []string
	perShape    map[string][]int
	perLen      map[string]int
	batchShape  map[string][]int
	outputNames []string
	outShape    map[string][]int // per-request output shape (dim0 == 1)
	outLen      map[string]int

	// onFlush, when set, observes every flush with the number of requests
	// it carried (metrics: batch-fill ratio). Called from flush goroutines.
	onFlush func(n int)

	reqs chan *batchReq
	quit chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // outstanding flush runs
}

type batchReq struct {
	inputs map[string]*mnn.Tensor
	resp   chan batchResp
}

type batchResp struct {
	outputs map[string]*mnn.Tensor
	err     error
}

// newBatcher opens the batched engine (the model's options with input
// shapes overridden to batch size) and probes it once so output shapes are
// known to be splittable along N before any traffic arrives.
func newBatcher(cfg ModelConfig, fallback *mnn.Engine, onFlush func(n int)) (*batcher, error) {
	b := &batcher{
		fallback:   fallback,
		maxBatch:   cfg.Batch.MaxBatch,
		maxLatency: cfg.Batch.MaxLatency,
		onFlush:    onFlush,
		inputNames: fallback.InputNames(),
		perShape:   make(map[string][]int),
		perLen:     make(map[string]int),
		batchShape: make(map[string][]int),
		outShape:   make(map[string][]int),
		outLen:     make(map[string]int),
		reqs:       make(chan *batchReq),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if b.maxLatency <= 0 {
		b.maxLatency = DefaultMaxLatency
	}
	shapes := make(map[string][]int, len(b.inputNames))
	for _, name := range b.inputNames {
		s := fallback.InputShape(name)
		if len(s) == 0 || s[0] != 1 {
			return nil, fmt.Errorf("input %q has shape %v: batching needs a leading batch dim of 1", name, s)
		}
		batched := append([]int{b.maxBatch}, s[1:]...)
		b.perShape[name] = s
		b.perLen[name] = tensor.NumElements(s)
		b.batchShape[name] = batched
		shapes[name] = batched
	}
	eng, err := mnn.Open(cfg.Model, append(append([]mnn.Option(nil), cfg.Options...),
		mnn.WithInputShapes(shapes), mnn.WithPoolSize(1))...)
	if err != nil {
		return nil, fmt.Errorf("opening batch-%d engine: %w", b.maxBatch, err)
	}
	// Probe with zeros: learn the batched output shapes and verify every
	// output really carries the batch along dim 0.
	probe := make(map[string]*mnn.Tensor, len(b.inputNames))
	for _, name := range b.inputNames {
		probe[name] = tensor.New(b.batchShape[name]...)
	}
	out, err := eng.Infer(context.Background(), probe)
	if err != nil {
		eng.Close()
		return nil, fmt.Errorf("probing batch-%d engine: %w", b.maxBatch, err)
	}
	b.outputNames = fallback.OutputNames()
	for _, name := range b.outputNames {
		s := out[name].Shape()
		if len(s) == 0 || s[0] != b.maxBatch {
			eng.Close()
			return nil, fmt.Errorf("output %q has batched shape %v: cannot split %d requests along dim 0", name, s, b.maxBatch)
		}
		per := append([]int{1}, s[1:]...)
		b.outShape[name] = per
		b.outLen[name] = tensor.NumElements(per)
	}
	b.eng = eng
	go b.loop()
	return b, nil
}

// infer submits one request. Requests that aren't stackable (wrong shape,
// unknown or missing inputs) fall through to the unbatched engine, which
// reports the precise validation error.
func (b *batcher) infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	if !b.stackable(inputs) {
		return b.fallback.Infer(ctx, inputs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rq := &batchReq{inputs: inputs, resp: make(chan batchResp, 1)}
	select {
	case b.reqs <- rq:
	case <-b.quit:
		return b.fallback.Infer(ctx, inputs)
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", mnn.ErrCancelled, ctx.Err())
	}
	select {
	case resp := <-rq.resp:
		return resp.outputs, resp.err
	case <-ctx.Done():
		// The flush still runs; the buffered channel absorbs its result.
		return nil, fmt.Errorf("%w: %v", mnn.ErrCancelled, ctx.Err())
	}
}

// stackable reports whether the request exactly matches the single-sample
// prepared shapes, i.e. can occupy one slot of a stacked batch.
func (b *batcher) stackable(inputs map[string]*mnn.Tensor) bool {
	if len(inputs) != len(b.inputNames) {
		return false
	}
	for _, name := range b.inputNames {
		t, ok := inputs[name]
		if !ok || t == nil || !tensor.EqualShape(t.Shape(), b.perShape[name]) {
			return false
		}
	}
	return true
}

// loop owns the pending queue: it fills batches, arms the latency timer on
// the first queued request, and hands full or timed-out batches to flush.
func (b *batcher) loop() {
	defer close(b.done)
	var (
		pending []*batchReq
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	disarm := func() {
		if timer != nil && !timer.Stop() {
			<-timer.C
		}
		timer, timerC = nil, nil
	}
	for {
		select {
		case rq := <-b.reqs:
			pending = append(pending, rq)
			if len(pending) == 1 {
				timer = time.NewTimer(b.maxLatency)
				timerC = timer.C
			}
			if len(pending) >= b.maxBatch {
				disarm()
				b.flush(pending)
				pending = nil
			}
		case <-timerC:
			timer, timerC = nil, nil
			b.flush(pending)
			pending = nil
		case <-b.quit:
			disarm()
			// Drain whatever raced in, then flush the remainder so every
			// accepted request gets an answer before the engines close.
			for {
				select {
				case rq := <-b.reqs:
					pending = append(pending, rq)
					continue
				default:
				}
				break
			}
			if len(pending) > 0 {
				b.flush(pending)
			}
			return
		}
	}
}

// flush dispatches one batch asynchronously so the loop keeps coalescing
// the next one while this one computes.
func (b *batcher) flush(reqs []*batchReq) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		if b.onFlush != nil {
			b.onFlush(len(reqs))
		}
		if len(reqs) == b.maxBatch {
			b.runBatched(reqs)
			return
		}
		// Partial flush: the batched engine is prepared at exactly
		// maxBatch, so odd-sized batches run unbatched — concurrently,
		// against the fallback engine's session pool.
		var wg sync.WaitGroup
		for _, rq := range reqs {
			wg.Add(1)
			go func(rq *batchReq) {
				defer wg.Done()
				out, err := b.fallback.Infer(context.Background(), rq.inputs)
				rq.resp <- batchResp{outputs: out, err: err}
			}(rq)
		}
		wg.Wait()
	}()
}

// runBatched stacks the requests along dim 0, runs the batched engine once,
// and splits every output back into per-request tensors.
func (b *batcher) runBatched(reqs []*batchReq) {
	stacked := make(map[string]*mnn.Tensor, len(b.inputNames))
	for _, name := range b.inputNames {
		dst := tensor.New(b.batchShape[name]...)
		per := b.perLen[name]
		for i, rq := range reqs {
			// A view over request i's slot; CopyFrom converts layout if the
			// caller handed us a non-NCHW tensor.
			slot := tensor.FromData(dst.Data()[i*per:(i+1)*per], b.perShape[name]...)
			slot.CopyFrom(rq.inputs[name])
		}
		stacked[name] = dst
	}
	out, err := b.eng.Infer(context.Background(), stacked)
	if err != nil {
		for _, rq := range reqs {
			rq.resp <- batchResp{err: err}
		}
		return
	}
	for i, rq := range reqs {
		outputs := make(map[string]*mnn.Tensor, len(b.outputNames))
		for _, name := range b.outputNames {
			src := out[name].ToLayout(tensor.NCHW)
			per := b.outLen[name]
			dst := tensor.New(b.outShape[name]...)
			copy(dst.Data(), src.Data()[i*per:(i+1)*per])
			outputs[name] = dst
		}
		rq.resp <- batchResp{outputs: outputs}
	}
}

// close stops accepting requests, waits for the loop to drain its queue and
// for outstanding flushes to finish, then closes the batched engine. The
// fallback engine belongs to the Model and is closed by it.
func (b *batcher) close() {
	close(b.quit)
	<-b.done
	b.wg.Wait()
	b.eng.Close()
}
